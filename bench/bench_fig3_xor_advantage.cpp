// Figure 3: probability that a random XOR game on an affinity graph admits
// a quantum advantage, as a function of P(edge exclusive).
//
// The paper computed this with Toqito on 5-vertex graphs; we re-platform
// the sweep on games::XorValueEngine (closed forms -> canonical-form value
// cache -> branch-and-bound classical values -> warm-started Tsirelson
// SDPs), which keeps the classical values bit-identical to the exhaustive
// search while visiting an order of magnitude fewer search nodes. That is
// what lets the reproduction extend past the paper: alongside the legacy
// 5-vertex series this bench sweeps 8-, 10- and 12-vertex graphs — the
// exhaustive path would need 2^12 leaf evaluations per graph there — and
// prints the measured node-visit speedup from the engine's obs counters.
//
// Expected shape: zero advantage probability at p = 0 (all-colocate is
// trivially winnable), rising steeply and staying near 1 across mid-range
// densities; the rise gets steeper as the vertex count grows.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "games/affinity.hpp"
#include "games/realize.hpp"
#include "games/value_engine.hpp"
#include "games/xor_game.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

std::uint64_t g_seed = 1000;  // per-point base seed; override with --seed

constexpr std::size_t kVertices = 5;  // the paper's Figure-3 size
constexpr int kGraphsPerPoint = 60;
constexpr int kScaledGraphsPerPoint = 20;
constexpr double kAdvantageTol = 1e-5;

ftl::games::XorValueOptions engine_options(std::uint64_t seed) {
  ftl::games::XorValueOptions opts;
  opts.sdp.restarts = 8;
  opts.sdp.seed = seed;
  opts.advantage_tol = kAdvantageTol;
  return opts;
}

struct PointResult {
  double p_exclusive;
  double p_advantage;
  double ci95;
  double mean_gap;  // mean (quantum - classical) bias among advantaged games
};

PointResult measure_point(ftl::games::XorValueEngine& engine,
                          std::size_t vertices, double p_exclusive,
                          int graphs, std::uint64_t seed) {
  ftl::util::Rng rng(seed);
  int advantaged = 0;
  ftl::util::Accumulator gap;
  for (int g = 0; g < graphs; ++g) {
    const auto graph =
        ftl::games::AffinityGraph::random(vertices, p_exclusive, rng);
    const auto r =
        engine.evaluate(ftl::games::XorGame::from_affinity(graph));
    if (r.advantage) {
      ++advantaged;
      gap.add(r.quantum_bias - r.classical_bias);
    }
  }
  PointResult out;
  out.p_exclusive = p_exclusive;
  out.p_advantage = static_cast<double>(advantaged) / graphs;
  out.ci95 = ftl::util::wilson_halfwidth(static_cast<std::size_t>(advantaged),
                                         graphs);
  out.mean_gap = gap.mean();
  return out;
}

void BM_Fig3_AdvantageProbability(benchmark::State& state) {
  const double p = static_cast<double>(state.range(0)) / 10.0;
  const auto seed = g_seed + static_cast<std::uint64_t>(state.range(0));
  PointResult r{};
  for (auto _ : state) {
    ftl::games::XorValueEngine engine(engine_options(seed));
    r = measure_point(engine, kVertices, p, kGraphsPerPoint, seed);
  }
  state.counters["p_exclusive"] = p;
  state.counters["p_advantage"] = r.p_advantage;
  state.counters["ci95"] = r.ci95;
  state.counters["mean_bias_gap"] = r.mean_gap;
}

BENCHMARK(BM_Fig3_AdvantageProbability)
    ->DenseRange(0, 10, 1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

// Shared obs flags (see bench_common.hpp): --seed, --metrics-out,
// --metrics-every, --prom-out, --trace-out, and --profile-out /
// --profile-hz / --profile-format (in-process sampling CPU profile;
// folded output pipes straight into flamegraph.pl).
int main(int argc, char** argv) {
  const ftl::bench::Options obs_opts =
      ftl::bench::parse_args(argc, argv, g_seed);
  g_seed = obs_opts.seed;
  const ftl::bench::ObsSession obs_session("bench_fig3_xor_advantage", obs_opts);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Human-readable reproduction table (the actual Figure 3 series). One
  // engine per series: the cache and warm starts chain across the sweep,
  // exactly as the scaled runs below use them.
  {
    ftl::util::Table table(
        {"p_exclusive", "P(quantum advantage)", "ci95", "mean bias gap"});
    ftl::games::XorValueEngine engine(engine_options(g_seed));
    for (int i = 0; i <= 10; ++i) {
      const PointResult r =
          measure_point(engine, kVertices, static_cast<double>(i) / 10.0,
                        kGraphsPerPoint, g_seed + static_cast<std::uint64_t>(i));
      table.add_row({r.p_exclusive, r.p_advantage, r.ci95, r.mean_gap});
    }
    std::cout << "\nFigure 3 reproduction (5-vertex affinity graphs, "
              << kGraphsPerPoint << " graphs/point):\n";
    table.print(std::cout);
  }

  // Scaled section: 8-12 vertex graphs, out of reach for the exhaustive
  // 2^n classical search the 5-vertex sweep used to run on. Counters are
  // accumulated per vertex count so the speedup table below can report the
  // measured node-visit ratio, and mirrored into fig3.* counters that the
  // CI bench-regression gate pins (they are a pure function of the seed
  // and the game sequence — the SDP values never affect the routing).
  auto& reg = ftl::obs::registry();
  ftl::util::Table scaled(
      {"vertices", "p_exclusive", "P(quantum advantage)", "ci95"});
  ftl::util::Table speedup({"vertices", "evals", "solved", "closed form",
                            "cache hits", "bnb nodes", "exhaustive leaves",
                            "node speedup", "warm starts"});
  std::uint64_t total_nodes = 0;
  std::uint64_t total_exhaustive = 0;
  for (std::size_t n : {std::size_t{8}, std::size_t{10}, std::size_t{12}}) {
    const std::uint64_t nodes_before =
        reg.counter("games.bnb.nodes").value();
    ftl::games::XorValueEngine engine(
        engine_options(g_seed + (static_cast<std::uint64_t>(n) << 16)));
    for (int i = 0; i <= 10; ++i) {
      const PointResult r = measure_point(
          engine, n, static_cast<double>(i) / 10.0, kScaledGraphsPerPoint,
          g_seed + (static_cast<std::uint64_t>(n) << 8) +
              static_cast<std::uint64_t>(i));
      scaled.add_row({static_cast<long long>(n), r.p_exclusive,
                      r.p_advantage, r.ci95});
    }
    const auto& st = engine.stats();
    const std::uint64_t nodes =
        reg.counter("games.bnb.nodes").value() - nodes_before;
    // What the exhaustive classical path would have cost for the same
    // evaluations: 2^n leaves per game, closed-form and cache hits
    // included (the old path had neither layer).
    const std::uint64_t exhaustive =
        st.evaluations * (std::uint64_t{1} << n);
    speedup.add_row({static_cast<long long>(n),
                     static_cast<long long>(st.evaluations),
                     static_cast<long long>(st.games_solved),
                     static_cast<long long>(st.closed_form_hits),
                     static_cast<long long>(st.cache_hits),
                     static_cast<long long>(nodes),
                     static_cast<long long>(exhaustive),
                     static_cast<double>(exhaustive) /
                         static_cast<double>(nodes == 0 ? 1 : nodes),
                     static_cast<long long>(st.warm_starts)});
    reg.counter("fig3.evaluations").inc(st.evaluations);
    reg.counter("fig3.games_solved").inc(st.games_solved);
    reg.counter("fig3.closed_form_hits").inc(st.closed_form_hits);
    reg.counter("fig3.cache_hits").inc(st.cache_hits);
    reg.counter("fig3.bnb_nodes").inc(nodes);
    reg.counter("fig3.exhaustive_leaves").inc(exhaustive);
    total_nodes += nodes;
    total_exhaustive += exhaustive;
  }
  std::cout << "\nAggregate node-visit speedup over the scaled sweep: "
            << static_cast<double>(total_exhaustive) /
                   static_cast<double>(total_nodes == 0 ? 1 : total_nodes)
            << "x (" << total_exhaustive << " exhaustive leaves vs "
            << total_nodes << " bnb nodes)\n";
  std::cout << "\nScaled Figure 3 (8-12 vertex affinity graphs, "
            << kScaledGraphsPerPoint << " graphs/point, XorValueEngine):\n";
  scaled.print(std::cout);
  std::cout << "\nEngine speedup vs the exhaustive classical baseline "
               "(node visits, measured via obs counters):\n";
  speedup.print(std::cout);

  // Spot-check: the advantaged games' SDP values are physically realised
  // (Tsirelson construction, played on the simulator).
  std::cout << "\nRealization spot check (first 3 advantaged graphs at "
               "p = 0.5):\n";
  ftl::util::Rng rng(g_seed + 1025);
  ftl::util::Table rt({"graph", "classical", "quantum (SDP)",
                       "quantum (realized)", "qubits/party"});
  int shown = 0;
  for (int g = 0; g < 200 && shown < 3; ++g) {
    const auto graph = ftl::games::AffinityGraph::random(kVertices, 0.5, rng);
    const auto game = ftl::games::XorGame::from_affinity(graph);
    ftl::sdp::GramOptions opts;
    opts.restarts = 8;
    opts.seed = g_seed + 30337 + static_cast<std::uint64_t>(g);
    const auto vectors = game.quantum_bias(opts);
    const double cb = game.classical_bias();
    if (vectors.bias <= cb + 1e-4) continue;
    const ftl::games::RealizedXorStrategy strat(game, vectors);
    rt.add_row({static_cast<long long>(g), (1.0 + cb) / 2.0,
                (1.0 + vectors.bias) / 2.0, strat.value(),
                static_cast<long long>(strat.qubits_per_party())});
    ++shown;
  }
  rt.print(std::cout);
  return 0;
}

// Figure 3: probability that a random XOR game on a 5-vertex affinity graph
// admits a quantum advantage, as a function of P(edge exclusive).
//
// The paper computed this with Toqito; we use the in-repo classical
// (exhaustive) and quantum (Tsirelson SDP) value solvers. Expected shape:
// zero advantage probability at p = 0 (all-colocate is trivially winnable),
// rising steeply and staying near 1 across mid-range densities, with a dip
// only at the trivial edges of the range.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "games/affinity.hpp"
#include "games/realize.hpp"
#include "games/xor_game.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

std::uint64_t g_seed = 1000;  // per-point base seed; override with --seed

constexpr std::size_t kVertices = 5;
constexpr int kGraphsPerPoint = 60;
constexpr double kAdvantageTol = 1e-5;

struct PointResult {
  double p_exclusive;
  double p_advantage;
  double ci95;
  double mean_gap;  // mean (quantum - classical) bias among advantaged games
};

PointResult measure_point(double p_exclusive, std::uint64_t seed) {
  ftl::util::Rng rng(seed);
  int advantaged = 0;
  ftl::util::Accumulator gap;
  for (int g = 0; g < kGraphsPerPoint; ++g) {
    const auto graph =
        ftl::games::AffinityGraph::random(kVertices, p_exclusive, rng);
    const ftl::games::XorGame game = ftl::games::XorGame::from_affinity(graph);
    const double cb = game.classical_bias();
    ftl::sdp::GramOptions opts;
    opts.restarts = 8;
    opts.seed = seed ^ (static_cast<std::uint64_t>(g) << 32);
    const double qb = game.quantum_bias(opts).bias;
    if (qb > cb + kAdvantageTol) {
      ++advantaged;
      gap.add(qb - cb);
    }
  }
  PointResult out;
  out.p_exclusive = p_exclusive;
  out.p_advantage = static_cast<double>(advantaged) / kGraphsPerPoint;
  out.ci95 = ftl::util::wilson_halfwidth(static_cast<std::size_t>(advantaged),
                                         kGraphsPerPoint);
  out.mean_gap = gap.mean();
  return out;
}

void BM_Fig3_AdvantageProbability(benchmark::State& state) {
  const double p = static_cast<double>(state.range(0)) / 10.0;
  PointResult r{};
  for (auto _ : state) {
    r = measure_point(p, g_seed + static_cast<std::uint64_t>(state.range(0)));
  }
  state.counters["p_exclusive"] = p;
  state.counters["p_advantage"] = r.p_advantage;
  state.counters["ci95"] = r.ci95;
  state.counters["mean_bias_gap"] = r.mean_gap;
}

BENCHMARK(BM_Fig3_AdvantageProbability)
    ->DenseRange(0, 10, 1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

// Shared obs flags (see bench_common.hpp): --seed, --metrics-out,
// --metrics-every, --prom-out, --trace-out, and --profile-out /
// --profile-hz / --profile-format (in-process sampling CPU profile;
// folded output pipes straight into flamegraph.pl).
int main(int argc, char** argv) {
  const ftl::bench::Options obs_opts =
      ftl::bench::parse_args(argc, argv, g_seed);
  g_seed = obs_opts.seed;
  const ftl::bench::ObsSession obs_session("bench_fig3_xor_advantage", obs_opts);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Human-readable reproduction table (the actual Figure 3 series).
  ftl::util::Table table(
      {"p_exclusive", "P(quantum advantage)", "ci95", "mean bias gap"});
  for (int i = 0; i <= 10; ++i) {
    const PointResult r = measure_point(static_cast<double>(i) / 10.0,
                                        g_seed + static_cast<std::uint64_t>(i));
    table.add_row({r.p_exclusive, r.p_advantage, r.ci95, r.mean_gap});
  }
  std::cout << "\nFigure 3 reproduction (5-vertex affinity graphs, "
            << kGraphsPerPoint << " graphs/point):\n";
  table.print(std::cout);

  // Spot-check: the advantaged games' SDP values are physically realised
  // (Tsirelson construction, played on the simulator).
  std::cout << "\nRealization spot check (first 3 advantaged graphs at "
               "p = 0.5):\n";
  ftl::util::Rng rng(g_seed + 1025);
  ftl::util::Table rt({"graph", "classical", "quantum (SDP)",
                       "quantum (realized)", "qubits/party"});
  int shown = 0;
  for (int g = 0; g < 200 && shown < 3; ++g) {
    const auto graph = ftl::games::AffinityGraph::random(kVertices, 0.5, rng);
    const auto game = ftl::games::XorGame::from_affinity(graph);
    ftl::sdp::GramOptions opts;
    opts.restarts = 8;
    opts.seed = g_seed + 30337 + static_cast<std::uint64_t>(g);
    const auto vectors = game.quantum_bias(opts);
    const double cb = game.classical_bias();
    if (vectors.bias <= cb + 1e-4) continue;
    const ftl::games::RealizedXorStrategy strat(game, vectors);
    rt.add_row({static_cast<long long>(g), (1.0 + cb) / 2.0,
                (1.0 + vectors.bias) / 2.0, strat.value(),
                static_cast<long long>(strat.qubits_per_party())});
    ++shown;
  }
  rt.print(std::cout);
  return 0;
}

// Figures 1-2 made quantitative: the timing advantage of pre-shared qubits
// and the entanglement-provisioning question.
//   - decision latency: classical coordination costs an inter-server RTT
//     that grows with distance; a stored qubit costs none; even without
//     storage, waiting for the next pair is distance-independent.
//   - supply: fraction of requests finding a live pair vs source rate
//     (paper cites SPDC rates of 1e4..1e7 pairs/s).
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "core/coordinator.hpp"
#include "qnet/broker.hpp"
#include "qnet/timing.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace ftl;

std::uint64_t g_seed = 55;  // supply-simulation streams; override with --seed

void BM_PairSupplyHitRate(benchmark::State& state) {
  const double rate = std::pow(10.0, static_cast<double>(state.range(0)));
  qnet::QnetConfig cfg;
  cfg.pair_rate_hz = rate;
  qnet::BrokerStats stats{};
  for (auto _ : state) {
    util::Rng rng(g_seed);
    stats = qnet::simulate_pair_supply(cfg, 1e4, 0.5, rng);
  }
  state.counters["pair_rate_hz"] = rate;
  state.counters["hit_fraction"] = stats.hit_fraction();
  state.counters["mean_chsh_win"] = stats.mean_chsh_win;
}
BENCHMARK(BM_PairSupplyHitRate)
    ->DenseRange(3, 7, 1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_BrokerThroughput(benchmark::State& state) {
  // Raw event throughput of the DES broker (a substrate microbenchmark).
  qnet::QnetConfig cfg;
  cfg.pair_rate_hz = 1e5;
  std::size_t events = 0;
  for (auto _ : state) {
    util::Rng rng(g_seed + 11);
    const auto stats = qnet::simulate_pair_supply(cfg, 1e4, 0.2, rng);
    events = stats.pairs_generated + stats.requests;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events) *
                          state.iterations());
}
BENCHMARK(BM_BrokerThroughput)->Unit(benchmark::kMillisecond);

}  // namespace

// Shared obs flags (see bench_common.hpp): --seed, --metrics-out,
// --metrics-every, --prom-out, --trace-out, and --profile-out /
// --profile-hz / --profile-format (in-process sampling CPU profile;
// folded output pipes straight into flamegraph.pl).
int main(int argc, char** argv) {
  const ftl::bench::Options obs_opts =
      ftl::bench::parse_args(argc, argv, g_seed);
  g_seed = obs_opts.seed;
  const ftl::bench::ObsSession obs_session("bench_qnet_timing", obs_opts);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::cout << "\nDecision latency: classical RTT coordination vs pre-shared "
               "entanglement (Figure 2):\n";
  util::Table t({"inter-server distance", "classical RTT (us)",
                 "quantum stored (us)", "quantum no-storage wait (us)"});
  for (double d_m : {10.0, 100.0, 1000.0, 100000.0, 1.0e6}) {
    qnet::TimingModel m;
    m.inter_server_distance_m = d_m;
    t.add_row({std::to_string(static_cast<long long>(d_m)) + " m",
               qnet::classical_coordination_latency_s(m) * 1e6,
               qnet::quantum_decision_latency_s(m) * 1e6,
               qnet::quantum_no_storage_latency_s(m, 1e5) * 1e6});
  }
  t.print(std::cout);

  std::cout << "\nProvisioning: pair-rate sweep at 1e4 requests/s "
               "(SPDC sources span 1e4..1e7 pairs/s per §3):\n";
  util::Table pt({"pair rate (hz)", "hit fraction", "mean pair age (us)",
                  "effective chsh win", "worthwhile"});
  for (double rate : {1e3, 1e4, 1e5, 1e6, 1e7}) {
    qnet::QnetConfig cfg;
    cfg.pair_rate_hz = rate;
    const auto report =
        core::Coordinator::provision(cfg, 0.98, 1e4, 0.5, g_seed + 36);
    pt.add_row({rate, report.pair_hit_fraction,
                report.mean_pair_age_s * 1e6,
                report.effective_win_probability,
                std::string(report.quantum_worthwhile() ? "yes" : "no")});
  }
  pt.print(std::cout);
  return 0;
}

// Substrate microbenchmarks: raw performance of the quantum simulator, the
// SDP solver, and the cluster simulator. Not a paper figure — these guard
// against performance regressions in the pieces every experiment uses.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "correlate/decision_source.hpp"
#include "games/xor_game.hpp"
#include "lb/simulator.hpp"
#include "qcore/density.hpp"
#include "qcore/eigen.hpp"
#include "qcore/gates.hpp"
#include "qcore/state.hpp"
#include "util/rng.hpp"

namespace {

using namespace ftl;

std::uint64_t g_seed = 1;  // base for all microbench streams; --seed overrides

void BM_StateVecApply1(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  qcore::StateVec psi(n);
  const auto h = qcore::gates::H();
  std::size_t q = 0;
  for (auto _ : state) {
    psi.apply1(h, q);
    q = (q + 1) % n;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StateVecApply1)->Arg(4)->Arg(10)->Arg(16);

void BM_StateVecMeasure(benchmark::State& state) {
  util::Rng rng(g_seed);
  const auto basis = qcore::gates::real_basis(0.3);
  for (auto _ : state) {
    qcore::StateVec psi = qcore::StateVec::ghz(8);
    benchmark::DoNotOptimize(psi.measure(3, basis, rng));
  }
}
BENCHMARK(BM_StateVecMeasure);

void BM_DensityChannel(benchmark::State& state) {
  const auto ch = qcore::depolarizing(0.1);
  for (auto _ : state) {
    qcore::Density rho = qcore::Density::werner(0.9);
    rho.apply_channel(ch, 0);
    benchmark::DoNotOptimize(rho.purity());
  }
}
BENCHMARK(BM_DensityChannel);

void BM_EighRandomHermitian(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(g_seed + 1);
  qcore::CMat a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a.at(i, i) = qcore::Cx{rng.normal(), 0.0};
    for (std::size_t j = i + 1; j < n; ++j) {
      const qcore::Cx v{rng.normal(), rng.normal()};
      a.at(i, j) = v;
      a.at(j, i) = std::conj(v);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(qcore::eigh(a));
  }
}
BENCHMARK(BM_EighRandomHermitian)->Arg(4)->Arg(8)->Arg(16);

void BM_XorQuantumBias5x5(benchmark::State& state) {
  util::Rng rng(g_seed + 2);
  const auto graph = games::AffinityGraph::random(5, 0.5, rng);
  const games::XorGame game = games::XorGame::from_affinity(graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(game.quantum_bias());
  }
}
BENCHMARK(BM_XorQuantumBias5x5)->Unit(benchmark::kMillisecond);

void BM_XorClassicalBias(benchmark::State& state) {
  util::Rng rng(g_seed + 3);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto graph = games::AffinityGraph::random(n, 0.5, rng);
  const games::XorGame game = games::XorGame::from_affinity(graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(game.classical_bias());
  }
}
BENCHMARK(BM_XorClassicalBias)->Arg(5)->Arg(10)->Arg(14);

void BM_ChshSourceDecide(benchmark::State& state) {
  correlate::ChshSource src(0.95);
  util::Rng rng(g_seed + 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(src.decide(1, 0, rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChshSourceDecide);

void BM_LbSimStep(benchmark::State& state) {
  lb::LbConfig cfg;
  cfg.num_balancers = 100;
  cfg.num_servers = 86;
  cfg.warmup_steps = 0;
  cfg.measure_steps = 200;
  cfg.seed = g_seed + 5;
  for (auto _ : state) {
    lb::PairedStrategy strat(std::make_unique<correlate::ChshSource>(1.0));
    benchmark::DoNotOptimize(run_lb_sim(cfg, strat));
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_LbSimStep)->Unit(benchmark::kMillisecond);

}  // namespace

// Shared obs flags (see bench_common.hpp): --seed, --metrics-out,
// --metrics-every, --prom-out, --trace-out, and --profile-out /
// --profile-hz / --profile-format (in-process sampling CPU profile;
// folded output pipes straight into flamegraph.pl).
int main(int argc, char** argv) {
  const ftl::bench::Options obs_opts =
      ftl::bench::parse_args(argc, argv, g_seed);
  g_seed = obs_opts.seed;
  const ftl::bench::ObsSession obs_session("bench_substrate_perf", obs_opts);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Figure 4: average queue length (and queueing delay, the caption's metric)
// vs system load N/M, for classical random vs CHSH-paired quantum load
// balancing. N = 100 balancers as in the paper; M is swept.
//
// Expected shape: both curves are flat at low load and blow up past a knee;
// the quantum curve's knee sits at strictly higher load. An omniscient
// upper bound and the paired-classical ablation are included, and a second
// sweep checks the paper's note that the result depends on N/M, not N.
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "correlate/decision_source.hpp"
#include "lb/simulator.hpp"
#include "util/table.hpp"

namespace {

using ftl::lb::LbConfig;
using ftl::lb::LbResult;

std::uint64_t g_seed = 20250705;  // override with --seed

constexpr std::size_t kBalancers = 100;
// M values giving loads N/M from 0.67 to 2.5.
constexpr std::size_t kServerSweep[] = {150, 120, 100, 86, 76, 66,
                                        60,  54,  50,  44, 40};

LbConfig base_config(std::size_t servers) {
  LbConfig cfg;
  cfg.num_balancers = kBalancers;
  cfg.num_servers = servers;
  cfg.p_colocate = 0.5;
  cfg.warmup_steps = 1000;
  cfg.measure_steps = 4000;
  cfg.seed = g_seed;
  return cfg;
}

std::unique_ptr<ftl::lb::LbStrategy> make_strategy(const std::string& kind) {
  using namespace ftl;
  if (kind == "random") return std::make_unique<lb::RandomStrategy>();
  return std::make_unique<lb::PairedStrategy>(correlate::make_source(kind));
}

void BM_Fig4(benchmark::State& state, const std::string& kind) {
  const std::size_t servers = kServerSweep[state.range(0)];
  LbResult r{};
  for (auto _ : state) {
    const LbConfig cfg = base_config(servers);
    auto strat = make_strategy(kind);
    r = ftl::lb::run_lb_sim(cfg, *strat);
  }
  state.counters["load"] = base_config(servers).load();
  state.counters["avg_queue_len"] = r.mean_queue_length;
  state.counters["mean_delay"] = r.mean_delay;
  state.counters["p95_delay"] = r.p95_delay;
}

BENCHMARK_CAPTURE(BM_Fig4, classical_random, "random")
    ->DenseRange(0, 10, 1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK_CAPTURE(BM_Fig4, quantum_chsh, "quantum-chsh")
    ->DenseRange(0, 10, 1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK_CAPTURE(BM_Fig4, classical_paired, "classical-chsh")
    ->DenseRange(0, 10, 1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK_CAPTURE(BM_Fig4, omniscient_bound, "omniscient")
    ->DenseRange(0, 10, 1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  const ftl::bench::Options obs_opts =
      ftl::bench::parse_args(argc, argv, g_seed);
  g_seed = obs_opts.seed;
  ftl::bench::ObsSession obs_session("bench_fig4_load_balancing", obs_opts);
  obs_session.set_config("N=100 balancers, M swept 150..40 (load 0.67..2.5)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // The actual Figure 4 series, as a table.
  std::cout << "\nFigure 4 reproduction (N = " << kBalancers
            << " balancers, mean queue length per server):\n";
  ftl::util::Table table({"load N/M", "classical random", "quantum CHSH",
                          "omniscient bound"});
  for (std::size_t m : kServerSweep) {
    const LbConfig cfg = base_config(m);
    auto rand_s = make_strategy("random");
    auto quant_s = make_strategy("quantum-chsh");
    auto omni_s = make_strategy("omniscient");
    table.add_row({cfg.load(), ftl::lb::run_lb_sim(cfg, *rand_s).mean_queue_length,
                   ftl::lb::run_lb_sim(cfg, *quant_s).mean_queue_length,
                   ftl::lb::run_lb_sim(cfg, *omni_s).mean_queue_length});
  }
  table.print(std::cout);

  // Consistency check from the paper: "the results depend primarily on the
  // ratio N/M and remain largely consistent as N varies."
  std::cout << "\nN-independence check (load fixed at ~1.47, quantum):\n";
  ftl::util::Table nt({"N", "M", "avg queue len (quantum)"});
  for (std::size_t n : {40u, 100u, 200u}) {
    LbConfig cfg = base_config(0);
    cfg.num_balancers = n;
    cfg.num_servers = (n * 2 + 1) / 3;  // load ~1.5
    auto strat = make_strategy("quantum-chsh");
    nt.add_row({static_cast<long long>(n),
                static_cast<long long>(cfg.num_servers),
                ftl::lb::run_lb_sim(cfg, *strat).mean_queue_length});
  }
  nt.print(std::cout);
  return 0;
}

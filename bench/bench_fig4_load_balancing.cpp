// Figure 4: average queue length (and queueing delay, the caption's metric)
// vs system load N/M, for classical random vs CHSH-paired quantum load
// balancing. N = 100 balancers as in the paper; M is swept.
//
// Expected shape: both curves are flat at low load and blow up past a knee;
// the quantum curve's knee sits at strictly higher load. An omniscient
// upper bound and the paired-classical ablation are included, and a second
// sweep checks the paper's note that the result depends on N/M, not N.
//
// Scaled configurations: the sharded engine runs the same physics at
// 10^4–10^6 servers (ROADMAP's "millions of servers" regime). Extra flags,
// stripped before google-benchmark sees them:
//   --shards <n>   shard count for the scaled section (0 = one per core)
//   --servers <m>  server count for the scaled summary table (default 1e5)
// Scaled runs record lb.sharded.* counters; requests/s lands in the
// BENCH_fig4_load_balancing.json trajectory via ftlbench run.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "correlate/decision_source.hpp"
#include "lb/sharded_simulator.hpp"
#include "lb/simulator.hpp"
#include "sim/sharded.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

using ftl::lb::LbConfig;
using ftl::lb::LbResult;
using ftl::lb::ShardedLbConfig;
using ftl::lb::ShardedLbResult;

std::uint64_t g_seed = 20250705;  // override with --seed
std::size_t g_shards = 0;         // override with --shards; 0 = per core
std::size_t g_servers = 100000;   // override with --servers

constexpr std::size_t kBalancers = 100;
// M values giving loads N/M from 0.67 to 2.5.
constexpr std::size_t kServerSweep[] = {150, 120, 100, 86, 76, 66,
                                        60,  54,  50,  44, 40};

LbConfig base_config(std::size_t servers) {
  LbConfig cfg;
  cfg.num_balancers = kBalancers;
  cfg.num_servers = servers;
  cfg.p_colocate = 0.5;
  cfg.warmup_steps = 1000;
  cfg.measure_steps = 4000;
  cfg.seed = g_seed;
  return cfg;
}

std::size_t resolve_shards(std::size_t servers) {
  if (g_shards > 0) return g_shards;
  // Shards buy cache residency as well as parallelism: a ~1024-server
  // sub-cluster's queues stay cache-resident through its step loop, which
  // roughly doubles single-core throughput at 10^5-10^6 servers over a
  // one-shard run. Fine-grained shards also keep every pool worker busy,
  // and — unlike a shards-per-core rule — make the sub-cluster sizes, and
  // with them the trajectory's deterministic counters, machine-independent.
  return std::max<std::size_t>(1, (servers + 1023) / 1024);
}

ftl::sim::ShardPool& shared_pool() {
  static ftl::sim::ShardPool pool;  // one worker per core, reused across runs
  return pool;
}

/// Builds a scaled config with identical per-shard sub-clusters: servers
/// split evenly, per-shard balancer count rounded to an even number (paired
/// sources pair adjacent balancers) hitting the requested load N/M.
ShardedLbConfig scaled_config(std::size_t servers, double load,
                              std::size_t shards, long warmup, long measure,
                              const std::string& source) {
  ShardedLbConfig cfg;
  const std::size_t shard_servers =
      std::max<std::size_t>(2, servers / shards);
  std::size_t shard_balancers = static_cast<std::size_t>(
      static_cast<double>(shard_servers) * load + 0.5);
  shard_balancers += shard_balancers % 2;
  if (shard_balancers < 2) shard_balancers = 2;
  cfg.num_servers = shard_servers * shards;
  cfg.num_balancers = shard_balancers * shards;
  cfg.num_shards = shards;
  cfg.warmup_steps = warmup;
  cfg.measure_steps = measure;
  cfg.seed = g_seed;
  cfg.source = source;
  return cfg;
}

std::unique_ptr<ftl::lb::LbStrategy> make_strategy(const std::string& kind) {
  using namespace ftl;
  if (kind == "random") return std::make_unique<lb::RandomStrategy>();
  return std::make_unique<lb::PairedStrategy>(correlate::make_source(kind));
}

void BM_Fig4(benchmark::State& state, const std::string& kind) {
  const std::size_t servers = kServerSweep[state.range(0)];
  LbResult r{};
  for (auto _ : state) {
    const LbConfig cfg = base_config(servers);
    auto strat = make_strategy(kind);
    r = ftl::lb::run_lb_sim(cfg, *strat);
  }
  state.counters["load"] = base_config(servers).load();
  state.counters["avg_queue_len"] = r.mean_queue_length;
  state.counters["mean_delay"] = r.mean_delay;
  state.counters["p95_delay"] = r.p95_delay;
}

BENCHMARK_CAPTURE(BM_Fig4, classical_random, "random")
    ->DenseRange(0, 10, 1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK_CAPTURE(BM_Fig4, quantum_chsh, "quantum-chsh")
    ->DenseRange(0, 10, 1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK_CAPTURE(BM_Fig4, classical_paired, "classical-chsh")
    ->DenseRange(0, 10, 1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK_CAPTURE(BM_Fig4, omniscient_bound, "omniscient")
    ->DenseRange(0, 10, 1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Scaled sharded runs. Args: {servers, load * 100, warmup, measure}. The
// 10^4 case sits in the quantum-advantage region (load 1.4); the 10^5 and
// 10^6 cases probe raw engine throughput just under the knee.
void BM_Fig4Sharded(benchmark::State& state, const std::string& source) {
  const auto servers = static_cast<std::size_t>(state.range(0));
  const double load = static_cast<double>(state.range(1)) / 100.0;
  const std::size_t shards = resolve_shards(servers);
  const ShardedLbConfig cfg =
      scaled_config(servers, load, shards, state.range(2), state.range(3),
                    source);
  ShardedLbResult r{};
  for (auto _ : state) {
    r = ftl::lb::run_sharded_lb_sim(cfg, &shared_pool());
  }
  state.counters["servers"] = static_cast<double>(cfg.num_servers);
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["load"] = cfg.load();
  state.counters["avg_queue_len"] = r.mean_queue_length;
  state.counters["requests_per_s"] = benchmark::Counter(
      static_cast<double>(r.counters.arrived), benchmark::Counter::kIsRate);
}

BENCHMARK_CAPTURE(BM_Fig4Sharded, quantum_chsh, "quantum-chsh")
    ->Args({10000, 140, 300, 1500})
    ->Args({100000, 95, 100, 400})
    ->Args({1000000, 95, 20, 80})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK_CAPTURE(BM_Fig4Sharded, classical_random, "random")
    ->Args({10000, 140, 300, 1500})
    ->Args({100000, 95, 100, 400})
    ->Args({1000000, 95, 20, 80})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

// Shared obs flags (see bench_common.hpp): --seed, --metrics-out,
// --metrics-every, --prom-out, --trace-out, and --profile-out /
// --profile-hz / --profile-format (in-process sampling CPU profile;
// folded output pipes straight into flamegraph.pl).
int main(int argc, char** argv) {
  const ftl::bench::Options obs_opts =
      ftl::bench::parse_args(argc, argv, g_seed);
  g_seed = obs_opts.seed;

  // Our scaled-run flags, read and stripped the same way parse_args strips
  // the common ones (google-benchmark is fatal on unknown flags).
  {
    const ftl::util::Args args(argc, argv, /*allow_unknown=*/true);
    g_shards = args.get("shards", g_shards);
    g_servers = args.get("servers", g_servers);
    const auto is_ours = [](const std::string& arg) {
      for (const char* name : {"--shards", "--servers"}) {
        if (arg == name || arg.rfind(std::string(name) + "=", 0) == 0)
          return true;
      }
      return false;
    };
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (is_ours(arg)) {
        if (arg.find('=') == std::string::npos && i + 1 < argc &&
            ftl::util::is_value_token(argv[i + 1]))
          ++i;
        continue;
      }
      argv[out++] = argv[i];
    }
    argc = out;
  }

  ftl::bench::ObsSession obs_session("bench_fig4_load_balancing", obs_opts);
  obs_session.set_config("N=100 balancers, M swept 150..40 (load 0.67..2.5)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // The actual Figure 4 series, as a table.
  std::cout << "\nFigure 4 reproduction (N = " << kBalancers
            << " balancers, mean queue length per server):\n";
  ftl::util::Table table({"load N/M", "classical random", "quantum CHSH",
                          "omniscient bound"});
  for (std::size_t m : kServerSweep) {
    const LbConfig cfg = base_config(m);
    auto rand_s = make_strategy("random");
    auto quant_s = make_strategy("quantum-chsh");
    auto omni_s = make_strategy("omniscient");
    table.add_row({cfg.load(), ftl::lb::run_lb_sim(cfg, *rand_s).mean_queue_length,
                   ftl::lb::run_lb_sim(cfg, *quant_s).mean_queue_length,
                   ftl::lb::run_lb_sim(cfg, *omni_s).mean_queue_length});
  }
  table.print(std::cout);

  // Consistency check from the paper: "the results depend primarily on the
  // ratio N/M and remain largely consistent as N varies."
  std::cout << "\nN-independence check (load fixed at ~1.47, quantum):\n";
  ftl::util::Table nt({"N", "M", "avg queue len (quantum)"});
  for (std::size_t n : {40u, 100u, 200u}) {
    LbConfig cfg = base_config(0);
    cfg.num_balancers = n;
    cfg.num_servers = (n * 2 + 1) / 3;  // load ~1.5
    auto strat = make_strategy("quantum-chsh");
    nt.add_row({static_cast<long long>(n),
                static_cast<long long>(cfg.num_servers),
                ftl::lb::run_lb_sim(cfg, *strat).mean_queue_length});
  }
  nt.print(std::cout);

  // Scaled sharded Fig-4: the same physics at 10^4-10^6 servers. These runs
  // always execute (they are plain main() code, not google-benchmark cases),
  // so ftlbench's trajectory records the lb.sharded.* counters and the
  // requests/s they imply even under --benchmark_filter=NONE. The largest
  // config honours --servers (default 1e5; pass 1000000 for the full-size
  // sweep) and --shards (default one per core).
  std::cout << "\nScaled sharded Fig-4 (seed " << g_seed << "):\n";
  struct ScaledRun {
    std::size_t servers;
    double load;
    long warmup;
    long measure;
    const char* source;
  };
  const ScaledRun runs[] = {
      {10000, 1.4, 300, 1500, "quantum-chsh"},
      {g_servers, 0.95, 100, 400, "classical random"},
      {g_servers, 0.95, 100, 400, "quantum-chsh"},
  };
  ftl::util::Table st({"servers", "balancers", "shards", "load N/M", "source",
                       "avg queue len", "requests/s"});
  for (const ScaledRun& run : runs) {
    const std::string source =
        std::strcmp(run.source, "classical random") == 0 ? "random"
                                                         : run.source;
    const std::size_t shards = resolve_shards(run.servers);
    const ShardedLbConfig cfg = scaled_config(
        run.servers, run.load, shards, run.warmup, run.measure, source);
    const auto t0 = std::chrono::steady_clock::now();
    const ShardedLbResult r = ftl::lb::run_sharded_lb_sim(cfg, &shared_pool());
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    st.add_row({static_cast<long long>(cfg.num_servers),
                static_cast<long long>(cfg.num_balancers),
                static_cast<long long>(shards), cfg.load(), run.source,
                r.mean_queue_length,
                static_cast<double>(r.counters.arrived) / dt});
  }
  st.print(std::cout);
  return 0;
}

// §4.1 extension: load balancing over an affinity graph with multiple task
// types, driven by general XOR games rather than one CHSH instance.
//
// Three findings, reported honestly:
//  1. The binary {C, E} graph run through the typed machinery reproduces
//     the Figure-4 ordering (quantum < classical paired < random) under the
//     paper's priority service policy.
//  2. On a 3-subtype graph (two cache-sharing subtypes that must not mix,
//     plus isolation-seeking E), the quantum game value beats classical
//     (0.833 vs 0.778) — yet the end-to-end delays do NOT robustly improve
//     on the classical paired strategy: the classical witness wins 7 of 9
//     input cells at 100%, and that all-or-nothing profile matches the
//     capacity objective better than the quantum profile's uniform spread.
//     Game-value advantage does not automatically convert to systems
//     advantage.
//  3. Pairwise coordination itself is not free: under FIFO service its
//     arrival lumpiness can lose to plain random unless the service
//     discipline strongly rewards co-location (the binary case's priority
//     policy), and static dedicated pools win whenever the type mix is
//     stationary and each pool is stable. Together, 2 and 3 are the
//     concrete content of the paper's closing caveat that "further work is
//     needed to assess whether the quantum advantage can be robust and
//     large enough to justify its cost".
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "correlate/typed_source.hpp"
#include "lb/typed_simulator.hpp"
#include "util/table.hpp"

namespace {

using namespace ftl;

std::uint64_t g_seed = 77;  // override with --seed

games::AffinityGraph binary_graph() {
  games::AffinityGraph g(2);
  g.set(0, 1, games::Affinity::kExclusive);
  g.set(1, 1, games::Affinity::kExclusive);
  return g;
}

games::AffinityGraph subtype_graph() {
  games::AffinityGraph g(3);
  g.set(0, 1, games::Affinity::kExclusive);
  g.set(0, 2, games::Affinity::kExclusive);
  g.set(1, 2, games::Affinity::kExclusive);
  g.set(2, 2, games::Affinity::kExclusive);
  return g;
}

lb::LbResult run(const games::AffinityGraph& graph, const games::XorGame& game,
                 const std::string& kind, std::size_t servers,
                 std::vector<double> probs, lb::TypedServicePolicy policy,
                 double interference) {
  lb::TypedLbConfig cfg;
  cfg.num_balancers = 60;
  cfg.num_servers = servers;
  cfg.type_probs = std::move(probs);
  cfg.warmup_steps = 600;
  cfg.measure_steps = 3000;
  cfg.policy = policy;
  cfg.interference = interference;
  cfg.seed = g_seed;

  std::unique_ptr<lb::TypedLbStrategy> strat;
  if (kind == "random") {
    strat = std::make_unique<lb::TypedRandomStrategy>();
  } else if (kind == "dedicated") {
    std::vector<std::size_t> groups(graph.num_types());
    for (std::size_t t = 0; t < groups.size(); ++t) groups[t] = t;
    strat = std::make_unique<lb::TypedDedicatedStrategy>(groups,
                                                         graph.num_types());
  } else if (kind == "classical") {
    strat = std::make_unique<lb::TypedPairedStrategy>(
        std::make_unique<correlate::TypedClassicalSource>(game));
  } else if (kind == "quantum") {
    strat = std::make_unique<lb::TypedPairedStrategy>(
        std::make_unique<correlate::TypedQuantumSource>(game));
  } else {
    strat = std::make_unique<lb::TypedPairedStrategy>(
        std::make_unique<correlate::TypedOmniscientSource>(game));
  }
  return run_typed_lb_sim(cfg, graph, *strat);
}

void BM_TypedBinary(benchmark::State& state, const std::string& kind) {
  const auto servers = static_cast<std::size_t>(state.range(0));
  const auto graph = binary_graph();
  const auto game = games::XorGame::from_affinity(graph, true);
  lb::LbResult r{};
  for (auto _ : state) {
    r = run(graph, game, kind, servers, {0.5, 0.5},
            lb::TypedServicePolicy::kPriorityPairs, 0.0);
  }
  state.counters["load"] = 60.0 / static_cast<double>(servers);
  state.counters["mean_delay"] = r.mean_delay;
}
BENCHMARK_CAPTURE(BM_TypedBinary, random, "random")
    ->Arg(80)->Arg(64)->Arg(56)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK_CAPTURE(BM_TypedBinary, classical, "classical")
    ->Arg(80)->Arg(64)->Arg(56)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK_CAPTURE(BM_TypedBinary, quantum, "quantum")
    ->Arg(80)->Arg(64)->Arg(56)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_TypedSubtypes(benchmark::State& state, const std::string& kind) {
  const auto servers = static_cast<std::size_t>(state.range(0));
  const auto graph = subtype_graph();
  const auto game = games::XorGame::from_affinity(graph, true);
  lb::LbResult r{};
  for (auto _ : state) {
    r = run(graph, game, kind, servers, {0.35, 0.35, 0.30},
            lb::TypedServicePolicy::kPairsFirstFifo, 0.3);
  }
  state.counters["load"] = 60.0 / static_cast<double>(servers);
  state.counters["mean_delay"] = r.mean_delay;
}
BENCHMARK_CAPTURE(BM_TypedSubtypes, random, "random")
    ->Arg(80)->Arg(60)->Arg(46)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK_CAPTURE(BM_TypedSubtypes, classical, "classical")
    ->Arg(80)->Arg(60)->Arg(46)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK_CAPTURE(BM_TypedSubtypes, quantum, "quantum")
    ->Arg(80)->Arg(60)->Arg(46)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

// Shared obs flags (see bench_common.hpp): --seed, --metrics-out,
// --metrics-every, --prom-out, --trace-out, and --profile-out /
// --profile-hz / --profile-format (in-process sampling CPU profile;
// folded output pipes straight into flamegraph.pl).
int main(int argc, char** argv) {
  const ftl::bench::Options obs_opts =
      ftl::bench::parse_args(argc, argv, g_seed);
  g_seed = obs_opts.seed;
  const ftl::bench::ObsSession obs_session("bench_typed_subtypes", obs_opts);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  {
    const auto graph = binary_graph();
    const auto game = games::XorGame::from_affinity(graph, true);
    std::cout << "\n[1] Binary {C, E} graph, priority service (Figure-4 "
                 "economics): mean delay\n";
    util::Table t({"load", "random", "classical paired", "quantum paired",
                   "omniscient"});
    for (std::size_t servers : {80u, 64u, 56u}) {
      t.add_row({60.0 / servers,
                 run(graph, game, "random", servers, {0.5, 0.5},
                     lb::TypedServicePolicy::kPriorityPairs, 0.0).mean_delay,
                 run(graph, game, "classical", servers, {0.5, 0.5},
                     lb::TypedServicePolicy::kPriorityPairs, 0.0).mean_delay,
                 run(graph, game, "quantum", servers, {0.5, 0.5},
                     lb::TypedServicePolicy::kPriorityPairs, 0.0).mean_delay,
                 run(graph, game, "omniscient", servers, {0.5, 0.5},
                     lb::TypedServicePolicy::kPriorityPairs, 0.0).mean_delay});
    }
    t.print(std::cout);
  }

  {
    const auto graph = subtype_graph();
    const auto game = games::XorGame::from_affinity(graph, true);
    std::cout << "\n[2] 3-subtype graph (A/B cache subtypes + E), FIFO "
                 "pairing, interference 0.3: mean delay\n";
    std::cout << "    game values: classical "
              << game.classical_value() << ", quantum "
              << (1.0 + game.quantum_bias().bias) / 2.0 << "\n";
    util::Table t({"load", "random", "dedicated pools", "classical paired",
                   "quantum paired", "omniscient"});
    for (std::size_t servers : {80u, 60u, 46u}) {
      std::vector<double> probs{0.35, 0.35, 0.30};
      const auto pol = lb::TypedServicePolicy::kPairsFirstFifo;
      t.add_row({60.0 / servers,
                 run(graph, game, "random", servers, probs, pol, 0.3).mean_delay,
                 run(graph, game, "dedicated", servers, probs, pol, 0.3).mean_delay,
                 run(graph, game, "classical", servers, probs, pol, 0.3).mean_delay,
                 run(graph, game, "quantum", servers, probs, pol, 0.3).mean_delay,
                 run(graph, game, "omniscient", servers, probs, pol, 0.3).mean_delay});
    }
    t.print(std::cout);
    std::cout <<
        "\nReading: despite the larger game value, quantum pairing tracks\n"
        "classical pairing within noise here (the win *profile*, not the\n"
        "win *average*, is what the capacity objective rewards); random\n"
        "can win under FIFO service (pairing lumpiness); dedicated pools\n"
        "need a stationary, known mix and saturate at the self-exclusive\n"
        "pool first. See EXPERIMENTS.md for the full discussion.\n";
  }

  {
    // [3] Where dedicated pools break: a drifting type mix. Three
    // self-colocating, mutually exclusive subtypes; every 200 steps the
    // arrival mix is resampled. Pools are static; paired and random
    // strategies are mix-oblivious.
    games::AffinityGraph graph(3);
    graph.set(0, 1, games::Affinity::kExclusive);
    graph.set(0, 2, games::Affinity::kExclusive);
    graph.set(1, 2, games::Affinity::kExclusive);
    const auto game = games::XorGame::from_affinity(graph, true);
    std::cout << "\n[3] Drifting type mix (3 mutually exclusive subtypes, "
                 "resampled every 200 steps): mean delay\n";
    util::Table t({"mix", "random", "dedicated pools", "quantum paired"});
    for (long drift : {0L, 200L}) {
      lb::TypedLbConfig cfg;
      cfg.num_balancers = 60;
      cfg.num_servers = 52;
      cfg.type_probs.assign(3, 1.0 / 3.0);
      cfg.warmup_steps = 500;
      cfg.measure_steps = 4000;
      cfg.interference = 0.5;
      cfg.policy = lb::TypedServicePolicy::kPairsFirstFifo;
      cfg.mix_drift_period = drift;
      cfg.seed = g_seed + 11;
      lb::TypedRandomStrategy rnd;
      lb::TypedDedicatedStrategy ded({0, 1, 2}, 3);
      lb::TypedPairedStrategy qun(
          std::make_unique<correlate::TypedQuantumSource>(game));
      t.add_row({std::string(drift == 0 ? "stationary" : "drifting"),
                 run_typed_lb_sim(cfg, graph, rnd).mean_delay,
                 run_typed_lb_sim(cfg, graph, ded).mean_delay,
                 run_typed_lb_sim(cfg, graph, qun).mean_delay});
    }
    t.print(std::cout);
    std::cout << "\nReading: dedicated pools are unbeatable when the mix is\n"
                 "known and fixed, and collapse when it drifts — the regime\n"
                 "where mix-oblivious coordination (classical or quantum)\n"
                 "earns its keep.\n";
  }
  return 0;
}

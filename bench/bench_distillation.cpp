// Distillation economics: §3 notes SPDC sources have finite fidelity and
// that designs must absorb the error margin. This bench answers: given a
// source below the CHSH-usefulness threshold (F ~ 0.78), how many raw
// pairs does BBPSSW burn to mint a useful one, and what does that do to
// the effective pair rate the Figure-2 architecture can sustain?
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "qcore/density.hpp"
#include "qnet/distill.hpp"
#include "util/table.hpp"

namespace {

using namespace ftl;

void BM_BbpsswRound(benchmark::State& state) {
  const double f = static_cast<double>(state.range(0)) / 100.0;
  const auto w = qcore::Density::werner((4.0 * f - 1.0) / 3.0);
  double fidelity = 0.0;
  double p_success = 0.0;
  for (auto _ : state) {
    const qnet::DistillResult r = qnet::bbpssw_round(w, w);
    fidelity = r.fidelity;
    p_success = r.success_probability;
  }
  state.counters["f_in"] = f;
  state.counters["f_out"] = fidelity;
  state.counters["p_success"] = p_success;
}
BENCHMARK(BM_BbpsswRound)->Arg(60)->Arg(70)->Arg(80)->Arg(90)
    ->Unit(benchmark::kMillisecond);

void BM_DistillToChshThreshold(benchmark::State& state) {
  const double f0 = static_cast<double>(state.range(0)) / 100.0;
  const double target = (1.0 + 3.0 / std::sqrt(2.0)) / 4.0;
  qnet::RecurrenceResult r{};
  for (auto _ : state) {
    r = qnet::distill_to_target(f0, target);
  }
  state.counters["f0"] = f0;
  state.counters["rounds"] = r.rounds;
  state.counters["raw_pairs_per_useful"] = r.expected_raw_pairs;
}
BENCHMARK(BM_DistillToChshThreshold)->Arg(55)->Arg(65)->Arg(75);

}  // namespace

// Shared obs flags (see bench_common.hpp): --seed, --metrics-out,
// --metrics-every, --prom-out, --trace-out, and --profile-out /
// --profile-hz / --profile-format (in-process sampling CPU profile;
// folded output pipes straight into flamegraph.pl).
int main(int argc, char** argv) {
  // This bench is fully deterministic; --seed is accepted for a uniform CLI.
  const ftl::bench::ObsSession obs_session(
      "bench_distillation", ftl::bench::parse_args(argc, argv, 0));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const double chsh_threshold = (1.0 + 3.0 / std::sqrt(2.0)) / 4.0;
  std::cout << "\nBBPSSW recurrence to the CHSH-usefulness threshold (F > "
            << chsh_threshold << "):\n";
  util::Table t({"source fidelity", "rounds", "final fidelity",
                 "raw pairs per useful pair",
                 "1e6 pairs/s source -> useful pairs/s"});
  for (double f0 : {0.55, 0.60, 0.65, 0.70, 0.75, 0.80}) {
    const auto r = qnet::distill_to_target(f0, chsh_threshold);
    t.add_row({f0, static_cast<long long>(r.rounds), r.fidelity,
               r.expected_raw_pairs,
               r.reached_target ? 1.0e6 / r.expected_raw_pairs : 0.0});
  }
  t.print(std::cout);

  std::cout << "\nPer-round trajectory from F = 0.65 (physical 4-qubit "
               "simulation each round, Werner re-twirl assumed):\n";
  util::Table traj({"round", "fidelity", "success prob",
                    "cumulative raw pairs"});
  double f = 0.65;
  double raw = 1.0;
  traj.add_row({static_cast<long long>(0), f, 1.0, raw});
  for (int round = 1; round <= 4; ++round) {
    const auto w = qcore::Density::werner((4.0 * f - 1.0) / 3.0);
    const auto r = qnet::bbpssw_round(w, w);
    raw *= 2.0 / r.success_probability;
    f = r.fidelity;
    traj.add_row({static_cast<long long>(round), f, r.success_probability,
                  raw});
  }
  traj.print(std::cout);
  return 0;
}

// §3: "all quantum technologies operate with an error margin, which system
// designs must account for." This bench quantifies the margin:
//   - CHSH win probability vs Werner visibility (advantage dies at
//     v = 1/sqrt2 ~ 0.707, i.e. Bell fidelity ~ 0.78),
//   - end-to-end load-balancing queue length vs visibility,
//   - CHSH win probability vs QNIC storage time for §3's cited
//     room-temperature memories (T2 ~ 100 us, storage 16-160 us).
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "correlate/decision_source.hpp"
#include "lb/simulator.hpp"
#include "qnet/decoherence.hpp"
#include "qnet/detector.hpp"
#include "util/table.hpp"

namespace {

using namespace ftl;

std::uint64_t g_seed = 777;  // override with --seed

double lb_queue_at_knee(double visibility) {
  lb::LbConfig cfg;
  cfg.num_balancers = 100;
  cfg.num_servers = 86;  // load ~1.16
  cfg.warmup_steps = 800;
  cfg.measure_steps = 3000;
  cfg.seed = g_seed;
  lb::PairedStrategy strat(
      std::make_unique<correlate::ChshSource>(visibility));
  return run_lb_sim(cfg, strat).mean_queue_length;
}

void BM_WinVsVisibility(benchmark::State& state) {
  const double v = static_cast<double>(state.range(0)) / 100.0;
  double win = 0.0;
  for (auto _ : state) {
    correlate::ChshSource src(v);
    win = src.win_probability(0, 0);
  }
  state.counters["visibility"] = v;
  state.counters["chsh_win"] = win;
  state.counters["advantage"] = win - 0.75;
}
BENCHMARK(BM_WinVsVisibility)->DenseRange(50, 100, 10)->Iterations(1);

void BM_QueueVsVisibility(benchmark::State& state) {
  const double v = static_cast<double>(state.range(0)) / 100.0;
  double q = 0.0;
  for (auto _ : state) {
    q = lb_queue_at_knee(v);
  }
  state.counters["visibility"] = v;
  state.counters["avg_queue_len"] = q;
}
BENCHMARK(BM_QueueVsVisibility)
    ->DenseRange(60, 100, 10)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_WinVsStorageTime(benchmark::State& state) {
  const double t_us = static_cast<double>(state.range(0));
  double win = 0.0;
  for (auto _ : state) {
    win = qnet::chsh_win_after_storage(0.98, t_us * 1e-6, t_us * 1e-6,
                                       500e-6, 100e-6);
  }
  state.counters["storage_us"] = t_us;
  state.counters["chsh_win"] = win;
}
BENCHMARK(BM_WinVsStorageTime)
    ->Arg(0)->Arg(16)->Arg(40)->Arg(80)->Arg(160)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

// Shared obs flags (see bench_common.hpp): --seed, --metrics-out,
// --metrics-every, --prom-out, --trace-out, and --profile-out /
// --profile-hz / --profile-format (in-process sampling CPU profile;
// folded output pipes straight into flamegraph.pl).
int main(int argc, char** argv) {
  const ftl::bench::Options obs_opts =
      ftl::bench::parse_args(argc, argv, g_seed);
  g_seed = obs_opts.seed;
  const ftl::bench::ObsSession obs_session("bench_noise_ablation", obs_opts);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::cout << "\nCHSH win probability and end-to-end queue length vs pair "
               "visibility (classical references: win 0.75, queue "
            << lb_queue_at_knee(0.0) << " at v=0):\n";
  util::Table t({"visibility", "bell fidelity", "chsh win", "avg queue len"});
  for (double v : {1.0, 0.9, 0.8, 0.75, 0.71, 0.6}) {
    correlate::ChshSource src(v);
    t.add_row({v, (1.0 + 3.0 * v) / 4.0, src.win_probability(0, 0),
               lb_queue_at_knee(v)});
  }
  t.print(std::cout);

  std::cout << "\nCHSH win vs storage time (v0=0.98, T1=500us, T2=100us; "
               "paper cites 16-160us room-temperature storage):\n";
  util::Table st({"storage (us)", "chsh win", "still beats classical"});
  for (double t_us : {0.0, 8.0, 16.0, 40.0, 80.0, 160.0}) {
    const double win = qnet::chsh_win_after_storage(
        0.98, t_us * 1e-6, t_us * 1e-6, 500e-6, 100e-6);
    st.add_row({t_us, win, std::string(win > 0.75 ? "yes" : "no")});
  }
  st.print(std::cout);
  std::cout << "\nDetector inefficiency (one-sided failures break the "
               "correlation and win only 50%):\n";
  util::Table dt({"efficiency", "chsh win", "verdict"});
  for (double eta : {1.0, 0.95, 0.90, 0.85, 0.83, 0.80, 0.70}) {
    const double w = qnet::chsh_win_with_detectors(eta, 1.0);
    dt.add_row({eta, w,
                std::string(w > 0.75 ? "deploy" : "turn quantum OFF")});
  }
  dt.print(std::cout);
  std::cout << "break-even efficiency (ideal pairs): "
            << qnet::breakeven_efficiency(1.0)
            << "; at visibility 0.9: " << qnet::breakeven_efficiency(0.9)
            << "\n";

  std::cout << "\nUseful storage window at v0=0.98: "
            << qnet::useful_storage_window_s(0.98, 500e-6, 100e-6) * 1e6
            << " us\n";
  return 0;
}

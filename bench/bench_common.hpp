// Shared helpers for the bench binaries.
//
// Every bench accepts, ahead of the usual google-benchmark flags:
//   --seed <n>             reseed the random stream (replay property-test
//                          failures through the full benchmark pipeline)
//   --metrics-out=<path>   write an `ftl.obs.run_report/v1` JSON file with
//                          the metric registry snapshot + run metadata
//   --metrics-every=<ms>   append an `ftl.obs.snapshot/v1` JSON line with a
//                          timestamped registry snapshot every <ms>
//                          milliseconds while the bench runs (written to
//                          `<metrics-out>.series`, or `<bench>.series.jsonl`
//                          when --metrics-out was not given); one line is
//                          always written at start and one at exit
//   --prom-out=<path>      write the final registry snapshot in Prometheus
//                          text exposition format (textfile-collector style)
//   --trace-out=<path>     write a Chrome trace_event JSON file (open in
//                          chrome://tracing or https://ui.perfetto.dev)
//   --profile-out=<path>   run the in-process sampling CPU profiler for the
//                          whole bench and write the profile on exit
//   --profile-hz=<n>       profiler sampling rate (default 99 Hz)
//   --profile-format=folded|speedscope
//                          output format: FlameGraph folded stacks (pipe
//                          into flamegraph.pl) or speedscope JSON (default
//                          folded)
// The flags are parsed and *removed* from argv before benchmark::Initialize
// sees them (it treats unknown flags as fatal). Flag/value pairing follows
// util::is_value_token, so a separate negative-number value (`--seed -5`)
// is consumed with its flag while an unrelated dash token (`--seed -v`) is
// left in argv.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <utility>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/args.hpp"

namespace ftl::bench {

struct Options {
  std::uint64_t seed = 0;
  std::string metrics_out;        // empty = no run report
  std::string trace_out;          // empty = no trace
  std::string prom_out;           // empty = no Prometheus export
  std::uint64_t metrics_every_ms = 0;  // 0 = no periodic snapshots
  std::string profile_out;        // empty = no CPU profile
  int profile_hz = 99;
  std::string profile_format = "folded";  // or "speedscope"
};

/// Reads the common bench flags from the command line and then removes them
/// from argv, leaving only what benchmark::Initialize understands. The seed
/// falls back to `fallback_seed` when `--seed` was not passed.
inline Options parse_args(int& argc, char** argv, std::uint64_t fallback_seed) {
  const util::Args args(argc, argv, /*allow_unknown=*/true);
  Options opts;
  opts.seed = static_cast<std::uint64_t>(
      args.get("seed", static_cast<long long>(fallback_seed)));
  opts.metrics_out = args.get("metrics-out", std::string());
  opts.trace_out = args.get("trace-out", std::string());
  opts.prom_out = args.get("prom-out", std::string());
  opts.metrics_every_ms = static_cast<std::uint64_t>(
      args.get("metrics-every", static_cast<long long>(0)));
  opts.profile_out = args.get("profile-out", std::string());
  opts.profile_hz =
      static_cast<int>(args.get("profile-hz", static_cast<long long>(99)));
  opts.profile_format = args.get("profile-format", std::string("folded"));
  if (opts.profile_format != "folded" && opts.profile_format != "speedscope") {
    std::cerr << "bench: unknown --profile-format '" << opts.profile_format
              << "' (expected 'folded' or 'speedscope')\n";
    std::exit(2);
  }

  const auto is_ours = [](const std::string& arg) {
    for (const char* name : {"--seed", "--metrics-out", "--metrics-every",
                             "--prom-out", "--trace-out", "--profile-out",
                             "--profile-hz", "--profile-format"}) {
      if (arg == name || arg.rfind(std::string(name) + "=", 0) == 0)
        return true;
    }
    return false;
  };
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (is_ours(arg)) {
      // Skip the flag and its separate value token, if any. Mirrors the
      // util::Args pairing rule exactly, so a negative-number value is
      // stripped with its flag instead of leaking to google-benchmark.
      if (arg.find('=') == std::string::npos && i + 1 < argc &&
          util::is_value_token(argv[i + 1]))
        ++i;
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  return opts;
}

/// Backwards-compatible shorthand when a bench only cares about the seed.
inline std::uint64_t extract_seed(int& argc, char** argv,
                                  std::uint64_t fallback) {
  return parse_args(argc, argv, fallback).seed;
}

/// RAII observability session for a bench main(). Construct right after
/// parse_args (starts the tracer and the periodic snapshotter if requested);
/// on destruction writes the run report / Prometheus export / trace files
/// requested on the command line.
class ObsSession {
 public:
  ObsSession(std::string name, Options opts)
      : name_(std::move(name)),
        opts_(std::move(opts)),
        t0_(std::chrono::steady_clock::now()),
        cpu0_(std::clock()) {
    if (!opts_.trace_out.empty()) obs::tracer().start();
    if (!opts_.profile_out.empty()) {
      obs::ProfilerOptions popts;
      popts.hz = opts_.profile_hz;
      profiling_ = obs::profiler().start(popts);
      if (!profiling_) {
        if constexpr (obs::kEnabled) {
          std::cerr << "[obs] profiler failed to start (another profile "
                       "session is already running?)\n";
        } else {
          std::cerr << "[obs] profiler unavailable: built with "
                       "FTL_OBS_ENABLED=OFF, no profile will be written\n";
        }
      }
    }
    if (opts_.metrics_every_ms > 0) {
      snapshotter_.emplace(
          series_path(),
          std::chrono::milliseconds(opts_.metrics_every_ms));
      snapshotter_->start();
    }
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  /// Free-form config description recorded in the run report's metadata.
  void set_config(std::string config) { config_ = std::move(config); }

  /// Where --metrics-every appends its snapshot lines.
  [[nodiscard]] static std::string series_path_for(const std::string& name,
                                                   const Options& opts) {
    return opts.metrics_out.empty() ? name + ".series.jsonl"
                                    : opts.metrics_out + ".series";
  }
  [[nodiscard]] std::string series_path() const {
    return series_path_for(name_, opts_);
  }

  ~ObsSession() {
    const auto dt = std::chrono::steady_clock::now() - t0_;
    if (profiling_) {
      // Stop sampling before the report/export writers below run so the
      // profile covers the bench itself, not the teardown I/O.
      obs::profiler().stop();
      const std::string body = opts_.profile_format == "speedscope"
                                   ? obs::profiler().speedscope(name_)
                                   : obs::profiler().folded();
      std::ofstream out(opts_.profile_out, std::ios::trunc);
      if (out && out.write(body.data(),
                           static_cast<std::streamsize>(body.size()))) {
        std::cerr << "[obs] CPU profile (" << obs::profiler().sample_count()
                  << " samples, " << opts_.profile_format << ") written to "
                  << opts_.profile_out << "\n";
      } else {
        std::cerr << "[obs] FAILED to write CPU profile to "
                  << opts_.profile_out << "\n";
      }
    }
    if (snapshotter_) {
      snapshotter_->stop();
      std::cerr << "[obs] " << snapshotter_->snapshots_written()
                << " snapshots appended to " << series_path() << "\n";
    }
    if (!opts_.metrics_out.empty()) {
      obs::RunMeta meta;
      meta.name = name_;
      meta.seed = opts_.seed;
      meta.config = config_;
      meta.wall_time_s = std::chrono::duration<double>(dt).count();
      meta.cpu_time_s = static_cast<double>(std::clock() - cpu0_) /
                        static_cast<double>(CLOCKS_PER_SEC);
      if (obs::write_run_report(opts_.metrics_out, obs::registry().snapshot(),
                                meta)) {
        std::cerr << "[obs] run report written to " << opts_.metrics_out
                  << "\n";
      } else {
        std::cerr << "[obs] FAILED to write run report to "
                  << opts_.metrics_out << "\n";
      }
    }
    if (!opts_.prom_out.empty()) {
      if (obs::write_prometheus_text(opts_.prom_out,
                                     obs::registry().snapshot())) {
        std::cerr << "[obs] Prometheus export written to " << opts_.prom_out
                  << "\n";
      } else {
        std::cerr << "[obs] FAILED to write Prometheus export to "
                  << opts_.prom_out << "\n";
      }
    }
    if (!opts_.trace_out.empty()) {
      obs::tracer().stop();
      if (obs::tracer().write(opts_.trace_out)) {
        std::cerr << "[obs] trace written to " << opts_.trace_out << "\n";
      } else {
        std::cerr << "[obs] FAILED to write trace to " << opts_.trace_out
                  << "\n";
      }
    }
  }

 private:
  std::string name_;
  Options opts_;
  std::string config_;
  std::chrono::steady_clock::time_point t0_;
  std::clock_t cpu0_;
  bool profiling_ = false;
  std::optional<obs::PeriodicSnapshotter> snapshotter_;
};

}  // namespace ftl::bench

// Shared helpers for the bench binaries.
//
// Every bench accepts, ahead of the usual google-benchmark flags:
//   --seed <n>             reseed the random stream (replay property-test
//                          failures through the full benchmark pipeline)
//   --metrics-out=<path>   write an `ftl.obs.run_report/v1` JSON file with
//                          the metric registry snapshot + run metadata
//   --trace-out=<path>     write a Chrome trace_event JSON file (open in
//                          chrome://tracing or https://ui.perfetto.dev)
// The flags are parsed and *removed* from argv before benchmark::Initialize
// sees them (it treats unknown flags as fatal).
#pragma once

#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/args.hpp"

namespace ftl::bench {

struct Options {
  std::uint64_t seed = 0;
  std::string metrics_out;  // empty = no run report
  std::string trace_out;    // empty = no trace
};

/// Reads the common bench flags from the command line and then removes them
/// from argv, leaving only what benchmark::Initialize understands. The seed
/// falls back to `fallback_seed` when `--seed` was not passed.
inline Options parse_args(int& argc, char** argv, std::uint64_t fallback_seed) {
  const util::Args args(argc, argv, /*allow_unknown=*/true);
  Options opts;
  opts.seed = static_cast<std::uint64_t>(
      args.get("seed", static_cast<long long>(fallback_seed)));
  opts.metrics_out = args.get("metrics-out", std::string());
  opts.trace_out = args.get("trace-out", std::string());

  const auto is_ours = [](const std::string& arg) {
    for (const char* name : {"--seed", "--metrics-out", "--trace-out"}) {
      if (arg == name || arg.rfind(std::string(name) + "=", 0) == 0)
        return true;
    }
    return false;
  };
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (is_ours(arg)) {
      // Skip the flag and its separate (non-flag) value token, if any.
      if (arg.find('=') == std::string::npos && i + 1 < argc &&
          std::string(argv[i + 1]).rfind("--", 0) != 0)
        ++i;
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  return opts;
}

/// Backwards-compatible shorthand when a bench only cares about the seed.
inline std::uint64_t extract_seed(int& argc, char** argv,
                                  std::uint64_t fallback) {
  return parse_args(argc, argv, fallback).seed;
}

/// RAII observability session for a bench main(). Construct right after
/// parse_args (starts the tracer if --trace-out was given); on destruction
/// writes the run report and/or trace files requested on the command line.
class ObsSession {
 public:
  ObsSession(std::string name, Options opts)
      : name_(std::move(name)),
        opts_(std::move(opts)),
        t0_(std::chrono::steady_clock::now()) {
    if (!opts_.trace_out.empty()) obs::tracer().start();
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  /// Free-form config description recorded in the run report's metadata.
  void set_config(std::string config) { config_ = std::move(config); }

  ~ObsSession() {
    const auto dt = std::chrono::steady_clock::now() - t0_;
    if (!opts_.metrics_out.empty()) {
      obs::RunMeta meta;
      meta.name = name_;
      meta.seed = opts_.seed;
      meta.config = config_;
      meta.wall_time_s = std::chrono::duration<double>(dt).count();
      if (obs::write_run_report(opts_.metrics_out, obs::registry().snapshot(),
                                meta)) {
        std::cerr << "[obs] run report written to " << opts_.metrics_out
                  << "\n";
      } else {
        std::cerr << "[obs] FAILED to write run report to "
                  << opts_.metrics_out << "\n";
      }
    }
    if (!opts_.trace_out.empty()) {
      obs::tracer().stop();
      if (obs::tracer().write(opts_.trace_out)) {
        std::cerr << "[obs] trace written to " << opts_.trace_out << "\n";
      } else {
        std::cerr << "[obs] FAILED to write trace to " << opts_.trace_out
                  << "\n";
      }
    }
  }

 private:
  std::string name_;
  Options opts_;
  std::string config_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace ftl::bench

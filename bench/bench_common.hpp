// Shared helpers for the bench binaries.
//
// Every bench accepts `--seed <n>` (or `--seed=<n>`) ahead of the usual
// google-benchmark flags, so any figure can be regenerated under a
// different random stream — and any property-test failure seed can be
// replayed through the full benchmark pipeline.
#pragma once

#include <cstdint>
#include <string>

#include "util/args.hpp"

namespace ftl::bench {

/// Reads `--seed` from the command line and then *removes* it from argv so
/// the remaining flags can be handed to benchmark::Initialize (which treats
/// unknown flags as fatal). Returns `fallback` when no seed was passed.
inline std::uint64_t extract_seed(int& argc, char** argv,
                                  std::uint64_t fallback) {
  const util::Args args(argc, argv, /*allow_unknown=*/true);
  const auto seed = static_cast<std::uint64_t>(
      args.get("seed", static_cast<long long>(fallback)));
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed") {
      // Skip the flag and its (non-flag) value token, if any.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) ++i;
      continue;
    }
    if (arg.rfind("--seed=", 0) == 0) continue;
    argv[out++] = argv[i];
  }
  argc = out;
  return seed;
}

}  // namespace ftl::bench

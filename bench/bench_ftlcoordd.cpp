// The coordination service under load: LiveBroker stepped-mode decision
// throughput (deterministic counters, CI-gated) and the full ftlcoordd
// socket path driven by the in-process loadgen (throughput + latency
// percentiles; timing-dependent, recorded but not gated).
//
// The workload runs in main() after RunSpecifiedBenchmarks, mirroring the
// other benches: the CI trajectory job invokes every bench with
// --benchmark_filter=NONE, so the counters that feed BENCH_ftlcoordd.json
// must accumulate outside the google-benchmark bodies. The gbench wrappers
// exist for interactive wall-time runs only.
//
// The qnet.live.requests counter in the run report is deterministic in
// (seed, config): the stepped stage issues a fixed request schedule and
// the socket stage a fixed decision count (admission is configured so no
// batch is ever rejected), so the bench-regression job can gate it at a
// tight threshold even though hit/fallback splits on the socket path vary
// with thread interleaving.
#include <benchmark/benchmark.h>

#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "ftlcoordd/daemon.hpp"
#include "ftlcoordd/loadgen.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "qnet/live_broker.hpp"
#include "util/table.hpp"

namespace {

using namespace ftl;

std::uint64_t g_seed = 42;
constexpr std::size_t kSteppedRequests = 200000;
constexpr std::uint64_t kSocketDecisions = 500000;

qnet::LiveBrokerConfig broker_config(std::size_t sources) {
  qnet::LiveBrokerConfig cfg;
  cfg.sources = sources;
  cfg.qnet.pair_rate_hz = 2e6;
  cfg.qnet.fiber_km = 0.0;
  return cfg;
}

struct SteppedResult {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  std::uint64_t rounds_won = 0;
  std::uint64_t deadline_hit = 0;
  std::uint64_t deadline_miss = 0;
  double wall_s = 0.0;
};

// Deadline model for the stepped stage, in virtual time: a decision that
// consumed a live pair coordinates instantly (the paper's FTL property —
// the correlation is already local), while a classical fallback pays one
// classical RTT, which blows a sub-RTT budget by construction. The
// resulting coordd.deadline.* counters are a pure function of the hit/
// fallback schedule, i.e. of (seed, config) — which is what lets CI gate
// them bit-for-bit while the daemon's wall-clock misses stay ungated.
constexpr double kDeadlineBudgetS = 2e-6;
constexpr double kClassicalRttS = 5e-6;

// Stepped-mode broker throughput: a fixed virtual-time request schedule
// against one source. Every qnet.live.* counter this touches is a pure
// function of (seed, config, schedule).
SteppedResult run_stepped(std::size_t requests) {
  // Tag profiler samples taken inside this loop so the folded stacks join
  // against the coordd.stage_us attribution (`stage:stepped;...` roots).
  const obs::ProfileStage profile_tag("stepped");
  qnet::LiveBroker broker(broker_config(1), g_seed);
  obs::Counter& m_deadline_hit = obs::registry().counter("coordd.deadline.hit");
  obs::Counter& m_deadline_miss = obs::registry().counter(
      "coordd.deadline.miss", {{"stage", "pair_acquire"}});
  const double request_rate_hz = 1e6;
  SteppedResult out;
  out.requests = requests;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < requests; ++i) {
    const double t = static_cast<double>(i) / request_rate_hz;
    const auto d = broker.decide(0, static_cast<std::uint8_t>(i & 1u), t);
    out.hits += d.quantum ? 1 : 0;
    out.rounds_won += d.round_won ? 1 : 0;
    const double service_s = d.quantum ? 0.0 : kClassicalRttS;
    if (service_s > kDeadlineBudgetS) {
      ++out.deadline_miss;
      m_deadline_miss.inc();
    } else {
      ++out.deadline_hit;
      m_deadline_hit.inc();
    }
  }
  out.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

// The real thing: daemon on ephemeral loopback ports, loadgen workers
// batching decide frames over TCP. decisions/s here is the headline number
// the acceptance bar (>= 1M decisions/s) refers to.
coordd::LoadgenResult run_socket(std::uint64_t decisions) {
  coordd::DaemonConfig cfg;
  cfg.seed = g_seed;
  cfg.broker = broker_config(2);
  coordd::Daemon daemon(cfg);
  if (!daemon.start()) {
    coordd::LoadgenResult failed;
    failed.error = "failed to bind loopback ports";
    return failed;
  }
  coordd::LoadgenConfig lg;
  lg.port = daemon.port();
  lg.threads = 2;
  lg.sources = 2;
  lg.decisions = decisions;
  std::ostringstream sink;
  coordd::LoadgenResult result = coordd::run_loadgen(lg, sink);
  daemon.stop();
  return result;
}

void BM_LiveBrokerSteppedDecide(benchmark::State& state) {
  SteppedResult r;
  for (auto _ : state) {
    r = run_stepped(static_cast<std::size_t>(state.range(0)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(r.requests) *
                          state.iterations());
  state.counters["hit_fraction"] =
      static_cast<double>(r.hits) / static_cast<double>(r.requests);
}
BENCHMARK(BM_LiveBrokerSteppedDecide)
    ->Arg(kSteppedRequests)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_FtlcoorddSocketDecide(benchmark::State& state) {
  coordd::LoadgenResult result;
  for (auto _ : state) {
    result = run_socket(static_cast<std::uint64_t>(state.range(0)));
    if (!result.ok) {
      state.SkipWithError(result.error.c_str());
      return;
    }
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(result.decisions_ok * state.iterations()));
  state.counters["decisions_per_s"] = result.achieved_rate_hz();
  state.counters["hit_fraction"] = result.hit_fraction();
  state.counters["batch_rtt_p99_us"] = result.latency.quantile(0.99) * 1e6;
}
BENCHMARK(BM_FtlcoorddSocketDecide)
    ->Arg(500000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

// Shared obs flags (see bench_common.hpp): --seed, --metrics-out,
// --metrics-every, --prom-out, --trace-out, and --profile-out /
// --profile-hz / --profile-format (in-process sampling CPU profile;
// folded output pipes straight into flamegraph.pl).
int main(int argc, char** argv) {
  const ftl::bench::Options obs_opts =
      ftl::bench::parse_args(argc, argv, g_seed);
  g_seed = obs_opts.seed;
  ftl::bench::ObsSession obs_session("bench_ftlcoordd", obs_opts);
  obs_session.set_config("stepped=200000 socket=500000 sources=2");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Counter-bearing workload for the trajectory run report (runs with any
  // --benchmark_filter, including NONE).
  const SteppedResult stepped = run_stepped(kSteppedRequests);
  const coordd::LoadgenResult socket = run_socket(kSocketDecisions);
  if (!socket.ok) {
    std::cerr << "bench_ftlcoordd: socket stage FAILED: " << socket.error
              << "\n";
    return 1;
  }

  std::cout << "\nftlcoordd coordination service under load (seed " << g_seed
            << "):\n";
  util::Table t({"stage", "decisions", "decisions/s", "hit fraction",
                 "win fraction"});
  t.add_row({"stepped broker", static_cast<double>(stepped.requests),
             static_cast<double>(stepped.requests) / stepped.wall_s,
             static_cast<double>(stepped.hits) /
                 static_cast<double>(stepped.requests),
             static_cast<double>(stepped.rounds_won) /
                 static_cast<double>(stepped.requests)});
  t.add_row({"socket loadgen", static_cast<double>(socket.decisions_ok),
             socket.achieved_rate_hz(), socket.hit_fraction(),
             socket.decisions_ok > 0
                 ? static_cast<double>(socket.rounds_won) /
                       static_cast<double>(socket.decisions_ok)
                 : 0.0});
  t.print(std::cout);
  std::cout << "stepped deadline (" << kDeadlineBudgetS * 1e6
            << " us budget, classical RTT " << kClassicalRttS * 1e6
            << " us): " << stepped.deadline_hit << " hit, "
            << stepped.deadline_miss << " missed\n";
  std::cout << "socket batch RTT p50/p95/p99 us: "
            << socket.latency.quantile(0.5) * 1e6 << " / "
            << socket.latency.quantile(0.95) * 1e6 << " / "
            << socket.latency.quantile(0.99) * 1e6 << "\n";
  return 0;
}

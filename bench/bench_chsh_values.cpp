// §2's headline numbers, reproduced from four independent code paths:
// classical CHSH value 0.75 (exhaustive search), quantum value
// cos^2(pi/8) ~ 0.8536 (closed form, density-matrix simulation, sampled
// play, and the Tsirelson SDP), plus the 1/3-2/3 skewed-basis example.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "games/chsh.hpp"
#include "games/xor_game.hpp"
#include "qcore/gates.hpp"
#include "qcore/state.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace ftl;

std::uint64_t g_seed = 7;  // sampled-play stream; override with --seed

void BM_ChshClassicalValue(benchmark::State& state) {
  double v = 0.0;
  for (auto _ : state) {
    v = games::chsh_classical_optimum().value;
    benchmark::DoNotOptimize(v);
  }
  state.counters["value"] = v;
}
BENCHMARK(BM_ChshClassicalValue);

void BM_ChshQuantumExact(benchmark::State& state) {
  double v = 0.0;
  for (auto _ : state) {
    v = games::chsh_quantum_strategy(games::chsh_optimal_angles())
            .value(games::chsh_game());
    benchmark::DoNotOptimize(v);
  }
  state.counters["value"] = v;
}
BENCHMARK(BM_ChshQuantumExact);

void BM_ChshQuantumSdp(benchmark::State& state) {
  double v = 0.0;
  for (auto _ : state) {
    v = (1.0 + games::XorGame::chsh().quantum_bias().bias) / 2.0;
    benchmark::DoNotOptimize(v);
  }
  state.counters["value"] = v;
}
BENCHMARK(BM_ChshQuantumSdp)->Unit(benchmark::kMillisecond);

void BM_ChshQuantumSampled(benchmark::State& state) {
  util::Rng rng(g_seed);
  const auto strat = games::chsh_quantum_strategy(games::chsh_optimal_angles());
  const auto game = games::chsh_game();
  double v = 0.0;
  for (auto _ : state) {
    int wins = 0;
    const int rounds = 100000;
    for (int i = 0; i < rounds; ++i) {
      const std::size_t x = rng.uniform_int(2);
      const std::size_t y = rng.uniform_int(2);
      const auto [a, b] = strat.play(x, y, rng);
      if (game.wins(x, y, static_cast<std::size_t>(a),
                    static_cast<std::size_t>(b)))
        ++wins;
    }
    v = static_cast<double>(wins) / rounds;
  }
  state.counters["value"] = v;
}
BENCHMARK(BM_ChshQuantumSampled)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

// Shared obs flags (see bench_common.hpp): --seed, --metrics-out,
// --metrics-every, --prom-out, --trace-out, and --profile-out /
// --profile-hz / --profile-format (in-process sampling CPU profile;
// folded output pipes straight into flamegraph.pl).
int main(int argc, char** argv) {
  const ftl::bench::Options obs_opts =
      ftl::bench::parse_args(argc, argv, g_seed);
  g_seed = obs_opts.seed;
  const ftl::bench::ObsSession obs_session("bench_chsh_values", obs_opts);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  util::Table t({"quantity", "paper", "measured"});
  t.set_precision(6);
  t.add_row({std::string("CHSH classical value"), 0.75,
             games::chsh_classical_optimum().value});
  t.add_row({std::string("CHSH quantum value (exact sim)"),
             std::cos(M_PI / 8.0) * std::cos(M_PI / 8.0),
             games::chsh_quantum_strategy(games::chsh_optimal_angles())
                 .value(games::chsh_game())});
  t.add_row({std::string("CHSH quantum value (SDP)"),
             std::cos(M_PI / 8.0) * std::cos(M_PI / 8.0),
             (1.0 + games::XorGame::chsh().quantum_bias().bias) / 2.0});
  t.add_row({std::string("flipped CHSH quantum value"),
             std::cos(M_PI / 8.0) * std::cos(M_PI / 8.0),
             games::chsh_quantum_strategy(games::chsh_optimal_angles(), true)
                 .value(games::chsh_game(true))});

  // §2's skewed-basis conditional: P(second reads 0 | first read 0) = 1/3.
  const double c = 1.0 / std::sqrt(3.0);
  const double s2 = std::sqrt(2.0) / std::sqrt(3.0);
  const qcore::CMat skew{{qcore::Cx{c, 0}, qcore::Cx{s2, 0}},
                         {qcore::Cx{s2, 0}, qcore::Cx{-c, 0}}};
  auto rho = qcore::Density::from_state(qcore::StateVec::bell_phi_plus());
  const auto [after0, p0] = rho.collapse(0, qcore::CMat::identity(2), 0);
  t.add_row({std::string("skewed-basis P(0 | first=0)"), 1.0 / 3.0,
             after0.outcome_probability(1, skew, 0)});
  (void)p0;

  std::cout << "\nSection 2 value reproduction:\n";
  t.print(std::cout);
  return 0;
}

// Biased CHSH: how the quantum advantage depends on the input distribution.
//
// §2 cites biased non-local games [38]; for load balancing the bias is the
// workload mix — P(type C) is rarely exactly 1/2. With P(x=1) = P(y=1) = p
// (independent), the XOR-game machinery gives the exact classical
// (exhaustive) and quantum (Tsirelson SDP) values; the see-saw optimiser
// cross-checks the quantum number with an explicit strategy. The known
// theory says the advantage vanishes once the bias is extreme enough that
// a deterministic strategy already wins almost always — measured here.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "games/npa.hpp"
#include "games/seesaw.hpp"
#include "games/xor_game.hpp"
#include "util/table.hpp"

namespace {

using namespace ftl;

std::uint64_t g_seed = 2024;  // see-saw restart stream; override with --seed

games::XorGame biased_chsh(double p) {
  // f(x, y) = x AND y; inputs independent Bernoulli(p).
  std::vector<std::vector<int>> f{{0, 0}, {0, 1}};
  std::vector<std::vector<double>> pi{
      {(1 - p) * (1 - p), (1 - p) * p},
      {p * (1 - p), p * p}};
  return games::XorGame(std::move(f), std::move(pi));
}

void BM_BiasedChsh(benchmark::State& state) {
  const double p = static_cast<double>(state.range(0)) / 100.0;
  const games::XorGame game = biased_chsh(p);
  double classical = 0.0;
  double quantum = 0.0;
  for (auto _ : state) {
    classical = game.classical_value();
    quantum = (1.0 + game.quantum_bias().bias) / 2.0;
  }
  state.counters["p_input_one"] = p;
  state.counters["classical"] = classical;
  state.counters["quantum"] = quantum;
  state.counters["advantage"] = quantum - classical;
}
BENCHMARK(BM_BiasedChsh)
    ->Arg(10)->Arg(25)->Arg(50)->Arg(75)->Arg(90)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

// Shared obs flags (see bench_common.hpp): --seed, --metrics-out,
// --metrics-every, --prom-out, --trace-out, and --profile-out /
// --profile-hz / --profile-format (in-process sampling CPU profile;
// folded output pipes straight into flamegraph.pl).
int main(int argc, char** argv) {
  const ftl::bench::Options obs_opts =
      ftl::bench::parse_args(argc, argv, g_seed);
  g_seed = obs_opts.seed;
  const ftl::bench::ObsSession obs_session("bench_biased_chsh", obs_opts);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::cout << "\nBiased CHSH (P(type C) = p at both balancers):\n";
  util::Table t({"p", "classical", "quantum (SDP)", "quantum (see-saw)",
                 "quantum (NPA upper)", "advantage"});
  for (double p : {0.05, 0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80,
                   0.90, 0.95}) {
    const games::XorGame game = biased_chsh(p);
    const double classical = game.classical_value();
    const double quantum = (1.0 + game.quantum_bias().bias) / 2.0;
    games::SeesawOptions opts;
    opts.restarts = 8;
    opts.seed = g_seed;
    const double seesaw =
        games::seesaw_optimize(game.to_two_party_game(), opts).value;
    const double npa =
        games::npa1_upper_bound(game.to_two_party_game()).upper_bound;
    t.add_row({p, classical, quantum, seesaw, npa, quantum - classical});
  }
  t.print(std::cout);
  std::cout << "\nReading: the advantage peaks at the balanced workload and\n"
               "shrinks toward the edges, where one deterministic answer is\n"
               "almost always right; the see-saw strategy realises the SDP\n"
               "value, the NPA relaxation upper-bounds it to the same digits,\n"
               "and together they *certify* the quantum value at every bias\n"
               "(one Bell pair suffices).\n";
  return 0;
}

// Figure 3's caption claim: "The probability of achieving a quantum
// advantage increases with the number of vertices." Sweep the vertex count
// at fixed edge density and measure the advantage probability.
//
// The sweep runs on games::XorValueEngine, whose branch-and-bound classical
// values are bit-identical to the exhaustive search at a fraction of the
// node visits — which is what lets this bench extend the curve to 12
// vertices (the exhaustive path's 2^n leaf scan made 7 the practical
// ceiling).
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "games/affinity.hpp"
#include "games/value_engine.hpp"
#include "games/xor_game.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace ftl;

std::uint64_t g_seed = 500;  // per-point base seed; override with --seed

constexpr int kGraphsPerPoint = 40;

double advantage_probability(std::size_t vertices, double p_exclusive,
                             int graphs, std::uint64_t seed) {
  games::XorValueOptions opts;
  opts.sdp.restarts = 8;
  opts.sdp.seed = seed;
  games::XorValueEngine engine(opts);
  util::Rng rng(seed);
  int advantaged = 0;
  for (int g = 0; g < graphs; ++g) {
    const auto graph =
        games::AffinityGraph::random(vertices, p_exclusive, rng);
    if (engine.evaluate(games::XorGame::from_affinity(graph)).advantage) {
      ++advantaged;
    }
  }
  return static_cast<double>(advantaged) / graphs;
}

void BM_XorScaling(benchmark::State& state) {
  const auto vertices = static_cast<std::size_t>(state.range(0));
  double p = 0.0;
  for (auto _ : state) {
    p = advantage_probability(vertices, 0.5, kGraphsPerPoint,
                              g_seed + vertices);
  }
  state.counters["vertices"] = static_cast<double>(vertices);
  state.counters["p_advantage"] = p;
}
BENCHMARK(BM_XorScaling)
    ->DenseRange(3, 12, 1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

// Shared obs flags (see bench_common.hpp): --seed, --metrics-out,
// --metrics-every, --prom-out, --trace-out, and --profile-out /
// --profile-hz / --profile-format (in-process sampling CPU profile;
// folded output pipes straight into flamegraph.pl).
int main(int argc, char** argv) {
  const ftl::bench::Options obs_opts =
      ftl::bench::parse_args(argc, argv, g_seed);
  g_seed = obs_opts.seed;
  const ftl::bench::ObsSession obs_session("bench_xor_scaling", obs_opts);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::cout << "\nAdvantage probability vs vertex count (p_exclusive = 0.5, "
            << kGraphsPerPoint << " graphs/point):\n";
  util::Table t({"vertices", "P(quantum advantage)", "ci95"});
  for (std::size_t v = 3; v <= 12; ++v) {
    const double p =
        advantage_probability(v, 0.5, kGraphsPerPoint, g_seed + v);
    t.add_row({static_cast<long long>(v), p,
               util::wilson_halfwidth(
                   static_cast<std::size_t>(
                       p * static_cast<double>(kGraphsPerPoint) + 0.5),
                   kGraphsPerPoint)});
  }
  t.print(std::cout);
  std::cout << "\nExpected: non-decreasing in the vertex count (paper, "
               "Figure 3 caption).\n";
  return 0;
}

// §4.1 footnote 2: "The observed advantage is robust to other server
// execution strategies." We re-run the Figure-4 comparison under all three
// service policies and report the quantum/classical queue-length ratio at
// loads around the knee. Expected: ratio < 1 everywhere.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "correlate/decision_source.hpp"
#include "lb/simulator.hpp"
#include "util/table.hpp"

namespace {

using namespace ftl;

std::uint64_t g_seed = 99;  // override with --seed

lb::LbResult run_once(std::size_t servers, lb::ServicePolicy policy,
                      bool quantum) {
  lb::LbConfig cfg;
  cfg.num_balancers = 100;
  cfg.num_servers = servers;
  cfg.policy = policy;
  cfg.warmup_steps = 800;
  cfg.measure_steps = 3000;
  cfg.seed = g_seed;
  if (quantum) {
    lb::PairedStrategy strat(std::make_unique<correlate::ChshSource>(1.0));
    return run_lb_sim(cfg, strat);
  }
  lb::RandomStrategy strat;
  return run_lb_sim(cfg, strat);
}

void BM_Policy(benchmark::State& state, lb::ServicePolicy policy) {
  const std::size_t servers = static_cast<std::size_t>(state.range(0));
  double ratio = 0.0;
  lb::LbResult rq{};
  lb::LbResult rc{};
  for (auto _ : state) {
    rq = run_once(servers, policy, true);
    rc = run_once(servers, policy, false);
    ratio = rq.mean_queue_length / std::max(rc.mean_queue_length, 1e-9);
  }
  state.counters["load"] = 100.0 / static_cast<double>(servers);
  state.counters["queue_quantum"] = rq.mean_queue_length;
  state.counters["queue_classical"] = rc.mean_queue_length;
  state.counters["q_over_c"] = ratio;
}

BENCHMARK_CAPTURE(BM_Policy, paper_c_first, lb::ServicePolicy::kPaperCFirst)
    ->Arg(100)->Arg(86)->Arg(76)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK_CAPTURE(BM_Policy, fifo_pair, lb::ServicePolicy::kFifoPair)
    ->Arg(100)->Arg(86)->Arg(76)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK_CAPTURE(BM_Policy, e_first, lb::ServicePolicy::kEFirst)
    ->Arg(100)->Arg(86)->Arg(76)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

// Shared obs flags (see bench_common.hpp): --seed, --metrics-out,
// --metrics-every, --prom-out, --trace-out, and --profile-out /
// --profile-hz / --profile-format (in-process sampling CPU profile;
// folded output pipes straight into flamegraph.pl).
int main(int argc, char** argv) {
  const ftl::bench::Options obs_opts =
      ftl::bench::parse_args(argc, argv, g_seed);
  g_seed = obs_opts.seed;
  const ftl::bench::ObsSession obs_session("bench_fig4_service_policies", obs_opts);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::cout << "\nFootnote-2 robustness: quantum vs classical mean queue "
               "length under each service policy:\n";
  util::Table t({"policy", "load", "classical", "quantum", "quantum/classical"});
  for (auto policy : {lb::ServicePolicy::kPaperCFirst,
                      lb::ServicePolicy::kFifoPair,
                      lb::ServicePolicy::kEFirst}) {
    for (std::size_t servers : {100u, 86u, 76u}) {
      const auto rq = run_once(servers, policy, true);
      const auto rc = run_once(servers, policy, false);
      t.add_row({std::string(lb::to_string(policy)),
                 100.0 / static_cast<double>(servers), rc.mean_queue_length,
                 rq.mean_queue_length,
                 rq.mean_queue_length / std::max(rc.mean_queue_length, 1e-9)});
    }
  }
  t.print(std::cout);
  return 0;
}

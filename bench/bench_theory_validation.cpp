// Validation bench: the simulator against parameter-free theory.
//
// Not a figure from the paper — this is the evidence that the simulator
// the figures rest on is *correct*: exact discrete-time queueing formulas,
// Little's law, and the stability-bound bracket around the Figure-4 knee.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "lb/analysis.hpp"
#include "lb/simulator.hpp"
#include "util/table.hpp"

namespace {

using namespace ftl;

std::uint64_t g_seed = 12;  // override with --seed

lb::LbResult run_pure_e(std::size_t n, std::size_t m) {
  lb::LbConfig cfg;
  cfg.num_balancers = n;
  cfg.num_servers = m;
  cfg.p_colocate = 0.0;
  cfg.warmup_steps = 3000;
  cfg.measure_steps = 30000;
  cfg.seed = g_seed;
  lb::RandomStrategy strat;
  return run_lb_sim(cfg, strat);
}

void BM_TheoryVsSim(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t m = 80;
  lb::LbResult r{};
  for (auto _ : state) {
    r = run_pure_e(n, m);
  }
  const double theory = lb::unit_service_mean_queue(
      lb::ArrivalMoments::from_binomial(n, 1.0 / static_cast<double>(m)));
  state.counters["load"] = static_cast<double>(n) / static_cast<double>(m);
  state.counters["sim_queue"] = r.mean_queue_length;
  state.counters["theory_queue"] = theory;
}
BENCHMARK(BM_TheoryVsSim)
    ->Arg(24)->Arg(40)->Arg(56)->Arg(72)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

// Shared obs flags (see bench_common.hpp): --seed, --metrics-out,
// --metrics-every, --prom-out, --trace-out, and --profile-out /
// --profile-hz / --profile-format (in-process sampling CPU profile;
// folded output pipes straight into flamegraph.pl).
int main(int argc, char** argv) {
  const ftl::bench::Options obs_opts =
      ftl::bench::parse_args(argc, argv, g_seed);
  g_seed = obs_opts.seed;
  const ftl::bench::ObsSession obs_session("bench_theory_validation", obs_opts);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::cout << "\nSimulator vs exact discrete-time queueing theory "
               "(pure type-E workload, random assignment):\n";
  util::Table t({"load", "sim mean queue", "theory mean queue",
                 "sim mean delay", "Little's law Q/lambda"});
  for (std::size_t n : {24u, 40u, 56u, 72u}) {
    const std::size_t m = 80;
    const auto r = run_pure_e(n, m);
    const double load = static_cast<double>(n) / static_cast<double>(m);
    const double theory = lb::unit_service_mean_queue(
        lb::ArrivalMoments::from_binomial(n, 1.0 / static_cast<double>(m)));
    t.add_row({load, r.mean_queue_length, theory, r.mean_delay,
               r.mean_queue_length / load});
  }
  t.print(std::cout);

  const auto bounds = lb::paper_policy_stability_bounds(0.5);
  std::cout << "\nStability bounds for the Figure-4 workload (pC = 0.5): "
               "knee must lie in (" << bounds.lower << ", " << bounds.upper
            << ") — the measured classical knee at load ~1.1-1.2 does.\n";
  return 0;
}

// §4.2: ECMP routing. Reproduces the section's two results:
//   1. The no-signaling reduction — an inactive party's measurement choice
//      cannot influence the active pair's joint distribution, so N-way
//      entanglement collapses to a pairwise mixture (measured deviation ~ 0).
//   2. The conjectured absence of quantum advantage — exhaustive angle grid
//      search over GHZ strategies never beats the classical balanced
//      partition, and pre-paired singlets exactly match it.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "ecmp/no_signaling.hpp"
#include "ecmp/simulator.hpp"
#include "ecmp/strategies.hpp"
#include "qcore/gates.hpp"
#include "util/table.hpp"

namespace {

using namespace ftl;

std::uint64_t g_seed = 7;  // EcmpConfig default; override with --seed

void BM_NoSignalingDeviation(benchmark::State& state) {
  const auto rho = qcore::Density::from_state(
      qcore::StateVec::ghz(static_cast<std::size_t>(state.range(0))));
  double max_dev = 0.0;
  for (auto _ : state) {
    max_dev = 0.0;
    for (double tc = 0.0; tc < M_PI; tc += M_PI / 16.0) {
      max_dev = std::max(
          max_dev, ecmp::no_signaling_deviation(
                       rho, 0, qcore::gates::real_basis(0.4), 1,
                       qcore::gates::real_basis(1.1),
                       static_cast<std::size_t>(state.range(0)) - 1,
                       qcore::gates::real_basis(tc)));
    }
  }
  state.counters["max_deviation"] = max_dev;
}
BENCHMARK(BM_NoSignalingDeviation)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_GhzGridSearch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  double best = 1.0;
  for (auto _ : state) {
    best = ecmp::grid_search_ghz_min_collision(n, 16);
  }
  state.counters["best_ghz_collision"] = best;
  state.counters["classical_partition"] =
      ecmp::SharedPartition::pair_collision_probability(n, 2);
}
BENCHMARK(BM_GhzGridSearch)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_EcmpSimulation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ecmp::EcmpConfig cfg;
  cfg.active = 2;
  cfg.rounds = 50000;
  cfg.seed = g_seed;
  double ind = 0.0;
  double part = 0.0;
  for (auto _ : state) {
    ecmp::IndependentUniform s_ind(n, 2);
    ecmp::SharedPartition s_part(n, 2);
    ind = run_ecmp_sim(cfg, s_ind).mean_collisions;
    part = run_ecmp_sim(cfg, s_part).mean_collisions;
  }
  state.counters["independent"] = ind;
  state.counters["shared_partition"] = part;
}
BENCHMARK(BM_EcmpSimulation)->Arg(3)->Arg(4)->Arg(6)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

// Shared obs flags (see bench_common.hpp): --seed, --metrics-out,
// --metrics-every, --prom-out, --trace-out, and --profile-out /
// --profile-hz / --profile-format (in-process sampling CPU profile;
// folded output pipes straight into flamegraph.pl).
int main(int argc, char** argv) {
  const ftl::bench::Options obs_opts =
      ftl::bench::parse_args(argc, argv, g_seed);
  g_seed = obs_opts.seed;
  const ftl::bench::ObsSession obs_session("bench_ecmp_no_advantage", obs_opts);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::cout << "\nECMP collision probabilities (M = 2 paths, 2 active "
               "switches drawn uniformly):\n";
  util::Table t({"N", "independent random", "shared partition (classical opt)",
                 "paired singlets", "best GHZ (grid search)",
                 "best W state (grid search)"});
  for (std::size_t n : {3u, 4u}) {
    ecmp::EcmpConfig cfg;
    cfg.active = 2;
    cfg.rounds = 100000;
    cfg.seed = g_seed;
    ecmp::IndependentUniform s_ind(n, 2);
    ecmp::PairedSinglets s_singlet(n);
    ecmp::SharedPartition s_part(n, 2);
    t.add_row({static_cast<long long>(n),
               run_ecmp_sim(cfg, s_ind).mean_collisions,
               run_ecmp_sim(cfg, s_part).mean_collisions,
               run_ecmp_sim(cfg, s_singlet).mean_collisions,
               ecmp::grid_search_ghz_min_collision(n, 16),
               ecmp::grid_search_w_min_collision(n, 16)});
  }
  t.print(std::cout);
  std::cout << "\nReading: no quantum column beats the classical partition "
               "(the paper's conjecture); the no-signaling deviation above "
               "is numerically zero (the paper's proof).\n";

  // The reduction, shown constructively for the report.
  const auto rho = qcore::Density::from_state(qcore::StateVec::ghz(3));
  const auto ensemble =
      ecmp::reduce_by_measuring(rho, 2, qcore::gates::real_basis(0.3));
  std::cout << "\nConstructive reduction: GHZ(3) with C measured first "
               "becomes a mixture of "
            << ensemble.size() << " pairwise states (probs";
  for (const auto& [p, st] : ensemble) {
    (void)st;
    std::cout << " " << p;
  }
  std::cout << ").\n";
  return 0;
}

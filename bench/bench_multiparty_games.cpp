// §2/§4.1's multiparty pointer: XOR games extend to more than two players
// with a larger advantage [12, 31]. The Mermin-GHZ parity game makes the
// gap concrete: classical value 1/2 + 2^{-ceil(n/2)} vs quantum 1.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "games/magic_square.hpp"
#include "games/multiparty.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace ftl;

std::uint64_t g_seed = 3;  // sampled-play streams; override with --seed

void BM_MerminClassical(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  double v = 0.0;
  for (auto _ : state) {
    v = games::GhzParityGame(n).classical_value();
  }
  state.counters["classical_value"] = v;
}
BENCHMARK(BM_MerminClassical)->Arg(3)->Arg(4)->Arg(5)->Arg(6)
    ->Unit(benchmark::kMillisecond);

void BM_MerminQuantumExact(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  double v = 0.0;
  for (auto _ : state) {
    v = games::GhzParityGame(n).quantum_value_exact();
  }
  state.counters["quantum_value"] = v;
}
BENCHMARK(BM_MerminQuantumExact)->Arg(3)->Arg(4)->Arg(5)->Arg(6)
    ->Unit(benchmark::kMillisecond);

void BM_MerminSampledPlay(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const games::GhzParityGame game(n);
  util::Rng rng(g_seed);
  double win = 0.0;
  for (auto _ : state) {
    int wins = 0;
    const int rounds = 5000;
    for (int i = 0; i < rounds; ++i) {
      const auto& in = game.inputs()[rng.uniform_int(game.inputs().size())];
      if (game.wins(in, game.play_quantum(in, rng))) ++wins;
    }
    win = static_cast<double>(wins) / rounds;
  }
  state.counters["sampled_win"] = win;
}
BENCHMARK(BM_MerminSampledPlay)->Arg(3)->Arg(5)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

// Shared obs flags (see bench_common.hpp): --seed, --metrics-out,
// --metrics-every, --prom-out, --trace-out, and --profile-out /
// --profile-hz / --profile-format (in-process sampling CPU profile;
// folded output pipes straight into flamegraph.pl).
int main(int argc, char** argv) {
  const ftl::bench::Options obs_opts =
      ftl::bench::parse_args(argc, argv, g_seed);
  g_seed = obs_opts.seed;
  const ftl::bench::ObsSession obs_session("bench_multiparty_games", obs_opts);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::cout << "\nMermin-GHZ parity game values (advantage grows with "
               "parties, per [31]):\n";
  util::Table t({"parties", "classical (theory)", "classical (measured)",
                 "quantum (exact sim)", "gap"});
  for (std::size_t n = 3; n <= 6; ++n) {
    const games::GhzParityGame game(n);
    const double theory =
        0.5 + std::pow(2.0, -std::ceil(static_cast<double>(n) / 2.0));
    const double classical = game.classical_value();
    const double quantum = game.quantum_value_exact();
    t.add_row({static_cast<long long>(n), theory, classical, quantum,
               quantum - classical});
  }
  t.print(std::cout);

  // Pseudo-telepathy: the magic square game (paper ref [11]).
  const games::MagicSquareGame square;
  util::Rng rng(g_seed + 96);
  int wins = 0;
  const int rounds = 2000;
  for (int i = 0; i < rounds; ++i) {
    const std::size_t r = rng.uniform_int(3);
    const std::size_t c = rng.uniform_int(3);
    if (square.wins(r, c, square.play_quantum(r, c, rng))) ++wins;
  }
  std::cout << "\nMermin-Peres magic square (pseudo-telepathy):\n";
  util::Table mt({"quantity", "value"});
  mt.set_precision(6);
  mt.add_row({std::string("classical value (exhaustive)"),
              square.classical_value()});
  mt.add_row({std::string("theory"), 8.0 / 9.0});
  mt.add_row({std::string("quantum sampled win rate"),
              static_cast<double>(wins) / rounds});
  mt.print(std::cout);
  return 0;
}

// §4.1 "Caveats": classical and hybrid alternatives to the quantum scheme.
//
//  (a) Dedicated servers: a fixed fraction of servers takes only type-C
//      tasks. Works when the split matches the workload, but §4.1 notes it
//      breaks down with multiple C subtypes — modelled here by requiring
//      pairing within a subtype (mixed subtypes do not share a slot).
//  (b) Local batching: with several requests per balancer per RTT, a
//      balancer can co-locate its own C tasks without any coordination.
//  (c) Classical mixtures: the best trade-off any shared-randomness scheme
//      can make between co-locating C-C and separating the rest.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "correlate/decision_source.hpp"
#include "lb/simulator.hpp"
#include "util/table.hpp"

namespace {

using namespace ftl;

std::uint64_t g_seed = 4242;  // override with --seed

lb::LbConfig base_cfg(std::size_t servers) {
  lb::LbConfig cfg;
  cfg.num_balancers = 100;
  cfg.num_servers = servers;
  cfg.warmup_steps = 800;
  cfg.measure_steps = 3000;
  cfg.seed = g_seed;
  return cfg;
}

double run_queue(lb::LbStrategy& s, std::size_t servers,
                 std::size_t batch = 1) {
  lb::LbConfig cfg = base_cfg(servers);
  cfg.batch_size = batch;
  return run_lb_sim(cfg, s).mean_queue_length;
}

void BM_DedicatedFractionSweep(benchmark::State& state) {
  const double frac = static_cast<double>(state.range(0)) / 10.0;
  double q = 0.0;
  for (auto _ : state) {
    lb::DedicatedServersStrategy strat(frac);
    q = run_queue(strat, 86);
  }
  state.counters["c_fraction"] = frac;
  state.counters["avg_queue_len"] = q;
}
BENCHMARK(BM_DedicatedFractionSweep)
    ->DenseRange(2, 8, 2)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_MixedClassicalSweep(benchmark::State& state) {
  const double p_same = static_cast<double>(state.range(0)) / 10.0;
  double q = 0.0;
  for (auto _ : state) {
    lb::PairedStrategy strat(
        std::make_unique<correlate::MixedClassicalSource>(p_same));
    q = run_queue(strat, 86);
  }
  state.counters["p_same"] = p_same;
  state.counters["avg_queue_len"] = q;
}
BENCHMARK(BM_MixedClassicalSweep)
    ->DenseRange(0, 10, 2)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_LocalBatching(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  double q = 0.0;
  for (auto _ : state) {
    lb::LocalBatchingStrategy strat;
    // Scale servers so the load stays ~1.16 regardless of batch size.
    q = run_queue(strat, 86 * batch, batch);
  }
  state.counters["batch"] = static_cast<double>(batch);
  state.counters["avg_queue_len"] = q;
}
BENCHMARK(BM_LocalBatching)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

// Shared obs flags (see bench_common.hpp): --seed, --metrics-out,
// --metrics-every, --prom-out, --trace-out, and --profile-out /
// --profile-hz / --profile-format (in-process sampling CPU profile;
// folded output pipes straight into flamegraph.pl).
int main(int argc, char** argv) {
  const ftl::bench::Options obs_opts =
      ftl::bench::parse_args(argc, argv, g_seed);
  g_seed = obs_opts.seed;
  const ftl::bench::ObsSession obs_session("bench_caveats_ablation", obs_opts);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const std::size_t servers = 86;  // load ~1.16, the knee region

  std::cout << "\nCaveats ablation at load " << 100.0 / servers
            << " (mean queue length; lower is better):\n";
  util::Table t({"strategy", "avg_queue_len"});
  {
    lb::RandomStrategy s;
    t.add_row({std::string("classical random"), run_queue(s, servers)});
  }
  {
    lb::RoundRobinStrategy s;
    t.add_row({std::string("round robin"), run_queue(s, servers)});
  }
  {
    lb::PowerOfTwoStrategy s;
    t.add_row({std::string("power-of-two (needs queue info)"),
               run_queue(s, servers)});
  }
  for (double f : {0.3, 0.4, 0.5, 0.6}) {
    lb::DedicatedServersStrategy s(f);
    t.add_row({"dedicated servers f=" + std::to_string(f).substr(0, 3),
               run_queue(s, servers)});
  }
  for (double p : {0.0, 0.25, 0.5}) {
    lb::PairedStrategy s(std::make_unique<correlate::MixedClassicalSource>(p));
    t.add_row({"classical mixture p_same=" + std::to_string(p).substr(0, 4),
               run_queue(s, servers)});
  }
  {
    lb::PairedStrategy s(std::make_unique<correlate::ChshSource>(1.0));
    t.add_row({std::string("quantum CHSH"), run_queue(s, servers)});
  }
  {
    lb::PairedStrategy s(std::make_unique<correlate::OmniscientOracleSource>());
    t.add_row({std::string("omniscient (testbed cheat)"),
               run_queue(s, servers)});
  }
  t.print(std::cout);

  std::cout << "\nLocal batching (multiple requests per RTT shrink the "
               "quantum edge, as the caveat predicts):\n";
  util::Table bt({"batch size", "local batching", "quantum paired (batch 1 "
                  "equivalent load)"});
  for (std::size_t batch : {1u, 2u, 4u, 8u}) {
    lb::LocalBatchingStrategy local;
    lb::PairedStrategy quantum(std::make_unique<correlate::ChshSource>(1.0));
    bt.add_row({static_cast<long long>(batch),
                run_queue(local, servers * batch, batch),
                run_queue(quantum, servers)});
  }
  bt.print(std::cout);
  return 0;
}

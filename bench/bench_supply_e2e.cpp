// End-to-end hardware budget study: the Figure-4 cluster experiment re-run
// with a *finite* entanglement source (qnet supply model rationing the
// pairs). This is the bench a deployment engineer would read: it says what
// SPDC pair rate a cluster at a given load needs before the quantum load
// balancer stops being a paper exercise.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "core/supply_source.hpp"
#include "lb/simulator.hpp"
#include "util/table.hpp"

namespace {

using namespace ftl;

std::uint64_t g_seed = 31;  // cluster + supply streams; override with --seed

lb::LbResult run_with_rate(double pair_rate_hz, std::size_t servers) {
  lb::LbConfig cfg;
  cfg.num_balancers = 100;
  cfg.num_servers = servers;
  cfg.warmup_steps = 600;
  cfg.measure_steps = 3000;
  cfg.seed = g_seed;

  core::PairConfig pc;
  pc.backend = core::Backend::kQuantum;
  pc.visibility = 1.0;
  qnet::QnetConfig supply;
  supply.pair_rate_hz = pair_rate_hz;
  supply.source_visibility = 0.99;
  pc.supply = supply;
  pc.round_rate_hz = 1e4;  // one CHSH round per pair of balancers per step
  pc.seed = g_seed + 17;  // decorrelated from the cluster stream

  lb::PairedStrategy strat(std::make_unique<core::SupplyAwareSource>(pc));
  return run_lb_sim(cfg, strat);
}

lb::LbResult run_reference(const std::string& kind, std::size_t servers) {
  lb::LbConfig cfg;
  cfg.num_balancers = 100;
  cfg.num_servers = servers;
  cfg.warmup_steps = 600;
  cfg.measure_steps = 3000;
  cfg.seed = g_seed;
  if (kind == "random") {
    lb::RandomStrategy s;
    return run_lb_sim(cfg, s);
  }
  if (kind == "classical") {
    lb::PairedStrategy s(std::make_unique<correlate::ClassicalChshSource>());
    return run_lb_sim(cfg, s);
  }
  lb::PairedStrategy s(std::make_unique<correlate::ChshSource>(1.0));
  return run_lb_sim(cfg, s);
}

void BM_SupplyE2E(benchmark::State& state) {
  const double rate = std::pow(10.0, static_cast<double>(state.range(0)) / 2.0);
  lb::LbResult r{};
  for (auto _ : state) {
    r = run_with_rate(rate, 86);
  }
  state.counters["pair_rate_hz"] = rate;
  state.counters["avg_queue_len"] = r.mean_queue_length;
  state.counters["mean_delay"] = r.mean_delay;
}
// 10^3 .. 10^6 pairs/s in half-decade steps.
BENCHMARK(BM_SupplyE2E)
    ->DenseRange(6, 12, 1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

// Shared obs flags (see bench_common.hpp): --seed, --metrics-out,
// --metrics-every, --prom-out, --trace-out, and --profile-out /
// --profile-hz / --profile-format (in-process sampling CPU profile;
// folded output pipes straight into flamegraph.pl).
int main(int argc, char** argv) {
  const ftl::bench::Options obs_opts =
      ftl::bench::parse_args(argc, argv, g_seed);
  g_seed = obs_opts.seed;
  const ftl::bench::ObsSession obs_session("bench_supply_e2e", obs_opts);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const std::size_t servers = 86;  // load ~1.16, the knee
  std::cout << "\nEnd-to-end queue length at load 1.16 vs entanglement "
               "source rate (10k decision rounds/s per balancer pair):\n";
  util::Table t({"pair rate (hz)", "avg queue len", "mean delay"});
  for (int e = 6; e <= 12; ++e) {
    const double rate = std::pow(10.0, e / 2.0);
    const auto r = run_with_rate(rate, servers);
    t.add_row({rate, r.mean_queue_length, r.mean_delay});
  }
  t.print(std::cout);

  std::cout << "\nReference points (same seed, same load):\n";
  util::Table ref({"strategy", "avg queue len"});
  ref.add_row({std::string("classical random"),
               run_reference("random", servers).mean_queue_length});
  ref.add_row({std::string("classical paired"),
               run_reference("classical", servers).mean_queue_length});
  ref.add_row({std::string("quantum ideal (infinite rate)"),
               run_reference("quantum", servers).mean_queue_length});
  ref.print(std::cout);
  std::cout << "\nReading: the supply-limited curve interpolates from the\n"
               "classical reference (starved source) to the ideal quantum\n"
               "reference (saturated source); the crossover sits where the\n"
               "pair rate matches the decision rate, squarely inside the\n"
               "1e4-1e7 pairs/s range SPDC hardware delivers (§3).\n";
  return 0;
}

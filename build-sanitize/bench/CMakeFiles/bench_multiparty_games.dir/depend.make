# Empty dependencies file for bench_multiparty_games.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_multiparty_games.dir/bench_multiparty_games.cpp.o"
  "CMakeFiles/bench_multiparty_games.dir/bench_multiparty_games.cpp.o.d"
  "bench_multiparty_games"
  "bench_multiparty_games.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multiparty_games.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

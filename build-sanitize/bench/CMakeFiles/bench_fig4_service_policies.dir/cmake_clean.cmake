file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_service_policies.dir/bench_fig4_service_policies.cpp.o"
  "CMakeFiles/bench_fig4_service_policies.dir/bench_fig4_service_policies.cpp.o.d"
  "bench_fig4_service_policies"
  "bench_fig4_service_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_service_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

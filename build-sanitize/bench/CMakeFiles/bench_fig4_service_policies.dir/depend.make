# Empty dependencies file for bench_fig4_service_policies.
# This may be replaced when dependencies are built.

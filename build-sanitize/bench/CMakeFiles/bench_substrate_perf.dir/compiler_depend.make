# Empty compiler generated dependencies file for bench_substrate_perf.
# This may be replaced when dependencies are built.

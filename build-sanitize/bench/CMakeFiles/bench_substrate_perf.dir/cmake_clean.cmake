file(REMOVE_RECURSE
  "CMakeFiles/bench_substrate_perf.dir/bench_substrate_perf.cpp.o"
  "CMakeFiles/bench_substrate_perf.dir/bench_substrate_perf.cpp.o.d"
  "bench_substrate_perf"
  "bench_substrate_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_substrate_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_biased_chsh.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_biased_chsh.dir/bench_biased_chsh.cpp.o"
  "CMakeFiles/bench_biased_chsh.dir/bench_biased_chsh.cpp.o.d"
  "bench_biased_chsh"
  "bench_biased_chsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_biased_chsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_qnet_timing.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_qnet_timing.dir/bench_qnet_timing.cpp.o"
  "CMakeFiles/bench_qnet_timing.dir/bench_qnet_timing.cpp.o.d"
  "bench_qnet_timing"
  "bench_qnet_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qnet_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

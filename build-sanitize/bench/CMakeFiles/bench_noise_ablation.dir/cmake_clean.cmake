file(REMOVE_RECURSE
  "CMakeFiles/bench_noise_ablation.dir/bench_noise_ablation.cpp.o"
  "CMakeFiles/bench_noise_ablation.dir/bench_noise_ablation.cpp.o.d"
  "bench_noise_ablation"
  "bench_noise_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_noise_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_noise_ablation.
# This may be replaced when dependencies are built.

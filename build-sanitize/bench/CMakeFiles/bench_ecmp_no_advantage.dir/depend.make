# Empty dependencies file for bench_ecmp_no_advantage.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ecmp_no_advantage.dir/bench_ecmp_no_advantage.cpp.o"
  "CMakeFiles/bench_ecmp_no_advantage.dir/bench_ecmp_no_advantage.cpp.o.d"
  "bench_ecmp_no_advantage"
  "bench_ecmp_no_advantage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ecmp_no_advantage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

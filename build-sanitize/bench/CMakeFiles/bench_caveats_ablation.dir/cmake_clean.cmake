file(REMOVE_RECURSE
  "CMakeFiles/bench_caveats_ablation.dir/bench_caveats_ablation.cpp.o"
  "CMakeFiles/bench_caveats_ablation.dir/bench_caveats_ablation.cpp.o.d"
  "bench_caveats_ablation"
  "bench_caveats_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_caveats_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_chsh_values.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_chsh_values.dir/bench_chsh_values.cpp.o"
  "CMakeFiles/bench_chsh_values.dir/bench_chsh_values.cpp.o.d"
  "bench_chsh_values"
  "bench_chsh_values.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chsh_values.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

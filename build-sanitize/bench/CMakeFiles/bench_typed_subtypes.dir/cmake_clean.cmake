file(REMOVE_RECURSE
  "CMakeFiles/bench_typed_subtypes.dir/bench_typed_subtypes.cpp.o"
  "CMakeFiles/bench_typed_subtypes.dir/bench_typed_subtypes.cpp.o.d"
  "bench_typed_subtypes"
  "bench_typed_subtypes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_typed_subtypes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_typed_subtypes.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fig4_load_balancing.
# This may be replaced when dependencies are built.

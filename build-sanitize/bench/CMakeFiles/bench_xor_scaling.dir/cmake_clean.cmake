file(REMOVE_RECURSE
  "CMakeFiles/bench_xor_scaling.dir/bench_xor_scaling.cpp.o"
  "CMakeFiles/bench_xor_scaling.dir/bench_xor_scaling.cpp.o.d"
  "bench_xor_scaling"
  "bench_xor_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_xor_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_xor_scaling.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_distillation.dir/bench_distillation.cpp.o"
  "CMakeFiles/bench_distillation.dir/bench_distillation.cpp.o.d"
  "bench_distillation"
  "bench_distillation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_distillation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_distillation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_theory_validation.dir/bench_theory_validation.cpp.o"
  "CMakeFiles/bench_theory_validation.dir/bench_theory_validation.cpp.o.d"
  "bench_theory_validation"
  "bench_theory_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theory_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

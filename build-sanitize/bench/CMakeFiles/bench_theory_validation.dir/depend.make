# Empty dependencies file for bench_theory_validation.
# This may be replaced when dependencies are built.

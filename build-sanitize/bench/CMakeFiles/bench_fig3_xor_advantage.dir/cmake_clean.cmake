file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_xor_advantage.dir/bench_fig3_xor_advantage.cpp.o"
  "CMakeFiles/bench_fig3_xor_advantage.dir/bench_fig3_xor_advantage.cpp.o.d"
  "bench_fig3_xor_advantage"
  "bench_fig3_xor_advantage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_xor_advantage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

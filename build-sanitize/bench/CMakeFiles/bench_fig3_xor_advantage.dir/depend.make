# Empty dependencies file for bench_fig3_xor_advantage.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libftl_util.a"
)

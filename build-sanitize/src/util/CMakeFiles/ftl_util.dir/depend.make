# Empty dependencies file for ftl_util.
# This may be replaced when dependencies are built.

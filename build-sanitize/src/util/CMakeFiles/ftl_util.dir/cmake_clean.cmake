file(REMOVE_RECURSE
  "CMakeFiles/ftl_util.dir/args.cpp.o"
  "CMakeFiles/ftl_util.dir/args.cpp.o.d"
  "CMakeFiles/ftl_util.dir/histogram.cpp.o"
  "CMakeFiles/ftl_util.dir/histogram.cpp.o.d"
  "CMakeFiles/ftl_util.dir/rng.cpp.o"
  "CMakeFiles/ftl_util.dir/rng.cpp.o.d"
  "CMakeFiles/ftl_util.dir/stats.cpp.o"
  "CMakeFiles/ftl_util.dir/stats.cpp.o.d"
  "CMakeFiles/ftl_util.dir/table.cpp.o"
  "CMakeFiles/ftl_util.dir/table.cpp.o.d"
  "libftl_util.a"
  "libftl_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

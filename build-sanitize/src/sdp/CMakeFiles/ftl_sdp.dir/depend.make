# Empty dependencies file for ftl_sdp.
# This may be replaced when dependencies are built.

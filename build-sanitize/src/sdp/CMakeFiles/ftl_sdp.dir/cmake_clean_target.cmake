file(REMOVE_RECURSE
  "libftl_sdp.a"
)

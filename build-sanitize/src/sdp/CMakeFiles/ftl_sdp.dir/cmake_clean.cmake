file(REMOVE_RECURSE
  "CMakeFiles/ftl_sdp.dir/dense.cpp.o"
  "CMakeFiles/ftl_sdp.dir/dense.cpp.o.d"
  "CMakeFiles/ftl_sdp.dir/tsirelson.cpp.o"
  "CMakeFiles/ftl_sdp.dir/tsirelson.cpp.o.d"
  "libftl_sdp.a"
  "libftl_sdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_sdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libftl_lb.a"
)

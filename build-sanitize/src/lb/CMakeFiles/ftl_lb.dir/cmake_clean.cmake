file(REMOVE_RECURSE
  "CMakeFiles/ftl_lb.dir/analysis.cpp.o"
  "CMakeFiles/ftl_lb.dir/analysis.cpp.o.d"
  "CMakeFiles/ftl_lb.dir/invariants.cpp.o"
  "CMakeFiles/ftl_lb.dir/invariants.cpp.o.d"
  "CMakeFiles/ftl_lb.dir/server.cpp.o"
  "CMakeFiles/ftl_lb.dir/server.cpp.o.d"
  "CMakeFiles/ftl_lb.dir/simulator.cpp.o"
  "CMakeFiles/ftl_lb.dir/simulator.cpp.o.d"
  "CMakeFiles/ftl_lb.dir/strategy.cpp.o"
  "CMakeFiles/ftl_lb.dir/strategy.cpp.o.d"
  "CMakeFiles/ftl_lb.dir/typed_simulator.cpp.o"
  "CMakeFiles/ftl_lb.dir/typed_simulator.cpp.o.d"
  "libftl_lb.a"
  "libftl_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

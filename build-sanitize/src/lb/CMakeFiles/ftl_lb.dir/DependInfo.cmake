
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lb/analysis.cpp" "src/lb/CMakeFiles/ftl_lb.dir/analysis.cpp.o" "gcc" "src/lb/CMakeFiles/ftl_lb.dir/analysis.cpp.o.d"
  "/root/repo/src/lb/invariants.cpp" "src/lb/CMakeFiles/ftl_lb.dir/invariants.cpp.o" "gcc" "src/lb/CMakeFiles/ftl_lb.dir/invariants.cpp.o.d"
  "/root/repo/src/lb/server.cpp" "src/lb/CMakeFiles/ftl_lb.dir/server.cpp.o" "gcc" "src/lb/CMakeFiles/ftl_lb.dir/server.cpp.o.d"
  "/root/repo/src/lb/simulator.cpp" "src/lb/CMakeFiles/ftl_lb.dir/simulator.cpp.o" "gcc" "src/lb/CMakeFiles/ftl_lb.dir/simulator.cpp.o.d"
  "/root/repo/src/lb/strategy.cpp" "src/lb/CMakeFiles/ftl_lb.dir/strategy.cpp.o" "gcc" "src/lb/CMakeFiles/ftl_lb.dir/strategy.cpp.o.d"
  "/root/repo/src/lb/typed_simulator.cpp" "src/lb/CMakeFiles/ftl_lb.dir/typed_simulator.cpp.o" "gcc" "src/lb/CMakeFiles/ftl_lb.dir/typed_simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/util/CMakeFiles/ftl_util.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/correlate/CMakeFiles/ftl_correlate.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/games/CMakeFiles/ftl_games.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/qcore/CMakeFiles/ftl_qcore.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/sdp/CMakeFiles/ftl_sdp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

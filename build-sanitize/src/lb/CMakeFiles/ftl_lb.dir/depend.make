# Empty dependencies file for ftl_lb.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ftl_games.dir/affinity.cpp.o"
  "CMakeFiles/ftl_games.dir/affinity.cpp.o.d"
  "CMakeFiles/ftl_games.dir/box.cpp.o"
  "CMakeFiles/ftl_games.dir/box.cpp.o.d"
  "CMakeFiles/ftl_games.dir/chsh.cpp.o"
  "CMakeFiles/ftl_games.dir/chsh.cpp.o.d"
  "CMakeFiles/ftl_games.dir/game.cpp.o"
  "CMakeFiles/ftl_games.dir/game.cpp.o.d"
  "CMakeFiles/ftl_games.dir/generators.cpp.o"
  "CMakeFiles/ftl_games.dir/generators.cpp.o.d"
  "CMakeFiles/ftl_games.dir/invariants.cpp.o"
  "CMakeFiles/ftl_games.dir/invariants.cpp.o.d"
  "CMakeFiles/ftl_games.dir/magic_square.cpp.o"
  "CMakeFiles/ftl_games.dir/magic_square.cpp.o.d"
  "CMakeFiles/ftl_games.dir/multiparty.cpp.o"
  "CMakeFiles/ftl_games.dir/multiparty.cpp.o.d"
  "CMakeFiles/ftl_games.dir/npa.cpp.o"
  "CMakeFiles/ftl_games.dir/npa.cpp.o.d"
  "CMakeFiles/ftl_games.dir/realize.cpp.o"
  "CMakeFiles/ftl_games.dir/realize.cpp.o.d"
  "CMakeFiles/ftl_games.dir/seesaw.cpp.o"
  "CMakeFiles/ftl_games.dir/seesaw.cpp.o.d"
  "CMakeFiles/ftl_games.dir/strategy.cpp.o"
  "CMakeFiles/ftl_games.dir/strategy.cpp.o.d"
  "CMakeFiles/ftl_games.dir/xor_game.cpp.o"
  "CMakeFiles/ftl_games.dir/xor_game.cpp.o.d"
  "libftl_games.a"
  "libftl_games.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_games.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/games/affinity.cpp" "src/games/CMakeFiles/ftl_games.dir/affinity.cpp.o" "gcc" "src/games/CMakeFiles/ftl_games.dir/affinity.cpp.o.d"
  "/root/repo/src/games/box.cpp" "src/games/CMakeFiles/ftl_games.dir/box.cpp.o" "gcc" "src/games/CMakeFiles/ftl_games.dir/box.cpp.o.d"
  "/root/repo/src/games/chsh.cpp" "src/games/CMakeFiles/ftl_games.dir/chsh.cpp.o" "gcc" "src/games/CMakeFiles/ftl_games.dir/chsh.cpp.o.d"
  "/root/repo/src/games/game.cpp" "src/games/CMakeFiles/ftl_games.dir/game.cpp.o" "gcc" "src/games/CMakeFiles/ftl_games.dir/game.cpp.o.d"
  "/root/repo/src/games/generators.cpp" "src/games/CMakeFiles/ftl_games.dir/generators.cpp.o" "gcc" "src/games/CMakeFiles/ftl_games.dir/generators.cpp.o.d"
  "/root/repo/src/games/invariants.cpp" "src/games/CMakeFiles/ftl_games.dir/invariants.cpp.o" "gcc" "src/games/CMakeFiles/ftl_games.dir/invariants.cpp.o.d"
  "/root/repo/src/games/magic_square.cpp" "src/games/CMakeFiles/ftl_games.dir/magic_square.cpp.o" "gcc" "src/games/CMakeFiles/ftl_games.dir/magic_square.cpp.o.d"
  "/root/repo/src/games/multiparty.cpp" "src/games/CMakeFiles/ftl_games.dir/multiparty.cpp.o" "gcc" "src/games/CMakeFiles/ftl_games.dir/multiparty.cpp.o.d"
  "/root/repo/src/games/npa.cpp" "src/games/CMakeFiles/ftl_games.dir/npa.cpp.o" "gcc" "src/games/CMakeFiles/ftl_games.dir/npa.cpp.o.d"
  "/root/repo/src/games/realize.cpp" "src/games/CMakeFiles/ftl_games.dir/realize.cpp.o" "gcc" "src/games/CMakeFiles/ftl_games.dir/realize.cpp.o.d"
  "/root/repo/src/games/seesaw.cpp" "src/games/CMakeFiles/ftl_games.dir/seesaw.cpp.o" "gcc" "src/games/CMakeFiles/ftl_games.dir/seesaw.cpp.o.d"
  "/root/repo/src/games/strategy.cpp" "src/games/CMakeFiles/ftl_games.dir/strategy.cpp.o" "gcc" "src/games/CMakeFiles/ftl_games.dir/strategy.cpp.o.d"
  "/root/repo/src/games/xor_game.cpp" "src/games/CMakeFiles/ftl_games.dir/xor_game.cpp.o" "gcc" "src/games/CMakeFiles/ftl_games.dir/xor_game.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/util/CMakeFiles/ftl_util.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/qcore/CMakeFiles/ftl_qcore.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/sdp/CMakeFiles/ftl_sdp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libftl_games.a"
)

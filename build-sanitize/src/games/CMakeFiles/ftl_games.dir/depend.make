# Empty dependencies file for ftl_games.
# This may be replaced when dependencies are built.

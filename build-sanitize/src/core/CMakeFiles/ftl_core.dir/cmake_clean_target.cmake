file(REMOVE_RECURSE
  "libftl_core.a"
)

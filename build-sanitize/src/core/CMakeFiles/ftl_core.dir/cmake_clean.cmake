file(REMOVE_RECURSE
  "CMakeFiles/ftl_core.dir/coordinator.cpp.o"
  "CMakeFiles/ftl_core.dir/coordinator.cpp.o.d"
  "CMakeFiles/ftl_core.dir/correlated_pair.cpp.o"
  "CMakeFiles/ftl_core.dir/correlated_pair.cpp.o.d"
  "CMakeFiles/ftl_core.dir/supply_source.cpp.o"
  "CMakeFiles/ftl_core.dir/supply_source.cpp.o.d"
  "libftl_core.a"
  "libftl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ftl_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ftl_sim.dir/engine.cpp.o"
  "CMakeFiles/ftl_sim.dir/engine.cpp.o.d"
  "libftl_sim.a"
  "libftl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libftl_sim.a"
)

# Empty dependencies file for ftl_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libftl_correlate.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/ftl_correlate.dir/decision_source.cpp.o"
  "CMakeFiles/ftl_correlate.dir/decision_source.cpp.o.d"
  "CMakeFiles/ftl_correlate.dir/typed_source.cpp.o"
  "CMakeFiles/ftl_correlate.dir/typed_source.cpp.o.d"
  "libftl_correlate.a"
  "libftl_correlate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_correlate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

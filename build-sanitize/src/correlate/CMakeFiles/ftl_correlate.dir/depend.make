# Empty dependencies file for ftl_correlate.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/src/correlate
# Build directory: /root/repo/build-sanitize/src/correlate
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.

file(REMOVE_RECURSE
  "libftl_qnet.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/ftl_qnet.dir/broker.cpp.o"
  "CMakeFiles/ftl_qnet.dir/broker.cpp.o.d"
  "CMakeFiles/ftl_qnet.dir/config.cpp.o"
  "CMakeFiles/ftl_qnet.dir/config.cpp.o.d"
  "CMakeFiles/ftl_qnet.dir/decoherence.cpp.o"
  "CMakeFiles/ftl_qnet.dir/decoherence.cpp.o.d"
  "CMakeFiles/ftl_qnet.dir/detector.cpp.o"
  "CMakeFiles/ftl_qnet.dir/detector.cpp.o.d"
  "CMakeFiles/ftl_qnet.dir/distill.cpp.o"
  "CMakeFiles/ftl_qnet.dir/distill.cpp.o.d"
  "CMakeFiles/ftl_qnet.dir/timing.cpp.o"
  "CMakeFiles/ftl_qnet.dir/timing.cpp.o.d"
  "libftl_qnet.a"
  "libftl_qnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_qnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qnet/broker.cpp" "src/qnet/CMakeFiles/ftl_qnet.dir/broker.cpp.o" "gcc" "src/qnet/CMakeFiles/ftl_qnet.dir/broker.cpp.o.d"
  "/root/repo/src/qnet/config.cpp" "src/qnet/CMakeFiles/ftl_qnet.dir/config.cpp.o" "gcc" "src/qnet/CMakeFiles/ftl_qnet.dir/config.cpp.o.d"
  "/root/repo/src/qnet/decoherence.cpp" "src/qnet/CMakeFiles/ftl_qnet.dir/decoherence.cpp.o" "gcc" "src/qnet/CMakeFiles/ftl_qnet.dir/decoherence.cpp.o.d"
  "/root/repo/src/qnet/detector.cpp" "src/qnet/CMakeFiles/ftl_qnet.dir/detector.cpp.o" "gcc" "src/qnet/CMakeFiles/ftl_qnet.dir/detector.cpp.o.d"
  "/root/repo/src/qnet/distill.cpp" "src/qnet/CMakeFiles/ftl_qnet.dir/distill.cpp.o" "gcc" "src/qnet/CMakeFiles/ftl_qnet.dir/distill.cpp.o.d"
  "/root/repo/src/qnet/timing.cpp" "src/qnet/CMakeFiles/ftl_qnet.dir/timing.cpp.o" "gcc" "src/qnet/CMakeFiles/ftl_qnet.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/util/CMakeFiles/ftl_util.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/qcore/CMakeFiles/ftl_qcore.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/games/CMakeFiles/ftl_games.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/sim/CMakeFiles/ftl_sim.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/sdp/CMakeFiles/ftl_sdp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

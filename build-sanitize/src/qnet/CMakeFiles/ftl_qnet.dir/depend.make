# Empty dependencies file for ftl_qnet.
# This may be replaced when dependencies are built.

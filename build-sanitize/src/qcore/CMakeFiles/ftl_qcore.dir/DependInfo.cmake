
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qcore/channels.cpp" "src/qcore/CMakeFiles/ftl_qcore.dir/channels.cpp.o" "gcc" "src/qcore/CMakeFiles/ftl_qcore.dir/channels.cpp.o.d"
  "/root/repo/src/qcore/density.cpp" "src/qcore/CMakeFiles/ftl_qcore.dir/density.cpp.o" "gcc" "src/qcore/CMakeFiles/ftl_qcore.dir/density.cpp.o.d"
  "/root/repo/src/qcore/eigen.cpp" "src/qcore/CMakeFiles/ftl_qcore.dir/eigen.cpp.o" "gcc" "src/qcore/CMakeFiles/ftl_qcore.dir/eigen.cpp.o.d"
  "/root/repo/src/qcore/entanglement.cpp" "src/qcore/CMakeFiles/ftl_qcore.dir/entanglement.cpp.o" "gcc" "src/qcore/CMakeFiles/ftl_qcore.dir/entanglement.cpp.o.d"
  "/root/repo/src/qcore/gates.cpp" "src/qcore/CMakeFiles/ftl_qcore.dir/gates.cpp.o" "gcc" "src/qcore/CMakeFiles/ftl_qcore.dir/gates.cpp.o.d"
  "/root/repo/src/qcore/generators.cpp" "src/qcore/CMakeFiles/ftl_qcore.dir/generators.cpp.o" "gcc" "src/qcore/CMakeFiles/ftl_qcore.dir/generators.cpp.o.d"
  "/root/repo/src/qcore/invariants.cpp" "src/qcore/CMakeFiles/ftl_qcore.dir/invariants.cpp.o" "gcc" "src/qcore/CMakeFiles/ftl_qcore.dir/invariants.cpp.o.d"
  "/root/repo/src/qcore/matrix.cpp" "src/qcore/CMakeFiles/ftl_qcore.dir/matrix.cpp.o" "gcc" "src/qcore/CMakeFiles/ftl_qcore.dir/matrix.cpp.o.d"
  "/root/repo/src/qcore/pauli.cpp" "src/qcore/CMakeFiles/ftl_qcore.dir/pauli.cpp.o" "gcc" "src/qcore/CMakeFiles/ftl_qcore.dir/pauli.cpp.o.d"
  "/root/repo/src/qcore/state.cpp" "src/qcore/CMakeFiles/ftl_qcore.dir/state.cpp.o" "gcc" "src/qcore/CMakeFiles/ftl_qcore.dir/state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/util/CMakeFiles/ftl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

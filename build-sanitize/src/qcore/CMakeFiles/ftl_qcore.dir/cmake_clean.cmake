file(REMOVE_RECURSE
  "CMakeFiles/ftl_qcore.dir/channels.cpp.o"
  "CMakeFiles/ftl_qcore.dir/channels.cpp.o.d"
  "CMakeFiles/ftl_qcore.dir/density.cpp.o"
  "CMakeFiles/ftl_qcore.dir/density.cpp.o.d"
  "CMakeFiles/ftl_qcore.dir/eigen.cpp.o"
  "CMakeFiles/ftl_qcore.dir/eigen.cpp.o.d"
  "CMakeFiles/ftl_qcore.dir/entanglement.cpp.o"
  "CMakeFiles/ftl_qcore.dir/entanglement.cpp.o.d"
  "CMakeFiles/ftl_qcore.dir/gates.cpp.o"
  "CMakeFiles/ftl_qcore.dir/gates.cpp.o.d"
  "CMakeFiles/ftl_qcore.dir/generators.cpp.o"
  "CMakeFiles/ftl_qcore.dir/generators.cpp.o.d"
  "CMakeFiles/ftl_qcore.dir/invariants.cpp.o"
  "CMakeFiles/ftl_qcore.dir/invariants.cpp.o.d"
  "CMakeFiles/ftl_qcore.dir/matrix.cpp.o"
  "CMakeFiles/ftl_qcore.dir/matrix.cpp.o.d"
  "CMakeFiles/ftl_qcore.dir/pauli.cpp.o"
  "CMakeFiles/ftl_qcore.dir/pauli.cpp.o.d"
  "CMakeFiles/ftl_qcore.dir/state.cpp.o"
  "CMakeFiles/ftl_qcore.dir/state.cpp.o.d"
  "libftl_qcore.a"
  "libftl_qcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_qcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

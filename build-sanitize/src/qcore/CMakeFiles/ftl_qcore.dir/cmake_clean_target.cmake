file(REMOVE_RECURSE
  "libftl_qcore.a"
)

# Empty dependencies file for ftl_qcore.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/src/ecmp
# Build directory: /root/repo/build-sanitize/src/ecmp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.

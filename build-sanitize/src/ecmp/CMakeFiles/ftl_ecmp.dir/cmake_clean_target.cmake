file(REMOVE_RECURSE
  "libftl_ecmp.a"
)

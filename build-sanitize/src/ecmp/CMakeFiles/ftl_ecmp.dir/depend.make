# Empty dependencies file for ftl_ecmp.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ecmp/no_signaling.cpp" "src/ecmp/CMakeFiles/ftl_ecmp.dir/no_signaling.cpp.o" "gcc" "src/ecmp/CMakeFiles/ftl_ecmp.dir/no_signaling.cpp.o.d"
  "/root/repo/src/ecmp/simulator.cpp" "src/ecmp/CMakeFiles/ftl_ecmp.dir/simulator.cpp.o" "gcc" "src/ecmp/CMakeFiles/ftl_ecmp.dir/simulator.cpp.o.d"
  "/root/repo/src/ecmp/strategies.cpp" "src/ecmp/CMakeFiles/ftl_ecmp.dir/strategies.cpp.o" "gcc" "src/ecmp/CMakeFiles/ftl_ecmp.dir/strategies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/util/CMakeFiles/ftl_util.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/qcore/CMakeFiles/ftl_qcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/ftl_ecmp.dir/no_signaling.cpp.o"
  "CMakeFiles/ftl_ecmp.dir/no_signaling.cpp.o.d"
  "CMakeFiles/ftl_ecmp.dir/simulator.cpp.o"
  "CMakeFiles/ftl_ecmp.dir/simulator.cpp.o.d"
  "CMakeFiles/ftl_ecmp.dir/strategies.cpp.o"
  "CMakeFiles/ftl_ecmp.dir/strategies.cpp.o.d"
  "libftl_ecmp.a"
  "libftl_ecmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_ecmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for qcore_density_test.
# This may be replaced when dependencies are built.

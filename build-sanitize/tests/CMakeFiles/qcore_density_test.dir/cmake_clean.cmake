file(REMOVE_RECURSE
  "CMakeFiles/qcore_density_test.dir/qcore_density_test.cpp.o"
  "CMakeFiles/qcore_density_test.dir/qcore_density_test.cpp.o.d"
  "qcore_density_test"
  "qcore_density_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcore_density_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for qnet_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/qnet_test.dir/qnet_test.cpp.o"
  "CMakeFiles/qnet_test.dir/qnet_test.cpp.o.d"
  "qnet_test"
  "qnet_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qnet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

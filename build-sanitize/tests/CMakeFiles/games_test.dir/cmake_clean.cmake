file(REMOVE_RECURSE
  "CMakeFiles/games_test.dir/games_test.cpp.o"
  "CMakeFiles/games_test.dir/games_test.cpp.o.d"
  "games_test"
  "games_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/games_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for games_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/npa_test.dir/npa_test.cpp.o"
  "CMakeFiles/npa_test.dir/npa_test.cpp.o.d"
  "npa_test"
  "npa_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for npa_test.
# This may be replaced when dependencies are built.

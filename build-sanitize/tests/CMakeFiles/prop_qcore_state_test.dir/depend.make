# Empty dependencies file for prop_qcore_state_test.
# This may be replaced when dependencies are built.

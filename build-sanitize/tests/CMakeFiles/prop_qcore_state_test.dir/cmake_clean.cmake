file(REMOVE_RECURSE
  "CMakeFiles/prop_qcore_state_test.dir/prop_qcore_state_test.cpp.o"
  "CMakeFiles/prop_qcore_state_test.dir/prop_qcore_state_test.cpp.o.d"
  "prop_qcore_state_test"
  "prop_qcore_state_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prop_qcore_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for qcore_eigen_test.
# This may be replaced when dependencies are built.

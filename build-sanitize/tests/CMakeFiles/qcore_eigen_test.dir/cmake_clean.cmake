file(REMOVE_RECURSE
  "CMakeFiles/qcore_eigen_test.dir/qcore_eigen_test.cpp.o"
  "CMakeFiles/qcore_eigen_test.dir/qcore_eigen_test.cpp.o.d"
  "qcore_eigen_test"
  "qcore_eigen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcore_eigen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/qcore_state_test.dir/qcore_state_test.cpp.o"
  "CMakeFiles/qcore_state_test.dir/qcore_state_test.cpp.o.d"
  "qcore_state_test"
  "qcore_state_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcore_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

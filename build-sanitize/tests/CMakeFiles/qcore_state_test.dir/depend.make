# Empty dependencies file for qcore_state_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for prop_qcore_channels_test.
# This may be replaced when dependencies are built.

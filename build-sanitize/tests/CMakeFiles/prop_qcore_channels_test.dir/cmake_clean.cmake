file(REMOVE_RECURSE
  "CMakeFiles/prop_qcore_channels_test.dir/prop_qcore_channels_test.cpp.o"
  "CMakeFiles/prop_qcore_channels_test.dir/prop_qcore_channels_test.cpp.o.d"
  "prop_qcore_channels_test"
  "prop_qcore_channels_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prop_qcore_channels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for magic_square_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/magic_square_test.dir/magic_square_test.cpp.o"
  "CMakeFiles/magic_square_test.dir/magic_square_test.cpp.o.d"
  "magic_square_test"
  "magic_square_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/magic_square_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

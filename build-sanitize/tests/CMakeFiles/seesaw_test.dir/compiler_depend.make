# Empty compiler generated dependencies file for seesaw_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/seesaw_test.dir/seesaw_test.cpp.o"
  "CMakeFiles/seesaw_test.dir/seesaw_test.cpp.o.d"
  "seesaw_test"
  "seesaw_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seesaw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/qcore_gates_test.dir/qcore_gates_test.cpp.o"
  "CMakeFiles/qcore_gates_test.dir/qcore_gates_test.cpp.o.d"
  "qcore_gates_test"
  "qcore_gates_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcore_gates_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

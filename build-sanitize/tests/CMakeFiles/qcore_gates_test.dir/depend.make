# Empty dependencies file for qcore_gates_test.
# This may be replaced when dependencies are built.

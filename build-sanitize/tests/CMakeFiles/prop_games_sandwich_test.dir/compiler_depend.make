# Empty compiler generated dependencies file for prop_games_sandwich_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/entanglement_test.dir/entanglement_test.cpp.o"
  "CMakeFiles/entanglement_test.dir/entanglement_test.cpp.o.d"
  "entanglement_test"
  "entanglement_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/entanglement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

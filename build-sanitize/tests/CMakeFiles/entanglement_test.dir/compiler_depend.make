# Empty compiler generated dependencies file for entanglement_test.
# This may be replaced when dependencies are built.

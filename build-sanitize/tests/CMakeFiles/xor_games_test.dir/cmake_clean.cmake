file(REMOVE_RECURSE
  "CMakeFiles/xor_games_test.dir/xor_games_test.cpp.o"
  "CMakeFiles/xor_games_test.dir/xor_games_test.cpp.o.d"
  "xor_games_test"
  "xor_games_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xor_games_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

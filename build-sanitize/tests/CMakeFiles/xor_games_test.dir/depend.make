# Empty dependencies file for xor_games_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for lb_analysis_test.
# This may be replaced when dependencies are built.

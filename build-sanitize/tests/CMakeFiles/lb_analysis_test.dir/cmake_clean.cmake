file(REMOVE_RECURSE
  "CMakeFiles/lb_analysis_test.dir/lb_analysis_test.cpp.o"
  "CMakeFiles/lb_analysis_test.dir/lb_analysis_test.cpp.o.d"
  "lb_analysis_test"
  "lb_analysis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lb_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for qcore_crosscheck_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/qcore_crosscheck_test.dir/qcore_crosscheck_test.cpp.o"
  "CMakeFiles/qcore_crosscheck_test.dir/qcore_crosscheck_test.cpp.o.d"
  "qcore_crosscheck_test"
  "qcore_crosscheck_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcore_crosscheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/lb_sim_test.dir/lb_sim_test.cpp.o"
  "CMakeFiles/lb_sim_test.dir/lb_sim_test.cpp.o.d"
  "lb_sim_test"
  "lb_sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lb_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

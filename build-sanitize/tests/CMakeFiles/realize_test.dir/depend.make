# Empty dependencies file for realize_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/realize_test.dir/realize_test.cpp.o"
  "CMakeFiles/realize_test.dir/realize_test.cpp.o.d"
  "realize_test"
  "realize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for prop_games_box_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/prop_games_box_test.dir/prop_games_box_test.cpp.o"
  "CMakeFiles/prop_games_box_test.dir/prop_games_box_test.cpp.o.d"
  "prop_games_box_test"
  "prop_games_box_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prop_games_box_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

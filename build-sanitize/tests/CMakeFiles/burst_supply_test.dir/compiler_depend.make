# Empty compiler generated dependencies file for burst_supply_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/burst_supply_test.dir/burst_supply_test.cpp.o"
  "CMakeFiles/burst_supply_test.dir/burst_supply_test.cpp.o.d"
  "burst_supply_test"
  "burst_supply_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burst_supply_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

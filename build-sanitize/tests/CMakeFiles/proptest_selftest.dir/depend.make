# Empty dependencies file for proptest_selftest.
# This may be replaced when dependencies are built.

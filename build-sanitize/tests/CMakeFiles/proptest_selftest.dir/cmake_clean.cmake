file(REMOVE_RECURSE
  "CMakeFiles/proptest_selftest.dir/proptest_selftest.cpp.o"
  "CMakeFiles/proptest_selftest.dir/proptest_selftest.cpp.o.d"
  "proptest_selftest"
  "proptest_selftest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proptest_selftest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

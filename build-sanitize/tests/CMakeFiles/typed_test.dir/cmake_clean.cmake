file(REMOVE_RECURSE
  "CMakeFiles/typed_test.dir/typed_test.cpp.o"
  "CMakeFiles/typed_test.dir/typed_test.cpp.o.d"
  "typed_test"
  "typed_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/typed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

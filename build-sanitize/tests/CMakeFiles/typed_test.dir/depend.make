# Empty dependencies file for typed_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for qcore_channels_test.
# This may be replaced when dependencies are built.

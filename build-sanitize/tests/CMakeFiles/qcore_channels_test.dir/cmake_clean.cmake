file(REMOVE_RECURSE
  "CMakeFiles/qcore_channels_test.dir/qcore_channels_test.cpp.o"
  "CMakeFiles/qcore_channels_test.dir/qcore_channels_test.cpp.o.d"
  "qcore_channels_test"
  "qcore_channels_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcore_channels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/lb_server_test.dir/lb_server_test.cpp.o"
  "CMakeFiles/lb_server_test.dir/lb_server_test.cpp.o.d"
  "lb_server_test"
  "lb_server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lb_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

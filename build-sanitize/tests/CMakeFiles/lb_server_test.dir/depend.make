# Empty dependencies file for lb_server_test.
# This may be replaced when dependencies are built.

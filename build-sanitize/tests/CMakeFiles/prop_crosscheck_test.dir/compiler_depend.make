# Empty compiler generated dependencies file for prop_crosscheck_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/prop_crosscheck_test.dir/prop_crosscheck_test.cpp.o"
  "CMakeFiles/prop_crosscheck_test.dir/prop_crosscheck_test.cpp.o.d"
  "prop_crosscheck_test"
  "prop_crosscheck_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prop_crosscheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ecmp_test.
# This may be replaced when dependencies are built.

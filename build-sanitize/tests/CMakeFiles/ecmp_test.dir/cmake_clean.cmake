file(REMOVE_RECURSE
  "CMakeFiles/ecmp_test.dir/ecmp_test.cpp.o"
  "CMakeFiles/ecmp_test.dir/ecmp_test.cpp.o.d"
  "ecmp_test"
  "ecmp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecmp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

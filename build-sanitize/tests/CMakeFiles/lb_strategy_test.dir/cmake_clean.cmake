file(REMOVE_RECURSE
  "CMakeFiles/lb_strategy_test.dir/lb_strategy_test.cpp.o"
  "CMakeFiles/lb_strategy_test.dir/lb_strategy_test.cpp.o.d"
  "lb_strategy_test"
  "lb_strategy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lb_strategy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

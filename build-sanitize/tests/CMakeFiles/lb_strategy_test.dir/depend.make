# Empty dependencies file for lb_strategy_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/qcore_matrix_test.dir/qcore_matrix_test.cpp.o"
  "CMakeFiles/qcore_matrix_test.dir/qcore_matrix_test.cpp.o.d"
  "qcore_matrix_test"
  "qcore_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcore_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

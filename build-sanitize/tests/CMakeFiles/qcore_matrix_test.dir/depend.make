# Empty dependencies file for qcore_matrix_test.
# This may be replaced when dependencies are built.

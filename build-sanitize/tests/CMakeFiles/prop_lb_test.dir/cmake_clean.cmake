file(REMOVE_RECURSE
  "CMakeFiles/prop_lb_test.dir/prop_lb_test.cpp.o"
  "CMakeFiles/prop_lb_test.dir/prop_lb_test.cpp.o.d"
  "prop_lb_test"
  "prop_lb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prop_lb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

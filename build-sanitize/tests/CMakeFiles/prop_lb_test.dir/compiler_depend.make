# Empty compiler generated dependencies file for prop_lb_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pauli_crosscheck_test.dir/pauli_crosscheck_test.cpp.o"
  "CMakeFiles/pauli_crosscheck_test.dir/pauli_crosscheck_test.cpp.o.d"
  "pauli_crosscheck_test"
  "pauli_crosscheck_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pauli_crosscheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for pauli_crosscheck_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for certify_game.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/certify_game.dir/certify_game.cpp.o"
  "CMakeFiles/certify_game.dir/certify_game.cpp.o.d"
  "certify_game"
  "certify_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certify_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/lb_cluster.dir/lb_cluster.cpp.o"
  "CMakeFiles/lb_cluster.dir/lb_cluster.cpp.o.d"
  "lb_cluster"
  "lb_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lb_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

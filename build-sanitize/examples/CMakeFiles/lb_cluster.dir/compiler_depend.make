# Empty compiler generated dependencies file for lb_cluster.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for game_explorer.
# This may be replaced when dependencies are built.

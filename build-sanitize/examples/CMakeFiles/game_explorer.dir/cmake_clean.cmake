file(REMOVE_RECURSE
  "CMakeFiles/game_explorer.dir/game_explorer.cpp.o"
  "CMakeFiles/game_explorer.dir/game_explorer.cpp.o.d"
  "game_explorer"
  "game_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/game_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/gpu_sm_scheduler.dir/gpu_sm_scheduler.cpp.o"
  "CMakeFiles/gpu_sm_scheduler.dir/gpu_sm_scheduler.cpp.o.d"
  "gpu_sm_scheduler"
  "gpu_sm_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_sm_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for gpu_sm_scheduler.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ecmp_study.dir/ecmp_study.cpp.o"
  "CMakeFiles/ecmp_study.dir/ecmp_study.cpp.o.d"
  "ecmp_study"
  "ecmp_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecmp_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

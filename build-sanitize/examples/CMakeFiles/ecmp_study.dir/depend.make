# Empty dependencies file for ecmp_study.
# This may be replaced when dependencies are built.

# Empty dependencies file for qnet_provisioning.
# This may be replaced when dependencies are built.

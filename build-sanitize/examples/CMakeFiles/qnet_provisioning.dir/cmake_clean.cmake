file(REMOVE_RECURSE
  "CMakeFiles/qnet_provisioning.dir/qnet_provisioning.cpp.o"
  "CMakeFiles/qnet_provisioning.dir/qnet_provisioning.cpp.o.d"
  "qnet_provisioning"
  "qnet_provisioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qnet_provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

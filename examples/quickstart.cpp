// Quickstart: play the CHSH game three ways, then use the packaged
// Coordinator API the way an application would.
//
//   build/examples/quickstart
//
// Expected output: classical strategies cap at 0.75, the simulated
// entangled strategy reaches ~0.854, and the Coordinator endpoints achieve
// the same while hiding all the quantum machinery.
#include <cstdio>

#include "core/coordinator.hpp"
#include "games/chsh.hpp"
#include "util/rng.hpp"

int main() {
  using namespace ftl;

  std::puts("== 1. The CHSH game (Section 2 of the paper) ==");
  const games::TwoPartyGame game = games::chsh_game();

  // Best classical strategy, found by exhaustive search.
  const games::ClassicalOptimum classical = games::classical_value(game);
  std::printf("best classical win probability: %.4f\n", classical.value);

  // The Tsirelson-optimal quantum strategy: a shared Bell pair measured at
  // angles {0, pi/4} (Alice) and {pi/8, -pi/8} (Bob).
  const games::QuantumStrategy quantum =
      games::chsh_quantum_strategy(games::chsh_optimal_angles());
  std::printf("quantum win probability (exact): %.4f\n", quantum.value(game));

  // The same strategy, actually sampled by measuring simulated qubits.
  util::Rng rng(2025);
  int wins = 0;
  const int rounds = 20000;
  for (int i = 0; i < rounds; ++i) {
    const std::size_t x = rng.uniform_int(2);
    const std::size_t y = rng.uniform_int(2);
    const auto [a, b] = quantum.play(x, y, rng);
    if (game.wins(x, y, static_cast<std::size_t>(a),
                  static_cast<std::size_t>(b))) {
      ++wins;
    }
  }
  std::printf("quantum win probability (sampled, %d rounds): %.4f\n", rounds,
              static_cast<double>(wins) / rounds);

  std::puts("\n== 2. The packaged abstraction (Section 5's vision) ==");
  // A systems designer never touches qubits: ask the Coordinator for a
  // correlated pair of endpoints and call decide() with a local input.
  core::PairConfig cfg;
  cfg.backend = core::Backend::kQuantum;
  cfg.seed = 7;
  core::Coordinator coordinator(cfg);
  auto [left, right] = coordinator.make_pair();

  int colocated_cc = 0;
  int separated_other = 0;
  int cc_rounds = 0;
  int other_rounds = 0;
  for (int i = 0; i < rounds; ++i) {
    const int x = rng.bernoulli(0.5) ? 1 : 0;  // 1 = my task is type-C
    const int y = rng.bernoulli(0.5) ? 1 : 0;
    const int a = left.decide(x);
    const int b = right.decide(y);
    if (x == 1 && y == 1) {
      ++cc_rounds;
      if (a == b) ++colocated_cc;
    } else {
      ++other_rounds;
      if (a != b) ++separated_other;
    }
  }
  std::printf("C-C requests co-located:      %.4f (classical limit 0.75)\n",
              static_cast<double>(colocated_cc) / cc_rounds);
  std::printf("other requests separated:     %.4f (classical limit 0.75)\n",
              static_cast<double>(separated_other) / other_rounds);
  std::printf("aggregate win probability:    %.4f\n",
              static_cast<double>(coordinator.aggregate_stats().wins) /
                  static_cast<double>(coordinator.aggregate_stats().rounds));
  return 0;
}

// certify_game: certify the quantum value of an arbitrary 2-input binary
// game from both sides.
//
//   lower bound: see-saw optimisation (an explicit state + measurements)
//   upper bound: NPA level 1+AB semidefinite relaxation
//
// When the two meet, the value is certified without trusting either solver
// alone — the workflow §4.1's "General games" paragraph imagines for
// deciding whether a systems problem admits a quantum advantage.
//
//   build/examples/certify_game [--seed N] [--density P] [--trials K]
//   build/examples/certify_game --chsh
#include <cstdio>

#include "games/chsh.hpp"
#include "games/npa.hpp"
#include "games/seesaw.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"

namespace {

using namespace ftl;

void certify(const games::TwoPartyGame& game, const char* label) {
  const double classical = games::classical_value(game).value;
  games::SeesawOptions sopts;
  sopts.restarts = 16;
  sopts.max_rounds = 200;
  const games::SeesawResult lower = games::seesaw_optimize(game, sopts);
  const games::NpaResult upper = games::npa1_upper_bound(game);
  const double gap = upper.upper_bound - lower.value;
  std::printf(
      "%-14s classical %.6f | quantum in [%.6f, %.6f] (gap %.1e) %s%s\n",
      label, classical, lower.value, upper.upper_bound, gap,
      gap < 1e-4 ? "CERTIFIED" : "open",
      lower.value > classical + 1e-5 ? ", quantum ADVANTAGE" : "");
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);

  if (args.get("chsh", false)) {
    certify(games::chsh_game(), "CHSH");
    certify(games::chsh_game(true), "flipped CHSH");
    return 0;
  }

  const auto trials = args.get("trials", static_cast<std::size_t>(8));
  const double density = args.get("density", 0.5);
  util::Rng rng(static_cast<std::uint64_t>(
      args.get("seed", static_cast<long long>(1))));

  std::printf("certifying %zu random win tables (density %.2f):\n\n", trials,
              density);
  certify(games::chsh_game(), "CHSH (anchor)");
  for (std::size_t t = 0; t < trials; ++t) {
    std::vector wins(2, std::vector(2, std::vector(2, std::vector<bool>(2))));
    for (int x = 0; x < 2; ++x) {
      for (int y = 0; y < 2; ++y) {
        for (int a = 0; a < 2; ++a) {
          for (int b = 0; b < 2; ++b) {
            wins[x][y][a][b] = rng.bernoulli(density);
          }
        }
      }
    }
    const games::TwoPartyGame game(wins,
                                   games::TwoPartyGame::uniform_inputs(2, 2));
    char label[32];
    std::snprintf(label, sizeof label, "random #%zu", t);
    certify(game, label);
  }
  std::puts(
      "\nCERTIFIED = lower and upper bounds agree to 1e-4; ADVANTAGE =\n"
      "the certified quantum value strictly exceeds the classical one.");
  return 0;
}

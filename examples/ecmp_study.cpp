// ecmp_study: Section 4.2's negative result, interactively.
//
// N switches share M = 2 equal-cost paths; only a random pair is active
// each round. Compare every strategy and demonstrate the no-signaling
// reduction that makes global entanglement useless here.
//
//   build/examples/ecmp_study [num_switches] [rounds]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "ecmp/no_signaling.hpp"
#include "ecmp/simulator.hpp"
#include "ecmp/strategies.hpp"
#include "qcore/gates.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ftl;
  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 4;
  const std::size_t rounds =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 100000;

  ecmp::EcmpConfig cfg;
  cfg.active = 2;
  cfg.rounds = rounds;

  std::printf("ECMP: %zu switches, 2 paths, 2 active per round, %zu rounds\n\n",
              n, rounds);

  util::Table t({"strategy", "mean collisions", "P(collision-free)",
                 "path spread"});
  const auto row = [&](ecmp::EcmpStrategy& s) {
    const ecmp::EcmpResult r = run_ecmp_sim(cfg, s);
    t.add_row({s.name(), r.mean_collisions, r.p_collision_free,
               r.path_spread});
  };
  ecmp::IndependentUniform ind(n, 2);
  ecmp::SharedPartition part(n, 2);
  ecmp::PairedSinglets singlets(n);
  ecmp::GhzAngles ghz(std::vector<double>(n, M_PI / 4.0));
  ecmp::WAngles w(std::vector<double>(n, 0.0));
  row(ind);
  row(part);
  row(singlets);
  row(ghz);
  row(w);
  t.print(std::cout);

  std::printf("\nclassical optimum (balanced partition): %.4f\n",
              ecmp::SharedPartition::pair_collision_probability(n, 2));
  if (n >= 3 && n <= 6) {
    std::printf("best GHZ angle assignment (grid search): %.4f\n",
                ecmp::grid_search_ghz_min_collision(n, 16));
  }

  // The no-signaling reduction on GHZ(3): whatever basis the inactive
  // switch C picks, A and B's joint distribution is untouched.
  std::puts("\nno-signaling reduction check (GHZ(3), varying C's basis):");
  const auto rho = qcore::Density::from_state(qcore::StateVec::ghz(3));
  double max_dev = 0.0;
  for (double theta = 0.0; theta < M_PI; theta += M_PI / 12.0) {
    max_dev = std::max(
        max_dev,
        ecmp::no_signaling_deviation(rho, 0, qcore::gates::real_basis(0.7), 1,
                                     qcore::gates::real_basis(1.3), 2,
                                     qcore::gates::real_basis(theta)));
  }
  std::printf("max deviation over 12 bases of C: %.2e (zero => C's choice "
              "cannot matter, so C may as well measure first)\n",
              max_dev);
  return 0;
}

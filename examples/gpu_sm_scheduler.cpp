// gpu_sm_scheduler: the introduction's GPU motivation, concretely.
//
// Kernels referencing the same texture should land on the same Streaming
// Multiprocessor (SM) to share its cache; unrelated kernels should spread
// out. Two front-end dispatchers assign kernels to SMs without talking to
// each other. We model T texture working sets; a dispatcher's input bit is
// "my kernel uses the currently-hot texture". Cache hits require
// co-location with the other kernel of the same texture.
//
//   build/examples/gpu_sm_scheduler [num_sms] [rounds]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "correlate/decision_source.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace ftl;

struct Outcome {
  double cache_hit_rate;    // hot-texture kernel pairs that shared an SM
  double contention_rate;   // unrelated kernel pairs that collided on an SM
  double effective_speedup; // toy throughput model combining the two
};

Outcome run(correlate::PairedDecisionSource& source, std::size_t num_sms,
            int rounds, util::Rng& rng) {
  int hot_pairs = 0;
  int hot_colocated = 0;
  int cold_pairs = 0;
  int cold_collided = 0;
  for (int i = 0; i < rounds; ++i) {
    // Each dispatcher independently receives a kernel; 50% reference the
    // hot texture.
    const int x = rng.bernoulli(0.5) ? 1 : 0;
    const int y = rng.bernoulli(0.5) ? 1 : 0;
    // Shared randomness narrows this round to two candidate SMs.
    const auto [sm0, sm1] = rng.distinct_pair(num_sms);
    (void)sm0;
    (void)sm1;
    const auto [a, b] = source.decide(x, y, rng);
    const bool same_sm = a == b;
    if (x == 1 && y == 1) {
      ++hot_pairs;
      if (same_sm) ++hot_colocated;
    } else {
      ++cold_pairs;
      if (same_sm) ++cold_collided;
    }
  }
  Outcome o{};
  o.cache_hit_rate = static_cast<double>(hot_colocated) / hot_pairs;
  o.contention_rate = static_cast<double>(cold_collided) / cold_pairs;
  // Toy model: a cache hit doubles the pair's throughput; a collision of
  // unrelated kernels halves it.
  o.effective_speedup = 1.0 + 0.25 * (2.0 * o.cache_hit_rate - 1.0) -
                        0.75 * (o.contention_rate - 0.0) * 0.5;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t num_sms =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 16;
  const int rounds = argc > 2 ? std::atoi(argv[2]) : 200000;

  util::Rng rng(99);
  util::Table t({"dispatcher coordination", "texture cache-hit rate",
                 "contention rate", "relative throughput"});
  const auto row = [&](const char* kind) {
    auto src = correlate::make_source(kind);
    const Outcome o = run(*src, num_sms, rounds, rng);
    t.add_row({src->name(), o.cache_hit_rate, o.contention_rate,
               o.effective_speedup});
  };
  row("independent");
  row("classical-chsh");
  row("quantum-chsh");
  row("omniscient");

  std::printf("GPU kernel dispatch across %zu SMs, %d kernel pairs:\n\n",
              num_sms, rounds);
  t.print(std::cout);
  std::puts(
      "\nReading: entangled dispatchers raise the texture cache-hit rate\n"
      "AND lower contention simultaneously; classical pre-agreement must\n"
      "trade one against the other (classical-chsh never co-locates the\n"
      "hot pairs at all).");
  return 0;
}

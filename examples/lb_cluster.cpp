// lb_cluster: the paper's Figure-4 cluster simulation as a CLI.
//
//   build/examples/lb_cluster [flags]
//     --balancers N        number of load balancers      (default 100)
//     --servers M          number of servers             (default 86)
//     --strategy S         random | round-robin | po2 | classical | mixed |
//                          quantum | omniscient | dedicated | all
//                                                        (default all)
//     --visibility V       Werner visibility for quantum (default 1.0)
//     --policy P           paper | fifo | efirst         (default paper)
//     --steps K            measured steps                (default 4000)
//     --burst              Markov-modulated arrivals (HIGH 1.0 / LOW 0.3)
//     --seed X             RNG seed                      (default 1)
//
// Examples:
//   build/examples/lb_cluster --servers 86
//   build/examples/lb_cluster --strategy quantum --visibility 0.9 --burst
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "correlate/decision_source.hpp"
#include "lb/simulator.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

using namespace ftl;

std::unique_ptr<lb::LbStrategy> make_strategy(const std::string& kind,
                                              double visibility) {
  if (kind == "random") return std::make_unique<lb::RandomStrategy>();
  if (kind == "round-robin") return std::make_unique<lb::RoundRobinStrategy>();
  if (kind == "po2") return std::make_unique<lb::PowerOfTwoStrategy>();
  if (kind == "dedicated")
    return std::make_unique<lb::DedicatedServersStrategy>(0.5);
  if (kind == "classical")
    return std::make_unique<lb::PairedStrategy>(
        std::make_unique<correlate::ClassicalChshSource>());
  if (kind == "mixed")
    return std::make_unique<lb::PairedStrategy>(
        std::make_unique<correlate::MixedClassicalSource>(0.25));
  if (kind == "quantum")
    return std::make_unique<lb::PairedStrategy>(
        std::make_unique<correlate::ChshSource>(visibility));
  if (kind == "omniscient")
    return std::make_unique<lb::PairedStrategy>(
        std::make_unique<correlate::OmniscientOracleSource>());
  std::fprintf(stderr, "unknown strategy '%s'\n", kind.c_str());
  std::exit(2);
}

lb::ServicePolicy parse_policy(const std::string& p) {
  if (p == "paper") return lb::ServicePolicy::kPaperCFirst;
  if (p == "fifo") return lb::ServicePolicy::kFifoPair;
  if (p == "efirst") return lb::ServicePolicy::kEFirst;
  std::fprintf(stderr, "unknown policy '%s'\n", p.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  lb::LbConfig cfg;
  cfg.num_balancers = args.get("balancers", static_cast<std::size_t>(100));
  cfg.num_servers = args.get("servers", static_cast<std::size_t>(86));
  cfg.policy = parse_policy(args.get("policy", std::string("paper")));
  cfg.measure_steps = args.get("steps", static_cast<long long>(4000));
  cfg.warmup_steps = cfg.measure_steps / 4;
  cfg.seed = static_cast<std::uint64_t>(
      args.get("seed", static_cast<long long>(1)));
  if (args.get("burst", false)) cfg.burst = lb::BurstModel{};
  const std::string kind = args.get("strategy", std::string("all"));
  const double visibility = args.get("visibility", 1.0);

  std::printf(
      "cluster: %zu balancers, %zu servers (load %.3f), pC = %.2f, "
      "policy %s%s\n\n",
      cfg.num_balancers, cfg.num_servers, cfg.load(), cfg.p_colocate,
      lb::to_string(cfg.policy), cfg.burst ? ", bursty arrivals" : "");

  util::Table t({"strategy", "avg queue len", "mean delay", "p95 delay",
                 "delay C", "delay E"});
  const auto run_one = [&](const std::string& k) {
    auto strat = make_strategy(k, visibility);
    const lb::LbResult r = run_lb_sim(cfg, *strat);
    t.add_row({strat->name(), r.mean_queue_length, r.mean_delay, r.p95_delay,
               r.mean_delay_c, r.mean_delay_e});
  };

  if (kind == "all") {
    for (const char* k : {"random", "round-robin", "po2", "dedicated",
                          "classical", "mixed", "quantum", "omniscient"}) {
      run_one(k);
    }
  } else {
    run_one(kind);
  }
  t.print(std::cout);
  std::puts(
      "\nNotes: po2 needs global queue visibility (not achievable without\n"
      "communication); omniscient sees both inputs (the paper's Section-5\n"
      "testbed cheat). quantum uses only pre-shared entanglement.");
  return 0;
}

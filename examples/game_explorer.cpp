// game_explorer: interactive tour of the non-local game toolkit.
//
// Generates a random affinity graph, builds its XOR game, computes the
// exact classical and quantum values, shows the realising correlators, and
// situates the result in the local/quantum/no-signaling hierarchy. The
// tool the paper's §5 "collaboration between networking and quantum
// information" would reach for first.
//
//   build/examples/game_explorer [num_types] [p_exclusive] [seed]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "games/box.hpp"
#include "games/chsh.hpp"
#include "games/realize.hpp"
#include "games/seesaw.hpp"
#include "games/xor_game.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ftl;
  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 5;
  const double p_exclusive = argc > 2 ? std::atof(argv[2]) : 0.5;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10)
                                      : 2025;

  util::Rng rng(seed);
  const games::AffinityGraph graph =
      games::AffinityGraph::random(n, p_exclusive, rng);

  std::printf("affinity graph: %zu task types, %zu exclusive edges "
              "(p_exclusive %.2f, seed %llu)\n\n",
              n, graph.num_exclusive_edges(), p_exclusive,
              static_cast<unsigned long long>(seed));

  std::puts("edge labels (X = exclusive, . = colocate):");
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = 0; v < n; ++v) {
      std::putchar(graph.at(u, v) == games::Affinity::kExclusive ? 'X' : '.');
      std::putchar(' ');
    }
    std::putchar('\n');
  }

  const games::XorGame game = games::XorGame::from_affinity(graph);
  const auto witness = game.classical_strategy();
  sdp::GramOptions opts;
  opts.restarts = 12;
  const auto qres = game.quantum_bias(opts);

  std::printf("\nclassical value: %.6f   (best deterministic outputs: a=",
              (1.0 + witness.bias) / 2.0);
  for (int v : witness.alice) std::printf("%d", v);
  std::printf(", b=");
  for (int v : witness.bob) std::printf("%d", v);
  std::printf(")\nquantum value:   %.6f   (Tsirelson SDP)\n",
              (1.0 + qres.bias) / 2.0);
  const bool adv = qres.bias > witness.bias + 1e-5;
  std::printf("quantum advantage: %s (gap %.6f in bias)\n",
              adv ? "YES" : "no", qres.bias - witness.bias);

  // Realised correlators E(x, y) = <u_x, v_y> from the Tsirelson vectors.
  std::puts("\nquantum correlators E(x, y) (want +1 on colocate, -1 on "
            "exclusive):");
  for (std::size_t x = 0; x < n; ++x) {
    for (std::size_t y = 0; y < n; ++y) {
      double dot = 0.0;
      for (std::size_t k = 0; k < qres.alice[x].size(); ++k) {
        dot += qres.alice[x][k] * qres.bob[y][k];
      }
      std::printf("%+.2f ", dot);
    }
    std::putchar('\n');
  }

  // Tsirelson's construction: realize the optimal strategy and play it.
  const games::RealizedXorStrategy realized(game, qres);
  util::Rng play_rng(seed ^ 0xfeed);
  int wins = 0;
  const int rounds = 20000;
  for (int i = 0; i < rounds; ++i) {
    std::size_t x = play_rng.uniform_int(n);
    std::size_t y = play_rng.uniform_int(n);
    while (x == y) {
      x = play_rng.uniform_int(n);
      y = play_rng.uniform_int(n);
    }
    const auto [a, b] = realized.play(x, y, play_rng);
    if ((a ^ b) == game.f(x, y)) ++wins;
  }
  std::printf("\nTsirelson realization: %zu qubit(s) per load balancer;\n"
              "exact value %.6f, sampled over %d rounds: %.6f\n",
              realized.qubits_per_party(), realized.value(), rounds,
              static_cast<double>(wins) / rounds);

  // The canonical 2-input case, placed in the box hierarchy.
  std::puts("\nthe hierarchy on CHSH (local <= 2 < quantum <= 2*sqrt(2) < "
            "PR = 4):");
  const auto classical_box =
      games::CorrelationBox::local_deterministic(0, 0, 0, 0);
  const auto quantum_box = games::CorrelationBox::from_strategy(
      games::chsh_quantum_strategy(games::chsh_optimal_angles()));
  const auto pr = games::CorrelationBox::pr_box();
  util::Table t({"box", "CHSH value", "local?", "quantum-admissible?",
                 "no-signaling?"});
  auto row = [&](const char* name, const games::CorrelationBox& box) {
    t.add_row({std::string(name), box.chsh_value(),
               std::string(box.is_local_admissible() ? "yes" : "no"),
               std::string(box.is_quantum_admissible() ? "yes" : "no"),
               std::string(box.no_signaling_violation() < 1e-9 ? "yes" : "no")});
  };
  row("best deterministic", classical_box);
  row("optimal quantum", quantum_box);
  row("PR box (hypothetical)", pr);
  t.print(std::cout);

  // See-saw on the CHSH game as a sanity anchor.
  const auto seesaw = games::seesaw_optimize(games::chsh_game());
  std::printf("\nsee-saw lower bound for CHSH: %.6f (Tsirelson: %.6f)\n",
              seesaw.value, 0.5 + 0.25 * std::sqrt(2.0));
  return 0;
}

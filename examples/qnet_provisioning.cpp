// qnet_provisioning: size an entanglement source for a cluster.
//
// Given a request rate and a hardware budget (SPDC pair rate, fiber length,
// memory T1/T2), decide whether the quantum load balancer will actually
// beat the classical one end to end — the engineering question behind
// Section 3.
//
//   build/examples/qnet_provisioning [request_rate_hz] [fiber_km]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/coordinator.hpp"
#include "qnet/decoherence.hpp"
#include "qnet/timing.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ftl;
  const double request_rate = argc > 1 ? std::atof(argv[1]) : 1e4;
  const double fiber_km = argc > 2 ? std::atof(argv[2]) : 0.5;

  std::printf("provisioning for %.0f requests/s over %.2f km fiber\n\n",
              request_rate, fiber_km);

  std::puts("step 1: how long can a pair sit in QNIC memory and still win?");
  for (double v0 : {0.99, 0.95, 0.90}) {
    std::printf("  source visibility %.2f -> useful storage window %.1f us\n",
                v0, qnet::useful_storage_window_s(v0, 500e-6, 100e-6) * 1e6);
  }

  std::puts("\nstep 2: pair-rate sweep (hit rate and end-to-end win prob):");
  util::Table t({"pair rate (hz)", "hit fraction", "mean age (us)",
                 "effective win", "verdict"});
  double needed_rate = -1.0;
  for (double rate : {1e3, 3e3, 1e4, 3e4, 1e5, 1e6}) {
    qnet::QnetConfig cfg;
    cfg.pair_rate_hz = rate;
    cfg.fiber_km = fiber_km;
    const auto report =
        core::Coordinator::provision(cfg, 0.98, request_rate, 0.5, 1);
    const bool ok = report.quantum_worthwhile();
    if (ok && needed_rate < 0.0) needed_rate = rate;
    t.add_row({rate, report.pair_hit_fraction, report.mean_pair_age_s * 1e6,
               report.effective_win_probability,
               std::string(ok ? "worthwhile" : "stay classical")});
  }
  t.print(std::cout);
  if (needed_rate > 0.0) {
    std::printf("\n=> provision at least %.0f pairs/s (the paper cites SPDC "
                "sources spanning 1e4-1e7 pairs/s at room temperature).\n",
                needed_rate);
  }

  std::puts("\nstep 3: what latency does this buy (Figure 2)?");
  qnet::TimingModel m;
  m.inter_server_distance_m = 100.0;
  std::printf("  classical coordination RTT: %.2f us\n",
              qnet::classical_coordination_latency_s(m) * 1e6);
  std::printf("  quantum stored-qubit decision: %.2f us\n",
              qnet::quantum_decision_latency_s(m) * 1e6);
  m.inter_server_distance_m = 1.0e6;  // two datacenters, 1000 km apart
  std::printf("  ...at 1000 km the classical RTT is %.0f us; the quantum "
              "decision latency is unchanged (%.2f us).\n",
              qnet::classical_coordination_latency_s(m) * 1e6,
              qnet::quantum_decision_latency_s(m) * 1e6);
  return 0;
}

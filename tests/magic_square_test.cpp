#include "games/magic_square.hpp"

#include <gtest/gtest.h>

#include "qcore/gates.hpp"
#include "util/rng.hpp"

namespace ftl::games {
namespace {

TEST(MagicSquare, ObservablesAreValidMeasurements) {
  const MagicSquareGame game;
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      for (int party = 0; party < 2; ++party) {
        const auto& o = game.observable(r, c, party);
        EXPECT_TRUE(o.is_hermitian(1e-10));
        EXPECT_TRUE((o * o).approx_equal(qcore::CMat::identity(16), 1e-10));
      }
    }
  }
}

TEST(MagicSquare, RowObservablesCommuteAndMultiplyToPlusIdentity) {
  const MagicSquareGame game;
  for (std::size_t r = 0; r < 3; ++r) {
    const auto& a = game.observable(r, 0, 0);
    const auto& b = game.observable(r, 1, 0);
    const auto& c = game.observable(r, 2, 0);
    EXPECT_TRUE((a * b).approx_equal(b * a, 1e-10));
    EXPECT_TRUE((b * c).approx_equal(c * b, 1e-10));
    EXPECT_TRUE((a * b * c).approx_equal(qcore::CMat::identity(16), 1e-10));
  }
}

TEST(MagicSquare, ColumnObservablesMultiplyToMinusIdentity) {
  const MagicSquareGame game;
  for (std::size_t c = 0; c < 3; ++c) {
    const auto& a = game.observable(0, c, 1);
    const auto& b = game.observable(1, c, 1);
    const auto& d = game.observable(2, c, 1);
    EXPECT_TRUE((a * b).approx_equal(b * a, 1e-10));
    EXPECT_TRUE(
        (a * b * d).approx_equal(qcore::CMat::identity(16) * qcore::Cx{-1, 0},
                                 1e-10));
  }
}

TEST(MagicSquare, CrossPartyObservablesCommute) {
  const MagicSquareGame game;
  const auto& alice = game.observable(1, 2, 0);
  const auto& bob = game.observable(2, 1, 1);
  EXPECT_TRUE((alice * bob).approx_equal(bob * alice, 1e-10));
}

TEST(MagicSquare, SharedStateIsTwoBellPairs) {
  const auto psi = MagicSquareGame::shared_state();
  EXPECT_EQ(psi.num_qubits(), 4u);
  EXPECT_NEAR(psi.norm(), 1.0, 1e-12);
  // Tracing out Bob leaves Alice maximally mixed (2 bits of entanglement).
  const auto rho = qcore::Density::from_state(psi);
  const auto alice = rho.partial_trace({2, 3});
  EXPECT_TRUE(alice.matrix().approx_equal(
      qcore::CMat::identity(4) * qcore::Cx{0.25, 0.0}, 1e-10));
}

TEST(MagicSquare, ClassicalValueIsEightNinths) {
  const MagicSquareGame game;
  EXPECT_NEAR(game.classical_value(), 8.0 / 9.0, 1e-12);
}

TEST(MagicSquare, QuantumPlayAlwaysWins) {
  const MagicSquareGame game;
  util::Rng rng(5);
  for (int round = 0; round < 400; ++round) {
    const std::size_t r = rng.uniform_int(3);
    const std::size_t c = rng.uniform_int(3);
    const auto result = game.play_quantum(r, c, rng);
    EXPECT_TRUE(game.wins(r, c, result)) << "r=" << r << " c=" << c;
  }
}

TEST(MagicSquare, ParityConstraintsAlwaysHold) {
  const MagicSquareGame game;
  util::Rng rng(6);
  for (int round = 0; round < 200; ++round) {
    const auto res = game.play_quantum(rng.uniform_int(3),
                                       rng.uniform_int(3), rng);
    EXPECT_EQ(res.row_entries[0] * res.row_entries[1] * res.row_entries[2],
              +1);
    EXPECT_EQ(res.col_entries[0] * res.col_entries[1] * res.col_entries[2],
              -1);
  }
}

TEST(MagicSquare, OutcomesAreUnbiased) {
  // Individual cell entries are fair +-1 coins (no information leaks).
  const MagicSquareGame game;
  util::Rng rng(7);
  int plus = 0;
  const int rounds = 5000;
  for (int i = 0; i < rounds; ++i) {
    plus += game.play_quantum(0, 0, rng).row_entries[0] > 0 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(plus) / rounds, 0.5, 0.025);
}

TEST(MagicSquare, ObservableMeasurementProbabilities) {
  // For the shared state, every cell observable has P(+1) = 1/2 a priori.
  const MagicSquareGame game;
  const auto rho = qcore::Density::from_state(MagicSquareGame::shared_state());
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(rho.observable_plus_probability(game.observable(r, c, 0)),
                  0.5, 1e-10);
    }
  }
}

TEST(MeasureObservable, CollapsesRepeatably) {
  util::Rng rng(8);
  auto rho = qcore::Density::from_state(MagicSquareGame::shared_state());
  const MagicSquareGame game;
  const auto& obs = game.observable(1, 1, 0);
  const int first = rho.measure_observable(obs, rng);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(rho.measure_observable(obs, rng), first);
  }
}

TEST(MeasureObservable, RejectsNonInvolution) {
  auto rho = qcore::Density::maximally_mixed(1);
  util::Rng rng(9);
  qcore::CMat not_involution{{qcore::Cx{2, 0}, qcore::Cx{0, 0}},
                             {qcore::Cx{0, 0}, qcore::Cx{1, 0}}};
  EXPECT_DEATH((void)rho.measure_observable(not_involution, rng),
               "square to the identity");
}

}  // namespace
}  // namespace ftl::games

// Counter/gauge/histogram semantics, label handling, and snapshot
// consistency under concurrent writers. Tests target obs::real directly so
// they stay meaningful even if the build flips FTL_OBS_ENABLED.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/histogram.hpp"

namespace {

using ftl::obs::Labels;
using ftl::obs::real::Counter;
using ftl::obs::real::Gauge;
using ftl::obs::real::Histogram;
using ftl::obs::real::Registry;

TEST(ObsCounter, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsGauge, SetAddUpdateMax) {
  Gauge g;
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.update_max(10.0);
  EXPECT_DOUBLE_EQ(g.value(), 10.0);
  g.update_max(4.0);  // lower: no change
  EXPECT_DOUBLE_EQ(g.value(), 10.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(ObsHistogram, MatchesUtilHistogramBinning) {
  // Same sample stream through both implementations must produce the same
  // counts, including the clamped under/overflow edge bins.
  Histogram h(0.0, 10.0, 5);
  ftl::util::Histogram ref(0.0, 10.0, 5);
  const double samples[] = {-1.0, 0.0, 1.9, 2.0, 5.5, 9.999, 10.0, 123.0};
  for (double x : samples) {
    h.observe(x);
    ref.add(x);
  }
  const ftl::obs::HistogramSample s = h.sample();
  ASSERT_EQ(s.counts.size(), ref.counts().size());
  for (std::size_t i = 0; i < s.counts.size(); ++i) {
    EXPECT_EQ(s.counts[i], ref.counts()[i]) << "bin " << i;
  }
  EXPECT_EQ(s.underflow, ref.underflow());
  EXPECT_EQ(s.overflow, ref.overflow());
  EXPECT_EQ(s.total, ref.total());
  // And the rebuilt util::Histogram agrees on quantiles.
  EXPECT_DOUBLE_EQ(h.snapshot().quantile(0.5), ref.quantile(0.5));
}

TEST(ObsHistogram, ResetKeepsShape) {
  Histogram h(0.0, 1.0, 4);
  h.observe(0.3);
  h.observe(2.0);
  h.reset();
  const auto s = h.sample();
  EXPECT_EQ(s.total, 0u);
  EXPECT_EQ(s.overflow, 0u);
  EXPECT_EQ(s.counts.size(), 4u);
  EXPECT_DOUBLE_EQ(s.lo, 0.0);
  EXPECT_DOUBLE_EQ(s.hi, 1.0);
}

TEST(ObsRegistry, SameKeyReturnsSameMetric) {
  Registry r;
  Counter& a = r.counter("x.count");
  Counter& b = r.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
}

TEST(ObsRegistry, LabelsDistinguishMetrics) {
  Registry r;
  Counter& plain = r.counter("won");
  Counter& red = r.counter("won", Labels{{"team", "red"}});
  Counter& blue = r.counter("won", Labels{{"team", "blue"}});
  EXPECT_NE(&plain, &red);
  EXPECT_NE(&red, &blue);
  red.inc(2);
  blue.inc(3);

  const ftl::obs::Snapshot snap = r.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  std::uint64_t red_v = 0;
  std::uint64_t blue_v = 0;
  for (const auto& c : snap.counters) {
    if (c.labels == Labels{{"team", "red"}}) red_v = c.value;
    if (c.labels == Labels{{"team", "blue"}}) blue_v = c.value;
  }
  EXPECT_EQ(red_v, 2u);
  EXPECT_EQ(blue_v, 3u);
}

TEST(ObsRegistry, HistogramShapeFixedAtFirstRegistration) {
  Registry r;
  Histogram& h1 = r.histogram("h", 0.0, 10.0, 5);
  Histogram& h2 = r.histogram("h", -1.0, 99.0, 7);  // ignored
  EXPECT_EQ(&h1, &h2);
  EXPECT_DOUBLE_EQ(h2.lo(), 0.0);
  EXPECT_DOUBLE_EQ(h2.hi(), 10.0);
  EXPECT_EQ(h2.bins(), 5u);
}

TEST(ObsRegistry, ResetZeroesButKeepsReferences) {
  Registry r;
  Counter& c = r.counter("c");
  Gauge& g = r.gauge("g");
  Histogram& h = r.histogram("h", 0.0, 1.0, 2);
  c.inc(5);
  g.set(7.0);
  h.observe(0.5);
  r.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.sample().total, 0u);
  c.inc();  // reference still valid after reset
  EXPECT_EQ(r.snapshot().counters.front().value, 1u);
}

TEST(ObsRegistry, SnapshotUnderConcurrentWriters) {
  Registry r;
  Counter& c = r.counter("hits");
  Histogram& h = r.histogram("lat", 0.0, 100.0, 10);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c, &h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        h.observe(static_cast<double>((t * 37 + i) % 100));
      }
    });
  }
  // Snapshots taken mid-flight must be internally sane (never exceed the
  // final totals, never crash).
  for (int probe = 0; probe < 50; ++probe) {
    const auto snap = r.snapshot();
    ASSERT_EQ(snap.counters.size(), 1u);
    EXPECT_LE(snap.counters[0].value,
              static_cast<std::uint64_t>(kThreads) * kPerThread);
  }
  for (auto& w : workers) w.join();

  const auto snap = r.snapshot();
  EXPECT_EQ(snap.counters[0].value,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].total,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ObsSnapshot, ToHistogramRoundTrip) {
  Histogram h(0.0, 4.0, 4);
  for (double x : {0.5, 1.5, 1.6, 2.5, 3.5, -1.0, 9.0}) h.observe(x);
  const ftl::obs::HistogramSample s = h.sample();
  const ftl::util::Histogram rebuilt = s.to_histogram();
  EXPECT_EQ(rebuilt.total(), s.total);
  EXPECT_EQ(rebuilt.underflow(), s.underflow);
  EXPECT_EQ(rebuilt.overflow(), s.overflow);
  EXPECT_EQ(rebuilt.counts(), s.counts);
}

}  // namespace

// Unit tests for qcore/channels: CPTP at the edge parameters 0 and 1 for
// every built-in family, the expected action on concrete states at those
// edges, and the T1/T2 decay law of storage_decoherence.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "qcore/channels.hpp"
#include "qcore/density.hpp"
#include "qcore/gates.hpp"
#include "qcore/invariants.hpp"
#include "qcore/state.hpp"

namespace {

using ftl::qcore::Channel;
using ftl::qcore::CMat;
using ftl::qcore::Cx;
using ftl::qcore::Density;
using ftl::qcore::StateVec;

// |+> = (|0> + |1>)/sqrt(2): maximal coherence, the most noise-sensitive
// single-qubit probe.
Density plus_state() {
  const double r = 1.0 / std::sqrt(2.0);
  return Density::from_state(
      StateVec::from_amplitudes({Cx{r, 0.0}, Cx{r, 0.0}}));
}

Density one_state() {
  return Density::from_state(
      StateVec::from_amplitudes({Cx{0.0, 0.0}, Cx{1.0, 0.0}}));
}

TEST(QcoreChannels, AllFamiliesAreCptpAtEdgeParameters) {
  for (const double p : {0.0, 1.0}) {
    EXPECT_TRUE(ftl::qcore::is_cptp(ftl::qcore::depolarizing(p)))
        << "depolarizing(" << p << ")";
    EXPECT_TRUE(ftl::qcore::is_cptp(ftl::qcore::dephasing(p)))
        << "dephasing(" << p << ")";
    EXPECT_TRUE(ftl::qcore::is_cptp(ftl::qcore::amplitude_damping(p)))
        << "amplitude_damping(" << p << ")";
    EXPECT_TRUE(ftl::qcore::is_cptp(ftl::qcore::bit_flip(p)))
        << "bit_flip(" << p << ")";
  }
  EXPECT_TRUE(ftl::qcore::is_cptp(ftl::qcore::identity_channel()));
}

TEST(QcoreChannels, ZeroStrengthChannelsActAsIdentity) {
  const std::vector<Channel> zero = {
      ftl::qcore::depolarizing(0.0), ftl::qcore::dephasing(0.0),
      ftl::qcore::amplitude_damping(0.0), ftl::qcore::bit_flip(0.0),
      ftl::qcore::identity_channel()};
  for (const Channel& ch : zero) {
    Density rho = plus_state();
    rho.apply_channel(ch, 0);
    EXPECT_TRUE(rho.matrix().approx_equal(plus_state().matrix(), 1e-12));
  }
}

TEST(QcoreChannels, FullDepolarizingYieldsMaximallyMixed) {
  Density rho = plus_state();
  rho.apply_channel(ftl::qcore::depolarizing(1.0), 0);
  EXPECT_TRUE(rho.matrix().approx_equal(
      Density::maximally_mixed(1).matrix(), 1e-12));
  EXPECT_NEAR(rho.purity(), 0.5, 1e-12);
}

TEST(QcoreChannels, FullDephasingKillsCoherenceOnly) {
  Density rho = plus_state();
  rho.apply_channel(ftl::qcore::dephasing(1.0), 0);
  // Populations survive, off-diagonals vanish.
  EXPECT_NEAR(rho.matrix().at(0, 0).real(), 0.5, 1e-12);
  EXPECT_NEAR(rho.matrix().at(1, 1).real(), 0.5, 1e-12);
  EXPECT_NEAR(std::abs(rho.matrix().at(0, 1)), 0.0, 1e-12);
}

TEST(QcoreChannels, FullAmplitudeDampingRelaxesToGround) {
  Density rho = one_state();
  rho.apply_channel(ftl::qcore::amplitude_damping(1.0), 0);
  EXPECT_NEAR(rho.matrix().at(0, 0).real(), 1.0, 1e-12);
  EXPECT_NEAR(std::abs(rho.matrix().at(1, 1)), 0.0, 1e-12);
}

TEST(QcoreChannels, FullBitFlipConjugatesByX) {
  Density rho = one_state();
  rho.apply_channel(ftl::qcore::bit_flip(1.0), 0);
  EXPECT_NEAR(rho.matrix().at(0, 0).real(), 1.0, 1e-12);
  // And on a Z eigen-mixture it is an involution.
  rho.apply_channel(ftl::qcore::bit_flip(1.0), 0);
  EXPECT_TRUE(rho.matrix().approx_equal(one_state().matrix(), 1e-12));
}

TEST(QcoreChannels, ChannelsActOnTheAddressedQubitOnly) {
  // Apply full dephasing to qubit 1 of a Bell pair: the reduced state of
  // qubit 0 is untouched (it was already maximally mixed) and the joint
  // state loses exactly its off-diagonal |00><11| coherence.
  Density rho = Density::from_state(StateVec::bell_phi_plus());
  rho.apply_channel(ftl::qcore::dephasing(1.0), 1);
  EXPECT_NEAR(rho.matrix().at(0, 0).real(), 0.5, 1e-12);
  EXPECT_NEAR(rho.matrix().at(3, 3).real(), 0.5, 1e-12);
  EXPECT_NEAR(std::abs(rho.matrix().at(0, 3)), 0.0, 1e-12);
  const Density reduced = rho.partial_trace({1});
  EXPECT_TRUE(reduced.matrix().approx_equal(
      Density::maximally_mixed(1).matrix(), 1e-12));
}

TEST(QcoreChannels, StorageDecoherenceAtZeroTimeIsIdentity) {
  const auto chain = ftl::qcore::storage_decoherence(0.0, 1.0, 1.5);
  Density rho = plus_state();
  for (const Channel& ch : chain) rho.apply_channel(ch, 0);
  EXPECT_TRUE(rho.matrix().approx_equal(plus_state().matrix(), 1e-12));
}

TEST(QcoreChannels, StorageDecoherenceFollowsT1AndT2Laws) {
  const double t1 = 0.8;
  const double t2 = 1.1;  // t2 <= 2*t1
  for (const double t : {0.1, 0.5, 1.3}) {
    const auto chain = ftl::qcore::storage_decoherence(t, t1, t2);
    for (const Channel& ch : chain) {
      EXPECT_TRUE(ftl::qcore::is_cptp(ch));
    }
    // Population decay: <1|rho|1> = e^{-t/T1} starting from |1>.
    Density excited = one_state();
    for (const Channel& ch : chain) excited.apply_channel(ch, 0);
    EXPECT_NEAR(excited.matrix().at(1, 1).real(), std::exp(-t / t1), 1e-9)
        << "t = " << t;
    // Coherence decay: |<0|rho|1>| = 0.5 * e^{-t/T2} starting from |+>.
    Density coherent = plus_state();
    for (const Channel& ch : chain) coherent.apply_channel(ch, 0);
    EXPECT_NEAR(std::abs(coherent.matrix().at(0, 1)),
                0.5 * std::exp(-t / t2), 1e-9)
        << "t = " << t;
  }
}

TEST(QcoreChannels, ChoiMatrixOfIdentityIsTheBellProjector) {
  // J(id) = 2 |Phi+><Phi+| — the textbook fixed point of the Choi map and a
  // direct check that choi_matrix uses the advertised convention.
  const CMat j = ftl::qcore::choi_matrix(ftl::qcore::identity_channel());
  const CMat bell = StateVec::bell_phi_plus().to_density();
  EXPECT_TRUE(j.approx_equal(bell * Cx{2.0, 0.0}, 1e-12));
}

}  // namespace

#include "games/multiparty.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace ftl::games {
namespace {

TEST(GhzParityGame, InputsHaveEvenParity) {
  const GhzParityGame g(3);
  EXPECT_EQ(g.inputs().size(), 4u);  // 000, 011, 101, 110
  for (const auto& in : g.inputs()) {
    int parity = 0;
    for (int b : in) parity ^= b;
    EXPECT_EQ(parity, 0);
  }
}

TEST(GhzParityGame, TargetParity) {
  const GhzParityGame g(3);
  EXPECT_EQ(g.target_parity({0, 0, 0}), 0);
  EXPECT_EQ(g.target_parity({1, 1, 0}), 1);
  EXPECT_EQ(g.target_parity({1, 0, 1}), 1);
}

TEST(GhzParityGame, WinPredicate) {
  const GhzParityGame g(3);
  EXPECT_TRUE(g.wins({0, 0, 0}, {0, 0, 0}));
  EXPECT_TRUE(g.wins({0, 0, 0}, {1, 1, 0}));
  EXPECT_FALSE(g.wins({0, 0, 0}, {1, 0, 0}));
  EXPECT_TRUE(g.wins({1, 1, 0}, {1, 0, 0}));
}

TEST(GhzParityGame, ClassicalValueThreeParties) {
  // Mermin: best classical strategy wins 3 of 4 inputs.
  EXPECT_NEAR(GhzParityGame(3).classical_value(), 0.75, 1e-12);
}

TEST(GhzParityGame, ClassicalValueFourParties) {
  // 1/2 + 2^{-ceil(n/2)} = 0.75 for n = 4.
  EXPECT_NEAR(GhzParityGame(4).classical_value(), 0.75, 1e-12);
}

TEST(GhzParityGame, ClassicalValueFiveParties) {
  // 1/2 + 2^{-3} = 0.625 for n = 5: the multiparty gap grows, as §2's
  // citation [31] says.
  EXPECT_NEAR(GhzParityGame(5).classical_value(), 0.625, 1e-12);
}

TEST(GhzParityGame, QuantumValueIsPerfect) {
  for (std::size_t n : {3u, 4u, 5u}) {
    EXPECT_NEAR(GhzParityGame(n).quantum_value_exact(), 1.0, 1e-10)
        << "n=" << n;
  }
}

TEST(GhzParityGame, SampledPlayAlwaysWins) {
  const GhzParityGame g(3);
  util::Rng rng(5);
  for (int round = 0; round < 500; ++round) {
    const auto& in = g.inputs()[rng.uniform_int(g.inputs().size())];
    const auto out = g.play_quantum(in, rng);
    EXPECT_TRUE(g.wins(in, out));
  }
}

TEST(GhzParityGame, SampledPlayFourParties) {
  const GhzParityGame g(4);
  util::Rng rng(6);
  for (int round = 0; round < 200; ++round) {
    const auto& in = g.inputs()[rng.uniform_int(g.inputs().size())];
    EXPECT_TRUE(g.wins(in, g.play_quantum(in, rng)));
  }
}

TEST(GhzParityGame, OutputsAreUnbiased) {
  // Each player's output is a fair coin (no information leaks).
  const GhzParityGame g(3);
  util::Rng rng(7);
  int ones = 0;
  const int rounds = 20000;
  for (int i = 0; i < rounds; ++i) {
    const auto out = g.play_quantum({1, 1, 0}, rng);
    ones += out[0];
  }
  EXPECT_NEAR(static_cast<double>(ones) / rounds, 0.5, 0.01);
}

TEST(GhzParityGame, QuantumBeatsClassicalStrictly) {
  for (std::size_t n : {3u, 4u, 5u}) {
    const GhzParityGame g(n);
    EXPECT_GT(g.quantum_value_exact(), g.classical_value() + 0.2)
        << "n=" << n;
  }
}

}  // namespace
}  // namespace ftl::games

#include "games/npa.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "games/chsh.hpp"
#include "games/seesaw.hpp"
#include "games/xor_game.hpp"
#include "sdp/dense.hpp"
#include "util/rng.hpp"

namespace ftl::games {
namespace {

constexpr double kChshQuantum = 0.85355339059;

TEST(DenseSolve, KnownSystem) {
  sdp::RMat a(2, 2);
  a.at(0, 0) = 2.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 3.0;
  const auto x = sdp::solve_linear(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(DenseSolve, NeedsPivoting) {
  sdp::RMat a(2, 2);
  a.at(0, 0) = 0.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 0.0;
  const auto x = sdp::solve_linear(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(DenseSolve, RandomSystemsRoundTrip) {
  util::Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 3 + rng.uniform_int(8);
    sdp::RMat a(n, n);
    std::vector<double> x_true(n);
    for (std::size_t i = 0; i < n; ++i) {
      x_true[i] = rng.normal();
      for (std::size_t j = 0; j < n; ++j) a.at(i, j) = rng.normal();
    }
    std::vector<double> b(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) b[i] += a.at(i, j) * x_true[j];
    }
    const auto x = sdp::solve_linear(a, b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
  }
}

TEST(DenseSolve, SingularDies) {
  sdp::RMat a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 4.0;
  EXPECT_DEATH((void)sdp::solve_linear(a, {1.0, 2.0}), "singular");
}

TEST(Npa, ChshIsTight) {
  const NpaResult r = npa1_upper_bound(chsh_game());
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.upper_bound, kChshQuantum, 1e-6);
  EXPECT_GE(r.upper_bound, kChshQuantum - 1e-10);  // genuine upper bound
}

TEST(Npa, FlippedChshIsTight) {
  EXPECT_NEAR(npa1_upper_bound(chsh_game(true)).upper_bound, kChshQuantum,
              1e-6);
}

TEST(Npa, TrivialGameIsOne) {
  const XorGame xg({{0, 0}, {0, 0}}, TwoPartyGame::uniform_inputs(2, 2));
  EXPECT_NEAR(npa1_upper_bound(xg.to_two_party_game()).upper_bound, 1.0,
              1e-6);
}

TEST(Npa, MatchesXorSdpOnBiasedGames) {
  // For XOR games NPA level 1 is exact (Tsirelson); it must agree with the
  // vector SDP for every input bias.
  for (double p : {0.3, 0.5, 0.7}) {
    std::vector<std::vector<int>> f{{0, 0}, {0, 1}};
    std::vector<std::vector<double>> pi{{(1 - p) * (1 - p), (1 - p) * p},
                                        {p * (1 - p), p * p}};
    const XorGame xg(f, pi);
    const double sdp_value = (1.0 + xg.quantum_bias().bias) / 2.0;
    const double npa = npa1_upper_bound(xg.to_two_party_game()).upper_bound;
    EXPECT_NEAR(npa, sdp_value, 1e-5) << "p=" << p;
  }
}

TEST(Npa, CertifiesRandomGamesAgainstSeesaw) {
  // Sandwich: seesaw (explicit strategy) <= NPA (relaxation). When the gap
  // closes, the value is certified from both sides.
  util::Rng rng(9);
  for (int trial = 0; trial < 6; ++trial) {
    std::vector wins(2, std::vector(2, std::vector(2, std::vector<bool>(2))));
    for (int x = 0; x < 2; ++x) {
      for (int y = 0; y < 2; ++y) {
        for (int a = 0; a < 2; ++a) {
          for (int b = 0; b < 2; ++b) {
            wins[x][y][a][b] = rng.bernoulli(0.5);
          }
        }
      }
    }
    const TwoPartyGame game(wins, TwoPartyGame::uniform_inputs(2, 2));
    SeesawOptions sopts;
    sopts.restarts = 16;
    sopts.max_rounds = 200;
    const double lower = seesaw_optimize(game, sopts).value;
    const double upper = npa1_upper_bound(game).upper_bound;
    EXPECT_LE(lower, upper + 1e-7) << "trial " << trial;
    // NPA 1+AB is the "almost quantum" relaxation — in principle strictly
    // above the quantum set — but for these 2x2x2 games the sandwich
    // closes (qubit strategies reach the bound), certifying the values.
    EXPECT_NEAR(lower, upper, 2e-4) << "trial " << trial;
  }
}

TEST(Npa, UpperBoundsClassicalValueToo) {
  // Quantum upper bound can never sit below the classical value.
  util::Rng rng(11);
  for (int trial = 0; trial < 4; ++trial) {
    std::vector wins(2, std::vector(2, std::vector(2, std::vector<bool>(2))));
    for (int x = 0; x < 2; ++x) {
      for (int y = 0; y < 2; ++y) {
        for (int a = 0; a < 2; ++a) {
          for (int b = 0; b < 2; ++b) wins[x][y][a][b] = rng.bernoulli(0.6);
        }
      }
    }
    const TwoPartyGame game(wins, TwoPartyGame::uniform_inputs(2, 2));
    EXPECT_GE(npa1_upper_bound(game).upper_bound,
              classical_value(game).value - 1e-7);
  }
}

TEST(Npa, RejectsWrongShape) {
  // 3-input games are outside this level's monomial basis.
  std::vector wins(3, std::vector(3, std::vector(2, std::vector<bool>(2, true))));
  const TwoPartyGame game(wins, TwoPartyGame::uniform_inputs(3, 3));
  EXPECT_DEATH((void)npa1_upper_bound(game), "2-input");
}

}  // namespace
}  // namespace ftl::games

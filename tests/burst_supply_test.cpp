// Tests for the bursty-arrival model and the supply-limited decision source
// (the two pieces that connect §3's hardware budget to §4.1's simulation).
#include <gtest/gtest.h>

#include <cmath>

#include "core/supply_source.hpp"
#include "lb/simulator.hpp"

namespace ftl {
namespace {

lb::LbConfig burst_cfg() {
  lb::LbConfig cfg;
  cfg.num_balancers = 60;
  cfg.num_servers = 40;
  cfg.warmup_steps = 400;
  cfg.measure_steps = 2500;
  cfg.seed = 3;
  return cfg;
}

TEST(Burst, ReducesMeanArrivalRate) {
  lb::LbConfig cfg = burst_cfg();
  lb::RandomStrategy s1;
  const auto steady = run_lb_sim(cfg, s1);
  cfg.burst = lb::BurstModel{1.0, 0.2, 40.0};
  lb::RandomStrategy s2;
  const auto bursty = run_lb_sim(cfg, s2);
  // Mean activity ~0.6 of steady.
  EXPECT_LT(bursty.arrived, steady.arrived);
  EXPECT_GT(bursty.arrived, steady.arrived / 3);
}

TEST(Burst, ConservationStillHolds) {
  lb::LbConfig cfg = burst_cfg();
  cfg.burst = lb::BurstModel{1.0, 0.1, 25.0};
  lb::PairedStrategy strat(std::make_unique<correlate::ChshSource>(1.0));
  const auto r = run_lb_sim(cfg, strat);
  EXPECT_EQ(r.arrived, r.served + r.still_queued);
}

TEST(Burst, PairedStrategyHandlesLoneBalancers) {
  // With activity 0.5, half the pairs have exactly one active member each
  // step; the strategy must still produce valid assignments.
  lb::LbConfig cfg = burst_cfg();
  cfg.burst = lb::BurstModel{0.5, 0.5, 1000.0};
  lb::PairedStrategy strat(std::make_unique<correlate::ChshSource>(1.0));
  const auto r = run_lb_sim(cfg, strat);
  EXPECT_GT(r.served, 0);
  EXPECT_EQ(r.arrived, r.served + r.still_queued);
}

TEST(Burst, QuantumAdvantageSurvivesModerateBurstiness) {
  // The §4.1 caveat probe: with bursty arrivals sized so the HIGH phase
  // sits at the knee, quantum pairing still beats classical pairing.
  lb::LbConfig cfg;
  cfg.num_balancers = 100;
  cfg.num_servers = 80;
  cfg.warmup_steps = 500;
  cfg.measure_steps = 4000;
  cfg.seed = 9;
  cfg.burst = lb::BurstModel{1.0, 0.5, 60.0};

  lb::PairedStrategy quantum(std::make_unique<correlate::ChshSource>(1.0));
  lb::PairedStrategy classical(
      std::make_unique<correlate::ClassicalChshSource>());
  const auto rq = run_lb_sim(cfg, quantum);
  const auto rc = run_lb_sim(cfg, classical);
  EXPECT_LT(rq.mean_delay, rc.mean_delay);
}

TEST(SupplySource, FallsBackGracefully) {
  core::PairConfig cfg;
  cfg.backend = core::Backend::kQuantum;
  cfg.visibility = 0.98;
  qnet::QnetConfig supply;
  supply.pair_rate_hz = 2e3;  // starved vs 1e4 rounds/s
  cfg.supply = supply;
  cfg.round_rate_hz = 1e4;
  cfg.seed = 5;
  core::SupplyAwareSource src(cfg);
  util::Rng rng(6);
  int wins = 0;
  const int rounds = 20000;
  for (int i = 0; i < rounds; ++i) {
    const int x = rng.bernoulli(0.5) ? 1 : 0;
    const int y = rng.bernoulli(0.5) ? 1 : 0;
    const auto [a, b] = src.decide(x, y, rng);
    const int target = (x == 1 && y == 1) ? 0 : 1;
    if ((a ^ b) == target) ++wins;
  }
  const double win = static_cast<double>(wins) / rounds;
  // Mostly classical rounds: between 0.75 and the fresh-pair quantum rate.
  EXPECT_GT(win, 0.74);
  EXPECT_LT(win, 0.80);
  EXPECT_GT(src.stats().fallback_rounds, src.stats().quantum_rounds);
}

TEST(SupplySource, AbundantSupplyApproachesIdeal) {
  core::PairConfig cfg;
  cfg.backend = core::Backend::kQuantum;
  cfg.visibility = 1.0;
  qnet::QnetConfig supply;
  supply.pair_rate_hz = 1e6;
  supply.fiber_km = 0.1;
  supply.source_visibility = 1.0;
  cfg.supply = supply;
  cfg.round_rate_hz = 1e4;
  cfg.seed = 7;
  core::SupplyAwareSource src(cfg);
  util::Rng rng(8);
  int wins = 0;
  const int rounds = 20000;
  for (int i = 0; i < rounds; ++i) {
    const int x = rng.bernoulli(0.5) ? 1 : 0;
    const int y = rng.bernoulli(0.5) ? 1 : 0;
    const auto [a, b] = src.decide(x, y, rng);
    const int target = (x == 1 && y == 1) ? 0 : 1;
    if ((a ^ b) == target) ++wins;
  }
  EXPECT_NEAR(static_cast<double>(wins) / rounds,
              std::cos(M_PI / 8.0) * std::cos(M_PI / 8.0), 0.02);
}

TEST(SupplySource, EndToEndClusterOrdering) {
  // The Figure-4 comparison with a finite source: supply-limited quantum
  // sits between pure classical and ideal quantum.
  lb::LbConfig cfg;
  cfg.num_balancers = 60;
  cfg.num_servers = 52;
  cfg.warmup_steps = 400;
  cfg.measure_steps = 2500;
  cfg.seed = 13;

  core::PairConfig pc;
  pc.backend = core::Backend::kQuantum;
  pc.visibility = 1.0;
  qnet::QnetConfig supply;
  supply.pair_rate_hz = 1.2e4;  // just above the round rate
  supply.source_visibility = 0.99;
  pc.supply = supply;
  pc.round_rate_hz = 1e4;
  pc.seed = 21;

  lb::PairedStrategy limited(std::make_unique<core::SupplyAwareSource>(pc));
  lb::PairedStrategy ideal(std::make_unique<correlate::ChshSource>(1.0));
  lb::PairedStrategy classical(
      std::make_unique<correlate::ClassicalChshSource>());

  const double d_limited = run_lb_sim(cfg, limited).mean_delay;
  const double d_ideal = run_lb_sim(cfg, ideal).mean_delay;
  const double d_classical = run_lb_sim(cfg, classical).mean_delay;
  EXPECT_LT(d_ideal, d_classical);
  EXPECT_LE(d_limited, d_classical + 0.1);
  EXPECT_GE(d_limited, d_ideal - 0.1);
}

}  // namespace
}  // namespace ftl

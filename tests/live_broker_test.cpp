// Closed-form and invariant checks for the serving-path LiveBroker, driven
// in deterministic stepped (virtual-time) mode.
#include "qnet/live_broker.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "qnet/decoherence.hpp"

namespace ftl::qnet {
namespace {

/// Lossless, effectively-expiry-free configuration: zero-length fiber and
/// second-scale T1/T2 so every generated pair is delivered and pairs
/// consumed within milliseconds never decay out of the useful window.
LiveBrokerConfig no_expiry_config(double pair_rate_hz,
                                  std::size_t slots = 64) {
  LiveBrokerConfig cfg;
  cfg.qnet.pair_rate_hz = pair_rate_hz;
  cfg.qnet.fiber_km = 0.0;
  cfg.qnet.memory_t1_s = 50.0;
  cfg.qnet.memory_t2_s = 10.0;
  cfg.qnet.max_storage_s = 1.0;
  cfg.pool_slots = slots;
  return cfg;
}

/// Drives one source with a deterministic open-loop request schedule at
/// `request_rate_hz` for `duration_s` of virtual time.
LiveBrokerStats drive(LiveBroker& broker, double request_rate_hz,
                      double duration_s) {
  const double dt = 1.0 / request_rate_hz;
  std::uint8_t input = 0;
  for (double t = dt; t <= duration_s; t += dt) {
    broker.produce_until(0, t);
    (void)broker.decide(0, input ^= 1u, t);
  }
  return broker.stats();
}

TEST(LiveBroker, HitFractionTracksSupplyDemandRatio) {
  // No-expiry regime, supply-limited: almost every delivered pair is
  // consumed, so hit_fraction -> pair_rate / request_rate.
  for (const double ratio : {0.25, 0.5, 0.8}) {
    const double request_rate = 2e4;
    LiveBroker broker(no_expiry_config(ratio * request_rate), /*seed=*/42);
    const LiveBrokerStats s = drive(broker, request_rate, 1.0);
    EXPECT_NEAR(s.hit_fraction(), ratio, 0.03) << "ratio " << ratio;
    EXPECT_EQ(s.pairs_lost_fiber, 0u);
    EXPECT_EQ(s.pairs_expired, 0u);
    EXPECT_TRUE(s.conservation_holds());
  }
}

TEST(LiveBroker, AbundantSupplySaturatesHitFraction) {
  const double request_rate = 1e4;
  LiveBroker broker(no_expiry_config(5.0 * request_rate), /*seed=*/7);
  const LiveBrokerStats s = drive(broker, request_rate, 1.0);
  EXPECT_GT(s.hit_fraction(), 0.99);
  EXPECT_GT(s.mean_chsh_win(), 0.80);
  EXPECT_TRUE(s.conservation_holds());
}

TEST(LiveBroker, StarvedSupplyFallsBackToClassical) {
  // Pair supply at 1% of demand: mean win converges to the classical 0.75.
  const double request_rate = 1e4;
  LiveBroker broker(no_expiry_config(0.01 * request_rate), /*seed=*/3);
  const LiveBrokerStats s = drive(broker, request_rate, 1.0);
  EXPECT_LT(s.hit_fraction(), 0.03);
  EXPECT_GE(s.mean_chsh_win(), 0.75 - 1e-12);
  EXPECT_LE(s.mean_chsh_win(), 0.752);
  EXPECT_GT(s.fallbacks, 0u);
}

TEST(LiveBroker, FreshestFirstConsumption) {
  LiveBroker broker(no_expiry_config(1e4), /*seed=*/1);
  // Fill the pool, then decide: the consumed pair must be the newest one
  // (smallest age), not FIFO.
  broker.produce_until(0, 0.5);
  const LiveBrokerStats before = broker.stats();
  ASSERT_GT(before.pairs_in_memory, 1u);
  const auto d = broker.decide(0, 0, 0.5);
  ASSERT_TRUE(d.quantum);
  // The newest of ~5000 Poisson arrivals in [0, 0.5] at rate 1e4 is
  // overwhelmingly younger than a mean inter-arrival time of 100 us.
  EXPECT_LT(d.pair_age_s, 50e-4);
  EXPECT_DOUBLE_EQ(d.win_probability, broker.win_at_age(d.pair_age_s));
}

TEST(LiveBroker, ExpiredPairsAreEvictedNotServed) {
  LiveBrokerConfig cfg;  // default QnetConfig: ~100 us useful window
  cfg.qnet.pair_rate_hz = 1e5;
  cfg.qnet.fiber_km = 0.0;
  LiveBroker broker(cfg, /*seed=*/5);
  broker.produce_until(0, 0.01);
  const LiveBrokerStats before = broker.stats();
  ASSERT_GT(before.pairs_in_memory, 0u);
  // Jump far past the storage window: decide() resolves the elapsed
  // emission process itself, so the 0.01-era pool must be counted expired
  // (never served) and the consumed pair — if any — must be fresh.
  const auto d = broker.decide(0, 1, 0.01 + 1.0);
  const LiveBrokerStats s = broker.stats();
  EXPECT_GE(s.pairs_expired, before.pairs_in_memory);
  if (d.quantum) {
    EXPECT_LE(d.pair_age_s, broker.max_storage_s());
    EXPECT_DOUBLE_EQ(d.win_probability, broker.win_at_age(d.pair_age_s));
  } else {
    EXPECT_DOUBLE_EQ(d.win_probability, 0.75);
    EXPECT_EQ(d.output, 1u);  // classical fallback echoes the input bit
  }
  EXPECT_TRUE(s.conservation_holds());
}

TEST(LiveBroker, EffectiveWindowClampedByDecoherence) {
  LiveBrokerConfig cfg;
  cfg.qnet.max_storage_s = 10.0;  // far beyond what T1/T2 supports
  LiveBroker broker(cfg, /*seed=*/2);
  const double window = useful_storage_window_s(
      cfg.qnet.source_visibility, cfg.qnet.memory_t1_s, cfg.qnet.memory_t2_s);
  EXPECT_DOUBLE_EQ(broker.max_storage_s(), window);
  // At the clamped boundary the advantage is gone.
  EXPECT_NEAR(broker.win_at_age(window), 0.75, 1e-3);
  // Fresh pairs match the exact density-matrix computation.
  EXPECT_NEAR(broker.win_at_age(0.0),
              chsh_win_after_storage(cfg.qnet.source_visibility, 0.0, 0.0,
                                     cfg.qnet.memory_t1_s,
                                     cfg.qnet.memory_t2_s),
              1e-12);
}

TEST(LiveBroker, PoolOverflowDropsOldest) {
  LiveBrokerConfig cfg = no_expiry_config(1e5, /*slots=*/8);
  LiveBroker broker(cfg, /*seed=*/11);
  broker.produce_until(0, 1.0);  // ~1e5 pairs into an 8-slot pool
  const LiveBrokerStats s = broker.stats();
  EXPECT_EQ(s.pairs_in_memory, 8u);
  EXPECT_GT(s.pairs_dropped_full, 0u);
  EXPECT_TRUE(s.conservation_holds());
}

TEST(LiveBroker, AdmissionControlBoundsPending) {
  LiveBrokerConfig cfg = no_expiry_config(1e4);
  cfg.max_pending = 100;
  LiveBroker broker(cfg, /*seed=*/9);
  EXPECT_TRUE(broker.try_admit(60));
  EXPECT_TRUE(broker.try_admit(40));
  EXPECT_EQ(broker.pending(), 100u);
  EXPECT_FALSE(broker.try_admit(1));  // bound reached -> backpressure
  EXPECT_EQ(broker.stats().rejected, 1u);
  broker.release(40);
  EXPECT_TRUE(broker.try_admit(40));
  broker.release(100);
  EXPECT_EQ(broker.pending(), 0u);
}

TEST(LiveBroker, StatsAreDeterministicInSteppedMode) {
  auto run = [] {
    LiveBroker broker(no_expiry_config(1.5e4), /*seed=*/42);
    return drive(broker, 2e4, 0.5);
  };
  const LiveBrokerStats a = run();
  const LiveBrokerStats b = run();
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.rounds_won, b.rounds_won);
  EXPECT_EQ(a.pairs_generated, b.pairs_generated);
  EXPECT_EQ(a.pairs_delivered, b.pairs_delivered);
  EXPECT_DOUBLE_EQ(a.win_sum, b.win_sum);
}

TEST(LiveBroker, PerSourceStreamsAreIndependent) {
  LiveBrokerConfig cfg = no_expiry_config(1e4);
  cfg.sources = 4;
  LiveBroker broker(cfg, /*seed=*/42);
  for (std::size_t src = 0; src < 4; ++src) {
    broker.produce_until(src, 0.25);
  }
  const LiveBrokerStats s = broker.stats();
  // Four independent Poisson streams at 1e4 Hz for 0.25 s.
  EXPECT_NEAR(static_cast<double>(s.pairs_generated), 4 * 2500.0, 300.0);
  EXPECT_TRUE(s.conservation_holds());
}

}  // namespace
}  // namespace ftl::qnet

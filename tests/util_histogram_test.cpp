// Unit tests for util/histogram: bucket boundary placement, under/overflow
// clamping, quantile edge cases, and the empty-histogram contract.
#include <gtest/gtest.h>

#include "util/histogram.hpp"

namespace {

using ftl::util::Histogram;

TEST(UtilHistogram, BucketBoundariesAreHalfOpen) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.0);   // exactly lo -> bin 0
  h.add(0.999); // still bin 0
  h.add(1.0);   // exactly an interior boundary -> upper bin (bin 1)
  h.add(9.999); // last in-range value -> bin 9
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[9], 1u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(UtilHistogram, BinEdgesTileTheRangeExactly) {
  Histogram h(-2.0, 3.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), -2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 3.0);
  for (std::size_t i = 0; i + 1 < 5; ++i) {
    EXPECT_DOUBLE_EQ(h.bin_hi(i), h.bin_lo(i + 1)) << "gap at bin " << i;
  }
  EXPECT_DOUBLE_EQ(h.bin_hi(0) - h.bin_lo(0), 1.0);
}

TEST(UtilHistogram, OutOfRangeSamplesAreClampedAndTallied) {
  Histogram h(0.0, 10.0, 4);
  h.add(-3.0);   // underflow -> clamped into first bin
  h.add(10.0);   // hi itself is out of the half-open range -> overflow
  h.add(1e9);    // overflow -> clamped into last bin
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.counts().front(), 1u);
  EXPECT_EQ(h.counts().back(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(UtilHistogram, QuantileUsesBinMidpoints) {
  Histogram h(0.0, 10.0, 10);
  // One sample per bin: quantile(k/10) lands on bin k-1's midpoint.
  for (int i = 0; i < 10; ++i) h.add(static_cast<double>(i) + 0.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 4.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 9.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.1), 0.5);
}

TEST(UtilHistogram, QuantileEdgeCases) {
  Histogram empty(0.0, 1.0, 4);
  // The empty histogram returns lo for every quantile rather than reading
  // uninitialised bins.
  EXPECT_DOUBLE_EQ(empty.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(1.0), 0.0);

  Histogram h(0.0, 8.0, 8);
  h.add(5.3);  // single sample in bin 5 ([5, 6))
  for (const double q : {0.25, 0.5, 0.95, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), 5.5) << "q = " << q;
  }
}

TEST(UtilHistogram, P95MatchesDirectComputationOnAKnownSample) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) + 0.5);
  // ceil(0.95 * 100) = 95 samples -> bin index 94 -> midpoint 94.5.
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 94.5);
}

TEST(UtilHistogram, AsciiRendersOneLinePerBin) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string art = h.ascii(10);
  std::size_t lines = 0;
  for (const char c : art) lines += (c == '\n') ? 1 : 0;
  EXPECT_EQ(lines, 4u);
  // The fullest bin gets the full-width bar.
  EXPECT_NE(art.find("##########"), std::string::npos);
}

}  // namespace

// Property suite: batched measurement-table CHSH sampling is equivalent to
// per-round density-matrix sampling.
//
// The sharded Fig-4 engine draws CHSH outcomes from a precomputed
// correlate::OutcomeTable instead of re-deriving Born-rule probabilities
// per round. These properties pin the equivalence at three levels over
// randomly generated strategies (visibility, storage decoherence):
//   * exact distributions — the table's P(a,b|x,y) equals the strategy's
//     joint_probability entry for entry;
//   * exact sampling — the table maps every uniform draw to the same
//     outcome as the historical inverse-CDF scan, bit for bit, and a batch
//     consumes the RNG stream exactly like sequential single draws;
//   * statistical — chi-square on empirical draws against the Born
//     distribution, and storage-decohered tables reproduce the closed-form
//     post-storage win probability.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <utility>
#include <vector>

#include "correlate/batched.hpp"
#include "correlate/decision_source.hpp"
#include "games/chsh.hpp"
#include "qnet/batched_rounds.hpp"
#include "qnet/decoherence.hpp"
#include "util/proptest.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace ftl {
namespace {

using proptest::CaseResult;

/// The historical per-round sampler: lexicographic inverse-CDF scan over
/// the strategy's Born-rule joint distribution (what ChshSource::decide did
/// before the table). Kept here as the reference implementation.
std::pair<int, int> legacy_scan(const games::QuantumStrategy& strategy, int x,
                                int y, double u) {
  double cum = 0.0;
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      cum += strategy.joint_probability(static_cast<std::size_t>(x),
                                        static_cast<std::size_t>(y), a, b);
      if (u < cum) return {a, b};
    }
  }
  return {1, 1};
}

games::QuantumStrategy strategy_for(double visibility) {
  return games::chsh_quantum_strategy(games::chsh_optimal_angles(),
                                      /*flip_bob_output=*/true, visibility);
}

TEST(PropBatchedSampling, TableMatchesBornDistributionExactly) {
  const auto r = proptest::for_all(
      {.name = "table-matches-born", .cases = 60},
      [](util::Rng& rng) { return rng.uniform(); },
      [](const double& visibility) -> CaseResult {
        const games::QuantumStrategy strategy = strategy_for(visibility);
        const auto table = correlate::OutcomeTable::from_strategy(strategy);
        for (int x = 0; x < 2; ++x) {
          for (int y = 0; y < 2; ++y) {
            double total = 0.0;
            for (int a = 0; a < 2; ++a) {
              for (int b = 0; b < 2; ++b) {
                const double want = strategy.joint_probability(
                    static_cast<std::size_t>(x), static_cast<std::size_t>(y),
                    a, b);
                const double got = table.probability(x, y, a, b);
                total += got;
                if (std::abs(want - got) > 1e-9) {
                  std::ostringstream msg;
                  msg << "P(" << a << b << "|" << x << y << ") table " << got
                      << " vs born " << want << " at v=" << visibility;
                  return CaseResult::fail(msg.str());
                }
              }
            }
            if (std::abs(total - 1.0) > 1e-9) {
              return CaseResult::fail("table not normalised");
            }
          }
        }
        return CaseResult::pass();
      });
  ASSERT_TRUE(r.ok) << r.message;
}

TEST(PropBatchedSampling, TableOutcomeMatchesLegacyScanBitForBit) {
  const auto r = proptest::for_all(
      {.name = "table-vs-legacy-scan", .cases = 60},
      [](util::Rng& rng) { return rng.uniform(); },
      [](const double& visibility) -> CaseResult {
        const games::QuantumStrategy strategy = strategy_for(visibility);
        const auto table = correlate::OutcomeTable::from_strategy(strategy);
        util::Rng u_rng(0xab5edULL ^
                        static_cast<std::uint64_t>(visibility * 1e9));
        for (int x = 0; x < 2; ++x) {
          for (int y = 0; y < 2; ++y) {
            for (int i = 0; i < 256; ++i) {
              const double u = u_rng.uniform();
              const auto got = table.outcome(x, y, u);
              const auto want = legacy_scan(strategy, x, y, u);
              if (got != want) {
                std::ostringstream msg;
                msg << "u=" << u << " xy=" << x << y << " table=("
                    << got.first << "," << got.second << ") scan=("
                    << want.first << "," << want.second << ")";
                return CaseResult::fail(msg.str());
              }
            }
          }
        }
        return CaseResult::pass();
      });
  ASSERT_TRUE(r.ok) << r.message;
}

TEST(PropBatchedSampling, DecideDelegatesToTable) {
  // ChshSource::decide and its exposed table consume one uniform per round
  // and agree outcome for outcome when driven by identical streams.
  const auto r = proptest::for_all(
      {.name = "decide-delegates", .cases = 40},
      [](util::Rng& rng) { return rng.uniform(); },
      [](const double& visibility) -> CaseResult {
        correlate::ChshSource source(visibility);
        util::Rng rng_a(7);
        util::Rng rng_b(7);
        for (int i = 0; i < 200; ++i) {
          const int x = i & 1;
          const int y = (i >> 1) & 1;
          const auto via_decide = source.decide(x, y, rng_a);
          const auto via_table = source.table().sample(x, y, rng_b);
          if (via_decide != via_table) {
            return CaseResult::fail("decide and table diverged");
          }
        }
        return CaseResult::pass();
      });
  ASSERT_TRUE(r.ok) << r.message;
}

TEST(PropBatchedSampling, BatchConsumesStreamLikeSequentialDraws) {
  const auto r = proptest::for_all(
      {.name = "batch-vs-sequential", .cases = 40},
      [](util::Rng& rng) {
        struct Input {
          double visibility;
          std::uint64_t seed;
        };
        return Input{rng.uniform(), rng.next_u64()};
      },
      [](const auto& input) -> CaseResult {
        const auto table = correlate::OutcomeTable::from_strategy(
            strategy_for(input.visibility));
        constexpr std::size_t kRounds = 257;
        std::vector<int> xs(kRounds), ys(kRounds);
        util::Rng input_rng(input.seed);
        for (std::size_t i = 0; i < kRounds; ++i) {
          xs[i] = input_rng.bernoulli(0.5) ? 1 : 0;
          ys[i] = input_rng.bernoulli(0.5) ? 1 : 0;
        }
        std::vector<int> as(kRounds), bs(kRounds);
        util::Rng batch_rng(input.seed + 1);
        table.sample_rounds(xs.data(), ys.data(), as.data(), bs.data(),
                            kRounds, batch_rng);
        util::Rng seq_rng(input.seed + 1);
        for (std::size_t i = 0; i < kRounds; ++i) {
          const auto [a, b] = table.sample(xs[i], ys[i], seq_rng);
          if (a != as[i] || b != bs[i]) {
            return CaseResult::fail("batch diverged from sequential at " +
                                    std::to_string(i));
          }
        }
        // Post-call stream states must match too.
        if (batch_rng.next_u64() != seq_rng.next_u64()) {
          return CaseResult::fail("stream state diverged after batch");
        }
        return CaseResult::pass();
      });
  ASSERT_TRUE(r.ok) << r.message;
}

TEST(PropBatchedSampling, ChiSquareAgainstBornDistribution) {
  const auto r = proptest::for_all(
      {.name = "chi-square-draws", .cases = 24},
      [](util::Rng& rng) {
        struct Input {
          double visibility;
          std::uint64_t seed;
        };
        // Visibility bounded away from edge cases where an outcome's
        // probability could underflow an expected count of ~1.
        return Input{0.3 + 0.7 * rng.uniform(), rng.next_u64()};
      },
      [](const auto& input) -> CaseResult {
        const games::QuantumStrategy strategy =
            strategy_for(input.visibility);
        const auto table = correlate::OutcomeTable::from_strategy(strategy);
        util::Rng rng(input.seed);
        constexpr std::size_t kDraws = 8000;
        for (int x = 0; x < 2; ++x) {
          for (int y = 0; y < 2; ++y) {
            std::vector<int> xs(kDraws, x), ys(kDraws, y);
            std::vector<int> as(kDraws), bs(kDraws);
            table.sample_rounds(xs.data(), ys.data(), as.data(), bs.data(),
                                kDraws, rng);
            double counts[4] = {0, 0, 0, 0};
            for (std::size_t i = 0; i < kDraws; ++i) {
              counts[as[i] * 2 + bs[i]] += 1.0;
            }
            double chi2 = 0.0;
            for (int a = 0; a < 2; ++a) {
              for (int b = 0; b < 2; ++b) {
                const double expected =
                    static_cast<double>(kDraws) *
                    strategy.joint_probability(static_cast<std::size_t>(x),
                                               static_cast<std::size_t>(y), a,
                                               b);
                const double diff = counts[a * 2 + b] - expected;
                chi2 += diff * diff / expected;
              }
            }
            // df = 3; 30.66 is the p ~ 1e-6 critical value. The seeds are
            // fixed, so a failure is a real distribution bug, not noise.
            if (chi2 > 30.66) {
              std::ostringstream msg;
              msg << "chi2=" << chi2 << " for xy=" << x << y
                  << " v=" << input.visibility;
              return CaseResult::fail(msg.str());
            }
          }
        }
        return CaseResult::pass();
      });
  ASSERT_TRUE(r.ok) << r.message;
}

TEST(PropBatchedSampling, StorageTableReproducesClosedFormWinRate) {
  const auto r = proptest::for_all(
      {.name = "storage-table-win-rate", .cases = 16},
      [](util::Rng& rng) {
        struct Input {
          double v0;
          double storage_a;
          double storage_b;
          std::uint64_t seed;
        };
        return Input{0.6 + 0.4 * rng.uniform(), rng.uniform(0.0, 2e-3),
                     rng.uniform(0.0, 2e-3), rng.next_u64()};
      },
      [](const auto& input) -> CaseResult {
        constexpr double kT1 = 5e-3;
        constexpr double kT2 = 3e-3;
        const auto table = qnet::outcome_table_after_storage(
            input.v0, input.storage_a, input.storage_b, kT1, kT2);
        const double closed_form = qnet::chsh_win_after_storage(
            input.v0, input.storage_a, input.storage_b, kT1, kT2);
        util::Rng rng(input.seed);
        constexpr std::uint64_t kRounds = 20000;
        const qnet::BatchedRounds played =
            qnet::play_flipped_chsh_rounds(table, kRounds, rng);
        if (played.rounds != kRounds) {
          return CaseResult::fail("round count mismatch");
        }
        const double tol =
            4.0 * util::wilson_halfwidth(
                      static_cast<std::size_t>(played.wins),
                      static_cast<std::size_t>(played.rounds));
        if (std::abs(played.win_fraction() - closed_form) > tol) {
          std::ostringstream msg;
          msg << "win fraction " << played.win_fraction()
              << " vs closed form " << closed_form << " (tol " << tol << ")";
          return CaseResult::fail(msg.str());
        }
        return CaseResult::pass();
      });
  ASSERT_TRUE(r.ok) << r.message;
}

}  // namespace
}  // namespace ftl

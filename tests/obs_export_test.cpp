// Prometheus text-exposition serializer: golden output, grammar
// conformance, and run-report JSON round-tripping.
#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "obs/report.hpp"

namespace ftl::obs {
namespace {

TEST(PrometheusName, SanitisesDottedNames) {
  EXPECT_EQ(prometheus_name("lb.queue_depth"), "ftl_lb_queue_depth");
  EXPECT_EQ(prometheus_name("qnet.pairs.delivered"),
            "ftl_qnet_pairs_delivered");
  EXPECT_EQ(prometheus_name("already_valid:name"), "ftl_already_valid:name");
  EXPECT_EQ(prometheus_name("weird-chars %", ""), "weird_chars__");
}

TEST(PrometheusName, LeadingDigitEscaped) {
  EXPECT_EQ(prometheus_name("9lives", ""), "_9lives");
  // With a prefix the digit is no longer leading.
  EXPECT_EQ(prometheus_name("9lives"), "ftl_9lives");
}

TEST(PrometheusLabelValue, Escapes) {
  EXPECT_EQ(prometheus_label_value(R"(a\b)"), R"(a\\b)");
  EXPECT_EQ(prometheus_label_value("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(prometheus_label_value("two\nlines"), "two\\nlines");
}

Snapshot sample_snapshot() {
  Snapshot snap;
  snap.counters.push_back(
      {"lb.chsh.rounds_won", {{"source", "quantum-chsh(v=1)"}}, 42});
  snap.counters.push_back({"sdp.gram.solves", {}, 7});
  snap.gauges.push_back({"qnet.memory.occupancy", {}, 0.5});
  HistogramSample h;
  h.name = "lb.queue_depth";
  h.lo = 0.0;
  h.hi = 4.0;
  h.counts = {3, 1, 0, 2};
  h.total = 6;
  snap.histograms.push_back(h);
  return snap;
}

TEST(PrometheusText, GoldenOutput) {
  const std::string text = prometheus_text(sample_snapshot());
  const std::string expected =
      "# TYPE ftl_lb_chsh_rounds_won_total counter\n"
      "ftl_lb_chsh_rounds_won_total{source=\"quantum-chsh(v=1)\"} 42\n"
      "# TYPE ftl_sdp_gram_solves_total counter\n"
      "ftl_sdp_gram_solves_total 7\n"
      "# TYPE ftl_qnet_memory_occupancy gauge\n"
      "ftl_qnet_memory_occupancy 0.5\n"
      "# TYPE ftl_lb_queue_depth histogram\n"
      "ftl_lb_queue_depth_bucket{le=\"1\"} 3\n"
      "ftl_lb_queue_depth_bucket{le=\"2\"} 4\n"
      "ftl_lb_queue_depth_bucket{le=\"3\"} 4\n"
      "ftl_lb_queue_depth_bucket{le=\"4\"} 6\n"
      "ftl_lb_queue_depth_bucket{le=\"+Inf\"} 6\n"
      "ftl_lb_queue_depth_sum 10\n"
      "ftl_lb_queue_depth_count 6\n";
  EXPECT_EQ(text, expected);
}

/// Line-level exposition grammar: comments or `name[{labels}] value [ts]`.
void expect_valid_exposition(const std::string& text) {
  static const std::regex comment(R"(^# (TYPE|HELP) [a-zA-Z_:][a-zA-Z0-9_:]*.*$)");
  static const std::regex sample(
      R"(^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (([-+]?[0-9].*)|\+Inf|-Inf|NaN)( -?[0-9]+)?$)");
  std::istringstream in(text);
  std::string line;
  std::size_t n = 0;
  while (std::getline(in, line)) {
    ++n;
    EXPECT_TRUE(std::regex_match(line, comment) ||
                std::regex_match(line, sample))
        << "line " << n << " violates the exposition grammar: " << line;
  }
  EXPECT_GT(n, 0u);
}

TEST(PrometheusText, ParsesUnderExpositionGrammar) {
  expect_valid_exposition(prometheus_text(sample_snapshot()));
}

// --- help registry ----------------------------------------------------------

TEST(PrometheusHelp, EmitsHelpBeforeTypeForRegisteredFamilies) {
  // Keys are dotted names; the emitted family is the sanitised one —
  // including the counter `_total` suffix.
  set_metric_help("sdp.gram.solves", "Gram-matrix SDP solves");
  set_metric_help("lb.queue_depth", "Per-server queue depth");
  const std::string text = prometheus_text(sample_snapshot());
  EXPECT_NE(
      text.find("# HELP ftl_sdp_gram_solves_total Gram-matrix SDP solves\n"
                "# TYPE ftl_sdp_gram_solves_total counter\n"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("# HELP ftl_lb_queue_depth Per-server queue depth\n"
                      "# TYPE ftl_lb_queue_depth histogram\n"),
            std::string::npos)
      << text;
  // Unregistered families stay HELP-less.
  EXPECT_EQ(text.find("# HELP ftl_lb_chsh_rounds_won_total"),
            std::string::npos);
  expect_valid_exposition(text);
  // Unregister and the HELP lines disappear (keeps the golden test above
  // independent of execution order).
  set_metric_help("sdp.gram.solves", "");
  set_metric_help("lb.queue_depth", "");
  EXPECT_EQ(prometheus_text(sample_snapshot()).find("# HELP"),
            std::string::npos);
}

TEST(PrometheusHelp, RegistryLookupAndOverwrite) {
  EXPECT_EQ(metric_help("help.test.nothing"), "");
  set_metric_help("help.test.metric", "first");
  EXPECT_EQ(metric_help("help.test.metric"), "first");
  set_metric_help("help.test.metric", "second");
  EXPECT_EQ(metric_help("help.test.metric"), "second");
  set_metric_help("help.test.metric", "");
  EXPECT_EQ(metric_help("help.test.metric"), "");
}

TEST(PrometheusHelp, EscapesBackslashAndNewline) {
  EXPECT_EQ(prometheus_help_text("a\\b"), "a\\\\b");
  EXPECT_EQ(prometheus_help_text("two\nlines"), "two\\nlines");
  // Quotes are NOT escaped in help text, per the exposition format.
  EXPECT_EQ(prometheus_help_text("say \"hi\""), "say \"hi\"");

  set_metric_help("qnet.memory.occupancy", "frac\\tion of\nslots");
  const std::string text = prometheus_text(sample_snapshot());
  EXPECT_NE(text.find("# HELP ftl_qnet_memory_occupancy frac\\\\tion "
                      "of\\nslots\n"),
            std::string::npos)
      << text;
  expect_valid_exposition(text);
  set_metric_help("qnet.memory.occupancy", "");
}

TEST(PrometheusHelp, HelpEmittedOncePerFamilyAcrossLabelSets) {
  set_metric_help("help.test.multi", "labeled counter");
  Snapshot snap;
  snap.counters.push_back({"help.test.multi", {{"k", "a"}}, 1});
  snap.counters.push_back({"help.test.multi", {{"k", "b"}}, 2});
  const std::string text = prometheus_text(snap);
  std::size_t helps = 0;
  for (std::size_t pos = text.find("# HELP"); pos != std::string::npos;
       pos = text.find("# HELP", pos + 1))
    ++helps;
  EXPECT_EQ(helps, 1u);
  set_metric_help("help.test.multi", "");
}

TEST(PrometheusText, BucketsAreCumulativeAndCapped) {
  const std::string text = prometheus_text(sample_snapshot());
  // Extract all bucket values in order and check monotonicity + final cap.
  std::regex bucket_re("ftl_lb_queue_depth_bucket\\{le=\"[^\"]*\"\\} (\\d+)");
  auto begin = std::sregex_iterator(text.begin(), text.end(), bucket_re);
  std::vector<long> values;
  for (auto it = begin; it != std::sregex_iterator(); ++it)
    values.push_back(std::stol((*it)[1]));
  ASSERT_EQ(values.size(), 5u);
  for (std::size_t i = 1; i < values.size(); ++i)
    EXPECT_LE(values[i - 1], values[i]);
  EXPECT_EQ(values.back(), 6);
}

TEST(PrometheusText, TimestampOption) {
  ExportOptions opts;
  opts.timestamp_ms = 1700000000123;
  const std::string text = prometheus_text(sample_snapshot(), opts);
  EXPECT_NE(text.find("ftl_sdp_gram_solves_total 7 1700000000123\n"),
            std::string::npos);
  expect_valid_exposition(text);
}

TEST(PrometheusText, LiveRegistrySnapshotExports) {
  Registry reg;
  reg.counter("games.xor.evals").inc(3);
  reg.gauge("sim.queue.high_water", {{"engine", "a"}}).set(11.0);
  reg.histogram("sdp.solve_ms", 0.0, 10.0, 4).observe(2.5);
  const std::string text = prometheus_text(reg.snapshot());
  if (kEnabled) {
    EXPECT_NE(text.find("ftl_games_xor_evals_total 3\n"), std::string::npos);
    EXPECT_NE(text.find("ftl_sim_queue_high_water{engine=\"a\"} 11\n"),
              std::string::npos);
    expect_valid_exposition(text);
  } else {
    EXPECT_TRUE(text.empty());
  }
}

// --- run-report round trip ------------------------------------------------

TEST(ParseRunReport, RoundTripsWriterOutput) {
  RunMeta meta;
  meta.name = "bench_unit";
  meta.seed = 99;
  meta.config = "n=5";
  meta.wall_time_s = 1.5;
  meta.cpu_time_s = 1.25;
  const Snapshot snap = sample_snapshot();

  const std::optional<ParsedRunReport> report =
      parse_run_report(run_report_json(snap, meta));
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->name, "bench_unit");
  EXPECT_EQ(report->seed, 99u);
  EXPECT_EQ(report->config, "n=5");
  EXPECT_EQ(report->git_rev, git_rev());
  EXPECT_EQ(report->obs_enabled, kEnabled);
  EXPECT_DOUBLE_EQ(report->wall_time_s, 1.5);
  EXPECT_DOUBLE_EQ(report->cpu_time_s, 1.25);

  ASSERT_EQ(report->metrics.counters.size(), snap.counters.size());
  EXPECT_EQ(report->metrics.counters[0].name, "lb.chsh.rounds_won");
  EXPECT_EQ(report->metrics.counters[0].value, 42u);
  ASSERT_EQ(report->metrics.counters[0].labels.size(), 1u);
  EXPECT_EQ(report->metrics.counters[0].labels[0].first, "source");
  ASSERT_EQ(report->metrics.histograms.size(), 1u);
  EXPECT_EQ(report->metrics.histograms[0].counts,
            (std::vector<std::size_t>{3, 1, 0, 2}));
  EXPECT_EQ(report->metrics.histograms[0].total, 6u);
}

TEST(ParseRunReport, RejectsWrongSchemaAndGarbage) {
  EXPECT_FALSE(parse_run_report("not json").has_value());
  EXPECT_FALSE(parse_run_report("{}").has_value());
  EXPECT_FALSE(
      parse_run_report(R"({"schema": "ftl.obs.run_report/v2"})").has_value());
  // Valid schema but missing metrics.
  EXPECT_FALSE(parse_run_report(
                   R"({"schema": "ftl.obs.run_report/v1",
                       "meta": {"name": "x", "seed": 1, "git_rev": "g",
                                "wall_time_s": 0.1}})")
                   .has_value());
}

TEST(ParseRunReport, CpuTimeOptionalForOlderReports) {
  const std::string text =
      R"({"schema": "ftl.obs.run_report/v1",
          "meta": {"name": "x", "seed": 1, "git_rev": "g",
                   "wall_time_s": 0.5},
          "metrics": {"counters": [], "gauges": [], "histograms": []}})";
  const std::optional<ParsedRunReport> report = parse_run_report(text);
  ASSERT_TRUE(report.has_value());
  EXPECT_DOUBLE_EQ(report->cpu_time_s, 0.0);
}

TEST(SnapshotFromJson, RejectsMalformedShapes) {
  const auto parse_metrics = [](std::string_view text) {
    const std::optional<json::Value> v = json::parse(text);
    return v ? snapshot_from_json(*v) : std::nullopt;
  };
  EXPECT_FALSE(parse_metrics("[]").has_value());
  EXPECT_FALSE(parse_metrics(R"({"counters": []})").has_value());
  EXPECT_FALSE(
      parse_metrics(
          R"({"counters": [{"name": "c"}], "gauges": [], "histograms": []})")
          .has_value());
  EXPECT_TRUE(
      parse_metrics(R"({"counters": [], "gauges": [], "histograms": []})")
          .has_value());
}

}  // namespace
}  // namespace ftl::obs

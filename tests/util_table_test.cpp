// Unit tests for util/table: cell rendering (precision, integer vs double),
// column alignment, row-arity enforcement, and CSV output.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/table.hpp"

namespace {

using ftl::util::Cell;
using ftl::util::Table;

std::vector<std::string> split_lines(const std::string& s) {
  std::vector<std::string> lines;
  std::istringstream in(s);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(UtilTable, RendersDoublesAtConfiguredPrecision) {
  Table t({"name", "value"});
  t.add_row({std::string("pi"), 3.14159265});
  std::ostringstream os4;
  t.print(os4);
  EXPECT_NE(os4.str().find("3.1416"), std::string::npos);

  t.set_precision(2);
  std::ostringstream os2;
  t.print(os2);
  EXPECT_NE(os2.str().find("3.14"), std::string::npos);
  EXPECT_EQ(os2.str().find("3.1416"), std::string::npos);
}

TEST(UtilTable, IntegersRenderWithoutDecimals) {
  Table t({"count"});
  t.add_row({static_cast<long long>(42)});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("42"), std::string::npos);
  EXPECT_EQ(os.str().find("42.0"), std::string::npos);
}

TEST(UtilTable, PrintAlignsAllRowsToTheSameWidth) {
  Table t({"strategy", "throughput"});
  t.add_row({std::string("random"), 0.25});
  t.add_row({std::string("paired-quantum"), 0.853553});
  std::ostringstream os;
  t.print(os);
  const auto lines = split_lines(os.str());
  ASSERT_EQ(lines.size(), 4u);  // header + separator + 2 rows
  for (const auto& line : lines) {
    EXPECT_EQ(line.size(), lines[0].size()) << "misaligned line: " << line;
    EXPECT_EQ(line.front(), '|');
    EXPECT_EQ(line.back(), '|');
  }
}

TEST(UtilTable, NumRowsTracksAddedRows) {
  Table t({"a"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.add_row({1.0});
  t.add_row({2.0});
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(UtilTable, RowArityMismatchIsFatal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({1.0}), "row width must match header width");
}

TEST(UtilTable, CsvMirrorsHeadersAndRows) {
  const std::string path =
      ::testing::TempDir() + "util_table_test_output.csv";
  {
    Table t({"x", "y", "label"});
    t.set_precision(3);
    t.add_row({1.0, 2.5, std::string("first")});
    t.add_row({static_cast<long long>(7), 0.125, std::string("second")});
    t.write_csv(path);
  }
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(f, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "x,y,label");
  EXPECT_EQ(lines[1], "1.000,2.500,first");
  EXPECT_EQ(lines[2], "7,0.125,second");
  std::remove(path.c_str());
}

}  // namespace

#include "qcore/state.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "qcore/gates.hpp"
#include "util/rng.hpp"

namespace ftl::qcore {
namespace {

constexpr double kInvSqrt2 = 0.70710678118654752;

TEST(StateVec, StartsInAllZeros) {
  const StateVec s(3);
  EXPECT_EQ(s.num_qubits(), 3u);
  EXPECT_EQ(s.dim(), 8u);
  EXPECT_NEAR(std::abs(s.amplitude(0)), 1.0, 1e-12);
  for (std::size_t i = 1; i < 8; ++i) {
    EXPECT_NEAR(std::abs(s.amplitude(i)), 0.0, 1e-12);
  }
}

TEST(StateVec, HadamardCreatesUniformSuperposition) {
  StateVec s(1);
  s.apply1(gates::H(), 0);
  EXPECT_NEAR(s.amplitude(0).real(), kInvSqrt2, 1e-12);
  EXPECT_NEAR(s.amplitude(1).real(), kInvSqrt2, 1e-12);
}

TEST(StateVec, QubitOrderingConvention) {
  // Apply X to qubit 0 of |00>: should give |10>, i.e. basis index 2.
  StateVec s(2);
  s.apply1(gates::X(), 0);
  EXPECT_NEAR(std::abs(s.amplitude(2)), 1.0, 1e-12);
  // X on qubit 1 of |00> gives |01> = index 1.
  StateVec t(2);
  t.apply1(gates::X(), 1);
  EXPECT_NEAR(std::abs(t.amplitude(1)), 1.0, 1e-12);
}

TEST(StateVec, BellPairViaCircuitMatchesFactory) {
  StateVec s(2);
  s.apply1(gates::H(), 0);
  s.apply2(gates::CNOT(), 0, 1);
  EXPECT_TRUE(s.approx_equal(StateVec::bell_phi_plus(), 1e-12));
}

TEST(StateVec, GhzViaCircuit) {
  StateVec s(3);
  s.apply1(gates::H(), 0);
  s.apply2(gates::CNOT(), 0, 1);
  s.apply2(gates::CNOT(), 1, 2);
  EXPECT_TRUE(s.approx_equal(StateVec::ghz(3), 1e-12));
}

TEST(StateVec, Apply2OnNonAdjacentQubits) {
  // CNOT with control qubit 0 and target qubit 2 in a 3-qubit register.
  StateVec s(3);
  s.apply1(gates::X(), 0);        // |100>
  s.apply2(gates::CNOT(), 0, 2);  // -> |101>
  EXPECT_NEAR(std::abs(s.amplitude(0b101)), 1.0, 1e-12);
}

TEST(StateVec, Apply2ReversedQubitOrder) {
  // CNOT with control qubit 1, target qubit 0.
  StateVec s(2);
  s.apply1(gates::X(), 1);        // |01>
  s.apply2(gates::CNOT(), 1, 0);  // control=qubit1 is 1 -> flip qubit0
  EXPECT_NEAR(std::abs(s.amplitude(0b11)), 1.0, 1e-12);
}

TEST(StateVec, UnitaryPreservesNorm) {
  util::Rng rng(1);
  StateVec s(4);
  for (int i = 0; i < 50; ++i) {
    s.apply1(gates::Ry(rng.uniform(0, 3.0)), rng.uniform_int(4));
    s.apply1(gates::Rz(rng.uniform(0, 3.0)), rng.uniform_int(4));
  }
  EXPECT_NEAR(s.norm(), 1.0, 1e-10);
}

TEST(StateVec, ProbabilitiesSumToOne) {
  StateVec s = StateVec::ghz(4);
  s.apply1(gates::H(), 2);
  double total = 0.0;
  for (double p : s.probabilities()) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(StateVec, ComputationalMeasurementStatistics) {
  util::Rng rng(2);
  int ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    StateVec s(1);
    s.apply1(gates::H(), 0);
    ones += s.measure_computational(0, rng);
  }
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.5, 0.01);
}

TEST(StateVec, MeasurementCollapsesState) {
  util::Rng rng(3);
  StateVec s(1);
  s.apply1(gates::H(), 0);
  const int first = s.measure_computational(0, rng);
  // Re-measuring must give the same outcome forever.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(s.measure_computational(0, rng), first);
  }
}

TEST(StateVec, BellPairPerfectCorrelationInComputationalBasis) {
  util::Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    StateVec s = StateVec::bell_phi_plus();
    const int a = s.measure_computational(0, rng);
    const int b = s.measure_computational(1, rng);
    EXPECT_EQ(a, b);
  }
}

TEST(StateVec, PaperSkewedBasisExample) {
  // §2's example: after the first server measures 0 in the computational
  // basis, the second measuring in {1/sqrt3 |0> + sqrt2/sqrt3 |1>, ...}
  // yields 0 with probability 1/3.
  const double c = 1.0 / std::sqrt(3.0);
  const double s2 = std::sqrt(2.0) / std::sqrt(3.0);
  const CMat skew{{Cx{c, 0}, Cx{s2, 0}}, {Cx{s2, 0}, Cx{-c, 0}}};
  ASSERT_TRUE(skew.is_unitary(1e-12));

  util::Rng rng(5);
  int n0 = 0;
  int hits = 0;
  for (int i = 0; i < 40000; ++i) {
    StateVec st = StateVec::bell_phi_plus();
    if (st.measure_computational(0, rng) == 0) {
      ++n0;
      if (st.measure(1, skew, rng) == 0) ++hits;
    }
  }
  ASSERT_GT(n0, 10000);
  EXPECT_NEAR(static_cast<double>(hits) / n0, 1.0 / 3.0, 0.015);
}

TEST(StateVec, DeterministicOutcomeWhenAligned) {
  // §2: measuring (|0> + |1>)/sqrt2 in the {+,-} basis always yields 0.
  util::Rng rng(6);
  const CMat hbasis = gates::H();  // columns are |+>, |->
  for (int i = 0; i < 50; ++i) {
    StateVec s(1);
    s.apply1(gates::H(), 0);
    EXPECT_EQ(s.measure(0, hbasis, rng), 0);
  }
}

TEST(StateVec, OutcomeProbabilityMatchesMeasureFrequency) {
  const double theta = 0.6;
  StateVec s(1);
  s.apply1(gates::Ry(2.0 * 0.35), 0);  // some state
  const CMat basis = gates::real_basis(theta);
  const double p1 = s.outcome_probability(0, basis, 1);
  util::Rng rng(7);
  int ones = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    StateVec copy = s;
    ones += copy.measure(0, basis, rng);
  }
  EXPECT_NEAR(static_cast<double>(ones) / n, p1, 0.01);
}

TEST(StateVec, OutcomeProbabilitiesSumToOne) {
  StateVec s = StateVec::ghz(3);
  const CMat basis = gates::real_basis(1.1);
  for (std::size_t q = 0; q < 3; ++q) {
    EXPECT_NEAR(s.outcome_probability(q, basis, 0) +
                    s.outcome_probability(q, basis, 1),
                1.0, 1e-12);
  }
}

TEST(StateVec, MeasureInBasisLeavesCollapsedBasisState) {
  // After measuring outcome o in basis B, the qubit is exactly |phi_o>:
  // re-measuring in B gives o with certainty.
  util::Rng rng(8);
  const CMat basis = gates::real_basis(0.9);
  for (int i = 0; i < 50; ++i) {
    StateVec s = StateVec::bell_phi_plus();
    const int o = s.measure(0, basis, rng);
    EXPECT_NEAR(s.outcome_probability(0, basis, o), 1.0, 1e-10);
  }
}

TEST(StateVec, GhzMarginalIsUniform) {
  const StateVec g = StateVec::ghz(5);
  for (std::size_t q = 0; q < 5; ++q) {
    EXPECT_NEAR(g.outcome_probability(q, CMat::identity(2), 1), 0.5, 1e-12);
  }
}

TEST(StateVec, FromAmplitudesRejectsUnnormalised) {
  EXPECT_DEATH(StateVec::from_amplitudes({Cx{1, 0}, Cx{1, 0}}), "normalised");
}

TEST(StateVec, FromAmplitudesRejectsNonPowerOfTwo) {
  EXPECT_DEATH(StateVec::from_amplitudes({Cx{1, 0}, Cx{0, 0}, Cx{0, 0}}),
               "power of two");
}

TEST(StateVec, ToDensityIsPureProjector) {
  const StateVec s = StateVec::bell_phi_plus();
  const CMat rho = s.to_density();
  EXPECT_NEAR(rho.trace().real(), 1.0, 1e-12);
  EXPECT_TRUE((rho * rho).approx_equal(rho, 1e-10));  // idempotent: pure
}

}  // namespace
}  // namespace ftl::qcore

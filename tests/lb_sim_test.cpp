#include "lb/simulator.hpp"

#include <gtest/gtest.h>

#include "correlate/decision_source.hpp"

namespace ftl::lb {
namespace {

LbConfig small_config() {
  LbConfig cfg;
  cfg.num_balancers = 20;
  cfg.num_servers = 20;
  cfg.warmup_steps = 200;
  cfg.measure_steps = 800;
  cfg.seed = 42;
  return cfg;
}

TEST(LbSim, ConservationOfRequests) {
  LbConfig cfg = small_config();
  RandomStrategy strat;
  const LbResult r = run_lb_sim(cfg, strat);
  // Everything that arrived during measurement was served or is queued.
  EXPECT_EQ(r.arrived, r.served + r.still_queued);
  EXPECT_EQ(r.arrived, static_cast<long long>(cfg.num_balancers) *
                           cfg.measure_steps);
}

TEST(LbSim, LowLoadHasTinyQueues) {
  LbConfig cfg = small_config();
  cfg.num_balancers = 10;
  cfg.num_servers = 40;  // load 0.25
  RandomStrategy strat;
  const LbResult r = run_lb_sim(cfg, strat);
  EXPECT_LT(r.mean_queue_length, 0.5);
  EXPECT_LT(r.mean_delay, 1.5);
}

TEST(LbSim, OverloadGrowsQueues) {
  LbConfig cfg = small_config();
  cfg.num_balancers = 60;
  cfg.num_servers = 20;  // load 3.0: far beyond capacity
  RandomStrategy strat;
  const LbResult r = run_lb_sim(cfg, strat);
  EXPECT_GT(r.mean_queue_length, 10.0);
}

TEST(LbSim, ThroughputBoundedByCapacity) {
  LbConfig cfg = small_config();
  RandomStrategy strat;
  const LbResult r = run_lb_sim(cfg, strat);
  // A server can serve at most 2 requests per step.
  EXPECT_LE(r.throughput, 2.0 + 1e-9);
  EXPECT_GT(r.throughput, 0.0);
}

TEST(LbSim, DeterministicForSeed) {
  LbConfig cfg = small_config();
  RandomStrategy s1;
  RandomStrategy s2;
  const LbResult a = run_lb_sim(cfg, s1);
  const LbResult b = run_lb_sim(cfg, s2);
  EXPECT_DOUBLE_EQ(a.mean_queue_length, b.mean_queue_length);
  EXPECT_EQ(a.served, b.served);
}

TEST(LbSim, SeedChangesRealisation) {
  LbConfig cfg = small_config();
  RandomStrategy s1;
  const LbResult a = run_lb_sim(cfg, s1);
  cfg.seed = 43;
  RandomStrategy s2;
  const LbResult b = run_lb_sim(cfg, s2);
  EXPECT_NE(a.mean_queue_length, b.mean_queue_length);
}

TEST(LbSim, PureCWorkloadBenefitsFromPairService) {
  // With only type-C tasks, capacity is 2/step; load 1.5 is stable.
  LbConfig cfg = small_config();
  cfg.num_balancers = 30;
  cfg.num_servers = 20;
  cfg.p_colocate = 1.0;
  RandomStrategy strat;
  const LbResult r = run_lb_sim(cfg, strat);
  EXPECT_LT(r.mean_queue_length, 5.0);
}

TEST(LbSim, PureEWorkloadSaturatesAtLoadOne) {
  LbConfig cfg = small_config();
  cfg.num_balancers = 30;
  cfg.num_servers = 20;  // load 1.5 of E-only: unstable
  cfg.p_colocate = 0.0;
  RandomStrategy strat;
  const LbResult r = run_lb_sim(cfg, strat);
  EXPECT_GT(r.mean_queue_length, 20.0);
}

TEST(LbSim, QuantumBeatsClassicalAtModerateLoad) {
  // The Figure-4 claim at a single load point, with tight seed control.
  LbConfig cfg;
  cfg.num_balancers = 100;
  cfg.num_servers = 72;  // load ~1.39, near the classical knee
  cfg.warmup_steps = 500;
  cfg.measure_steps = 3000;
  cfg.seed = 7;

  PairedStrategy classical(std::make_unique<correlate::ClassicalChshSource>());
  PairedStrategy quantum(std::make_unique<correlate::ChshSource>(1.0));
  const LbResult rc = run_lb_sim(cfg, classical);
  const LbResult rq = run_lb_sim(cfg, quantum);
  EXPECT_LT(rq.mean_queue_length, rc.mean_queue_length);
}

TEST(LbSim, OmniscientIsBestPairedStrategy) {
  LbConfig cfg;
  cfg.num_balancers = 60;
  cfg.num_servers = 44;
  cfg.warmup_steps = 300;
  cfg.measure_steps = 2000;
  cfg.seed = 11;

  PairedStrategy quantum(std::make_unique<correlate::ChshSource>(1.0));
  PairedStrategy omni(std::make_unique<correlate::OmniscientOracleSource>());
  const LbResult rq = run_lb_sim(cfg, quantum);
  const LbResult ro = run_lb_sim(cfg, omni);
  EXPECT_LE(ro.mean_queue_length, rq.mean_queue_length + 0.05);
}

TEST(LbSim, DelayMetricsConsistent) {
  LbConfig cfg = small_config();
  RandomStrategy strat;
  const LbResult r = run_lb_sim(cfg, strat);
  EXPECT_GE(r.p95_delay, r.mean_delay - 1e-9);
  EXPECT_GE(r.mean_delay, 0.0);
  // Mean delay is a mixture of the two per-type means.
  EXPECT_GE(r.mean_delay, std::min(r.mean_delay_c, r.mean_delay_e) - 1e-9);
  EXPECT_LE(r.mean_delay, std::max(r.mean_delay_c, r.mean_delay_e) + 1e-9);
}

TEST(LbSim, ServicePolicyVariantsRun) {
  for (auto policy : {ServicePolicy::kPaperCFirst, ServicePolicy::kFifoPair,
                      ServicePolicy::kEFirst}) {
    LbConfig cfg = small_config();
    cfg.policy = policy;
    RandomStrategy strat;
    const LbResult r = run_lb_sim(cfg, strat);
    EXPECT_EQ(r.arrived, r.served + r.still_queued) << to_string(policy);
  }
}

TEST(LbSim, BatchSizeMultipliesArrivals) {
  LbConfig cfg = small_config();
  cfg.batch_size = 3;
  LocalBatchingStrategy strat;
  const LbResult r = run_lb_sim(cfg, strat);
  EXPECT_EQ(r.arrived, static_cast<long long>(cfg.num_balancers) * 3 *
                           cfg.measure_steps);
}

TEST(LbSim, LoadHelper) {
  LbConfig cfg;
  cfg.num_balancers = 100;
  cfg.num_servers = 50;
  EXPECT_DOUBLE_EQ(cfg.load(), 2.0);
  cfg.batch_size = 2;
  EXPECT_DOUBLE_EQ(cfg.load(), 4.0);
}

}  // namespace
}  // namespace ftl::lb

#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

#include <fstream>
#include <sstream>

namespace ftl::util {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.sem(), 0.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator acc;
  acc.add(3.5);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.5);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 3.5);
  EXPECT_DOUBLE_EQ(acc.max(), 3.5);
}

TEST(Accumulator, KnownMeanAndVariance) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations is 32.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_NEAR(acc.sum(), 40.0, 1e-9);
}

TEST(Accumulator, NumericallyStableForLargeOffset) {
  Accumulator acc;
  const double offset = 1e9;
  for (int i = 0; i < 1000; ++i) acc.add(offset + (i % 2 == 0 ? 1.0 : -1.0));
  EXPECT_NEAR(acc.mean(), offset, 1e-3);
  EXPECT_NEAR(acc.variance(), 1.001, 0.01);
}

TEST(Accumulator, MergeMatchesSequential) {
  Rng rng(5);
  Accumulator whole;
  Accumulator a;
  Accumulator b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal() * 3.0 + 1.0;
    whole.add(x);
    (i < 400 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a;
  a.add(1.0);
  a.add(2.0);
  Accumulator empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  Accumulator target;
  target.merge(a);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 1.5);
}

TEST(Accumulator, Ci95ShrinksWithSamples) {
  Rng rng(6);
  Accumulator small;
  Accumulator large;
  for (int i = 0; i < 100; ++i) small.add(rng.normal());
  for (int i = 0; i < 10000; ++i) large.add(rng.normal());
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 25.0);
  EXPECT_NEAR(percentile(xs, 1.0 / 3.0), 20.0, 1e-9);
}

TEST(Percentile, UnsortedInput) {
  std::vector<double> xs{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 3.0);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.25), 7.0);
}

TEST(MeanOf, Basic) {
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
}

TEST(Wilson, ZeroTrials) { EXPECT_DOUBLE_EQ(wilson_halfwidth(0, 0), 0.0); }

TEST(Wilson, ShrinksWithTrials) {
  EXPECT_GT(wilson_halfwidth(50, 100), wilson_halfwidth(5000, 10000));
}

TEST(Wilson, WidestAtHalf) {
  EXPECT_GT(wilson_halfwidth(500, 1000), wilson_halfwidth(10, 1000));
}

TEST(Histogram, CountsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.99);  // bin 9
  h.add(-1.0);  // underflow -> bin 0
  h.add(25.0);  // overflow -> bin 9
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[9], 2u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
}

TEST(Histogram, QuantileApproximation) {
  Histogram h(0.0, 100.0, 100);
  Rng rng(9);
  for (int i = 0; i < 100000; ++i) h.add(rng.uniform(0.0, 100.0));
  EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.quantile(0.95), 95.0, 2.0);
}

TEST(Histogram, AsciiRendering) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string art = h.ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find('\n'), std::string::npos);
}

TEST(Table, AlignedPrintAndCsv) {
  Table t({"name", "value"});
  t.add_row({std::string("alpha"), 1.5});
  t.add_row({std::string("b"), 22.125});
  EXPECT_EQ(t.num_rows(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22.125"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(s.find("|--"), std::string::npos);
}

TEST(Table, PrecisionControl) {
  Table t({"v"});
  t.set_precision(2);
  t.add_row({3.14159});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("3.14"), std::string::npos);
  EXPECT_EQ(os.str().find("3.142"), std::string::npos);
}

TEST(Table, CsvRoundTrip) {
  Table t({"a", "b"});
  t.add_row({std::string("x"), 1.5});
  t.add_row({std::string("y"), 2.25});
  const std::string path = ::testing::TempDir() + "/ftl_table_test.csv";
  t.write_csv(path);
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "a,b");
  std::getline(f, line);
  EXPECT_EQ(line, "x,1.5000");
  std::getline(f, line);
  EXPECT_EQ(line, "y,2.2500");
}

TEST(Table, IntegerCells) {
  Table t({"n"});
  t.add_row({static_cast<long long>(42)});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("42"), std::string::npos);
}

}  // namespace
}  // namespace ftl::util

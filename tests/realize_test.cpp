#include "games/realize.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "games/affinity.hpp"
#include "qcore/gates.hpp"
#include "util/rng.hpp"

namespace ftl {
namespace {

using qcore::Cx;
using qcore::PauliSum;
using qcore::PauliTerm;
using qcore::StateVec;

// ---- PauliSum ---------------------------------------------------------------

TEST(PauliSum, SingleXActsLikeGate) {
  StateVec psi(2);
  psi.apply1(qcore::gates::Ry(0.7), 0);
  psi.apply1(qcore::gates::Ry(1.3), 1);
  StateVec expect = psi;
  expect.apply1(qcore::gates::X(), 1);
  const PauliSum op({PauliTerm{1.0, "IX"}});
  const auto out = op.apply(psi);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(std::abs(out[i] - expect.amplitude(i)), 0.0, 1e-12);
  }
}

TEST(PauliSum, YPhasesAreCorrect) {
  StateVec psi(1);  // |0>
  const PauliSum y({PauliTerm{1.0, "Y"}});
  const auto out = y.apply(psi);
  EXPECT_NEAR(std::abs(out[1] - Cx{0.0, 1.0}), 0.0, 1e-12);  // Y|0> = i|1>
  StateVec one(1);
  one.apply1(qcore::gates::X(), 0);
  const auto out1 = y.apply(one);
  EXPECT_NEAR(std::abs(out1[0] - Cx{0.0, -1.0}), 0.0, 1e-12);
}

TEST(PauliSum, ZzExpectationOnBell) {
  const auto bell = StateVec::bell_phi_plus();
  EXPECT_NEAR(PauliSum({PauliTerm{1.0, "ZZ"}}).expectation(bell), 1.0, 1e-12);
  EXPECT_NEAR(PauliSum({PauliTerm{1.0, "XX"}}).expectation(bell), 1.0, 1e-12);
  EXPECT_NEAR(PauliSum({PauliTerm{1.0, "YY"}}).expectation(bell), -1.0,
              1e-12);
  EXPECT_NEAR(PauliSum({PauliTerm{1.0, "ZI"}}).expectation(bell), 0.0, 1e-12);
}

TEST(PauliSum, SumOfAnticommutingStringsIsInvolution) {
  // (a X + b Z)^2 = (a^2 + b^2) I.
  const double a = 0.6;
  const double b = 0.8;
  const PauliSum op({PauliTerm{a, "XI"}, PauliTerm{b, "ZI"}});
  StateVec psi = StateVec::bell_phi_plus();
  EXPECT_TRUE(op.squares_to_identity_on(psi));
}

TEST(PauliSum, NonInvolutionDetected) {
  const PauliSum op({PauliTerm{1.0, "XI"}, PauliTerm{1.0, "ZI"}});  // norm 2
  StateVec psi = StateVec::bell_phi_plus();
  EXPECT_FALSE(op.squares_to_identity_on(psi));
}

TEST(PauliSum, MeasurementStatisticsMatchExpectation) {
  const PauliSum op({PauliTerm{0.6, "XI"}, PauliTerm{0.8, "ZI"}});
  StateVec psi(2);
  psi.apply1(qcore::gates::Ry(0.9), 0);
  const double e = op.expectation(psi);
  util::Rng rng(5);
  int plus = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    StateVec copy = psi;
    if (op.measure(copy, rng) > 0) ++plus;
  }
  EXPECT_NEAR(static_cast<double>(plus) / n, 0.5 * (1.0 + e), 0.01);
}

TEST(PauliSum, MeasurementCollapsesRepeatably) {
  const PauliSum op({PauliTerm{1.0, "XX"}});
  util::Rng rng(6);
  StateVec psi = StateVec::bell_phi_plus();
  const int first = op.measure(psi, rng);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(op.measure(psi, rng), first);
}

// ---- Tsirelson realization --------------------------------------------------

TEST(Realize, ChshReducesToOneQubitPerParty) {
  const auto game = games::XorGame::chsh();
  const auto strat = games::realize_optimal_strategy(game);
  EXPECT_EQ(strat.qubits_per_party(), 1u);
  EXPECT_NEAR(strat.value(), 0.5 + 0.25 * std::sqrt(2.0), 1e-6);
}

TEST(Realize, CorrelatorsMatchVectorInnerProducts) {
  const auto game = games::XorGame::chsh();
  const auto vectors = game.quantum_bias();
  const games::RealizedXorStrategy strat(game, vectors);
  for (std::size_t x = 0; x < 2; ++x) {
    for (std::size_t y = 0; y < 2; ++y) {
      double dot = 0.0;
      for (std::size_t k = 0; k < vectors.alice[x].size(); ++k) {
        dot += vectors.alice[x][k] * vectors.bob[y][k];
      }
      EXPECT_NEAR(strat.correlator(x, y), dot, 1e-9)
          << "x=" << x << " y=" << y;
    }
  }
}

TEST(Realize, PentagonGameAchievesSdpValue) {
  games::AffinityGraph g(5);
  for (std::size_t i = 0; i < 5; ++i) {
    g.set(i, (i + 1) % 5, games::Affinity::kExclusive);
  }
  const auto game = games::XorGame::from_affinity(g);
  const auto vectors = game.quantum_bias();
  const games::RealizedXorStrategy strat(game, vectors);
  EXPECT_NEAR(strat.value(), (1.0 + vectors.bias) / 2.0, 1e-8);
  EXPECT_GT(strat.value(), game.classical_value() + 0.01);
  EXPECT_LE(strat.qubits_per_party(), 3u);
}

TEST(Realize, SampledPlayMatchesExactValue) {
  const auto game = games::XorGame::chsh();
  const auto strat = games::realize_optimal_strategy(game);
  util::Rng rng(7);
  int wins = 0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    const std::size_t x = rng.uniform_int(2);
    const std::size_t y = rng.uniform_int(2);
    const auto [a, b] = strat.play(x, y, rng);
    if ((a ^ b) == game.f(x, y)) ++wins;
  }
  EXPECT_NEAR(static_cast<double>(wins) / n, strat.value(), 0.01);
}

TEST(Realize, MarginalsAreUniform) {
  const auto game = games::XorGame::chsh();
  const auto strat = games::realize_optimal_strategy(game);
  util::Rng rng(8);
  int ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    ones += strat.play(1, 0, rng).first;
  }
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.5, 0.015);
}

TEST(Realize, RandomAffinityGamesRealizeTheirSdpValues) {
  util::Rng rng(9);
  for (int trial = 0; trial < 3; ++trial) {
    const auto g = games::AffinityGraph::random(4, 0.5, rng);
    const auto game = games::XorGame::from_affinity(g);
    sdp::GramOptions opts;
    opts.restarts = 8;
    const auto vectors = game.quantum_bias(opts);
    const games::RealizedXorStrategy strat(game, vectors);
    EXPECT_NEAR(strat.value(), (1.0 + vectors.bias) / 2.0, 1e-7)
        << "trial " << trial;
  }
}

TEST(Realize, ObservablesSquareToIdentity) {
  const auto game = games::XorGame::chsh();
  const auto strat = games::realize_optimal_strategy(game);
  const auto phi = strat.shared_state();
  for (std::size_t x = 0; x < 2; ++x) {
    EXPECT_TRUE(strat.alice_observable(x).squares_to_identity_on(phi));
    EXPECT_TRUE(strat.bob_observable(x).squares_to_identity_on(phi));
  }
}

}  // namespace
}  // namespace ftl

// The simulator against closed-form queueing theory — no free parameters.
#include "lb/analysis.hpp"

#include <gtest/gtest.h>

#include "lb/simulator.hpp"

namespace ftl::lb {
namespace {

TEST(Moments, BinomialAndPoissonAgreeInTheLimit) {
  const auto b = ArrivalMoments::from_binomial(10000, 0.5 / 10000.0 * 10.0);
  const auto p = ArrivalMoments::from_poisson(b.mean);
  EXPECT_NEAR(b.mean, p.mean, 1e-12);
  EXPECT_NEAR(b.second_moment, p.second_moment, 1e-2);
}

TEST(UnitServiceQueue, ZeroLoadIsEmpty) {
  EXPECT_NEAR(unit_service_mean_queue(ArrivalMoments::from_poisson(0.0)), 0.0,
              1e-12);
}

TEST(UnitServiceQueue, PoissonClosedForm) {
  // E[Q] = lambda^2 / (2 (1 - lambda)).
  for (double lam : {0.2, 0.5, 0.8}) {
    EXPECT_NEAR(unit_service_mean_queue(ArrivalMoments::from_poisson(lam)),
                lam * lam / (2.0 * (1.0 - lam)), 1e-12);
  }
}

TEST(UnitServiceQueue, DivergesTowardLoadOne)
{
  EXPECT_GT(unit_service_mean_queue(ArrivalMoments::from_poisson(0.99)), 40.0);
  EXPECT_DEATH(
      (void)unit_service_mean_queue(ArrivalMoments::from_poisson(1.0)),
      "unstable");
}

TEST(UnitServiceQueue, SimulatorMatchesTheoryPureE) {
  // Pure type-E workload under random assignment: every server is exactly
  // the analysed queue with Binomial(N, 1/M) arrivals.
  for (const auto& [n, m] : {std::pair<std::size_t, std::size_t>{40, 80},
                             {60, 80}, {72, 90}}) {
    LbConfig cfg;
    cfg.num_balancers = n;
    cfg.num_servers = m;
    cfg.p_colocate = 0.0;
    cfg.warmup_steps = 3000;
    cfg.measure_steps = 30000;
    cfg.seed = 12;
    RandomStrategy strat;
    const LbResult r = run_lb_sim(cfg, strat);
    const double theory = unit_service_mean_queue(
        ArrivalMoments::from_binomial(n, 1.0 / static_cast<double>(m)));
    EXPECT_NEAR(r.mean_queue_length, theory, 0.05 + 0.1 * theory)
        << "N=" << n << " M=" << m;
  }
}

TEST(UnitServiceQueue, LittlesLawHoldsInSimulation) {
  // W = Q / lambda, with Q the time-average queue (excluding in-service)
  // and W the mean delay. Our delay counts whole steps from arrival to
  // service completion, so W_measured ~ Q/lambda within a step.
  LbConfig cfg;
  cfg.num_balancers = 60;
  cfg.num_servers = 80;
  cfg.p_colocate = 0.0;
  cfg.warmup_steps = 3000;
  cfg.measure_steps = 30000;
  cfg.seed = 23;
  RandomStrategy strat;
  const LbResult r = run_lb_sim(cfg, strat);
  const double lambda = cfg.load();
  EXPECT_NEAR(r.mean_delay, r.mean_queue_length / lambda, 1.0);
}

TEST(StabilityBounds, BracketTheMeasuredKnee) {
  // p_colocate = 0.5: theory says the random-assignment knee lies in
  // (1, 4/3). The simulator must be stable below the lower bound and
  // blown up above the upper bound.
  const StabilityBounds b = paper_policy_stability_bounds(0.5);
  EXPECT_DOUBLE_EQ(b.lower, 1.0);
  EXPECT_NEAR(b.upper, 4.0 / 3.0, 1e-12);

  auto queue_at = [](std::size_t servers) {
    LbConfig cfg;
    cfg.num_balancers = 100;
    cfg.num_servers = servers;
    cfg.warmup_steps = 1000;
    cfg.measure_steps = 4000;
    cfg.seed = 4;
    RandomStrategy strat;
    return run_lb_sim(cfg, strat).mean_queue_length;
  };
  EXPECT_LT(queue_at(112), 2.0);   // load 0.89 < lower bound: stable
  EXPECT_GT(queue_at(66), 100.0);  // load 1.52 > upper bound: divergent
}

TEST(StabilityBounds, PureWorkloadsCollapseTheInterval) {
  const StabilityBounds all_e = paper_policy_stability_bounds(0.0);
  EXPECT_DOUBLE_EQ(all_e.lower, 1.0);
  EXPECT_DOUBLE_EQ(all_e.upper, 1.0);
  const StabilityBounds all_c = paper_policy_stability_bounds(1.0);
  EXPECT_DOUBLE_EQ(all_c.upper, 2.0);
}

TEST(UnitServiceWait, ConsistentWithQueue) {
  const auto a = ArrivalMoments::from_poisson(0.6);
  EXPECT_NEAR(unit_service_mean_wait(a),
              unit_service_mean_queue(a) / 0.6, 1e-12);
}

}  // namespace
}  // namespace ftl::lb

#include "core/coordinator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "lb/simulator.hpp"

namespace ftl::core {
namespace {

double run_rounds(CorrelatedPair& pair, int rounds, util::Rng& rng) {
  for (int i = 0; i < rounds; ++i) {
    const int x = rng.bernoulli(0.5) ? 1 : 0;
    const int y = rng.bernoulli(0.5) ? 1 : 0;
    // Randomise call order: the physics must not care.
    if (rng.bernoulli(0.5)) {
      (void)pair.decide(0, x);
      (void)pair.decide(1, y);
    } else {
      (void)pair.decide(1, y);
      (void)pair.decide(0, x);
    }
  }
  return static_cast<double>(pair.stats().wins) /
         static_cast<double>(pair.stats().rounds);
}

TEST(CorrelatedPair, QuantumWinRate) {
  PairConfig cfg;
  cfg.backend = Backend::kQuantum;
  cfg.seed = 1;
  CorrelatedPair pair(cfg);
  util::Rng rng(2);
  const double win = run_rounds(pair, 20000, rng);
  EXPECT_NEAR(win, std::cos(M_PI / 8.0) * std::cos(M_PI / 8.0), 0.01);
  EXPECT_EQ(pair.stats().fallback_rounds, 0u);
}

TEST(CorrelatedPair, ClassicalWinRate) {
  PairConfig cfg;
  cfg.backend = Backend::kClassicalShared;
  cfg.seed = 3;
  CorrelatedPair pair(cfg);
  util::Rng rng(4);
  EXPECT_NEAR(run_rounds(pair, 20000, rng), 0.75, 0.01);
}

TEST(CorrelatedPair, IndependentWinRate) {
  PairConfig cfg;
  cfg.backend = Backend::kIndependent;
  cfg.seed = 5;
  CorrelatedPair pair(cfg);
  util::Rng rng(6);
  EXPECT_NEAR(run_rounds(pair, 20000, rng), 0.5, 0.01);
}

TEST(CorrelatedPair, OmniscientAlwaysWins) {
  PairConfig cfg;
  cfg.backend = Backend::kOmniscient;
  cfg.seed = 7;
  CorrelatedPair pair(cfg);
  util::Rng rng(8);
  EXPECT_NEAR(run_rounds(pair, 5000, rng), 1.0, 1e-12);
}

TEST(CorrelatedPair, NoisyVisibilityInterpolates) {
  PairConfig cfg;
  cfg.backend = Backend::kQuantum;
  cfg.visibility = 0.8;
  cfg.seed = 9;
  CorrelatedPair pair(cfg);
  util::Rng rng(10);
  EXPECT_NEAR(run_rounds(pair, 30000, rng),
              0.5 * (1.0 + 0.8 / std::sqrt(2.0)), 0.01);
}

TEST(CorrelatedPair, DoubleDecideAborts) {
  PairConfig cfg;
  cfg.seed = 11;
  CorrelatedPair pair(cfg);
  (void)pair.decide(0, 1);
  EXPECT_DEATH((void)pair.decide(0, 0), "already decided");
}

TEST(CorrelatedPair, ExpectedWinProbability) {
  PairConfig cfg;
  cfg.backend = Backend::kQuantum;
  cfg.visibility = 1.0;
  CorrelatedPair pair(cfg);
  EXPECT_NEAR(pair.expected_win_probability(),
              std::cos(M_PI / 8.0) * std::cos(M_PI / 8.0), 1e-10);
  cfg.backend = Backend::kClassicalShared;
  EXPECT_NEAR(CorrelatedPair(cfg).expected_win_probability(), 0.75, 1e-12);
}

TEST(CorrelatedPair, SupplyRationingCausesFallbacks) {
  PairConfig cfg;
  cfg.backend = Backend::kQuantum;
  cfg.visibility = 0.98;
  qnet::QnetConfig supply;
  supply.pair_rate_hz = 5e3;  // scarce vs 1e4 rounds/s
  cfg.supply = supply;
  cfg.round_rate_hz = 1e4;
  cfg.seed = 13;
  CorrelatedPair pair(cfg);
  util::Rng rng(14);
  const double win = run_rounds(pair, 20000, rng);
  EXPECT_GT(pair.stats().fallback_rounds, 1000u);
  EXPECT_GT(pair.stats().quantum_rounds, 1000u);
  // Win rate between pure-classical and pure-quantum.
  EXPECT_GT(win, 0.75 - 0.01);
  EXPECT_LT(win, 0.854);
}

TEST(CorrelatedPair, AbundantSupplyMostlyQuantum) {
  PairConfig cfg;
  cfg.backend = Backend::kQuantum;
  cfg.visibility = 0.98;
  qnet::QnetConfig supply;
  supply.pair_rate_hz = 1e6;
  cfg.supply = supply;
  cfg.round_rate_hz = 1e4;
  cfg.seed = 15;
  CorrelatedPair pair(cfg);
  util::Rng rng(16);
  (void)run_rounds(pair, 5000, rng);
  const auto& s = pair.stats();
  EXPECT_GT(static_cast<double>(s.quantum_rounds) /
                static_cast<double>(s.rounds),
            0.95);
}

TEST(Coordinator, EndpointsAreWiredToSamePair) {
  Coordinator coord(PairConfig{});
  auto [a, b] = coord.make_pair();
  (void)a.decide(1);
  (void)b.decide(1);
  EXPECT_EQ(coord.aggregate_stats().rounds, 1u);
}

TEST(Coordinator, MultiplePairsAggregate) {
  Coordinator coord(PairConfig{});
  auto [a1, b1] = coord.make_pair();
  auto [a2, b2] = coord.make_pair();
  for (int i = 0; i < 10; ++i) {
    (void)a1.decide(0);
    (void)b1.decide(1);
    (void)a2.decide(1);
    (void)b2.decide(1);
  }
  EXPECT_EQ(coord.aggregate_stats().rounds, 20u);
}

TEST(Coordinator, PairsGetDistinctSeeds) {
  PairConfig cfg;
  cfg.backend = Backend::kIndependent;
  Coordinator coord(cfg);
  auto [a1, b1] = coord.make_pair();
  auto [a2, b2] = coord.make_pair();
  int diff = 0;
  for (int i = 0; i < 64; ++i) {
    const int d1 = a1.decide(0);
    (void)b1.decide(0);
    const int d2 = a2.decide(0);
    (void)b2.decide(0);
    if (d1 != d2) ++diff;
  }
  EXPECT_GT(diff, 10);
}

TEST(Coordinator, MakeLbStrategyMatchesBackend) {
  PairConfig cfg;
  cfg.backend = Backend::kQuantum;
  Coordinator coord(cfg);
  const auto strat = coord.make_lb_strategy();
  EXPECT_EQ(strat->name(), "paired(quantum-chsh)");
  cfg.backend = Backend::kClassicalShared;
  EXPECT_EQ(Coordinator(cfg).make_lb_strategy()->name(),
            "paired(classical-chsh)");
}

TEST(Coordinator, ProvisioningReportsWorthwhileWhenSupplied) {
  qnet::QnetConfig supply;
  supply.pair_rate_hz = 1e6;
  supply.fiber_km = 0.2;
  const ProvisioningReport r =
      Coordinator::provision(supply, 0.98, 1e4, 0.5, 17);
  EXPECT_GT(r.pair_hit_fraction, 0.9);
  EXPECT_TRUE(r.quantum_worthwhile());
}

TEST(Coordinator, ProvisioningDetectsStarvation) {
  qnet::QnetConfig supply;
  supply.pair_rate_hz = 100.0;  // hopeless vs 1e4 req/s
  const ProvisioningReport r =
      Coordinator::provision(supply, 0.98, 1e4, 0.5, 18);
  EXPECT_LT(r.pair_hit_fraction, 0.05);
  EXPECT_LT(r.effective_win_probability, 0.76);
}

TEST(Backend, ToStringNames) {
  EXPECT_STREQ(to_string(Backend::kQuantum), "quantum");
  EXPECT_STREQ(to_string(Backend::kOmniscient), "omniscient");
  EXPECT_STREQ(to_string(Backend::kClassicalShared), "classical-shared");
  EXPECT_STREQ(to_string(Backend::kIndependent), "independent");
}

}  // namespace
}  // namespace ftl::core

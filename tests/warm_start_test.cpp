// Warm-start regression suite (ISSUE satellite): on a recorded sweep of
// near-identical games, warm-started solves must (a) return the same
// values as cold solves and (b) spend strictly fewer iterations in
// aggregate, measured through the existing obs iteration counters
// (sdp.gram.sweeps, games.seesaw.rounds).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "games/generators.hpp"
#include "games/seesaw.hpp"
#include "games/value_engine.hpp"
#include "games/xor_game.hpp"
#include "obs/metrics.hpp"
#include "sdp/tsirelson.hpp"
#include "util/rng.hpp"

namespace {

using ftl::games::XorGame;
using ftl::util::Rng;

// Counter-delta assertions only mean something when the real obs backend
// is compiled in; under the noop backend every counter reads 0.
bool obs_counters_enabled() {
  auto& probe = ftl::obs::registry().counter("test.warm_start.probe");
  probe.inc();
  return probe.value() > 0;
}

std::uint64_t counter(const char* name) {
  return ftl::obs::registry().counter(name).value();
}

// The recorded sweep: a random 6x6 game, then twelve single-entry
// predicate flips — the adjacency structure of a Fig-3 density sweep,
// where consecutive games differ in one affinity edge.
std::vector<std::vector<std::vector<double>>> recorded_sweep() {
  Rng rng(271828);
  std::vector<std::vector<std::vector<double>>> sweep;
  auto m = ftl::games::random_xor_game(6, 6, rng).cost_matrix();
  sweep.push_back(m);
  for (int step = 0; step < 12; ++step) {
    const auto x = rng.uniform_int(std::uint64_t{6});
    const auto y = rng.uniform_int(std::uint64_t{6});
    m[x][y] = -m[x][y];  // flipping f(x,y) negates the cost entry
    sweep.push_back(m);
  }
  return sweep;
}

TEST(WarmStart, GramWarmStartsMatchColdValuesWithFewerSweeps) {
  const auto sweep = recorded_sweep();

  // Reference values at a generous restart budget.
  std::vector<double> reference;
  for (const auto& m : sweep) {
    ftl::sdp::GramOptions o;
    o.restarts = 6;
    o.seed = 1000;
    reference.push_back(ftl::sdp::xor_quantum_bias(m, o).bias);
  }

  const std::uint64_t sweeps_before_cold = counter("sdp.gram.sweeps");
  std::vector<double> cold;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    ftl::sdp::GramOptions o;
    o.restarts = 2;
    o.seed = 2000 + i;
    cold.push_back(ftl::sdp::xor_quantum_bias(sweep[i], o).bias);
  }
  const std::uint64_t cold_sweeps = counter("sdp.gram.sweeps") -
                                    sweeps_before_cold;

  const std::uint64_t warm_starts_before = counter("sdp.gram.warm_starts");
  const std::uint64_t sweeps_before_warm = counter("sdp.gram.sweeps");
  std::vector<double> warm;
  std::vector<std::vector<double>> prev_rows;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    ftl::sdp::GramOptions o;
    o.restarts = 2;
    o.seed = 2000 + i;  // identical budget and seeds as the cold run
    o.warm_rows = prev_rows;
    const auto r = ftl::sdp::xor_quantum_bias(sweep[i], o);
    warm.push_back(r.bias);
    prev_rows = r.alice;
    prev_rows.insert(prev_rows.end(), r.bob.begin(), r.bob.end());
  }
  const std::uint64_t warm_sweeps = counter("sdp.gram.sweeps") -
                                    sweeps_before_warm;

  for (std::size_t i = 0; i < sweep.size(); ++i) {
    EXPECT_NEAR(cold[i], reference[i], 1e-6) << "game " << i;
    EXPECT_NEAR(warm[i], reference[i], 1e-6) << "game " << i;
  }

  if (obs_counters_enabled()) {
    // Every game after the first was warm-started...
    EXPECT_EQ(counter("sdp.gram.warm_starts") - warm_starts_before,
              sweep.size() - 1);
    // ...and the chained runs do strictly less coordinate-ascent work.
    EXPECT_LT(warm_sweeps, cold_sweeps);
  }
}

TEST(WarmStart, SeesawWarmStartsMatchColdValuesWithFewerRounds) {
  // A sweep of CHSH games with a slowly drifting input distribution: the
  // optimum moves a little each step, so the previous strategy is an
  // excellent initial point.
  std::vector<XorGame> sweep;
  for (int k = 0; k < 8; ++k) {
    std::vector<std::vector<int>> f{{0, 0}, {0, 1}};
    const double d = 0.01 * static_cast<double>(k);
    std::vector<std::vector<double>> pi{{0.25 + d, 0.25},
                                        {0.25, 0.25 - d}};
    sweep.emplace_back(std::move(f), std::move(pi));
  }

  const std::uint64_t rounds_before_cold = counter("games.seesaw.rounds");
  std::vector<double> cold;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    ftl::games::SeesawOptions o;
    o.restarts = 3;
    o.seed = 4000 + i;
    cold.push_back(
        ftl::games::seesaw_optimize(sweep[i].to_two_party_game(), o).value);
  }
  const std::uint64_t cold_rounds = counter("games.seesaw.rounds") -
                                    rounds_before_cold;

  const std::uint64_t warm_before = counter("games.seesaw.warm_starts");
  const std::uint64_t rounds_before_warm = counter("games.seesaw.rounds");
  std::vector<double> warm;
  // Results are kept alive for the next iteration's non-owning pointer.
  std::vector<ftl::games::SeesawResult> results;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    ftl::games::SeesawOptions o;
    o.restarts = 3;
    o.seed = 4000 + i;
    if (!results.empty()) o.warm_start = &results.back().strategy;
    results.push_back(
        ftl::games::seesaw_optimize(sweep[i].to_two_party_game(), o));
    warm.push_back(results.back().value);
  }
  const std::uint64_t warm_rounds = counter("games.seesaw.rounds") -
                                    rounds_before_warm;

  for (std::size_t i = 0; i < sweep.size(); ++i) {
    EXPECT_NEAR(warm[i], cold[i], 1e-5) << "game " << i;
  }
  if (obs_counters_enabled()) {
    EXPECT_EQ(counter("games.seesaw.warm_starts") - warm_before,
              sweep.size() - 1);
    EXPECT_LT(warm_rounds, cold_rounds);
  }
}

// The engine chains warm starts across evaluate() calls on its own; on a
// recorded sweep it must report one warm start per solver-path game after
// the first while reproducing reference values.
TEST(WarmStart, EngineChainsWarmStartsAcrossEvaluations) {
  const auto sweep = recorded_sweep();

  ftl::games::XorValueOptions opts;
  opts.use_closed_form = false;
  opts.use_cache = false;
  opts.sdp.restarts = 2;
  opts.sdp.seed = 777;
  ftl::games::XorValueEngine engine(opts);

  for (const auto& m : sweep) {
    ftl::sdp::GramOptions ref;
    ref.restarts = 6;
    ref.seed = 31;
    const double reference = ftl::sdp::xor_quantum_bias(m, ref).bias;
    const auto r = engine.evaluate(m);
    EXPECT_NEAR(r.quantum_bias, reference, 1e-6);
  }
  EXPECT_EQ(engine.stats().warm_starts, sweep.size() - 1);
  EXPECT_EQ(engine.stats().games_solved, sweep.size());
}

}  // namespace

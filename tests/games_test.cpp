#include "games/game.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "games/chsh.hpp"
#include "games/strategy.hpp"
#include "util/rng.hpp"

namespace ftl::games {
namespace {

const double kChshQuantum = std::cos(M_PI / 8.0) * std::cos(M_PI / 8.0);

TEST(TwoPartyGame, UniformInputsSumToOne) {
  const auto pi = TwoPartyGame::uniform_inputs(3, 4);
  double total = 0.0;
  for (const auto& row : pi) {
    for (double p : row) total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(TwoPartyGame, DeterministicValueOfChsh) {
  const TwoPartyGame g = chsh_game();
  // a = b = 0 wins unless x = y = 1.
  EXPECT_NEAR(g.deterministic_value({0, 0}, {0, 0}), 0.75, 1e-12);
  // a = x, b = 0: wins on (0,0),(0,1) [a^b=0, xy=0 ok], loses (1,0)
  // [a^b=1, xy=0], wins (1,1) [a^b=1 = xy].
  EXPECT_NEAR(g.deterministic_value({0, 1}, {0, 0}), 0.75, 1e-12);
}

TEST(ClassicalValue, ChshIsThreeQuarters) {
  const ClassicalOptimum opt = classical_value(chsh_game());
  EXPECT_NEAR(opt.value, 0.75, 1e-12);
}

TEST(ClassicalValue, FlippedChshIsThreeQuarters) {
  EXPECT_NEAR(classical_value(chsh_game(true)).value, 0.75, 1e-12);
}

TEST(ClassicalValue, WitnessesAreConsistent) {
  const TwoPartyGame g = chsh_game();
  const ClassicalOptimum opt = classical_value(g);
  EXPECT_NEAR(g.deterministic_value(opt.alice, opt.bob), opt.value, 1e-12);
}

TEST(ClassicalValue, TrivialAlwaysWinGame) {
  // Win predicate true everywhere.
  std::vector<std::vector<std::vector<std::vector<bool>>>> wins(
      2, std::vector<std::vector<std::vector<bool>>>(
             2, std::vector<std::vector<bool>>(2, std::vector<bool>(2, true))));
  const TwoPartyGame g(std::move(wins), TwoPartyGame::uniform_inputs(2, 2));
  EXPECT_NEAR(classical_value(g).value, 1.0, 1e-12);
}

TEST(ClassicalValue, ImpossibleGame) {
  std::vector<std::vector<std::vector<std::vector<bool>>>> wins(
      1, std::vector<std::vector<std::vector<bool>>>(
             1, std::vector<std::vector<bool>>(2, std::vector<bool>(2, false))));
  const TwoPartyGame g(std::move(wins), TwoPartyGame::uniform_inputs(1, 1));
  EXPECT_NEAR(classical_value(g).value, 0.0, 1e-12);
}

TEST(StrategyValue, MatchesJointDistribution) {
  const TwoPartyGame g = chsh_game();
  // Uniform random outputs: win probability 1/2 on every input.
  std::vector p(2, std::vector(2, std::vector(2, std::vector<double>(2, 0.25))));
  EXPECT_NEAR(g.strategy_value(p), 0.5, 1e-12);
}

TEST(ChshQuantum, OptimalAnglesReachTsirelson) {
  const QuantumStrategy s = chsh_quantum_strategy(chsh_optimal_angles());
  EXPECT_NEAR(s.value(chsh_game()), kChshQuantum, 1e-10);
}

TEST(ChshQuantum, FlippedVariantSameValue) {
  const QuantumStrategy s = chsh_quantum_strategy(
      chsh_optimal_angles(), /*flip_bob_output=*/true);
  EXPECT_NEAR(s.value(chsh_game(true)), kChshQuantum, 1e-10);
}

TEST(ChshQuantum, ClosedFormMatchesSimulator) {
  for (double v : {1.0, 0.9, 0.5, 0.0}) {
    const QuantumStrategy s =
        chsh_quantum_strategy(chsh_optimal_angles(), false, v);
    EXPECT_NEAR(s.value(chsh_game()),
                chsh_win_probability(chsh_optimal_angles(), false, v), 1e-10)
        << "visibility " << v;
  }
}

TEST(ChshQuantum, SuboptimalAnglesDoWorse) {
  const ChshAngles bad{0.0, 0.0, 0.0, 0.0};  // always same basis
  const QuantumStrategy s = chsh_quantum_strategy(bad);
  EXPECT_LT(s.value(chsh_game()), 0.76);
}

TEST(ChshQuantum, ZeroVisibilityIsCoinFlipping) {
  const QuantumStrategy s =
      chsh_quantum_strategy(chsh_optimal_angles(), false, 0.0);
  EXPECT_NEAR(s.value(chsh_game()), 0.5, 1e-10);
}

TEST(ChshQuantum, AdvantageThresholdVisibility) {
  // (1 + v/sqrt2)/2 > 3/4 iff v > 1/sqrt2.
  const double vc = 1.0 / std::sqrt(2.0);
  EXPECT_GT(chsh_quantum_strategy(chsh_optimal_angles(), false, vc + 0.02)
                .value(chsh_game()),
            0.75);
  EXPECT_LT(chsh_quantum_strategy(chsh_optimal_angles(), false, vc - 0.02)
                .value(chsh_game()),
            0.75);
}

TEST(ChshQuantum, JointProbabilitiesSumToOne) {
  const QuantumStrategy s = chsh_quantum_strategy(chsh_optimal_angles());
  for (std::size_t x = 0; x < 2; ++x) {
    for (std::size_t y = 0; y < 2; ++y) {
      double total = 0.0;
      for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 2; ++b) total += s.joint_probability(x, y, a, b);
      }
      EXPECT_NEAR(total, 1.0, 1e-10);
    }
  }
}

// ---- no-signaling property sweep -------------------------------------------

struct NsCase {
  double visibility;
  bool flip;
};

class NoSignaling : public ::testing::TestWithParam<NsCase> {};

TEST_P(NoSignaling, MarginalsIndependentOfRemoteInput) {
  const auto [v, flip] = GetParam();
  const QuantumStrategy s =
      chsh_quantum_strategy(chsh_optimal_angles(), flip, v);
  for (std::size_t x = 0; x < 2; ++x) {
    for (int a = 0; a < 2; ++a) {
      EXPECT_NEAR(s.alice_marginal(x, 0, a), s.alice_marginal(x, 1, a), 1e-10);
    }
  }
  for (std::size_t y = 0; y < 2; ++y) {
    for (int b = 0; b < 2; ++b) {
      EXPECT_NEAR(s.bob_marginal(0, y, b), s.bob_marginal(1, y, b), 1e-10);
    }
  }
}

TEST_P(NoSignaling, MarginalsAreUniform) {
  // §2: "each party still outputs 0 or 1 with equal probability".
  const auto [v, flip] = GetParam();
  const QuantumStrategy s =
      chsh_quantum_strategy(chsh_optimal_angles(), flip, v);
  for (std::size_t x = 0; x < 2; ++x) {
    EXPECT_NEAR(s.alice_marginal(x, 0, 0), 0.5, 1e-10);
  }
  for (std::size_t y = 0; y < 2; ++y) {
    EXPECT_NEAR(s.bob_marginal(0, y, 0), 0.5, 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(
    VisibilitiesAndFlips, NoSignaling,
    ::testing::Values(NsCase{1.0, false}, NsCase{1.0, true},
                      NsCase{0.8, false}, NsCase{0.8, true},
                      NsCase{0.3, false}, NsCase{0.0, true}));

TEST(Play, SampledWinRateMatchesExactValue) {
  const QuantumStrategy s = chsh_quantum_strategy(chsh_optimal_angles());
  const TwoPartyGame g = chsh_game();
  util::Rng rng(11);
  int wins = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    const std::size_t x = rng.uniform_int(2);
    const std::size_t y = rng.uniform_int(2);
    const auto [a, b] = s.play(x, y, rng);
    if (g.wins(x, y, static_cast<std::size_t>(a), static_cast<std::size_t>(b)))
      ++wins;
  }
  EXPECT_NEAR(static_cast<double>(wins) / n, kChshQuantum, 0.01);
}

TEST(Correlator, BellPairRealBases) {
  // E(x, y) = cos 2(theta_x - theta_y) for an ideal Bell pair.
  const ChshAngles a = chsh_optimal_angles();
  const QuantumStrategy s = chsh_quantum_strategy(a);
  EXPECT_NEAR(s.correlator(0, 0), std::cos(2.0 * (a.alice0 - a.bob0)), 1e-10);
  EXPECT_NEAR(s.correlator(1, 1), std::cos(2.0 * (a.alice1 - a.bob1)), 1e-10);
}

TEST(Correlator, ChshCombinationHitsTsirelsonBound) {
  const QuantumStrategy s = chsh_quantum_strategy(chsh_optimal_angles());
  const double chsh = s.correlator(0, 0) + s.correlator(0, 1) +
                      s.correlator(1, 0) - s.correlator(1, 1);
  EXPECT_NEAR(chsh, 2.0 * std::sqrt(2.0), 1e-9);
}

}  // namespace
}  // namespace ftl::games

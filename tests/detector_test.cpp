#include "qnet/detector.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/correlated_pair.hpp"
#include "util/rng.hpp"

namespace ftl::qnet {
namespace {

TEST(Detector, PerfectDetectorsGiveIdealValue) {
  EXPECT_NEAR(chsh_win_with_detectors(1.0, 1.0),
              0.5 * (1.0 + 1.0 / std::sqrt(2.0)), 1e-12);
}

TEST(Detector, ZeroEfficiencyIsClassical) {
  EXPECT_NEAR(chsh_win_with_detectors(0.0, 1.0), 0.75, 1e-12);
}

TEST(Detector, OneSidedFailureRegimeDipsBelowClassical) {
  // Mid efficiencies are WORSE than not deploying quantum at all.
  EXPECT_LT(chsh_win_with_detectors(0.5, 1.0), 0.75);
  EXPECT_LT(chsh_win_with_detectors(0.7, 1.0), 0.75);
}

TEST(Detector, BreakevenForIdealPairs) {
  // Quadratic root: eta* = 0.5 / (w_q - 0.25) with w_q = cos^2(pi/8).
  const double w_q = 0.5 * (1.0 + 1.0 / std::sqrt(2.0));
  const double expect = 0.5 / (w_q - 0.25);
  EXPECT_NEAR(breakeven_efficiency(1.0), expect, 1e-9);
  EXPECT_NEAR(expect, 0.8284, 5e-4);
}

TEST(Detector, BreakevenRisesAsVisibilityFalls) {
  EXPECT_GT(breakeven_efficiency(0.85), breakeven_efficiency(1.0));
  // At the visibility threshold there is no efficiency that works.
  EXPECT_DOUBLE_EQ(breakeven_efficiency(1.0 / std::sqrt(2.0)), 0.0);
}

TEST(Detector, AboveBreakevenBeatsClassical) {
  const double eta = breakeven_efficiency(1.0);
  EXPECT_GT(chsh_win_with_detectors(eta + 0.01, 1.0), 0.75);
  EXPECT_LT(chsh_win_with_detectors(eta - 0.01, 1.0), 0.75);
}

TEST(Detector, CorrelatedPairMatchesClosedForm) {
  for (double eta : {1.0, 0.9, 0.7}) {
    core::PairConfig cfg;
    cfg.backend = core::Backend::kQuantum;
    cfg.visibility = 1.0;
    cfg.detector_efficiency = eta;
    cfg.seed = 77;
    core::CorrelatedPair pair(cfg);
    util::Rng rng(78);
    const int rounds = 40000;
    for (int i = 0; i < rounds; ++i) {
      (void)pair.decide(0, rng.bernoulli(0.5) ? 1 : 0);
      (void)pair.decide(1, rng.bernoulli(0.5) ? 1 : 0);
    }
    const double win = static_cast<double>(pair.stats().wins) /
                       static_cast<double>(pair.stats().rounds);
    EXPECT_NEAR(win, chsh_win_with_detectors(eta, 1.0), 0.01)
        << "eta=" << eta;
  }
}

TEST(Detector, LowEfficiencyEndToEndIsWorseThanClassical) {
  core::PairConfig cfg;
  cfg.backend = core::Backend::kQuantum;
  cfg.detector_efficiency = 0.6;
  cfg.seed = 79;
  core::CorrelatedPair pair(cfg);
  util::Rng rng(80);
  for (int i = 0; i < 30000; ++i) {
    (void)pair.decide(0, rng.bernoulli(0.5) ? 1 : 0);
    (void)pair.decide(1, rng.bernoulli(0.5) ? 1 : 0);
  }
  const double win = static_cast<double>(pair.stats().wins) /
                     static_cast<double>(pair.stats().rounds);
  EXPECT_LT(win, 0.75);
}

}  // namespace
}  // namespace ftl::qnet

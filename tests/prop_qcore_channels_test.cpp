// Property suite: channel laws (CPTP via the Choi matrix) on random inputs,
// plus the acceptance-criterion negative test — a deliberately broken
// (non-trace-preserving) channel must be caught with a replayable seed.
#include <gtest/gtest.h>

#include <cmath>

#include "qcore/channels.hpp"
#include "qcore/density.hpp"
#include "qcore/generators.hpp"
#include "qcore/invariants.hpp"
#include "util/proptest.hpp"

namespace {

using ftl::proptest::CaseResult;
using ftl::proptest::for_all;
using ftl::proptest::Options;
using ftl::qcore::Channel;
using ftl::qcore::CMat;
using ftl::qcore::Cx;
using ftl::qcore::Density;
using ftl::util::Rng;

Options suite(const std::string& name, std::size_t cases = 150) {
  Options o;
  o.name = name;
  o.cases = cases;
  return o;
}

// Every built-in noise family must be CPTP across its whole parameter
// range, and the Choi-based trace-preservation check must agree with the
// production Channel::is_trace_preserving (two independent code paths).
TEST(PropQcoreChannels, BuiltinChannelsAreCptpAtRandomParameters) {
  struct Case {
    Channel ch;
    std::string family;
  };
  const auto r = for_all(
      suite("builtin-channels-cptp", 160),
      [](Rng& rng) {
        // Hit the edge parameters 0 and 1 with finite probability so the
        // suite covers the boundary every run, not just the interior.
        double p = rng.uniform();
        const auto edge = rng.uniform_int(std::uint64_t{8});
        if (edge == 0) p = 0.0;
        if (edge == 1) p = 1.0;
        switch (rng.uniform_int(std::uint64_t{4})) {
          case 0: return Case{ftl::qcore::depolarizing(p), "depolarizing"};
          case 1: return Case{ftl::qcore::dephasing(p), "dephasing"};
          case 2:
            return Case{ftl::qcore::amplitude_damping(p), "amplitude_damping"};
          default: return Case{ftl::qcore::bit_flip(p), "bit_flip"};
        }
      },
      [](const Case& c) {
        if (!ftl::qcore::is_cptp(c.ch)) {
          return CaseResult::fail(c.family + " is not CPTP");
        }
        if (ftl::qcore::choi_trace_preserving(c.ch) !=
            c.ch.is_trace_preserving()) {
          return CaseResult::fail(
              c.family + ": Choi TP check disagrees with Kraus TP check");
        }
        return CaseResult::pass();
      });
  ASSERT_TRUE(r.ok) << r.message;
}

TEST(PropQcoreChannels, RandomKrausChannelsAreCptp) {
  const auto r = for_all(
      suite("random-channels-cptp", 150),
      [](Rng& rng) {
        return ftl::qcore::random_channel(
            1 + rng.uniform_int(std::uint64_t{4}), rng);
      },
      [](const Channel& ch) {
        if (!ftl::qcore::is_completely_positive(ch)) {
          return CaseResult::fail("Choi matrix not PSD");
        }
        if (!ftl::qcore::choi_trace_preserving(ch)) {
          return CaseResult::fail("Choi partial trace != identity");
        }
        if (!ch.is_trace_preserving()) {
          return CaseResult::fail("Kraus completeness relation violated");
        }
        return CaseResult::pass();
      });
  ASSERT_TRUE(r.ok) << r.message;
}

TEST(PropQcoreChannels, ChannelsPreserveDensityValidity) {
  struct Case {
    Density rho;
    Channel ch;
    std::size_t qubit;
  };
  const auto r = for_all(
      suite("channels-preserve-density", 130),
      [](Rng& rng) {
        const std::size_t n = 1 + rng.uniform_int(std::uint64_t{2});
        Case c{ftl::qcore::random_density(n, rng),
               ftl::qcore::random_channel(1 + rng.uniform_int(std::uint64_t{3}),
                                          rng),
               rng.uniform_int(n)};
        return c;
      },
      [](const Case& c) {
        Density evolved = c.rho;
        evolved.apply_channel(c.ch, c.qubit);
        const std::string violation =
            ftl::qcore::density_violation(evolved.matrix(), 1e-7);
        if (!violation.empty()) {
          return CaseResult::fail("post-channel state broken: " + violation);
        }
        if (evolved.purity() > 1.0 + 1e-7) {
          return CaseResult::fail("purity " + std::to_string(evolved.purity()) +
                                  " exceeds 1");
        }
        return CaseResult::pass();
      });
  ASSERT_TRUE(r.ok) << r.message;
}

TEST(PropQcoreChannels, StorageDecoherenceIsCptpForPhysicalTimes) {
  const auto r = for_all(
      suite("storage-decoherence-cptp", 130),
      [](Rng& rng) {
        const double t1 = rng.uniform(1e-4, 2.0);
        // Physical memories satisfy T2 <= 2*T1.
        const double t2 = rng.uniform(1e-4, 2.0 * t1);
        const double t = rng.uniform(0.0, 3.0 * t1);
        return ftl::qcore::storage_decoherence(t, t1, t2);
      },
      [](const std::vector<Channel>& chain) {
        for (const Channel& ch : chain) {
          if (!ftl::qcore::is_cptp(ch)) {
            return CaseResult::fail("storage stage not CPTP");
          }
        }
        return CaseResult::pass();
      });
  ASSERT_TRUE(r.ok) << r.message;
}

// Acceptance criterion: a deliberately broken invariant is *caught*, and
// the printed seed replays the failure. The broken object is a
// depolarizing channel whose Kraus operators are rescaled by s != 1 — the
// completeness relation fails by design, and is_cptp must say so.
TEST(PropQcoreChannels, BrokenChannelIsCaughtWithReplayableSeed) {
  auto gen = [](Rng& rng) {
    Channel ch = ftl::qcore::depolarizing(rng.uniform(0.0, 1.0));
    // Scale away from trace preservation; s is bounded away from 1.
    const double s =
        rng.bernoulli(0.5) ? rng.uniform(1.1, 2.0) : rng.uniform(0.3, 0.9);
    for (CMat& k : ch.kraus) k = k * Cx{s, 0.0};
    return ch;
  };
  auto prop = [](const Channel& ch) {
    return ftl::qcore::is_cptp(ch)
               ? CaseResult::pass()
               : CaseResult::fail("non-trace-preserving channel detected");
  };

  // Every case is broken, so for_all must fail at case 0 with a seed.
  const auto r = for_all(suite("broken-channel-detected", 50), gen, prop);
  ASSERT_FALSE(r.ok) << "the broken channel went undetected";
  EXPECT_NE(r.message.find("non-trace-preserving channel detected"),
            std::string::npos)
      << r.message;
  EXPECT_NE(r.message.find("reproduced (deterministic repro)"),
            std::string::npos)
      << r.message;

  // The printed seed regenerates a channel that still fails the invariant.
  const std::uint64_t seed = ftl::proptest::parse_reported_seed(r.message);
  ASSERT_NE(seed, 0u);
  Rng replay(seed);
  const Channel again = gen(replay);
  EXPECT_FALSE(ftl::qcore::is_cptp(again));
  EXPECT_FALSE(again.is_trace_preserving());
}

}  // namespace

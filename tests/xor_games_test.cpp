#include "games/xor_game.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "games/affinity.hpp"
#include "util/rng.hpp"

namespace ftl::games {
namespace {

constexpr double kInvSqrt2 = 0.70710678118654752;
/// Grothendieck's constant upper bound: quantum bias <= K_G * classical.
constexpr double kGrothendieck = 1.7822139781;

TEST(AffinityGraph, DefaultsToColocate) {
  const AffinityGraph g(4);
  for (std::size_t u = 0; u < 4; ++u) {
    for (std::size_t v = 0; v < 4; ++v) {
      EXPECT_EQ(g.at(u, v), Affinity::kColocate);
    }
  }
  EXPECT_EQ(g.num_exclusive_edges(), 0u);
}

TEST(AffinityGraph, SetIsSymmetric) {
  AffinityGraph g(3);
  g.set(0, 2, Affinity::kExclusive);
  EXPECT_EQ(g.at(2, 0), Affinity::kExclusive);
  EXPECT_EQ(g.num_exclusive_edges(), 1u);
}

TEST(AffinityGraph, RandomEdgeDensity) {
  util::Rng rng(3);
  std::size_t total = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    total += AffinityGraph::random(5, 0.4, rng).num_exclusive_edges();
  }
  // 10 possible edges, expected 4 exclusive.
  EXPECT_NEAR(static_cast<double>(total) / trials, 4.0, 0.15);
}

TEST(AffinityGraph, RandomExtremes) {
  util::Rng rng(5);
  EXPECT_EQ(AffinityGraph::random(5, 0.0, rng).num_exclusive_edges(), 0u);
  EXPECT_EQ(AffinityGraph::random(5, 1.0, rng).num_exclusive_edges(), 10u);
}

TEST(AffinityGraph, SelfLoopsStayColocate) {
  util::Rng rng(7);
  const AffinityGraph g = AffinityGraph::random(6, 1.0, rng);
  for (std::size_t u = 0; u < 6; ++u) {
    EXPECT_EQ(g.at(u, u), Affinity::kColocate);
  }
}

TEST(XorGame, ChshBiases) {
  const XorGame g = XorGame::chsh();
  EXPECT_NEAR(g.classical_bias(), 0.5, 1e-12);  // win prob 3/4
  EXPECT_NEAR(g.quantum_bias().bias, kInvSqrt2, 1e-6);
  EXPECT_TRUE(g.has_quantum_advantage());
}

TEST(XorGame, FlippedChshBiases) {
  const XorGame g = XorGame::chsh(true);
  EXPECT_NEAR(g.classical_bias(), 0.5, 1e-12);
  EXPECT_NEAR(g.quantum_bias().bias, kInvSqrt2, 1e-6);
}

TEST(XorGame, ClassicalValueConsistency) {
  const XorGame g = XorGame::chsh();
  EXPECT_NEAR(g.classical_value(), 0.75, 1e-12);
}

TEST(XorGame, ClassicalBiasMatchesExhaustiveGameSearch) {
  util::Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    const AffinityGraph graph = AffinityGraph::random(4, 0.5, rng);
    const XorGame xg = XorGame::from_affinity(graph);
    const ClassicalOptimum opt = classical_value(xg.to_two_party_game());
    EXPECT_NEAR((1.0 + xg.classical_bias()) / 2.0, opt.value, 1e-10);
  }
}

TEST(XorGame, AllColocateGraphIsTrivial) {
  const AffinityGraph g(5);  // no exclusive edges
  const XorGame xg = XorGame::from_affinity(g);
  EXPECT_NEAR(xg.classical_bias(), 1.0, 1e-12);
  EXPECT_FALSE(xg.has_quantum_advantage());
}

TEST(XorGame, FromAffinityEncodesEdges) {
  AffinityGraph g(3);
  g.set(0, 1, Affinity::kExclusive);
  const XorGame xg = XorGame::from_affinity(g);
  EXPECT_EQ(xg.f(0, 1), 1);
  EXPECT_EQ(xg.f(1, 0), 1);
  EXPECT_EQ(xg.f(0, 2), 0);
  EXPECT_EQ(xg.f(0, 0), 0);
}

TEST(XorGame, PentagonParityGameHasAdvantage) {
  // Odd-cycle anti-correlation: vertices 0-1-2-3-4-0 exclusive around the
  // cycle. This frustration is the classic source of quantum advantage.
  AffinityGraph g(5);
  for (std::size_t i = 0; i < 5; ++i) {
    g.set(i, (i + 1) % 5, Affinity::kExclusive);
  }
  const XorGame xg = XorGame::from_affinity(g);
  const double cb = xg.classical_bias();
  const double qb = xg.quantum_bias().bias;
  EXPECT_GT(qb, cb + 1e-4);
}

// Property sweep: for random affinity games, quantum bias must always be
// >= classical and <= Grothendieck * classical.
class RandomXorGames : public ::testing::TestWithParam<double> {};

TEST_P(RandomXorGames, QuantumSandwich) {
  const double p_exclusive = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(p_exclusive * 1000) + 17);
  for (int trial = 0; trial < 6; ++trial) {
    const AffinityGraph graph = AffinityGraph::random(4, p_exclusive, rng);
    const XorGame xg = XorGame::from_affinity(graph);
    const double cb = xg.classical_bias();
    sdp::GramOptions opts;
    opts.restarts = 6;
    const double qb = xg.quantum_bias(opts).bias;
    EXPECT_GE(qb, cb - 1e-6) << "p=" << p_exclusive << " trial=" << trial;
    EXPECT_LE(qb, kGrothendieck * cb + 1e-6)
        << "p=" << p_exclusive << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, RandomXorGames,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

TEST(XorGame, CostMatrixSignsAndWeights) {
  const XorGame g = XorGame::chsh();
  const auto m = g.cost_matrix();
  EXPECT_NEAR(m[0][0], 0.25, 1e-12);
  EXPECT_NEAR(m[1][1], -0.25, 1e-12);
}

TEST(XorGame, InputDistributionUniform) {
  const XorGame g = XorGame::chsh();
  EXPECT_NEAR(g.input_prob(0, 1), 0.25, 1e-12);
}

}  // namespace
}  // namespace ftl::games

#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ftl::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_DOUBLE_EQ(e.now(), 0.0);
}

TEST(Engine, FiresInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(3.0, [&] { order.push_back(3); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
}

TEST(Engine, SimultaneousEventsFifo) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(1.0, [&] { order.push_back(2); });
  e.schedule_at(1.0, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, ScheduleInIsRelative) {
  Engine e;
  double fired_at = -1.0;
  e.schedule_at(2.0, [&] {
    e.schedule_in(0.5, [&] { fired_at = e.now(); });
  });
  e.run();
  EXPECT_DOUBLE_EQ(fired_at, 2.5);
}

TEST(Engine, CancelPreventsFiring) {
  Engine e;
  bool fired = false;
  const EventId id = e.schedule_at(1.0, [&] { fired = true; });
  e.cancel(id);
  e.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelUnknownIdIsNoop) {
  Engine e;
  e.cancel(12345);
  bool fired = false;
  e.schedule_at(1.0, [&] { fired = true; });
  e.run();
  EXPECT_TRUE(fired);
}

TEST(Engine, RunUntilStopsAtBoundary) {
  Engine e;
  std::vector<double> fired;
  for (double t : {0.5, 1.5, 2.5}) {
    e.schedule_at(t, [&fired, &e] { fired.push_back(e.now()); });
  }
  e.run_until(2.0);
  EXPECT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(e.now(), 2.0);
  e.run();
  EXPECT_EQ(fired.size(), 3u);
}

TEST(Engine, RunUntilAdvancesTimeWhenIdle) {
  Engine e;
  e.run_until(5.0);
  EXPECT_DOUBLE_EQ(e.now(), 5.0);
}

TEST(Engine, EventsCanChainIndefinitely) {
  Engine e;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    if (count < 100) e.schedule_in(1.0, tick);
  };
  e.schedule_in(1.0, tick);
  e.run();
  EXPECT_EQ(count, 100);
  EXPECT_DOUBLE_EQ(e.now(), 100.0);
}

TEST(Engine, StepReturnsFalseWhenEmpty) {
  Engine e;
  EXPECT_FALSE(e.step());
  e.schedule_at(1.0, [] {});
  EXPECT_TRUE(e.step());
  EXPECT_FALSE(e.step());
}

TEST(Engine, RejectsSchedulingInThePast) {
  Engine e;
  e.schedule_at(2.0, [] {});
  e.run();
  EXPECT_DEATH(e.schedule_at(1.0, [] {}), "past");
}

TEST(Engine, PendingIsExact) {
  // Regression: pending() used to count cancelled-but-unpopped events.
  Engine e;
  const EventId a = e.schedule_at(1.0, [] {});
  e.schedule_at(2.0, [] {});
  const EventId c = e.schedule_at(3.0, [] {});
  EXPECT_EQ(e.pending(), 3u);
  e.cancel(a);
  EXPECT_EQ(e.pending(), 2u);
  e.cancel(c);
  EXPECT_EQ(e.pending(), 1u);
  EXPECT_TRUE(e.step());  // fires the 2.0 event, skipping cancelled a
  EXPECT_EQ(e.pending(), 0u);
  EXPECT_FALSE(e.step());
}

TEST(Engine, CancelOfFiredIdDoesNotLeak) {
  // Regression: cancelling an id that already fired used to park it in the
  // cancelled set forever, skewing pending() for the rest of the run.
  Engine e;
  const EventId a = e.schedule_at(1.0, [] {});
  e.run();
  e.cancel(a);  // stale: a already fired
  EXPECT_EQ(e.pending(), 0u);
  bool fired = false;
  const EventId b = e.schedule_at(2.0, [&] { fired = true; });
  EXPECT_EQ(e.pending(), 1u);
  e.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(e.pending(), 0u);
  e.cancel(b);  // stale again, after a full run
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, DoubleCancelCountsOnce) {
  Engine e;
  const EventId a = e.schedule_at(1.0, [] {});
  e.schedule_at(2.0, [] {});
  e.cancel(a);
  e.cancel(a);
  EXPECT_EQ(e.pending(), 1u);
  e.run();
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, EventAtCurrentTimeAllowed) {
  Engine e;
  int fired = 0;
  e.schedule_at(1.0, [&] {
    e.schedule_at(e.now(), [&] { ++fired; });  // zero-delay event
  });
  e.run();
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace ftl::sim

#include "games/seesaw.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "games/chsh.hpp"
#include "games/xor_game.hpp"

namespace ftl::games {
namespace {

const double kChshQuantum = std::cos(M_PI / 8.0) * std::cos(M_PI / 8.0);

TEST(Seesaw, RecoversChshTsirelsonValue) {
  const SeesawResult r = seesaw_optimize(chsh_game());
  EXPECT_NEAR(r.value, kChshQuantum, 1e-6);
  EXPECT_TRUE(r.converged);
}

TEST(Seesaw, RecoversFlippedChsh) {
  const SeesawResult r = seesaw_optimize(chsh_game(true));
  EXPECT_NEAR(r.value, kChshQuantum, 1e-6);
}

TEST(Seesaw, StrategyValueMatchesReturnedStrategy) {
  const SeesawResult r = seesaw_optimize(chsh_game());
  EXPECT_NEAR(r.strategy_value, r.strategy.value(chsh_game()), 1e-12);
  // For CHSH the optimum is non-degenerate, so packaging loses nothing.
  EXPECT_NEAR(r.value, r.strategy_value, 1e-9);
}

TEST(Seesaw, TrivialGameReachesOne) {
  // Always-win-by-agreeing game: a XOR b = 0 everywhere.
  const XorGame xg = XorGame({{0, 0}, {0, 0}},
                             TwoPartyGame::uniform_inputs(2, 2));
  const SeesawResult r = seesaw_optimize(xg.to_two_party_game());
  EXPECT_NEAR(r.value, 1.0, 1e-8);
}

TEST(Seesaw, NeverBelowClassicalValue) {
  // On a handful of structured games the quantum lower bound from see-saw
  // must at least match the exhaustive classical value.
  for (int variant = 0; variant < 4; ++variant) {
    std::vector<std::vector<int>> f(2, std::vector<int>(2, 0));
    f[0][0] = variant & 1;
    f[1][1] = (variant >> 1) & 1;
    const XorGame xg(f, TwoPartyGame::uniform_inputs(2, 2));
    const TwoPartyGame game = xg.to_two_party_game();
    SeesawOptions opts;
    opts.restarts = 4;
    const SeesawResult r = seesaw_optimize(game, opts);
    EXPECT_GE(r.value, classical_value(game).value - 1e-7)
        << "variant " << variant;
  }
}

TEST(Seesaw, AgreesWithTsirelsonSdpOnXorGames) {
  // For XOR games the SDP value is exact; the one-qubit see-saw must match
  // it whenever one Bell pair suffices (true for 2-input XOR games).
  for (bool flipped : {false, true}) {
    const XorGame xg = XorGame::chsh(flipped);
    const double sdp_value = (1.0 + xg.quantum_bias().bias) / 2.0;
    const SeesawResult r = seesaw_optimize(xg.to_two_party_game());
    EXPECT_NEAR(r.value, sdp_value, 1e-6) << "flipped=" << flipped;
  }
}

TEST(Seesaw, FixedBellStateStillBeatsClassicalChsh) {
  SeesawOptions opts;
  opts.optimize_state = false;  // whatever random pure state it drew
  opts.restarts = 8;
  const SeesawResult r = seesaw_optimize(chsh_game(), opts);
  // With the state frozen at a random pure state, the measurements alone
  // usually exceed 0.75; at minimum they reach the classical value.
  EXPECT_GE(r.value, 0.75 - 1e-9);
}

TEST(Seesaw, AsymmetricInputDistribution) {
  // CHSH with biased inputs: weight (1,1) low — classical can then win
  // more often; see-saw must track the game, not the uniform formula.
  std::vector<std::vector<double>> pi{{0.3, 0.3}, {0.3, 0.1}};
  std::vector<std::vector<std::vector<std::vector<bool>>>> wins(
      2, std::vector<std::vector<std::vector<bool>>>(
             2, std::vector<std::vector<bool>>(2, std::vector<bool>(2))));
  for (std::size_t x = 0; x < 2; ++x) {
    for (std::size_t y = 0; y < 2; ++y) {
      for (std::size_t a = 0; a < 2; ++a) {
        for (std::size_t b = 0; b < 2; ++b) {
          wins[x][y][a][b] = ((a ^ b) == 1) == (x == 1 && y == 1);
        }
      }
    }
  }
  const TwoPartyGame game(std::move(wins), pi);
  const double classical = classical_value(game).value;  // 0.9
  const SeesawResult r = seesaw_optimize(game);
  // 1e-5: the iteration approaches the deterministic optimum geometrically
  // and stops on the per-round improvement tolerance.
  EXPECT_GE(r.value, classical - 1e-5);
  EXPECT_LE(r.value, 1.0 + 1e-9);
}

TEST(Seesaw, DeterministicForSeed) {
  SeesawOptions opts;
  opts.seed = 7;
  const SeesawResult a = seesaw_optimize(chsh_game(), opts);
  const SeesawResult b = seesaw_optimize(chsh_game(), opts);
  EXPECT_DOUBLE_EQ(a.value, b.value);
}

TEST(Seesaw, StrategyIsNoSignaling) {
  const SeesawResult r = seesaw_optimize(chsh_game());
  for (std::size_t x = 0; x < 2; ++x) {
    for (int a = 0; a < 2; ++a) {
      EXPECT_NEAR(r.strategy.alice_marginal(x, 0, a),
                  r.strategy.alice_marginal(x, 1, a), 1e-9);
    }
  }
}

}  // namespace
}  // namespace ftl::games

// Trace-context propagation and the sliding-window histogram under real
// concurrency (run in CI under ThreadSanitizer via the `thread` label):
// spans recorded from ShardPool workers under one shared parent context,
// lock-free window observes racing rotations and flushes, and a LiveBroker
// producer running while decide_now executes inside CtxSpan scopes.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/spanctx.hpp"
#include "obs/trace.hpp"
#include "qnet/live_broker.hpp"
#include "sim/sharded.hpp"

namespace {

namespace json = ftl::obs::json;
using ftl::obs::parse_trace_id_hex;
using ftl::obs::TraceContext;
using ftl::obs::real::CtxSpan;
using ftl::obs::real::SlidingHistogram;

TEST(SpanCtxThread, ShardPoolWorkersRecordUnderOneTrace) {
  constexpr std::size_t kShards = 8;
  auto& tracer = ftl::obs::real::tracer();
  tracer.start();
  const TraceContext root = TraceContext::derive(42, 0, 0);
  ftl::sim::ShardPool pool(4);
  pool.parallel_shards(kShards, [&](std::size_t shard) {
    CtxSpan span("shard_work", root, shard);
    // A child context derived inside the worker stays in the same trace.
    const TraceContext child = span.context();
    EXPECT_EQ(child.trace_id, root.trace_id);
  });
  tracer.stop();
  ASSERT_EQ(tracer.size(), kShards);

  const auto doc = json::parse(tracer.json());
  ASSERT_TRUE(doc.has_value());
  const json::Value* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::set<std::uint64_t> span_ids;
  for (const json::Value& e : events->array) {
    const json::Value* args = e.find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_EQ(parse_trace_id_hex(args->find("trace_id")->string),
              root.trace_id);
    EXPECT_EQ(parse_trace_id_hex(args->find("parent_span_id")->string),
              root.span_id);
    span_ids.insert(parse_trace_id_hex(args->find("span_id")->string));
  }
  // Each shard label derives a distinct child span id.
  EXPECT_EQ(span_ids.size(), kShards);
}

TEST(SpanCtxThread, SlidingHistogramConcurrentObserves) {
  ftl::obs::real::Registry reg;
  // Tiny epochs force rotation races between observers and the flusher.
  SlidingHistogram h("conc_us", 0.0, 100.0, 50, /*window_epochs=*/4,
                     std::chrono::milliseconds(2), &reg);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::atomic<bool> stop_flush{false};
  std::thread flusher([&] {
    while (!stop_flush.load(std::memory_order_relaxed)) {
      h.flush();
      (void)h.quantile(0.5);
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.observe(static_cast<double>((t * kPerThread + i) % 100));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  stop_flush.store(true, std::memory_order_relaxed);
  flusher.join();
  // Rotation may age out early samples; what remains must be a sane count
  // and the quantiles must stay ordered and in range.
  EXPECT_LE(h.window_count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const double p50 = h.quantile(0.5);
  const double p99 = h.quantile(0.99);
  EXPECT_GE(p50, 0.0);
  EXPECT_LE(p99, 100.0);
  EXPECT_LE(p50, p99);
}

TEST(SpanCtxThread, LiveBrokerDecidesInsideSpansWithProducerRunning) {
  ftl::qnet::LiveBrokerConfig cfg;
  cfg.sources = 2;
  cfg.qnet.pair_rate_hz = 5e5;
  cfg.qnet.fiber_km = 0.0;
  ftl::qnet::LiveBroker broker(cfg, /*seed=*/42);
  broker.start_producer(std::chrono::microseconds(100));

  auto& tracer = ftl::obs::real::tracer();
  tracer.start();
  const TraceContext root = TraceContext::derive(42, 7, 0);
  constexpr int kDecisions = 2000;
  std::atomic<std::uint64_t> hits{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kDecisions; ++i) {
        CtxSpan span("decide", root,
                     static_cast<std::uint64_t>(c * kDecisions + i));
        const auto d = broker.decide_now(static_cast<std::size_t>(c),
                                         static_cast<std::uint8_t>(i & 1));
        if (d.quantum) hits.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  broker.stop_producer();
  tracer.stop();
  EXPECT_EQ(tracer.size(), 2u * kDecisions);
}

}  // namespace

// Cross-module integration tests: each one exercises a pipeline that a
// figure or section of the paper depends on end to end.
#include <gtest/gtest.h>

#include <cmath>

#include "core/coordinator.hpp"
#include "ecmp/no_signaling.hpp"
#include "games/chsh.hpp"
#include "games/xor_game.hpp"
#include "lb/simulator.hpp"
#include "qcore/gates.hpp"
#include "qnet/decoherence.hpp"
#include "util/rng.hpp"

namespace ftl {
namespace {

TEST(Integration, Figure3PipelineSingleGraph) {
  // affinity graph -> XOR game -> classical (exhaustive) and quantum (SDP)
  // values -> advantage decision. One deterministic instance of the Fig-3
  // pipeline.
  util::Rng rng(101);
  const games::AffinityGraph g = games::AffinityGraph::random(5, 0.5, rng);
  const games::XorGame game = games::XorGame::from_affinity(g);
  const double cb = game.classical_bias();
  const double qb = game.quantum_bias().bias;
  EXPECT_GT(cb, 0.0);
  EXPECT_GE(qb, cb - 1e-6);
}

TEST(Integration, Figure4PipelineSmall) {
  // correlate source -> paired LB strategy -> cluster sim, quantum vs
  // classical at one load point (a miniature Figure 4).
  lb::LbConfig cfg;
  cfg.num_balancers = 60;
  cfg.num_servers = 44;
  cfg.warmup_steps = 400;
  cfg.measure_steps = 2500;
  cfg.seed = 21;

  lb::PairedStrategy classical(
      std::make_unique<correlate::ClassicalChshSource>());
  lb::PairedStrategy quantum(std::make_unique<correlate::ChshSource>(1.0));
  const auto rc = lb::run_lb_sim(cfg, classical);
  const auto rq = lb::run_lb_sim(cfg, quantum);
  EXPECT_LT(rq.mean_delay, rc.mean_delay);
}

TEST(Integration, CoordinatorEndpointsDriveChshAtQuantumRate) {
  // The packaged API produces the same statistics the raw game machinery
  // predicts.
  core::PairConfig cfg;
  cfg.backend = core::Backend::kQuantum;
  cfg.visibility = 0.95;
  cfg.seed = 23;
  core::Coordinator coord(cfg);
  auto [a, b] = coord.make_pair();
  util::Rng rng(24);
  for (int i = 0; i < 30000; ++i) {
    (void)a.decide(rng.bernoulli(0.5) ? 1 : 0);
    (void)b.decide(rng.bernoulli(0.5) ? 1 : 0);
  }
  const auto stats = coord.aggregate_stats();
  const double win = static_cast<double>(stats.wins) /
                     static_cast<double>(stats.rounds);
  EXPECT_NEAR(win, 0.5 * (1.0 + 0.95 / std::sqrt(2.0)), 0.01);
}

TEST(Integration, StorageDecoherenceFeedsLoadBalancer) {
  // qnet decoherence -> effective visibility -> end-to-end LB comparison:
  // heavily decohered pairs lose the Fig-4 advantage.
  const double fresh_win =
      qnet::chsh_win_after_storage(0.98, 5e-6, 5e-6, 500e-6, 100e-6);
  const double stale_win =
      qnet::chsh_win_after_storage(0.98, 400e-6, 400e-6, 500e-6, 100e-6);
  EXPECT_GT(fresh_win, 0.82);
  EXPECT_LT(stale_win, 0.76);
}

TEST(Integration, EcmpReductionMatchesSimulatedCollisions) {
  // The constructive reduction (C measures first) yields an ensemble whose
  // predicted AB collision rate matches direct computation on the GHZ
  // state.
  const auto rho = qcore::Density::from_state(qcore::StateVec::ghz(3));
  const auto basis = qcore::gates::real_basis(0.5);
  const auto bc = qcore::gates::real_basis(1.9);

  const auto direct = ecmp::joint_ab(rho, 0, basis, 1, basis);
  const double p_same_direct = direct[0][0] + direct[1][1];

  double p_same_reduced = 0.0;
  for (const auto& [p, pair_state] : ecmp::reduce_by_measuring(rho, 2, bc)) {
    const auto j = ecmp::joint_ab(pair_state, 0, basis, 1, basis);
    p_same_reduced += p * (j[0][0] + j[1][1]);
  }
  EXPECT_NEAR(p_same_direct, p_same_reduced, 1e-10);
}

TEST(Integration, ChshValueConsistentAcrossFourImplementations) {
  // Closed form == density-matrix strategy == sampled decision source ==
  // SDP-derived bias. The same number from four independent code paths.
  const double closed =
      games::chsh_win_probability(games::chsh_optimal_angles(), false, 1.0);
  const double simulated =
      games::chsh_quantum_strategy(games::chsh_optimal_angles())
          .value(games::chsh_game());
  const double sdp_win =
      (1.0 + games::XorGame::chsh().quantum_bias().bias) / 2.0;
  correlate::ChshSource source(1.0);
  const double source_win = source.win_probability(0, 0);

  EXPECT_NEAR(closed, simulated, 1e-10);
  EXPECT_NEAR(closed, sdp_win, 1e-6);
  EXPECT_NEAR(closed, source_win, 1e-10);
}

TEST(Integration, ProvisioningConsistentWithPairStats) {
  // Coordinator::provision and CorrelatedPair's online supply model agree
  // qualitatively on hit fraction for the same parameters.
  qnet::QnetConfig supply;
  supply.pair_rate_hz = 2e4;
  const double request_rate = 1e4;

  const auto report =
      core::Coordinator::provision(supply, 0.98, request_rate, 1.0, 31);

  core::PairConfig cfg;
  cfg.backend = core::Backend::kQuantum;
  cfg.visibility = 0.98;
  cfg.supply = supply;
  cfg.round_rate_hz = request_rate;
  cfg.seed = 32;
  core::CorrelatedPair pair(cfg);
  util::Rng rng(33);
  for (int i = 0; i < 20000; ++i) {
    (void)pair.decide(0, rng.bernoulli(0.5) ? 1 : 0);
    (void)pair.decide(1, rng.bernoulli(0.5) ? 1 : 0);
  }
  const double online_hit =
      static_cast<double>(pair.stats().quantum_rounds) /
      static_cast<double>(pair.stats().rounds);
  EXPECT_NEAR(online_hit, report.pair_hit_fraction, 0.12);
}

TEST(Integration, MixedStrategyClusterOrdering) {
  // Across the whole strategy zoo at one fixed load, the end-to-end delay
  // ordering follows the correlation quality ordering.
  lb::LbConfig cfg;
  cfg.num_balancers = 80;
  cfg.num_servers = 58;
  cfg.warmup_steps = 300;
  cfg.measure_steps = 2000;
  cfg.seed = 35;

  lb::PairedStrategy ind(std::make_unique<correlate::IndependentRandomSource>());
  lb::PairedStrategy cls(std::make_unique<correlate::ClassicalChshSource>());
  lb::PairedStrategy qun(std::make_unique<correlate::ChshSource>(1.0));
  lb::PairedStrategy omn(std::make_unique<correlate::OmniscientOracleSource>());

  const double d_ind = lb::run_lb_sim(cfg, ind).mean_delay;
  const double d_cls = lb::run_lb_sim(cfg, cls).mean_delay;
  const double d_qun = lb::run_lb_sim(cfg, qun).mean_delay;
  const double d_omn = lb::run_lb_sim(cfg, omn).mean_delay;

  // Quantum beats every honest classical option. Note d_cls is NOT
  // necessarily below d_ind: the game-optimal classical strategy never
  // co-locates a C-C pair, and pairing Cs is where the capacity is — the
  // game value does not map linearly to the system objective. (The
  // caveats bench explores this with MixedClassicalSource.)
  EXPECT_LT(d_qun, d_cls);
  EXPECT_LT(d_qun, d_ind);
  EXPECT_LE(d_omn, d_qun + 0.1);
}

}  // namespace
}  // namespace ftl

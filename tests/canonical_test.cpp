// Canonical-form and value-cache suite (ISSUE satellite: cache
// correctness is a soundness property — a wrong hit silently corrupts a
// figure, so the invariance and conservation laws are pinned by property
// tests, not spot checks).
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "games/affinity.hpp"
#include "games/canonical.hpp"
#include "games/generators.hpp"
#include "games/value_engine.hpp"
#include "games/xor_game.hpp"
#include "util/proptest.hpp"

namespace {

using ftl::games::AffinityGraph;
using ftl::games::CachedXorValue;
using ftl::games::canonical_form;
using ftl::games::CanonicalForm;
using ftl::games::CanonicalOptions;
using ftl::games::relabel_cost_matrix;
using ftl::games::XorGame;
using ftl::games::XorValueCache;
using ftl::proptest::CaseResult;
using ftl::proptest::for_all;
using ftl::proptest::Options;
using ftl::util::Rng;

using Matrix = std::vector<std::vector<double>>;

Options suite(const std::string& name, std::size_t cases) {
  Options o;
  o.name = name;
  o.cases = cases;
  return o;
}

struct Relabeling {
  std::vector<std::size_t> row_perm, col_perm;
  std::vector<int> row_sign, col_sign;
};

Relabeling random_relabeling(std::size_t nx, std::size_t ny, Rng& rng) {
  Relabeling r;
  r.row_perm.resize(nx);
  std::iota(r.row_perm.begin(), r.row_perm.end(), std::size_t{0});
  rng.shuffle(r.row_perm);
  r.col_perm.resize(ny);
  std::iota(r.col_perm.begin(), r.col_perm.end(), std::size_t{0});
  rng.shuffle(r.col_perm);
  for (std::size_t x = 0; x < nx; ++x) {
    r.row_sign.push_back(rng.bernoulli(0.5) ? 1 : -1);
  }
  for (std::size_t y = 0; y < ny; ++y) {
    r.col_sign.push_back(rng.bernoulli(0.5) ? 1 : -1);
  }
  return r;
}

struct InvarianceCase {
  Matrix m;
  Matrix relabeled;
};

InvarianceCase random_invariance_case(Rng& rng) {
  const std::size_t nx =
      2 + static_cast<std::size_t>(rng.uniform_int(std::uint64_t{4}));
  const std::size_t ny =
      2 + static_cast<std::size_t>(rng.uniform_int(std::uint64_t{4}));
  // Mix generic games with affinity games: the latter have repeated
  // magnitudes and exact zeros, which is where naive canonicalisers break.
  Matrix m;
  if (rng.bernoulli(0.5)) {
    m = ftl::games::random_xor_game(nx, ny, rng).cost_matrix();
  } else {
    const std::size_t n =
        3 + static_cast<std::size_t>(rng.uniform_int(std::uint64_t{5}));
    m = XorGame::from_affinity(AffinityGraph::random(n, rng.uniform(), rng),
                               rng.bernoulli(0.5))
            .cost_matrix();
  }
  const auto g = random_relabeling(m.size(), m.front().size(), rng);
  return {m, relabel_cost_matrix(m, g.row_perm, g.col_perm, g.row_sign,
                                 g.col_sign)};
}

TEST(Canonical, FormIsInvariantUnderRelabelingsAndSignFlips) {
  const auto r = for_all(
      suite("canonical-invariance", 200), random_invariance_case,
      [](const InvarianceCase& c) {
        const CanonicalForm a = canonical_form(c.m);
        const CanonicalForm b = canonical_form(c.relabeled);
        // The cap decision is label-independent: both labelings
        // canonicalise, or both bail.
        if (a.complete != b.complete) {
          return CaseResult::fail("bail decision depends on the labeling");
        }
        if (!a.complete) return CaseResult::pass();
        if (a.key() != b.key()) {
          return CaseResult::fail(
              "equivalent games canonicalise differently");
        }
        if (a.nodes != b.nodes) {
          return CaseResult::fail("node count depends on the labeling");
        }
        return CaseResult::pass();
      });
  ASSERT_TRUE(r.ok) << r.message;
}

TEST(Canonical, FormIsIdempotent) {
  const auto r = for_all(
      suite("canonical-idempotent", 120),
      [](Rng& rng) { return random_invariance_case(rng).m; },
      [](const Matrix& m) {
        const CanonicalForm a = canonical_form(m);
        if (!a.complete) return CaseResult::pass();
        Matrix as_matrix(a.nx, std::vector<double>(a.ny, 0.0));
        for (std::size_t x = 0; x < a.nx; ++x) {
          for (std::size_t y = 0; y < a.ny; ++y) {
            as_matrix[x][y] = a.matrix[x * a.ny + y];
          }
        }
        const CanonicalForm b = canonical_form(as_matrix);
        if (!b.complete || b.matrix != a.matrix) {
          return CaseResult::fail("canonical form is not a fixed point");
        }
        return CaseResult::pass();
      });
  ASSERT_TRUE(r.ok) << r.message;
}

TEST(Canonical, NegativeZeroEntriesNormalise) {
  // Zero-probability inputs with f = 1 produce literal -0.0 cost entries;
  // they must serialise identically to +0.0.
  const Matrix pos{{0.5, 0.0}, {0.0, 0.5}};
  const Matrix neg{{0.5, -0.0}, {-0.0, 0.5}};
  EXPECT_EQ(canonical_form(pos).key(), canonical_form(neg).key());
}

TEST(Canonical, HighlySymmetricMatricesBailOutConsistently) {
  // The complete 12-vertex affinity game is automorphism-rich enough to
  // blow past the node cap; the decision must not depend on the labeling.
  Rng rng(7);
  const Matrix k12 =
      XorGame::from_affinity(AffinityGraph::random(12, 1.0, rng), false)
          .cost_matrix();
  const CanonicalForm a = canonical_form(k12);
  EXPECT_FALSE(a.complete);
  EXPECT_TRUE(a.key().empty());

  const auto g = random_relabeling(12, 12, rng);
  const CanonicalForm b = canonical_form(
      relabel_cost_matrix(k12, g.row_perm, g.col_perm, g.row_sign,
                          g.col_sign));
  EXPECT_FALSE(b.complete);

  // The cap is the only thing in the way: the complete *8*-vertex game
  // overruns the default cap too (~110k placements) but canonicalises —
  // identically across labelings — once the cap is raised. (K12 is out of
  // reach at any cap: its tie tree is factorially large.)
  const Matrix k8 =
      XorGame::from_affinity(AffinityGraph::random(8, 1.0, rng), false)
          .cost_matrix();
  EXPECT_FALSE(canonical_form(k8).complete);
  CanonicalOptions roomy;
  roomy.node_cap = 500'000;
  const CanonicalForm c8 = canonical_form(k8, roomy);
  ASSERT_TRUE(c8.complete);
  const auto g8 = random_relabeling(8, 8, rng);
  const CanonicalForm c8r = canonical_form(
      relabel_cost_matrix(k8, g8.row_perm, g8.col_perm, g8.row_sign,
                          g8.col_sign),
      roomy);
  ASSERT_TRUE(c8r.complete);
  EXPECT_EQ(c8.key(), c8r.key());
}

TEST(CanonicalCache, EquivalentGamesHitAfterOneInsert) {
  const auto r = for_all(
      suite("cache-equivalent-hit", 120), random_invariance_case,
      [](const InvarianceCase& c) {
        XorValueCache cache;
        if (cache.lookup(c.m).has_value()) {
          return CaseResult::fail("hit in an empty cache");
        }
        const CachedXorValue v{0.25, 0.5, true};
        cache.insert(c.m, v);

        // Byte-identical repeat: exact hit.
        const auto exact = cache.lookup(c.m);
        if (!exact.has_value() || exact->classical_bias != v.classical_bias) {
          return CaseResult::fail("exact lookup missed after insert");
        }

        // Symmetry-equivalent relabeling: canonical hit — unless the game
        // bails out of canonicalisation, in which case a miss is the only
        // sound answer (never a wrong hit).
        const bool bails = !canonical_form(c.m).complete;
        const auto equiv = cache.lookup(c.relabeled);
        if (bails) {
          const bool identical = c.relabeled == c.m;
          if (equiv.has_value() != identical) {
            return CaseResult::fail("bailed game hit via canonical key");
          }
        } else if (!equiv.has_value() ||
                   equiv->quantum_bias != v.quantum_bias) {
          return CaseResult::fail("equivalent game missed");
        }

        // Counter conservation.
        const auto& s = cache.stats();
        if (s.lookups != s.hits_exact + s.hits_canonical + s.misses) {
          return CaseResult::fail("lookups != hits + misses");
        }
        if (s.insertions != 1) {
          return CaseResult::fail("insertions != 1");
        }
        return CaseResult::pass();
      });
  ASSERT_TRUE(r.ok) << r.message;
}

TEST(CanonicalCache, ConservationHoldsAcrossARandomWorkload) {
  Rng rng(2026);
  XorValueCache cache;
  std::uint64_t expected_lookups = 0;
  std::uint64_t expected_insertions = 0;
  for (int i = 0; i < 200; ++i) {
    const auto c = random_invariance_case(rng);
    const Matrix& m = rng.bernoulli(0.5) ? c.m : c.relabeled;
    ++expected_lookups;
    if (!cache.lookup(m).has_value()) {
      cache.insert(m, CachedXorValue{0.0, 0.0, false});
      ++expected_insertions;
    }
  }
  const auto& s = cache.stats();
  EXPECT_EQ(s.lookups, expected_lookups);
  EXPECT_EQ(s.insertions, expected_insertions);
  EXPECT_EQ(s.lookups, s.hits_exact + s.hits_canonical + s.misses);
  EXPECT_EQ(s.insertions, s.misses);
  EXPECT_GT(s.hits_exact + s.hits_canonical, 0u);
}

// End-to-end through the engine: solving a game once and then presenting a
// relabeled copy must return identical values without re-solving.
TEST(CanonicalCache, EngineServesEquivalentGamesFromCache) {
  ftl::games::XorValueOptions opts;
  opts.use_closed_form = false;  // force the cache + solver path
  opts.sdp.restarts = 3;
  ftl::games::XorValueEngine engine(opts);

  Rng rng(11);
  const auto game = ftl::games::random_xor_game(4, 4, rng);
  const Matrix m = game.cost_matrix();
  const auto first = engine.evaluate(m);
  EXPECT_FALSE(first.from_cache);

  const auto g = random_relabeling(4, 4, rng);
  const Matrix relabeled =
      relabel_cost_matrix(m, g.row_perm, g.col_perm, g.row_sign, g.col_sign);
  const auto second = engine.evaluate(relabeled);
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(second.classical_bias, first.classical_bias);
  EXPECT_EQ(second.quantum_bias, first.quantum_bias);
  EXPECT_EQ(engine.stats().games_solved, 1u);
  EXPECT_EQ(engine.stats().cache_hits, 1u);
  EXPECT_EQ(engine.cache_stats().hits_canonical, 1u);
}

}  // namespace

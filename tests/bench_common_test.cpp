// bench::parse_args: flag extraction, argv stripping, and the hardened
// flag/value pairing (negative numbers are values; unrelated dash tokens
// are left for google-benchmark).
#include "bench_common.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace ftl::bench {
namespace {

/// Mutable argv for parse_args (which rewrites it in place).
class ArgvFixture {
 public:
  explicit ArgvFixture(std::initializer_list<const char*> args) {
    for (const char* a : args) storage_.emplace_back(a);
    for (std::string& s : storage_) argv_.push_back(s.data());
    argc_ = static_cast<int>(argv_.size());
  }

  int& argc() { return argc_; }
  char** argv() { return argv_.data(); }

  /// argv contents after parse_args rewrote it.
  std::vector<std::string> remaining() const {
    return {argv_.begin(), argv_.begin() + argc_};
  }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> argv_;
  int argc_ = 0;
};

TEST(BenchParseArgs, DefaultsWhenNoFlags) {
  ArgvFixture fx({"bench", "--benchmark_filter=BM_Foo"});
  const Options opts = parse_args(fx.argc(), fx.argv(), 7);
  EXPECT_EQ(opts.seed, 7u);
  EXPECT_TRUE(opts.metrics_out.empty());
  EXPECT_TRUE(opts.trace_out.empty());
  EXPECT_TRUE(opts.prom_out.empty());
  EXPECT_EQ(opts.metrics_every_ms, 0u);
  EXPECT_EQ(fx.remaining(),
            (std::vector<std::string>{"bench", "--benchmark_filter=BM_Foo"}));
}

TEST(BenchParseArgs, StripsAllOwnedFlags) {
  ArgvFixture fx({"bench", "--seed", "123", "--metrics-out=m.json",
                  "--metrics-every=50", "--prom-out=m.prom",
                  "--trace-out", "t.json", "--profile-out=p.folded",
                  "--profile-hz", "997", "--profile-format=speedscope",
                  "--benchmark_filter=X"});
  const Options opts = parse_args(fx.argc(), fx.argv(), 7);
  EXPECT_EQ(opts.seed, 123u);
  EXPECT_EQ(opts.metrics_out, "m.json");
  EXPECT_EQ(opts.metrics_every_ms, 50u);
  EXPECT_EQ(opts.prom_out, "m.prom");
  EXPECT_EQ(opts.trace_out, "t.json");
  EXPECT_EQ(opts.profile_out, "p.folded");
  EXPECT_EQ(opts.profile_hz, 997);
  EXPECT_EQ(opts.profile_format, "speedscope");
  EXPECT_EQ(fx.remaining(),
            (std::vector<std::string>{"bench", "--benchmark_filter=X"}));
}

TEST(BenchParseArgs, ProfileDefaults) {
  ArgvFixture fx({"bench"});
  const Options opts = parse_args(fx.argc(), fx.argv(), 7);
  EXPECT_TRUE(opts.profile_out.empty());
  EXPECT_EQ(opts.profile_hz, 99);
  EXPECT_EQ(opts.profile_format, "folded");
}

TEST(BenchParseArgs, UnknownProfileFormatDiesLoudly) {
  // A silent typo here would drop the profile the user asked for.
  ArgvFixture fx({"bench", "--profile-out=p", "--profile-format=pprof"});
  EXPECT_DEATH((void)parse_args(fx.argc(), fx.argv(), 7),
               "unknown --profile-format");
}

TEST(BenchParseArgs, NegativeNumberValueIsConsumedWithItsFlag) {
  // A separate value token beginning with '-' must be stripped together
  // with the flag, not leaked to benchmark::Initialize (which would treat
  // it as an unknown flag and abort).
  ArgvFixture fx({"bench", "--seed", "-5", "--benchmark_filter=X"});
  const Options opts = parse_args(fx.argc(), fx.argv(), 7);
  EXPECT_EQ(opts.seed, static_cast<std::uint64_t>(-5));
  EXPECT_EQ(fx.remaining(),
            (std::vector<std::string>{"bench", "--benchmark_filter=X"}));
}

TEST(BenchParseArgs, DashTokenThatIsNotANumberIsNotSwallowed) {
  // "-v" is not a value; --seed falls back and "-v" stays in argv.
  ArgvFixture fx({"bench", "--seed", "-v"});
  const Options opts = parse_args(fx.argc(), fx.argv(), 7);
  EXPECT_EQ(opts.seed, 7u);
  EXPECT_EQ(fx.remaining(), (std::vector<std::string>{"bench", "-v"}));
}

TEST(BenchParseArgs, FlagFollowedByFlagDoesNotConsume) {
  ArgvFixture fx({"bench", "--seed", "--metrics-out=m.json"});
  const Options opts = parse_args(fx.argc(), fx.argv(), 7);
  EXPECT_EQ(opts.seed, 7u);  // bare --seed has no value: fallback
  EXPECT_EQ(opts.metrics_out, "m.json");
  EXPECT_EQ(fx.remaining(), (std::vector<std::string>{"bench"}));
}

TEST(BenchParseArgs, SeedAtEndOfArgv) {
  ArgvFixture fx({"bench", "--seed"});
  const Options opts = parse_args(fx.argc(), fx.argv(), 9);
  EXPECT_EQ(opts.seed, 9u);
  EXPECT_EQ(fx.remaining(), (std::vector<std::string>{"bench"}));
}

TEST(BenchParseArgs, ExtractSeedShorthand) {
  ArgvFixture fx({"bench", "--seed", "31"});
  EXPECT_EQ(extract_seed(fx.argc(), fx.argv(), 7), 31u);
  EXPECT_EQ(fx.remaining(), (std::vector<std::string>{"bench"}));
}

TEST(BenchParseArgs, EqualsFormNegativeSeed) {
  ArgvFixture fx({"bench", "--seed=-1"});
  const Options opts = parse_args(fx.argc(), fx.argv(), 7);
  EXPECT_EQ(opts.seed, static_cast<std::uint64_t>(-1));
  EXPECT_EQ(fx.remaining(), (std::vector<std::string>{"bench"}));
}

TEST(BenchParseArgs, GarbageSeedDiesLoudly) {
  // A mistyped `--seed 42x` must abort, not silently truncate: a bench run
  // recorded under the wrong seed poisons the trajectory history.
  ArgvFixture fx({"bench", "--seed", "42x"});
  EXPECT_DEATH((void)parse_args(fx.argc(), fx.argv(), 7),
               "invalid value for flag --seed");
  ArgvFixture fx2({"bench", "--metrics-every=soon"});
  EXPECT_DEATH((void)parse_args(fx2.argc(), fx2.argv(), 7),
               "invalid value for flag --metrics-every");
}

TEST(ObsSessionSeries, SeriesPathDerivation) {
  Options with_metrics;
  with_metrics.metrics_out = "out/report.json";
  EXPECT_EQ(ObsSession::series_path_for("bench_x", with_metrics),
            "out/report.json.series");
  EXPECT_EQ(ObsSession::series_path_for("bench_x", Options{}),
            "bench_x.series.jsonl");
}

}  // namespace
}  // namespace ftl::bench

#include "lb/server.hpp"

#include <gtest/gtest.h>

namespace ftl::lb {
namespace {

Request make(TaskType t, std::size_t balancer = 0, long step = 0) {
  return Request{t, balancer, step};
}

TEST(Server, EmptyServesNothing) {
  Server s;
  EXPECT_TRUE(s.step(ServicePolicy::kPaperCFirst).empty());
  EXPECT_EQ(s.queue_length(), 0u);
}

TEST(Server, QueuedOfCounts) {
  Server s;
  s.enqueue(make(TaskType::kC));
  s.enqueue(make(TaskType::kE));
  s.enqueue(make(TaskType::kC));
  EXPECT_EQ(s.queued_of(TaskType::kC), 2u);
  EXPECT_EQ(s.queued_of(TaskType::kE), 1u);
  EXPECT_EQ(s.queue_length(), 3u);
}

TEST(PaperCFirst, ServesTwoCsTogether) {
  Server s;
  s.enqueue(make(TaskType::kC, 1));
  s.enqueue(make(TaskType::kC, 2));
  s.enqueue(make(TaskType::kC, 3));
  const auto served = s.step(ServicePolicy::kPaperCFirst);
  ASSERT_EQ(served.size(), 2u);
  EXPECT_EQ(served[0].balancer, 1u);
  EXPECT_EQ(served[1].balancer, 2u);
  EXPECT_EQ(s.queue_length(), 1u);
}

TEST(PaperCFirst, SingleCServedAlone) {
  Server s;
  s.enqueue(make(TaskType::kC));
  const auto served = s.step(ServicePolicy::kPaperCFirst);
  EXPECT_EQ(served.size(), 1u);
  EXPECT_EQ(served[0].type, TaskType::kC);
}

TEST(PaperCFirst, CPairSkipsInterveningE) {
  // C requests pair up even across an E in between; the E waits.
  Server s;
  s.enqueue(make(TaskType::kC, 1));
  s.enqueue(make(TaskType::kE, 2));
  s.enqueue(make(TaskType::kC, 3));
  const auto served = s.step(ServicePolicy::kPaperCFirst);
  ASSERT_EQ(served.size(), 2u);
  EXPECT_EQ(served[0].balancer, 1u);
  EXPECT_EQ(served[1].balancer, 3u);
  EXPECT_EQ(s.queued_of(TaskType::kE), 1u);
}

TEST(PaperCFirst, EServedOnlyWhenNoC) {
  Server s;
  s.enqueue(make(TaskType::kE, 1));
  s.enqueue(make(TaskType::kE, 2));
  const auto served = s.step(ServicePolicy::kPaperCFirst);
  ASSERT_EQ(served.size(), 1u);  // E is exclusive: one per step
  EXPECT_EQ(served[0].balancer, 1u);
  EXPECT_EQ(s.queue_length(), 1u);
}

TEST(PaperCFirst, CPriorityStarvesE) {
  Server s;
  s.enqueue(make(TaskType::kE, 9));
  s.enqueue(make(TaskType::kC, 1));
  const auto served = s.step(ServicePolicy::kPaperCFirst);
  ASSERT_EQ(served.size(), 1u);
  EXPECT_EQ(served[0].type, TaskType::kC);
}

TEST(FifoPair, HeadEBlocksCs) {
  Server s;
  s.enqueue(make(TaskType::kE, 1));
  s.enqueue(make(TaskType::kC, 2));
  s.enqueue(make(TaskType::kC, 3));
  const auto served = s.step(ServicePolicy::kFifoPair);
  ASSERT_EQ(served.size(), 1u);
  EXPECT_EQ(served[0].balancer, 1u);
}

TEST(FifoPair, HeadCPairsWithLaterC) {
  Server s;
  s.enqueue(make(TaskType::kC, 1));
  s.enqueue(make(TaskType::kE, 2));
  s.enqueue(make(TaskType::kC, 3));
  const auto served = s.step(ServicePolicy::kFifoPair);
  ASSERT_EQ(served.size(), 2u);
  EXPECT_EQ(served[0].balancer, 1u);
  EXPECT_EQ(served[1].balancer, 3u);
}

TEST(EFirst, PrefersE) {
  Server s;
  s.enqueue(make(TaskType::kC, 1));
  s.enqueue(make(TaskType::kE, 2));
  const auto served = s.step(ServicePolicy::kEFirst);
  ASSERT_EQ(served.size(), 1u);
  EXPECT_EQ(served[0].type, TaskType::kE);
}

TEST(EFirst, PairsCsWhenNoE) {
  Server s;
  s.enqueue(make(TaskType::kC, 1));
  s.enqueue(make(TaskType::kC, 2));
  EXPECT_EQ(s.step(ServicePolicy::kEFirst).size(), 2u);
}

TEST(Server, DrainsCompletely) {
  for (auto policy : {ServicePolicy::kPaperCFirst, ServicePolicy::kFifoPair,
                      ServicePolicy::kEFirst}) {
    Server s;
    for (int i = 0; i < 10; ++i) {
      s.enqueue(make(i % 3 == 0 ? TaskType::kE : TaskType::kC));
    }
    int steps = 0;
    while (s.queue_length() > 0 && steps < 100) {
      ASSERT_FALSE(s.step(policy).empty()) << to_string(policy);
      ++steps;
    }
    EXPECT_EQ(s.queue_length(), 0u) << to_string(policy);
    EXPECT_LE(steps, 10);
  }
}

TEST(Server, ToStringNames) {
  EXPECT_STREQ(to_string(ServicePolicy::kPaperCFirst), "paper-c-first");
  EXPECT_STREQ(to_string(ServicePolicy::kFifoPair), "fifo-pair");
  EXPECT_STREQ(to_string(ServicePolicy::kEFirst), "e-first");
}

}  // namespace
}  // namespace ftl::lb

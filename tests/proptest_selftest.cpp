// Self-test of the ftl_proptest harness: the machinery that guards every
// physics invariant must itself be tested — a harness that cannot fail, or
// whose printed seeds do not replay, would silently void all prop suites.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "util/proptest.hpp"
#include "util/rng.hpp"

namespace {

using ftl::proptest::CaseResult;
using ftl::proptest::for_all;
using ftl::proptest::Options;
using ftl::util::Rng;

Options opts_named(const std::string& name, std::size_t cases = 200) {
  Options o;
  o.name = name;
  o.cases = cases;
  return o;
}

TEST(ProptestSelftest, PassingPropertyRunsAllCases) {
  const auto r = for_all(
      opts_named("tautology"), [](Rng& rng) { return rng.uniform(); },
      [](const double& x) { return x >= 0.0 && x < 1.0; });
  ASSERT_TRUE(r.ok) << r.message;
  EXPECT_EQ(r.cases_run, 200u);
  EXPECT_NE(r.message.find("200 cases passed"), std::string::npos);
}

TEST(ProptestSelftest, FailureReportsReplayableSeed) {
  // Fails on roughly half of all cases; the report must carry a seed that
  // deterministically regenerates a failing input.
  auto gen = [](Rng& rng) { return rng.uniform(); };
  auto prop = [](const double& x) {
    return x < 0.5 ? CaseResult::pass()
                   : CaseResult::fail("x = " + std::to_string(x));
  };
  const auto r = for_all(opts_named("half-fails"), gen, prop);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.message.find("seed: "), std::string::npos) << r.message;
  EXPECT_NE(r.message.find("to replay: FTL_PROPTEST_SEED="),
            std::string::npos)
      << r.message;
  // The harness replays the seed before reporting and must have confirmed
  // the failure is deterministic.
  EXPECT_NE(r.message.find("reproduced (deterministic repro)"),
            std::string::npos)
      << r.message;

  // And the printed seed does regenerate a failing input here too.
  const std::uint64_t seed = ftl::proptest::parse_reported_seed(r.message);
  ASSERT_NE(seed, 0u);
  Rng replay(seed);
  EXPECT_GE(gen(replay), 0.5);
}

TEST(ProptestSelftest, EnvSeedRunsExactlyTheReportedCase) {
  auto gen = [](Rng& rng) { return rng.uniform(); };
  auto prop = [](const double& x) { return x < 0.5; };
  const auto first = for_all(opts_named("env-replay"), gen, prop);
  ASSERT_FALSE(first.ok);
  const std::uint64_t seed = ftl::proptest::parse_reported_seed(first.message);

  ASSERT_EQ(setenv("FTL_PROPTEST_SEED", std::to_string(seed).c_str(), 1), 0);
  const auto replay = for_all(opts_named("env-replay"), gen, prop);
  unsetenv("FTL_PROPTEST_SEED");

  ASSERT_FALSE(replay.ok) << "replay must reproduce the failure";
  EXPECT_EQ(replay.cases_run, 1u);
  EXPECT_EQ(ftl::proptest::parse_reported_seed(replay.message), seed);
}

TEST(ProptestSelftest, ShrinkingHalvesTowardMinimalCounterexample) {
  // Property fails for x > 0.25; generation starts in [1, 8], so only
  // halving can bring the reported counterexample near the boundary.
  auto gen = [](Rng& rng) { return rng.uniform(1.0, 8.0); };
  auto prop = [](const double& x) {
    return x <= 0.25 ? CaseResult::pass()
                     : CaseResult::fail(std::to_string(x));
  };
  const auto r =
      for_all(opts_named("shrinks"), gen, prop, ftl::proptest::shrink_double);
  ASSERT_FALSE(r.ok);
  const auto note_pos = r.message.find("note: ");
  ASSERT_NE(note_pos, std::string::npos);
  const double final_x = std::strtod(r.message.c_str() + note_pos + 6, nullptr);
  // Any failing x > 0.5 would have been halved further (x/2 still fails
  // until x <= 0.5), so the shrunk counterexample sits in (0.25, 0.5].
  EXPECT_GT(final_x, 0.25);
  EXPECT_LE(final_x, 0.5);
  EXPECT_EQ(r.message.find("shrink steps: 0"), std::string::npos)
      << "expected at least one accepted shrink step\n"
      << r.message;
}

TEST(ProptestSelftest, CaseSeedsAreDecorrelatedAcrossIndices) {
  const std::uint64_t master = 42;
  const std::uint64_t a = ftl::proptest::case_seed(master, 0);
  const std::uint64_t b = ftl::proptest::case_seed(master, 1);
  EXPECT_NE(a, b);
  EXPECT_NE(ftl::proptest::case_seed(master + 1, 0), a);
}

TEST(ProptestSelftest, VectorShrinkerProposesZeroingAndHalving) {
  const std::vector<double> v{2.0, 0.0, 4.0};
  const auto candidates = ftl::proptest::shrink_real_vector(v);
  ASSERT_FALSE(candidates.empty());
  EXPECT_EQ(candidates.front(), (std::vector<double>{0.0, 0.0, 0.0}));
  bool has_halved = false;
  for (const auto& c : candidates) {
    has_halved |= c == std::vector<double>{1.0, 0.0, 2.0};
  }
  EXPECT_TRUE(has_halved);
}

}  // namespace

#include "qcore/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "qcore/gates.hpp"

namespace ftl::qcore {
namespace {

using gates::CNOT;
using gates::CZ;
using gates::H;
using gates::I;
using gates::Rx;
using gates::Ry;
using gates::Rz;
using gates::S;
using gates::SWAP;
using gates::T;
using gates::X;
using gates::Y;
using gates::Z;

TEST(CMat, ZeroConstruction) {
  CMat m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.at(1, 2), (Cx{0.0, 0.0}));
}

TEST(CMat, InitializerList) {
  CMat m{{Cx{1, 0}, Cx{2, 0}}, {Cx{3, 0}, Cx{4, 0}}};
  EXPECT_EQ(m.at(0, 1).real(), 2.0);
  EXPECT_EQ(m.at(1, 0).real(), 3.0);
}

TEST(CMat, IdentityTimesAnything) {
  const CMat a{{Cx{1, 2}, Cx{3, -1}}, {Cx{0, 1}, Cx{2, 2}}};
  EXPECT_TRUE((CMat::identity(2) * a).approx_equal(a));
  EXPECT_TRUE((a * CMat::identity(2)).approx_equal(a));
}

TEST(CMat, ProductAgainstHandComputed) {
  const CMat a{{Cx{1, 0}, Cx{2, 0}}, {Cx{3, 0}, Cx{4, 0}}};
  const CMat b{{Cx{0, 1}, Cx{1, 0}}, {Cx{1, 0}, Cx{0, -1}}};
  const CMat ab = a * b;
  EXPECT_EQ(ab.at(0, 0), (Cx{2, 1}));
  EXPECT_EQ(ab.at(0, 1), (Cx{1, -2}));
  EXPECT_EQ(ab.at(1, 0), (Cx{4, 3}));
  EXPECT_EQ(ab.at(1, 1), (Cx{3, -4}));
}

TEST(CMat, AdjointConjugatesAndTransposes) {
  const CMat a{{Cx{1, 2}, Cx{3, 4}}, {Cx{5, 6}, Cx{7, 8}}};
  const CMat ad = a.adjoint();
  EXPECT_EQ(ad.at(0, 1), (Cx{5, -6}));
  EXPECT_EQ(ad.at(1, 0), (Cx{3, -4}));
  EXPECT_TRUE(ad.adjoint().approx_equal(a));
}

TEST(CMat, TraceAndNorm) {
  const CMat a{{Cx{1, 1}, Cx{0, 0}}, {Cx{0, 0}, Cx{2, -1}}};
  EXPECT_EQ(a.trace(), (Cx{3, 0}));
  EXPECT_NEAR(a.frobenius_norm(), std::sqrt(2.0 + 5.0), 1e-12);
}

TEST(CMat, KronDimensionsAndValues) {
  const CMat k = X().kron(Z());
  EXPECT_EQ(k.rows(), 4u);
  // X (x) Z = [[0, Z], [Z, 0]].
  EXPECT_EQ(k.at(0, 2), (Cx{1, 0}));
  EXPECT_EQ(k.at(1, 3), (Cx{-1, 0}));
  EXPECT_EQ(k.at(2, 0), (Cx{1, 0}));
  EXPECT_EQ(k.at(3, 1), (Cx{-1, 0}));
  EXPECT_EQ(k.at(0, 0), (Cx{0, 0}));
}

TEST(CMat, KronMixedProductProperty) {
  // (A (x) B)(C (x) D) = AC (x) BD.
  const CMat a = H();
  const CMat b = S();
  const CMat c = X();
  const CMat d = Ry(0.7);
  EXPECT_TRUE(
      (a.kron(b) * c.kron(d)).approx_equal((a * c).kron(b * d), 1e-10));
}

TEST(CMat, OuterProduct) {
  const std::vector<Cx> u{Cx{1, 0}, Cx{0, 1}};
  const std::vector<Cx> v{Cx{0, 0}, Cx{1, 0}};
  const CMat o = CMat::outer(u, v);
  EXPECT_EQ(o.at(0, 1), (Cx{1, 0}));
  EXPECT_EQ(o.at(1, 1), (Cx{0, 1}));
  EXPECT_EQ(o.at(0, 0), (Cx{0, 0}));
}

TEST(CMat, ApplyMatchesProduct) {
  const CMat a = H();
  const std::vector<Cx> v{Cx{1, 0}, Cx{0, 0}};
  const auto out = a.apply(v);
  EXPECT_NEAR(out[0].real(), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(out[1].real(), 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(Gates, AllUnitary) {
  for (const CMat& g : {I(), X(), Y(), Z(), H(), S(), T(), Ry(0.3), Rz(1.1),
                        Rx(2.2)}) {
    EXPECT_TRUE(g.is_unitary(1e-10));
  }
  for (const CMat& g : {CNOT(), CZ(), SWAP()}) {
    EXPECT_TRUE(g.is_unitary(1e-10));
  }
}

TEST(Gates, PauliAlgebra) {
  // XY = iZ, YZ = iX, ZX = iY.
  EXPECT_TRUE((X() * Y()).approx_equal(Z() * Cx{0, 1}, 1e-12));
  EXPECT_TRUE((Y() * Z()).approx_equal(X() * Cx{0, 1}, 1e-12));
  EXPECT_TRUE((Z() * X()).approx_equal(Y() * Cx{0, 1}, 1e-12));
}

TEST(Gates, PaulisSquareToIdentity) {
  for (const CMat& g : {X(), Y(), Z(), H()}) {
    EXPECT_TRUE((g * g).approx_equal(CMat::identity(2), 1e-12));
  }
}

TEST(Gates, HermitianChecks) {
  EXPECT_TRUE(X().is_hermitian());
  EXPECT_TRUE(Y().is_hermitian());
  EXPECT_TRUE(Z().is_hermitian());
  EXPECT_TRUE(H().is_hermitian());
  EXPECT_FALSE(S().is_hermitian());
}

TEST(Gates, RotationComposition) {
  // Ry(a) Ry(b) = Ry(a + b).
  EXPECT_TRUE((Ry(0.4) * Ry(0.9)).approx_equal(Ry(1.3), 1e-12));
  EXPECT_TRUE((Rz(0.4) * Rz(0.9)).approx_equal(Rz(1.3), 1e-12));
}

TEST(Gates, RealBasisColumnsOrthonormal) {
  for (double theta : {0.0, 0.3, M_PI / 8.0, M_PI / 4.0, 2.0}) {
    const CMat b = gates::real_basis(theta);
    EXPECT_TRUE(b.is_unitary(1e-12));
    // Column 0 is cos|0> + sin|1>.
    EXPECT_NEAR(b.at(0, 0).real(), std::cos(theta), 1e-12);
    EXPECT_NEAR(b.at(1, 0).real(), std::sin(theta), 1e-12);
  }
}

TEST(Vectors, InnerIsConjugateLinear) {
  const std::vector<Cx> u{Cx{0, 1}, Cx{0, 0}};
  const std::vector<Cx> v{Cx{1, 0}, Cx{0, 0}};
  // <u|v> = conj(i) * 1 = -i.
  EXPECT_EQ(inner(u, v), (Cx{0, -1}));
}

TEST(Vectors, NormalizeMakesUnit) {
  std::vector<Cx> v{Cx{3, 0}, Cx{0, 4}};
  normalize(v);
  EXPECT_NEAR(norm(v), 1.0, 1e-12);
  EXPECT_NEAR(v[0].real(), 0.6, 1e-12);
}

TEST(Vectors, KronOfKets) {
  const std::vector<Cx> zero{Cx{1, 0}, Cx{0, 0}};
  const std::vector<Cx> one{Cx{0, 0}, Cx{1, 0}};
  const auto zo = kron(zero, one);
  ASSERT_EQ(zo.size(), 4u);
  EXPECT_EQ(zo[1], (Cx{1, 0}));  // |01> is index 1
}

TEST(CMat, ScalarOps) {
  CMat a = CMat::identity(2);
  a *= Cx{2.0, 0.0};
  EXPECT_EQ(a.at(0, 0), (Cx{2, 0}));
  const CMat b = a - CMat::identity(2);
  EXPECT_EQ(b.at(1, 1), (Cx{1, 0}));
  const CMat c = Cx{0.0, 1.0} * CMat::identity(2);
  EXPECT_EQ(c.at(0, 0), (Cx{0, 1}));
}

}  // namespace
}  // namespace ftl::qcore

// Closed-form oracle suite (ISSUE satellite): the odd-cycle and
// unfrustrated-game formulas in games/generators are both a fast path in
// the value engine and an *oracle* for the solvers — every formula is
// checked here against the exhaustive classical search, the bnb solver,
// and the Tsirelson SDP. The heavier odd-n SDP checks live in
// closed_form_slow_test.cpp (ctest label: slow).
#include <gtest/gtest.h>

#include <cmath>

#include "games/affinity.hpp"
#include "games/bnb.hpp"
#include "games/generators.hpp"
#include "games/value_engine.hpp"
#include "games/xor_game.hpp"
#include "util/proptest.hpp"

namespace {

using ftl::games::AffinityGraph;
using ftl::games::classical_value_bnb;
using ftl::games::odd_cycle_classical_bias;
using ftl::games::odd_cycle_game;
using ftl::games::odd_cycle_quantum_bias;
using ftl::games::unfrustrated_bias;
using ftl::games::XorGame;
using ftl::proptest::CaseResult;
using ftl::proptest::for_all;
using ftl::util::Rng;

TEST(ClosedForm, OddCycleClassicalMatchesExhaustiveAndBnb) {
  for (std::size_t n : {3u, 5u, 7u, 9u, 11u}) {
    const XorGame game = odd_cycle_game(n);
    const double exhaustive = game.classical_bias();
    EXPECT_NEAR(exhaustive, odd_cycle_classical_bias(n), 1e-12)
        << "n = " << n;
    EXPECT_EQ(classical_value_bnb(game).bias, exhaustive) << "n = " << n;
  }
}

TEST(ClosedForm, OddCycleQuantumMatchesTsirelsonSmall) {
  ftl::sdp::GramOptions opts;
  opts.seed = 99;
  for (std::size_t n : {3u, 5u}) {
    const auto q = odd_cycle_game(n).quantum_bias(opts);
    EXPECT_TRUE(q.converged);
    EXPECT_NEAR(q.bias, odd_cycle_quantum_bias(n), 1e-6) << "n = " << n;
  }
}

TEST(ClosedForm, OddCycleFormulasAreTheCHTWValues) {
  // Spot-check the formulas against their independent derivations:
  // classical value 1 - 1/(2n) and quantum value cos^2(pi/(4n)),
  // converted to biases (bias = 2 * value - 1).
  for (std::size_t n : {3u, 7u, 11u}) {
    const double nn = static_cast<double>(n);
    EXPECT_NEAR(odd_cycle_classical_bias(n),
                2.0 * (1.0 - 1.0 / (2.0 * nn)) - 1.0, 1e-15);
    const double cosq = std::cos(M_PI / (4.0 * nn));
    EXPECT_NEAR(odd_cycle_quantum_bias(n), 2.0 * cosq * cosq - 1.0, 1e-15);
  }
}

TEST(ClosedForm, UnfrustratedDetectsColocateOnlyAffinityGames) {
  Rng rng(5);
  for (std::size_t n : {4u, 8u, 12u}) {
    const XorGame game =
        XorGame::from_affinity(AffinityGraph::random(n, 0.0, rng), false);
    const auto b = unfrustrated_bias(game.cost_matrix());
    ASSERT_TRUE(b.has_value()) << "n = " << n;
    // All-Colocate games are won outright: bias = total input mass = 1.
    EXPECT_NEAR(*b, 1.0, 1e-12);
    if (n <= 12) {
      EXPECT_NEAR(*b, classical_value_bnb(game).bias, 1e-12);
    }
  }
}

TEST(ClosedForm, FrustratedGamesReturnNullopt) {
  EXPECT_FALSE(unfrustrated_bias(XorGame::chsh().cost_matrix()).has_value());
  EXPECT_FALSE(
      unfrustrated_bias(odd_cycle_game(3).cost_matrix()).has_value());
}

TEST(ClosedForm, RandomSignAlignedGamesAreUnfrustrated) {
  const auto r = for_all(
      ftl::proptest::Options{"unfrustrated-aligned", 150},
      [](Rng& rng) {
        const std::size_t nx =
            2 + static_cast<std::size_t>(rng.uniform_int(std::uint64_t{5}));
        const std::size_t ny =
            2 + static_cast<std::size_t>(rng.uniform_int(std::uint64_t{5}));
        auto m = ftl::games::random_xor_game(nx, ny, rng).cost_matrix();
        // Align: m'[x][y] = s_x * t_y * |m[x][y]| is unfrustrated by
        // construction, whatever the signs.
        std::vector<double> s, t;
        for (std::size_t x = 0; x < nx; ++x) {
          s.push_back(rng.bernoulli(0.5) ? 1.0 : -1.0);
        }
        for (std::size_t y = 0; y < ny; ++y) {
          t.push_back(rng.bernoulli(0.5) ? 1.0 : -1.0);
        }
        for (std::size_t x = 0; x < nx; ++x) {
          for (std::size_t y = 0; y < ny; ++y) {
            m[x][y] = s[x] * t[y] * std::abs(m[x][y]);
          }
        }
        return m;
      },
      [](const std::vector<std::vector<double>>& m) {
        const auto b = unfrustrated_bias(m);
        if (!b.has_value()) {
          return CaseResult::fail("aligned matrix reported frustrated");
        }
        double mass = 0.0;
        for (const auto& row : m) {
          for (double v : row) mass += std::abs(v);
        }
        if (std::abs(*b - mass) > 1e-12) {
          return CaseResult::fail("bias != total mass");
        }
        // The solvers must agree the aligned strategy is optimal.
        if (std::abs(classical_value_bnb(m).bias - *b) > 1e-12) {
          return CaseResult::fail("bnb disagrees with the closed form");
        }
        return CaseResult::pass();
      });
  ASSERT_TRUE(r.ok) << r.message;
}

TEST(ClosedForm, EngineRoutesOddCycleAndUnfrustratedGamesToFormulas) {
  ftl::games::XorValueEngine engine;

  const auto oc = engine.evaluate(odd_cycle_game(9));
  EXPECT_TRUE(oc.from_closed_form);
  // odd_cycle_game has unit total mass, so the scale factor is exactly 1.
  EXPECT_NEAR(oc.classical_bias, odd_cycle_classical_bias(9), 1e-15);
  EXPECT_NEAR(oc.quantum_bias, odd_cycle_quantum_bias(9), 1e-15);
  EXPECT_TRUE(oc.advantage);

  Rng rng(3);
  const auto colocate =
      XorGame::from_affinity(AffinityGraph::random(10, 0.0, rng), false);
  const auto uf = engine.evaluate(colocate);
  EXPECT_TRUE(uf.from_closed_form);
  EXPECT_NEAR(uf.classical_bias, 1.0, 1e-12);
  EXPECT_FALSE(uf.advantage);
  EXPECT_EQ(engine.stats().games_solved, 0u);
  EXPECT_EQ(engine.stats().closed_form_hits, 2u);
}

// Engine values must agree with the direct (unaccelerated) pipeline on
// games that take the solver path.
TEST(ClosedForm, EngineSolverPathMatchesDirectSolvers) {
  ftl::games::XorValueOptions opts;
  opts.sdp.seed = 1234;
  opts.sdp.restarts = 6;
  ftl::games::XorValueEngine engine(opts);
  Rng rng(17);
  for (int i = 0; i < 5; ++i) {
    const auto game = ftl::games::random_xor_game(4, 4, rng);
    const auto r = engine.evaluate(game);
    if (r.from_closed_form) continue;  // tiny chance; nothing to compare
    EXPECT_EQ(r.classical_bias, game.classical_bias());
    ftl::sdp::GramOptions direct;
    direct.restarts = 6;
    direct.seed = 555 + static_cast<std::uint64_t>(i);
    EXPECT_NEAR(r.quantum_bias, game.quantum_bias(direct).bias, 1e-5);
  }
}

}  // namespace

#include "lb/strategy.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"

namespace ftl::lb {
namespace {

std::vector<std::vector<TaskType>> uniform_types(std::size_t n,
                                                 std::size_t batch,
                                                 util::Rng& rng) {
  std::vector<std::vector<TaskType>> t(n, std::vector<TaskType>(batch));
  for (auto& row : t) {
    for (auto& x : row) {
      x = rng.bernoulli(0.5) ? TaskType::kC : TaskType::kE;
    }
  }
  return t;
}

void expect_valid(const std::vector<std::vector<std::size_t>>& out,
                  std::size_t num_servers) {
  for (const auto& row : out) {
    for (std::size_t s : row) EXPECT_LT(s, num_servers);
  }
}

TEST(RandomStrategy, ProducesValidServers) {
  RandomStrategy strat;
  util::Rng rng(1);
  const auto types = uniform_types(10, 2, rng);
  std::vector<std::vector<std::size_t>> out;
  std::vector<std::size_t> q(7, 0);
  strat.assign(types, out, ClusterView{7, &q}, rng);
  ASSERT_EQ(out.size(), 10u);
  ASSERT_EQ(out[0].size(), 2u);
  expect_valid(out, 7);
}

TEST(RandomStrategy, CoversAllServers) {
  RandomStrategy strat;
  util::Rng rng(2);
  std::set<std::size_t> seen;
  std::vector<std::vector<std::size_t>> out;
  std::vector<std::size_t> q(5, 0);
  for (int i = 0; i < 200; ++i) {
    const auto types = uniform_types(4, 1, rng);
    strat.assign(types, out, ClusterView{5, &q}, rng);
    for (const auto& row : out) seen.insert(row[0]);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RoundRobin, CyclesThroughServers) {
  RoundRobinStrategy strat;
  util::Rng rng(3);
  std::vector<std::vector<std::size_t>> out;
  std::vector<std::size_t> q(4, 0);
  const auto types = uniform_types(1, 1, rng);
  std::vector<std::size_t> seq;
  for (int i = 0; i < 8; ++i) {
    strat.assign(types, out, ClusterView{4, &q}, rng);
    seq.push_back(out[0][0]);
  }
  // Consecutive assignments advance by exactly 1 mod 4.
  for (std::size_t i = 1; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i], (seq[i - 1] + 1) % 4);
  }
}

TEST(PowerOfTwo, PrefersShorterQueue) {
  PowerOfTwoStrategy strat;
  util::Rng rng(4);
  std::vector<std::size_t> q{100, 100, 0, 100};  // server 2 always shortest
  std::vector<std::vector<std::size_t>> out;
  const auto types = uniform_types(1, 1, rng);
  int hits = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    strat.assign(types, out, ClusterView{4, &q}, rng);
    if (out[0][0] == 2) ++hits;
  }
  // Server 2 is chosen whenever probed: P = 1 - (3/4)(2/4)... = P(2 in
  // sample of 2 of 4 distinct) = 1 - C(3,2)/C(4,2) = 1/2.
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.5, 0.04);
}

TEST(Paired, UsesOnlyTwoCandidateServersPerPair) {
  PairedStrategy strat(std::make_unique<correlate::IndependentRandomSource>());
  util::Rng rng(5);
  std::vector<std::size_t> q(10, 0);
  std::vector<std::vector<std::size_t>> out;
  const auto types = uniform_types(6, 1, rng);
  strat.assign(types, out, ClusterView{10, &q}, rng);
  // Each pair's two members land on at most 2 servers.
  for (std::size_t p = 0; p < 6; p += 2) {
    std::set<std::size_t> servers{out[p][0], out[p + 1][0]};
    EXPECT_LE(servers.size(), 2u);
  }
}

TEST(Paired, OmniscientColocatesCCOnly) {
  PairedStrategy strat(std::make_unique<correlate::OmniscientOracleSource>());
  util::Rng rng(6);
  std::vector<std::size_t> q(8, 0);
  std::vector<std::vector<std::size_t>> out;
  for (int i = 0; i < 300; ++i) {
    std::vector<std::vector<TaskType>> types{{TaskType::kC}, {TaskType::kC},
                                             {TaskType::kC}, {TaskType::kE}};
    strat.assign(types, out, ClusterView{8, &q}, rng);
    EXPECT_EQ(out[0][0], out[1][0]);  // C,C colocate
    EXPECT_NE(out[2][0], out[3][0]);  // C,E separate
  }
}

TEST(Paired, QuantumColocationRates) {
  PairedStrategy strat(std::make_unique<correlate::ChshSource>(1.0));
  util::Rng rng(7);
  std::vector<std::size_t> q(8, 0);
  std::vector<std::vector<std::size_t>> out;
  int cc_colocated = 0;
  int ce_separated = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    std::vector<std::vector<TaskType>> types{{TaskType::kC}, {TaskType::kC},
                                             {TaskType::kC}, {TaskType::kE}};
    strat.assign(types, out, ClusterView{8, &q}, rng);
    if (out[0][0] == out[1][0]) ++cc_colocated;
    if (out[2][0] != out[3][0]) ++ce_separated;
  }
  const double expect = 0.5 * (1.0 + 1.0 / std::sqrt(2.0));  // ~0.854
  EXPECT_NEAR(static_cast<double>(cc_colocated) / n, expect, 0.012);
  EXPECT_NEAR(static_cast<double>(ce_separated) / n, expect, 0.012);
}

TEST(Paired, RequiresEvenBalancers) {
  PairedStrategy strat(std::make_unique<correlate::IndependentRandomSource>());
  util::Rng rng(8);
  std::vector<std::size_t> q(4, 0);
  std::vector<std::vector<std::size_t>> out;
  const auto types = uniform_types(3, 1, rng);
  EXPECT_DEATH(strat.assign(types, out, ClusterView{4, &q}, rng), "even");
}

TEST(Paired, NameIncludesSource) {
  PairedStrategy strat(std::make_unique<correlate::ChshSource>(1.0));
  EXPECT_EQ(strat.name(), "paired(quantum-chsh)");
}

TEST(Dedicated, SeparatesTypes) {
  DedicatedServersStrategy strat(0.5);
  util::Rng rng(9);
  std::vector<std::size_t> q(10, 0);
  std::vector<std::vector<std::size_t>> out;
  for (int i = 0; i < 200; ++i) {
    std::vector<std::vector<TaskType>> types{{TaskType::kC}, {TaskType::kE}};
    strat.assign(types, out, ClusterView{10, &q}, rng);
    EXPECT_LT(out[0][0], 5u);   // C goes to dedicated half
    EXPECT_GE(out[1][0], 5u);   // E to the rest
  }
}

TEST(Dedicated, AlwaysKeepsAtLeastOneOfEach) {
  DedicatedServersStrategy strat(0.01);
  util::Rng rng(10);
  std::vector<std::size_t> q(3, 0);
  std::vector<std::vector<std::size_t>> out;
  std::vector<std::vector<TaskType>> types{{TaskType::kC}, {TaskType::kE}};
  strat.assign(types, out, ClusterView{3, &q}, rng);
  EXPECT_EQ(out[0][0], 0u);
  EXPECT_GE(out[1][0], 1u);
}

TEST(LocalBatching, AllCsOfOneBalancerColocate) {
  LocalBatchingStrategy strat;
  util::Rng rng(11);
  std::vector<std::size_t> q(10, 0);
  std::vector<std::vector<std::size_t>> out;
  std::vector<std::vector<TaskType>> types{
      {TaskType::kC, TaskType::kC, TaskType::kE, TaskType::kC}};
  strat.assign(types, out, ClusterView{10, &q}, rng);
  EXPECT_EQ(out[0][0], out[0][1]);
  EXPECT_EQ(out[0][1], out[0][3]);
}

TEST(LocalBatching, DifferentBalancersIndependent) {
  LocalBatchingStrategy strat;
  util::Rng rng(12);
  std::vector<std::size_t> q(50, 0);
  std::vector<std::vector<std::size_t>> out;
  std::set<std::size_t> targets;
  for (int i = 0; i < 100; ++i) {
    std::vector<std::vector<TaskType>> types{{TaskType::kC}, {TaskType::kC}};
    strat.assign(types, out, ClusterView{50, &q}, rng);
    targets.insert(out[0][0]);
    targets.insert(out[1][0]);
  }
  EXPECT_GT(targets.size(), 10u);
}

}  // namespace
}  // namespace ftl::lb

#include "qnet/broker.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "qnet/config.hpp"
#include "qnet/decoherence.hpp"
#include "qnet/timing.hpp"
#include "util/rng.hpp"

namespace ftl::qnet {
namespace {

TEST(Config, SurvivalProbability) {
  QnetConfig cfg;
  cfg.attenuation_db_per_km = 0.2;
  cfg.fiber_km = 50.0;  // 10 dB -> 10% survival
  EXPECT_NEAR(cfg.photon_survival_probability(), 0.1, 1e-10);
  EXPECT_NEAR(cfg.pair_delivery_probability(), 0.01, 1e-10);
}

TEST(Config, ZeroLengthFiberIsLossless) {
  QnetConfig cfg;
  cfg.fiber_km = 0.0;
  EXPECT_NEAR(cfg.pair_delivery_probability(), 1.0, 1e-12);
  EXPECT_NEAR(cfg.propagation_delay_s(), 0.0, 1e-15);
}

TEST(Config, PropagationDelay) {
  QnetConfig cfg;
  cfg.fiber_km = 2.0;
  cfg.fiber_speed_mps = 2.0e8;
  EXPECT_NEAR(cfg.propagation_delay_s(), 1.0e-5, 1e-12);
}

TEST(Decoherence, FreshPairKeepsFullValue) {
  // Zero storage time: win probability equals the closed-form fresh value.
  const double win = chsh_win_after_storage(1.0, 0.0, 0.0, 500e-6, 100e-6);
  EXPECT_NEAR(win, std::cos(M_PI / 8.0) * std::cos(M_PI / 8.0), 1e-9);
}

TEST(Decoherence, WinDecreasesMonotonicallyWithStorage) {
  double prev = 1.0;
  for (double t : {0.0, 20e-6, 50e-6, 100e-6, 200e-6}) {
    const double w = chsh_win_after_storage(0.98, t, t, 500e-6, 100e-6);
    EXPECT_LT(w, prev + 1e-12);
    prev = w;
  }
}

TEST(Decoherence, LongStorageConvergesToUseless) {
  const double w = chsh_win_after_storage(1.0, 1.0, 1.0, 500e-6, 100e-6);
  // After ~10^4 coherence times nothing useful remains: at or below the
  // classical 0.75 (strictly below since correlations are gone).
  EXPECT_LT(w, 0.751);
}

TEST(Decoherence, AsymmetricStorage) {
  // Only one half stored: decay still happens but slower than both halves.
  const double both = chsh_win_after_storage(1.0, 50e-6, 50e-6, 500e-6, 100e-6);
  const double one = chsh_win_after_storage(1.0, 50e-6, 0.0, 500e-6, 100e-6);
  EXPECT_GT(one, both);
}

TEST(Decoherence, StateStaysPhysical) {
  const qcore::Density rho =
      pair_state_after_storage(0.95, 80e-6, 30e-6, 500e-6, 100e-6);
  EXPECT_TRUE(rho.is_valid(1e-7));
}

TEST(Decoherence, UsefulWindowPositiveForGoodPairs) {
  const double window = useful_storage_window_s(0.98, 500e-6, 100e-6);
  EXPECT_GT(window, 1e-6);
  // Window must be on the order of T2, not wildly beyond it.
  EXPECT_LT(window, 100.0 * 100e-6);
  // At the window boundary the advantage is gone.
  EXPECT_NEAR(chsh_win_after_storage(0.98, window, window, 500e-6, 100e-6),
              0.75, 1e-4);
}

TEST(Decoherence, UsefulWindowZeroForBadPairs) {
  // Visibility below 1/sqrt2 never beats classical even fresh.
  EXPECT_DOUBLE_EQ(useful_storage_window_s(0.5, 500e-6, 100e-6), 0.0);
}

TEST(Broker, ConservationOfPairs) {
  QnetConfig cfg;
  cfg.pair_rate_hz = 5e4;
  cfg.fiber_km = 0.5;
  util::Rng rng(1);
  const BrokerStats s = simulate_pair_supply(cfg, 1e4, 0.5, rng);
  EXPECT_GT(s.requests, 0u);
  EXPECT_GE(s.pairs_generated, s.pairs_delivered);
  EXPECT_LE(s.pair_hits, s.requests);
  EXPECT_LE(s.pair_hits, s.pairs_delivered);
}

TEST(Broker, ConservationIsExactAtStatsBoundary) {
  // Every generated pair must be accounted for, including pairs still
  // traversing fiber at duration_s and live pairs left in memory — the two
  // populations the stats used to silently leak.
  for (std::uint64_t seed : {1u, 7u, 23u, 99u}) {
    QnetConfig cfg;
    cfg.pair_rate_hz = 5e4;
    cfg.fiber_km = 25.0;  // long fiber: real loss and a fat in-flight window
    util::Rng rng(seed);
    const BrokerStats s = simulate_pair_supply(cfg, 1e4, 0.2, rng);
    EXPECT_EQ(s.pairs_generated,
              s.pairs_lost_fiber + s.pairs_in_flight + s.pairs_delivered);
    EXPECT_EQ(s.pairs_delivered, s.pair_hits + s.pairs_expired +
                                     s.pairs_dropped_full + s.pairs_in_memory);
    EXPECT_TRUE(s.conservation_holds());
    EXPECT_GT(s.pairs_lost_fiber, 0u);  // 25 km at 0.2 dB/km loses pairs
  }
}

TEST(Broker, AbundantSupplyGivesHighHitRate) {
  QnetConfig cfg;
  cfg.pair_rate_hz = 1e6;  // 100x the request rate
  cfg.fiber_km = 0.1;
  util::Rng rng(2);
  const BrokerStats s = simulate_pair_supply(cfg, 1e4, 0.5, rng);
  EXPECT_GT(s.hit_fraction(), 0.95);
  EXPECT_GT(s.mean_chsh_win, 0.80);
}

TEST(Broker, ScarceSupplyDegradesGracefully) {
  QnetConfig cfg;
  cfg.pair_rate_hz = 1e3;  // 10x fewer pairs than requests
  util::Rng rng(3);
  const BrokerStats s = simulate_pair_supply(cfg, 1e4, 0.5, rng);
  EXPECT_LT(s.hit_fraction(), 0.3);
  // Fallback floor: never below classical.
  EXPECT_GE(s.mean_chsh_win, 0.75 - 1e-9);
}

TEST(Broker, HitRateIncreasesWithPairRate) {
  util::Rng rng(4);
  double prev = -1.0;
  for (double rate : {2e3, 2e4, 2e5}) {
    QnetConfig cfg;
    cfg.pair_rate_hz = rate;
    util::Rng r = rng.split(static_cast<std::uint64_t>(rate));
    const BrokerStats s = simulate_pair_supply(cfg, 1e4, 0.3, r);
    EXPECT_GT(s.hit_fraction(), prev);
    prev = s.hit_fraction();
  }
}

TEST(Broker, ConsumedAgeWithinStorageWindow) {
  QnetConfig cfg;
  cfg.pair_rate_hz = 1e5;
  util::Rng rng(5);
  const BrokerStats s = simulate_pair_supply(cfg, 1e4, 0.3, rng);
  EXPECT_GE(s.mean_consumed_age_s, 0.0);
  EXPECT_LE(s.mean_consumed_age_s, cfg.max_storage_s);
}

TEST(Timing, QuantumBeatsClassicalRtt) {
  TimingModel m;
  m.inter_server_distance_m = 100.0;
  EXPECT_LT(quantum_decision_latency_s(m),
            classical_coordination_latency_s(m));
}

TEST(Timing, ClassicalLatencyGrowsWithDistance) {
  TimingModel near;
  near.inter_server_distance_m = 10.0;
  TimingModel far;
  far.inter_server_distance_m = 1.0e6;  // 1000 km
  EXPECT_GT(classical_coordination_latency_s(far),
            classical_coordination_latency_s(near));
  // Quantum decision latency is distance-independent: the §3 point.
  EXPECT_DOUBLE_EQ(quantum_decision_latency_s(far),
                   quantum_decision_latency_s(near));
}

TEST(Timing, NoStorageLatencyIndependentOfDistance) {
  TimingModel far;
  far.inter_server_distance_m = 1.0e7;
  const double lat = quantum_no_storage_latency_s(far, 1e5);
  EXPECT_NEAR(lat, 1e-5 + far.processing_s, 1e-9);
}

TEST(Timing, RttExample) {
  TimingModel m;
  m.inter_server_distance_m = 200.0;
  m.fiber_speed_mps = 2.0e8;
  m.processing_s = 0.0;
  EXPECT_NEAR(classical_coordination_latency_s(m), 2.0e-6, 1e-12);
}

}  // namespace
}  // namespace ftl::qnet

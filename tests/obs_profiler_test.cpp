// Sampling profiler: deterministic exporters over synthetic samples
// (golden folded/speedscope output with an injected symbolizer), live
// SIGPROF sampling against a CPU-burning loop, the one-session-at-a-time
// guard, and real-symbol resolution through the own-ELF symbolizer. The
// real::Profiler twin is always compiled, so everything here runs under
// FTL_OBS_ENABLED=OFF builds too.
#include "obs/profiler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/spanctx.hpp"

namespace {

using ftl::obs::fold_profile;
using ftl::obs::ProfilerOptions;
using ftl::obs::ProfileSample;
using ftl::obs::speedscope_profile;
using ftl::obs::SymbolizeFn;

/// Deterministic fake symbolizer: f<decimal addr>.
std::string fake_symbolize(std::uintptr_t pc) {
  return "f" + std::to_string(pc);
}

ProfileSample sample(const char* stage, std::vector<std::uintptr_t> pcs) {
  ProfileSample s;
  s.stage = stage;
  s.pcs = std::move(pcs);
  return s;
}

TEST(FoldProfile, GoldenOutputSortedAndCallSiteAdjusted) {
  // pcs are leaf-first: {leaf, caller, root}. The folded line is
  // root-first, and every non-leaf pc (a return address) is symbolized at
  // pc-1 so the frame names the call site.
  std::vector<ProfileSample> samples = {
      sample(nullptr, {0x30, 0x20, 0x10}),
      sample(nullptr, {0x30, 0x20, 0x10}),
      sample("decide", {0x31, 0x21, 0x11}),
  };
  const std::string folded = fold_profile(samples, fake_symbolize);
  EXPECT_EQ(folded,
            "f15;f31;f48 2\n"
            "stage:decide;f16;f32;f49 1\n");
}

TEST(FoldProfile, DeterministicUnderSampleOrder) {
  std::vector<ProfileSample> a = {
      sample(nullptr, {0x5, 0x6}),
      sample("x", {0x7}),
      sample(nullptr, {0x5, 0x6}),
      sample(nullptr, {0x9, 0x6}),
  };
  std::vector<ProfileSample> b = {a[3], a[1], a[0], a[2]};
  EXPECT_EQ(fold_profile(a, fake_symbolize), fold_profile(b, fake_symbolize));
}

TEST(FoldProfile, EmptyAndDegenerateSamples) {
  EXPECT_EQ(fold_profile({}, fake_symbolize), "");
  // Zero-pc samples carry no stack and are skipped.
  std::vector<ProfileSample> samples = {sample("idle", {})};
  EXPECT_EQ(fold_profile(samples, fake_symbolize), "");
  // Single-frame samples are leaves: no pc-1 adjustment.
  samples = {sample(nullptr, {0x40})};
  EXPECT_EQ(fold_profile(samples, fake_symbolize), "f64 1\n");
}

TEST(FoldProfile, SanitizesFrameSeparators) {
  const SymbolizeFn hostile = [](std::uintptr_t) {
    return std::string("operator;new\nline");
  };
  std::vector<ProfileSample> samples = {sample(nullptr, {0x1})};
  EXPECT_EQ(fold_profile(samples, hostile), "operator:new line 1\n");
}

TEST(SpeedscopeProfile, WellFormedAndWeightsSumToSamples) {
  std::vector<ProfileSample> samples = {
      sample(nullptr, {0x30, 0x20, 0x10}),
      sample(nullptr, {0x30, 0x20, 0x10}),
      sample("decide", {0x31, 0x21, 0x11}),
  };
  const std::string doc =
      speedscope_profile(samples, fake_symbolize, "unit_test");
  const std::optional<ftl::obs::json::Value> parsed = ftl::obs::json::parse(doc);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is_object());

  const ftl::obs::json::Value* schema = parsed->find("$schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->string,
            "https://www.speedscope.app/file-format-schema.json");

  const ftl::obs::json::Value* shared = parsed->find("shared");
  ASSERT_NE(shared, nullptr);
  const ftl::obs::json::Value* frames = shared->find("frames");
  ASSERT_NE(frames, nullptr);
  ASSERT_TRUE(frames->is_array());
  // 3 frames per stack x 2 distinct stacks + the stage frame, deduped.
  EXPECT_EQ(frames->array.size(), 7u);

  const ftl::obs::json::Value* profiles = parsed->find("profiles");
  ASSERT_NE(profiles, nullptr);
  ASSERT_TRUE(profiles->is_array());
  ASSERT_EQ(profiles->array.size(), 1u);
  const ftl::obs::json::Value& prof = profiles->array[0];
  EXPECT_EQ(prof.find("type")->string, "sampled");
  const ftl::obs::json::Value* weights = prof.find("weights");
  ASSERT_NE(weights, nullptr);
  double total = 0;
  for (const auto& w : weights->array) total += w.number;
  EXPECT_EQ(total, 3.0);
  EXPECT_EQ(prof.find("endValue")->number, 3.0);
  // Every sample's frame indices must be valid.
  const ftl::obs::json::Value* sample_arr = prof.find("samples");
  ASSERT_NE(sample_arr, nullptr);
  EXPECT_EQ(sample_arr->array.size(), weights->array.size());
  for (const auto& stack : sample_arr->array) {
    ASSERT_TRUE(stack.is_array());
    for (const auto& idx : stack.array) {
      EXPECT_GE(idx.number, 0.0);
      EXPECT_LT(idx.number, static_cast<double>(frames->array.size()));
    }
  }
}

TEST(SymbolizePc, ResolvesOwnBinarySymbolsAndFallsBackToHex) {
  // trace_id_hex is an external-linkage function in the statically linked
  // ftl_obs — the own-ELF symtab must resolve it without -rdynamic.
  const std::string name = ftl::obs::symbolize_pc(
      reinterpret_cast<std::uintptr_t>(&ftl::obs::trace_id_hex));
  EXPECT_NE(name.find("trace_id_hex"), std::string::npos) << name;
  // A wild pointer resolves to nothing: hex fallback.
  const std::string wild = ftl::obs::symbolize_pc(0x1234);
  EXPECT_EQ(wild, "0x1234");
}

// --- live sampling ----------------------------------------------------------

/// Burns CPU until the process has consumed roughly `ms` more milliseconds
/// of CPU time (so the CPU-clock sampler is guaranteed expiries regardless
/// of machine load).
void burn_cpu_ms(long ms) {
  timespec t0{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &t0);
  volatile double acc = 0.0;
  for (;;) {
    for (int i = 1; i < 2000; ++i) acc = acc + std::sqrt(double(i));
    timespec t{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &t);
    const long elapsed_ms = (t.tv_sec - t0.tv_sec) * 1000 +
                            (t.tv_nsec - t0.tv_nsec) / 1000000;
    if (elapsed_ms >= ms) break;
  }
}

TEST(ProfilerLive, CapturesSamplesWhileBurningCpu) {
  ftl::obs::real::Profiler& p = ftl::obs::real::profiler();
  ProfilerOptions opts;
  opts.hz = 997;  // high rate so a short burn yields a solid sample count
  ASSERT_TRUE(p.start(opts));
  EXPECT_TRUE(p.running());
  EXPECT_EQ(p.options().hz, 997);

  {
    ftl::obs::real::ProfileStage tag("burn");
    burn_cpu_ms(300);
  }
  p.stop();
  EXPECT_FALSE(p.running());

  // 300ms of CPU at 997 Hz nominally yields ~300 samples; demand only a
  // loose lower bound to stay robust under sanitizers and slow CI.
  EXPECT_GE(p.sample_count(), 5u);

  // samples() may drop zero-depth captures, so it lower-bounds the count.
  const std::vector<ProfileSample> samples = p.samples();
  EXPECT_LE(samples.size(), p.sample_count());
  EXPECT_FALSE(samples.empty());

  // Folded output is non-empty and every line is `stack count`.
  const std::string folded = p.folded();
  ASSERT_FALSE(folded.empty());
  std::istringstream lines(folded);
  std::string line;
  std::uint64_t total = 0;
  bool saw_stage = false;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    ASSERT_GT(space, 0u) << line;
    const std::uint64_t count = std::stoull(line.substr(space + 1));
    EXPECT_GT(count, 0u);
    total += count;
    if (line.rfind("stage:burn;", 0) == 0) saw_stage = true;
  }
  EXPECT_EQ(total, samples.size());
  // The burn loop ran under a stage tag on the only busy thread, so the
  // bulk of the weight must carry it.
  EXPECT_TRUE(saw_stage) << folded;

  // speedscope export of the live profile parses as JSON.
  const std::string doc = p.speedscope("live");
  EXPECT_TRUE(ftl::obs::json::parse(doc).has_value());
}

TEST(ProfilerLive, SingleSessionGuardAndRestart) {
  ftl::obs::real::Profiler& p = ftl::obs::real::profiler();
  ASSERT_TRUE(p.start({}));
  // Second arm attempt fails — from any handle, not just the singleton.
  ftl::obs::real::Profiler other;
  EXPECT_FALSE(other.start({}));
  p.stop();
  p.stop();  // idempotent

  // Restart invalidates the previous session's samples.
  ProfilerOptions opts;
  opts.hz = 997;
  ASSERT_TRUE(p.start(opts));
  burn_cpu_ms(100);
  p.stop();
  EXPECT_GE(p.sample_count(), 1u);
}

TEST(ProfilerLive, OptionsAreClamped) {
  ftl::obs::real::Profiler p;
  ProfilerOptions opts;
  opts.hz = 0;
  opts.max_depth = 100000;
  opts.capacity = 1;
  ASSERT_TRUE(p.start(opts));
  EXPECT_EQ(p.options().hz, 1);
  EXPECT_EQ(p.options().max_depth, ftl::obs::kProfilerMaxDepth);
  EXPECT_GE(p.options().capacity, 256u);
  p.stop();
}

TEST(ProfilerStageTag, NestsAndRestores) {
  using ftl::obs::real::profile_stage;
  using ftl::obs::real::set_profile_stage;
  EXPECT_EQ(profile_stage(), nullptr);
  {
    ftl::obs::real::ProfileStage outer("outer");
    EXPECT_STREQ(profile_stage(), "outer");
    {
      ftl::obs::real::ProfileStage inner("inner");
      EXPECT_STREQ(profile_stage(), "inner");
    }
    EXPECT_STREQ(profile_stage(), "outer");
  }
  EXPECT_EQ(profile_stage(), nullptr);
  EXPECT_EQ(set_profile_stage("manual"), nullptr);
  EXPECT_STREQ(set_profile_stage(nullptr), "manual");
}

}  // namespace

// End-to-end trajectory workflow: drive the real ftlbench binary against a
// real bench binary, then gate a synthetic regression. Registered under the
// `tier-slow` ctest label — it forks bench processes and takes seconds, so
// the fast suite skips it.
//
// Paths are injected by CMake:
//   FTL_FTLBENCH_BIN  — the ftlbench executable
//   FTL_BENCH_BIN_DIR — directory holding the bench_* binaries
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "ftlbench/trajectory.hpp"

namespace ftl::benchtool {
namespace {

namespace fs = std::filesystem;

// The quickest bench in the suite; --benchmark_filter=NONE skips its gbench
// loops, leaving just the section-2 table code.
constexpr const char* kBench = "bench_chsh_values";

class FtlbenchIntegration : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(testing::TempDir()) /
            ("ftlbench_it_" + std::to_string(::getpid()));
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  /// Runs a shell command, returning its exit status (-1 on launch failure).
  static int run(const std::string& cmd) {
    const int rc = std::system(cmd.c_str());
    return rc < 0 ? -1 : WEXITSTATUS(rc);
  }

  std::string ftlbench_run_cmd(const std::string& out_dir,
                               std::size_t repetitions) const {
    return std::string(FTL_FTLBENCH_BIN) + " run --bench-dir=" +
           FTL_BENCH_BIN_DIR + " --out-dir=" + out_dir +
           " --benches=" + kBench + " --filter=NONE --seed=42" +
           " --repetitions=" + std::to_string(repetitions) + " >/dev/null";
  }

  fs::path root_;
};

TEST_F(FtlbenchIntegration, RunAppendsValidTrajectory) {
  const fs::path out = root_ / "base";
  ASSERT_EQ(run(ftlbench_run_cmd(out.string(), 2)), 0);

  const fs::path traj = out / trajectory_filename(kBench);
  ASSERT_TRUE(fs::exists(traj));
  const std::optional<Trajectory> t = load_trajectory(traj.string());
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->bench, kBench);
  ASSERT_EQ(t->entries.size(), 2u);
  for (const TrajectoryEntry& e : t->entries) {
    EXPECT_FALSE(e.git_rev.empty());
    EXPECT_EQ(e.utc.size(), 20u) << e.utc;  // 2026-08-06T00:00:00Z
    EXPECT_EQ(e.seed, 42u);
    EXPECT_GT(e.wall_time_s, 0.0);
  }
  // A second run appends rather than truncating.
  ASSERT_EQ(run(ftlbench_run_cmd(out.string(), 1)), 0);
  const std::optional<Trajectory> t2 = load_trajectory(traj.string());
  ASSERT_TRUE(t2.has_value());
  EXPECT_EQ(t2->entries.size(), 3u);
}

TEST_F(FtlbenchIntegration, CompareGateOnRealAndInjectedData) {
  const fs::path base = root_ / "base";
  const fs::path cand = root_ / "cand";
  ASSERT_EQ(run(ftlbench_run_cmd(base.string(), 1)), 0);
  ASSERT_EQ(run(ftlbench_run_cmd(cand.string(), 1)), 0);

  // Deterministic counters with a pinned seed: identical -> exit 0 even at
  // a tight threshold.
  const std::string compare_counters =
      std::string(FTL_FTLBENCH_BIN) + " compare " + base.string() + " " +
      cand.string() + " --metric=sdp.gram.solves --threshold=1.01 >/dev/null";
  EXPECT_EQ(run(compare_counters), 0);

  // Inject a 10x wall-time slowdown into the candidate trajectory: the gate
  // must trip (exit 1). The factor is deliberately far above the threshold —
  // the two real runs are only ~20 ms each, so fork/exec noise between them
  // can reach 2x on a loaded machine and a marginal injection would flake.
  const fs::path traj = cand / trajectory_filename(kBench);
  std::optional<Trajectory> t = load_trajectory(traj.string());
  ASSERT_TRUE(t.has_value());
  for (TrajectoryEntry& e : t->entries) e.wall_time_s *= 10.0;
  {
    std::ofstream out(traj.string(), std::ios::trunc);
    out << trajectory_json(*t) << '\n';
    ASSERT_TRUE(out);
  }
  const std::string compare_wall =
      std::string(FTL_FTLBENCH_BIN) + " compare " + base.string() + " " +
      cand.string() + " --metric=wall_time_s --threshold=1.5 >/dev/null";
  EXPECT_EQ(run(compare_wall), 1);

  // Usage errors exit 2.
  EXPECT_EQ(run(std::string(FTL_FTLBENCH_BIN) + " compare onlyone 2>/dev/null"),
            2);
  EXPECT_EQ(run(std::string(FTL_FTLBENCH_BIN) + " bogus 2>/dev/null"), 2);
}

TEST_F(FtlbenchIntegration, MetricsEveryProducesSnapshots) {
  // Acceptance: a ~200ms run with --metrics-every produces >= 2 snapshots.
  const fs::path report = root_ / "report.json";
  const std::string cmd = std::string(FTL_BENCH_BIN_DIR) + "/" + kBench +
                          " --seed 42 --metrics-out=" + report.string() +
                          " --metrics-every=50 --benchmark_filter=NONE" +
                          " >/dev/null 2>&1";
  ASSERT_EQ(run(cmd), 0);
  const fs::path series = report.string() + ".series";
  ASSERT_TRUE(fs::exists(series));
  std::ifstream in(series);
  std::size_t lines = 0;
  for (std::string line; std::getline(in, line);)
    if (!line.empty()) ++lines;
  EXPECT_GE(lines, 2u);
}

}  // namespace
}  // namespace ftl::benchtool

#include "qcore/density.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "qcore/eigen.hpp"
#include "qcore/gates.hpp"
#include "util/rng.hpp"

namespace ftl::qcore {
namespace {

TEST(Density, MaximallyMixedProperties) {
  const Density rho = Density::maximally_mixed(2);
  EXPECT_TRUE(rho.is_valid());
  EXPECT_NEAR(rho.purity(), 0.25, 1e-12);
}

TEST(Density, FromPureStateHasPurityOne) {
  const Density rho = Density::from_state(StateVec::bell_phi_plus());
  EXPECT_TRUE(rho.is_valid());
  EXPECT_NEAR(rho.purity(), 1.0, 1e-12);
}

TEST(Density, WernerVisibilityExtremes) {
  const Density ideal = Density::werner(1.0);
  EXPECT_NEAR(ideal.fidelity_with(StateVec::bell_phi_plus()), 1.0, 1e-12);
  const Density noise = Density::werner(0.0);
  EXPECT_NEAR(noise.fidelity_with(StateVec::bell_phi_plus()), 0.25, 1e-12);
}

TEST(Density, WernerFidelityFormula) {
  // F = (1 + 3v) / 4.
  for (double v : {0.2, 0.5, 0.8}) {
    const Density rho = Density::werner(v);
    EXPECT_NEAR(rho.fidelity_with(StateVec::bell_phi_plus()),
                (1.0 + 3.0 * v) / 4.0, 1e-12);
    EXPECT_TRUE(rho.is_valid());
  }
}

TEST(Density, UnitaryPreservesValidityAndPurity) {
  Density rho = Density::from_state(StateVec::bell_phi_plus());
  rho.apply1(gates::Ry(0.7), 0);
  rho.apply1(gates::H(), 1);
  EXPECT_TRUE(rho.is_valid());
  EXPECT_NEAR(rho.purity(), 1.0, 1e-10);
}

TEST(Density, MeasurementMatchesStateVector) {
  // Exact outcome probabilities must agree between the two simulators.
  StateVec psi = StateVec::ghz(3);
  psi.apply1(gates::Ry(0.8), 1);
  const Density rho = Density::from_state(psi);
  const CMat basis = gates::real_basis(0.3);
  for (std::size_t q = 0; q < 3; ++q) {
    for (int o = 0; o < 2; ++o) {
      EXPECT_NEAR(rho.outcome_probability(q, basis, o),
                  psi.outcome_probability(q, basis, o), 1e-10);
    }
  }
}

TEST(Density, CollapseProbabilitiesSumToOne) {
  const Density rho = Density::werner(0.7);
  const CMat basis = gates::real_basis(1.2);
  const auto [s0, p0] = rho.collapse(0, basis, 0);
  const auto [s1, p1] = rho.collapse(0, basis, 1);
  EXPECT_NEAR(p0 + p1, 1.0, 1e-10);
  EXPECT_TRUE(s0.is_valid(1e-6));
  EXPECT_TRUE(s1.is_valid(1e-6));
}

TEST(Density, MeasureCollapsesRepeatably) {
  util::Rng rng(1);
  Density rho = Density::werner(0.9);
  const CMat basis = gates::real_basis(0.4);
  const int o = rho.measure(0, basis, rng);
  EXPECT_NEAR(rho.outcome_probability(0, basis, o), 1.0, 1e-9);
}

TEST(Density, PartialTraceOfBellIsMaximallyMixed) {
  const Density rho = Density::from_state(StateVec::bell_phi_plus());
  const Density reduced = rho.partial_trace({1});
  EXPECT_EQ(reduced.num_qubits(), 1u);
  EXPECT_TRUE(reduced.matrix().approx_equal(
      CMat::identity(2) * Cx{0.5, 0.0}, 1e-10));
}

TEST(Density, PartialTraceOfProductState) {
  // |psi> = |0> (x) |+>; tracing out either factor leaves the other pure.
  StateVec psi(2);
  psi.apply1(gates::H(), 1);
  const Density rho = Density::from_state(psi);
  const Density keep0 = rho.partial_trace({1});
  EXPECT_NEAR(keep0.purity(), 1.0, 1e-10);
  EXPECT_NEAR(keep0.matrix().at(0, 0).real(), 1.0, 1e-10);
  const Density keep1 = rho.partial_trace({0});
  EXPECT_NEAR(keep1.purity(), 1.0, 1e-10);
  EXPECT_NEAR(keep1.matrix().at(0, 1).real(), 0.5, 1e-10);
}

TEST(Density, PartialTraceGhzMiddleQubit) {
  const Density rho = Density::from_state(StateVec::ghz(3));
  const Density reduced = rho.partial_trace({1});
  EXPECT_EQ(reduced.num_qubits(), 2u);
  // Tracing any qubit of GHZ leaves the classical mixture of |00>, |11>.
  CMat expect(4, 4);
  expect.at(0, 0) = Cx{0.5, 0.0};
  expect.at(3, 3) = Cx{0.5, 0.0};
  EXPECT_TRUE(reduced.matrix().approx_equal(expect, 1e-10));
}

TEST(Density, PartialTracePreservesTrace) {
  util::Rng rng(2);
  Density rho = Density::from_state(StateVec::ghz(4));
  rho.apply_channel(depolarizing(0.3), 2);
  const Density reduced = rho.partial_trace({0, 2});
  EXPECT_NEAR(reduced.matrix().trace().real(), 1.0, 1e-10);
  EXPECT_TRUE(reduced.is_valid(1e-6));
}

// ---- channel property tests (parameterised) --------------------------------

struct ChannelCase {
  const char* name;
  Channel channel;
};

class ChannelValidity : public ::testing::TestWithParam<ChannelCase> {};

TEST_P(ChannelValidity, IsTracePreserving) {
  EXPECT_TRUE(GetParam().channel.is_trace_preserving(1e-10));
}

TEST_P(ChannelValidity, MapsStatesToValidStates) {
  for (double v : {1.0, 0.6, 0.0}) {
    Density rho = Density::werner(v);
    rho.apply_channel(GetParam().channel, 0);
    EXPECT_TRUE(rho.is_valid(1e-7)) << GetParam().name;
    rho.apply_channel(GetParam().channel, 1);
    EXPECT_TRUE(rho.is_valid(1e-7)) << GetParam().name;
  }
}

TEST_P(ChannelValidity, PurityNeverIncreasesOnMixedInput) {
  Density rho = Density::werner(0.8);
  const double before = rho.purity();
  rho.apply_channel(GetParam().channel, 0);
  EXPECT_LE(rho.purity(), before + 1e-9) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    AllChannels, ChannelValidity,
    ::testing::Values(
        ChannelCase{"identity", identity_channel()},
        ChannelCase{"depolarizing_weak", depolarizing(0.05)},
        ChannelCase{"depolarizing_strong", depolarizing(0.9)},
        ChannelCase{"depolarizing_full", depolarizing(1.0)},
        ChannelCase{"dephasing_weak", dephasing(0.1)},
        ChannelCase{"dephasing_full", dephasing(1.0)},
        ChannelCase{"amplitude_damping_weak", amplitude_damping(0.1)},
        ChannelCase{"amplitude_damping_strong", amplitude_damping(0.95)},
        ChannelCase{"bit_flip", bit_flip(0.3)}),
    [](const ::testing::TestParamInfo<ChannelCase>& info) {
      return info.param.name;
    });

TEST(Channels, FullDepolarizingGivesMaximallyMixedQubit) {
  Density rho = Density::from_state(StateVec::bell_phi_plus());
  rho.apply_channel(depolarizing(1.0), 0);
  const Density q0 = rho.partial_trace({1});
  EXPECT_TRUE(q0.matrix().approx_equal(CMat::identity(2) * Cx{0.5, 0.0},
                                       1e-10));
}

TEST(Channels, DepolarizingBothHalvesGivesWerner) {
  // Depolarizing each half of a Bell pair with probability p yields a
  // Werner state with visibility (1-p)^2.
  const double p = 0.2;
  Density rho = Density::from_state(StateVec::bell_phi_plus());
  rho.apply_channel(depolarizing(p), 0);
  rho.apply_channel(depolarizing(p), 1);
  const Density werner = Density::werner((1.0 - p) * (1.0 - p));
  EXPECT_TRUE(rho.matrix().approx_equal(werner.matrix(), 1e-10));
}

TEST(Channels, DephasingKillsCoherence) {
  Density rho = Density::from_state(StateVec::bell_phi_plus());
  rho.apply_channel(dephasing(1.0), 0);
  // |00><11| coherence must vanish; populations survive.
  EXPECT_NEAR(std::abs(rho.matrix().at(0, 3)), 0.0, 1e-12);
  EXPECT_NEAR(rho.matrix().at(0, 0).real(), 0.5, 1e-12);
  EXPECT_NEAR(rho.matrix().at(3, 3).real(), 0.5, 1e-12);
}

TEST(Channels, DephasingScalesCoherenceBySqrt) {
  const double lambda = 0.36;
  Density rho = Density::from_state(StateVec::bell_phi_plus());
  rho.apply_channel(dephasing(lambda), 0);
  EXPECT_NEAR(rho.matrix().at(0, 3).real(), 0.5 * std::sqrt(1.0 - lambda),
              1e-12);
}

TEST(Channels, AmplitudeDampingRelaxesToGround) {
  StateVec one(1);
  one.apply1(gates::X(), 0);
  Density rho = Density::from_state(one);
  rho.apply_channel(amplitude_damping(1.0), 0);
  EXPECT_NEAR(rho.matrix().at(0, 0).real(), 1.0, 1e-12);
}

TEST(Channels, StorageDecoherenceRespectsT2) {
  const double t1 = 500e-6;
  const double t2 = 100e-6;
  const double t = 50e-6;
  Density rho = Density::from_state(StateVec::bell_phi_plus());
  for (const auto& ch : storage_decoherence(t, t1, t2)) {
    rho.apply_channel(ch, 0);
  }
  // Coherence of the stored half decays as e^{-t/T2}.
  EXPECT_NEAR(std::abs(rho.matrix().at(0, 3)), 0.5 * std::exp(-t / t2), 1e-9);
  EXPECT_TRUE(rho.is_valid(1e-7));
}

TEST(Channels, StorageDecoherenceZeroTimeIsIdentity) {
  Density rho = Density::werner(0.9);
  const CMat before = rho.matrix();
  for (const auto& ch : storage_decoherence(0.0, 1e-3, 1e-4)) {
    rho.apply_channel(ch, 0);
  }
  EXPECT_TRUE(rho.matrix().approx_equal(before, 1e-10));
}

TEST(Channels, RejectsUnphysicalT2) {
  EXPECT_DEATH(storage_decoherence(1e-6, 1e-4, 3e-4), "T2");
}

TEST(Density, FromMatrixValidation) {
  CMat bad = CMat::identity(4);  // trace 4, not 1
  EXPECT_DEATH(Density::from_matrix(bad), "unit trace");
}

}  // namespace
}  // namespace ftl::qcore

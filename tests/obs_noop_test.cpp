// The FTL_OBS_ENABLED=OFF twins must be genuinely free: empty types whose
// calls compile to nothing. Both implementations are always compiled, so
// this is checkable from any build configuration.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <type_traits>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/spanctx.hpp"
#include "obs/trace.hpp"

namespace {

namespace noop = ftl::obs::noop;

// Empty types: no per-metric state, so instrumented call sites carry no
// storage and the inlined no-op bodies fold away.
static_assert(std::is_empty_v<noop::Counter>);
static_assert(std::is_empty_v<noop::Gauge>);
static_assert(std::is_empty_v<noop::Histogram>);
static_assert(std::is_empty_v<noop::Registry>);
static_assert(std::is_empty_v<noop::Tracer>);
static_assert(std::is_empty_v<noop::ScopedSpan>);
static_assert(std::is_empty_v<noop::ScopedHistogramTimer>);
static_assert(std::is_empty_v<noop::CtxSpan>);
static_assert(std::is_empty_v<noop::SlidingHistogram>);
static_assert(std::is_empty_v<noop::Profiler>);
static_assert(std::is_empty_v<noop::ProfileStage>);

// The real twins are decidedly not empty — if one ever became empty the
// aliases were probably mis-wired.
static_assert(!std::is_empty_v<ftl::obs::real::Counter>);
static_assert(!std::is_empty_v<ftl::obs::real::Histogram>);
static_assert(!std::is_empty_v<ftl::obs::real::CtxSpan>);
static_assert(!std::is_empty_v<ftl::obs::real::SlidingHistogram>);
static_assert(!std::is_empty_v<ftl::obs::real::Profiler>);
static_assert(!std::is_empty_v<ftl::obs::real::ProfileStage>);

// TraceContext is shared plain data, not twinned: both configurations use
// the same type, so ids derived under OFF still propagate on the wire.
static_assert(std::is_same_v<decltype(ftl::obs::TraceContext{}.trace_id),
                             std::uint64_t>);

// The alias switch must agree with the macro in this translation unit.
#if FTL_OBS_ENABLED
static_assert(ftl::obs::kEnabled);
static_assert(std::is_same_v<ftl::obs::Counter, ftl::obs::real::Counter>);
static_assert(std::is_same_v<ftl::obs::Profiler, ftl::obs::real::Profiler>);
#else
static_assert(!ftl::obs::kEnabled);
static_assert(std::is_same_v<ftl::obs::Counter, noop::Counter>);
static_assert(std::is_same_v<ftl::obs::Profiler, noop::Profiler>);
#endif

TEST(ObsNoop, CallsAreSafeAndInert) {
  noop::Registry& reg = noop::registry();
  noop::Counter& c = reg.counter("anything", {{"k", "v"}});
  c.inc();
  c.inc(100);
  EXPECT_EQ(c.value(), 0u);

  noop::Gauge& g = reg.gauge("g");
  g.set(5.0);
  g.add(1.0);
  g.update_max(99.0);
  EXPECT_EQ(g.value(), 0.0);

  noop::Histogram& h = reg.histogram("h", 0.0, 10.0, 5);
  h.observe(3.0);
  EXPECT_EQ(h.sample().total, 0u);

  const ftl::obs::Snapshot snap = reg.snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

TEST(ObsNoop, ScopedTypesConstructAndDestruct) {
  noop::Histogram h;
  {
    noop::ScopedSpan span("name", "cat");
    noop::ScopedHistogramTimer timer(h);
  }
  noop::Tracer& t = noop::tracer();
  t.start();
  t.record_instant("x", "y");
  EXPECT_FALSE(t.active());
  EXPECT_EQ(t.size(), 0u);
}

TEST(ObsNoop, SpanCtxTwinsAreInert) {
  const ftl::obs::TraceContext ctx =
      ftl::obs::TraceContext::derive(42, 0, 0);
  {
    noop::CtxSpan span("stage", ctx, 3);
    EXPECT_FALSE(span.context().sampled());
  }
  noop::SlidingHistogram h("w", 0.0, 10.0, 10, 4,
                           std::chrono::milliseconds(100));
  h.observe(1.0);
  h.flush();
  EXPECT_EQ(h.window_count(), 0u);
  EXPECT_EQ(h.quantile(0.99), 0.0);
}

TEST(ObsNoop, ProfilerTwinIsInert) {
  noop::Profiler& p = noop::profiler();
  EXPECT_FALSE(p.start({}));  // never arms: no SIGPROF under obs-OFF
  p.stop();
  EXPECT_FALSE(p.running());
  EXPECT_EQ(p.sample_count(), 0u);
  EXPECT_EQ(p.dropped(), 0u);
  EXPECT_TRUE(p.samples().empty());
  EXPECT_TRUE(p.folded().empty());
  EXPECT_TRUE(p.speedscope("x").empty());
  EXPECT_EQ(noop::set_profile_stage("stage"), nullptr);
  EXPECT_EQ(noop::profile_stage(), nullptr);
  { noop::ProfileStage tag("scoped"); }
}

}  // namespace

// TraceContext derivation, parented CtxSpan recording, and the sliding-
// window histogram: determinism of the ids, correctness of the emitted
// args, and windowed-percentile publication through the gauge path.
#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <string>
#include <thread>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/spanctx.hpp"
#include "obs/trace.hpp"

namespace {

namespace json = ftl::obs::json;
using ftl::obs::parse_trace_id_hex;
using ftl::obs::TraceContext;
using ftl::obs::trace_id_hex;
using ftl::obs::real::CtxSpan;
using ftl::obs::real::SlidingHistogram;
using ftl::obs::real::Tracer;

TEST(TraceContext, DerivationIsDeterministic) {
  const TraceContext a = TraceContext::derive(42, 3, 17);
  const TraceContext b = TraceContext::derive(42, 3, 17);
  EXPECT_EQ(a.trace_id, b.trace_id);
  EXPECT_EQ(a.span_id, b.span_id);
  EXPECT_TRUE(a.sampled());
}

TEST(TraceContext, DistinctInputsGiveDistinctTraces) {
  std::set<std::uint64_t> ids;
  for (std::uint64_t stream = 0; stream < 8; ++stream) {
    for (std::uint64_t index = 0; index < 64; ++index) {
      const TraceContext ctx = TraceContext::derive(42, stream, index);
      EXPECT_NE(ctx.trace_id, 0u);
      ids.insert(ctx.trace_id);
    }
  }
  // splitmix64 over distinct inputs: collisions across 512 draws would
  // point at a broken mix, not bad luck.
  EXPECT_EQ(ids.size(), 8u * 64u);
}

TEST(TraceContext, ChildSpansStayInTraceWithFreshIds) {
  const TraceContext root = TraceContext::derive(7, 0, 0);
  const TraceContext c0 = root.child(0);
  const TraceContext c1 = root.child(1);
  EXPECT_EQ(c0.trace_id, root.trace_id);
  EXPECT_EQ(c1.trace_id, root.trace_id);
  EXPECT_NE(c0.span_id, root.span_id);
  EXPECT_NE(c0.span_id, c1.span_id);
  EXPECT_EQ(c0.span_id, root.child_span_id(0));
}

TEST(TraceContext, HexRoundTrips) {
  for (const std::uint64_t id :
       {std::uint64_t{1}, std::uint64_t{0xdeadbeefULL},
        std::uint64_t{0xffffffffffffffffULL},
        TraceContext::derive(42, 0, 0).trace_id}) {
    const std::string hex = trace_id_hex(id);
    EXPECT_EQ(hex.size(), 16u);
    EXPECT_EQ(parse_trace_id_hex(hex), id);
  }
  EXPECT_EQ(parse_trace_id_hex(""), 0u);
  EXPECT_EQ(parse_trace_id_hex("xyz"), 0u);
  EXPECT_EQ(parse_trace_id_hex("123"), 0x123u);  // short hex is tolerated
  EXPECT_EQ(parse_trace_id_hex("00112233445566778899"), 0u);  // too long
}

TEST(CtxSpan, RecordsParentedSpanWithArgs) {
  Tracer& t = ftl::obs::real::tracer();
  t.start();
  const TraceContext parent = TraceContext::derive(42, 1, 2);
  { CtxSpan span("stage_a", parent, /*label=*/5, "testcat"); }
  t.stop();
  ASSERT_EQ(t.size(), 1u);

  const auto doc = json::parse(t.json());
  ASSERT_TRUE(doc.has_value());
  const json::Value* other = doc->find("otherData");
  ASSERT_NE(other, nullptr);
  const json::Value* t0 = other->find("t0_steady_ns");
  ASSERT_NE(t0, nullptr);
  EXPECT_TRUE(t0->is_string());
  EXPECT_NE(t0->string, "0");

  const json::Value* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 1u);
  const json::Value& e = events->array[0];
  EXPECT_EQ(e.find("name")->string, "stage_a");
  EXPECT_EQ(e.find("cat")->string, "testcat");
  const json::Value* args = e.find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(parse_trace_id_hex(args->find("trace_id")->string),
            parent.trace_id);
  EXPECT_EQ(parse_trace_id_hex(args->find("span_id")->string),
            parent.child_span_id(5));
  EXPECT_EQ(parse_trace_id_hex(args->find("parent_span_id")->string),
            parent.span_id);
}

TEST(CtxSpan, UnsampledParentIsInert) {
  Tracer& t = ftl::obs::real::tracer();
  t.start();
  const TraceContext unsampled;  // trace_id 0
  {
    CtxSpan span("never", unsampled, 0);
    EXPECT_FALSE(span.context().sampled());
  }
  t.stop();
  EXPECT_EQ(t.size(), 0u);
}

TEST(SlidingHistogram, QuantilesOverTheLiveWindow) {
  ftl::obs::real::Registry reg;
  // One huge epoch: nothing rotates out during the test.
  SlidingHistogram h("lat_us", 0.0, 1000.0, 100, /*window_epochs=*/4,
                     std::chrono::milliseconds(60000), &reg);
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i % 1000));
  EXPECT_EQ(h.window_count(), 1000u);
  const double p50 = h.quantile(0.50);
  const double p95 = h.quantile(0.95);
  const double p99 = h.quantile(0.999);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_NEAR(p50, 500.0, 50.0);
  EXPECT_NEAR(p95, 950.0, 50.0);
}

TEST(SlidingHistogram, FlushPublishesWindowGauges) {
  ftl::obs::real::Registry reg;
  SlidingHistogram h("stage_us", 0.0, 100.0, 50, 4,
                     std::chrono::milliseconds(60000), &reg,
                     {{"stage", "decide"}});
  for (int i = 0; i < 100; ++i) h.observe(10.0);
  h.flush();
  const ftl::obs::Snapshot snap = reg.snapshot();
  bool saw_p50 = false, saw_count = false;
  for (const auto& g : snap.gauges) {
    if (g.name == "stage_us.window_p50") {
      saw_p50 = true;
      EXPECT_NEAR(g.value, 10.0, 2.5);
      ASSERT_EQ(g.labels.size(), 1u);
      EXPECT_EQ(g.labels[0].second, "decide");
    }
    if (g.name == "stage_us.window_count") {
      saw_count = true;
      EXPECT_EQ(g.value, 100.0);
    }
  }
  EXPECT_TRUE(saw_p50);
  EXPECT_TRUE(saw_count);
}

TEST(SlidingHistogram, OldEpochsFallOutOfTheWindow) {
  ftl::obs::real::Registry reg;
  // 2-epoch window of 10 ms epochs: samples vanish ~30 ms later.
  SlidingHistogram h("w", 0.0, 10.0, 10, /*window_epochs=*/2,
                     std::chrono::milliseconds(10), &reg);
  for (int i = 0; i < 50; ++i) h.observe(5.0);
  EXPECT_EQ(h.window_count(), 50u);
  // Sleep past the whole window, then let an observe rotate the ring.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  h.observe(5.0);
  EXPECT_LE(h.window_count(), 1u + 50u);  // old epochs may already be gone
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  h.flush();
  EXPECT_EQ(h.window_count(), 0u);
}

// Reads one gauge value out of a snapshot; fails the test if absent.
double gauge_value(const ftl::obs::Snapshot& snap, std::string_view name) {
  for (const auto& g : snap.gauges) {
    if (g.name == name) return g.value;
  }
  ADD_FAILURE() << "gauge not found: " << name;
  return -1.0;
}

TEST(SlidingHistogramStaleness, UnflushedReadsDecayAfterIdleGap) {
  ftl::obs::real::Registry reg;
  // 2-epoch window of 25 ms epochs; nothing rotates the ring after the
  // burst — collect() itself must age the window out.
  SlidingHistogram h("idle_us", 0.0, 100.0, 50, /*window_epochs=*/2,
                     std::chrono::milliseconds(25), &reg);
  for (int i = 0; i < 40; ++i) h.observe(50.0);
  EXPECT_EQ(h.window_count(), 40u);
  EXPECT_GT(h.quantile(0.50), 0.0);
  // Sleep well past the window with zero observers in between.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_EQ(h.window_count(), 0u);
  EXPECT_EQ(h.quantile(0.50), 0.0);
  EXPECT_EQ(h.quantile(0.999), 0.0);
}

TEST(SlidingHistogramStaleness, FlushedGaugesReportEmptyWindowAfterIdleGap) {
  ftl::obs::real::Registry reg;
  SlidingHistogram h("gap_us", 0.0, 100.0, 50, /*window_epochs=*/2,
                     std::chrono::milliseconds(25), &reg,
                     {{"stage", "decide"}});
  for (int i = 0; i < 100; ++i) h.observe(10.0);
  h.flush();
  {
    const ftl::obs::Snapshot snap = reg.snapshot();
    EXPECT_EQ(gauge_value(snap, "gap_us.window_count"), 100.0);
    EXPECT_NEAR(gauge_value(snap, "gap_us.window_p50"), 10.0, 2.5);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  h.flush();
  {
    const ftl::obs::Snapshot snap = reg.snapshot();
    EXPECT_EQ(gauge_value(snap, "gap_us.window_count"), 0.0);
    EXPECT_EQ(gauge_value(snap, "gap_us.window_p50"), 0.0);
    EXPECT_EQ(gauge_value(snap, "gap_us.window_p95"), 0.0);
    EXPECT_EQ(gauge_value(snap, "gap_us.window_p99"), 0.0);
    EXPECT_EQ(gauge_value(snap, "gap_us.window_p999"), 0.0);
  }
}

TEST(SlidingHistogramStaleness, FreshSamplesAfterIdleGapStandAlone) {
  ftl::obs::real::Registry reg;
  SlidingHistogram h("resume_us", 0.0, 100.0, 50, /*window_epochs=*/2,
                     std::chrono::milliseconds(25), &reg);
  for (int i = 0; i < 50; ++i) h.observe(90.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  // After the gap, only the fresh burst is in the window: the old p-heavy
  // tail must not bleed into the new percentiles.
  for (int i = 0; i < 7; ++i) h.observe(10.0);
  EXPECT_EQ(h.window_count(), 7u);
  EXPECT_NEAR(h.quantile(0.999), 10.0, 2.5);
}

TEST(SlidingHistogram, ClampsOutOfRangeObservations) {
  ftl::obs::real::Registry reg;
  SlidingHistogram h("clamp", 0.0, 10.0, 10, 2,
                     std::chrono::milliseconds(60000), &reg);
  h.observe(-5.0);
  h.observe(1e9);
  EXPECT_EQ(h.window_count(), 2u);
  EXPECT_GE(h.quantile(0.0), 0.0);
  EXPECT_LE(h.quantile(1.0), 10.0);
}

}  // namespace

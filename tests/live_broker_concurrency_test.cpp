// Concurrent producer/consumer exercise of the LiveBroker, run under the
// tsan preset in CI (ctest -L thread). The assertions are conservation
// identities that must survive arbitrary interleavings; the real payload is
// ThreadSanitizer watching the per-source locking and the admission
// atomics.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "qnet/live_broker.hpp"

namespace ftl::qnet {
namespace {

LiveBrokerConfig concurrent_config() {
  LiveBrokerConfig cfg;
  cfg.qnet.pair_rate_hz = 2e5;
  cfg.qnet.fiber_km = 0.0;
  cfg.qnet.memory_t1_s = 50.0;  // no expiry: conservation stays simple
  cfg.qnet.memory_t2_s = 10.0;
  cfg.qnet.max_storage_s = 1.0;
  cfg.sources = 4;
  cfg.pool_slots = 256;
  return cfg;
}

TEST(LiveBrokerConcurrency, ProducerAndConsumersRaceSafely) {
  LiveBroker broker(concurrent_config(), /*seed=*/42);
  broker.start_producer(std::chrono::microseconds(100));
  ASSERT_TRUE(broker.producer_running());

  constexpr int kThreads = 3;
  constexpr std::uint64_t kDecisionsPerThread = 20000;
  std::atomic<std::uint64_t> quantum_hits{0};
  std::vector<std::thread> consumers;
  consumers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    consumers.emplace_back([&broker, &quantum_hits, t] {
      std::uint64_t local_hits = 0;
      for (std::uint64_t i = 0; i < kDecisionsPerThread; ++i) {
        const std::size_t source = (static_cast<std::size_t>(t) + i) % 4;
        const auto d =
            broker.decide_now(source, static_cast<std::uint8_t>(i & 1u));
        if (d.quantum) ++local_hits;
      }
      quantum_hits.fetch_add(local_hits, std::memory_order_relaxed);
    });
  }
  for (auto& c : consumers) c.join();
  broker.stop_producer();
  EXPECT_FALSE(broker.producer_running());

  const LiveBrokerStats s = broker.stats();
  EXPECT_EQ(s.requests, kThreads * kDecisionsPerThread);
  EXPECT_EQ(s.hits, quantum_hits.load());
  EXPECT_EQ(s.hits + s.fallbacks, s.requests);
  EXPECT_TRUE(s.conservation_holds());
  // The producer ran for the whole consumer phase; it must have made pairs,
  // and every win probability lies in [0.75, 1].
  EXPECT_GT(s.pairs_generated, 0u);
  EXPECT_GE(s.win_sum, 0.75 * static_cast<double>(s.requests) - 1e-6);
  EXPECT_LE(s.win_sum, 1.0 * static_cast<double>(s.requests) + 1e-6);
}

TEST(LiveBrokerConcurrency, AdmissionControlUnderContention) {
  LiveBrokerConfig cfg = concurrent_config();
  cfg.max_pending = 64;
  LiveBroker broker(cfg, /*seed=*/1);

  constexpr int kThreads = 4;
  constexpr int kRounds = 5000;
  std::atomic<std::uint64_t> admitted{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&broker, &admitted] {
      for (int i = 0; i < kRounds; ++i) {
        if (broker.try_admit(8)) {
          EXPECT_LE(broker.pending(), 64u);
          admitted.fetch_add(8, std::memory_order_relaxed);
          broker.release(8);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(broker.pending(), 0u);
  // Every request was either admitted or counted rejected.
  EXPECT_EQ(admitted.load() + broker.stats().rejected,
            static_cast<std::uint64_t>(kThreads) * kRounds * 8);
}

TEST(LiveBrokerConcurrency, ProducerStartStopIsIdempotent) {
  LiveBroker broker(concurrent_config(), /*seed=*/2);
  broker.start_producer(std::chrono::microseconds(200));
  broker.start_producer(std::chrono::microseconds(200));  // no-op
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  broker.stop_producer();
  broker.stop_producer();  // no-op
  const LiveBrokerStats s = broker.stats();
  EXPECT_GT(s.pairs_generated, 0u);
  EXPECT_TRUE(s.conservation_holds());
}

}  // namespace
}  // namespace ftl::qnet

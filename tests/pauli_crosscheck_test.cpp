// Property tests: Pauli-string sums against dense matrix algebra. Random
// sums applied the fast way (bit tricks, O(2^n) per term) must match the
// explicit kron-built matrices, and the Clifford anticommutation relations
// the Tsirelson construction relies on must hold as matrices.
#include <gtest/gtest.h>

#include <cmath>

#include "qcore/gates.hpp"
#include "qcore/pauli.hpp"
#include "util/rng.hpp"

namespace ftl::qcore {
namespace {

CMat pauli_of(char c) {
  switch (c) {
    case 'X': return gates::X();
    case 'Y': return gates::Y();
    case 'Z': return gates::Z();
    default: return gates::I();
  }
}

CMat dense_of(const PauliSum& sum) {
  const std::size_t n = sum.num_qubits();
  CMat total(std::size_t{1} << n, std::size_t{1} << n);
  for (const PauliTerm& t : sum.terms()) {
    CMat m = CMat::identity(1);
    for (char c : t.ops) m = m.kron(pauli_of(c));
    total += m * Cx{t.coefficient, 0.0};
  }
  return total;
}

StateVec random_state(std::size_t n, util::Rng& rng) {
  std::vector<Cx> amps(std::size_t{1} << n);
  for (Cx& a : amps) a = Cx{rng.normal(), rng.normal()};
  normalize(amps);
  return StateVec::from_amplitudes(std::move(amps));
}

class RandomPauliSums : public ::testing::TestWithParam<int> {};

TEST_P(RandomPauliSums, FastApplyMatchesDenseMatrix) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 2 + rng.uniform_int(3);  // 2..4 qubits
  const char alphabet[4] = {'I', 'X', 'Y', 'Z'};
  std::vector<PauliTerm> terms;
  const std::size_t num_terms = 1 + rng.uniform_int(5);
  for (std::size_t t = 0; t < num_terms; ++t) {
    PauliTerm term;
    term.coefficient = rng.normal();
    term.ops.resize(n);
    for (std::size_t q = 0; q < n; ++q) {
      term.ops[q] = alphabet[rng.uniform_int(4)];
    }
    terms.push_back(std::move(term));
  }
  const PauliSum sum(terms);
  const CMat dense = dense_of(sum);
  const StateVec psi = random_state(n, rng);

  const std::vector<Cx> fast = sum.apply(psi);
  const std::vector<Cx> slow = dense.apply(psi.amplitudes());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(std::abs(fast[i] - slow[i]), 0.0, 1e-10) << "i=" << i;
  }
  // Expectation agrees with <psi| M |psi>.
  EXPECT_NEAR(sum.expectation(psi),
              inner(psi.amplitudes(), slow).real(), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPauliSums, ::testing::Range(1, 13));

TEST(JordanWigner, GammasAnticommuteAndSquareToIdentity) {
  // The gamma strings used by games/realize: gamma_{2j} = Z^j X I...,
  // gamma_{2j+1} = Z^j Y I..., k = 3 qubits -> 6 gammas.
  const std::size_t k = 3;
  std::vector<CMat> gammas;
  for (std::size_t m = 0; m < 2 * k; ++m) {
    const std::size_t j = m / 2;
    std::string ops(k, 'I');
    for (std::size_t q = 0; q < j; ++q) ops[q] = 'Z';
    ops[j] = (m % 2 == 0) ? 'X' : 'Y';
    gammas.push_back(dense_of(PauliSum({PauliTerm{1.0, ops}})));
  }
  const CMat id = CMat::identity(std::size_t{1} << k);
  for (std::size_t a = 0; a < gammas.size(); ++a) {
    EXPECT_TRUE((gammas[a] * gammas[a]).approx_equal(id, 1e-10)) << a;
    for (std::size_t b = a + 1; b < gammas.size(); ++b) {
      const CMat anti = gammas[a] * gammas[b] + gammas[b] * gammas[a];
      EXPECT_NEAR(anti.frobenius_norm(), 0.0, 1e-10)
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(JordanWigner, UnitCombinationIsInvolution) {
  // (sum u_m gamma_m)^2 = |u|^2 I for any real vector u.
  const std::size_t k = 2;
  util::Rng rng(5);
  std::vector<double> u(2 * k);
  double norm2 = 0.0;
  for (double& x : u) {
    x = rng.normal();
    norm2 += x * x;
  }
  const double inv = 1.0 / std::sqrt(norm2);
  std::vector<PauliTerm> terms;
  for (std::size_t m = 0; m < 2 * k; ++m) {
    const std::size_t j = m / 2;
    std::string ops(k, 'I');
    for (std::size_t q = 0; q < j; ++q) ops[q] = 'Z';
    ops[j] = (m % 2 == 0) ? 'X' : 'Y';
    terms.push_back(PauliTerm{u[m] * inv, ops});
  }
  const CMat a = dense_of(PauliSum(terms));
  EXPECT_TRUE((a * a).approx_equal(CMat::identity(4), 1e-10));
}

}  // namespace
}  // namespace ftl::qcore

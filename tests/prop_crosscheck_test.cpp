// Property suite: randomized cross-validation between independent
// implementations of the same physics/simulation:
//
//   * typed affinity simulator vs the plain {C, E} simulator on identical
//     seeds (a binary affinity graph with kPriorityPairs is, by
//     construction, the paper's kPaperCFirst policy);
//   * CorrelationBox::from_strategy vs the strategy's own Born-rule
//     expectation values, including full game values;
//   * the see-saw lower bound vs the Tsirelson SDP on random XOR games.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "games/box.hpp"
#include "games/generators.hpp"
#include "games/invariants.hpp"
#include "games/seesaw.hpp"
#include "games/xor_game.hpp"
#include "lb/invariants.hpp"
#include "lb/simulator.hpp"
#include "lb/strategy.hpp"
#include "lb/typed_simulator.hpp"
#include "util/proptest.hpp"

namespace {

using ftl::games::CorrelationBox;
using ftl::games::QuantumStrategy;
using ftl::games::XorGame;
using ftl::lb::LbResult;
using ftl::proptest::CaseResult;
using ftl::proptest::for_all;
using ftl::proptest::Options;
using ftl::util::Rng;

Options suite(const std::string& name, std::size_t cases) {
  Options o;
  o.name = name;
  o.cases = cases;
  return o;
}

// --- typed vs untyped simulators on identical seeds -------------------------

struct TwinCase {
  ftl::lb::LbConfig plain;
  ftl::lb::TypedLbConfig typed;
};

TwinCase random_twin_case(Rng& rng) {
  TwinCase c;
  c.plain.num_balancers = 2 * (2 + rng.uniform_int(std::uint64_t{15}));
  // Keep the load at or below ~0.85 so queues stay inside the typed
  // server's bounded pairing scan window; above it the two service
  // implementations may legitimately diverge on very long queues.
  const auto min_servers = static_cast<std::size_t>(
      static_cast<double>(c.plain.num_balancers) / 0.85) + 1;
  c.plain.num_servers = min_servers + rng.uniform_int(std::uint64_t{20});
  c.plain.p_colocate = rng.uniform();
  c.plain.batch_size = 1;
  c.plain.policy = ftl::lb::ServicePolicy::kPaperCFirst;
  c.plain.warmup_steps = static_cast<long>(rng.uniform_int(std::uint64_t{60}));
  c.plain.measure_steps =
      50 + static_cast<long>(rng.uniform_int(std::uint64_t{250}));
  c.plain.seed = rng.next_u64();

  c.typed.num_balancers = c.plain.num_balancers;
  c.typed.num_servers = c.plain.num_servers;
  c.typed.type_probs = {c.plain.p_colocate, 1.0 - c.plain.p_colocate};
  c.typed.warmup_steps = c.plain.warmup_steps;
  c.typed.measure_steps = c.plain.measure_steps;
  c.typed.interference = 0.0;
  c.typed.policy = ftl::lb::TypedServicePolicy::kPriorityPairs;
  c.typed.seed = c.plain.seed;
  return c;
}

TEST(PropCrosscheck, TypedSimulatorReproducesPlainSimulatorExactly) {
  const auto r = for_all(
      suite("typed-vs-plain-lb", 100), random_twin_case,
      [](const TwinCase& c) {
        ftl::lb::RandomStrategy plain_strategy;
        const LbResult plain = ftl::lb::run_lb_sim(c.plain, plain_strategy);

        // Binary affinity graph: type 0 = C (self-colocating), type 1 = E
        // (exclusive against everything).
        ftl::games::AffinityGraph graph(2);
        graph.set(0, 1, ftl::games::Affinity::kExclusive);
        graph.set(1, 1, ftl::games::Affinity::kExclusive);
        ftl::lb::TypedRandomStrategy typed_strategy;
        const LbResult typed =
            ftl::lb::run_typed_lb_sim(c.typed, graph, typed_strategy);

        const std::string plain_violation =
            ftl::lb::conservation_violation(plain);
        if (!plain_violation.empty()) {
          return CaseResult::fail("plain: " + plain_violation);
        }
        const std::string typed_violation =
            ftl::lb::conservation_violation(typed);
        if (!typed_violation.empty()) {
          return CaseResult::fail("typed: " + typed_violation);
        }
        if (plain.arrived != typed.arrived || plain.served != typed.served ||
            plain.still_queued != typed.still_queued) {
          return CaseResult::fail(
              "counters diverge: plain arrived/served/queued " +
              std::to_string(plain.arrived) + "/" +
              std::to_string(plain.served) + "/" +
              std::to_string(plain.still_queued) + " vs typed " +
              std::to_string(typed.arrived) + "/" +
              std::to_string(typed.served) + "/" +
              std::to_string(typed.still_queued));
        }
        if (std::abs(plain.mean_queue_length - typed.mean_queue_length) >
                1e-12 ||
            std::abs(plain.mean_delay - typed.mean_delay) > 1e-12 ||
            std::abs(plain.throughput - typed.throughput) > 1e-12) {
          return CaseResult::fail("time-averaged metrics diverge");
        }
        return CaseResult::pass();
      });
  ASSERT_TRUE(r.ok) << r.message;
}

// --- CorrelationBox::from_strategy vs Born expectations ---------------------

TEST(PropCrosscheck, BoxFromStrategyMatchesBornExpectations) {
  struct Case {
    QuantumStrategy strategy;
    XorGame game;
  };
  const auto r = for_all(
      suite("box-vs-strategy", 120),
      [](Rng& rng) {
        const bool mixed = rng.bernoulli(0.5);
        Case c{ftl::games::random_quantum_strategy(2, 2, mixed, rng),
               ftl::games::random_xor_game(2, 2, rng)};
        return c;
      },
      [](const Case& c) {
        const CorrelationBox box = CorrelationBox::from_strategy(c.strategy);
        const std::string violation = ftl::games::box_violation(box);
        if (!violation.empty()) {
          return CaseResult::fail("Born-rule box invalid: " + violation);
        }
        const std::string mismatch =
            ftl::games::box_strategy_mismatch(box, c.strategy);
        if (!mismatch.empty()) return CaseResult::fail(mismatch);
        const auto game = c.game.to_two_party_game();
        const double via_box = box.game_value(game);
        const double via_strategy = c.strategy.value(game);
        if (std::abs(via_box - via_strategy) > 1e-9) {
          return CaseResult::fail("game value: box " + std::to_string(via_box) +
                                  " vs strategy " +
                                  std::to_string(via_strategy));
        }
        return CaseResult::pass();
      });
  ASSERT_TRUE(r.ok) << r.message;
}

// Alice's marginal must not depend on Bob's input (and vice versa) for any
// random strategy — the no-signaling law the paper's §2 "respecting
// causality" clause requires of every physical source.
TEST(PropCrosscheck, RandomStrategiesAreNoSignaling) {
  const auto r = for_all(
      suite("strategies-no-signaling", 120),
      [](Rng& rng) {
        const bool mixed = rng.bernoulli(0.5);
        return ftl::games::random_quantum_strategy(2, 2, mixed, rng);
      },
      [](const QuantumStrategy& s) {
        for (std::size_t x = 0; x < 2; ++x) {
          for (int a = 0; a < 2; ++a) {
            const double m0 = s.alice_marginal(x, 0, a);
            const double m1 = s.alice_marginal(x, 1, a);
            if (std::abs(m0 - m1) > 1e-9) {
              return CaseResult::fail("Alice's marginal depends on y by " +
                                      std::to_string(std::abs(m0 - m1)));
            }
          }
        }
        for (std::size_t y = 0; y < 2; ++y) {
          for (int b = 0; b < 2; ++b) {
            const double m0 = s.bob_marginal(0, y, b);
            const double m1 = s.bob_marginal(1, y, b);
            if (std::abs(m0 - m1) > 1e-9) {
              return CaseResult::fail("Bob's marginal depends on x by " +
                                      std::to_string(std::abs(m0 - m1)));
            }
          }
        }
        return CaseResult::pass();
      });
  ASSERT_TRUE(r.ok) << r.message;
}

// --- see-saw lower bound vs Tsirelson SDP -----------------------------------

TEST(PropCrosscheck, SeesawNeverExceedsTsirelsonSdp) {
  struct Case {
    XorGame game;
    std::uint64_t solver_seed;
  };
  const auto r = for_all(
      suite("seesaw-vs-sdp", 100),
      [](Rng& rng) {
        Case c{ftl::games::random_xor_game(2, 2, rng), rng.next_u64()};
        return c;
      },
      [](const Case& c) {
        ftl::sdp::GramOptions sdp_opts;
        sdp_opts.restarts = 3;
        sdp_opts.seed = c.solver_seed;
        const double sdp_value =
            (1.0 + c.game.quantum_bias(sdp_opts).bias) / 2.0;

        ftl::games::SeesawOptions ss_opts;
        ss_opts.restarts = 2;
        ss_opts.max_rounds = 40;
        ss_opts.seed = c.solver_seed + 1;
        const auto seesaw =
            ftl::games::seesaw_optimize(c.game.to_two_party_game(), ss_opts);

        if (seesaw.value > sdp_value + 1e-4) {
          return CaseResult::fail(
              "see-saw 'lower bound' " + std::to_string(seesaw.value) +
              " exceeds SDP optimum " + std::to_string(sdp_value));
        }
        if (c.game.classical_value() > sdp_value + 1e-4) {
          return CaseResult::fail("classical value exceeds quantum value");
        }
        return CaseResult::pass();
      });
  ASSERT_TRUE(r.ok) << r.message;
}

}  // namespace

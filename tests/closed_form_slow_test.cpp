// Heavy half of the closed-form oracle suite (ctest label: slow): the
// larger odd-cycle SDPs, run at full restart budget so a Tsirelson solver
// regression cannot hide behind "the small cases still pass".
#include <gtest/gtest.h>

#include "games/generators.hpp"
#include "games/value_engine.hpp"

namespace {

using ftl::games::odd_cycle_classical_bias;
using ftl::games::odd_cycle_game;
using ftl::games::odd_cycle_quantum_bias;

TEST(ClosedFormSlow, OddCycleQuantumMatchesTsirelsonUpToEleven) {
  ftl::sdp::GramOptions opts;
  opts.seed = 424242;
  for (std::size_t n : {7u, 9u, 11u}) {
    const auto game = odd_cycle_game(n);
    const auto q = game.quantum_bias(opts);
    EXPECT_TRUE(q.converged) << "n = " << n;
    EXPECT_NEAR(q.bias, odd_cycle_quantum_bias(n), 1e-6) << "n = " << n;
    EXPECT_NEAR(game.classical_bias(), odd_cycle_classical_bias(n), 1e-12);
  }
}

// The engine with the closed-form layer OFF must still reproduce the
// formulas through its bnb + SDP path — the strongest cross-check the
// engine gets: formula vs fully independent solvers at every odd n.
TEST(ClosedFormSlow, EngineSolverPathReproducesOddCycleFormulas) {
  ftl::games::XorValueOptions opts;
  opts.use_closed_form = false;
  opts.sdp.seed = 31337;
  ftl::games::XorValueEngine engine(opts);
  for (std::size_t n : {5u, 7u, 9u, 11u}) {
    const auto r = engine.evaluate(odd_cycle_game(n));
    EXPECT_FALSE(r.from_closed_form);
    EXPECT_NEAR(r.classical_bias, odd_cycle_classical_bias(n), 1e-12)
        << "n = " << n;
    EXPECT_NEAR(r.quantum_bias, odd_cycle_quantum_bias(n), 1e-6)
        << "n = " << n;
    EXPECT_TRUE(r.advantage);
  }
}

}  // namespace

#include "qnet/distill.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "qcore/channels.hpp"

namespace ftl::qnet {
namespace {

/// Werner visibility for a given Bell fidelity: v = (4F - 1) / 3.
double visibility_of(double fidelity) { return (4.0 * fidelity - 1.0) / 3.0; }

TEST(Distill, SimulationMatchesClosedFormOnWerner) {
  for (double f : {0.55, 0.6, 0.7, 0.8, 0.9, 0.95}) {
    const auto w = qcore::Density::werner(visibility_of(f));
    const DistillResult r = bbpssw_round(w, w);
    EXPECT_NEAR(r.success_probability, werner_distill_success(f), 1e-10)
        << "f=" << f;
    EXPECT_NEAR(r.fidelity, werner_distilled_fidelity(f), 1e-10) << "f=" << f;
  }
}

TEST(Distill, ImprovesFidelityAboveHalf) {
  for (double f : {0.55, 0.7, 0.85}) {
    EXPECT_GT(werner_distilled_fidelity(f), f) << "f=" << f;
  }
}

TEST(Distill, DoesNotImproveAtOrBelowHalf) {
  EXPECT_NEAR(werner_distilled_fidelity(0.5), 0.5, 1e-12);
  EXPECT_LT(werner_distilled_fidelity(0.4), 0.4);
}

TEST(Distill, PerfectPairsStayPerfect) {
  const auto bell =
      qcore::Density::from_state(qcore::StateVec::bell_phi_plus());
  const DistillResult r = bbpssw_round(bell, bell);
  EXPECT_NEAR(r.fidelity, 1.0, 1e-10);
  EXPECT_NEAR(r.success_probability, 1.0, 1e-10);
}

TEST(Distill, OutputStateIsPhysical) {
  const auto w = qcore::Density::werner(0.6);
  const DistillResult r = bbpssw_round(w, w);
  EXPECT_TRUE(r.state.is_valid(1e-8));
  EXPECT_EQ(r.state.num_qubits(), 2u);
}

TEST(Distill, AsymmetricInputsWork) {
  // One good and one mediocre pair still distill to something sensible.
  const auto good = qcore::Density::werner(0.95);
  const auto poor = qcore::Density::werner(0.6);
  const DistillResult r = bbpssw_round(good, poor);
  EXPECT_GT(r.success_probability, 0.5);
  EXPECT_TRUE(r.state.is_valid(1e-8));
}

TEST(Distill, BbpsswWorsensPurePhaseErrors) {
  // Textbook pitfall: on a phase-error-only pair the coincidence test
  // always passes (p = 1) and the errors XOR onto the kept pair, so
  // F -> F^2 + (1 - F)^2 < F. A QNIC must not run plain BBPSSW on
  // storage-dephased pairs.
  auto rho = qcore::Density::from_state(qcore::StateVec::bell_phi_plus());
  rho.apply_channel(qcore::dephasing(0.5), 0);
  const double before = rho.fidelity_with(qcore::StateVec::bell_phi_plus());
  const DistillResult r = bbpssw_round(rho, rho);
  EXPECT_NEAR(r.success_probability, 1.0, 1e-10);
  EXPECT_NEAR(r.fidelity, before * before + (1.0 - before) * (1.0 - before),
              1e-10);
  EXPECT_LT(r.fidelity, before);
}

TEST(Distill, DejmpsImprovesDephasedPairs) {
  // The DEJMPS rotation converts phase errors into detectable bit errors;
  // storage-decohered pairs then genuinely improve.
  auto rho = qcore::Density::from_state(qcore::StateVec::bell_phi_plus());
  rho.apply_channel(qcore::dephasing(0.5), 0);
  const double before = rho.fidelity_with(qcore::StateVec::bell_phi_plus());
  const DistillResult r = dejmps_round(rho, rho);
  EXPECT_GT(r.fidelity, before);
  EXPECT_GT(r.success_probability, 0.5);
  EXPECT_TRUE(r.state.is_valid(1e-8));
}

TEST(Distill, DejmpsAlsoHandlesWerner) {
  const auto w = qcore::Density::werner(visibility_of(0.7));
  const DistillResult r = dejmps_round(w, w);
  EXPECT_GT(r.fidelity, 0.7);
}

TEST(Recurrence, ReachesTargetFromModerateFidelity) {
  const RecurrenceResult r = distill_to_target(0.7, 0.9);
  EXPECT_TRUE(r.reached_target);
  EXPECT_GE(r.fidelity, 0.9);
  EXPECT_GT(r.rounds, 1);
  // Cost grows geometrically: more than 2^rounds raw pairs.
  EXPECT_GT(r.expected_raw_pairs, std::pow(2.0, r.rounds) - 1e-9);
}

TEST(Recurrence, AlreadyAboveTargetUsesNoRounds) {
  const RecurrenceResult r = distill_to_target(0.95, 0.9);
  EXPECT_TRUE(r.reached_target);
  EXPECT_EQ(r.rounds, 0);
  EXPECT_DOUBLE_EQ(r.expected_raw_pairs, 1.0);
}

TEST(Recurrence, HopelessBelowThreshold) {
  const RecurrenceResult r = distill_to_target(0.45, 0.9);
  EXPECT_FALSE(r.reached_target);
  EXPECT_EQ(r.rounds, 0);
}

TEST(Recurrence, MonotoneConvergenceTowardsOne) {
  double f = 0.55;
  for (int i = 0; i < 20; ++i) {
    const double next = werner_distilled_fidelity(f);
    EXPECT_GT(next, f);
    f = next;
  }
  EXPECT_GT(f, 0.99);
}

TEST(Recurrence, EnablesChshAdvantageFromUselessSource) {
  // A fidelity-0.7 source is useless for CHSH (needs F > ~0.78); two
  // rounds of distillation fix that at a quantifiable pair cost.
  const double chsh_threshold = (1.0 + 3.0 / std::sqrt(2.0)) / 4.0;
  EXPECT_LT(0.7, chsh_threshold);
  const RecurrenceResult r = distill_to_target(0.7, chsh_threshold);
  EXPECT_TRUE(r.reached_target);
  EXPECT_LE(r.rounds, 3);
  EXPECT_LT(r.expected_raw_pairs, 100.0);
}

}  // namespace
}  // namespace ftl::qnet

// Property suite: the box hierarchy (§2) on random behaviours.
//
// Local boxes must satisfy every classical law, quantum boxes must respect
// Tsirelson's bound while staying no-signaling, and the checkers must
// reject deliberately signaling boxes quantitatively.
#include <gtest/gtest.h>

#include <cmath>

#include "games/box.hpp"
#include "games/generators.hpp"
#include "games/invariants.hpp"
#include "util/proptest.hpp"

namespace {

using ftl::games::CorrelationBox;
using ftl::proptest::CaseResult;
using ftl::proptest::for_all;
using ftl::proptest::Options;
using ftl::util::Rng;

Options suite(const std::string& name, std::size_t cases = 150) {
  Options o;
  o.name = name;
  o.cases = cases;
  return o;
}

TEST(PropGamesBox, RandomLocalBoxesSatisfyAllClassicalLaws) {
  const auto r = for_all(
      suite("local-boxes-classical-laws", 200),
      [](Rng& rng) { return ftl::games::random_local_box(rng); },
      [](const CorrelationBox& box) {
        const std::string violation = ftl::games::box_violation(box);
        if (!violation.empty()) return CaseResult::fail(violation);
        if (!box.is_local_admissible(1e-7)) {
          return CaseResult::fail("local box breaks |CHSH| <= 2: S = " +
                                  std::to_string(box.chsh_value()));
        }
        return CaseResult::pass();
      });
  ASSERT_TRUE(r.ok) << r.message;
}

TEST(PropGamesBox, RandomQuantumBoxesRespectTsirelson) {
  const auto r = for_all(
      suite("quantum-boxes-tsirelson", 130),
      [](Rng& rng) { return ftl::games::random_quantum_box(rng); },
      [](const CorrelationBox& box) {
        const std::string violation = ftl::games::box_violation(box);
        if (!violation.empty()) return CaseResult::fail(violation);
        if (!box.is_quantum_admissible(1e-7)) {
          return CaseResult::fail(
              "Born-rule box breaks Tsirelson: |S| = " +
              std::to_string(std::abs(box.chsh_value())) + " > 2*sqrt(2)");
        }
        return CaseResult::pass();
      });
  ASSERT_TRUE(r.ok) << r.message;
}

TEST(PropGamesBox, SignalingBoxesAreRejectedQuantitatively) {
  const auto r = for_all(
      suite("signaling-boxes-rejected", 150),
      [](Rng& rng) { return rng.uniform(0.05, 1.0); },
      [](const double& strength) {
        const CorrelationBox box = ftl::games::signaling_box(strength);
        if (!box.is_valid(1e-9)) {
          return CaseResult::fail("signaling box should still be a valid "
                                  "conditional distribution");
        }
        if (ftl::games::is_no_signaling(box)) {
          return CaseResult::fail("checker missed signaling of strength " +
                                  std::to_string(strength));
        }
        const double measured = box.no_signaling_violation();
        if (std::abs(measured - strength) > 1e-9) {
          return CaseResult::fail(
              "violation magnitude wrong: expected " +
              std::to_string(strength) + ", measured " +
              std::to_string(measured));
        }
        return CaseResult::pass();
      },
      ftl::proptest::shrink_double);
  ASSERT_TRUE(r.ok) << r.message;
}

// CHSH is linear in the box, so mixing must interpolate the CHSH value —
// and a mixture of local boxes must stay local.
TEST(PropGamesBox, MixingIsLinearAndPreservesLocality) {
  struct Case {
    CorrelationBox a;
    CorrelationBox b;
    double lambda;
  };
  const auto r = for_all(
      suite("mixing-linearity", 150),
      [](Rng& rng) {
        Case c{ftl::games::random_local_box(rng),
               ftl::games::random_local_box(rng), rng.uniform()};
        return c;
      },
      [](const Case& c) {
        const CorrelationBox mixed = c.a.mix(c.b, c.lambda);
        const std::string violation = ftl::games::box_violation(mixed);
        if (!violation.empty()) return CaseResult::fail(violation);
        const double expected =
            c.lambda * c.a.chsh_value() + (1.0 - c.lambda) * c.b.chsh_value();
        if (std::abs(mixed.chsh_value() - expected) > 1e-9) {
          return CaseResult::fail("CHSH not linear under mixing");
        }
        if (!mixed.is_local_admissible(1e-7)) {
          return CaseResult::fail("mixture of local boxes left the local set");
        }
        return CaseResult::pass();
      });
  ASSERT_TRUE(r.ok) << r.message;
}

// The PR box mixed with uniform noise crosses the classical and quantum
// boundaries exactly where theory says: S = 4*lambda, local iff
// lambda <= 1/2, quantum-admissible iff lambda <= 1/sqrt(2).
TEST(PropGamesBox, NoisyPrBoxCrossesBoundsAtTheoreticalThresholds) {
  const auto r = for_all(
      suite("noisy-pr-box-thresholds", 150),
      [](Rng& rng) { return rng.uniform(); },
      [](const double& lambda) {
        const CorrelationBox box =
            CorrelationBox::pr_box().mix(CorrelationBox::uniform(), lambda);
        const std::string violation = ftl::games::box_violation(box);
        if (!violation.empty()) return CaseResult::fail(violation);
        if (std::abs(box.chsh_value() - 4.0 * lambda) > 1e-9) {
          return CaseResult::fail("S(lambda) != 4*lambda");
        }
        const bool local = box.is_local_admissible(1e-9);
        if (local != (lambda <= 0.5 + 1e-9)) {
          return CaseResult::fail("local boundary misplaced at lambda = " +
                                  std::to_string(lambda));
        }
        const bool quantum = box.is_quantum_admissible(1e-9);
        if (quantum != (lambda <= 1.0 / std::sqrt(2.0) + 1e-9)) {
          return CaseResult::fail("Tsirelson boundary misplaced at lambda = " +
                                  std::to_string(lambda));
        }
        return CaseResult::pass();
      },
      ftl::proptest::shrink_double);
  ASSERT_TRUE(r.ok) << r.message;
}

}  // namespace

// Run-report serialization: the emitted document must parse with the
// in-tree strict parser and carry schema, metadata, and every metric kind.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"

namespace {

namespace json = ftl::obs::json;
using ftl::obs::Labels;
using ftl::obs::RunMeta;

ftl::obs::Snapshot make_snapshot() {
  ftl::obs::real::Registry reg;
  reg.counter("lb.requests.arrived").inc(120);
  reg.counter("lb.chsh.rounds_won", Labels{{"source", "quantum"}}).inc(90);
  reg.gauge("lb.queue_depth.high_water").update_max(17.0);
  ftl::obs::real::Histogram& h = reg.histogram("lb.queue_depth", 0.0, 8.0, 4);
  for (double x : {0.5, 1.5, 1.5, 2.5, 3.5, 9.0}) h.observe(x);
  return reg.snapshot();
}

const json::Value& member(const json::Value& v, std::string_view k) {
  const json::Value* m = v.find(k);
  EXPECT_NE(m, nullptr) << "missing member " << k;
  static const json::Value kNull{};
  return m == nullptr ? kNull : *m;
}

TEST(ObsReport, JsonCarriesSchemaMetaAndMetrics) {
  RunMeta meta;
  meta.name = "report_test";
  meta.seed = 424242;
  meta.config = "unit test \"quoted\" config";
  meta.wall_time_s = 1.25;

  const std::string text = ftl::obs::run_report_json(make_snapshot(), meta);
  const auto doc = json::parse(text);
  ASSERT_TRUE(doc.has_value()) << text;

  EXPECT_EQ(member(*doc, "schema").string, "ftl.obs.run_report/v1");
  const json::Value& m = member(*doc, "meta");
  EXPECT_EQ(member(m, "name").string, "report_test");
  EXPECT_DOUBLE_EQ(member(m, "seed").number, 424242.0);
  EXPECT_EQ(member(m, "config").string, meta.config);
  EXPECT_DOUBLE_EQ(member(m, "wall_time_s").number, 1.25);
  EXPECT_EQ(member(m, "git_rev").string, ftl::obs::git_rev());
  EXPECT_EQ(member(m, "obs_enabled").boolean, ftl::obs::kEnabled);

  const json::Value& metrics = member(*doc, "metrics");
  const json::Value& counters = member(metrics, "counters");
  ASSERT_TRUE(counters.is_array());
  ASSERT_EQ(counters.array.size(), 2u);
  bool found_labeled = false;
  for (const json::Value& c : counters.array) {
    if (member(c, "name").string == "lb.chsh.rounds_won") {
      found_labeled = true;
      EXPECT_DOUBLE_EQ(member(c, "value").number, 90.0);
      const json::Value& labels = member(c, "labels");
      ASSERT_TRUE(labels.is_object());
      EXPECT_EQ(member(labels, "source").string, "quantum");
    }
  }
  EXPECT_TRUE(found_labeled);

  const json::Value& gauges = member(metrics, "gauges");
  ASSERT_EQ(gauges.array.size(), 1u);
  EXPECT_DOUBLE_EQ(member(gauges.array[0], "value").number, 17.0);

  const json::Value& hists = member(metrics, "histograms");
  ASSERT_EQ(hists.array.size(), 1u);
  const json::Value& h = hists.array[0];
  EXPECT_EQ(member(h, "name").string, "lb.queue_depth");
  EXPECT_DOUBLE_EQ(member(h, "lo").number, 0.0);
  EXPECT_DOUBLE_EQ(member(h, "hi").number, 8.0);
  ASSERT_TRUE(member(h, "counts").is_array());
  EXPECT_EQ(member(h, "counts").array.size(), 4u);
  EXPECT_DOUBLE_EQ(member(h, "total").number, 6.0);
  EXPECT_DOUBLE_EQ(member(h, "overflow").number, 1.0);
  // Quantiles are precomputed for downstream plotting.
  EXPECT_GT(member(h, "p50").number, 0.0);
  EXPECT_GE(member(h, "p99").number, member(h, "p50").number);
}

TEST(ObsReport, WritesFileRoundTrip) {
  RunMeta meta;
  meta.name = "file_test";
  meta.seed = 7;
  const std::string path = testing::TempDir() + "/obs_report_test.json";
  ASSERT_TRUE(ftl::obs::write_run_report(path, make_snapshot(), meta));

  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  const auto doc = json::parse(ss.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(member(*doc, "schema").string, "ftl.obs.run_report/v1");
  std::remove(path.c_str());
}

TEST(ObsReport, WriteToUnwritablePathFails) {
  RunMeta meta;
  EXPECT_FALSE(ftl::obs::write_run_report(
      "/nonexistent-dir/never/report.json", {}, meta));
}

TEST(ObsReport, GitRevIsNonEmpty) {
  const std::string rev = ftl::obs::git_rev();
  EXPECT_FALSE(rev.empty());
}

TEST(ObsReport, EmptySnapshotStillValid) {
  const auto doc = json::parse(ftl::obs::run_report_json({}, RunMeta{}));
  ASSERT_TRUE(doc.has_value());
  EXPECT_TRUE(member(member(*doc, "metrics"), "counters").array.empty());
}

}  // namespace

// ftlbench profile tooling: folded-stack parsing, per-frame self/total
// aggregation (with recursion dedupe), and the profile-diff movers table.
#include "ftlbench/profile.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ftl::benchtool {
namespace {

TEST(ParseFolded, ParsesStacksAndAccumulatesDuplicates) {
  FoldedProfile p;
  std::string error;
  ASSERT_TRUE(parse_folded("main;work;hot 3\n"
                           "main;idle 2\n"
                           "\n"
                           "main;work;hot 4\n",
                           p, error));
  EXPECT_TRUE(error.empty());
  EXPECT_EQ(p.total_samples, 9u);
  ASSERT_EQ(p.stacks.size(), 2u);
  EXPECT_EQ(p.stacks.at("main;work;hot"), 7u);
  EXPECT_EQ(p.stacks.at("main;idle"), 2u);
}

TEST(ParseFolded, ToleratesCrlfAndMissingTrailingNewline) {
  FoldedProfile p;
  std::string error;
  ASSERT_TRUE(parse_folded("a;b 1\r\nc 2", p, error));
  EXPECT_EQ(p.total_samples, 3u);
  EXPECT_EQ(p.stacks.at("c"), 2u);
}

TEST(ParseFolded, RejectsMalformedLinesWithLineNumber) {
  FoldedProfile p;
  std::string error;
  EXPECT_FALSE(parse_folded("a;b 1\nno-count-here\n", p, error));
  EXPECT_NE(error.find("line 2"), std::string::npos);
  EXPECT_FALSE(parse_folded("a;b zero\n", p, error));
  EXPECT_FALSE(parse_folded("a;b 0\n", p, error));  // counts are positive
  EXPECT_FALSE(parse_folded(" 5\n", p, error));     // empty stack
}

TEST(ParseFolded, EmptyInputIsAnEmptyProfile) {
  FoldedProfile p;
  std::string error;
  ASSERT_TRUE(parse_folded("", p, error));
  EXPECT_EQ(p.total_samples, 0u);
  EXPECT_TRUE(p.stacks.empty());
}

TEST(FrameStats, SelfAndTotalWeights) {
  FoldedProfile p;
  std::string error;
  ASSERT_TRUE(parse_folded("main;f;g 3\nmain;f 2\nmain;h 5\n", p, error));
  const auto stats = frame_stats(p);
  EXPECT_EQ(stats.at("main").self, 0u);
  EXPECT_EQ(stats.at("main").total, 10u);
  EXPECT_EQ(stats.at("f").self, 2u);
  EXPECT_EQ(stats.at("f").total, 5u);
  EXPECT_EQ(stats.at("g").self, 3u);
  EXPECT_EQ(stats.at("g").total, 3u);
  EXPECT_EQ(stats.at("h").self, 5u);
  EXPECT_EQ(stats.at("h").total, 5u);
}

TEST(FrameStats, RecursiveFramesCountOncePerStack) {
  FoldedProfile p;
  std::string error;
  ASSERT_TRUE(parse_folded("main;rec;rec;rec 4\n", p, error));
  const auto stats = frame_stats(p);
  // total must never exceed the profile's sample count, however deep the
  // recursion: the frame was on-stack for exactly 4 samples.
  EXPECT_EQ(stats.at("rec").total, 4u);
  EXPECT_EQ(stats.at("rec").self, 4u);
  EXPECT_EQ(stats.at("main").total, 4u);
}

TEST(DiffProfiles, SortsByAbsoluteMovementAndNormalizesPerSide) {
  FoldedProfile base, cand;
  std::string error;
  // baseline: hot=50%, warm=50%. candidate: hot=80%, warm=20% — and the
  // sides have different totals, so the diff must normalize per side.
  ASSERT_TRUE(parse_folded("main;hot 5\nmain;warm 5\n", base, error));
  ASSERT_TRUE(parse_folded("main;hot 16\nmain;warm 4\n", cand, error));
  const auto rows = diff_profiles(base, cand);
  ASSERT_GE(rows.size(), 3u);  // main, hot, warm
  EXPECT_EQ(rows[0].frame, "hot");
  EXPECT_NEAR(rows[0].base_pct, 50.0, 1e-9);
  EXPECT_NEAR(rows[0].cand_pct, 80.0, 1e-9);
  EXPECT_NEAR(rows[0].delta_pp, 30.0, 1e-9);
  EXPECT_EQ(rows[1].frame, "warm");
  EXPECT_NEAR(rows[1].delta_pp, -30.0, 1e-9);
  // main is on every stack on both sides: 100% -> 100%, no movement.
  EXPECT_EQ(rows.back().frame, "main");
  EXPECT_NEAR(rows.back().delta_pp, 0.0, 1e-9);
}

TEST(DiffProfiles, CandidateOnlyFramesAppear) {
  FoldedProfile base, cand;
  std::string error;
  ASSERT_TRUE(parse_folded("main;a 10\n", base, error));
  ASSERT_TRUE(parse_folded("main;a 5\nmain;brand_new 5\n", cand, error));
  const auto rows = diff_profiles(base, cand);
  bool saw_new = false;
  for (const auto& r : rows) {
    if (r.frame == "brand_new") {
      saw_new = true;
      EXPECT_NEAR(r.base_pct, 0.0, 1e-9);
      EXPECT_NEAR(r.cand_pct, 50.0, 1e-9);
      EXPECT_NEAR(r.delta_pp, 50.0, 1e-9);
    }
  }
  EXPECT_TRUE(saw_new);
}

TEST(DiffProfiles, SelfDiffIsAllZeros) {
  FoldedProfile p;
  std::string error;
  ASSERT_TRUE(parse_folded("a;b 1\na;c 2\nd 3\n", p, error));
  for (const auto& r : diff_profiles(p, p)) {
    EXPECT_NEAR(r.delta_pp, 0.0, 1e-9) << r.frame;
  }
}

TEST(DiffProfiles, DeterministicTieBreakByName) {
  FoldedProfile base, cand;
  std::string error;
  ASSERT_TRUE(parse_folded("x 1\ny 1\n", base, error));
  ASSERT_TRUE(parse_folded("x 1\ny 1\n", cand, error));
  const auto rows = diff_profiles(base, cand);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].frame, "x");
  EXPECT_EQ(rows[1].frame, "y");
}

TEST(RunBenchProfiled, MissingBinaryFailsWithClearError) {
  ProfiledRunConfig config;
  config.bench_dir = "/nonexistent-dir";
  config.bench = "bench_nope";
  config.out_path = "/tmp/never-written.folded";
  std::string error;
  EXPECT_FALSE(run_bench_profiled(config, error));
  EXPECT_NE(error.find("no such bench binary"), std::string::npos);
}

}  // namespace
}  // namespace ftl::benchtool

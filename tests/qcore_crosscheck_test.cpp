// Cross-validation between the state-vector and density-matrix simulators:
// the same circuit run through both representations must produce identical
// statistics. Random-circuit property tests catch representation bugs that
// hand-picked cases miss.
#include <gtest/gtest.h>

#include <cmath>

#include "qcore/density.hpp"
#include "qcore/entanglement.hpp"
#include "qcore/gates.hpp"
#include "qcore/state.hpp"
#include "util/rng.hpp"

namespace ftl::qcore {
namespace {

/// Applies the same random circuit to both representations.
struct CircuitPair {
  StateVec psi;
  Density rho;

  explicit CircuitPair(std::size_t n)
      : psi(n), rho(Density::from_state(StateVec(n))) {}

  void random_layer(util::Rng& rng) {
    const std::size_t n = psi.num_qubits();
    for (std::size_t q = 0; q < n; ++q) {
      const CMat u = gates::Rz(rng.uniform(0.0, 2.0 * M_PI)) *
                     gates::Ry(rng.uniform(0.0, 2.0 * M_PI));
      psi.apply1(u, q);
      rho.apply1(u, q);
    }
    if (n >= 2) {
      const auto [a, b] = rng.distinct_pair(n);
      psi.apply2(gates::CNOT(), a, b);
      rho.apply2(gates::CNOT(), a, b);
    }
  }
};

class RandomCircuits : public ::testing::TestWithParam<int> {};

TEST_P(RandomCircuits, DensityMatchesStateVector) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  CircuitPair c(3);
  for (int layer = 0; layer < 6; ++layer) c.random_layer(rng);
  EXPECT_TRUE(c.rho.matrix().approx_equal(c.psi.to_density(), 1e-9));
  EXPECT_NEAR(c.rho.purity(), 1.0, 1e-9);
}

TEST_P(RandomCircuits, OutcomeProbabilitiesAgree) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  CircuitPair c(3);
  for (int layer = 0; layer < 5; ++layer) c.random_layer(rng);
  const CMat basis = gates::real_basis(rng.uniform(0.0, M_PI));
  for (std::size_t q = 0; q < 3; ++q) {
    for (int o = 0; o < 2; ++o) {
      EXPECT_NEAR(c.rho.outcome_probability(q, basis, o),
                  c.psi.outcome_probability(q, basis, o), 1e-9);
    }
  }
}

TEST_P(RandomCircuits, CollapseAgrees) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 200);
  CircuitPair c(2);
  for (int layer = 0; layer < 4; ++layer) c.random_layer(rng);
  const CMat basis = gates::real_basis(0.37);
  const double p0 = c.psi.outcome_probability(0, basis, 0);
  if (p0 < 1e-6 || p0 > 1.0 - 1e-6) return;  // skip near-deterministic draws
  // Force outcome 0 on both representations.
  auto [rho_after, p_rho] = c.rho.collapse(0, basis, 0);
  StateVec psi_after = c.psi;
  psi_after.apply1(basis.adjoint(), 0);
  // Manual projection onto |0> of qubit 0 in the rotated frame.
  std::vector<Cx> amps = psi_after.amplitudes();
  for (std::size_t i = 0; i < amps.size(); ++i) {
    if ((i & 0b10) != 0) amps[i] = Cx{0, 0};
  }
  double norm2 = 0.0;
  for (const Cx& a : amps) norm2 += std::norm(a);
  for (Cx& a : amps) a /= std::sqrt(norm2);
  StateVec projected = StateVec::from_amplitudes(std::move(amps));
  projected.apply1(basis, 0);
  EXPECT_NEAR(p_rho, p0, 1e-9);
  EXPECT_TRUE(rho_after.matrix().approx_equal(projected.to_density(), 1e-8));
}

TEST_P(RandomCircuits, EntanglementMeasuresConsistent) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 300);
  CircuitPair c(2);
  for (int layer = 0; layer < 4; ++layer) c.random_layer(rng);
  // For pure two-qubit states: entangled (entropy > 0) iff concurrence > 0
  // iff negativity > 0 iff CHSH ceiling can exceed 2.
  const double entropy = entanglement_entropy(c.psi, 0);
  const double conc = concurrence(c.rho);
  const double neg = negativity(c.rho, 0);
  if (entropy > 1e-6) {
    EXPECT_GT(conc, 1e-7);
    EXPECT_GT(neg, 1e-7);
  } else {
    EXPECT_LT(conc, 1e-5);
    EXPECT_LT(neg, 1e-5);
  }
  // Pure-state relation: ceiling = 2*sqrt(1 + C^2).
  EXPECT_NEAR(chsh_ceiling(c.rho), 2.0 * std::sqrt(1.0 + conc * conc), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCircuits, ::testing::Range(1, 11));

TEST(CrossCheck, Apply2MatchesKronEmbedding) {
  // Density::apply2 on qubits (0, 2) of 3 must equal the explicit
  // kron-built unitary.
  util::Rng rng(99);
  StateVec psi = StateVec::ghz(3);
  psi.apply1(gates::Ry(0.8), 1);
  Density rho = Density::from_state(psi);
  Density rho2 = rho;

  rho.apply2(gates::CNOT(), 0, 2);

  // Manual embedding: basis |q0 q1 q2>, CNOT control q0 target q2.
  CMat full(8, 8);
  for (std::size_t i = 0; i < 8; ++i) {
    const std::size_t q0 = (i >> 2) & 1;
    const std::size_t q2 = i & 1;
    const std::size_t j = (q0 == 1) ? (i ^ 1) : i;
    (void)q2;
    full.at(j, i) = Cx{1, 0};
  }
  rho2.apply_unitary(full);
  EXPECT_TRUE(rho.matrix().approx_equal(rho2.matrix(), 1e-10));
}

TEST(CrossCheck, TensorThenTraceRoundTrips) {
  const Density a = Density::werner(0.8);
  const Density b = Density::maximally_mixed(1);
  const Density ab = a.tensor(b);
  EXPECT_EQ(ab.num_qubits(), 3u);
  EXPECT_TRUE(ab.is_valid(1e-8));
  EXPECT_TRUE(ab.partial_trace({2}).matrix().approx_equal(a.matrix(), 1e-10));
  EXPECT_TRUE(
      ab.partial_trace({0, 1}).matrix().approx_equal(b.matrix(), 1e-10));
}

TEST(CrossCheck, SequentialMeasurementSamplingAgrees) {
  // Sampled joint outcomes from both simulators match in distribution.
  util::Rng rng(7);
  const CMat ba = gates::real_basis(0.3);
  const CMat bb = gates::real_basis(1.2);
  int counts_psi[2][2] = {};
  int counts_rho[2][2] = {};
  const int rounds = 20000;
  for (int i = 0; i < rounds; ++i) {
    StateVec psi = StateVec::bell_phi_plus();
    const int a1 = psi.measure(0, ba, rng);
    const int b1 = psi.measure(1, bb, rng);
    ++counts_psi[a1][b1];
    Density rho = Density::from_state(StateVec::bell_phi_plus());
    const int a2 = rho.measure(0, ba, rng);
    const int b2 = rho.measure(1, bb, rng);
    ++counts_rho[a2][b2];
  }
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      EXPECT_NEAR(static_cast<double>(counts_psi[a][b]) / rounds,
                  static_cast<double>(counts_rho[a][b]) / rounds, 0.02);
    }
  }
}

}  // namespace
}  // namespace ftl::qcore

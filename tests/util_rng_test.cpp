#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace ftl::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ReseedRestoresStream) {
  Rng a(99);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a.next_u64());
  a.reseed(99);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), first[i]);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double lo = 1.0;
  double hi = 0.0;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.005);
  EXPECT_LT(lo, 0.001);
  EXPECT_GT(hi, 0.999);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 2.5);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 2.5);
  }
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(10));
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 9u);
}

TEST(Rng, UniformIntIsUnbiased) {
  Rng rng(13);
  std::vector<int> counts(7, 0);
  const int n = 700000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(7)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 1.0 / 7.0, 0.003);
  }
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(std::int64_t{-2}, std::int64_t{2});
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(19);
  const double p = 0.3;
  int hits = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(p)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.005);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ExponentialMeanAndPositivity) {
  Rng rng(29);
  const double lambda = 4.0;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(lambda);
    ASSERT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 1.0 / lambda, 0.01);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(31);
  const double mean = 2.5;
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const auto k = static_cast<double>(rng.poisson(mean));
    sum += k;
    sq += k * k;
  }
  const double m = sum / n;
  EXPECT_NEAR(m, mean, 0.03);
  // Poisson variance equals its mean.
  EXPECT_NEAR(sq / n - m * m, mean, 0.1);
}

TEST(Rng, PoissonLargeMeanUsesSplitPath) {
  Rng rng(37);
  const double mean = 200.0;
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(mean));
  EXPECT_NEAR(sum / n, mean, 1.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(41);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, NormalMoments) {
  Rng rng(43);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(Rng, DistinctPairNeverEqual) {
  Rng rng(47);
  for (int i = 0; i < 10000; ++i) {
    const auto [a, b] = rng.distinct_pair(5);
    ASSERT_NE(a, b);
    ASSERT_LT(a, 5u);
    ASSERT_LT(b, 5u);
  }
}

TEST(Rng, DistinctPairUniformOverOrderedPairs) {
  Rng rng(53);
  std::vector<int> counts(3 * 3, 0);
  const int n = 180000;
  for (int i = 0; i < n; ++i) {
    const auto [a, b] = rng.distinct_pair(3);
    ++counts[a * 3 + b];
  }
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t b = 0; b < 3; ++b) {
      const double frac = static_cast<double>(counts[a * 3 + b]) / n;
      if (a == b) {
        EXPECT_EQ(counts[a * 3 + b], 0);
      } else {
        EXPECT_NEAR(frac, 1.0 / 6.0, 0.005);
      }
    }
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(59);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleUniformFirstElement) {
  Rng rng(61);
  std::vector<int> counts(4, 0);
  const int n = 120000;
  for (int i = 0; i < n; ++i) {
    std::vector<int> v{0, 1, 2, 3};
    rng.shuffle(v);
    ++counts[v[0]];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.25, 0.006);
  }
}

TEST(Rng, SplitStreamsAreDecorrelated) {
  Rng parent(67);
  Rng child1 = parent.split(1);
  Rng child2 = parent.split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child1.next_u64() == child2.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitmixIsDeterministic) {
  std::uint64_t s1 = 5;
  std::uint64_t s2 = 5;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace ftl::util

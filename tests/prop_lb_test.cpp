// Property suite: queue conservation on random load-balancing workloads.
//
// Whatever the load, policy, burst model, or routing strategy, a correct
// simulator neither loses nor invents requests: arrived == served +
// still_queued exactly, with sane delays and throughput. Both the binary
// {C, E} simulator and the typed affinity-graph simulator are swept.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "correlate/decision_source.hpp"
#include "correlate/typed_source.hpp"
#include "games/affinity.hpp"
#include "lb/invariants.hpp"
#include "lb/simulator.hpp"
#include "lb/strategy.hpp"
#include "lb/typed_simulator.hpp"
#include "util/proptest.hpp"

namespace {

using ftl::lb::LbConfig;
using ftl::lb::LbResult;
using ftl::proptest::CaseResult;
using ftl::proptest::for_all;
using ftl::proptest::Options;
using ftl::util::Rng;

Options suite(const std::string& name, std::size_t cases = 110) {
  Options o;
  o.name = name;
  o.cases = cases;
  return o;
}

struct PlainCase {
  LbConfig cfg;
  std::string strategy;
};

PlainCase random_plain_case(Rng& rng) {
  PlainCase c;
  // Even balancer counts so the paired strategies are always legal.
  c.cfg.num_balancers = 2 * (1 + rng.uniform_int(std::uint64_t{20}));
  c.cfg.num_servers = 2 + rng.uniform_int(std::uint64_t{30});
  c.cfg.p_colocate = rng.uniform();
  c.cfg.warmup_steps = static_cast<long>(rng.uniform_int(std::uint64_t{80}));
  c.cfg.measure_steps =
      40 + static_cast<long>(rng.uniform_int(std::uint64_t{300}));
  c.cfg.seed = rng.next_u64();
  switch (rng.uniform_int(std::uint64_t{3})) {
    case 0: c.cfg.policy = ftl::lb::ServicePolicy::kPaperCFirst; break;
    case 1: c.cfg.policy = ftl::lb::ServicePolicy::kFifoPair; break;
    default: c.cfg.policy = ftl::lb::ServicePolicy::kEFirst; break;
  }
  if (rng.bernoulli(0.3)) {
    ftl::lb::BurstModel burst;
    burst.high_activity = rng.uniform(0.5, 1.0);
    burst.low_activity = rng.uniform(0.0, 0.5);
    burst.mean_dwell_steps = rng.uniform(5.0, 100.0);
    c.cfg.burst = burst;
  }
  switch (rng.uniform_int(std::uint64_t{5})) {
    case 0: c.strategy = "random"; break;
    case 1: c.strategy = "round-robin"; break;
    case 2: c.strategy = "power-of-two"; break;
    case 3: c.strategy = "paired-classical"; break;
    default: c.strategy = "paired-quantum"; break;
  }
  // Batches > 1 are only defined for the non-paired strategies.
  if (c.strategy.rfind("paired", 0) != 0 && rng.bernoulli(0.4)) {
    c.cfg.batch_size = 2 + rng.uniform_int(std::uint64_t{3});
  }
  return c;
}

std::unique_ptr<ftl::lb::LbStrategy> make_plain_strategy(
    const std::string& kind) {
  using namespace ftl;
  if (kind == "random") return std::make_unique<lb::RandomStrategy>();
  if (kind == "round-robin") return std::make_unique<lb::RoundRobinStrategy>();
  if (kind == "power-of-two") {
    return std::make_unique<lb::PowerOfTwoStrategy>();
  }
  if (kind == "paired-classical") {
    return std::make_unique<lb::PairedStrategy>(
        correlate::make_source("classical-chsh"));
  }
  return std::make_unique<lb::PairedStrategy>(
      correlate::make_source("quantum-chsh"));
}

TEST(PropLb, PlainSimulatorConservesRequests) {
  const auto r = for_all(
      suite("plain-lb-conservation"), random_plain_case,
      [](const PlainCase& c) {
        auto strategy = make_plain_strategy(c.strategy);
        const LbResult result = ftl::lb::run_lb_sim(c.cfg, *strategy);
        const std::string violation =
            ftl::lb::conservation_violation(result);
        if (!violation.empty()) {
          return CaseResult::fail(c.strategy + ": " + violation);
        }
        // No server can complete more than two tasks per step.
        const long long capacity =
            2LL * static_cast<long long>(c.cfg.num_servers) *
            static_cast<long long>(c.cfg.measure_steps);
        if (result.served > capacity) {
          return CaseResult::fail("served " + std::to_string(result.served) +
                                  " exceeds service capacity " +
                                  std::to_string(capacity));
        }
        return CaseResult::pass();
      });
  ASSERT_TRUE(r.ok) << r.message;
}

struct TypedCase {
  ftl::lb::TypedLbConfig cfg;
  ftl::games::AffinityGraph graph{2};
  int strategy = 0;
};

TypedCase random_typed_case(Rng& rng) {
  TypedCase c;
  const std::size_t num_types = 2 + rng.uniform_int(std::uint64_t{3});
  c.graph = ftl::games::AffinityGraph::random(num_types, rng.uniform(), rng);
  c.cfg.num_balancers = 2 * (1 + rng.uniform_int(std::uint64_t{15}));
  c.cfg.num_servers = 2 + rng.uniform_int(std::uint64_t{24});
  c.cfg.warmup_steps = static_cast<long>(rng.uniform_int(std::uint64_t{60}));
  c.cfg.measure_steps =
      40 + static_cast<long>(rng.uniform_int(std::uint64_t{250}));
  c.cfg.interference = rng.uniform();
  c.cfg.policy = rng.bernoulli(0.5)
                     ? ftl::lb::TypedServicePolicy::kPriorityPairs
                     : ftl::lb::TypedServicePolicy::kPairsFirstFifo;
  c.cfg.mix_drift_period =
      rng.bernoulli(0.25)
          ? 10 + static_cast<long>(rng.uniform_int(std::uint64_t{50}))
          : 0;
  c.cfg.seed = rng.next_u64();
  c.cfg.type_probs.assign(num_types, 0.0);
  double total = 0.0;
  for (double& p : c.cfg.type_probs) {
    p = rng.exponential(1.0);
    total += p;
  }
  for (double& p : c.cfg.type_probs) p /= total;
  // Renormalise the tail so the probabilities sum to 1 exactly (the
  // simulator asserts to 1e-9).
  double head = 0.0;
  for (std::size_t t = 0; t + 1 < num_types; ++t) head += c.cfg.type_probs[t];
  c.cfg.type_probs.back() = 1.0 - head;
  c.strategy = static_cast<int>(rng.uniform_int(std::uint64_t{2}));
  return c;
}

TEST(PropLb, TypedSimulatorConservesRequests) {
  const auto r = for_all(
      suite("typed-lb-conservation"), random_typed_case,
      [](const TypedCase& c) {
        std::unique_ptr<ftl::lb::TypedLbStrategy> strategy;
        if (c.strategy == 0) {
          strategy = std::make_unique<ftl::lb::TypedRandomStrategy>();
        } else {
          // One dedicated pool per type.
          std::vector<std::size_t> group_of(c.graph.num_types());
          for (std::size_t t = 0; t < group_of.size(); ++t) group_of[t] = t;
          const std::size_t groups = group_of.size();
          if (c.cfg.num_servers < groups) {
            // Not enough servers for per-type pools; fall back to random.
            strategy = std::make_unique<ftl::lb::TypedRandomStrategy>();
          } else {
            strategy = std::make_unique<ftl::lb::TypedDedicatedStrategy>(
                group_of, groups);
          }
        }
        const LbResult result =
            ftl::lb::run_typed_lb_sim(c.cfg, c.graph, *strategy);
        const std::string violation =
            ftl::lb::conservation_violation(result);
        if (!violation.empty()) return CaseResult::fail(violation);
        const long long capacity =
            2LL * static_cast<long long>(c.cfg.num_servers) *
            static_cast<long long>(c.cfg.measure_steps);
        if (result.served > capacity) {
          return CaseResult::fail("served exceeds 2-per-server-step capacity");
        }
        return CaseResult::pass();
      });
  ASSERT_TRUE(r.ok) << r.message;
}

// Determinism: the same config and seed must reproduce the same result
// bit-for-bit — the property that makes every bench and every prop failure
// replayable in the first place.
TEST(PropLb, SimulationIsDeterministicInItsSeed) {
  const auto r = for_all(
      suite("lb-seed-determinism", 60), random_plain_case,
      [](const PlainCase& c) {
        auto s1 = make_plain_strategy(c.strategy);
        auto s2 = make_plain_strategy(c.strategy);
        const LbResult a = ftl::lb::run_lb_sim(c.cfg, *s1);
        const LbResult b = ftl::lb::run_lb_sim(c.cfg, *s2);
        if (a.arrived != b.arrived || a.served != b.served ||
            a.still_queued != b.still_queued ||
            a.mean_queue_length != b.mean_queue_length ||
            a.mean_delay != b.mean_delay) {
          return CaseResult::fail("same seed, different trajectories");
        }
        return CaseResult::pass();
      });
  ASSERT_TRUE(r.ok) << r.message;
}

}  // namespace

// ftlbench trajectory store + bootstrap comparator unit tests.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "ftlbench/compare.hpp"
#include "ftlbench/trajectory.hpp"
#include "util/rng.hpp"

namespace ftl::benchtool {
namespace {

TrajectoryEntry entry(double wall, double cpu = 0.0,
                      std::vector<std::pair<std::string, double>> counters = {}) {
  TrajectoryEntry e;
  e.git_rev = "deadbeef";
  e.utc = "2026-08-06T00:00:00Z";
  e.seed = 42;
  e.wall_time_s = wall;
  e.cpu_time_s = cpu;
  e.counters = std::move(counters);
  return e;
}

Trajectory trajectory(const std::string& bench, std::vector<double> walls) {
  Trajectory t;
  t.bench = bench;
  for (const double w : walls) t.entries.push_back(entry(w, w * 0.9));
  return t;
}

// --- trajectory store -----------------------------------------------------

TEST(Trajectory, FilenameDropsBenchPrefix) {
  EXPECT_EQ(trajectory_filename("bench_qnet_timing"),
            "BENCH_qnet_timing.json");
  EXPECT_EQ(trajectory_filename("custom_tool"), "BENCH_custom_tool.json");
}

TEST(Trajectory, JsonRoundTrip) {
  Trajectory t = trajectory("bench_x", {1.5, 2.5});
  t.entries[0].counters = {{"sdp.gram.solves", 3.0}, {"sim.events", 100.0}};
  const std::optional<Trajectory> back = parse_trajectory(trajectory_json(t));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->bench, "bench_x");
  ASSERT_EQ(back->entries.size(), 2u);
  EXPECT_EQ(back->entries[0].git_rev, "deadbeef");
  EXPECT_EQ(back->entries[0].utc, "2026-08-06T00:00:00Z");
  EXPECT_EQ(back->entries[0].seed, 42u);
  EXPECT_DOUBLE_EQ(back->entries[0].wall_time_s, 1.5);
  ASSERT_EQ(back->entries[0].counters.size(), 2u);
  EXPECT_EQ(back->entries[0].counters[0].first, "sdp.gram.solves");
  EXPECT_DOUBLE_EQ(back->entries[0].counters[0].second, 3.0);
}

TEST(Trajectory, ParseRejectsBadInput) {
  EXPECT_FALSE(parse_trajectory("junk").has_value());
  EXPECT_FALSE(parse_trajectory("{}").has_value());
  EXPECT_FALSE(
      parse_trajectory(R"({"schema": "ftl.obs.bench_trajectory/v2",
                           "bench": "b", "entries": []})")
          .has_value());
  EXPECT_FALSE(
      parse_trajectory(R"({"schema": "ftl.obs.bench_trajectory/v1",
                           "bench": "b", "entries": [{}]})")
          .has_value());
  EXPECT_TRUE(
      parse_trajectory(R"({"schema": "ftl.obs.bench_trajectory/v1",
                           "bench": "b", "entries": []})")
          .has_value());
}

TEST(Trajectory, MetricLookup) {
  const TrajectoryEntry e = entry(1.5, 1.2, {{"sdp.gram.solves", 3.0}});
  EXPECT_DOUBLE_EQ(*e.metric("wall_time_s"), 1.5);
  EXPECT_DOUBLE_EQ(*e.metric("cpu_time_s"), 1.2);
  EXPECT_DOUBLE_EQ(*e.metric("sdp.gram.solves"), 3.0);
  EXPECT_FALSE(e.metric("lb.queue_depth").has_value());
}

TEST(Trajectory, CollapseCountersSumsLabelSets) {
  obs::Snapshot snap;
  snap.counters.push_back({"lb.chsh.rounds_won", {{"source", "a"}}, 10});
  snap.counters.push_back({"lb.chsh.rounds_won", {{"source", "b"}}, 5});
  snap.counters.push_back({"sim.events", {}, 7});
  const auto collapsed = collapse_counters(snap);
  ASSERT_EQ(collapsed.size(), 2u);
  EXPECT_EQ(collapsed[0].first, "lb.chsh.rounds_won");
  EXPECT_DOUBLE_EQ(collapsed[0].second, 15.0);
  EXPECT_EQ(collapsed[1].first, "sim.events");
  EXPECT_DOUBLE_EQ(collapsed[1].second, 7.0);
}

TEST(Trajectory, AppendEntryCreatesAndExtends) {
  const std::string path = testing::TempDir() + "traj_append_" +
                           std::to_string(::getpid()) + ".json";
  std::remove(path.c_str());
  EXPECT_TRUE(append_entry(path, "bench_x", entry(1.0)));
  EXPECT_TRUE(append_entry(path, "bench_x", entry(2.0)));
  const std::optional<Trajectory> t = load_trajectory(path);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->bench, "bench_x");
  ASSERT_EQ(t->entries.size(), 2u);
  EXPECT_DOUBLE_EQ(t->entries[0].wall_time_s, 1.0);
  EXPECT_DOUBLE_EQ(t->entries[1].wall_time_s, 2.0);
  // History protection: a different bench name or corrupt file refuses.
  EXPECT_FALSE(append_entry(path, "bench_y", entry(3.0)));
  std::remove(path.c_str());
}

TEST(Trajectory, AppendRefusesCorruptFile) {
  const std::string path = testing::TempDir() + "traj_corrupt_" +
                           std::to_string(::getpid()) + ".json";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{not json", f);
    std::fclose(f);
  }
  EXPECT_FALSE(append_entry(path, "bench_x", entry(1.0)));
  std::remove(path.c_str());
}

// --- bootstrap CI ---------------------------------------------------------

TEST(BootstrapRatio, IdenticalSamplesGiveUnitRatio) {
  const std::vector<double> xs = {1.0, 1.1, 0.9, 1.05, 0.95};
  const BootstrapCi ci = bootstrap_ratio(xs, xs, 2000, 0.95, 1);
  EXPECT_DOUBLE_EQ(ci.ratio, 1.0);
  // Same vector on both sides still resamples independently, so the CI has
  // width — but it must bracket 1.
  EXPECT_LE(ci.lo, 1.0);
  EXPECT_GE(ci.hi, 1.0);
}

TEST(BootstrapRatio, ConstantSamplesCollapseCi) {
  const std::vector<double> ones(10, 1.0);
  const std::vector<double> twos(10, 2.0);
  const BootstrapCi ci = bootstrap_ratio(ones, twos, 500, 0.95, 1);
  EXPECT_DOUBLE_EQ(ci.ratio, 2.0);
  EXPECT_DOUBLE_EQ(ci.lo, 2.0);
  EXPECT_DOUBLE_EQ(ci.hi, 2.0);
}

TEST(BootstrapRatio, ShiftedDistributionExcludesOne) {
  // Baseline ~ U[0.9, 1.1], candidate ~ U[1.8, 2.2]: the CI must surround 2
  // and stay clear of 1.
  util::Rng rng(7);
  std::vector<double> base, cand;
  for (int i = 0; i < 40; ++i) {
    base.push_back(rng.uniform(0.9, 1.1));
    cand.push_back(rng.uniform(1.8, 2.2));
  }
  const BootstrapCi ci = bootstrap_ratio(base, cand, 4000, 0.95, 1);
  EXPECT_NEAR(ci.ratio, 2.0, 0.1);
  EXPECT_GT(ci.lo, 1.5);
  EXPECT_LT(ci.hi, 2.5);
  EXPECT_LT(ci.lo, ci.hi);
}

TEST(BootstrapRatio, OverlappingDistributionCoversOne) {
  // Two draws from the same noisy distribution: the CI must cover 1.
  util::Rng rng(11);
  std::vector<double> base, cand;
  for (int i = 0; i < 30; ++i) {
    base.push_back(rng.uniform(0.8, 1.2));
    cand.push_back(rng.uniform(0.8, 1.2));
  }
  const BootstrapCi ci = bootstrap_ratio(base, cand, 4000, 0.95, 1);
  EXPECT_LT(ci.lo, 1.0);
  EXPECT_GT(ci.hi, 1.0);
}

TEST(BootstrapRatio, SingleSamplesCollapseToPoint) {
  const BootstrapCi ci = bootstrap_ratio({1.0}, {2.0}, 2000, 0.95, 1);
  EXPECT_DOUBLE_EQ(ci.ratio, 2.0);
  EXPECT_DOUBLE_EQ(ci.lo, 2.0);
  EXPECT_DOUBLE_EQ(ci.hi, 2.0);
}

TEST(BootstrapRatio, ZeroBaseline) {
  const BootstrapCi both_zero = bootstrap_ratio({0.0}, {0.0}, 0, 0.95, 1);
  EXPECT_DOUBLE_EQ(both_zero.ratio, 1.0);
  const BootstrapCi blowup = bootstrap_ratio({0.0}, {1.0}, 0, 0.95, 1);
  EXPECT_TRUE(std::isinf(blowup.ratio));
}

TEST(BootstrapRatio, DeterministicInSeed) {
  util::Rng rng(3);
  std::vector<double> base, cand;
  for (int i = 0; i < 10; ++i) {
    base.push_back(rng.uniform(0.9, 1.1));
    cand.push_back(rng.uniform(0.9, 1.3));
  }
  const BootstrapCi a = bootstrap_ratio(base, cand, 1000, 0.95, 5);
  const BootstrapCi b = bootstrap_ratio(base, cand, 1000, 0.95, 5);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

// --- regression gate ------------------------------------------------------

TEST(CompareMetric, DetectsInjectedTwoXSlowdown) {
  const Trajectory base = trajectory("bench_x", {1.0, 1.02, 0.98, 1.01, 0.99});
  const Trajectory slow = trajectory("bench_x", {2.0, 2.04, 1.96, 2.02, 1.98});
  CompareOptions opts;
  opts.threshold = 1.25;
  const MetricComparison cmp = compare_metric(base, slow, "wall_time_s", opts);
  EXPECT_TRUE(cmp.regressed);
  EXPECT_FALSE(cmp.improved);
  EXPECT_NEAR(cmp.ci.ratio, 2.0, 0.05);
  EXPECT_EQ(cmp.n_baseline, 5u);
  EXPECT_EQ(cmp.n_candidate, 5u);
}

TEST(CompareMetric, IdenticalTrajectoriesPass) {
  const Trajectory base = trajectory("bench_x", {1.0, 1.02, 0.98});
  CompareOptions opts;
  const CompareReport report = compare_trajectories(base, base, opts);
  ASSERT_EQ(report.rows.size(), 1u);
  EXPECT_FALSE(report.rows[0].regressed);
  EXPECT_FALSE(report.any_regressed());
}

TEST(CompareMetric, ImprovementIsNotARegression) {
  const Trajectory base = trajectory("bench_x", {2.0, 2.0, 2.0});
  const Trajectory fast = trajectory("bench_x", {1.0, 1.0, 1.0});
  CompareOptions opts;
  const MetricComparison cmp = compare_metric(base, fast, "wall_time_s", opts);
  EXPECT_FALSE(cmp.regressed);
  EXPECT_TRUE(cmp.improved);
}

TEST(CompareMetric, BelowThresholdSlowdownPasses) {
  const Trajectory base = trajectory("bench_x", {1.0, 1.0, 1.0});
  const Trajectory slight = trajectory("bench_x", {1.1, 1.1, 1.1});
  CompareOptions opts;  // threshold 1.25
  const MetricComparison cmp =
      compare_metric(base, slight, "wall_time_s", opts);
  EXPECT_FALSE(cmp.regressed);
}

TEST(CompareMetric, NoisyOverlapDoesNotTripTheGate) {
  // Point ratio slightly above threshold but the CI straddles 1: the gate
  // must hold fire (statistical, not point, decision).
  util::Rng rng(13);
  Trajectory base, cand;
  base.bench = cand.bench = "bench_x";
  for (int i = 0; i < 6; ++i) {
    base.entries.push_back(entry(rng.uniform(0.5, 1.5)));
    cand.entries.push_back(entry(rng.uniform(0.5, 1.7)));
  }
  CompareOptions opts;
  opts.threshold = 1.01;
  const MetricComparison cmp = compare_metric(base, cand, "wall_time_s", opts);
  if (cmp.ci.lo <= 1.0) EXPECT_FALSE(cmp.regressed);
}

TEST(CompareMetric, MissingMetricYieldsNoVerdict) {
  const Trajectory base = trajectory("bench_x", {1.0});
  const Trajectory cand = trajectory("bench_x", {2.0});
  CompareOptions opts;
  const MetricComparison cmp =
      compare_metric(base, cand, "qnet.pairs.delivered", opts);
  EXPECT_EQ(cmp.n_baseline, 0u);
  EXPECT_EQ(cmp.n_candidate, 0u);
  EXPECT_FALSE(cmp.regressed);
}

TEST(CompareMetric, CounterDriftGates) {
  Trajectory base, cand;
  base.bench = cand.bench = "bench_x";
  base.entries.push_back(entry(1.0, 0.9, {{"sdp.gram.solves", 100.0}}));
  cand.entries.push_back(entry(1.0, 0.9, {{"sdp.gram.solves", 250.0}}));
  CompareOptions opts;
  opts.metrics = {"sdp.gram.solves"};
  opts.threshold = 1.5;
  const CompareReport report = compare_trajectories(base, cand, opts);
  ASSERT_EQ(report.rows.size(), 1u);
  EXPECT_TRUE(report.rows[0].regressed);
  EXPECT_TRUE(report.any_regressed());
}

}  // namespace
}  // namespace ftl::benchtool

#include "games/box.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "games/chsh.hpp"

namespace ftl::games {
namespace {

constexpr double kTsirelson = 2.8284271247461903;  // 2*sqrt(2)

TEST(Box, UniformIsValidAndLocal) {
  const CorrelationBox box = CorrelationBox::uniform();
  EXPECT_TRUE(box.is_valid());
  EXPECT_NEAR(box.no_signaling_violation(), 0.0, 1e-12);
  EXPECT_NEAR(box.chsh_value(), 0.0, 1e-12);
  EXPECT_TRUE(box.is_local_admissible());
}

TEST(Box, DeterministicBoxesAreLocal) {
  for (int a0 = 0; a0 < 2; ++a0) {
    for (int a1 = 0; a1 < 2; ++a1) {
      for (int b0 = 0; b0 < 2; ++b0) {
        for (int b1 = 0; b1 < 2; ++b1) {
          const auto box = CorrelationBox::local_deterministic(a0, a1, b0, b1);
          EXPECT_TRUE(box.is_valid());
          EXPECT_NEAR(box.no_signaling_violation(), 0.0, 1e-12);
          EXPECT_TRUE(box.is_local_admissible());
          EXPECT_TRUE(box.is_quantum_admissible());
        }
      }
    }
  }
}

TEST(Box, DeterministicChshValueIsExactlyTwo) {
  // a = b = 0 achieves the local maximum S = 2.
  const auto box = CorrelationBox::local_deterministic(0, 0, 0, 0);
  EXPECT_NEAR(box.chsh_value(), 2.0, 1e-12);
}

TEST(Box, QuantumBoxHitsTsirelsonExactly) {
  const auto box = CorrelationBox::from_strategy(
      chsh_quantum_strategy(chsh_optimal_angles()));
  EXPECT_TRUE(box.is_valid());
  EXPECT_NEAR(box.no_signaling_violation(), 0.0, 1e-10);
  EXPECT_NEAR(box.chsh_value(), kTsirelson, 1e-9);
  EXPECT_FALSE(box.is_local_admissible());
  EXPECT_TRUE(box.is_quantum_admissible(1e-8));
}

TEST(Box, PrBoxIsNoSignalingButSuperQuantum) {
  // §2's hierarchy, pinned down: the PR box respects causality (perfectly
  // no-signaling) yet exceeds what quantum mechanics allows.
  const auto box = CorrelationBox::pr_box();
  EXPECT_TRUE(box.is_valid());
  EXPECT_NEAR(box.no_signaling_violation(), 0.0, 1e-12);
  EXPECT_NEAR(box.chsh_value(), 4.0, 1e-12);
  EXPECT_FALSE(box.is_local_admissible());
  EXPECT_FALSE(box.is_quantum_admissible());
}

TEST(Box, PrBoxWinsChshAlways) {
  EXPECT_NEAR(CorrelationBox::pr_box().game_value(chsh_game()), 1.0, 1e-12);
}

TEST(Box, GameValueMatchesStrategyValue) {
  const QuantumStrategy s = chsh_quantum_strategy(chsh_optimal_angles());
  const auto box = CorrelationBox::from_strategy(s);
  EXPECT_NEAR(box.game_value(chsh_game()), s.value(chsh_game()), 1e-10);
}

TEST(Box, NoisyStrategyBoxDegradesGracefully) {
  const auto box = CorrelationBox::from_strategy(
      chsh_quantum_strategy(chsh_optimal_angles(), false, 0.8));
  EXPECT_NEAR(box.chsh_value(), kTsirelson * 0.8, 1e-9);
  EXPECT_FALSE(box.is_local_admissible());
}

TEST(Box, VisibilityThresholdForLocality) {
  // Werner boxes become CHSH-local exactly at v = 1/sqrt2.
  const auto above = CorrelationBox::from_strategy(
      chsh_quantum_strategy(chsh_optimal_angles(), false, 0.72));
  const auto below = CorrelationBox::from_strategy(
      chsh_quantum_strategy(chsh_optimal_angles(), false, 0.70));
  EXPECT_FALSE(above.is_local_admissible());
  EXPECT_TRUE(below.is_local_admissible());
}

TEST(Box, MixingPrWithUniformCrossesBoundaries) {
  const auto pr = CorrelationBox::pr_box();
  const auto noise = CorrelationBox::uniform();
  // S(lambda) = 4*lambda: local for lambda <= 1/2, quantum-admissible for
  // lambda <= 1/sqrt2.
  EXPECT_TRUE(pr.mix(noise, 0.45).is_local_admissible());
  EXPECT_FALSE(pr.mix(noise, 0.55).is_local_admissible());
  EXPECT_TRUE(pr.mix(noise, 0.70).is_quantum_admissible());
  EXPECT_FALSE(pr.mix(noise, 0.75).is_quantum_admissible());
  EXPECT_TRUE(pr.mix(noise, 0.5).is_valid());
}

TEST(Box, MarginalsOfQuantumBoxAreUniform) {
  const auto box = CorrelationBox::from_strategy(
      chsh_quantum_strategy(chsh_optimal_angles()));
  for (int x = 0; x < 2; ++x) {
    EXPECT_NEAR(box.alice_marginal(x, 0), 0.5, 1e-10);
  }
}

TEST(Box, SignalingBoxIsDetected) {
  // b copies x: blatantly signaling.
  CorrelationBox box;
  for (int x = 0; x < 2; ++x) {
    for (int y = 0; y < 2; ++y) {
      box.set(x, y, 0, x, 1.0);
    }
  }
  EXPECT_TRUE(box.is_valid());
  EXPECT_GT(box.no_signaling_violation(), 0.9);
}

}  // namespace
}  // namespace ftl::games

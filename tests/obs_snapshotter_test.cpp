// PeriodicSnapshotter: JSONL appending, tick cadence, and start/stop
// robustness under concurrency.
#include "obs/export.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"

namespace ftl::obs {
namespace {

std::string temp_path(const char* tag) {
  return testing::TempDir() + "snapshotter_" + tag + "_" +
         std::to_string(::getpid()) + ".jsonl";
}

std::vector<json::Value> read_lines(const std::string& path) {
  std::vector<json::Value> out;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::optional<json::Value> v = json::parse(line);
    EXPECT_TRUE(v.has_value()) << "unparseable snapshot line: " << line;
    if (v) out.push_back(std::move(*v));
  }
  return out;
}

TEST(PeriodicSnapshotter, WritesStartAndStopSnapshots) {
  const std::string path = temp_path("startstop");
  std::remove(path.c_str());
  Registry reg;
  {
    // Interval far longer than the test: only the start/stop lines appear.
    PeriodicSnapshotter snap(path, std::chrono::milliseconds(60000), &reg);
    snap.start();
    EXPECT_TRUE(snap.running());
    snap.stop();
    EXPECT_FALSE(snap.running());
    EXPECT_EQ(snap.snapshots_written(), 2u);
    EXPECT_TRUE(snap.ok());
  }
  const std::vector<json::Value> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const json::Value& v = lines[i];
    const json::Value* schema = v.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->string, "ftl.obs.snapshot/v1");
    const json::Value* seq = v.find("seq");
    ASSERT_NE(seq, nullptr);
    EXPECT_EQ(static_cast<std::size_t>(seq->number), i);
    EXPECT_NE(v.find("t_ms"), nullptr);
    EXPECT_NE(v.find("unix_ms"), nullptr);
    ASSERT_NE(v.find("metrics"), nullptr);
    EXPECT_TRUE(snapshot_from_json(*v.find("metrics")).has_value());
  }
  std::remove(path.c_str());
}

TEST(PeriodicSnapshotter, TicksAtInterval) {
  const std::string path = temp_path("ticks");
  std::remove(path.c_str());
  Registry reg;
  Counter& c = reg.counter("test.ticks");
  PeriodicSnapshotter snap(path, std::chrono::milliseconds(10), &reg);
  snap.start();
  for (int i = 0; i < 20; ++i) {
    c.inc();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  snap.stop();
  // 200ms at a 10ms interval: generously >= 4 even on a loaded machine
  // (the acceptance bar is >= 2 snapshots on a 200ms run).
  EXPECT_GE(snap.snapshots_written(), 4u);
  EXPECT_TRUE(snap.ok());

  const std::vector<json::Value> lines = read_lines(path);
  ASSERT_EQ(lines.size(), snap.snapshots_written());
  // seq strictly increasing, t_ms non-decreasing.
  double prev_t = -1.0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(static_cast<std::size_t>(lines[i].find("seq")->number), i);
    const double t = lines[i].find("t_ms")->number;
    EXPECT_GE(t, prev_t);
    prev_t = t;
  }
  if (kEnabled) {
    // The final snapshot observed the counter's growth.
    const std::optional<Snapshot> last =
        snapshot_from_json(*lines.back().find("metrics"));
    ASSERT_TRUE(last.has_value());
    ASSERT_EQ(last->counters.size(), 1u);
    EXPECT_EQ(last->counters[0].name, "test.ticks");
    EXPECT_GT(last->counters[0].value, 0u);
  }
  std::remove(path.c_str());
}

TEST(PeriodicSnapshotter, StartStopIdempotentAndRestartable) {
  const std::string path = temp_path("idem");
  std::remove(path.c_str());
  Registry reg;
  PeriodicSnapshotter snap(path, std::chrono::milliseconds(60000), &reg);
  snap.start();
  snap.start();  // no-op
  snap.stop();
  snap.stop();  // no-op
  EXPECT_EQ(snap.snapshots_written(), 2u);
  snap.start();  // restart appends a fresh pair
  snap.stop();
  EXPECT_EQ(snap.snapshots_written(), 4u);
  // seq keeps counting across restarts.
  const std::vector<json::Value> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(static_cast<int>(lines.back().find("seq")->number), 3);
  std::remove(path.c_str());
}

TEST(PeriodicSnapshotter, ConcurrentStartStopIsSafe) {
  const std::string path = temp_path("race");
  std::remove(path.c_str());
  Registry reg;
  PeriodicSnapshotter snap(path, std::chrono::milliseconds(1), &reg);
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&snap, t] {
      for (int i = 0; i < 25; ++i) {
        if ((i + t) % 2 == 0)
          snap.start();
        else
          snap.stop();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  snap.stop();
  EXPECT_FALSE(snap.running());
  EXPECT_TRUE(snap.ok());
  // Whatever interleaving happened, the file must be valid JSONL with
  // strictly increasing seq.
  const std::vector<json::Value> lines = read_lines(path);
  EXPECT_GE(lines.size(), 2u);
  for (std::size_t i = 0; i < lines.size(); ++i)
    EXPECT_EQ(static_cast<std::size_t>(lines[i].find("seq")->number), i);
  std::remove(path.c_str());
}

TEST(PeriodicSnapshotter, ReportsIoFailure) {
  Registry reg;
  PeriodicSnapshotter snap("/nonexistent-dir/nope.jsonl",
                           std::chrono::milliseconds(60000), &reg);
  snap.start();
  snap.stop();
  EXPECT_FALSE(snap.ok());
  EXPECT_EQ(snap.snapshots_written(), 0u);
}

TEST(PeriodicSnapshotter, DestructorStops) {
  const std::string path = temp_path("dtor");
  std::remove(path.c_str());
  {
    Registry reg;
    PeriodicSnapshotter snap(path, std::chrono::milliseconds(5), &reg);
    snap.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    // No explicit stop: the destructor must join the thread and append the
    // final line.
  }
  EXPECT_GE(read_lines(path).size(), 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ftl::obs

#include "qcore/eigen.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "qcore/gates.hpp"
#include "qcore/state.hpp"
#include "util/rng.hpp"

namespace ftl::qcore {
namespace {

CMat random_hermitian(std::size_t n, util::Rng& rng) {
  CMat a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a.at(i, i) = Cx{rng.normal(), 0.0};
    for (std::size_t j = i + 1; j < n; ++j) {
      const Cx v{rng.normal(), rng.normal()};
      a.at(i, j) = v;
      a.at(j, i) = std::conj(v);
    }
  }
  return a;
}

TEST(Eigh, DiagonalMatrix) {
  CMat d(3, 3);
  d.at(0, 0) = Cx{3, 0};
  d.at(1, 1) = Cx{-1, 0};
  d.at(2, 2) = Cx{2, 0};
  const EigResult e = eigh(d);
  EXPECT_NEAR(e.values[0], -1.0, 1e-10);
  EXPECT_NEAR(e.values[1], 2.0, 1e-10);
  EXPECT_NEAR(e.values[2], 3.0, 1e-10);
}

TEST(Eigh, PauliX) {
  const EigResult e = eigh(gates::X());
  EXPECT_NEAR(e.values[0], -1.0, 1e-10);
  EXPECT_NEAR(e.values[1], 1.0, 1e-10);
}

TEST(Eigh, PauliYComplexEigenvectors) {
  const EigResult e = eigh(gates::Y());
  EXPECT_NEAR(e.values[0], -1.0, 1e-10);
  EXPECT_NEAR(e.values[1], 1.0, 1e-10);
  // Reconstruction check: A = V D V^dagger.
  CMat d(2, 2);
  d.at(0, 0) = Cx{e.values[0], 0};
  d.at(1, 1) = Cx{e.values[1], 0};
  EXPECT_TRUE(
      (e.vectors * d * e.vectors.adjoint()).approx_equal(gates::Y(), 1e-9));
}

TEST(Eigh, RandomHermitianReconstruction) {
  util::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + rng.uniform_int(6);  // 2..7
    const CMat a = random_hermitian(n, rng);
    const EigResult e = eigh(a);
    ASSERT_EQ(e.values.size(), n);
    // Eigenvalues ascending.
    for (std::size_t i = 1; i < n; ++i) {
      EXPECT_LE(e.values[i - 1], e.values[i] + 1e-12);
    }
    // V unitary and A = V D V^dagger.
    EXPECT_TRUE(e.vectors.is_unitary(1e-8));
    CMat d(n, n);
    for (std::size_t i = 0; i < n; ++i) d.at(i, i) = Cx{e.values[i], 0.0};
    EXPECT_TRUE((e.vectors * d * e.vectors.adjoint()).approx_equal(a, 1e-7));
  }
}

TEST(Eigh, TraceEqualsEigenvalueSum) {
  util::Rng rng(5);
  const CMat a = random_hermitian(5, rng);
  const EigResult e = eigh(a);
  double sum = 0.0;
  for (double v : e.values) sum += v;
  EXPECT_NEAR(sum, a.trace().real(), 1e-8);
}

TEST(IsPsd, ProjectorsArePsd) {
  const StateVec bell = StateVec::bell_phi_plus();
  EXPECT_TRUE(is_psd(bell.to_density()));
  EXPECT_TRUE(is_psd(CMat::identity(4)));
}

TEST(IsPsd, NegativeMatrixIsNot) {
  CMat a = CMat::identity(2);
  a *= Cx{-1.0, 0.0};
  EXPECT_FALSE(is_psd(a));
}

TEST(SqrtPsd, SquaresBack) {
  util::Rng rng(7);
  // Build a random PSD matrix B B^dagger.
  const CMat b = random_hermitian(4, rng);
  const CMat psd = b * b.adjoint();
  const CMat root = sqrt_psd(psd);
  EXPECT_TRUE((root * root).approx_equal(psd, 1e-6));
  EXPECT_TRUE(root.is_hermitian(1e-8));
  EXPECT_TRUE(is_psd(root, 1e-7));
}

TEST(SqrtPsd, IdentityRoot) {
  EXPECT_TRUE(sqrt_psd(CMat::identity(3)).approx_equal(CMat::identity(3), 1e-9));
}

TEST(Fidelity, IdenticalStatesIsOne) {
  const CMat rho = StateVec::bell_phi_plus().to_density();
  EXPECT_NEAR(fidelity(rho, rho), 1.0, 1e-8);
}

TEST(Fidelity, OrthogonalPureStatesIsZero) {
  const StateVec s0 = StateVec::from_amplitudes({Cx{1, 0}, Cx{0, 0}});
  const StateVec s1 = StateVec::from_amplitudes({Cx{0, 0}, Cx{1, 0}});
  EXPECT_NEAR(fidelity(s0.to_density(), s1.to_density()), 0.0, 1e-8);
}

TEST(Fidelity, PureVsMaximallyMixed) {
  const CMat rho = StateVec::from_amplitudes({Cx{1, 0}, Cx{0, 0}}).to_density();
  CMat mixed = CMat::identity(2);
  mixed *= Cx{0.5, 0.0};
  EXPECT_NEAR(fidelity(rho, mixed), 0.5, 1e-8);
}

TEST(Fidelity, Symmetric) {
  util::Rng rng(11);
  const CMat b = random_hermitian(2, rng);
  CMat psd = b * b.adjoint();
  psd *= Cx{1.0 / psd.trace().real(), 0.0};
  const CMat rho = StateVec::from_amplitudes({Cx{1, 0}, Cx{0, 0}}).to_density();
  EXPECT_NEAR(fidelity(rho, psd), fidelity(psd, rho), 1e-7);
}

}  // namespace
}  // namespace ftl::qcore

// Oracle-equivalence suite for games::classical_value_bnb (ISSUE: the
// Fig-3 scale-up rests on bnb being a drop-in replacement for the
// exhaustive classical search). The headline property is *bit-exact*
// equality — `==` on doubles, no tolerance — against
// XorGame::classical_bias() for every random game up to n + m = 12,
// which is the contract that lets the benches swap solvers without
// perturbing a single reported number.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "games/affinity.hpp"
#include "games/bnb.hpp"
#include "games/generators.hpp"
#include "games/xor_game.hpp"
#include "util/proptest.hpp"

namespace {

using ftl::games::AffinityGraph;
using ftl::games::BnbResult;
using ftl::games::classical_value_bnb;
using ftl::games::XorGame;
using ftl::proptest::CaseResult;
using ftl::proptest::for_all;
using ftl::proptest::Options;
using ftl::util::Rng;

Options suite(const std::string& name, std::size_t cases) {
  Options o;
  o.name = name;
  o.cases = cases;
  return o;
}

// Bias of a deterministic strategy in the exhaustive search's evaluation
// order (columns over x ascending, |col| over y ascending) — the order
// both solvers' values are defined in.
double strategy_bias(const std::vector<std::vector<double>>& m,
                     const std::vector<int>& alice,
                     const std::vector<int>& bob) {
  double bias = 0.0;
  for (std::size_t y = 0; y < m.front().size(); ++y) {
    double col = 0.0;
    for (std::size_t x = 0; x < m.size(); ++x) {
      col += m[x][y] * (alice[x] == 0 ? 1.0 : -1.0);
    }
    bias += col * (bob[y] == 0 ? 1.0 : -1.0);
  }
  return bias;
}

CaseResult check_oracle_equivalence(const XorGame& game) {
  const double exhaustive = game.classical_bias();
  const BnbResult r = classical_value_bnb(game);

  // The tentpole contract: IDENTICAL doubles, not approximately equal.
  if (r.bias != exhaustive) {
    std::ostringstream msg;
    msg.precision(17);
    msg << "bnb bias " << r.bias << " != exhaustive " << exhaustive
        << " (diff " << r.bias - exhaustive << ")";
    return CaseResult::fail(msg.str());
  }

  // Node accounting: never more work than the exhaustive tree, and the
  // sign quotient alone caps leaves at half the exhaustive count.
  const std::uint64_t nx = game.num_x();
  if (r.exhaustive_leaves != (std::uint64_t{1} << nx)) {
    return CaseResult::fail("exhaustive_leaves != 2^num_x");
  }
  if (r.nodes > (std::uint64_t{1} << (nx + game.num_y()))) {
    return CaseResult::fail("node count exceeds 2^(n+m)");
  }
  const std::uint64_t leaf_cap = nx == 0 ? 1 : (std::uint64_t{1} << (nx - 1));
  if (r.leaves > leaf_cap) {
    return CaseResult::fail("leaves exceed the sign-quotient cap 2^(n-1)");
  }

  // The witness must attain the claimed bias exactly: its Bob bits are the
  // sign readout of its Alice bits, which is precisely leaf evaluation.
  const double witnessed = strategy_bias(game.cost_matrix(), r.alice, r.bob);
  if (witnessed != r.bias) {
    return CaseResult::fail("witness does not attain the bnb bias");
  }
  return CaseResult::pass();
}

TEST(BnbOracle, RandomGamesUpToTwelveInputsMatchExhaustiveBitExactly) {
  const auto r = for_all(
      suite("bnb-random", 220),
      [](Rng& rng) {
        // All shapes with nx + ny <= 12, nx, ny >= 1.
        const std::size_t nx =
            1 + static_cast<std::size_t>(rng.uniform_int(std::uint64_t{11}));
        const std::size_t ny =
            1 + static_cast<std::size_t>(rng.uniform_int(
                    static_cast<std::uint64_t>(12 - nx)));
        return ftl::games::random_xor_game(nx, ny, rng);
      },
      check_oracle_equivalence);
  ASSERT_TRUE(r.ok) << r.message;
}

TEST(BnbOracle, SymmetricEnsembleMatchesExhaustiveBitExactly) {
  const auto r = for_all(
      suite("bnb-symmetric", 120),
      [](Rng& rng) {
        const std::size_t n =
            2 + static_cast<std::size_t>(rng.uniform_int(std::uint64_t{5}));
        return ftl::games::symmetric_random_xor_game(n, rng);
      },
      check_oracle_equivalence);
  ASSERT_TRUE(r.ok) << r.message;
}

TEST(BnbOracle, AffinityGamesMatchExhaustiveBitExactly) {
  const auto r = for_all(
      suite("bnb-affinity", 120),
      [](Rng& rng) {
        const std::size_t n =
            3 + static_cast<std::size_t>(rng.uniform_int(std::uint64_t{6}));
        const double p = rng.uniform();
        const bool diagonal = rng.bernoulli(0.5);
        return XorGame::from_affinity(AffinityGraph::random(n, p, rng),
                                      diagonal);
      },
      check_oracle_equivalence);
  ASSERT_TRUE(r.ok) << r.message;
}

TEST(BnbOracle, ChshBiasIsExactlyOneHalf) {
  const BnbResult r = classical_value_bnb(XorGame::chsh());
  EXPECT_EQ(r.bias, 0.5);
  const BnbResult flipped = classical_value_bnb(XorGame::chsh(true));
  EXPECT_EQ(flipped.bias, 0.5);
}

TEST(BnbOracle, DegenerateShapesWork) {
  // Single Alice question: one node tree, bias = sum |m|.
  const std::vector<std::vector<double>> one_row{{0.25, -0.75}};
  const BnbResult r1 = classical_value_bnb(one_row);
  EXPECT_EQ(r1.bias, 1.0);
  EXPECT_EQ(r1.leaves, 1u);

  // Single Bob question.
  const std::vector<std::vector<double>> one_col{{0.5}, {-0.5}};
  const BnbResult r2 = classical_value_bnb(one_col);
  EXPECT_EQ(r2.bias, 1.0);
}

// The relaxation bound must actually bite at Fig-3 scale: on 12-vertex
// affinity games the search should visit a small fraction of the
// exhaustive tree. (The >=10x acceptance number for the full sweep is
// measured in the bench; this pins a conservative per-game floor so a
// bound regression fails in the PR suite, not in the nightly.)
TEST(BnbOracle, PruningBeatsExhaustiveOnTwelveVertexAffinityGames) {
  Rng rng(42);
  std::uint64_t total_nodes = 0;
  std::uint64_t total_exhaustive = 0;
  for (int i = 0; i < 10; ++i) {
    const auto game =
        XorGame::from_affinity(AffinityGraph::random(12, 0.5, rng), false);
    const BnbResult r = classical_value_bnb(game);
    ASSERT_EQ(r.bias, game.classical_bias());
    total_nodes += r.nodes;
    total_exhaustive += r.exhaustive_leaves;
  }
  // Sign quotient alone gives 2x; demand clearly more than that on average.
  EXPECT_LT(total_nodes * 3, total_exhaustive);
}

}  // namespace

#include "qcore/entanglement.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "qcore/channels.hpp"
#include "qcore/gates.hpp"

namespace ftl::qcore {
namespace {

TEST(Entropy, PureStateIsZero) {
  EXPECT_NEAR(von_neumann_entropy(Density::from_state(StateVec::ghz(3))), 0.0,
              1e-9);
}

TEST(Entropy, MaximallyMixedIsNumQubits) {
  EXPECT_NEAR(von_neumann_entropy(Density::maximally_mixed(1)), 1.0, 1e-9);
  EXPECT_NEAR(von_neumann_entropy(Density::maximally_mixed(2)), 2.0, 1e-9);
}

TEST(Entropy, WernerInterpolates) {
  // S is 0 at v=1 and 2 bits at v=0, strictly decreasing in v.
  double prev = 2.0 + 1e-9;
  for (double v : {0.0, 0.3, 0.6, 0.9, 1.0}) {
    const double s = von_neumann_entropy(Density::werner(v));
    EXPECT_LT(s, prev);
    prev = s;
  }
  EXPECT_NEAR(von_neumann_entropy(Density::werner(0.0)), 2.0, 1e-9);
}

TEST(EntanglementEntropy, BellPairIsOneBit) {
  EXPECT_NEAR(entanglement_entropy(StateVec::bell_phi_plus(), 0), 1.0, 1e-9);
  EXPECT_NEAR(entanglement_entropy(StateVec::bell_phi_plus(), 1), 1.0, 1e-9);
}

TEST(EntanglementEntropy, ProductStateIsZero) {
  StateVec psi(2);
  psi.apply1(gates::H(), 0);
  psi.apply1(gates::Ry(0.9), 1);
  EXPECT_NEAR(entanglement_entropy(psi, 0), 0.0, 1e-9);
}

TEST(EntanglementEntropy, GhzSingleQubitCut) {
  // Any single qubit of GHZ(n) is maximally mixed: 1 bit across the cut.
  EXPECT_NEAR(entanglement_entropy(StateVec::ghz(4), 2), 1.0, 1e-9);
}

TEST(EntanglementEntropy, PartiallyEntangled) {
  // cos(t)|00> + sin(t)|11>: S = H2(cos^2 t).
  const double t = 0.5;
  const double c = std::cos(t);
  const double s = std::sin(t);
  const auto psi = StateVec::from_amplitudes(
      {Cx{c, 0}, Cx{0, 0}, Cx{0, 0}, Cx{s, 0}});
  const double p = c * c;
  const double expect = -p * std::log2(p) - (1 - p) * std::log2(1 - p);
  EXPECT_NEAR(entanglement_entropy(psi, 0), expect, 1e-9);
}

TEST(Concurrence, BellPairIsOne) {
  EXPECT_NEAR(concurrence(Density::from_state(StateVec::bell_phi_plus())),
              1.0, 1e-8);
}

TEST(Concurrence, ProductStateIsZero) {
  StateVec psi(2);
  psi.apply1(gates::H(), 0);
  EXPECT_NEAR(concurrence(Density::from_state(psi)), 0.0, 1e-8);
}

TEST(Concurrence, WernerClosedForm) {
  // C(v) = max(0, (3v - 1)/2).
  for (double v : {0.0, 0.2, 1.0 / 3.0, 0.5, 0.8, 1.0}) {
    EXPECT_NEAR(concurrence(Density::werner(v)),
                std::max(0.0, (3.0 * v - 1.0) / 2.0), 1e-7)
        << "v=" << v;
  }
}

TEST(Negativity, BellPairIsHalf) {
  const Density bell = Density::from_state(StateVec::bell_phi_plus());
  EXPECT_NEAR(negativity(bell, 0), 0.5, 1e-8);
  EXPECT_NEAR(negativity(bell, 1), 0.5, 1e-8);
}

TEST(Negativity, SeparableIsZero) {
  EXPECT_NEAR(negativity(Density::maximally_mixed(2), 0), 0.0, 1e-9);
  // Werner states are separable iff v <= 1/3 (PPT exact for 2 qubits).
  EXPECT_NEAR(negativity(Density::werner(0.3), 0), 0.0, 1e-9);
  EXPECT_GT(negativity(Density::werner(0.4), 0), 1e-4);
}

TEST(Negativity, DecreasesUnderDepolarizing) {
  Density rho = Density::from_state(StateVec::bell_phi_plus());
  double prev = negativity(rho, 0);
  for (int i = 0; i < 3; ++i) {
    rho.apply_channel(depolarizing(0.2), 0);
    const double cur = negativity(rho, 0);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(ChshCeiling, BellPairHitsTsirelson) {
  EXPECT_NEAR(chsh_ceiling(Density::from_state(StateVec::bell_phi_plus())),
              2.0 * std::sqrt(2.0), 1e-8);
}

TEST(ChshCeiling, WernerScalesLinearly) {
  // Horodecki: ceiling = 2*sqrt(2)*v for Werner states.
  for (double v : {0.5, 0.7071, 0.9}) {
    EXPECT_NEAR(chsh_ceiling(Density::werner(v)), 2.0 * std::sqrt(2.0) * v,
                1e-6)
        << "v=" << v;
  }
}

TEST(ChshCeiling, AdvantageThresholdMatchesVisibility) {
  // Ceiling > 2 (classical bound) iff v > 1/sqrt2 — the same threshold the
  // win-probability analysis gives. Two independent criteria agreeing.
  EXPECT_GT(chsh_ceiling(Density::werner(0.72)), 2.0);
  EXPECT_LT(chsh_ceiling(Density::werner(0.70)), 2.0);
}

TEST(ChshCeiling, ProductStateAtMostTwo) {
  StateVec psi(2);
  psi.apply1(gates::Ry(0.8), 0);
  psi.apply1(gates::Ry(2.1), 1);
  EXPECT_LE(chsh_ceiling(Density::from_state(psi)), 2.0 + 1e-9);
}

TEST(ChshCeiling, ConsistentWithStorageDecoherence) {
  // Ceiling decreases monotonically as the pair sits in memory.
  Density rho = Density::werner(0.98);
  double prev = chsh_ceiling(rho);
  for (int i = 0; i < 4; ++i) {
    rho.apply_channel(dephasing(0.3), 0);
    const double cur = chsh_ceiling(rho);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(Measures, OrderingConsistency) {
  // All three entanglement measures agree on ordering across Werner states.
  const Density a = Density::werner(0.9);
  const Density b = Density::werner(0.6);
  EXPECT_GT(concurrence(a), concurrence(b));
  EXPECT_GT(negativity(a, 0), negativity(b, 0));
  EXPECT_GT(chsh_ceiling(a), chsh_ceiling(b));
}

}  // namespace
}  // namespace ftl::qcore

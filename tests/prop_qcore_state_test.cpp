// Property suite: state-vector laws on random inputs.
//
// Randomized cross-validation of the quantum core against plain linear
// algebra — normalisation under Haar unitaries, Born-rule completeness, and
// the Pauli-string fast path vs an explicitly materialised dense observable.
#include <gtest/gtest.h>

#include <cmath>

#include "qcore/generators.hpp"
#include "qcore/invariants.hpp"
#include "qcore/pauli.hpp"
#include "util/proptest.hpp"

namespace {

using ftl::proptest::CaseResult;
using ftl::proptest::for_all;
using ftl::proptest::Options;
using ftl::qcore::CMat;
using ftl::qcore::Cx;
using ftl::qcore::PauliSum;
using ftl::qcore::StateVec;
using ftl::util::Rng;

Options suite(const std::string& name, std::size_t cases = 150) {
  Options o;
  o.name = name;
  o.cases = cases;
  return o;
}

TEST(PropQcoreState, RandomStatesAreNormalized) {
  const auto r = for_all(
      suite("random-states-normalized"),
      [](Rng& rng) {
        return ftl::qcore::random_state(1 + rng.uniform_int(std::uint64_t{3}),
                                        rng);
      },
      [](const StateVec& psi) {
        return ftl::qcore::is_normalized(psi) &&
               ftl::qcore::is_density_matrix(psi.to_density());
      });
  ASSERT_TRUE(r.ok) << r.message;
}

TEST(PropQcoreState, RandomUnitariesAreUnitaryAndPreserveNorm) {
  struct Case {
    StateVec psi;
    CMat u;
    std::size_t qubit;
  };
  const auto r = for_all(
      suite("unitaries-preserve-norm"),
      [](Rng& rng) {
        const std::size_t n = 1 + rng.uniform_int(std::uint64_t{3});
        Case c{ftl::qcore::random_state(n, rng),
               ftl::qcore::random_unitary(2, rng), rng.uniform_int(n)};
        return c;
      },
      [](const Case& c) {
        if (!c.u.is_unitary(1e-9)) {
          return CaseResult::fail("generated matrix is not unitary");
        }
        StateVec evolved = c.psi;
        evolved.apply1(c.u, c.qubit);
        if (!ftl::qcore::is_normalized(evolved)) {
          return CaseResult::fail("norm drifted to " +
                                  std::to_string(evolved.norm()));
        }
        return CaseResult::pass();
      });
  ASSERT_TRUE(r.ok) << r.message;
}

TEST(PropQcoreState, MeasurementProbabilitiesAreComplete) {
  struct Case {
    StateVec psi;
    CMat basis;
    std::size_t qubit;
  };
  const auto r = for_all(
      suite("born-rule-completeness"),
      [](Rng& rng) {
        const std::size_t n = 1 + rng.uniform_int(std::uint64_t{3});
        Case c{ftl::qcore::random_state(n, rng),
               ftl::qcore::random_unitary(2, rng), rng.uniform_int(n)};
        return c;
      },
      [](const Case& c) {
        const double p0 = c.psi.outcome_probability(c.qubit, c.basis, 0);
        const double p1 = c.psi.outcome_probability(c.qubit, c.basis, 1);
        if (p0 < -1e-12 || p1 < -1e-12) {
          return CaseResult::fail("negative outcome probability");
        }
        if (std::abs(p0 + p1 - 1.0) > 1e-9) {
          return CaseResult::fail("P(0) + P(1) = " + std::to_string(p0 + p1));
        }
        return CaseResult::pass();
      });
  ASSERT_TRUE(r.ok) << r.message;
}

// The string-wise Pauli fast path vs a dense kron-built observable: both
// the matrix-vector action and the expectation value must agree.
TEST(PropQcoreState, PauliSumMatchesDenseMatrix) {
  struct Case {
    StateVec psi;
    PauliSum op;
  };
  const auto r = for_all(
      suite("pauli-vs-dense", 120),
      [](Rng& rng) {
        const std::size_t n = 1 + rng.uniform_int(std::uint64_t{3});
        const std::size_t terms = 1 + rng.uniform_int(std::uint64_t{4});
        Case c{ftl::qcore::random_state(n, rng),
               ftl::qcore::random_pauli_sum(n, terms, rng)};
        return c;
      },
      [](const Case& c) {
        const CMat dense = ftl::qcore::pauli_sum_matrix(c.op);
        const std::vector<Cx> fast = c.op.apply(c.psi);
        const std::vector<Cx> slow = dense.apply(c.psi.amplitudes());
        for (std::size_t i = 0; i < fast.size(); ++i) {
          if (std::abs(fast[i] - slow[i]) > 1e-9) {
            return CaseResult::fail("O|psi> mismatch at amplitude " +
                                    std::to_string(i));
          }
        }
        const double fast_exp = c.op.expectation(c.psi);
        const Cx slow_exp = ftl::qcore::inner(c.psi.amplitudes(), slow);
        if (std::abs(fast_exp - slow_exp.real()) > 1e-9 ||
            std::abs(slow_exp.imag()) > 1e-9) {
          return CaseResult::fail(
              "expectation mismatch: fast " + std::to_string(fast_exp) +
              " vs dense " + std::to_string(slow_exp.real()));
        }
        return CaseResult::pass();
      });
  ASSERT_TRUE(r.ok) << r.message;
}

// Expectation through the density-matrix path: Tr(rho O) for the pure-state
// density must equal the state-vector expectation.
TEST(PropQcoreState, DensityTraceMatchesStateExpectation) {
  struct Case {
    StateVec psi;
    PauliSum op;
  };
  const auto r = for_all(
      suite("density-vs-state-expectation", 120),
      [](Rng& rng) {
        const std::size_t n = 1 + rng.uniform_int(std::uint64_t{2});
        Case c{ftl::qcore::random_state(n, rng),
               ftl::qcore::random_pauli_sum(n, 3, rng)};
        return c;
      },
      [](const Case& c) {
        const CMat dense = ftl::qcore::pauli_sum_matrix(c.op);
        const CMat rho = c.psi.to_density();
        const Cx traced = (rho * dense).trace();
        const double direct = c.op.expectation(c.psi);
        if (std::abs(traced.real() - direct) > 1e-9) {
          return CaseResult::fail("Tr(rho O) = " +
                                  std::to_string(traced.real()) +
                                  " vs <psi|O|psi> = " +
                                  std::to_string(direct));
        }
        return CaseResult::pass();
      });
  ASSERT_TRUE(r.ok) << r.message;
}

}  // namespace

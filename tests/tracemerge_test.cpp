// ftlbench trace-merge against hand-built client/server traces with exact
// arithmetic: the six attribution components must partition the RTT, the
// join must key on trace id, and the rebased merged document must put both
// processes on one timeline.
#include <gtest/gtest.h>

#include <string>

#include "ftlbench/tracemerge.hpp"
#include "obs/json.hpp"

namespace {

namespace json = ftl::obs::json;
using ftl::benchtool::merge_traces;
using ftl::benchtool::StageStats;
using ftl::benchtool::TraceMergeResult;

// Client tracer started 1 ms after the server's: client events shift by
// +1000 us onto the common timeline, server events by 0.
constexpr const char* kClientTrace = R"({
  "otherData": {"t0_steady_ns": "2000000"},
  "traceEvents": [
    {"name": "batch_rtt", "cat": "loadgen", "ph": "X", "ts": 0, "dur": 100,
     "pid": 0, "tid": 0, "args": {"trace_id": "00000000000000aa"}},
    {"name": "batch_rtt", "cat": "loadgen", "ph": "X", "ts": 200, "dur": 80,
     "pid": 0, "tid": 1, "args": {"trace_id": "00000000000000bb"}},
    {"name": "batch_rtt", "cat": "loadgen", "ph": "X", "ts": 400, "dur": 10,
     "pid": 0, "tid": 0, "args": {"trace_id": "00000000000000cc"}}
  ]
})";

constexpr const char* kServerTrace = R"({
  "otherData": {"t0_steady_ns": "1000000"},
  "traceEvents": [
    {"name": "serve_batch", "ph": "X", "ts": 1002, "dur": 78, "tid": 3,
     "args": {"trace_id": "00000000000000aa"}},
    {"name": "socket_read", "ph": "X", "ts": 1005, "dur": 5, "tid": 3,
     "args": {"trace_id": "00000000000000aa"}},
    {"name": "admission", "ph": "X", "ts": 1010, "dur": 10, "tid": 3,
     "args": {"trace_id": "00000000000000aa"}},
    {"name": "pair_acquire", "ph": "X", "ts": 1020, "dur": 20, "tid": 3,
     "args": {"trace_id": "00000000000000aa"}},
    {"name": "decide", "ph": "X", "ts": 1040, "dur": 30, "tid": 3,
     "args": {"trace_id": "00000000000000aa"}},
    {"name": "reply_write", "ph": "X", "ts": 1070, "dur": 10, "tid": 3,
     "args": {"trace_id": "00000000000000aa"}},
    {"name": "admission", "ph": "X", "ts": 1210, "dur": 10, "tid": 4,
     "args": {"trace_id": "00000000000000bb"}},
    {"name": "pair_acquire", "ph": "X", "ts": 1220, "dur": 10, "tid": 4,
     "args": {"trace_id": "00000000000000bb"}},
    {"name": "decide", "ph": "X", "ts": 1230, "dur": 20, "tid": 4,
     "args": {"trace_id": "00000000000000bb"}},
    {"name": "reply_write", "ph": "X", "ts": 1250, "dur": 10, "tid": 4,
     "args": {"trace_id": "00000000000000bb"}},
    {"name": "serve_batch", "ph": "X", "ts": 1400, "dur": 5, "tid": 3,
     "args": {"trace_id": "00000000000000dd"}},
    {"name": "deadline_hit", "ph": "i", "ts": 1080, "s": "p",
     "args": {"stage": "none"}},
    {"name": "deadline_hit", "ph": "i", "ts": 1260, "s": "p",
     "args": {"stage": "none"}},
    {"name": "deadline_miss", "ph": "i", "ts": 1300, "s": "p",
     "args": {"stage": "pair_acquire"}},
    {"name": "deadline_miss", "ph": "i", "ts": 1310, "s": "p",
     "args": {"stage": "pair_acquire"}},
    {"name": "deadline_miss", "ph": "i", "ts": 1320, "s": "p",
     "args": {"stage": "reply_write"}}
  ]
})";

const StageStats* find_stage(const TraceMergeResult& r, const std::string& n) {
  for (const StageStats& s : r.stages)
    if (s.name == n) return &s;
  return nullptr;
}

TEST(TraceMerge, JoinsByTraceIdAndPartitionsRtt) {
  const TraceMergeResult r = merge_traces(kClientTrace, kServerTrace);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.client_events, 3u);
  EXPECT_EQ(r.server_events, 16u);
  EXPECT_EQ(r.traces_client, 3u);
  EXPECT_EQ(r.traces_server, 3u);  // aa, bb, dd (dd has serve_batch only)
  EXPECT_EQ(r.traces_joined, 2u);  // cc has no server side; dd no client

  // Trace aa: rtt 100 = wire_in 10 + admission 10 + pair_acquire 20 +
  // decide 30 + reply_write 10 + wire_out 20. Trace bb: rtt 80 = 10 + 10 +
  // 10 + 20 + 10 + 20. Means over the two joined traces:
  EXPECT_DOUBLE_EQ(r.rtt.mean_us, 90.0);
  EXPECT_DOUBLE_EQ(r.mean_attributed_us, 90.0);
  EXPECT_DOUBLE_EQ(r.attributed_fraction, 1.0);

  const StageStats* wire_in = find_stage(r, "wire_in");
  ASSERT_NE(wire_in, nullptr);
  EXPECT_EQ(wire_in->count, 2u);
  EXPECT_DOUBLE_EQ(wire_in->mean_us, 10.0);

  // socket_read overlaps wire_in and is reported but not attributed; only
  // trace aa recorded one.
  const StageStats* sr = find_stage(r, "socket_read");
  ASSERT_NE(sr, nullptr);
  EXPECT_EQ(sr->count, 1u);
  EXPECT_DOUBLE_EQ(sr->mean_us, 5.0);

  const StageStats* acquire = find_stage(r, "pair_acquire");
  ASSERT_NE(acquire, nullptr);
  EXPECT_DOUBLE_EQ(acquire->mean_us, 15.0);
  const StageStats* decide = find_stage(r, "decide");
  ASSERT_NE(decide, nullptr);
  EXPECT_DOUBLE_EQ(decide->mean_us, 25.0);
  const StageStats* wire_out = find_stage(r, "wire_out");
  ASSERT_NE(wire_out, nullptr);
  EXPECT_DOUBLE_EQ(wire_out->mean_us, 20.0);

  EXPECT_EQ(r.deadline_hits, 2u);
  ASSERT_EQ(r.deadline_misses.size(), 2u);
  EXPECT_EQ(r.deadline_misses.at("pair_acquire"), 2u);
  EXPECT_EQ(r.deadline_misses.at("reply_write"), 1u);
}

TEST(TraceMerge, MergedDocumentRebasesBothProcesses) {
  const TraceMergeResult r = merge_traces(kClientTrace, kServerTrace);
  ASSERT_TRUE(r.ok) << r.error;
  const auto doc = json::parse(r.merged_json);
  ASSERT_TRUE(doc.has_value());
  const json::Value* other = doc->find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->find("t0_steady_ns")->string, "1000000");  // min of t0s

  const json::Value* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  // 2 process_name metadata records + every source event, both files.
  ASSERT_EQ(events->array.size(), 2u + 3u + 16u);

  bool saw_client_pid = false, saw_server_pid = false;
  double client_cc_ts = -1.0;
  for (const json::Value& e : events->array) {
    const json::Value* ph = e.find("ph");
    if (ph != nullptr && ph->string == "M") continue;
    const double pid = e.find("pid")->number;
    if (pid == 1.0) saw_client_pid = true;
    if (pid == 2.0) saw_server_pid = true;
    const json::Value* args = e.find("args");
    if (pid == 1.0 && args != nullptr && args->find("trace_id") != nullptr &&
        args->find("trace_id")->string == "00000000000000cc") {
      client_cc_ts = e.find("ts")->number;
    }
  }
  EXPECT_TRUE(saw_client_pid);
  EXPECT_TRUE(saw_server_pid);
  // Client event at local ts=400 lands at 1400 after the +1000 us rebase.
  EXPECT_DOUBLE_EQ(client_cc_ts, 1400.0);
}

TEST(TraceMerge, SummarySchemaAndAttributionBlock) {
  const TraceMergeResult r = merge_traces(kClientTrace, kServerTrace);
  ASSERT_TRUE(r.ok) << r.error;
  const auto doc = json::parse(r.summary_json);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("schema")->string, "ftl.obs.trace_summary/v1");
  EXPECT_EQ(doc->find("traces")->find("joined")->number, 2.0);

  const json::Value* attribution = doc->find("attribution");
  ASSERT_NE(attribution, nullptr);
  const json::Value* components = attribution->find("components");
  ASSERT_NE(components, nullptr);
  ASSERT_EQ(components->array.size(), 6u);  // socket_read excluded
  for (const json::Value& c : components->array) {
    EXPECT_NE(c.string, "socket_read");
  }
  EXPECT_DOUBLE_EQ(attribution->find("attributed_fraction")->number, 1.0);

  const json::Value* deadline = doc->find("deadline");
  ASSERT_NE(deadline, nullptr);
  EXPECT_EQ(deadline->find("hits")->number, 2.0);
  EXPECT_EQ(deadline->find("total_misses")->number, 3.0);
  EXPECT_EQ(deadline->find("misses")->find("pair_acquire")->number, 2.0);
}

TEST(TraceMerge, RejectsMalformedInputs) {
  TraceMergeResult r = merge_traces("not json", kServerTrace);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("client trace"), std::string::npos);

  r = merge_traces(kClientTrace, "{\"traceEvents\": []}");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("t0_steady_ns"), std::string::npos);

  r = merge_traces("{\"otherData\": {\"t0_steady_ns\": \"5\"}}",
                   kServerTrace);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("traceEvents"), std::string::npos);
}

TEST(TraceMerge, EmptyJoinIsOkWithZeroedAttribution) {
  // Valid traces that share no trace ids: merge succeeds, attribution
  // stays zero instead of dividing by an empty mean.
  const char* lonely_client = R"({
    "otherData": {"t0_steady_ns": "1000"},
    "traceEvents": [
      {"name": "batch_rtt", "ph": "X", "ts": 0, "dur": 10,
       "args": {"trace_id": "00000000000000ee"}}
    ]
  })";
  const TraceMergeResult r = merge_traces(lonely_client, kServerTrace);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.traces_joined, 0u);
  EXPECT_DOUBLE_EQ(r.attributed_fraction, 0.0);
  EXPECT_EQ(r.rtt.count, 0u);
}

}  // namespace

// Determinism/equivalence harness for the sharded Fig-4 engine.
//
// Three layers of guarantees, strongest first:
//   1. bit-identical determinism — same (seed, shard count) must reproduce
//      the integer counters exactly, on any thread count;
//   2. exact reference equivalence — a 1-shard run consumes the identical
//      RNG stream as run_lb_sim and must match its deterministic counters
//      bit for bit (and its float means to round-off);
//   3. statistical physics equivalence — multi-shard runs are independent
//      sub-clusters at the same load, so conserved quantities are invariant
//      in the shard count and the CHSH win rate / queue curves must match
//      the single-threaded engine within confidence intervals.
#include "lb/sharded_simulator.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <vector>

#include "correlate/decision_source.hpp"
#include "lb/simulator.hpp"
#include "lb/strategy.hpp"
#include "sim/sharded.hpp"
#include "util/stats.hpp"

namespace ftl::lb {
namespace {

ShardedLbConfig small_cfg(const std::string& source, std::size_t shards) {
  ShardedLbConfig cfg;
  cfg.num_balancers = 48;
  cfg.num_servers = 24;
  cfg.warmup_steps = 200;
  cfg.measure_steps = 800;
  cfg.seed = 42;
  cfg.num_shards = shards;
  cfg.source = source;
  return cfg;
}

// --- sharding primitives ---------------------------------------------------

TEST(ShardRange, PartitionsEveryItemExactlyOnce) {
  for (std::size_t total : {1u, 7u, 24u, 100u}) {
    for (std::size_t shards = 1; shards <= 5; ++shards) {
      std::size_t next = 0;
      for (std::size_t s = 0; s < shards; ++s) {
        const auto r = sim::shard_range(total, shards, s);
        EXPECT_EQ(r.begin, next);
        EXPECT_GE(r.size() + 1, total / shards);  // even split +/- 1
        EXPECT_LE(r.size(), total / shards + 1);
        next = r.end;
      }
      EXPECT_EQ(next, total);
    }
  }
}

TEST(ShardSeed, ShardZeroKeepsMasterSeed) {
  EXPECT_EQ(sim::shard_seed(42, 0), 42u);
  EXPECT_EQ(sim::shard_seed(0xdeadbeef, 0), 0xdeadbeefu);
}

TEST(ShardSeed, ShardsGetDistinctStreams) {
  std::vector<std::uint64_t> seeds;
  for (std::size_t s = 0; s < 16; ++s) seeds.push_back(sim::shard_seed(42, s));
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    for (std::size_t j = i + 1; j < seeds.size(); ++j) {
      EXPECT_NE(seeds[i], seeds[j]) << i << " vs " << j;
    }
  }
}

TEST(ShardPool, RunsEveryShardExactlyOnce) {
  sim::ShardPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  constexpr std::size_t kShards = 100;
  std::vector<std::atomic<int>> hits(kShards);
  pool.parallel_shards(kShards, [&](std::size_t s) {
    hits[s].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(hits[s].load(), 1) << "shard " << s;
  }
}

TEST(ShardPool, ReusableAcrossJobs) {
  sim::ShardPool pool(3);
  for (int round = 0; round < 5; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_shards(17, [&](std::size_t s) {
      sum.fetch_add(s + 1, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 17u * 18u / 2u);
  }
}

// --- 1. bit-identical determinism ------------------------------------------

TEST(ShardedSim, SameSeedSameShardsIsBitIdentical) {
  for (const char* source : {"random", "quantum-chsh", "omniscient"}) {
    const ShardedLbConfig cfg = small_cfg(source, 4);
    sim::ShardPool pool(4);
    const ShardedLbResult r1 = run_sharded_lb_sim(cfg, &pool);
    const ShardedLbResult r2 = run_sharded_lb_sim(cfg, &pool);
    EXPECT_EQ(r1.counters, r2.counters) << source;
    ASSERT_EQ(r1.per_shard.size(), r2.per_shard.size());
    for (std::size_t s = 0; s < r1.per_shard.size(); ++s) {
      EXPECT_EQ(r1.per_shard[s], r2.per_shard[s]) << source << " shard " << s;
    }
    EXPECT_DOUBLE_EQ(r1.mean_queue_length, r2.mean_queue_length) << source;
    EXPECT_DOUBLE_EQ(r1.mean_delay, r2.mean_delay) << source;
  }
}

TEST(ShardedSim, ThreadCountDoesNotChangeResults) {
  const ShardedLbConfig cfg = small_cfg("quantum-chsh", 6);
  sim::ShardPool single(1);
  sim::ShardPool quad(4);
  sim::ShardPool wide(8);
  const ShardedLbResult r1 = run_sharded_lb_sim(cfg, &single);
  const ShardedLbResult r4 = run_sharded_lb_sim(cfg, &quad);
  const ShardedLbResult r8 = run_sharded_lb_sim(cfg, &wide);
  EXPECT_EQ(r1.counters, r4.counters);
  EXPECT_EQ(r1.counters, r8.counters);
  for (std::size_t s = 0; s < cfg.num_shards; ++s) {
    EXPECT_EQ(r1.per_shard[s], r4.per_shard[s]) << "shard " << s;
    EXPECT_EQ(r1.per_shard[s], r8.per_shard[s]) << "shard " << s;
  }
  // Distributional outputs merge in shard order, so they are exactly equal
  // too — thread scheduling must never reorder the merge.
  EXPECT_DOUBLE_EQ(r1.mean_queue_length, r4.mean_queue_length);
  EXPECT_DOUBLE_EQ(r1.mean_delay, r8.mean_delay);
}

// --- 2. exact equivalence with the single-threaded engine ------------------

TEST(ShardedSim, OneShardMatchesReferenceEngineBitForBit) {
  for (const char* source :
       {"quantum-chsh", "classical-chsh", "omniscient", "independent"}) {
    const ShardedLbConfig cfg = small_cfg(source, 1);

    LbConfig ref;
    ref.num_balancers = cfg.num_balancers;
    ref.num_servers = cfg.num_servers;
    ref.p_colocate = cfg.p_colocate;
    ref.policy = cfg.policy;
    ref.warmup_steps = cfg.warmup_steps;
    ref.measure_steps = cfg.measure_steps;
    ref.seed = cfg.seed;
    PairedStrategy strategy(correlate::make_source(source));
    const LbResult expected = run_lb_sim(ref, strategy);

    const ShardedLbResult got = run_sharded_lb_sim(cfg);
    EXPECT_EQ(got.counters.arrived, expected.arrived) << source;
    EXPECT_EQ(got.counters.served, expected.served) << source;
    EXPECT_EQ(got.counters.still_queued, expected.still_queued) << source;
    // The sharded engine sums exact integer queue lengths / delays where
    // the reference runs a Welford accumulator, so the means agree to
    // float rounding rather than bit for bit.
    EXPECT_NEAR(got.mean_queue_length, expected.mean_queue_length,
                1e-9 * (1.0 + expected.mean_queue_length))
        << source;
    EXPECT_NEAR(got.mean_delay, expected.mean_delay,
                1e-9 * (1.0 + expected.mean_delay))
        << source;
    EXPECT_NEAR(got.throughput, expected.throughput, 1e-12) << source;
  }
}

TEST(ShardedSim, OneShardRandomMatchesReferenceEngineBitForBit) {
  const ShardedLbConfig cfg = small_cfg("random", 1);
  LbConfig ref;
  ref.num_balancers = cfg.num_balancers;
  ref.num_servers = cfg.num_servers;
  ref.warmup_steps = cfg.warmup_steps;
  ref.measure_steps = cfg.measure_steps;
  ref.seed = cfg.seed;
  RandomStrategy strategy;
  const LbResult expected = run_lb_sim(ref, strategy);
  const ShardedLbResult got = run_sharded_lb_sim(cfg);
  EXPECT_EQ(got.counters.arrived, expected.arrived);
  EXPECT_EQ(got.counters.served, expected.served);
  EXPECT_EQ(got.counters.still_queued, expected.still_queued);
  EXPECT_NEAR(got.mean_queue_length, expected.mean_queue_length,
              1e-9 * (1.0 + expected.mean_queue_length));
  EXPECT_NEAR(got.mean_delay, expected.mean_delay,
              1e-9 * (1.0 + expected.mean_delay));
}

// --- 3. conservation and statistical physics equivalence -------------------

TEST(ShardedSim, ConservedQuantitiesAreShardCountInvariant) {
  // Deterministic arrivals: every balancer emits one request per measured
  // step, so `arrived` is exactly B * measure_steps for ANY shard count,
  // and everything that arrived is served or still queued.
  for (const char* source : {"random", "quantum-chsh"}) {
    for (std::size_t shards : {1u, 2u, 4u, 8u}) {
      const ShardedLbConfig cfg = small_cfg(source, shards);
      const ShardedLbResult r = run_sharded_lb_sim(cfg);
      const long long expected_arrived =
          static_cast<long long>(cfg.num_balancers) * cfg.measure_steps;
      EXPECT_EQ(r.counters.arrived, expected_arrived)
          << source << " shards=" << shards;
      EXPECT_EQ(r.counters.arrived,
                r.counters.served + r.counters.still_queued)
          << source << " shards=" << shards;
      // Every measured paired round is tallied won or lost.
      if (std::string(source) != "random") {
        EXPECT_EQ(r.counters.rounds_won + r.counters.rounds_lost,
                  static_cast<long long>(cfg.num_balancers / 2) *
                      cfg.measure_steps)
            << source << " shards=" << shards;
      }
      // Per-shard conservation as well (each shard is a closed system).
      for (const ShardedCounters& c : r.per_shard) {
        EXPECT_EQ(c.arrived, c.served + c.still_queued);
      }
    }
  }
}

TEST(ShardedSim, WinRateMatchesTsirelsonWithinCi) {
  ShardedLbConfig cfg = small_cfg("quantum-chsh", 4);
  cfg.measure_steps = 2000;
  const ShardedLbResult r = run_sharded_lb_sim(cfg);
  const auto won = static_cast<std::size_t>(r.counters.rounds_won);
  const auto rounds =
      static_cast<std::size_t>(r.counters.rounds_won + r.counters.rounds_lost);
  const double p_hat =
      static_cast<double>(won) / static_cast<double>(rounds);
  const double p_tsirelson = 0.5 * (1.0 + 1.0 / std::sqrt(2.0));
  // Wilson CI with a safety factor; the run is seeded so this never flakes.
  EXPECT_NEAR(p_hat, p_tsirelson,
              3.0 * util::wilson_halfwidth(won, rounds));
}

TEST(ShardedSim, MultiShardMatchesReferencePhysicsWithinCi) {
  // A sharded cluster is independent sub-clusters at the same load N/M, so
  // its Fig-4 observables must agree with the single-threaded engine's
  // statistically. Compare mean queue length per server against the
  // reference engine's CI over per-seed replicates.
  constexpr std::size_t kSeeds = 5;
  for (const char* source : {"random", "quantum-chsh"}) {
    util::Accumulator ref_mq;
    for (std::size_t i = 0; i < kSeeds; ++i) {
      LbConfig ref;
      ref.num_balancers = 48;
      ref.num_servers = 24;
      ref.warmup_steps = 200;
      ref.measure_steps = 800;
      ref.seed = 100 + i;
      std::unique_ptr<LbStrategy> strategy;
      if (std::string(source) == "random") {
        strategy = std::make_unique<RandomStrategy>();
      } else {
        strategy =
            std::make_unique<PairedStrategy>(correlate::make_source(source));
      }
      ref_mq.add(run_lb_sim(ref, *strategy).mean_queue_length);
    }

    util::Accumulator sharded_mq;
    for (std::size_t i = 0; i < kSeeds; ++i) {
      ShardedLbConfig cfg = small_cfg(source, 4);
      cfg.seed = 500 + i;
      sharded_mq.add(run_sharded_lb_sim(cfg).mean_queue_length);
    }

    // Two-sample check: the difference of means must sit inside the
    // combined 95% CI (seeded, so deterministic; 3x safety margin).
    const double diff = std::abs(ref_mq.mean() - sharded_mq.mean());
    const double tol =
        3.0 * (ref_mq.ci95_halfwidth() + sharded_mq.ci95_halfwidth()) + 1e-6;
    EXPECT_LE(diff, tol) << source << " ref=" << ref_mq.mean()
                         << " sharded=" << sharded_mq.mean();
  }
}

TEST(ShardedSim, QuantumBeatsRandomAtHighLoadWhenSharded) {
  // The headline Fig-4 ordering survives sharding: above the classical
  // stability point the quantum source keeps shorter queues than random.
  ShardedLbConfig quantum = small_cfg("quantum-chsh", 4);
  quantum.num_balancers = 64;
  quantum.num_servers = 48;  // load 4/3, inside the advantage region
  ShardedLbConfig random_cfg = quantum;
  random_cfg.source = "random";
  const ShardedLbResult rq = run_sharded_lb_sim(quantum);
  const ShardedLbResult rr = run_sharded_lb_sim(random_cfg);
  EXPECT_LT(rq.mean_queue_length, rr.mean_queue_length);
}

}  // namespace
}  // namespace ftl::lb

#include "correlate/typed_source.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "correlate/decision_source.hpp"
#include "lb/typed_simulator.hpp"
#include "util/rng.hpp"

namespace ftl {
namespace {

/// The §4.1 "multiple C subtypes" affinity graph: types A and B co-locate
/// with themselves, exclude each other, and everything excludes E
/// (including E itself — exclusive tasks want isolation).
games::AffinityGraph subtype_graph() {
  using games::Affinity;
  games::AffinityGraph g(3);
  g.set(0, 1, Affinity::kExclusive);
  g.set(0, 2, Affinity::kExclusive);
  g.set(1, 2, Affinity::kExclusive);
  g.set(2, 2, Affinity::kExclusive);
  return g;
}

games::XorGame subtype_game() {
  return games::XorGame::from_affinity(subtype_graph(),
                                       /*include_diagonal=*/true);
}

double sampled_win(correlate::TypedDecisionSource& src, std::size_t x,
                   std::size_t y, int f, int n, util::Rng& rng) {
  int wins = 0;
  for (int i = 0; i < n; ++i) {
    const auto [a, b] = src.decide(x, y, rng);
    if ((a ^ b) == f) ++wins;
  }
  return static_cast<double>(wins) / n;
}

TEST(TypedSources, GameHasQuantumAdvantage) {
  const games::XorGame game = subtype_game();
  EXPECT_NEAR(game.classical_bias(), 5.0 / 9.0, 1e-10);
  EXPECT_NEAR(game.quantum_bias().bias, 2.0 / 3.0, 1e-5);
}

TEST(TypedSources, IndependentWinsHalf) {
  correlate::TypedIndependentSource src(subtype_game());
  EXPECT_EQ(src.num_types(), 3u);
  util::Rng rng(1);
  EXPECT_NEAR(sampled_win(src, 0, 1, 1, 20000, rng), 0.5, 0.015);
}

TEST(TypedSources, ClassicalMatchesWitness) {
  const games::XorGame game = subtype_game();
  correlate::TypedClassicalSource src(game);
  util::Rng rng(2);
  // Averaged over uniform inputs, the deterministic witness achieves the
  // classical value exactly.
  double total = 0.0;
  for (std::size_t x = 0; x < 3; ++x) {
    for (std::size_t y = 0; y < 3; ++y) {
      const double w = src.win_probability(x, y);
      EXPECT_TRUE(w == 0.0 || w == 1.0);
      total += w / 9.0;
      EXPECT_NEAR(sampled_win(src, x, y, game.f(x, y), 4000, rng), w, 1e-12);
    }
  }
  EXPECT_NEAR(total, game.classical_value(), 1e-10);
}

TEST(TypedSources, QuantumWinRatesMatchCorrelators) {
  const games::XorGame game = subtype_game();
  correlate::TypedQuantumSource src(game);
  util::Rng rng(3);
  double total = 0.0;
  for (std::size_t x = 0; x < 3; ++x) {
    for (std::size_t y = 0; y < 3; ++y) {
      const double w = src.win_probability(x, y);
      EXPECT_NEAR(sampled_win(src, x, y, game.f(x, y), 30000, rng), w, 0.012);
      total += w / 9.0;
    }
  }
  // Aggregate win probability equals the SDP value (1 + bias)/2.
  EXPECT_NEAR(total, (1.0 + game.quantum_bias().bias) / 2.0, 1e-5);
}

TEST(TypedSources, QuantumBeatsClassicalOnAggregate) {
  const games::XorGame game = subtype_game();
  correlate::TypedQuantumSource quantum(game);
  correlate::TypedClassicalSource classical(game);
  double q = 0.0;
  double c = 0.0;
  for (std::size_t x = 0; x < 3; ++x) {
    for (std::size_t y = 0; y < 3; ++y) {
      q += quantum.win_probability(x, y) / 9.0;
      c += classical.win_probability(x, y) / 9.0;
    }
  }
  EXPECT_GT(q, c + 0.04);
}

TEST(TypedSources, QuantumMarginalsUniform) {
  correlate::TypedQuantumSource src(subtype_game());
  util::Rng rng(4);
  for (std::size_t x = 0; x < 3; ++x) {
    int ones = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) ones += src.decide(x, 2, rng).first;
    EXPECT_NEAR(static_cast<double>(ones) / n, 0.5, 0.015) << "x=" << x;
  }
}

TEST(TypedSources, TwoTypeCaseMatchesHonestChsh) {
  // The typed machinery on the flipped-CHSH graph must reproduce the
  // honest qubit-measurement source's statistics.
  using games::Affinity;
  games::AffinityGraph g(2);
  g.set(0, 1, Affinity::kExclusive);
  g.set(1, 1, Affinity::kExclusive);
  const games::XorGame game = games::XorGame::from_affinity(g, true);
  correlate::TypedQuantumSource typed(game);
  // Note the index mapping: graph type 0 = C (self-colocate), type 1 = E.
  // In the CHSH convention x=1 means type C.
  correlate::ChshSource honest(1.0);
  const double expect = std::cos(M_PI / 8.0) * std::cos(M_PI / 8.0);
  double typed_avg = 0.0;
  for (std::size_t x = 0; x < 2; ++x) {
    for (std::size_t y = 0; y < 2; ++y) {
      typed_avg += typed.win_probability(x, y) / 4.0;
    }
  }
  EXPECT_NEAR(typed_avg, expect, 1e-5);
  EXPECT_NEAR(honest.win_probability(0, 0), expect, 1e-10);
}

TEST(TypedSources, RealizedSourceMatchesSampledSource) {
  // The honest Pauli-measurement implementation and the correlator-sampled
  // one must have identical win profiles (same SDP vectors).
  const games::XorGame game = subtype_game();
  sdp::GramOptions opts;
  opts.seed = 321;
  correlate::TypedQuantumSource sampled(game, opts);
  correlate::TypedRealizedSource realized(game, opts);
  EXPECT_LE(realized.qubits_per_party(), 3u);
  for (std::size_t x = 0; x < 3; ++x) {
    for (std::size_t y = 0; y < 3; ++y) {
      EXPECT_NEAR(realized.win_probability(x, y),
                  sampled.win_probability(x, y), 1e-6)
          << "x=" << x << " y=" << y;
    }
  }
}

TEST(TypedSources, RealizedSourceSampledPlayMatches) {
  const games::XorGame game = subtype_game();
  correlate::TypedRealizedSource src(game);
  util::Rng rng(33);
  const double w = src.win_probability(0, 0);
  EXPECT_NEAR(sampled_win(src, 0, 0, game.f(0, 0), 8000, rng), w, 0.02);
}

TEST(TypedSources, OmniscientAlwaysWins) {
  correlate::TypedOmniscientSource src(subtype_game());
  util::Rng rng(5);
  const games::XorGame game = subtype_game();
  for (std::size_t x = 0; x < 3; ++x) {
    for (std::size_t y = 0; y < 3; ++y) {
      EXPECT_NEAR(sampled_win(src, x, y, game.f(x, y), 2000, rng), 1.0,
                  1e-12);
    }
  }
}

// ---- typed cluster simulation ----------------------------------------------

lb::TypedLbConfig typed_cfg(std::size_t servers) {
  lb::TypedLbConfig cfg;
  cfg.num_balancers = 60;
  cfg.num_servers = servers;
  cfg.type_probs = {0.35, 0.35, 0.30};
  cfg.warmup_steps = 300;
  cfg.measure_steps = 1500;
  cfg.seed = 11;
  return cfg;
}

TEST(TypedSim, ConservationOfTasks) {
  lb::TypedRandomStrategy strat;
  const auto r = run_typed_lb_sim(typed_cfg(50), subtype_graph(), strat);
  EXPECT_EQ(r.arrived, r.served + r.still_queued);
}

TEST(TypedSim, LowLoadStays) {
  lb::TypedRandomStrategy strat;
  const auto r = run_typed_lb_sim(typed_cfg(120), subtype_graph(), strat);
  EXPECT_LT(r.mean_queue_length, 1.0);
}

TEST(TypedSim, BinaryGraphReproducesFigure4Ordering) {
  // The {C, E} graph through the typed machinery with the priority policy
  // must reproduce the binary simulator's result: quantum beats classical
  // random and classical-paired; omniscient is best.
  using games::Affinity;
  games::AffinityGraph graph(2);
  graph.set(0, 1, Affinity::kExclusive);
  graph.set(1, 1, Affinity::kExclusive);
  const games::XorGame game = games::XorGame::from_affinity(graph, true);

  lb::TypedLbConfig cfg;
  cfg.num_balancers = 60;
  cfg.num_servers = 64;  // load ~0.94, just below the knee
  cfg.type_probs = {0.5, 0.5};
  cfg.warmup_steps = 500;
  cfg.measure_steps = 2500;
  cfg.interference = 0.0;
  cfg.policy = lb::TypedServicePolicy::kPriorityPairs;
  cfg.seed = 11;

  lb::TypedRandomStrategy random_s;
  lb::TypedPairedStrategy classical_s(
      std::make_unique<correlate::TypedClassicalSource>(game));
  lb::TypedPairedStrategy quantum_s(
      std::make_unique<correlate::TypedQuantumSource>(game));
  lb::TypedPairedStrategy omni_s(
      std::make_unique<correlate::TypedOmniscientSource>(game));

  const double d_random = run_typed_lb_sim(cfg, graph, random_s).mean_delay;
  const double d_classical =
      run_typed_lb_sim(cfg, graph, classical_s).mean_delay;
  const double d_quantum = run_typed_lb_sim(cfg, graph, quantum_s).mean_delay;
  const double d_omni = run_typed_lb_sim(cfg, graph, omni_s).mean_delay;

  EXPECT_LT(d_quantum, d_random);
  EXPECT_LT(d_quantum, d_classical);
  EXPECT_LE(d_omni, d_quantum);
}

TEST(TypedSim, SubtypeGraphGameAdvantageDoesNotAutoConvert) {
  // Documented *negative* result (multi-seed robust): on the 3-subtype
  // graph the quantum game value beats classical (0.833 vs 0.778), yet
  // end-to-end delays track the classical paired strategy within a few
  // percent and do not robustly beat it — the classical witness's
  // all-or-nothing win profile (7 cells at 100%) matches the capacity
  // objective better than the quantum profile's uniform 0.75-1.0 spread.
  // This is the concrete content of the paper's closing caveat; see
  // EXPERIMENTS.md and bench_typed_subtypes.
  const games::AffinityGraph graph = subtype_graph();
  const games::XorGame game = subtype_game();

  double d_classical = 0.0;
  double d_quantum = 0.0;
  const int seeds = 4;
  for (int s = 1; s <= seeds; ++s) {
    auto cfg = typed_cfg(60);  // load 1.0
    cfg.interference = 0.3;
    cfg.policy = lb::TypedServicePolicy::kPairsFirstFifo;
    cfg.seed = static_cast<std::uint64_t>(s) * 101;
    lb::TypedPairedStrategy classical_s(
        std::make_unique<correlate::TypedClassicalSource>(game));
    lb::TypedPairedStrategy quantum_s(
        std::make_unique<correlate::TypedQuantumSource>(game));
    d_classical += run_typed_lb_sim(cfg, graph, classical_s).mean_delay;
    d_quantum += run_typed_lb_sim(cfg, graph, quantum_s).mean_delay;
  }
  d_classical /= seeds;
  d_quantum /= seeds;
  // Within 15% of each other, and classical is not robustly worse.
  EXPECT_LT(std::abs(d_quantum - d_classical) / d_classical, 0.15);
  EXPECT_LE(d_classical, d_quantum * 1.10);
}

TEST(TypedSim, DeterministicForSeed) {
  lb::TypedRandomStrategy s1;
  lb::TypedRandomStrategy s2;
  const auto a = run_typed_lb_sim(typed_cfg(50), subtype_graph(), s1);
  const auto b = run_typed_lb_sim(typed_cfg(50), subtype_graph(), s2);
  EXPECT_DOUBLE_EQ(a.mean_queue_length, b.mean_queue_length);
}

TEST(TypedSim, DriftBreaksDedicatedPools) {
  // Static pools are optimal for a stationary, known mix and collapse when
  // the mix drifts; mix-oblivious strategies barely notice.
  games::AffinityGraph graph(3);
  graph.set(0, 1, games::Affinity::kExclusive);
  graph.set(0, 2, games::Affinity::kExclusive);
  graph.set(1, 2, games::Affinity::kExclusive);

  lb::TypedLbConfig cfg;
  cfg.num_balancers = 60;
  cfg.num_servers = 52;
  cfg.type_probs.assign(3, 1.0 / 3.0);
  cfg.warmup_steps = 400;
  cfg.measure_steps = 3000;
  cfg.interference = 0.5;
  cfg.policy = lb::TypedServicePolicy::kPairsFirstFifo;
  cfg.seed = 11;

  lb::TypedDedicatedStrategy ded_static({0, 1, 2}, 3);
  const double d_static = run_typed_lb_sim(cfg, graph, ded_static).mean_delay;
  cfg.mix_drift_period = 200;
  lb::TypedDedicatedStrategy ded_drift({0, 1, 2}, 3);
  const double d_drift = run_typed_lb_sim(cfg, graph, ded_drift).mean_delay;
  lb::TypedRandomStrategy rnd;
  const double d_random_drift = run_typed_lb_sim(cfg, graph, rnd).mean_delay;

  EXPECT_GT(d_drift, 3.0 * d_static);       // pools collapse under drift
  EXPECT_LT(d_random_drift, d_drift);       // oblivious strategies don't
}

TEST(TypedSim, DedicatedPoolsRespectGroups) {
  lb::TypedDedicatedStrategy strat({0, 0, 1}, 2);
  util::Rng rng(7);
  std::vector<std::size_t> types{0, 1, 2, 2};
  std::vector<std::size_t> out;
  for (int i = 0; i < 100; ++i) {
    strat.assign(types, out, 10, rng);
    EXPECT_LT(out[0], 5u);
    EXPECT_LT(out[1], 5u);
    EXPECT_GE(out[2], 5u);
    EXPECT_GE(out[3], 5u);
  }
}

}  // namespace
}  // namespace ftl

#include "ecmp/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ecmp/no_signaling.hpp"
#include "ecmp/strategies.hpp"
#include "qcore/gates.hpp"
#include "util/rng.hpp"

namespace ftl::ecmp {
namespace {

TEST(SharedPartition, CollisionFormula) {
  // N=4, M=2: groups 2+2, P = (2*2*1)/(4*3) = 1/3.
  EXPECT_NEAR(SharedPartition::pair_collision_probability(4, 2), 1.0 / 3.0,
              1e-12);
  // N=3, M=2: groups 2+1, P = 2/(3*2) = 1/3.
  EXPECT_NEAR(SharedPartition::pair_collision_probability(3, 2), 1.0 / 3.0,
              1e-12);
  // N=M: perfect assignment, no collisions.
  EXPECT_NEAR(SharedPartition::pair_collision_probability(4, 4), 0.0, 1e-12);
  // N=6, M=3: groups of 2, P = 3*2/(6*5) = 0.2.
  EXPECT_NEAR(SharedPartition::pair_collision_probability(6, 3), 0.2, 1e-12);
}

TEST(IndependentUniform, SimulatedCollisionMatchesOneOverM) {
  IndependentUniform strat(6, 3);
  EcmpConfig cfg;
  cfg.active = 2;
  cfg.rounds = 60000;
  const EcmpResult r = run_ecmp_sim(cfg, strat);
  EXPECT_NEAR(r.mean_collisions, 1.0 / 3.0, 0.01);
}

TEST(SharedPartitionSim, MatchesClosedForm) {
  SharedPartition strat(4, 2);
  EcmpConfig cfg;
  cfg.active = 2;
  cfg.rounds = 60000;
  const EcmpResult r = run_ecmp_sim(cfg, strat);
  EXPECT_NEAR(r.mean_collisions,
              SharedPartition::pair_collision_probability(4, 2), 0.01);
}

TEST(SharedPartitionSim, BeatsIndependentRandom) {
  EcmpConfig cfg;
  cfg.active = 2;
  cfg.rounds = 40000;
  IndependentUniform ind(4, 2);
  SharedPartition part(4, 2);
  EXPECT_LT(run_ecmp_sim(cfg, part).mean_collisions,
            run_ecmp_sim(cfg, ind).mean_collisions);
}

TEST(SharedPartitionSim, PerfectWhenAllFit) {
  SharedPartition strat(4, 4);
  EcmpConfig cfg;
  cfg.active = 3;
  cfg.rounds = 5000;
  const EcmpResult r = run_ecmp_sim(cfg, strat);
  EXPECT_DOUBLE_EQ(r.mean_collisions, 0.0);
  EXPECT_DOUBLE_EQ(r.p_collision_free, 1.0);
  EXPECT_DOUBLE_EQ(r.path_spread, 1.0);
}

TEST(GhzAngles, PairCollisionMatchesClassicalMixtureFormula) {
  // GHZ(n>=3) reduced pairs are (|00><00| + |11><11|)/2, so
  // P(same) = c_i c_j + (1-c_i)(1-c_j) with c = cos^2(theta).
  const std::vector<double> angles{0.3, 1.1, 0.7};
  GhzAngles strat(angles);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = i + 1; j < 3; ++j) {
      const double ci = std::cos(angles[i]) * std::cos(angles[i]);
      const double cj = std::cos(angles[j]) * std::cos(angles[j]);
      EXPECT_NEAR(strat.pair_collision_probability(i, j),
                  ci * cj + (1.0 - ci) * (1.0 - cj), 1e-9);
    }
  }
}

TEST(GhzAngles, SampledCollisionsMatchExact) {
  GhzAngles strat({0.0, M_PI / 2.0, M_PI / 4.0});
  EcmpConfig cfg;
  cfg.active = 2;
  cfg.rounds = 40000;
  const EcmpResult r = run_ecmp_sim(cfg, strat);
  EXPECT_NEAR(r.mean_collisions, strat.mean_pair_collision(), 0.01);
}

TEST(GhzAngles, BestHandPickedMatchesPartitionBound) {
  // Angles {0, pi/2, pi/4}: deterministic anti-correlated pair plus a
  // hedger: mean collision (0 + 1/2 + 1/2)/3 = 1/3 — exactly classical.
  GhzAngles strat({0.0, M_PI / 2.0, M_PI / 4.0});
  EXPECT_NEAR(strat.mean_pair_collision(), 1.0 / 3.0, 1e-9);
}

TEST(GhzGridSearch, NeverBeatsClassicalPartition) {
  // The paper's conjecture, probed exhaustively on an angle grid: for 3 and
  // 4 switches over 2 paths, no GHZ measurement beats the classical 1/3.
  for (std::size_t n : {3u, 4u}) {
    const double best = grid_search_ghz_min_collision(n, 12);
    const double classical = SharedPartition::pair_collision_probability(n, 2);
    EXPECT_GE(best, classical - 1e-6) << "n=" << n;
  }
}

TEST(WAngles, WStateIsCorrectlyBuilt) {
  const auto w = ecmp::WAngles::w_state(3);
  EXPECT_NEAR(std::abs(w.amplitude(0b100)), 1.0 / std::sqrt(3.0), 1e-12);
  EXPECT_NEAR(std::abs(w.amplitude(0b010)), 1.0 / std::sqrt(3.0), 1e-12);
  EXPECT_NEAR(std::abs(w.amplitude(0b001)), 1.0 / std::sqrt(3.0), 1e-12);
  EXPECT_NEAR(std::abs(w.amplitude(0b000)), 0.0, 1e-12);
  EXPECT_NEAR(w.norm(), 1.0, 1e-12);
}

TEST(WAngles, ComputationalBasisAntiCorrelates) {
  // Measuring W(3) in the computational basis: exactly one switch outputs
  // 1, so a random active pair collides iff both read 0: P = 1/3.
  ecmp::WAngles strat({0.0, 0.0, 0.0});
  EXPECT_NEAR(strat.mean_pair_collision(), 1.0 / 3.0, 1e-9);
}

TEST(WAngles, SampledMatchesExact) {
  ecmp::WAngles strat({0.4, 1.0, 2.0});
  ecmp::EcmpConfig cfg;
  cfg.active = 2;
  cfg.rounds = 40000;
  const ecmp::EcmpResult r = run_ecmp_sim(cfg, strat);
  EXPECT_NEAR(r.mean_collisions, strat.mean_pair_collision(), 0.01);
}

TEST(WAngles, GridSearchCannotBeatClassicalEither) {
  // W-state reduced pairs are *entangled* (unlike GHZ), yet the best W
  // strategy still only matches the classical partition at n = 3 and is
  // strictly worse at n = 4 — monogamy dilutes pairwise correlations.
  EXPECT_GE(ecmp::grid_search_w_min_collision(3, 12), 1.0 / 3.0 - 1e-6);
  EXPECT_GE(ecmp::grid_search_w_min_collision(4, 12), 1.0 / 3.0 + 0.05);
}

TEST(PairedSinglets, PerfectAntiCorrelationWithinPair) {
  PairedSinglets strat(4);
  util::Rng rng(3);
  std::vector<std::size_t> out;
  for (int i = 0; i < 200; ++i) {
    strat.choose(out, rng);
    EXPECT_NE(out[0], out[1]);
    EXPECT_NE(out[2], out[3]);
  }
}

TEST(PairedSinglets, MatchesSingletStateSimulation) {
  // Verify the shortcut sampling against an actual singlet measured in the
  // same basis on both sides: outcomes always differ.
  util::Rng rng(4);
  const qcore::CMat basis = qcore::gates::real_basis(0.77);
  for (int i = 0; i < 200; ++i) {
    // Singlet (|01> - |10>)/sqrt2.
    const double r = 1.0 / std::sqrt(2.0);
    auto psi = qcore::StateVec::from_amplitudes(
        {qcore::Cx{0, 0}, qcore::Cx{r, 0}, qcore::Cx{-r, 0}, qcore::Cx{0, 0}});
    const int a = psi.measure(0, basis, rng);
    const int b = psi.measure(1, basis, rng);
    EXPECT_NE(a, b);
  }
}

TEST(PairedSinglets, CrossPairCollisionsAreRandom) {
  PairedSinglets strat(4);
  EcmpConfig cfg;
  cfg.active = 2;
  cfg.rounds = 60000;
  const EcmpResult r = run_ecmp_sim(cfg, strat);
  // Of the C(4,2) = 6 possible active pairs, 2 are within a singlet pair
  // (never collide) and 4 are cross-pair (collide w.p. 1/2): mean = 1/3 —
  // exactly the classical partition bound, not below it. Monogamy of
  // entanglement in action.
  EXPECT_NEAR(r.mean_collisions, 1.0 / 3.0, 0.01);
}

// ---- no-signaling reduction ------------------------------------------------

class NoSignalingSweep : public ::testing::TestWithParam<double> {};

TEST_P(NoSignalingSweep, CDoesNotInfluenceABJoint) {
  const double theta_c = GetParam();
  const auto rho = qcore::Density::from_state(qcore::StateVec::ghz(3));
  const auto ba = qcore::gates::real_basis(0.4);
  const auto bb = qcore::gates::real_basis(1.0);
  const auto bc = qcore::gates::real_basis(theta_c);
  EXPECT_LT(no_signaling_deviation(rho, 0, ba, 1, bb, 2, bc), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(AnglesOfC, NoSignalingSweep,
                         ::testing::Values(0.0, 0.3, M_PI / 4.0, 1.2,
                                           M_PI / 2.0, 2.5));

TEST(NoSignaling, HoldsForWStateToo) {
  // W = (|001> + |010> + |100>)/sqrt3 — not GHZ; reduction still holds.
  const double r = 1.0 / std::sqrt(3.0);
  std::vector<qcore::Cx> amps(8, qcore::Cx{0, 0});
  amps[1] = amps[2] = amps[4] = qcore::Cx{r, 0};
  const auto rho =
      qcore::Density::from_state(qcore::StateVec::from_amplitudes(amps));
  const auto basis = qcore::gates::real_basis(0.9);
  EXPECT_LT(no_signaling_deviation(rho, 0, basis, 1, basis, 2,
                                   qcore::gates::real_basis(0.2)),
            1e-10);
}

TEST(NoSignaling, JointDistributionsAreNormalised) {
  const auto rho = qcore::Density::from_state(qcore::StateVec::ghz(3));
  const auto basis = qcore::gates::real_basis(0.6);
  const auto j = joint_ab(rho, 0, basis, 1, basis);
  double total = 0.0;
  for (const auto& row : j) {
    for (double p : row) {
      EXPECT_GE(p, -1e-12);
      total += p;
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-10);
}

TEST(Reduction, EnsembleIsValidAndComplete) {
  const auto rho = qcore::Density::from_state(qcore::StateVec::ghz(3));
  const auto ensemble =
      reduce_by_measuring(rho, 2, qcore::gates::real_basis(0.8));
  double total_p = 0.0;
  for (const auto& [p, state] : ensemble) {
    EXPECT_GT(p, 0.0);
    EXPECT_EQ(state.num_qubits(), 2u);
    EXPECT_TRUE(state.is_valid(1e-7));
    total_p += p;
  }
  EXPECT_NEAR(total_p, 1.0, 1e-10);
}

TEST(Reduction, MixtureReproducesMarginal) {
  // Averaging the ensemble must equal the partial trace: the constructive
  // form of "C may as well measure in advance".
  const auto rho = qcore::Density::from_state(qcore::StateVec::ghz(3));
  const auto basis_c = qcore::gates::real_basis(1.3);
  const auto ensemble = reduce_by_measuring(rho, 2, basis_c);
  qcore::CMat avg(4, 4);
  for (const auto& [p, state] : ensemble) {
    avg += state.matrix() * qcore::Cx{p, 0.0};
  }
  const auto traced = rho.partial_trace({2});
  EXPECT_TRUE(avg.approx_equal(traced.matrix(), 1e-10));
}

TEST(Simulator, ActiveSubsetBounds) {
  IndependentUniform strat(5, 3);
  EcmpConfig cfg;
  cfg.active = 5;  // everyone active
  cfg.rounds = 1000;
  const EcmpResult r = run_ecmp_sim(cfg, strat);
  // 5 switches on 3 paths: pigeonhole forces at least one collision.
  EXPECT_DOUBLE_EQ(r.p_collision_free, 0.0);
  EXPECT_GE(r.mean_collisions, 1.0);
}

}  // namespace
}  // namespace ftl::ecmp

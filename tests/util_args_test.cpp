#include "util/args.hpp"

#include <gtest/gtest.h>

namespace ftl::util {
namespace {

Args parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> v(argv);
  return Args(static_cast<int>(v.size()), v.data());
}

TEST(Args, ProgramName) {
  const Args a = parse({"prog"});
  EXPECT_EQ(a.program(), "prog");
  EXPECT_TRUE(a.positional().empty());
}

TEST(Args, SpaceSeparatedValue) {
  const Args a = parse({"prog", "--servers", "86"});
  EXPECT_TRUE(a.has("servers"));
  EXPECT_EQ(a.get("servers", static_cast<long long>(0)), 86);
}

TEST(Args, EqualsSeparatedValue) {
  const Args a = parse({"prog", "--visibility=0.85"});
  EXPECT_DOUBLE_EQ(a.get("visibility", 0.0), 0.85);
}

TEST(Args, BooleanFlag) {
  const Args a = parse({"prog", "--verbose"});
  EXPECT_TRUE(a.get("verbose", false));
  EXPECT_FALSE(a.get("quiet", false));
  EXPECT_TRUE(a.get("quiet", true));
}

TEST(Args, ExplicitBooleanValues) {
  EXPECT_TRUE(parse({"p", "--x=true"}).get("x", false));
  EXPECT_TRUE(parse({"p", "--x=1"}).get("x", false));
  EXPECT_FALSE(parse({"p", "--x=false"}).get("x", true));
  EXPECT_FALSE(parse({"p", "--x=0"}).get("x", true));
}

TEST(Args, PositionalArguments) {
  const Args a = parse({"prog", "input.csv", "--n", "5", "out.csv"});
  ASSERT_EQ(a.positional().size(), 2u);
  EXPECT_EQ(a.positional()[0], "input.csv");
  EXPECT_EQ(a.positional()[1], "out.csv");
  EXPECT_EQ(a.get("n", static_cast<std::size_t>(0)), 5u);
}

TEST(Args, FlagFollowedByFlagIsBoolean) {
  const Args a = parse({"prog", "--fast", "--n", "3"});
  EXPECT_TRUE(a.get("fast", false));
  EXPECT_EQ(a.get("n", static_cast<long long>(0)), 3);
}

TEST(Args, StringDefaults) {
  const Args a = parse({"prog", "--mode=quantum"});
  EXPECT_EQ(a.get("mode", std::string("classical")), "quantum");
  EXPECT_EQ(a.get("policy", std::string("paper")), "paper");
}

TEST(Args, DoubleDefaults) {
  const Args a = parse({"prog"});
  EXPECT_DOUBLE_EQ(a.get("rate", 2.5), 2.5);
}

TEST(Args, LastOccurrenceWins) {
  const Args a = parse({"prog", "--n=1", "--n=2"});
  EXPECT_EQ(a.get("n", static_cast<long long>(0)), 2);
}

TEST(Args, BareDoubleDashDies) {
  EXPECT_DEATH(parse({"prog", "--"}), "not a valid flag");
}

TEST(IsValueToken, ClassifiesTokens) {
  EXPECT_TRUE(is_value_token("86"));
  EXPECT_TRUE(is_value_token("input.csv"));
  EXPECT_TRUE(is_value_token(""));
  EXPECT_TRUE(is_value_token("-"));  // stdin convention
  EXPECT_TRUE(is_value_token("-5"));
  EXPECT_TRUE(is_value_token("-0.25"));
  EXPECT_TRUE(is_value_token("-1e-3"));
  EXPECT_FALSE(is_value_token("-v"));
  EXPECT_FALSE(is_value_token("-abc"));
  EXPECT_FALSE(is_value_token("--flag"));
  EXPECT_FALSE(is_value_token("--seed"));
  EXPECT_FALSE(is_value_token("--"));
}

TEST(Args, NegativeNumberAsSeparateValue) {
  const Args a = parse({"prog", "--offset", "-5"});
  EXPECT_EQ(a.get("offset", static_cast<long long>(0)), -5);
  EXPECT_TRUE(a.positional().empty());
}

TEST(Args, NegativeDoubleAsSeparateValue) {
  const Args a = parse({"prog", "--bias", "-0.25", "--rate", "-1e-3"});
  EXPECT_DOUBLE_EQ(a.get("bias", 0.0), -0.25);
  EXPECT_DOUBLE_EQ(a.get("rate", 0.0), -1e-3);
}

TEST(Args, DashTokenIsNotSwallowedAsValue) {
  // "-v" is flag-shaped, not a number: --fast stays boolean and "-v"
  // becomes positional instead of being consumed as the value.
  const Args a = parse({"prog", "--fast", "-v"});
  EXPECT_TRUE(a.get("fast", false));
  ASSERT_EQ(a.positional().size(), 1u);
  EXPECT_EQ(a.positional()[0], "-v");
}

TEST(ParseDouble, StrictFullToken) {
  EXPECT_EQ(parse_double("0.85"), 0.85);
  EXPECT_EQ(parse_double("-1e-3"), -1e-3);
  EXPECT_EQ(parse_double("  1.5"), 1.5);  // strtod skips leading blanks
  EXPECT_FALSE(parse_double("bogus").has_value());
  EXPECT_FALSE(parse_double("1e5x").has_value());   // trailing junk
  EXPECT_FALSE(parse_double("1.5 ").has_value());   // trailing blank
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_FALSE(parse_double("1e999").has_value());  // overflow to inf
}

TEST(ParseLongLong, StrictFullToken) {
  EXPECT_EQ(parse_long_long("86"), 86);
  EXPECT_EQ(parse_long_long("-5"), -5);
  EXPECT_FALSE(parse_long_long("bogus").has_value());
  EXPECT_FALSE(parse_long_long("12abc").has_value());
  EXPECT_FALSE(parse_long_long("1.5").has_value());  // not an integer
  EXPECT_FALSE(parse_long_long("").has_value());
  // Out of range must fail, not silently saturate to LLONG_MAX/MIN.
  EXPECT_FALSE(parse_long_long("99999999999999999999").has_value());
  EXPECT_FALSE(parse_long_long("-99999999999999999999").has_value());
}

TEST(Args, GarbageDoubleValueDies) {
  // `--rate bogus` used to silently parse as 0.0 via strtod(nullptr).
  EXPECT_DEATH((void)parse({"prog", "--rate", "bogus"}).get("rate", 1.0),
               "invalid value for flag --rate");
  // `--rate 1e5x` used to silently truncate to 1e5.
  EXPECT_DEATH((void)parse({"prog", "--rate=1e5x"}).get("rate", 1.0),
               "invalid value for flag --rate");
}

TEST(Args, GarbageIntegerValueDies) {
  EXPECT_DEATH(
      (void)parse({"prog", "--n", "12abc"}).get("n", static_cast<long long>(0)),
      "invalid value for flag --n");
  EXPECT_DEATH((void)parse({"prog", "--n=99999999999999999999"})
                   .get("n", static_cast<long long>(0)),
               "invalid value for flag --n");
}

TEST(Args, NegativeSizeValueDies) {
  // `--servers -5` used to wrap to ~1.8e19 through the long-long cast.
  EXPECT_DEATH((void)parse({"prog", "--servers", "-5"})
                   .get("servers", static_cast<std::size_t>(4)),
               "non-negative");
  EXPECT_DEATH((void)parse({"prog", "--servers=bogus"})
                   .get("servers", static_cast<std::size_t>(4)),
               "invalid value for flag --servers");
}

TEST(Args, ValidValuesStillParseAfterHardening) {
  const Args a = parse({"prog", "--rate", "2.5e4", "--servers", "86"});
  EXPECT_DOUBLE_EQ(a.get("rate", 0.0), 2.5e4);
  EXPECT_EQ(a.get("servers", static_cast<std::size_t>(0)), 86u);
}

TEST(Args, NegativeNumberPositional) {
  const Args a = parse({"prog", "-5", "file.csv"});
  ASSERT_EQ(a.positional().size(), 2u);
  EXPECT_EQ(a.positional()[0], "-5");
  EXPECT_EQ(a.positional()[1], "file.csv");
}

}  // namespace
}  // namespace ftl::util

// In-process integration tests for the ftlcoordd daemon: real sockets on
// ephemeral loopback ports, the real LiveBroker behind them, and the real
// loadgen as the client. The CI smoke job exercises the same path across
// process boundaries; this suite keeps it debuggable under one address
// space (and one sanitizer run).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "ftlcoordd/daemon.hpp"
#include "ftlcoordd/loadgen.hpp"
#include "ftlcoordd/net.hpp"
#include "ftlcoordd/protocol.hpp"

namespace ftl::coordd {
namespace {

DaemonConfig test_config() {
  DaemonConfig cfg;
  cfg.port = 0;          // ephemeral
  cfg.metrics_port = 0;  // ephemeral
  cfg.seed = 42;
  cfg.broker.sources = 2;
  cfg.broker.qnet.pair_rate_hz = 5e5;
  cfg.broker.qnet.fiber_km = 0.0;
  return cfg;
}

TEST(Ftlcoordd, StartServeStop) {
  Daemon daemon(test_config());
  ASSERT_TRUE(daemon.start());
  ASSERT_TRUE(daemon.running());
  ASSERT_GT(daemon.port(), 0);
  ASSERT_GT(daemon.metrics_port(), 0);

  LoadgenConfig lg;
  lg.port = daemon.port();
  lg.threads = 2;
  lg.sources = 2;
  lg.batch = 256;
  lg.decisions = 100000;
  std::ostringstream log;
  const LoadgenResult result = run_loadgen(lg, log);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_GE(result.decisions_ok, lg.decisions);
  EXPECT_EQ(result.decisions_ok,
            result.server_stats.hits + result.server_stats.fallbacks);
  // The decide responses and the daemon's own counters must agree.
  EXPECT_EQ(result.decisions_ok, result.server_stats.requests);
  EXPECT_EQ(result.rounds_won, result.server_stats.rounds_won);
  EXPECT_EQ(result.quantum, result.server_stats.hits);

  daemon.stop();
  EXPECT_FALSE(daemon.running());
}

TEST(Ftlcoordd, StopIsIdempotentAndRestartable) {
  Daemon daemon(test_config());
  ASSERT_TRUE(daemon.start());
  daemon.stop();
  daemon.stop();
  ASSERT_TRUE(daemon.start());
  EXPECT_TRUE(daemon.running());
  daemon.stop();
}

TEST(Ftlcoordd, MalformedFramesGetStatusNotDisconnect) {
  Daemon daemon(test_config());
  ASSERT_TRUE(daemon.start());
  const int fd = connect_tcp("127.0.0.1", daemon.port());
  ASSERT_GE(fd, 0);

  std::vector<std::uint8_t> payload;
  // Unknown message type.
  ASSERT_TRUE(write_frame(fd, {0x7f}));
  ASSERT_TRUE(read_frame(fd, payload));
  EXPECT_EQ(static_cast<Status>(payload.at(0)), Status::kMalformed);

  // Truncated decide body.
  ASSERT_TRUE(write_frame(
      fd, {static_cast<std::uint8_t>(MsgType::kDecide), 0x00, 0x00}));
  ASSERT_TRUE(read_frame(fd, payload));
  EXPECT_EQ(static_cast<Status>(payload.at(0)), Status::kMalformed);

  // Out-of-range source index.
  DecideRequest req;
  req.source = 99;
  req.inputs = {0, 1};
  ASSERT_TRUE(write_frame(fd, encode_decide_request(req)));
  ASSERT_TRUE(read_frame(fd, payload));
  EXPECT_EQ(static_cast<Status>(payload.at(0)), Status::kMalformed);

  // The connection must still serve a valid request afterwards.
  req.source = 0;
  ASSERT_TRUE(write_frame(fd, encode_decide_request(req)));
  ASSERT_TRUE(read_frame(fd, payload));
  const auto entries = decode_decide_response(payload);
  ASSERT_TRUE(entries.has_value());
  EXPECT_EQ(entries->size(), 2u);

  close_fd(fd);
  daemon.stop();
}

TEST(Ftlcoordd, OversizedBatchIsRejectedByAdmission) {
  DaemonConfig cfg = test_config();
  cfg.broker.max_pending = 16;
  Daemon daemon(cfg);
  ASSERT_TRUE(daemon.start());
  const int fd = connect_tcp("127.0.0.1", daemon.port());
  ASSERT_GE(fd, 0);

  DecideRequest req;
  req.source = 0;
  req.inputs.assign(64, 0);  // 64 > max_pending
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(write_frame(fd, encode_decide_request(req)));
  ASSERT_TRUE(read_frame(fd, payload));
  Status status = Status::kOk;
  EXPECT_FALSE(decode_decide_response(payload, &status).has_value());
  EXPECT_EQ(status, Status::kRejected);
  EXPECT_EQ(daemon.broker().stats().rejected, 64u);

  close_fd(fd);
  daemon.stop();
}

TEST(Ftlcoordd, MetricsPortServesPrometheusText) {
  Daemon daemon(test_config());
  ASSERT_TRUE(daemon.start());

  // Drive a little traffic so the scrape has non-zero counters.
  const int dfd = connect_tcp("127.0.0.1", daemon.port());
  ASSERT_GE(dfd, 0);
  DecideRequest req;
  req.source = 0;
  req.inputs.assign(32, 1);
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(write_frame(dfd, encode_decide_request(req)));
  ASSERT_TRUE(read_frame(dfd, payload));
  close_fd(dfd);

  const int fd = connect_tcp("127.0.0.1", daemon.metrics_port());
  ASSERT_GE(fd, 0);
  const std::string get = "GET /metrics HTTP/1.0\r\n\r\n";
  ASSERT_TRUE(write_full(fd, get.data(), get.size()));
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t got = ::read(fd, buf, sizeof buf);
    if (got <= 0) break;
    response.append(buf, static_cast<std::size_t>(got));
  }
  close_fd(fd);
  daemon.stop();

  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(response.find("# TYPE ftl_qnet_live_requests_total counter"),
            std::string::npos);
  EXPECT_NE(response.find("ftl_qnet_live_requests_total"), std::string::npos);
}

TEST(Ftlcoordd, ReportFramesAreCountedAndAcked) {
  Daemon daemon(test_config());
  ASSERT_TRUE(daemon.start());
  const int fd = connect_tcp("127.0.0.1", daemon.port());
  ASSERT_GE(fd, 0);

  ReportRequest rep;
  rep.source = 1;
  rep.wins = 30;
  rep.losses = 10;
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(write_frame(fd, encode_report_request(rep)));
  ASSERT_TRUE(read_frame(fd, payload));
  EXPECT_EQ(static_cast<Status>(payload.at(0)), Status::kOk);

  close_fd(fd);
  daemon.stop();
}

}  // namespace
}  // namespace ftl::coordd

// In-process integration tests for the ftlcoordd daemon: real sockets on
// ephemeral loopback ports, the real LiveBroker behind them, and the real
// loadgen as the client. The CI smoke job exercises the same path across
// process boundaries; this suite keeps it debuggable under one address
// space (and one sanitizer run).
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ftlcoordd/daemon.hpp"
#include "ftlcoordd/loadgen.hpp"
#include "ftlcoordd/net.hpp"
#include "ftlcoordd/protocol.hpp"
#include "obs/json.hpp"
#include "obs/profiler.hpp"
#include "obs/spanctx.hpp"
#include "obs/trace.hpp"

namespace ftl::coordd {
namespace {

DaemonConfig test_config() {
  DaemonConfig cfg;
  cfg.port = 0;          // ephemeral
  cfg.metrics_port = 0;  // ephemeral
  cfg.seed = 42;
  cfg.broker.sources = 2;
  cfg.broker.qnet.pair_rate_hz = 5e5;
  cfg.broker.qnet.fiber_km = 0.0;
  return cfg;
}

TEST(Ftlcoordd, StartServeStop) {
  Daemon daemon(test_config());
  ASSERT_TRUE(daemon.start());
  ASSERT_TRUE(daemon.running());
  ASSERT_GT(daemon.port(), 0);
  ASSERT_GT(daemon.metrics_port(), 0);

  LoadgenConfig lg;
  lg.port = daemon.port();
  lg.threads = 2;
  lg.sources = 2;
  lg.batch = 256;
  lg.decisions = 100000;
  std::ostringstream log;
  const LoadgenResult result = run_loadgen(lg, log);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_GE(result.decisions_ok, lg.decisions);
  EXPECT_EQ(result.decisions_ok,
            result.server_stats.hits + result.server_stats.fallbacks);
  // The decide responses and the daemon's own counters must agree.
  EXPECT_EQ(result.decisions_ok, result.server_stats.requests);
  EXPECT_EQ(result.rounds_won, result.server_stats.rounds_won);
  EXPECT_EQ(result.quantum, result.server_stats.hits);

  daemon.stop();
  EXPECT_FALSE(daemon.running());
}

TEST(Ftlcoordd, StopIsIdempotentAndRestartable) {
  Daemon daemon(test_config());
  ASSERT_TRUE(daemon.start());
  daemon.stop();
  daemon.stop();
  ASSERT_TRUE(daemon.start());
  EXPECT_TRUE(daemon.running());
  daemon.stop();
}

TEST(Ftlcoordd, MalformedFramesGetStatusNotDisconnect) {
  Daemon daemon(test_config());
  ASSERT_TRUE(daemon.start());
  const int fd = connect_tcp("127.0.0.1", daemon.port());
  ASSERT_GE(fd, 0);

  std::vector<std::uint8_t> payload;
  // Unknown message type.
  ASSERT_TRUE(write_frame(fd, {0x7f}));
  ASSERT_TRUE(read_frame(fd, payload));
  EXPECT_EQ(static_cast<Status>(payload.at(0)), Status::kMalformed);

  // Truncated decide body.
  ASSERT_TRUE(write_frame(
      fd, {static_cast<std::uint8_t>(MsgType::kDecide), 0x00, 0x00}));
  ASSERT_TRUE(read_frame(fd, payload));
  EXPECT_EQ(static_cast<Status>(payload.at(0)), Status::kMalformed);

  // Out-of-range source index.
  DecideRequest req;
  req.source = 99;
  req.inputs = {0, 1};
  ASSERT_TRUE(write_frame(fd, encode_decide_request(req)));
  ASSERT_TRUE(read_frame(fd, payload));
  EXPECT_EQ(static_cast<Status>(payload.at(0)), Status::kMalformed);

  // The connection must still serve a valid request afterwards.
  req.source = 0;
  ASSERT_TRUE(write_frame(fd, encode_decide_request(req)));
  ASSERT_TRUE(read_frame(fd, payload));
  const auto entries = decode_decide_response(payload);
  ASSERT_TRUE(entries.has_value());
  EXPECT_EQ(entries->size(), 2u);

  close_fd(fd);
  daemon.stop();
}

TEST(Ftlcoordd, OversizedBatchIsRejectedByAdmission) {
  DaemonConfig cfg = test_config();
  cfg.broker.max_pending = 16;
  Daemon daemon(cfg);
  ASSERT_TRUE(daemon.start());
  const int fd = connect_tcp("127.0.0.1", daemon.port());
  ASSERT_GE(fd, 0);

  DecideRequest req;
  req.source = 0;
  req.inputs.assign(64, 0);  // 64 > max_pending
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(write_frame(fd, encode_decide_request(req)));
  ASSERT_TRUE(read_frame(fd, payload));
  Status status = Status::kOk;
  EXPECT_FALSE(decode_decide_response(payload, &status).has_value());
  EXPECT_EQ(status, Status::kRejected);
  EXPECT_EQ(daemon.broker().stats().rejected, 64u);

  close_fd(fd);
  daemon.stop();
}

TEST(Ftlcoordd, MetricsPortServesPrometheusText) {
  Daemon daemon(test_config());
  ASSERT_TRUE(daemon.start());

  // Drive a little traffic so the scrape has non-zero counters.
  const int dfd = connect_tcp("127.0.0.1", daemon.port());
  ASSERT_GE(dfd, 0);
  DecideRequest req;
  req.source = 0;
  req.inputs.assign(32, 1);
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(write_frame(dfd, encode_decide_request(req)));
  ASSERT_TRUE(read_frame(dfd, payload));
  close_fd(dfd);

  const int fd = connect_tcp("127.0.0.1", daemon.metrics_port());
  ASSERT_GE(fd, 0);
  const std::string get = "GET /metrics HTTP/1.0\r\n\r\n";
  ASSERT_TRUE(write_full(fd, get.data(), get.size()));
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t got = ::read(fd, buf, sizeof buf);
    if (got <= 0) break;
    response.append(buf, static_cast<std::size_t>(got));
  }
  close_fd(fd);
  daemon.stop();

  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  // Under obs-OFF the registry is empty, so the scrape is a valid but
  // bodyless exposition; the metric families only exist with obs on.
  if (ftl::obs::kEnabled) {
    EXPECT_NE(response.find("# HELP ftl_qnet_live_requests_total"),
              std::string::npos);
    EXPECT_NE(response.find("# TYPE ftl_qnet_live_requests_total counter"),
              std::string::npos);
    EXPECT_NE(response.find("ftl_qnet_live_requests_total"),
              std::string::npos);
  }
}

/// One HTTP exchange against the daemon's metrics port: write the request,
/// read to EOF (the server closes after one response).
std::string http_request(std::uint16_t port, const std::string& request) {
  const int fd = connect_tcp("127.0.0.1", port);
  EXPECT_GE(fd, 0);
  if (fd < 0) return {};
  EXPECT_TRUE(write_full(fd, request.data(), request.size()));
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t got = ::read(fd, buf, sizeof buf);
    if (got <= 0) break;
    response.append(buf, static_cast<std::size_t>(got));
  }
  close_fd(fd);
  return response;
}

/// Parsed Content-Length header value, or -1 when absent.
long content_length_of(const std::string& response) {
  const std::size_t pos = response.find("Content-Length: ");
  if (pos == std::string::npos) return -1;
  return std::strtol(response.c_str() + pos + 16, nullptr, 10);
}

TEST(FtlcoorddHttp, UnknownPathIs404) {
  Daemon daemon(test_config());
  ASSERT_TRUE(daemon.start());
  const std::string response = http_request(
      daemon.metrics_port(), "GET /nope HTTP/1.0\r\n\r\n");
  daemon.stop();
  EXPECT_NE(response.find("HTTP/1.0 404 Not Found"), std::string::npos);
  EXPECT_NE(response.find("unknown path"), std::string::npos);
}

TEST(FtlcoorddHttp, MalformedRequestLineIs400) {
  Daemon daemon(test_config());
  ASSERT_TRUE(daemon.start());
  const std::string garbage =
      http_request(daemon.metrics_port(), "\x01\x02not-http\r\n\r\n");
  const std::string relative =
      http_request(daemon.metrics_port(), "GET metrics HTTP/1.0\r\n\r\n");
  daemon.stop();
  EXPECT_NE(garbage.find("HTTP/1.0 400 Bad Request"), std::string::npos);
  EXPECT_NE(relative.find("HTTP/1.0 400 Bad Request"), std::string::npos);
}

TEST(FtlcoorddHttp, NonGetMethodsAre405) {
  Daemon daemon(test_config());
  ASSERT_TRUE(daemon.start());
  const std::string post = http_request(
      daemon.metrics_port(),
      "POST /metrics HTTP/1.0\r\nContent-Length: 0\r\n\r\n");
  const std::string head_profile = http_request(
      daemon.metrics_port(), "HEAD /profile HTTP/1.0\r\n\r\n");
  daemon.stop();
  EXPECT_NE(post.find("HTTP/1.0 405 Method Not Allowed"), std::string::npos);
  EXPECT_NE(head_profile.find("HTTP/1.0 405 Method Not Allowed"),
            std::string::npos);
}

TEST(FtlcoorddHttp, HeadMetricsHasContentLengthAndNoBody) {
  Daemon daemon(test_config());
  ASSERT_TRUE(daemon.start());
  const std::string get =
      http_request(daemon.metrics_port(), "GET /metrics HTTP/1.0\r\n\r\n");
  const std::string head =
      http_request(daemon.metrics_port(), "HEAD /metrics HTTP/1.0\r\n\r\n");
  daemon.stop();

  // GET: the advertised Content-Length matches the body actually sent.
  ASSERT_NE(get.find("HTTP/1.0 200 OK"), std::string::npos);
  const std::size_t get_body = get.find("\r\n\r\n");
  ASSERT_NE(get_body, std::string::npos);
  EXPECT_EQ(content_length_of(get),
            static_cast<long>(get.size() - (get_body + 4)));

  // HEAD: same headers (the would-be body length — nonzero whenever the
  // registry is live; obs-OFF snapshots are empty), zero body bytes.
  ASSERT_NE(head.find("HTTP/1.0 200 OK"), std::string::npos);
  if (obs::kEnabled) {
    EXPECT_GT(content_length_of(head), 0);
  } else {
    EXPECT_EQ(content_length_of(head), 0);
  }
  const std::size_t head_body = head.find("\r\n\r\n");
  ASSERT_NE(head_body, std::string::npos);
  EXPECT_EQ(head.size(), head_body + 4);
}

#if FTL_OBS_ENABLED
TEST(FtlcoorddHttp, ProfileEndpointReturnsFoldedStacks) {
  Daemon daemon(test_config());
  ASSERT_TRUE(daemon.start());

  // Hammer the decide path from a client thread while the profile runs, so
  // the process is actually burning CPU (the profiler samples on process
  // CPU time, not wall time).
  std::atomic<bool> stop_client{false};
  std::thread client([&] {
    const int fd = connect_tcp("127.0.0.1", daemon.port());
    if (fd < 0) return;
    DecideRequest req;
    req.source = 0;
    req.inputs.assign(256, 1);
    std::vector<std::uint8_t> payload;
    while (!stop_client.load()) {
      if (!write_frame(fd, encode_decide_request(req))) break;
      if (!read_frame(fd, payload)) break;
    }
    close_fd(fd);
  });

  const std::string response = http_request(
      daemon.metrics_port(), "GET /profile?seconds=1&hz=997 HTTP/1.0\r\n\r\n");
  stop_client.store(true);
  client.join();
  daemon.stop();

  ASSERT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos) << response;
  const std::size_t body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const std::string body = response.substr(body_at + 4);
  ASSERT_FALSE(body.empty());
  // Every line is `<stack> <count>` — the FlameGraph folded grammar.
  std::istringstream lines(body);
  std::string line;
  std::size_t n_lines = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    ++n_lines;
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    EXPECT_GT(std::strtoul(line.c_str() + sp + 1, nullptr, 10), 0u) << line;
  }
  EXPECT_GT(n_lines, 0u);
}

TEST(FtlcoorddHttp, ConcurrentProfileSessionsConflict) {
  Daemon daemon(test_config());
  ASSERT_TRUE(daemon.start());
  // Arm the process-wide profiler directly: the daemon's /profile must
  // refuse to stack a second session on top of it.
  ASSERT_TRUE(obs::real::profiler().start({}));
  const std::string response = http_request(
      daemon.metrics_port(), "GET /profile?seconds=1 HTTP/1.0\r\n\r\n");
  obs::real::profiler().stop();
  daemon.stop();
  EXPECT_NE(response.find("HTTP/1.0 409 Conflict"), std::string::npos);
  EXPECT_NE(response.find("already running"), std::string::npos);
}
#else
TEST(FtlcoorddHttp, ProfileEndpointIs501UnderObsOff) {
  Daemon daemon(test_config());
  ASSERT_TRUE(daemon.start());
  const std::string response = http_request(
      daemon.metrics_port(), "GET /profile?seconds=1 HTTP/1.0\r\n\r\n");
  daemon.stop();
  EXPECT_NE(response.find("HTTP/1.0 501 Not Implemented"), std::string::npos);
}
#endif  // FTL_OBS_ENABLED

std::uint64_t now_steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

TEST(Ftlcoordd, DecideV2RoundTripWithGenerousDeadline) {
  Daemon daemon(test_config());
  ASSERT_TRUE(daemon.start());
  const int fd = connect_tcp("127.0.0.1", daemon.port());
  ASSERT_GE(fd, 0);

  DecideRequestV2 req;
  req.source = 0;
  req.trace_id = 0;  // unsampled: context rides the frame, no spans
  req.client_send_steady_ns = now_steady_ns();
  req.deadline_us = 10'000'000;  // 10 s: nothing on loopback misses this
  req.inputs = {0, 1, 1, 0};
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(write_frame(fd, encode_decide_request_v2(req)));
  ASSERT_TRUE(read_frame(fd, payload));
  const auto entries = decode_decide_response(payload);
  ASSERT_TRUE(entries.has_value());
  ASSERT_EQ(entries->size(), req.inputs.size());
  for (const DecisionEntry& e : *entries) {
    EXPECT_EQ(e.flags & DecisionEntry::kDeadlineMissBit, 0);
  }

  close_fd(fd);
  daemon.stop();
}

TEST(Ftlcoordd, DecideV2StaleTimestampSetsDeadlineMissBit) {
  Daemon daemon(test_config());
  ASSERT_TRUE(daemon.start());
  const int fd = connect_tcp("127.0.0.1", daemon.port());
  ASSERT_GE(fd, 0);

  // A batch "sent" 10 ms ago with a 1 us budget has blown the deadline
  // before the daemon even reads it: every entry must carry the miss bit,
  // and the miss must be attributed to the earliest stage boundary.
  DecideRequestV2 req;
  req.source = 1;
  req.client_send_steady_ns = now_steady_ns() - 10'000'000u;
  req.deadline_us = 1;
  req.inputs.assign(8, 1);
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(write_frame(fd, encode_decide_request_v2(req)));
  ASSERT_TRUE(read_frame(fd, payload));
  const auto entries = decode_decide_response(payload);
  ASSERT_TRUE(entries.has_value());
  ASSERT_EQ(entries->size(), 8u);
  for (const DecisionEntry& e : *entries) {
    EXPECT_NE(e.flags & DecisionEntry::kDeadlineMissBit, 0);
  }

  close_fd(fd);
  daemon.stop();
}

TEST(Ftlcoordd, V1AndV2FramesInterleaveOnOneConnection) {
  Daemon daemon(test_config());
  ASSERT_TRUE(daemon.start());
  const int fd = connect_tcp("127.0.0.1", daemon.port());
  ASSERT_GE(fd, 0);

  std::vector<std::uint8_t> payload;
  // Old client first: the v1 frame must keep working against the new
  // daemon, byte for byte.
  DecideRequest v1;
  v1.source = 0;
  v1.inputs = {1, 0, 1};
  ASSERT_TRUE(write_frame(fd, encode_decide_request(v1)));
  ASSERT_TRUE(read_frame(fd, payload));
  const auto v1_entries = decode_decide_response(payload);
  ASSERT_TRUE(v1_entries.has_value());
  EXPECT_EQ(v1_entries->size(), 3u);
  for (const DecisionEntry& e : *v1_entries) {
    // v1 has no deadline, so the v2-only bit can never be set.
    EXPECT_EQ(e.flags & DecisionEntry::kDeadlineMissBit, 0);
  }

  DecideRequestV2 v2;
  v2.source = 0;
  v2.client_send_steady_ns = now_steady_ns();
  v2.deadline_us = 10'000'000;
  v2.inputs = {0, 1};
  ASSERT_TRUE(write_frame(fd, encode_decide_request_v2(v2)));
  ASSERT_TRUE(read_frame(fd, payload));
  EXPECT_EQ(decode_decide_response(payload)->size(), 2u);

  // And back to v1 on the same connection.
  ASSERT_TRUE(write_frame(fd, encode_decide_request(v1)));
  ASSERT_TRUE(read_frame(fd, payload));
  EXPECT_EQ(decode_decide_response(payload)->size(), 3u);

  close_fd(fd);
  daemon.stop();
}

TEST(Ftlcoordd, TruncatedV2FrameIsMalformedNotFatal) {
  Daemon daemon(test_config());
  ASSERT_TRUE(daemon.start());
  const int fd = connect_tcp("127.0.0.1", daemon.port());
  ASSERT_GE(fd, 0);

  // Type byte + source, then nothing: the v2 header needs 32 more bytes.
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(write_frame(fd, {static_cast<std::uint8_t>(MsgType::kDecideV2),
                               0x00, 0x00, 0x00, 0x00}));
  ASSERT_TRUE(read_frame(fd, payload));
  EXPECT_EQ(static_cast<Status>(payload.at(0)), Status::kMalformed);

  // The connection survives and serves a well-formed v2 frame.
  DecideRequestV2 req;
  req.source = 0;
  req.inputs = {1};
  ASSERT_TRUE(write_frame(fd, encode_decide_request_v2(req)));
  ASSERT_TRUE(read_frame(fd, payload));
  EXPECT_EQ(decode_decide_response(payload)->size(), 1u);

  close_fd(fd);
  daemon.stop();
}

#if FTL_OBS_ENABLED
TEST(Ftlcoordd, SampledV2BatchRecordsParentedServerSpans) {
  // In-process daemon and test share the global tracer, so the spans a
  // sampled v2 batch produces are directly inspectable.
  auto& tracer = obs::real::tracer();
  tracer.start();
  Daemon daemon(test_config());  // trace_sample_n defaults to 1
  ASSERT_TRUE(daemon.start());
  const int fd = connect_tcp("127.0.0.1", daemon.port());
  ASSERT_GE(fd, 0);

  const obs::TraceContext ctx = obs::TraceContext::derive(42, 0, 0);
  DecideRequestV2 req;
  req.source = 0;
  req.trace_id = ctx.trace_id;
  req.parent_span_id = ctx.span_id;
  req.client_send_steady_ns = now_steady_ns();
  req.deadline_us = 10'000'000;
  req.inputs = {0, 1, 1};
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(write_frame(fd, encode_decide_request_v2(req)));
  ASSERT_TRUE(read_frame(fd, payload));
  ASSERT_TRUE(decode_decide_response(payload).has_value());

  close_fd(fd);
  daemon.stop();
  tracer.stop();

  const auto doc = obs::json::parse(tracer.json());
  ASSERT_TRUE(doc.has_value());
  const obs::json::Value* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  const std::string want_trace = obs::trace_id_hex(ctx.trace_id);
  const obs::TraceContext root = ctx.child(0);
  std::set<std::string> names;
  bool serve_batch_parented_to_client = false;
  for (const obs::json::Value& e : events->array) {
    const obs::json::Value* args = e.find("args");
    if (args == nullptr || args->find("trace_id") == nullptr) continue;
    if (args->find("trace_id")->string != want_trace) continue;
    const std::string name = e.find("name")->string;
    names.insert(name);
    if (name == "serve_batch") {
      serve_batch_parented_to_client =
          obs::parse_trace_id_hex(args->find("parent_span_id")->string) ==
          ctx.span_id;
    } else if (args->find("parent_span_id") != nullptr && name != "serve_batch") {
      // Every stage span hangs off the server root span.
      EXPECT_EQ(obs::parse_trace_id_hex(args->find("parent_span_id")->string),
                root.span_id)
          << name;
    }
  }
  EXPECT_TRUE(serve_batch_parented_to_client);
  for (const char* stage : {"serve_batch", "socket_read", "admission",
                            "pair_acquire", "decide", "reply_write"}) {
    EXPECT_TRUE(names.count(stage) == 1) << stage;
  }
}
#endif  // FTL_OBS_ENABLED

TEST(Ftlcoordd, ReportFramesAreCountedAndAcked) {
  Daemon daemon(test_config());
  ASSERT_TRUE(daemon.start());
  const int fd = connect_tcp("127.0.0.1", daemon.port());
  ASSERT_GE(fd, 0);

  ReportRequest rep;
  rep.source = 1;
  rep.wins = 30;
  rep.losses = 10;
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(write_frame(fd, encode_report_request(rep)));
  ASSERT_TRUE(read_frame(fd, payload));
  EXPECT_EQ(static_cast<Status>(payload.at(0)), Status::kOk);

  close_fd(fd);
  daemon.stop();
}

}  // namespace
}  // namespace ftl::coordd

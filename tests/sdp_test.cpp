#include "sdp/tsirelson.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ftl::sdp {
namespace {

constexpr double kInvSqrt2 = 0.70710678118654752;

TEST(MaxGram, SingleElementIsTrivial) {
  SymMatrix c(1);
  c.at(0, 0) = 5.0;  // diagonal is excluded from the objective
  const GramResult r = max_gram(c);
  EXPECT_NEAR(r.value, 0.0, 1e-12);
}

TEST(MaxGram, TwoVectorsAlign) {
  // max 2 * C01 <r0, r1> = 2 * 3 when the unit vectors align.
  SymMatrix c(2);
  c.at(0, 1) = 3.0;
  c.at(1, 0) = 3.0;
  const GramResult r = max_gram(c);
  EXPECT_NEAR(r.value, 6.0, 1e-9);
  EXPECT_TRUE(r.converged);
}

TEST(MaxGram, TwoVectorsAntiAlign) {
  SymMatrix c(2);
  c.at(0, 1) = -2.0;
  c.at(1, 0) = -2.0;
  const GramResult r = max_gram(c);
  EXPECT_NEAR(r.value, 4.0, 1e-9);
}

TEST(MaxGram, TriangleFrustration) {
  // Three mutually repelling unit vectors (C_ij = -1): the optimum is the
  // Mercedes configuration at 120 degrees, value 2 * 3 * (1/2) = 3.
  SymMatrix c(3);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      if (i != j) c.at(i, j) = -1.0;
    }
  }
  const GramResult r = max_gram(c);
  EXPECT_NEAR(r.value, 3.0, 1e-7);
}

TEST(MaxGram, RowsAreUnitNorm) {
  SymMatrix c(4);
  c.at(0, 1) = 1.0;
  c.at(1, 0) = 1.0;
  c.at(2, 3) = -0.5;
  c.at(3, 2) = -0.5;
  const GramResult r = max_gram(c);
  for (const auto& row : r.rows) {
    double n2 = 0.0;
    for (double x : row) n2 += x * x;
    EXPECT_NEAR(n2, 1.0, 1e-9);
  }
}

TEST(MaxGram, DeterministicForFixedSeed) {
  SymMatrix c(3);
  c.at(0, 1) = 1.0;
  c.at(1, 0) = 1.0;
  c.at(1, 2) = -0.7;
  c.at(2, 1) = -0.7;
  GramOptions opts;
  opts.seed = 99;
  const GramResult r1 = max_gram(c, opts);
  const GramResult r2 = max_gram(c, opts);
  EXPECT_DOUBLE_EQ(r1.value, r2.value);
}

TEST(XorBias, ChshIsOneOverSqrt2) {
  // CHSH cost matrix: pi = 1/4 each, sign +1 except (1,1).
  std::vector<std::vector<double>> m{{0.25, 0.25}, {0.25, -0.25}};
  const XorBiasResult r = xor_quantum_bias(m);
  EXPECT_NEAR(r.bias, kInvSqrt2, 1e-7);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.alice.size(), 2u);
  EXPECT_EQ(r.bob.size(), 2u);
}

TEST(XorBias, FlippedChshSameBias) {
  std::vector<std::vector<double>> m{{-0.25, -0.25}, {-0.25, 0.25}};
  EXPECT_NEAR(xor_quantum_bias(m).bias, kInvSqrt2, 1e-7);
}

TEST(XorBias, TrivialGameHasBiasOne) {
  // f == 0 everywhere: always agree; quantum bias = classical = 1.
  std::vector<std::vector<double>> m{{0.5, 0.0}, {0.0, 0.5}};
  EXPECT_NEAR(xor_quantum_bias(m).bias, 1.0, 1e-8);
}

TEST(XorBias, AntiCorrelationGame) {
  // f == 1 everywhere: always disagree; also achievable exactly.
  std::vector<std::vector<double>> m{{-0.5, -0.5}};
  EXPECT_NEAR(xor_quantum_bias(m).bias, 1.0, 1e-8);
}

TEST(XorBias, ScalesLinearlyWithCosts) {
  std::vector<std::vector<double>> m{{0.25, 0.25}, {0.25, -0.25}};
  std::vector<std::vector<double>> m2 = m;
  for (auto& row : m2) {
    for (double& v : row) v *= 2.0;
  }
  EXPECT_NEAR(xor_quantum_bias(m2).bias, 2.0 * xor_quantum_bias(m).bias,
              1e-7);
}

TEST(XorBias, VectorsRealiseTheBias) {
  std::vector<std::vector<double>> m{{0.25, 0.25}, {0.25, -0.25}};
  const XorBiasResult r = xor_quantum_bias(m);
  double check = 0.0;
  for (std::size_t x = 0; x < 2; ++x) {
    for (std::size_t y = 0; y < 2; ++y) {
      double dot = 0.0;
      for (std::size_t k = 0; k < r.alice[x].size(); ++k) {
        dot += r.alice[x][k] * r.bob[y][k];
      }
      check += m[x][y] * dot;
    }
  }
  EXPECT_NEAR(check, r.bias, 1e-9);
}

TEST(XorBias, RectangularGame) {
  // 3 inputs for Alice, 2 for Bob; uniform weights, all-agree condition.
  std::vector<std::vector<double>> m(3, std::vector<double>(2, 1.0 / 6.0));
  EXPECT_NEAR(xor_quantum_bias(m).bias, 1.0, 1e-8);
}

TEST(XorBias, MoreRestartsNeverHurt) {
  std::vector<std::vector<double>> m{{0.2, -0.3, 0.1},
                                     {-0.1, 0.25, -0.15},
                                     {0.05, 0.1, -0.3}};
  GramOptions few;
  few.restarts = 1;
  GramOptions many;
  many.restarts = 16;
  EXPECT_GE(xor_quantum_bias(m, many).bias,
            xor_quantum_bias(m, few).bias - 1e-9);
}

}  // namespace
}  // namespace ftl::sdp

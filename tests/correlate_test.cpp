#include "correlate/decision_source.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace ftl::correlate {
namespace {

/// Empirical probability that the source satisfies the flipped CHSH
/// condition on input (x, y).
double sampled_win(PairedDecisionSource& src, int x, int y, int n,
                   util::Rng& rng) {
  int wins = 0;
  const int target = (x == 1 && y == 1) ? 0 : 1;
  for (int i = 0; i < n; ++i) {
    const auto [a, b] = src.decide(x, y, rng);
    if ((a ^ b) == target) ++wins;
  }
  return static_cast<double>(wins) / n;
}

double sampled_marginal(PairedDecisionSource& src, int endpoint, int x, int y,
                        int n, util::Rng& rng) {
  int ones = 0;
  for (int i = 0; i < n; ++i) {
    const auto [a, b] = src.decide(x, y, rng);
    ones += endpoint == 0 ? a : b;
  }
  return static_cast<double>(ones) / n;
}

TEST(IndependentRandom, WinsHalfTheTime) {
  IndependentRandomSource src;
  util::Rng rng(1);
  for (int x = 0; x < 2; ++x) {
    for (int y = 0; y < 2; ++y) {
      EXPECT_NEAR(sampled_win(src, x, y, 20000, rng), 0.5, 0.015);
      EXPECT_NEAR(src.win_probability(x, y), 0.5, 1e-12);
    }
  }
}

TEST(ClassicalChsh, WinsExceptOnBothC) {
  ClassicalChshSource src;
  util::Rng rng(2);
  EXPECT_NEAR(sampled_win(src, 0, 0, 5000, rng), 1.0, 1e-12);
  EXPECT_NEAR(sampled_win(src, 0, 1, 5000, rng), 1.0, 1e-12);
  EXPECT_NEAR(sampled_win(src, 1, 0, 5000, rng), 1.0, 1e-12);
  EXPECT_NEAR(sampled_win(src, 1, 1, 5000, rng), 0.0, 1e-12);
}

TEST(ClassicalChsh, AverageIsThreeQuarters) {
  ClassicalChshSource src;
  double total = 0.0;
  for (int x = 0; x < 2; ++x) {
    for (int y = 0; y < 2; ++y) total += src.win_probability(x, y);
  }
  EXPECT_NEAR(total / 4.0, 0.75, 1e-12);
}

TEST(ClassicalChsh, MarginalsUniformViaSharedCoin) {
  ClassicalChshSource src;
  util::Rng rng(3);
  EXPECT_NEAR(sampled_marginal(src, 0, 1, 1, 20000, rng), 0.5, 0.015);
  EXPECT_NEAR(sampled_marginal(src, 1, 0, 0, 20000, rng), 0.5, 0.015);
}

TEST(QuantumChsh, WinProbabilityNearTsirelson) {
  ChshSource src(1.0);
  util::Rng rng(4);
  const double expect = std::cos(M_PI / 8.0) * std::cos(M_PI / 8.0);
  for (int x = 0; x < 2; ++x) {
    for (int y = 0; y < 2; ++y) {
      EXPECT_NEAR(sampled_win(src, x, y, 30000, rng), expect, 0.01);
      EXPECT_NEAR(src.win_probability(x, y), expect, 1e-10);
    }
  }
}

TEST(QuantumChsh, CachedJointMatchesStrategy) {
  ChshSource src(0.85);
  util::Rng rng(5);
  // Sample and compare against the exact Born probabilities.
  for (int x = 0; x < 2; ++x) {
    for (int y = 0; y < 2; ++y) {
      int counts[2][2] = {{0, 0}, {0, 0}};
      const int n = 40000;
      for (int i = 0; i < n; ++i) {
        const auto [a, b] = src.decide(x, y, rng);
        ++counts[a][b];
      }
      for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 2; ++b) {
          EXPECT_NEAR(static_cast<double>(counts[a][b]) / n,
                      src.strategy().joint_probability(x, y, a, b), 0.012);
        }
      }
    }
  }
}

TEST(QuantumChsh, NoisyVisibilityDegradesLinearly) {
  for (double v : {1.0, 0.8, 0.5}) {
    ChshSource src(v);
    EXPECT_NEAR(src.win_probability(0, 0), 0.5 * (1.0 + v / std::sqrt(2.0)),
                1e-10);
  }
}

TEST(QuantumChsh, BelowThresholdLosesToClassical) {
  ChshSource src(0.5);
  EXPECT_LT(src.win_probability(0, 0), 0.75);
}

TEST(QuantumChsh, MarginalsUniform) {
  ChshSource src(1.0);
  util::Rng rng(6);
  for (int x = 0; x < 2; ++x) {
    for (int y = 0; y < 2; ++y) {
      EXPECT_NEAR(sampled_marginal(src, 0, x, y, 20000, rng), 0.5, 0.015);
      EXPECT_NEAR(sampled_marginal(src, 1, x, y, 20000, rng), 0.5, 0.015);
    }
  }
}

TEST(Omniscient, AlwaysWins) {
  OmniscientOracleSource src;
  util::Rng rng(7);
  for (int x = 0; x < 2; ++x) {
    for (int y = 0; y < 2; ++y) {
      EXPECT_NEAR(sampled_win(src, x, y, 2000, rng), 1.0, 1e-12);
    }
  }
}

TEST(Omniscient, MarginalsStillUniform) {
  OmniscientOracleSource src;
  util::Rng rng(8);
  EXPECT_NEAR(sampled_marginal(src, 0, 1, 1, 20000, rng), 0.5, 0.015);
}

TEST(Factory, CreatesEveryKind) {
  util::Rng rng(9);
  for (const char* kind :
       {"independent", "classical-chsh", "quantum-chsh", "omniscient"}) {
    const auto src = make_source(kind);
    ASSERT_NE(src, nullptr) << kind;
    const auto [a, b] = src->decide(0, 1, rng);
    EXPECT_TRUE(a == 0 || a == 1);
    EXPECT_TRUE(b == 0 || b == 1);
  }
}

TEST(Factory, RejectsUnknownKind) {
  EXPECT_DEATH((void)make_source("telepathy"), "unknown");
}

TEST(Sources, StrictOrderingOfPower) {
  // independent < classical < quantum < omniscient, averaged over inputs.
  IndependentRandomSource ind;
  ClassicalChshSource cls;
  ChshSource qsrc(1.0);
  OmniscientOracleSource omni;
  auto avg = [](PairedDecisionSource& s) {
    double t = 0.0;
    for (int x = 0; x < 2; ++x) {
      for (int y = 0; y < 2; ++y) t += s.win_probability(x, y);
    }
    return t / 4.0;
  };
  EXPECT_LT(avg(ind), avg(cls));
  EXPECT_LT(avg(cls), avg(qsrc));
  EXPECT_LT(avg(qsrc), avg(omni));
}

}  // namespace
}  // namespace ftl::correlate

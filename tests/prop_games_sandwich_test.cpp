// Property suite: the classical <= quantum <= NPA-1 sandwich on random XOR
// games — the Ambainis–Iraids-style randomized separation check that
// certifies every advantage number the benches report.
#include <gtest/gtest.h>

#include <cmath>

#include "games/generators.hpp"
#include "games/invariants.hpp"
#include "games/xor_game.hpp"
#include "util/proptest.hpp"

namespace {

using ftl::games::SeesawOptions;
using ftl::games::XorGame;
using ftl::proptest::CaseResult;
using ftl::proptest::for_all;
using ftl::proptest::Options;
using ftl::sdp::GramOptions;
using ftl::util::Rng;

Options suite(const std::string& name, std::size_t cases) {
  Options o;
  o.name = name;
  o.cases = cases;
  return o;
}

// Solver settings sized for property-test throughput; the per-case seed
// keeps the whole pipeline (game + solvers) replayable from one number.
GramOptions sdp_opts(Rng& rng) {
  GramOptions o;
  o.restarts = 3;
  o.max_sweeps = 300;
  o.seed = rng.next_u64();
  return o;
}

SeesawOptions seesaw_opts(Rng& rng) {
  SeesawOptions o;
  o.restarts = 2;
  o.max_rounds = 40;
  o.seed = rng.next_u64();
  return o;
}

struct SandwichCase {
  XorGame game;
  GramOptions sdp;
  SeesawOptions seesaw;
};

CaseResult check_sandwich(const SandwichCase& c) {
  const auto s = ftl::games::value_sandwich(c.game, c.sdp, c.seesaw);
  if (!s.consistent(1e-4)) {
    return CaseResult::fail("sandwich violated: " + s.describe());
  }
  return CaseResult::pass();
}

TEST(PropGamesSandwich, TwoInputXorGamesSatisfyFullSandwich) {
  const auto r = for_all(
      suite("sandwich-2x2", 100),
      [](Rng& rng) {
        SandwichCase c{ftl::games::random_xor_game(2, 2, rng), sdp_opts(rng),
                       seesaw_opts(rng)};
        return c;
      },
      check_sandwich);
  ASSERT_TRUE(r.ok) << r.message;
}

TEST(PropGamesSandwich, LargerXorGamesSatisfyClassicalQuantumOrder) {
  const auto r = for_all(
      suite("sandwich-3x3", 100),
      [](Rng& rng) {
        const std::size_t nx = 2 + rng.uniform_int(std::uint64_t{2});
        const std::size_t ny = 2 + rng.uniform_int(std::uint64_t{2});
        SandwichCase c{ftl::games::random_xor_game(nx, ny, rng),
                       sdp_opts(rng), seesaw_opts(rng)};
        return c;
      },
      check_sandwich);
  ASSERT_TRUE(r.ok) << r.message;
}

// The exhaustive classical search must return a *witness* that actually
// attains the value it claims, and the value must be a true maximum over a
// random sample of deterministic sign assignments.
TEST(PropGamesSandwich, ClassicalWitnessAttainsItsClaimedBias) {
  struct Case {
    XorGame game;
    std::vector<int> probe_alice;
    std::vector<int> probe_bob;
  };
  const auto r = for_all(
      suite("classical-witness", 150),
      [](Rng& rng) {
        const std::size_t nx = 2 + rng.uniform_int(std::uint64_t{3});
        const std::size_t ny = 2 + rng.uniform_int(std::uint64_t{3});
        Case c{ftl::games::random_xor_game(nx, ny, rng), {}, {}};
        for (std::size_t x = 0; x < nx; ++x) {
          c.probe_alice.push_back(rng.bernoulli(0.5) ? 1 : 0);
        }
        for (std::size_t y = 0; y < ny; ++y) {
          c.probe_bob.push_back(rng.bernoulli(0.5) ? 1 : 0);
        }
        return c;
      },
      [](const Case& c) {
        const auto strat = c.game.classical_strategy();
        const auto cost = c.game.cost_matrix();
        auto bias_of = [&](const std::vector<int>& fa,
                           const std::vector<int>& fb) {
          double bias = 0.0;
          for (std::size_t x = 0; x < c.game.num_x(); ++x) {
            for (std::size_t y = 0; y < c.game.num_y(); ++y) {
              const double sa = fa[x] == 0 ? 1.0 : -1.0;
              const double sb = fb[y] == 0 ? 1.0 : -1.0;
              bias += cost[x][y] * sa * sb;
            }
          }
          return bias;
        };
        if (std::abs(bias_of(strat.alice, strat.bob) - strat.bias) > 1e-9) {
          return CaseResult::fail("witness does not attain its claimed bias");
        }
        if (std::abs(strat.bias - c.game.classical_bias()) > 1e-9) {
          return CaseResult::fail("witness bias != classical_bias()");
        }
        if (bias_of(c.probe_alice, c.probe_bob) > strat.bias + 1e-9) {
          return CaseResult::fail("a random strategy beat the 'optimal' one");
        }
        return CaseResult::pass();
      });
  ASSERT_TRUE(r.ok) << r.message;
}

}  // namespace

// Unit tests for qcore/gates: unitarity of every gate, the standard
// Clifford/phase algebra, rotation composition, two-qubit gate action on
// basis states, and the real measurement basis used by the CHSH analysis.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "qcore/gates.hpp"
#include "qcore/matrix.hpp"
#include "qcore/state.hpp"

namespace {

using ftl::qcore::CMat;
using ftl::qcore::Cx;
using ftl::qcore::StateVec;
namespace gates = ftl::qcore::gates;

constexpr double kPi = 3.14159265358979323846;

TEST(QcoreGates, AllGatesAreUnitary) {
  const std::vector<CMat> single = {
      gates::I(),       gates::X(),        gates::Y(),        gates::Z(),
      gates::H(),       gates::S(),        gates::T(),        gates::Rx(0.3),
      gates::Ry(1.234), gates::Rz(-2.718), gates::real_basis(0.777)};
  for (const CMat& g : single) {
    EXPECT_EQ(g.rows(), 2u);
    EXPECT_TRUE(g.is_unitary(1e-12));
  }
  const std::vector<CMat> two = {gates::CNOT(), gates::CZ(), gates::SWAP()};
  for (const CMat& g : two) {
    EXPECT_EQ(g.rows(), 4u);
    EXPECT_TRUE(g.is_unitary(1e-12));
  }
}

TEST(QcoreGates, PauliAlgebraHolds) {
  const CMat id = gates::I();
  EXPECT_TRUE((gates::X() * gates::X()).approx_equal(id, 1e-12));
  EXPECT_TRUE((gates::Y() * gates::Y()).approx_equal(id, 1e-12));
  EXPECT_TRUE((gates::Z() * gates::Z()).approx_equal(id, 1e-12));
  // XY = iZ.
  EXPECT_TRUE((gates::X() * gates::Y())
                  .approx_equal(gates::Z() * Cx{0.0, 1.0}, 1e-12));
  // Hadamard conjugation exchanges X and Z.
  EXPECT_TRUE((gates::H() * gates::X() * gates::H())
                  .approx_equal(gates::Z(), 1e-12));
  EXPECT_TRUE((gates::H() * gates::Z() * gates::H())
                  .approx_equal(gates::X(), 1e-12));
  EXPECT_TRUE((gates::H() * gates::H()).approx_equal(id, 1e-12));
}

TEST(QcoreGates, PhaseGateSquareRoots) {
  EXPECT_TRUE((gates::S() * gates::S()).approx_equal(gates::Z(), 1e-12));
  EXPECT_TRUE((gates::T() * gates::T()).approx_equal(gates::S(), 1e-12));
}

TEST(QcoreGates, RotationsComposeAdditively) {
  const double a = 0.913;
  const double b = -1.441;
  EXPECT_TRUE(
      (gates::Ry(a) * gates::Ry(b)).approx_equal(gates::Ry(a + b), 1e-12));
  EXPECT_TRUE(
      (gates::Rz(a) * gates::Rz(b)).approx_equal(gates::Rz(a + b), 1e-12));
  EXPECT_TRUE(
      (gates::Rx(a) * gates::Rx(b)).approx_equal(gates::Rx(a + b), 1e-12));
  EXPECT_TRUE(gates::Ry(0.0).approx_equal(gates::I(), 1e-12));
  // A full 2*pi rotation is -I (spinor double cover).
  EXPECT_TRUE(
      gates::Ry(2.0 * kPi).approx_equal(gates::I() * Cx{-1.0, 0.0}, 1e-12));
  // Rx(pi) = -i X.
  EXPECT_TRUE(gates::Rx(kPi).approx_equal(gates::X() * Cx{0.0, -1.0}, 1e-12));
}

TEST(QcoreGates, CnotActsOnBasisStates) {
  // Convention: control is the left (high-order) qubit; basis order
  // |00>, |01>, |10>, |11>.
  const CMat cnot = gates::CNOT();
  auto basis = [](std::size_t i) {
    std::vector<Cx> v(4, Cx{0.0, 0.0});
    v[i] = Cx{1.0, 0.0};
    return v;
  };
  auto expect_maps = [&](std::size_t in, std::size_t out) {
    const auto image = cnot.apply(basis(in));
    for (std::size_t k = 0; k < 4; ++k) {
      EXPECT_NEAR(std::abs(image[k] - basis(out)[k]), 0.0, 1e-12)
          << "CNOT|" << in << "> component " << k;
    }
  };
  expect_maps(0, 0);  // |00> -> |00>
  expect_maps(1, 1);  // |01> -> |01>
  expect_maps(2, 3);  // |10> -> |11>
  expect_maps(3, 2);  // |11> -> |10>
  EXPECT_TRUE((cnot * cnot).approx_equal(CMat::identity(4), 1e-12));
}

TEST(QcoreGates, CzIsSymmetricDiagonalPhase) {
  const CMat cz = gates::CZ();
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      if (i != j) {
        EXPECT_NEAR(std::abs(cz.at(i, j)), 0.0, 1e-12);
      }
    }
  }
  EXPECT_NEAR(std::abs(cz.at(0, 0) - Cx{1.0, 0.0}), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(cz.at(3, 3) - Cx{-1.0, 0.0}), 0.0, 1e-12);
  EXPECT_TRUE(cz.transpose().approx_equal(cz, 1e-12));
  // CZ = (I (x) H) CNOT (I (x) H).
  const CMat ih = gates::I().kron(gates::H());
  EXPECT_TRUE((ih * gates::CNOT() * ih).approx_equal(cz, 1e-12));
}

TEST(QcoreGates, SwapExchangesQubits) {
  const CMat swap = gates::SWAP();
  EXPECT_TRUE((swap * swap).approx_equal(CMat::identity(4), 1e-12));
  // SWAP (A (x) B) SWAP = B (x) A for any single-qubit A, B.
  const CMat a = gates::Ry(0.4);
  const CMat b = gates::Rz(1.9);
  EXPECT_TRUE((swap * a.kron(b) * swap).approx_equal(b.kron(a), 1e-12));
}

TEST(QcoreGates, RealBasisColumnsAreTheAdvertisedKets) {
  const double theta = 0.6;
  const CMat m = gates::real_basis(theta);
  EXPECT_NEAR(std::abs(m.at(0, 0) - Cx{std::cos(theta), 0.0}), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(m.at(1, 0) - Cx{std::sin(theta), 0.0}), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(m.at(0, 1) - Cx{-std::sin(theta), 0.0}), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(m.at(1, 1) - Cx{std::cos(theta), 0.0}), 0.0, 1e-12);
  EXPECT_TRUE(gates::real_basis(0.0).approx_equal(gates::I(), 1e-12));
}

TEST(QcoreGates, BellPairMeasuredInEqualBasesIsPerfectlyCorrelated) {
  // Measuring both halves of |Phi+> in the same real basis always agrees —
  // the identity behind every correlation number in the paper.
  for (const double theta : {0.0, 0.3, 1.1, kPi / 4.0}) {
    const StateVec bell = StateVec::bell_phi_plus();
    const CMat basis = gates::real_basis(theta);
    double agree = 0.0;
    for (int a = 0; a < 2; ++a) {
      auto [collapsed, p] = [&] {
        // P(a on qubit 0) then P(a on qubit 1 | a on qubit 0) via the
        // projective probabilities of the pure-state simulator.
        StateVec s = bell;
        const double pa = s.outcome_probability(0, basis, a);
        return std::pair<StateVec, double>(s, pa);
      }();
      agree += p;  // placeholder weight; correlation checked below
      (void)collapsed;
    }
    EXPECT_NEAR(agree, 1.0, 1e-12);
    // E[AB] for equal angles is +1: P(00) + P(11) - P(01) - P(10) = 1.
    // Compute joint outcome probabilities by applying the basis rotation
    // to both qubits and reading computational probabilities.
    StateVec rotated = bell;
    rotated.apply1(basis.adjoint(), 0);
    rotated.apply1(basis.adjoint(), 1);
    const auto probs = rotated.probabilities();
    const double correlation = probs[0] - probs[1] - probs[2] + probs[3];
    EXPECT_NEAR(correlation, 1.0, 1e-12) << "theta = " << theta;
  }
}

}  // namespace

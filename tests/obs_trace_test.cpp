// Tracer behaviour and Chrome trace JSON well-formedness: every emitted
// document must parse (with the in-tree strict parser) and carry the
// fields chrome://tracing / Perfetto rely on.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

namespace json = ftl::obs::json;
using ftl::obs::real::ScopedHistogramTimer;
using ftl::obs::real::ScopedSpan;
using ftl::obs::real::Tracer;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(ObsTracer, InactiveRecordsNothing) {
  Tracer& t = ftl::obs::real::tracer();
  t.stop();
  const std::size_t before = t.size();
  t.record_complete("x", "cat", 0.0, 1.0);
  t.record_instant("y", "cat");
  { ScopedSpan span("scoped", "cat"); }
  EXPECT_EQ(t.size(), before);
}

TEST(ObsTracer, CollectsSpansWhileActive) {
  Tracer& t = ftl::obs::real::tracer();
  t.start();
  {
    ScopedSpan outer("outer", "test");
    ScopedSpan inner("inner", "test");
  }
  t.record_instant("marker", "test");
  t.stop();
  EXPECT_EQ(t.size(), 3u);

  const auto doc = json::parse(t.json());
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  const json::Value* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), 3u);
  for (const json::Value& e : events->array) {
    ASSERT_TRUE(e.is_object());
    ASSERT_NE(e.find("name"), nullptr);
    ASSERT_NE(e.find("cat"), nullptr);
    ASSERT_NE(e.find("pid"), nullptr);
    ASSERT_NE(e.find("tid"), nullptr);
    ASSERT_NE(e.find("ts"), nullptr);
    const json::Value* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    EXPECT_TRUE(ph->string == "X" || ph->string == "i") << ph->string;
    if (ph->string == "X") {
      const json::Value* dur = e.find("dur");
      ASSERT_NE(dur, nullptr);
      EXPECT_GE(dur->number, 0.0);
    }
  }
  // Inner closes before outer, so it is recorded first.
  EXPECT_EQ(events->array[0].find("name")->string, "inner");
  EXPECT_EQ(events->array[1].find("name")->string, "outer");
}

TEST(ObsTracer, StartClearsPreviousBuffer) {
  Tracer& t = ftl::obs::real::tracer();
  t.start();
  t.record_instant("old", "test");
  t.stop();
  ASSERT_GE(t.size(), 1u);
  t.start();
  EXPECT_EQ(t.size(), 0u);
  t.stop();
}

TEST(ObsTracer, WriteEmitsParseableFile) {
  Tracer& t = ftl::obs::real::tracer();
  t.start();
  { ScopedSpan span("file_span", "test"); }
  t.stop();
  const std::string path = testing::TempDir() + "/obs_trace_test.json";
  ASSERT_TRUE(t.write(path));
  const auto doc = json::parse(read_file(path));
  ASSERT_TRUE(doc.has_value());
  ASSERT_NE(doc->find("traceEvents"), nullptr);
  std::remove(path.c_str());
}

TEST(ObsScopedHistogramTimer, FeedsDurationHistogram) {
  ftl::obs::real::Registry reg;
  ftl::obs::real::Histogram& h =
      reg.histogram("timer_us", 0.0, 1e9, 10);
  {
    ScopedHistogramTimer timer(h);
  }
  {
    ScopedHistogramTimer timer(h);
  }
  EXPECT_EQ(h.sample().total, 2u);
}

TEST(ObsTracerNoop, EmptyTraceStillParses) {
  const ftl::obs::noop::Tracer t;
  const auto doc = json::parse(t.json());
  ASSERT_TRUE(doc.has_value());
  const json::Value* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_TRUE(events->is_array());
  EXPECT_TRUE(events->array.empty());
}

}  // namespace

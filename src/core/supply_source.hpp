// SupplyAwareSource: a PairedDecisionSource whose quantum rounds are
// rationed by the qnet supply model.
//
// This closes the loop between the architecture (§3) and the simulation
// (§4.1): the Figure-4 cluster simulation can be re-run with a *finite*
// entanglement source, lossy fiber and decohering memory, so the measured
// advantage reflects what a concrete hardware budget actually buys. Rounds
// without a live pair silently fall back to the best classical strategy.
#pragma once

#include "core/correlated_pair.hpp"
#include "correlate/decision_source.hpp"

namespace ftl::core {

class SupplyAwareSource final : public correlate::PairedDecisionSource {
 public:
  /// `cfg.supply` must be set (otherwise use correlate::ChshSource).
  explicit SupplyAwareSource(const PairConfig& cfg);

  [[nodiscard]] std::pair<int, int> decide(int x, int y,
                                           util::Rng& rng) override;
  [[nodiscard]] std::string name() const override;

  /// Expected win probability on a *fresh* pair; the realised average is
  /// lower and visible through stats().
  [[nodiscard]] double win_probability(int x, int y) const override;

  [[nodiscard]] const PairStats& stats() const { return pair_.stats(); }

 private:
  CorrelatedPair pair_;
};

}  // namespace ftl::core

#include "core/coordinator.hpp"

namespace ftl::core {

std::pair<Endpoint, Endpoint> Coordinator::make_pair() {
  PairConfig cfg = cfg_;
  cfg.seed = cfg_.seed + pairs_.size() * 0x9e3779b97f4a7c15ULL;
  pairs_.push_back(std::make_unique<CorrelatedPair>(cfg));
  CorrelatedPair* p = pairs_.back().get();
  return {Endpoint(p, 0), Endpoint(p, 1)};
}

PairStats Coordinator::aggregate_stats() const {
  PairStats total;
  for (const auto& p : pairs_) {
    const PairStats& s = p->stats();
    total.rounds += s.rounds;
    total.quantum_rounds += s.quantum_rounds;
    total.fallback_rounds += s.fallback_rounds;
    total.wins += s.wins;
  }
  return total;
}

std::unique_ptr<lb::LbStrategy> Coordinator::make_lb_strategy() const {
  std::unique_ptr<correlate::PairedDecisionSource> src;
  switch (cfg_.backend) {
    case Backend::kIndependent:
      src = std::make_unique<correlate::IndependentRandomSource>();
      break;
    case Backend::kClassicalShared:
      src = std::make_unique<correlate::ClassicalChshSource>();
      break;
    case Backend::kQuantum:
      src = std::make_unique<correlate::ChshSource>(cfg_.visibility);
      break;
    case Backend::kOmniscient:
      src = std::make_unique<correlate::OmniscientOracleSource>();
      break;
  }
  return std::make_unique<lb::PairedStrategy>(std::move(src));
}

ProvisioningReport Coordinator::provision(const qnet::QnetConfig& supply,
                                          double source_visibility,
                                          double request_rate_hz,
                                          double sim_duration_s,
                                          std::uint64_t seed) {
  qnet::QnetConfig cfg = supply;
  cfg.source_visibility = source_visibility;
  util::Rng rng(seed);
  const qnet::BrokerStats stats =
      qnet::simulate_pair_supply(cfg, request_rate_hz, sim_duration_s, rng);
  ProvisioningReport report;
  report.pair_hit_fraction = stats.hit_fraction();
  report.mean_pair_age_s = stats.mean_consumed_age_s;
  report.effective_win_probability = stats.mean_chsh_win;
  return report;
}

}  // namespace ftl::core

// Coordinator: fleet-level entry point of the library.
//
// A Coordinator owns a set of CorrelatedPairs (one per pair of cooperating
// nodes), hands out endpoint handles, and answers the provisioning
// question: given an entanglement source, fiber plant, and request rate, is
// the quantum backend actually better than the classical one end-to-end?
#pragma once

#include <memory>
#include <vector>

#include "core/correlated_pair.hpp"
#include "lb/strategy.hpp"
#include "qnet/broker.hpp"

namespace ftl::core {

/// A node-local handle: the only thing application code needs.
class Endpoint {
 public:
  Endpoint(CorrelatedPair* pair, int side) : pair_(pair), side_(side) {}

  /// Decide between alternative 0 and 1 given this node's local input.
  [[nodiscard]] int decide(int local_input) {
    return pair_->decide(side_, local_input);
  }

 private:
  CorrelatedPair* pair_;
  int side_;
};

struct ProvisioningReport {
  /// Fraction of rounds that will find a live entangled pair.
  double pair_hit_fraction = 0.0;
  /// Mean storage age of consumed pairs, seconds.
  double mean_pair_age_s = 0.0;
  /// End-to-end expected win probability of the flipped CHSH condition
  /// (quantum rounds at their decohered quality, misses at classical 3/4).
  double effective_win_probability = 0.0;
  /// The classical baseline it must beat.
  double classical_win_probability = 0.75;
  [[nodiscard]] bool quantum_worthwhile() const {
    return effective_win_probability > classical_win_probability + 1e-9;
  }
};

class Coordinator {
 public:
  explicit Coordinator(PairConfig cfg) : cfg_(std::move(cfg)) {}

  /// Creates a correlated pair and returns its two endpoint handles. The
  /// Coordinator keeps ownership; handles stay valid for its lifetime.
  [[nodiscard]] std::pair<Endpoint, Endpoint> make_pair();

  /// Per-pair statistics, aggregated.
  [[nodiscard]] PairStats aggregate_stats() const;

  /// Builds a load-balancer strategy backed by this coordinator's
  /// configuration (used by the examples and benches).
  [[nodiscard]] std::unique_ptr<lb::LbStrategy> make_lb_strategy() const;

  /// Answers "should I deploy the quantum backend?" for a given supply
  /// model and request rate, by running the qnet broker simulation.
  [[nodiscard]] static ProvisioningReport provision(
      const qnet::QnetConfig& supply, double source_visibility,
      double request_rate_hz, double sim_duration_s, std::uint64_t seed);

 private:
  PairConfig cfg_;
  std::vector<std::unique_ptr<CorrelatedPair>> pairs_;
};

}  // namespace ftl::core

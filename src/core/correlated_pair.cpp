#include "core/correlated_pair.hpp"

#include <cmath>

#include "qnet/decoherence.hpp"
#include "util/assert.hpp"

namespace ftl::core {

const char* to_string(Backend b) {
  switch (b) {
    case Backend::kIndependent:
      return "independent";
    case Backend::kClassicalShared:
      return "classical-shared";
    case Backend::kQuantum:
      return "quantum";
    case Backend::kOmniscient:
      return "omniscient";
  }
  return "?";
}

CorrelatedPair::CorrelatedPair(const PairConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed) {
  FTL_ASSERT(cfg.visibility >= 0.0 && cfg.visibility <= 1.0);
  FTL_ASSERT(cfg.detector_efficiency >= 0.0 &&
             cfg.detector_efficiency <= 1.0);
  if (cfg_.supply) {
    FTL_ASSERT(cfg_.round_rate_hz > 0.0);
    next_pair_time_s_ = rng_.exponential(cfg_.supply->pair_rate_hz);
    // Never consume a pair that has decohered below the classical
    // strategy's value — it would make "quantum" rounds worse than the
    // fallback.
    effective_storage_s_ = std::min(
        cfg_.supply->max_storage_s,
        qnet::useful_storage_window_s(cfg_.visibility,
                                      cfg_.supply->memory_t1_s,
                                      cfg_.supply->memory_t2_s));
  }
  begin_round();
}

void CorrelatedPair::begin_round() {
  decided_[0] = decided_[1] = false;
  round_state_.reset();
  shared_bit_ = rng_.bernoulli(0.5) ? 1 : 0;

  if (cfg_.backend != Backend::kQuantum) {
    round_is_quantum_ = false;
    return;
  }

  if (cfg_.supply) {
    const qnet::QnetConfig& q = *cfg_.supply;
    // Advance physical time to this round and stream pair deliveries into
    // bounded memory (freshest-first consumption; see qnet::broker for the
    // event-driven version of the same model). Generation happens at the
    // source; a pair is usable only after its propagation delay.
    sim_time_s_ += rng_.exponential(cfg_.round_rate_hz);
    const double deliver_p = q.pair_delivery_probability();
    while (next_pair_time_s_ <= sim_time_s_) {
      if (rng_.bernoulli(deliver_p)) {
        if (memory_.size() >= q.memory_slots) memory_.pop_front();
        memory_.push_back(next_pair_time_s_ + q.propagation_delay_s());
      }
      next_pair_time_s_ += rng_.exponential(q.pair_rate_hz);
    }
    // Evict pairs that decohered past usefulness.
    while (!memory_.empty() &&
           sim_time_s_ - memory_.front() > effective_storage_s_) {
      memory_.pop_front();
    }
    // Freshest *arrived* pair: scan from the back past in-flight pairs.
    auto it = memory_.rbegin();
    while (it != memory_.rend() && *it > sim_time_s_) ++it;
    if (it == memory_.rend()) {
      round_is_quantum_ = false;  // nothing usable: classical fallback
      return;
    }
    const double age_s = sim_time_s_ - *it;
    memory_.erase(std::next(it).base());
    round_state_ = qnet::pair_state_after_storage(
        cfg_.visibility, age_s, age_s, q.memory_t1_s, q.memory_t2_s);
  } else {
    round_state_ = qcore::Density::werner(cfg_.visibility);
  }
  round_is_quantum_ = true;
}

int CorrelatedPair::decide(int endpoint, int input_bit) {
  FTL_ASSERT(endpoint == 0 || endpoint == 1);
  FTL_ASSERT(input_bit == 0 || input_bit == 1);
  FTL_ASSERT_MSG(!decided_[endpoint],
                 "endpoint already decided in this round");
  inputs_[endpoint] = input_bit;

  int out = 0;
  if (round_is_quantum_ && rng_.bernoulli(cfg_.detector_efficiency)) {
    // Honest local measurement on this endpoint's half of the pair.
    const qcore::CMat basis =
        games::chsh_basis(games::chsh_optimal_angles(), endpoint, input_bit,
                          /*flip_output=*/endpoint == 1);
    out = round_state_->measure(static_cast<std::size_t>(endpoint), basis,
                                rng_);
  } else if (round_is_quantum_) {
    // Detector failure: this endpoint falls back to the shared bit; the
    // partner's measurement is now uncorrelated with it.
    out = endpoint == 0 ? shared_bit_ : (1 ^ shared_bit_);
  } else {
    switch (cfg_.backend) {
      case Backend::kIndependent:
        out = rng_.bernoulli(0.5) ? 1 : 0;
        break;
      case Backend::kOmniscient: {
        // Testbed cheat: the *second* caller can see both inputs.
        const bool other_decided = decided_[1 - endpoint];
        if (!other_decided) {
          out = shared_bit_;
        } else {
          const int target =
              (inputs_[0] == 1 && inputs_[1] == 1) ? 0 : 1;
          out = shared_bit_ ^ target;
        }
        break;
      }
      case Backend::kClassicalShared:
      case Backend::kQuantum:  // quantum backend falling back this round
        out = endpoint == 0 ? shared_bit_ : (1 ^ shared_bit_);
        break;
    }
  }

  outputs_[endpoint] = out;
  decided_[endpoint] = true;
  if (decided_[0] && decided_[1]) finish_round();
  return out;
}

void CorrelatedPair::finish_round() {
  ++stats_.rounds;
  if (round_is_quantum_) {
    ++stats_.quantum_rounds;
  } else if (cfg_.backend == Backend::kQuantum) {
    ++stats_.fallback_rounds;
  }
  const int target = (inputs_[0] == 1 && inputs_[1] == 1) ? 0 : 1;
  if ((outputs_[0] ^ outputs_[1]) == target) ++stats_.wins;
  begin_round();
}

double CorrelatedPair::expected_win_probability() const {
  switch (cfg_.backend) {
    case Backend::kIndependent:
      return 0.5;
    case Backend::kClassicalShared:
      return 0.75;
    case Backend::kOmniscient:
      return 1.0;
    case Backend::kQuantum:
      return 0.5 * (1.0 + cfg_.visibility / std::sqrt(2.0));
  }
  return 0.0;
}

}  // namespace ftl::core

#include "core/supply_source.hpp"

#include "util/assert.hpp"

namespace ftl::core {

SupplyAwareSource::SupplyAwareSource(const PairConfig& cfg) : pair_(cfg) {
  FTL_ASSERT_MSG(cfg.supply.has_value(),
                 "SupplyAwareSource needs a qnet supply model");
  FTL_ASSERT_MSG(cfg.backend == Backend::kQuantum,
                 "supply rationing only makes sense for the quantum backend");
}

std::pair<int, int> SupplyAwareSource::decide(int x, int y,
                                              util::Rng& /*rng*/) {
  // The CorrelatedPair carries its own deterministic stream (it must: the
  // supply process is part of its state), so the caller's rng is unused.
  const int a = pair_.decide(0, x);
  const int b = pair_.decide(1, y);
  return {a, b};
}

std::string SupplyAwareSource::name() const {
  return "quantum-chsh(supply-limited)";
}

double SupplyAwareSource::win_probability(int /*x*/, int /*y*/) const {
  return pair_.expected_win_probability();
}

}  // namespace ftl::core

// CorrelatedPair: the paper's primitive, packaged (§1, §5).
//
// Two endpoints that must repeatedly pick one of two alternatives, each
// knowing only its own input bit, with the *joint* guarantee of the flipped
// CHSH game: both inputs 1 => same choice, otherwise => different choices,
// satisfied with probability ~0.854 (quantum), 0.75 (classical), or 1.0
// (omniscient testbed cheat).
//
// The quantum backend is honest-by-construction: each endpoint's decide()
// performs a projective measurement on its own qubit of a shared two-qubit
// state; the first caller's outcome distribution provably cannot depend on
// the other endpoint's input (no-signaling), and call order does not change
// the joint distribution. Pair supply can optionally be rationed through a
// qnet::QnetConfig — rounds without a delivered pair fall back to the best
// classical strategy, with visibility degraded by storage decoherence.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "games/chsh.hpp"
#include "qcore/density.hpp"
#include "qnet/config.hpp"
#include "util/rng.hpp"

namespace ftl::core {

enum class Backend : std::uint8_t {
  /// Independent coins — no coordination at all.
  kIndependent,
  /// Best classical strategy with shared randomness (win prob 3/4).
  kClassicalShared,
  /// Simulated entangled pairs (win prob (1 + v/sqrt2)/2).
  kQuantum,
  /// Sees both inputs; only valid in testbeds (§5's "cheat").
  kOmniscient,
};

[[nodiscard]] const char* to_string(Backend b);

struct PairConfig {
  Backend backend = Backend::kQuantum;
  /// Visibility of fresh pairs for the quantum backend.
  double visibility = 1.0;
  /// If set, pair availability and storage age are modelled: each round
  /// consumes one entangled pair if available (Poisson supply, lossy fiber,
  /// bounded decohering memory); otherwise the round falls back to
  /// kClassicalShared.
  std::optional<qnet::QnetConfig> supply;
  /// Mean rounds per second, used only with `supply` to convert rounds to
  /// physical time.
  double round_rate_hz = 1.0e4;
  /// Probability a quantum measurement attempt yields an outcome. A failed
  /// endpoint silently uses its classical shared bit — and its partner
  /// cannot tell, so one-sided failures win only 50% (see qnet/detector).
  double detector_efficiency = 1.0;
  std::uint64_t seed = 42;
};

struct PairStats {
  std::uint64_t rounds = 0;
  std::uint64_t quantum_rounds = 0;
  std::uint64_t fallback_rounds = 0;
  std::uint64_t wins = 0;  ///< rounds satisfying the co-location condition
};

class CorrelatedPair {
 public:
  explicit CorrelatedPair(const PairConfig& cfg);

  /// Endpoint `endpoint` (0 or 1) submits its input bit for the current
  /// round and gets its decision immediately. Each endpoint must call
  /// exactly once per round; the round completes when both have called.
  int decide(int endpoint, int input_bit);

  [[nodiscard]] const PairStats& stats() const { return stats_; }

  /// Expected win probability of the configured backend on fresh pairs.
  [[nodiscard]] double expected_win_probability() const;

 private:
  void begin_round();
  void finish_round();

  PairConfig cfg_;
  util::Rng rng_;
  PairStats stats_;

  // Current round state.
  bool decided_[2] = {false, false};
  int inputs_[2] = {0, 0};
  int outputs_[2] = {0, 0};
  bool round_is_quantum_ = false;
  std::optional<qcore::Density> round_state_;
  int shared_bit_ = 0;  // classical fallback shared randomness
  double sim_time_s_ = 0.0;
  double next_pair_time_s_ = 0.0;
  /// Arrival times (at the QNICs) of pairs generated so far, oldest first.
  /// May include pairs still in flight (arrival > now).
  std::deque<double> memory_;
  /// Storage limit clamped to the window in which a stored pair still beats
  /// the classical strategy (computed once from T1/T2/visibility).
  double effective_storage_s_ = 0.0;
};

}  // namespace ftl::core

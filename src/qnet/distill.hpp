// Entanglement distillation (BBPSSW recurrence) at the QNIC.
//
// §3 stresses that "all quantum technologies operate with an error margin,
// which system designs must account for". Distillation is the standard
// systems answer: burn two noisy pairs to (probabilistically) mint one
// better pair. One BBPSSW round on two Werner-F pairs succeeds with
// probability p = F^2 + 2F(1-F)/3 + 5((1-F)/3)^2 and, on success, yields
// fidelity F' = (F^2 + ((1-F)/3)^2) / p, which exceeds F whenever
// F > 1/2. The CHSH advantage needs F > (1 + 3/sqrt2)/4 ~ 0.78, so
// distillation converts "useless" mid-fidelity sources into useful ones —
// at a pair-rate cost the provisioning bench quantifies.
//
// We implement the protocol physically on the 4-qubit density simulator
// (bilateral CNOTs + coincidence measurement + twirl back to Werner form)
// and validate against the closed form.
#pragma once

#include "qcore/density.hpp"

namespace ftl::qnet {

struct DistillResult {
  /// Probability the coincidence test passes.
  double success_probability = 0.0;
  /// Post-selected state of the surviving pair (qubits: Alice, Bob).
  qcore::Density state;
  /// Bell fidelity of the surviving pair.
  double fidelity = 0.0;
};

/// One BBPSSW round on two (possibly different) two-qubit states. `pair1`
/// becomes the kept pair, `pair2` is sacrificed. Computed exactly —
/// deterministic output, no sampling.
[[nodiscard]] DistillResult bbpssw_round(const qcore::Density& pair1,
                                         const qcore::Density& pair2);

/// One DEJMPS round: like BBPSSW but with bilateral Rx(+-pi/2) rotations
/// first, which convert phase errors into bit errors that the coincidence
/// test can catch. Strictly better on dephased (Bell-diagonal) pairs —
/// exactly the noise QNIC storage produces — and it is what a real QNIC
/// would run. (Plain BBPSSW *worsens* pure-phase-error pairs:
/// F -> F^2 + (1-F)^2; the tests pin that down.)
[[nodiscard]] DistillResult dejmps_round(const qcore::Density& pair1,
                                         const qcore::Density& pair2);

/// Closed-form post-distillation fidelity for two Werner-F inputs.
[[nodiscard]] double werner_distilled_fidelity(double f);

/// Closed-form success probability for two Werner-F inputs.
[[nodiscard]] double werner_distill_success(double f);

/// Iterates the recurrence (with re-twirling to Werner form each round, as
/// in the original protocol) until the fidelity reaches `target` or
/// `max_rounds` is hit. Returns the number of rounds used, final fidelity,
/// and the expected number of *raw* pairs consumed per distilled pair
/// (2^rounds divided by the success probabilities).
struct RecurrenceResult {
  int rounds = 0;
  double fidelity = 0.0;
  double expected_raw_pairs = 1.0;
  bool reached_target = false;
};
[[nodiscard]] RecurrenceResult distill_to_target(double f0, double target,
                                                 int max_rounds = 16);

}  // namespace ftl::qnet

// Configuration of the paper's Figure-1 architecture: a lightweight
// entanglement source feeding classical servers over fiber, with QNIC
// measurement + short-lived room-temperature storage at each server.
//
// Defaults follow §3's numbers: SPDC pair rates of 1e4..1e7 pairs/s,
// room-temperature storage of 16-160 us, and fiber attenuation of ~0.2 dB/km
// for telecom photons.
#pragma once

#include <cstddef>

namespace ftl::qnet {

struct QnetConfig {
  /// Entangled-pair generation rate at the source (pairs per second).
  double pair_rate_hz = 1.0e5;

  /// Visibility of a freshly generated pair (Werner parameter; Bell-state
  /// fidelity F = (1 + 3v)/4). SPDC sources commonly reach F > 0.95.
  double source_visibility = 0.98;

  /// One-way fiber length from the source to each server, km.
  double fiber_km = 0.5;

  /// Fiber loss; each photon survives with prob 10^(-loss*km/10).
  double attenuation_db_per_km = 0.2;

  /// Signal speed in fiber (m/s), ~2/3 c.
  double fiber_speed_mps = 2.0e8;

  /// QNIC memory relaxation (T1) and coherence (T2) times, seconds.
  /// §3 cites high-fidelity room-temperature storage of 16-160 us.
  double memory_t1_s = 500e-6;
  double memory_t2_s = 100e-6;

  /// Pairs older than this are discarded (decohered beyond usefulness).
  double max_storage_s = 200e-6;

  /// QNIC memory slots per endpoint pair.
  std::size_t memory_slots = 8;

  [[nodiscard]] double photon_survival_probability() const;

  /// Probability both halves of a pair survive their fibers.
  [[nodiscard]] double pair_delivery_probability() const;

  /// One-way propagation delay over the fiber, seconds.
  [[nodiscard]] double propagation_delay_s() const;
};

}  // namespace ftl::qnet

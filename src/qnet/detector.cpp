#include "qnet/detector.hpp"

#include <cmath>

#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace ftl::qnet {

double chsh_win_with_detectors(double efficiency, double visibility) {
  FTL_ASSERT(efficiency >= 0.0 && efficiency <= 1.0);
  obs::registry().counter("qnet.detector.win_evals").inc();
  FTL_ASSERT(visibility >= 0.0 && visibility <= 1.0);
  const double w_q = 0.5 * (1.0 + visibility / std::sqrt(2.0));
  const double both = efficiency * efficiency;
  const double one = 2.0 * efficiency * (1.0 - efficiency);
  const double none = (1.0 - efficiency) * (1.0 - efficiency);
  // One-sided failure: a fair measurement outcome against an independent
  // shared bit — win probability exactly 1/2 on every input pair.
  return both * w_q + one * 0.5 + none * 0.75;
}

double breakeven_efficiency(double visibility) {
  obs::registry().counter("qnet.detector.breakeven_solves").inc();
  if (chsh_win_with_detectors(1.0, visibility) <= 0.75 + 1e-12) return 0.0;
  double lo = 0.0;
  double hi = 1.0;
  for (int i = 0; i < 80; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (chsh_win_with_detectors(mid, visibility) > 0.75) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace ftl::qnet

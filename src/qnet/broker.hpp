// Pair broker: discrete-event simulation of the continuous entanglement
// stream in Figure 2 feeding one pair of servers.
//
// The source emits pairs as a Poisson process; each half traverses a lossy
// fiber; surviving pairs are stored in bounded QNIC memory where they
// decohere; requests arrive and consume the freshest stored pair (freshest-
// first maximises residual visibility). The statistics answer the
// provisioning question of §3: what pair rate / storage budget keeps the
// quantum advantage alive for a given request rate?
#pragma once

#include <cstddef>

#include "qnet/config.hpp"
#include "util/rng.hpp"

namespace ftl::qnet {

struct BrokerStats {
  std::size_t requests = 0;
  /// Requests that found a live (non-expired) pair in memory.
  std::size_t pair_hits = 0;
  /// Pairs generated / delivered (both halves survived fiber).
  std::size_t pairs_generated = 0;
  std::size_t pairs_delivered = 0;
  /// Pairs dropped because memory was full / expired unused.
  std::size_t pairs_dropped_full = 0;
  std::size_t pairs_expired = 0;
  /// Pairs lost to fiber attenuation (at least one photon absorbed).
  std::size_t pairs_lost_fiber = 0;
  /// Pairs emitted before `duration_s` whose delivery was still traversing
  /// fiber when the simulation stopped.
  std::size_t pairs_in_flight = 0;
  /// Live pairs still stored in QNIC memory at the end of the run.
  std::size_t pairs_in_memory = 0;
  /// Mean storage age of consumed pairs, seconds.
  double mean_consumed_age_s = 0.0;
  /// Mean flipped-CHSH win probability over requests: consumed pairs
  /// contribute their post-storage value, misses fall back to the classical
  /// 0.75. This is the end-to-end "effective correlation quality".
  double mean_chsh_win = 0.0;

  [[nodiscard]] double hit_fraction() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(pair_hits) /
                               static_cast<double>(requests);
  }

  /// Exact pair-conservation identity at the stats boundary: every
  /// generated pair is accounted for (lost in fiber, still in flight, or
  /// delivered), and every delivered pair was consumed, expired, evicted,
  /// or is still in memory. Tests assert this after every run.
  [[nodiscard]] bool conservation_holds() const {
    return pairs_generated ==
               pairs_lost_fiber + pairs_in_flight + pairs_delivered &&
           pairs_delivered == pair_hits + pairs_expired + pairs_dropped_full +
                                  pairs_in_memory;
  }
};

/// Simulates `duration_s` of pair supply against Poisson request arrivals
/// at `request_rate_hz` (a request = one simultaneous decision by the two
/// endpoints, consuming one pair).
[[nodiscard]] BrokerStats simulate_pair_supply(const QnetConfig& cfg,
                                               double request_rate_hz,
                                               double duration_s,
                                               util::Rng& rng);

}  // namespace ftl::qnet

#include "qnet/config.hpp"

#include <cmath>

namespace ftl::qnet {

double QnetConfig::photon_survival_probability() const {
  return std::pow(10.0, -attenuation_db_per_km * fiber_km / 10.0);
}

double QnetConfig::pair_delivery_probability() const {
  const double p = photon_survival_probability();
  return p * p;
}

double QnetConfig::propagation_delay_s() const {
  return fiber_km * 1000.0 / fiber_speed_mps;
}

}  // namespace ftl::qnet

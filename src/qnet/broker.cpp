#include "qnet/broker.hpp"

#include <algorithm>
#include <deque>
#include <vector>

#include "qnet/decoherence.hpp"
#include "sim/engine.hpp"
#include "util/assert.hpp"

namespace ftl::qnet {

namespace {

/// Piecewise-linear lookup of the post-storage CHSH win probability, built
/// once per simulation (the exact density-matrix computation is too slow to
/// run per request).
class WinCurve {
 public:
  WinCurve(const QnetConfig& cfg, std::size_t samples = 128)
      : max_age_(cfg.max_storage_s), wins_(samples + 1) {
    for (std::size_t i = 0; i <= samples; ++i) {
      const double age =
          max_age_ * static_cast<double>(i) / static_cast<double>(samples);
      wins_[i] = chsh_win_after_storage(cfg.source_visibility, age, age,
                                        cfg.memory_t1_s, cfg.memory_t2_s);
    }
  }

  [[nodiscard]] double at(double age) const {
    if (age <= 0.0) return wins_.front();
    if (age >= max_age_) return wins_.back();
    const double pos = age / max_age_ * static_cast<double>(wins_.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    return wins_[lo] * (1.0 - frac) + wins_[lo + 1] * frac;
  }

 private:
  double max_age_;
  std::vector<double> wins_;
};

}  // namespace

BrokerStats simulate_pair_supply(const QnetConfig& cfg_in,
                                 double request_rate_hz, double duration_s,
                                 util::Rng& rng) {
  FTL_ASSERT(cfg_in.pair_rate_hz > 0.0 && request_rate_hz > 0.0);
  BrokerStats stats;
  // A pair older than its useful window wins *less* than the classical
  // fallback, so a sensible QNIC discards it; clamp the effective storage
  // limit accordingly.
  QnetConfig cfg = cfg_in;
  cfg.max_storage_s = std::min(
      cfg.max_storage_s,
      useful_storage_window_s(cfg.source_visibility, cfg.memory_t1_s,
                              cfg.memory_t2_s));
  FTL_ASSERT_MSG(cfg.max_storage_s > 0.0,
                 "source visibility too low for any quantum advantage");
  const WinCurve win_curve(cfg);
  const double deliver_p = cfg.pair_delivery_probability();
  const double delay = cfg.propagation_delay_s();

  sim::Engine engine;
  std::deque<double> memory;  // arrival times of stored pairs, oldest first
  double consumed_age_sum = 0.0;
  double win_sum = 0.0;

  // Drops pairs that have decohered past the configured storage window.
  auto evict_expired = [&](double now) {
    while (!memory.empty() && now - memory.front() > cfg.max_storage_s) {
      memory.pop_front();
      ++stats.pairs_expired;
    }
  };

  std::function<void()> generate_pair = [&] {
    ++stats.pairs_generated;
    if (rng.bernoulli(deliver_p)) {
      engine.schedule_in(delay, [&, gen_time = engine.now()] {
        (void)gen_time;
        ++stats.pairs_delivered;
        const double now = engine.now();
        evict_expired(now);
        if (memory.size() >= cfg.memory_slots) {
          memory.pop_front();  // overwrite the oldest (most decohered) pair
          ++stats.pairs_dropped_full;
        }
        memory.push_back(now);
      });
    }
    engine.schedule_in(rng.exponential(cfg.pair_rate_hz), generate_pair);
  };

  std::function<void()> request = [&] {
    const double now = engine.now();
    ++stats.requests;
    evict_expired(now);
    if (!memory.empty()) {
      // Freshest-first: the newest pair has the highest residual
      // visibility; older pairs stay for later (or expire).
      const double age = now - memory.back();
      memory.pop_back();
      ++stats.pair_hits;
      consumed_age_sum += age;
      win_sum += win_curve.at(age);
    } else {
      win_sum += 0.75;  // classical fallback strategy
    }
    engine.schedule_in(rng.exponential(request_rate_hz), request);
  };

  engine.schedule_in(rng.exponential(cfg.pair_rate_hz), generate_pair);
  engine.schedule_in(rng.exponential(request_rate_hz), request);
  engine.run_until(duration_s);

  if (stats.pair_hits > 0) {
    stats.mean_consumed_age_s =
        consumed_age_sum / static_cast<double>(stats.pair_hits);
  }
  if (stats.requests > 0) {
    stats.mean_chsh_win = win_sum / static_cast<double>(stats.requests);
  }
  return stats;
}

}  // namespace ftl::qnet

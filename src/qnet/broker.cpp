#include "qnet/broker.hpp"

#include <algorithm>
#include <deque>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "qnet/decoherence.hpp"
#include "sim/engine.hpp"
#include "util/assert.hpp"

namespace ftl::qnet {

BrokerStats simulate_pair_supply(const QnetConfig& cfg_in,
                                 double request_rate_hz, double duration_s,
                                 util::Rng& rng) {
  FTL_ASSERT(cfg_in.pair_rate_hz > 0.0 && request_rate_hz > 0.0);
  BrokerStats stats;

  const obs::ScopedSpan span("qnet.simulate_pair_supply", "qnet");
  obs::Counter& m_generated = obs::registry().counter("qnet.pairs.generated");
  obs::Counter& m_delivered = obs::registry().counter("qnet.pairs.delivered");
  obs::Counter& m_expired = obs::registry().counter("qnet.pairs.expired");
  obs::Counter& m_dropped_full =
      obs::registry().counter("qnet.pairs.dropped_full");
  obs::Counter& m_requests = obs::registry().counter("qnet.requests");
  obs::Counter& m_hits = obs::registry().counter("qnet.pair_hits");
  obs::Counter& m_misses = obs::registry().counter("qnet.pair_misses");
  // Residual correlation quality of consumed pairs: flipped-CHSH win
  // probability after storage decay (classical fallback is 0.75).
  obs::Histogram& m_chsh_win =
      obs::registry().histogram("qnet.consumed.chsh_win", 0.5, 1.0, 50);
  obs::Histogram& m_occupancy = obs::registry().histogram(
      "qnet.memory.occupancy", 0.0,
      static_cast<double>(cfg_in.memory_slots) + 1.0,
      std::min<std::size_t>(cfg_in.memory_slots + 1, 64));
  obs::Gauge& m_occupancy_hw =
      obs::registry().gauge("qnet.memory.occupancy.high_water");
  // A pair older than its useful window wins *less* than the classical
  // fallback, so a sensible QNIC discards it; clamp the effective storage
  // limit accordingly.
  QnetConfig cfg = cfg_in;
  cfg.max_storage_s = std::min(
      cfg.max_storage_s,
      useful_storage_window_s(cfg.source_visibility, cfg.memory_t1_s,
                              cfg.memory_t2_s));
  FTL_ASSERT_MSG(cfg.max_storage_s > 0.0,
                 "source visibility too low for any quantum advantage");
  const WinCurve win_curve(cfg.source_visibility, cfg.memory_t1_s,
                           cfg.memory_t2_s, cfg.max_storage_s);
  const double deliver_p = cfg.pair_delivery_probability();
  const double delay = cfg.propagation_delay_s();

  sim::Engine engine;
  std::deque<double> memory;  // arrival times of stored pairs, oldest first
  double consumed_age_sum = 0.0;
  double win_sum = 0.0;

  // Drops pairs that have decohered past the configured storage window.
  auto evict_expired = [&](double now) {
    while (!memory.empty() && now - memory.front() > cfg.max_storage_s) {
      memory.pop_front();
      ++stats.pairs_expired;
      m_expired.inc();
    }
  };

  std::function<void()> generate_pair = [&] {
    ++stats.pairs_generated;
    m_generated.inc();
    if (rng.bernoulli(deliver_p)) {
      // The pair survives fiber; it is "in flight" until the scheduled
      // delivery runs (pairs still traversing fiber at duration_s stay
      // counted as in-flight so conservation is exact at the boundary).
      ++stats.pairs_in_flight;
      engine.schedule_in(delay, [&, gen_time = engine.now()] {
        (void)gen_time;
        --stats.pairs_in_flight;
        ++stats.pairs_delivered;
        m_delivered.inc();
        const double now = engine.now();
        evict_expired(now);
        if (memory.size() >= cfg.memory_slots) {
          memory.pop_front();  // overwrite the oldest (most decohered) pair
          ++stats.pairs_dropped_full;
          m_dropped_full.inc();
        }
        memory.push_back(now);
        m_occupancy_hw.update_max(static_cast<double>(memory.size()));
      });
    } else {
      ++stats.pairs_lost_fiber;
    }
    engine.schedule_in(rng.exponential(cfg.pair_rate_hz), generate_pair);
  };

  std::function<void()> request = [&] {
    const double now = engine.now();
    ++stats.requests;
    m_requests.inc();
    evict_expired(now);
    m_occupancy.observe(static_cast<double>(memory.size()));
    if (!memory.empty()) {
      // Freshest-first: the newest pair has the highest residual
      // visibility; older pairs stay for later (or expire).
      const double age = now - memory.back();
      memory.pop_back();
      ++stats.pair_hits;
      m_hits.inc();
      consumed_age_sum += age;
      const double win = win_curve.at(age);
      win_sum += win;
      m_chsh_win.observe(win);
    } else {
      m_misses.inc();
      win_sum += 0.75;  // classical fallback strategy
    }
    engine.schedule_in(rng.exponential(request_rate_hz), request);
  };

  engine.schedule_in(rng.exponential(cfg.pair_rate_hz), generate_pair);
  engine.schedule_in(rng.exponential(request_rate_hz), request);
  engine.run_until(duration_s);

  stats.pairs_in_memory = memory.size();
  FTL_ASSERT_MSG(stats.conservation_holds(),
                 "pair-conservation identity violated at stats boundary");
  if (stats.pair_hits > 0) {
    stats.mean_consumed_age_s =
        consumed_age_sum / static_cast<double>(stats.pair_hits);
  }
  if (stats.requests > 0) {
    stats.mean_chsh_win = win_sum / static_cast<double>(stats.requests);
  }
  return stats;
}

}  // namespace ftl::qnet

// Concurrent live pair broker: the serving-path counterpart of
// simulate_pair_supply.
//
// Where the batch broker replays Figure 2 inside a discrete-event engine,
// LiveBroker holds real per-source pair pools that a producer advances
// continuously (Poisson emission, fiber loss, propagation delay) while any
// number of request threads consume pairs freshest-first. Expiry-aware
// eviction drops pairs whose storage age has left the useful T1/T2 window
// (the WinCurve math), admission control bounds the number of in-flight
// decisions, and every event feeds `qnet.live.*` metrics so a scrape of the
// daemon shows hit fraction, consumed age, and fallback rate live.
//
// Two clocks, one code path:
//  * live mode — start_producer() runs a refill thread against the broker's
//    monotonic clock; decide_now() consumes at wall-clock time. This is
//    what tools/ftlcoordd serves.
//  * stepped mode — callers advance virtual time explicitly via
//    produce_until()/decide(). Per-source RNG streams make every counter
//    deterministic in (seed, config, request schedule), independent of
//    thread interleaving as long as each source has one driver — the
//    property bench_ftlcoordd's CI-gated counters rely on.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "qnet/config.hpp"
#include "qnet/decoherence.hpp"
#include "util/rng.hpp"

namespace ftl::qnet {

struct LiveBrokerConfig {
  /// Physics of each source: emission rate, fiber, visibility, T1/T2.
  QnetConfig qnet;
  /// Independent pair sources (one pool, RNG stream, and emission process
  /// each). A deployment maps each coordinating endpoint pair to a source.
  std::size_t sources = 1;
  /// QNIC slots per source pool; 0 means use qnet.memory_slots.
  std::size_t pool_slots = 0;
  /// Admission bound: decisions in flight beyond this are rejected
  /// (bounded-queue backpressure instead of unbounded latency collapse).
  std::size_t max_pending = 1 << 16;

  [[nodiscard]] std::size_t slots_per_source() const {
    return pool_slots == 0 ? qnet.memory_slots : pool_slots;
  }
};

/// Aggregated broker statistics (sum over sources at a point in time).
struct LiveBrokerStats {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;       ///< consumed a live pair
  std::uint64_t fallbacks = 0;  ///< classical fallback (pool empty)
  std::uint64_t rejected = 0;   ///< refused by admission control
  std::uint64_t rounds_won = 0;

  std::uint64_t pairs_generated = 0;
  std::uint64_t pairs_delivered = 0;
  std::uint64_t pairs_lost_fiber = 0;
  std::uint64_t pairs_expired = 0;
  std::uint64_t pairs_dropped_full = 0;
  std::uint64_t pairs_in_memory = 0;

  double consumed_age_sum_s = 0.0;
  double win_sum = 0.0;

  [[nodiscard]] double hit_fraction() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(requests);
  }
  [[nodiscard]] double mean_consumed_age_s() const {
    return hits == 0 ? 0.0 : consumed_age_sum_s / static_cast<double>(hits);
  }
  [[nodiscard]] double mean_chsh_win() const {
    return requests == 0 ? 0.0
                         : win_sum / static_cast<double>(requests);
  }

  /// Same boundary identity as the batch BrokerStats: delivered pairs are
  /// consumed, expired, evicted, or still pooled. (Emission and arrival
  /// are resolved atomically in the live model, so there is no in-flight
  /// term: a pair "generated" here has already met its fiber fate.)
  [[nodiscard]] bool conservation_holds() const {
    return pairs_generated ==
               pairs_lost_fiber + pairs_delivered &&
           pairs_delivered == hits + pairs_expired + pairs_dropped_full +
                                  pairs_in_memory;
  }
};

class LiveBroker {
 public:
  /// One coordination decision. The broker simulates the endpoint pair's
  /// measurement: a consumed pair plays the flipped-CHSH round at its
  /// post-storage win probability, a miss falls back to the classical 0.75
  /// deterministic strategy.
  struct Decision {
    bool quantum = false;    ///< consumed a live pair
    bool round_won = false;  ///< sampled flipped-CHSH round outcome
    std::uint8_t output = 0;
    double win_probability = 0.75;
    double pair_age_s = 0.0;  ///< storage age of the consumed pair
  };

  LiveBroker(const LiveBrokerConfig& cfg, std::uint64_t seed);
  ~LiveBroker();

  LiveBroker(const LiveBroker&) = delete;
  LiveBroker& operator=(const LiveBroker&) = delete;

  // -- stepped mode (deterministic) -----------------------------------------

  /// Advances `source`'s Poisson emission process so every pair whose
  /// *arrival* time (emission + propagation delay) is <= now_s has been
  /// delivered into the pool or counted lost, then evicts expired pairs.
  void produce_until(std::size_t source, double now_s);

  /// Consumes the freshest live pair of `source` at time now_s (classical
  /// fallback when the pool is empty). `input` is the endpoint's game
  /// input bit.
  Decision decide(std::size_t source, std::uint8_t input, double now_s);

  // -- live mode ------------------------------------------------------------

  /// Seconds on the broker's monotonic clock since construction.
  [[nodiscard]] double now_s() const;

  /// Starts the background refill thread: every `period` it advances every
  /// source to now_s(). No-op when already running.
  void start_producer(std::chrono::microseconds period);
  void stop_producer();
  [[nodiscard]] bool producer_running() const;

  /// decide() at the current monotonic time.
  Decision decide_now(std::size_t source, std::uint8_t input) {
    return decide(source, input, now_s());
  }

  // -- admission control ----------------------------------------------------

  /// Reserves `n` in-flight decision slots; false (and `n` counted
  /// rejected) when the bound would be exceeded. Pair with release().
  [[nodiscard]] bool try_admit(std::size_t n);
  void release(std::size_t n);
  [[nodiscard]] std::size_t pending() const {
    return pending_.load(std::memory_order_relaxed);
  }

  // -- introspection --------------------------------------------------------

  [[nodiscard]] LiveBrokerStats stats() const;
  [[nodiscard]] const LiveBrokerConfig& config() const { return cfg_; }
  /// Effective storage limit: min(cfg.max_storage_s, useful T1/T2 window).
  [[nodiscard]] double max_storage_s() const { return max_storage_s_; }
  /// Post-storage win probability for a pair of the given age.
  [[nodiscard]] double win_at_age(double age_s) const {
    return win_curve_.at(age_s);
  }

 private:
  /// One pair source: emission process + bounded freshest-first pool.
  /// Padded to a cache line so per-source mutexes do not false-share.
  struct alignas(64) Source {
    std::mutex mu;
    std::vector<double> ring;  ///< arrival timestamps, oldest at `head`
    std::size_t head = 0;
    std::size_t count = 0;
    double next_emit_s = 0.0;
    util::Rng rng{0};
    // Per-source tallies guarded by mu; stats() sums them. Plain integers
    // keep the hot path free of extra atomics (the obs counters already
    // provide the lock-free live view).
    std::uint64_t generated = 0, delivered = 0, lost_fiber = 0, expired = 0,
                  dropped_full = 0, requests = 0, hits = 0, fallbacks = 0,
                  rounds_won = 0;
    double consumed_age_sum_s = 0.0;
    double win_sum = 0.0;
    /// Per-source pool-occupancy histogram (`qnet.live.pool_occupancy`
    /// labeled source=<i>), sampled after every arrival and consumption —
    /// the distribution, where the high-water gauge only keeps the max.
    obs::Histogram* occupancy = nullptr;
  };

  /// Drops pairs older than the storage window. Caller holds s.mu.
  void evict_expired_locked(Source& s, double now_s);

  /// Emission loop of produce_until with s.mu already held; decide() calls
  /// this so the pool is current as of the request time.
  void produce_locked(Source& s, double now_s);

  LiveBrokerConfig cfg_;
  double max_storage_s_;
  double deliver_p_;
  double delay_s_;
  WinCurve win_curve_;
  std::vector<std::unique_ptr<Source>> sources_;

  std::atomic<std::size_t> pending_{0};
  std::atomic<std::uint64_t> rejected_{0};

  std::chrono::steady_clock::time_point t0_;

  // Producer thread lifecycle.
  mutable std::mutex producer_mu_;
  std::condition_variable producer_cv_;
  std::thread producer_;
  bool producer_stop_ = false;
  bool producer_running_ = false;

  // Hoisted qnet.live.* metrics (lock-free writes on the hot path).
  obs::Counter& m_requests_;
  obs::Counter& m_hits_;
  obs::Counter& m_fallbacks_;
  obs::Counter& m_rejected_;
  obs::Counter& m_rounds_won_;
  obs::Counter& m_generated_;
  obs::Counter& m_delivered_;
  obs::Counter& m_lost_fiber_;
  obs::Counter& m_expired_;
  obs::Counter& m_dropped_full_;
  obs::Histogram& m_consumed_age_;
  obs::Histogram& m_pair_age_us_;
  obs::Histogram& m_chsh_win_;
  obs::Gauge& m_occupancy_hw_;
};

}  // namespace ftl::qnet

// Effect of QNIC storage on the usefulness of a stored Bell pair.
//
// While a pair waits in memory for an input to arrive (Figure 2), each half
// decoheres with its memory's T1/T2. This module computes the exact
// post-storage two-qubit state on the density-matrix simulator and the CHSH
// win probability it still supports — the quantity that decides whether the
// load balancer keeps any advantage (>(3/4) needs enough coherence).
#pragma once

#include <cstddef>
#include <vector>

#include "qcore/density.hpp"

namespace ftl::qnet {

/// State of a visibility-v0 Werner pair after its halves sat in memory for
/// storage_a and storage_b seconds (memories with the given T1/T2).
[[nodiscard]] qcore::Density pair_state_after_storage(double v0,
                                                      double storage_a_s,
                                                      double storage_b_s,
                                                      double t1_s,
                                                      double t2_s);

/// Win probability of the flipped-CHSH load-balancing game using the
/// Tsirelson-optimal angles on the post-storage state. Classical baseline
/// is 0.75; values below it mean the stored pair is no longer useful.
[[nodiscard]] double chsh_win_after_storage(double v0, double storage_a_s,
                                            double storage_b_s, double t1_s,
                                            double t2_s);

/// Longest storage time (applied to both halves) at which the pair still
/// beats the classical 0.75, found by bisection; returns 0 if even fresh
/// pairs lose (v0 too small).
[[nodiscard]] double useful_storage_window_s(double v0, double t1_s,
                                             double t2_s);

/// Piecewise-linear lookup of the post-storage CHSH win probability
/// (both halves stored for `age` seconds), built once per broker: the exact
/// density-matrix computation behind chsh_win_after_storage is far too slow
/// to run per request, and the curve is smooth enough that 128 samples keep
/// the interpolation error well below the physics noise. Shared by the
/// batch simulate_pair_supply and the serving-path LiveBroker.
class WinCurve {
 public:
  WinCurve(double v0, double t1_s, double t2_s, double max_age_s,
           std::size_t samples = 128);

  /// Win probability for a pair stored `age` seconds (clamped to the
  /// sampled range; ages past max_age_s return the terminal value).
  [[nodiscard]] double at(double age) const {
    if (age <= 0.0) return wins_.front();
    if (age >= max_age_) return wins_.back();
    const double pos = age / max_age_ * static_cast<double>(wins_.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    return wins_[lo] * (1.0 - frac) + wins_[lo + 1] * frac;
  }

  [[nodiscard]] double max_age_s() const { return max_age_; }

 private:
  double max_age_;
  std::vector<double> wins_;
};

}  // namespace ftl::qnet

// Batched CHSH rounds on stored (decohered) pairs.
//
// The Fig-2/Fig-4 pipeline plays the flipped CHSH game over pairs that sat
// in QNIC memory before use. Re-deriving the post-storage density matrix
// per round is wasted work: the storage profile fixes one two-qubit state,
// so we collapse it into a correlate::OutcomeTable once and then sample
// rounds at table speed. A million rounds costs one density-matrix solve
// plus a million uniform draws.
#pragma once

#include <cstdint>

#include "correlate/batched.hpp"
#include "util/rng.hpp"

namespace ftl::qnet {

/// Outcome table of the Tsirelson-angle flipped-CHSH strategy measured on
/// the post-storage state of a visibility-v0 Werner pair whose halves sat
/// in memory (T1/T2) for storage_a_s and storage_b_s seconds. This is the
/// only density-matrix work in the batched path.
[[nodiscard]] correlate::OutcomeTable outcome_table_after_storage(
    double v0, double storage_a_s, double storage_b_s, double t1_s,
    double t2_s);

struct BatchedRounds {
  std::uint64_t rounds = 0;
  std::uint64_t wins = 0;

  [[nodiscard]] double win_fraction() const {
    return rounds == 0 ? 0.0
                       : static_cast<double>(wins) / static_cast<double>(rounds);
  }
};

/// Plays `rounds` flipped-CHSH rounds (uniform inputs, win condition
/// a XOR b = NOT(x AND y)) by sampling the table. Consumes 2 uniform input
/// draws + 1 outcome draw per round, all from `rng`.
[[nodiscard]] BatchedRounds play_flipped_chsh_rounds(
    const correlate::OutcomeTable& table, std::uint64_t rounds, util::Rng& rng);

}  // namespace ftl::qnet

// The Figure-2 timing argument, made quantitative.
//
// With pre-shared entangled qubits a server decides the moment an input
// arrives; coordinating classically costs at least one inter-server RTT.
// When QNIC storage is unavailable, §3's alternative is to time qubit
// arrival *after* the input: the decision then waits for the next pair,
// which for a Poisson source is an Exp(rate) residual — still independent
// of the inter-server distance (not limited by the speed of light).
#pragma once

namespace ftl::qnet {

struct TimingModel {
  /// Distance between the two coordinating servers, meters.
  double inter_server_distance_m = 100.0;
  /// Distance from the entanglement source to each server, meters.
  double source_distance_m = 50.0;
  /// Signal speed in fiber, m/s (~2/3 c).
  double fiber_speed_mps = 2.0e8;
  /// Local processing (measurement + NIC) per decision, seconds.
  double processing_s = 1.0e-6;
};

/// Decision latency if the servers coordinate classically: one round trip
/// between them plus processing.
[[nodiscard]] double classical_coordination_latency_s(const TimingModel& m);

/// Decision latency with a pre-shared stored qubit: processing only.
[[nodiscard]] double quantum_decision_latency_s(const TimingModel& m);

/// Expected decision latency without storage, waiting for the next pair
/// from a Poisson source of the given rate (mean residual 1/rate), plus
/// processing. Independent of inter_server_distance_m.
[[nodiscard]] double quantum_no_storage_latency_s(const TimingModel& m,
                                                  double pair_rate_hz);

}  // namespace ftl::qnet

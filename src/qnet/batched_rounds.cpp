#include "qnet/batched_rounds.hpp"

#include "games/chsh.hpp"
#include "qnet/decoherence.hpp"

namespace ftl::qnet {

correlate::OutcomeTable outcome_table_after_storage(double v0,
                                                    double storage_a_s,
                                                    double storage_b_s,
                                                    double t1_s, double t2_s) {
  const games::QuantumStrategy strategy = games::chsh_strategy_with_state(
      pair_state_after_storage(v0, storage_a_s, storage_b_s, t1_s, t2_s),
      games::chsh_optimal_angles(), /*flip_bob_output=*/true);
  return correlate::OutcomeTable::from_strategy(strategy);
}

BatchedRounds play_flipped_chsh_rounds(const correlate::OutcomeTable& table,
                                       std::uint64_t rounds, util::Rng& rng) {
  BatchedRounds out;
  out.rounds = rounds;
  for (std::uint64_t i = 0; i < rounds; ++i) {
    const int x = rng.bernoulli(0.5) ? 1 : 0;
    const int y = rng.bernoulli(0.5) ? 1 : 0;
    const auto [a, b] = table.sample(x, y, rng);
    const int target = (x == 1 && y == 1) ? 0 : 1;
    out.wins += static_cast<std::uint64_t>((a ^ b) == target);
  }
  return out;
}

}  // namespace ftl::qnet

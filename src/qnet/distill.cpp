#include "qnet/distill.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "qcore/gates.hpp"
#include "util/assert.hpp"

namespace ftl::qnet {

DistillResult bbpssw_round(const qcore::Density& pair1,
                           const qcore::Density& pair2) {
  FTL_ASSERT(pair1.num_qubits() == 2 && pair2.num_qubits() == 2);
  const obs::ScopedSpan span("qnet.bbpssw_round", "qnet");
  obs::registry().counter("qnet.distill.rounds").inc();
  // Qubit layout: [0]=A1, [1]=B1 (kept), [2]=A2, [3]=B2 (sacrificed).
  qcore::Density rho = pair1.tensor(pair2);

  // Bilateral CNOTs: Alice controls A1 -> A2, Bob controls B1 -> B2.
  rho.apply2(qcore::gates::CNOT(), 0, 2);
  rho.apply2(qcore::gates::CNOT(), 1, 3);

  // Coincidence measurement of the sacrificed pair in the computational
  // basis; keep on equal outcomes.
  const qcore::CMat comp = qcore::CMat::identity(2);
  DistillResult out{0.0, qcore::Density::maximally_mixed(2), 0.0};
  qcore::CMat kept(4, 4);
  double p_success = 0.0;
  for (int o = 0; o < 2; ++o) {
    const double p2 = rho.outcome_probability(2, comp, o);
    if (p2 <= 1e-15) continue;
    const auto [after2, chk2] = rho.collapse(2, comp, o);
    (void)chk2;
    const double p3 = after2.outcome_probability(3, comp, o);
    if (p3 <= 1e-15) continue;
    const auto [after3, chk3] = after2.collapse(3, comp, o);
    (void)chk3;
    const double branch_p = p2 * p3;
    p_success += branch_p;
    kept += after3.partial_trace({2, 3}).matrix() * qcore::Cx{branch_p, 0.0};
  }
  FTL_ASSERT_MSG(p_success > 1e-12, "distillation cannot succeed here");
  kept *= qcore::Cx{1.0 / p_success, 0.0};

  out.success_probability = p_success;
  out.state = qcore::Density::from_matrix(std::move(kept));
  out.fidelity = out.state.fidelity_with(qcore::StateVec::bell_phi_plus());
  obs::registry()
      .histogram("qnet.distill.fidelity", 0.0, 1.0, 50)
      .observe(out.fidelity);
  return out;
}

DistillResult dejmps_round(const qcore::Density& pair1,
                           const qcore::Density& pair2) {
  // Bilateral basis rotation: Alice Rx(pi/2) on her halves, Bob Rx(-pi/2)
  // on his, then the BBPSSW circuit. The rotation maps Z errors to X
  // errors, which the computational-basis coincidence test detects.
  auto rotate = [](qcore::Density rho) {
    rho.apply1(qcore::gates::Rx(M_PI / 2.0), 0);
    rho.apply1(qcore::gates::Rx(-M_PI / 2.0), 1);
    return rho;
  };
  return bbpssw_round(rotate(pair1), rotate(pair2));
}

double werner_distill_success(double f) {
  FTL_ASSERT(f >= 0.0 && f <= 1.0);
  const double g = (1.0 - f) / 3.0;
  return f * f + 2.0 * f * g + 5.0 * g * g;
}

double werner_distilled_fidelity(double f) {
  const double g = (1.0 - f) / 3.0;
  return (f * f + g * g) / werner_distill_success(f);
}

RecurrenceResult distill_to_target(double f0, double target, int max_rounds) {
  FTL_ASSERT(target > 0.5 && target < 1.0);
  RecurrenceResult r;
  r.fidelity = f0;
  r.expected_raw_pairs = 1.0;
  if (f0 <= 0.5) return r;  // below the distillation threshold: hopeless
  for (int round = 0; round < max_rounds && r.fidelity < target; ++round) {
    const double p = werner_distill_success(r.fidelity);
    // Each round consumes two inputs of the previous level and succeeds
    // with probability p, so raw cost multiplies by 2/p.
    r.expected_raw_pairs *= 2.0 / p;
    r.fidelity = werner_distilled_fidelity(r.fidelity);
    ++r.rounds;
  }
  r.reached_target = r.fidelity >= target;
  return r;
}

}  // namespace ftl::qnet

#include "qnet/timing.hpp"

#include "util/assert.hpp"

namespace ftl::qnet {

double classical_coordination_latency_s(const TimingModel& m) {
  return 2.0 * m.inter_server_distance_m / m.fiber_speed_mps + m.processing_s;
}

double quantum_decision_latency_s(const TimingModel& m) {
  return m.processing_s;
}

double quantum_no_storage_latency_s(const TimingModel& m,
                                    double pair_rate_hz) {
  FTL_ASSERT(pair_rate_hz > 0.0);
  return 1.0 / pair_rate_hz + m.processing_s;
}

}  // namespace ftl::qnet

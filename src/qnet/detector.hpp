// Detector inefficiency: the sharpest of §3's "error margins".
//
// Real single-photon detectors fire with efficiency eta < 1. The failure
// mode is nastier than it looks: when one endpoint's detector fails it
// falls back to its classical shared-randomness bit, but the *other*
// endpoint (whose detector fired) has no way to know — its measurement
// outcome is now uncorrelated with the partner's fallback bit, and the
// round wins only 50% of the time, WORSE than the all-classical 75%.
// Per-round win probability:
//
//   w(eta) = eta^2 * w_q + 2 eta (1 - eta) * 1/2 + (1 - eta)^2 * 3/4
//
// with w_q = (1 + v/sqrt2)/2. Setting w(eta) > 3/4 gives a hard
// deployment threshold: eta > 1 / (2 (2 w_q - 3/2) + 1)... numerically
// ~0.854 for ideal pairs. Below that efficiency the "quantum" load
// balancer should be turned off — a constraint the paper's architecture
// section does not spell out, surfaced here with the model to measure it.
#pragma once

namespace ftl::qnet {

struct DetectorModel {
  /// Probability a measurement attempt yields an outcome.
  double efficiency = 1.0;
};

/// Per-round flipped-CHSH win probability with independent detector
/// failures at both endpoints (failed endpoints use the classical shared
/// bit; partners cannot tell).
[[nodiscard]] double chsh_win_with_detectors(double efficiency,
                                             double visibility);

/// Minimum detector efficiency at which the quantum scheme still beats the
/// classical 3/4, for pairs of the given visibility (bisection; 0 if even
/// perfect detectors lose, i.e. visibility <= 1/sqrt2).
[[nodiscard]] double breakeven_efficiency(double visibility);

}  // namespace ftl::qnet

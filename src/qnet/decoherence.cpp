#include "qnet/decoherence.hpp"

#include "games/chsh.hpp"
#include "qcore/channels.hpp"

namespace ftl::qnet {

qcore::Density pair_state_after_storage(double v0, double storage_a_s,
                                        double storage_b_s, double t1_s,
                                        double t2_s) {
  qcore::Density rho = qcore::Density::werner(v0);
  const auto apply_storage = [&](double t, std::size_t qubit) {
    for (const auto& ch : qcore::storage_decoherence(t, t1_s, t2_s)) {
      rho.apply_channel(ch, qubit);
    }
  };
  apply_storage(storage_a_s, 0);
  apply_storage(storage_b_s, 1);
  return rho;
}

double chsh_win_after_storage(double v0, double storage_a_s,
                              double storage_b_s, double t1_s, double t2_s) {
  qcore::Density rho =
      pair_state_after_storage(v0, storage_a_s, storage_b_s, t1_s, t2_s);
  const games::QuantumStrategy strat = games::chsh_strategy_with_state(
      std::move(rho), games::chsh_optimal_angles(), /*flip_bob_output=*/true);
  return strat.value(games::chsh_game(/*flipped=*/true));
}

double useful_storage_window_s(double v0, double t1_s, double t2_s) {
  const double classical = 0.75;
  if (chsh_win_after_storage(v0, 0.0, 0.0, t1_s, t2_s) <= classical + 1e-12) {
    return 0.0;
  }
  double lo = 0.0;
  double hi = t2_s;
  // Grow hi until the pair is useless (bounded to avoid an infinite loop).
  for (int i = 0; i < 60 &&
                  chsh_win_after_storage(v0, hi, hi, t1_s, t2_s) > classical;
       ++i) {
    hi *= 2.0;
  }
  for (int i = 0; i < 80; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (chsh_win_after_storage(v0, mid, mid, t1_s, t2_s) > classical) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

WinCurve::WinCurve(double v0, double t1_s, double t2_s, double max_age_s,
                   std::size_t samples)
    : max_age_(max_age_s), wins_(samples + 1) {
  for (std::size_t i = 0; i <= samples; ++i) {
    const double age =
        max_age_ * static_cast<double>(i) / static_cast<double>(samples);
    wins_[i] = chsh_win_after_storage(v0, age, age, t1_s, t2_s);
  }
}

}  // namespace ftl::qnet

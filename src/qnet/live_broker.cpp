#include "qnet/live_broker.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ftl::qnet {

LiveBroker::LiveBroker(const LiveBrokerConfig& cfg, std::uint64_t seed)
    : cfg_(cfg),
      max_storage_s_(std::min(
          cfg.qnet.max_storage_s,
          useful_storage_window_s(cfg.qnet.source_visibility,
                                  cfg.qnet.memory_t1_s, cfg.qnet.memory_t2_s))),
      deliver_p_(cfg.qnet.pair_delivery_probability()),
      delay_s_(cfg.qnet.propagation_delay_s()),
      win_curve_(cfg.qnet.source_visibility, cfg.qnet.memory_t1_s,
                 cfg.qnet.memory_t2_s, max_storage_s_),
      t0_(std::chrono::steady_clock::now()),
      m_requests_(obs::registry().counter("qnet.live.requests")),
      m_hits_(obs::registry().counter("qnet.live.hits")),
      m_fallbacks_(obs::registry().counter("qnet.live.fallbacks")),
      m_rejected_(obs::registry().counter("qnet.live.rejected")),
      m_rounds_won_(obs::registry().counter("qnet.live.rounds_won")),
      m_generated_(obs::registry().counter("qnet.live.pairs.generated")),
      m_delivered_(obs::registry().counter("qnet.live.pairs.delivered")),
      m_lost_fiber_(obs::registry().counter("qnet.live.pairs.lost_fiber")),
      m_expired_(obs::registry().counter("qnet.live.pairs.expired")),
      m_dropped_full_(obs::registry().counter("qnet.live.pairs.dropped_full")),
      m_consumed_age_(obs::registry().histogram("qnet.live.consumed.age_s",
                                                0.0, max_storage_s_, 50)),
      // Age-at-consumption in microseconds: the deadline-attribution view
      // of the same physics consumed.age_s records in seconds — a scrape
      // can read pair staleness on the same scale as the stage latencies.
      m_pair_age_us_(obs::registry().histogram(
          "qnet.live.pair_age_us", 0.0, max_storage_s_ * 1e6, 50)),
      m_chsh_win_(obs::registry().histogram("qnet.live.chsh_win", 0.5, 1.0,
                                            50)),
      m_occupancy_hw_(
          obs::registry().gauge("qnet.live.pool.occupancy.high_water")) {
  FTL_ASSERT_MSG(cfg.sources > 0, "LiveBroker needs at least one source");
  FTL_ASSERT_MSG(cfg.qnet.pair_rate_hz > 0.0, "pair rate must be positive");
  FTL_ASSERT_MSG(max_storage_s_ > 0.0,
                 "source visibility too low for any quantum advantage");
  util::Rng master(seed);
  const std::size_t slots = cfg_.slots_per_source();
  sources_.reserve(cfg.sources);
  for (std::size_t i = 0; i < cfg.sources; ++i) {
    auto s = std::make_unique<Source>();
    s->ring.resize(slots);
    s->rng = master.split(i);
    s->next_emit_s = s->rng.exponential(cfg_.qnet.pair_rate_hz);
    s->occupancy = &obs::registry().histogram(
        "qnet.live.pool_occupancy", 0.0,
        static_cast<double>(std::max<std::size_t>(slots, 1)),
        std::clamp<std::size_t>(slots, 1, 64),
        obs::Labels{{"source", std::to_string(i)}});
    sources_.push_back(std::move(s));
  }
}

LiveBroker::~LiveBroker() { stop_producer(); }

double LiveBroker::now_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
      .count();
}

void LiveBroker::evict_expired_locked(Source& s, double now_s) {
  const std::size_t cap = s.ring.size();
  while (s.count > 0 && now_s - s.ring[s.head] > max_storage_s_) {
    s.head = (s.head + 1) % cap;
    --s.count;
    ++s.expired;
    m_expired_.inc();
  }
}

void LiveBroker::produce_until(std::size_t source, double now_s) {
  FTL_ASSERT(source < sources_.size());
  Source& s = *sources_[source];
  const std::lock_guard<std::mutex> lock(s.mu);
  produce_locked(s, now_s);
}

void LiveBroker::produce_locked(Source& s, double now_s) {
  const std::size_t cap = s.ring.size();
  // Emissions are resolved at their *arrival* deadline so the pool only
  // ever holds pairs that have fully traversed the fiber; a pair between
  // emission and arrival is implicit in next_emit_s.
  while (s.next_emit_s + delay_s_ <= now_s) {
    ++s.generated;
    m_generated_.inc();
    if (s.rng.bernoulli(deliver_p_)) {
      ++s.delivered;
      m_delivered_.inc();
      const double arrival = s.next_emit_s + delay_s_;
      // Pairs already out of the storage window at this arrival's time
      // expired before the new pair landed — count them as expired, not as
      // capacity drops (only a genuinely full pool of live pairs drops).
      evict_expired_locked(s, arrival);
      // Arrival-ordered insert at the tail; drop the oldest (most
      // decohered) pair when the QNIC is full.
      if (s.count == cap) {
        s.head = (s.head + 1) % cap;
        --s.count;
        ++s.dropped_full;
        m_dropped_full_.inc();
      }
      s.ring[(s.head + s.count) % cap] = arrival;
      ++s.count;
      m_occupancy_hw_.update_max(static_cast<double>(s.count));
      s.occupancy->observe(static_cast<double>(s.count));
    } else {
      ++s.lost_fiber;
      m_lost_fiber_.inc();
    }
    s.next_emit_s += s.rng.exponential(cfg_.qnet.pair_rate_hz);
  }
  evict_expired_locked(s, now_s);
}

LiveBroker::Decision LiveBroker::decide(std::size_t source, std::uint8_t input,
                                        double now_s) {
  FTL_ASSERT(source < sources_.size());
  Source& s = *sources_[source];
  Decision d;
  const std::lock_guard<std::mutex> lock(s.mu);
  ++s.requests;
  m_requests_.inc();
  // Resolve emissions up to the request time before consuming: the pool
  // must reflect every pair that has physically arrived by now_s, not just
  // those the producer thread's last tick saw. (Idempotent in stepped mode,
  // where callers produce and decide at the same virtual time; essential in
  // live mode, where the storage window is far shorter than any sane refill
  // period.) Ends with expiry eviction, so the freshest-first pop below
  // only ever sees live pairs.
  produce_locked(s, now_s);
  if (s.count > 0) {
    // Freshest-first: the newest pair carries the highest residual
    // visibility; older pairs stay for later requests (or expire).
    const std::size_t cap = s.ring.size();
    --s.count;
    const double age =
        std::max(0.0, now_s - s.ring[(s.head + s.count) % cap]);
    d.quantum = true;
    d.pair_age_s = age;
    d.win_probability = win_curve_.at(age);
    d.output = static_cast<std::uint8_t>(s.rng.bernoulli(0.5) ? 1 : 0);
    ++s.hits;
    s.consumed_age_sum_s += age;
    m_hits_.inc();
    m_consumed_age_.observe(age);
    m_pair_age_us_.observe(age * 1e6);
    s.occupancy->observe(static_cast<double>(s.count));
  } else {
    // Classical fallback: the pre-agreed deterministic strategy (output
    // your input) wins the flipped-CHSH game with probability 3/4.
    d.quantum = false;
    d.win_probability = 0.75;
    d.output = static_cast<std::uint8_t>(input & 1u);
    ++s.fallbacks;
    m_fallbacks_.inc();
  }
  d.round_won = s.rng.bernoulli(d.win_probability);
  if (d.round_won) {
    ++s.rounds_won;
    m_rounds_won_.inc();
  }
  s.win_sum += d.win_probability;
  m_chsh_win_.observe(d.win_probability);
  return d;
}

void LiveBroker::start_producer(std::chrono::microseconds period) {
  const std::lock_guard<std::mutex> lock(producer_mu_);
  if (producer_running_) return;
  producer_stop_ = false;
  producer_running_ = true;
  producer_ = std::thread([this, period] {
    std::unique_lock<std::mutex> lk(producer_mu_);
    while (!producer_stop_) {
      lk.unlock();
      const double now = now_s();
      for (std::size_t i = 0; i < sources_.size(); ++i) {
        produce_until(i, now);
      }
      lk.lock();
      producer_cv_.wait_for(lk, period, [this] { return producer_stop_; });
    }
  });
}

void LiveBroker::stop_producer() {
  std::thread joinable;
  {
    const std::lock_guard<std::mutex> lock(producer_mu_);
    if (!producer_running_) return;
    producer_stop_ = true;
    producer_cv_.notify_all();
    joinable = std::move(producer_);
    producer_running_ = false;
  }
  joinable.join();
}

bool LiveBroker::producer_running() const {
  const std::lock_guard<std::mutex> lock(producer_mu_);
  return producer_running_;
}

bool LiveBroker::try_admit(std::size_t n) {
  const std::size_t prev = pending_.fetch_add(n, std::memory_order_relaxed);
  if (prev + n > cfg_.max_pending) {
    pending_.fetch_sub(n, std::memory_order_relaxed);
    rejected_.fetch_add(n, std::memory_order_relaxed);
    m_rejected_.inc(n);
    return false;
  }
  return true;
}

void LiveBroker::release(std::size_t n) {
  pending_.fetch_sub(n, std::memory_order_relaxed);
}

LiveBrokerStats LiveBroker::stats() const {
  LiveBrokerStats out;
  out.rejected = rejected_.load(std::memory_order_relaxed);
  for (const auto& sp : sources_) {
    Source& s = *sp;
    const std::lock_guard<std::mutex> lock(s.mu);
    out.requests += s.requests;
    out.hits += s.hits;
    out.fallbacks += s.fallbacks;
    out.rounds_won += s.rounds_won;
    out.pairs_generated += s.generated;
    out.pairs_delivered += s.delivered;
    out.pairs_lost_fiber += s.lost_fiber;
    out.pairs_expired += s.expired;
    out.pairs_dropped_full += s.dropped_full;
    out.pairs_in_memory += s.count;
    out.consumed_age_sum_s += s.consumed_age_sum_s;
    out.win_sum += s.win_sum;
  }
  return out;
}

}  // namespace ftl::qnet

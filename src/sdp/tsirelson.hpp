// Quantum value of two-player XOR games via Tsirelson's theorem.
//
// Tsirelson showed that the optimal quantum bias of an XOR game equals the
// optimum of a semidefinite program: maximise sum_xy M_xy <u_x, v_y> over
// unit vectors u_x, v_y (dimension |X|+|Y| suffices), where
// M_xy = pi(x,y) * (-1)^{f(x,y)} encodes the input distribution and the
// win predicate. The paper computes these values with Toqito; this module
// is our from-scratch replacement.
//
// We solve the SDP in its Burer–Monteiro factorised form: a Gram problem
// max <C, R R^T> over matrices R with unit rows, optimised by exact block
// coordinate ascent on each row (each row update is the closed-form
// conditional optimum). With full rank (r = n) the factorisation is lossless
// and, with random restarts, the method reliably reaches the global optimum
// of these tiny SDPs; we validate against closed-form game values (CHSH
// bias = 1/sqrt(2), etc.) in the test suite.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace ftl::sdp {

/// Dense real symmetric cost matrix for the Gram problem.
class SymMatrix {
 public:
  explicit SymMatrix(std::size_t n) : n_(n), a_(n * n, 0.0) {}

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] double& at(std::size_t i, std::size_t j) { return a_[i * n_ + j]; }
  [[nodiscard]] double at(std::size_t i, std::size_t j) const {
    return a_[i * n_ + j];
  }

 private:
  std::size_t n_;
  std::vector<double> a_;
};

struct GramOptions {
  /// Factor rank; 0 means full rank n (lossless factorisation).
  std::size_t rank = 0;
  /// Independent random restarts; the best objective wins.
  int restarts = 8;
  /// Coordinate-ascent sweeps per restart.
  int max_sweeps = 500;
  /// Stop a restart when a full sweep improves the objective by less.
  double tol = 1e-10;
  std::uint64_t seed = 12345;
  /// Optional warm start: when `warm_rows.size() == n`, restart 0 begins
  /// from these rows (renormalised, padded/truncated to `rank`) instead of
  /// random ones; the remaining restarts stay random. Adjacent games in a
  /// Fig-3 sweep differ in a single predicate entry, so the previous
  /// game's Gram rows sit near the new optimum and converge in a handful
  /// of sweeps (counted by sdp.gram.warm_starts / sdp.gram.sweeps).
  std::vector<std::vector<double>> warm_rows;
};

struct GramResult {
  /// max sum_{i,j} C_ij <r_i, r_j> with unit rows r_i.
  double value = 0.0;
  /// The optimal unit row vectors (size n x rank).
  std::vector<std::vector<double>> rows;
  int sweeps_used = 0;
  bool converged = false;
};

/// Maximises <C, X> over PSD X with unit diagonal (C symmetric; its diagonal
/// is ignored since X_ii = 1 contributes a constant, which is *not* included
/// in `value`).
[[nodiscard]] GramResult max_gram(const SymMatrix& c, const GramOptions& opts = {});

struct XorBiasResult {
  /// Optimal quantum bias: E[win] - E[lose] = 2*P(win) - 1.
  double bias = 0.0;
  /// Tsirelson vectors realising the bias.
  std::vector<std::vector<double>> alice;
  std::vector<std::vector<double>> bob;
  bool converged = false;
};

/// Quantum bias of the XOR game with cost matrix m[x][y] = pi(x,y) *
/// (-1)^{f(x,y)}. Win probability = (1 + bias) / 2.
[[nodiscard]] XorBiasResult xor_quantum_bias(
    const std::vector<std::vector<double>>& m, const GramOptions& opts = {});

}  // namespace ftl::sdp

#include "sdp/dense.hpp"

#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace ftl::sdp {

std::vector<double> solve_linear(RMat a, std::vector<double> b) {
  const std::size_t n = a.rows();
  FTL_ASSERT(a.cols() == n && b.size() == n);
  obs::registry().counter("sdp.dense.solves").inc();
  static obs::Histogram& solve_us = obs::registry().histogram(
      "sdp.dense.solve_us", 0.0, 1000.0, 50);
  const obs::ScopedHistogramTimer timer(solve_us);
  // Forward elimination with partial pivoting.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a.at(r, col)) > std::abs(a.at(pivot, col))) pivot = r;
    }
    FTL_ASSERT_MSG(std::abs(a.at(pivot, col)) > 1e-300,
                   "singular linear system");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a.at(col, c), a.at(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    const double inv = 1.0 / a.at(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a.at(r, col) * inv;
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a.at(r, c) -= f * a.at(col, c);
      b[r] -= f * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double s = b[i];
    for (std::size_t c = i + 1; c < n; ++c) s -= a.at(i, c) * x[c];
    x[i] = s / a.at(i, i);
  }
  return x;
}

}  // namespace ftl::sdp

// Small dense real linear algebra for the interior-point solver.
#pragma once

#include <vector>

namespace ftl::sdp {

/// Dense row-major real matrix, sized for the tiny systems the NPA barrier
/// solves (tens of rows).
class RMat {
 public:
  RMat() = default;
  RMat(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), a_(rows * cols, 0.0) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] double& at(std::size_t r, std::size_t c) {
    return a_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return a_[r * cols_ + c];
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> a_;
};

/// Solves A x = b by Gaussian elimination with partial pivoting. Asserts
/// on (numerically) singular systems.
[[nodiscard]] std::vector<double> solve_linear(RMat a, std::vector<double> b);

}  // namespace ftl::sdp

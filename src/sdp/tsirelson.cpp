#include "sdp/tsirelson.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace ftl::sdp {

namespace {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double vec_norm(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }

/// Objective sum_{i != j} C_ij <r_i, r_j>.
double objective(const SymMatrix& c,
                 const std::vector<std::vector<double>>& rows) {
  const std::size_t n = c.size();
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      s += c.at(i, j) * dot(rows[i], rows[j]);
    }
  }
  return s;
}

void random_unit_rows(std::vector<std::vector<double>>& rows, std::size_t rank,
                      ftl::util::Rng& rng) {
  for (auto& r : rows) {
    r.resize(rank);
    double n2;
    do {
      for (double& x : r) x = rng.normal();
      n2 = vec_norm(r);
    } while (n2 < 1e-12);
    for (double& x : r) x /= n2;
  }
}

}  // namespace

GramResult max_gram(const SymMatrix& c, const GramOptions& opts) {
  const std::size_t n = c.size();
  FTL_ASSERT(n >= 1);
  const obs::ScopedSpan span("sdp.max_gram", "sdp");
  obs::registry().counter("sdp.gram.solves").inc();
  obs::Counter& m_sweeps = obs::registry().counter("sdp.gram.sweeps");
  const std::size_t rank = opts.rank == 0 ? n : opts.rank;
  ftl::util::Rng rng(opts.seed);

  GramResult best;
  best.value = -1e300;

  const bool have_warm = opts.warm_rows.size() == n;
  if (have_warm) obs::registry().counter("sdp.gram.warm_starts").inc();

  std::vector<std::vector<double>> rows(n);
  std::vector<double> grad(rank);
  for (int restart = 0; restart < opts.restarts; ++restart) {
    if (restart == 0 && have_warm) {
      // Restart 0 resumes from the caller's rows; rows that are too short
      // are zero-padded, degenerate (near-zero) rows fall back to random.
      for (std::size_t i = 0; i < n; ++i) {
        rows[i].assign(rank, 0.0);
        const auto& w = opts.warm_rows[i];
        for (std::size_t k = 0; k < std::min(rank, w.size()); ++k) {
          rows[i][k] = w[k];
        }
        const double nrm = vec_norm(rows[i]);
        if (nrm < 1e-12) {
          std::vector<std::vector<double>> one(1);
          random_unit_rows(one, rank, rng);
          rows[i] = std::move(one.front());
        } else {
          for (double& x : rows[i]) x /= nrm;
        }
      }
    } else {
      random_unit_rows(rows, rank, rng);
    }
    double prev = objective(c, rows);
    int sweep = 0;
    bool converged = false;
    for (; sweep < opts.max_sweeps; ++sweep) {
      // Exact block-coordinate step: the conditional optimum for row i with
      // all others fixed is the normalised gradient g_i = 2 sum_j C_ij r_j
      // (symmetric C; the diagonal term only rescales r_i and is ignored
      // because rows stay unit-norm).
      for (std::size_t i = 0; i < n; ++i) {
        std::fill(grad.begin(), grad.end(), 0.0);
        for (std::size_t j = 0; j < n; ++j) {
          if (j == i) continue;
          const double cij = c.at(i, j) + c.at(j, i);
          if (cij == 0.0) continue;
          const auto& rj = rows[j];
          for (std::size_t k = 0; k < rank; ++k) grad[k] += cij * rj[k];
        }
        const double gnorm = vec_norm(grad);
        if (gnorm < 1e-14) continue;  // row is unconstrained; keep as is
        for (std::size_t k = 0; k < rank; ++k) rows[i][k] = grad[k] / gnorm;
      }
      m_sweeps.inc();
      const double cur = objective(c, rows);
      if (cur - prev < opts.tol) {
        prev = cur;
        converged = true;
        break;
      }
      prev = cur;
    }
    if (prev > best.value) {
      best.value = prev;
      best.rows = rows;
      best.sweeps_used = sweep + 1;
      best.converged = converged;
    }
  }
  return best;
}

XorBiasResult xor_quantum_bias(const std::vector<std::vector<double>>& m,
                               const GramOptions& opts) {
  const std::size_t nx = m.size();
  FTL_ASSERT(nx >= 1);
  const std::size_t ny = m.front().size();
  for (const auto& row : m) FTL_ASSERT_MSG(row.size() == ny, "ragged matrix");

  // Bipartite embedding: indices [0, nx) are Alice's vectors, [nx, nx+ny)
  // Bob's; C places M/2 on each off-diagonal block so that
  // <C, RR^T> = sum_xy M_xy <u_x, v_y>.
  SymMatrix c(nx + ny);
  for (std::size_t x = 0; x < nx; ++x) {
    for (std::size_t y = 0; y < ny; ++y) {
      c.at(x, nx + y) = m[x][y] / 2.0;
      c.at(nx + y, x) = m[x][y] / 2.0;
    }
  }

  const GramResult g = max_gram(c, opts);
  XorBiasResult out;
  out.bias = g.value;
  out.converged = g.converged;
  out.alice.assign(g.rows.begin(), g.rows.begin() + static_cast<long>(nx));
  out.bob.assign(g.rows.begin() + static_cast<long>(nx), g.rows.end());
  return out;
}

}  // namespace ftl::sdp

// A small discrete-event simulation engine.
//
// Used by the qnet substrate (entanglement generation, fiber delays, memory
// expiry) where events happen at irregular physical times. The cluster and
// ECMP simulators are synchronous (time-stepped) and do not need it.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/assert.hpp"

namespace ftl::sim {

/// Simulated physical time, in seconds.
using Time = double;

using EventId = std::uint64_t;

class Engine {
 public:
  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (>= now). Returns an id usable
  /// with cancel(). Events at equal times fire in scheduling order.
  EventId schedule_at(Time at, std::function<void()> fn);

  /// Schedules `fn` after `delay` seconds.
  EventId schedule_in(Time delay, std::function<void()> fn) {
    FTL_ASSERT(delay >= 0.0);
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event; cancelling an already-fired, already-cancelled,
  /// or unknown id is a no-op (the usual DES contract). Only ids that are
  /// actually pending are recorded, so stale cancels cannot accumulate.
  void cancel(EventId id) {
    if (pending_ids_.count(id) > 0) cancelled_.insert(id);
  }

  /// Runs the next pending event; returns false if none remain.
  bool step();

  /// Runs events until the queue is empty or the next event is after
  /// `t_end`; leaves now() at min(t_end, last event time).
  void run_until(Time t_end);

  /// Runs until the event queue is empty.
  void run();

  /// Events that will still fire: scheduled, not yet popped, not cancelled.
  /// Exact — cancelled-but-unpopped events are excluded (every member of
  /// `cancelled_` is still in the queue, so the subtraction never skews).
  [[nodiscard]] std::size_t pending() const {
    return queue_.size() - cancelled_.size();
  }

 private:
  struct Item {
    Time at;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;  // FIFO among simultaneous events
    }
  };

  Time now_ = 0.0;
  EventId next_id_ = 1;
  std::priority_queue<Item, std::vector<Item>, Later> queue_;
  /// Ids currently in the queue; kept so cancel() can reject ids that
  /// already fired (which would otherwise leak into cancelled_ forever).
  std::unordered_set<EventId> pending_ids_;
  /// Cancelled-but-unpopped ids — always a subset of pending_ids_.
  std::unordered_set<EventId> cancelled_;
};

}  // namespace ftl::sim

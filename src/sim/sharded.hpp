// Shard scheduling for the scaled simulators.
//
// A shard is an independent slice of a simulated system (its own servers,
// balancers, RNG streams, and counters) that never touches another shard's
// state while running. That independence is what makes the parallel engines
// deterministic: results depend only on (master seed, shard count), never on
// thread scheduling, because each shard's work is a pure function of its
// shard index and the merge happens in shard order after the barrier.
//
// ShardPool is the reusable worker pool behind them: persistent threads, a
// broadcast/claim/barrier cycle per parallel_shards() call, and an inline
// fallback so a single-threaded pool (or a 1-shard job) runs entirely on
// the caller with zero synchronisation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace ftl::sim {

/// Contiguous half-open slice [begin, end) of a sharded index space.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t size() const { return end - begin; }
};

/// Even contiguous partition of `total` items into `num_shards` slices; the
/// first `total % num_shards` shards absorb one extra item each. Every item
/// belongs to exactly one shard and slices are ordered by shard index, so
/// shard-ordered merges visit items in their original order.
[[nodiscard]] ShardRange shard_range(std::size_t total, std::size_t num_shards,
                                     std::size_t shard);

/// Deterministic per-shard seed stream, decorrelated across shard indices
/// with the same splitmix64 mixing proptest uses for per-case seeds. Shard 0
/// keeps the master seed unchanged so a 1-shard run consumes exactly the
/// stream a non-sharded reference engine would.
[[nodiscard]] inline std::uint64_t shard_seed(std::uint64_t master,
                                              std::size_t shard) {
  if (shard == 0) return master;
  std::uint64_t s =
      master ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(shard) + 1));
  return util::splitmix64(s);
}

/// A fixed pool of worker threads executing shard jobs with a barrier.
///
/// parallel_shards(n, fn) runs fn(0) .. fn(n-1) exactly once each —
/// distributed over the workers plus the calling thread — and returns only
/// after every call completed. Shards are claimed from an atomic counter, so
/// which thread runs which shard is scheduling-dependent; callers must keep
/// shard work disjoint (write only shard-indexed slots) for results to stay
/// deterministic.
class ShardPool {
 public:
  /// `num_threads` counts workers *including* the calling thread; 0 picks
  /// the hardware concurrency. A pool of 1 runs everything inline.
  explicit ShardPool(std::size_t num_threads = 0);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  /// Total execution streams (workers + caller).
  [[nodiscard]] std::size_t num_threads() const { return threads_.size() + 1; }

  /// Blocking barrier fan-out of fn over [0, num_shards). Must not be
  /// called re-entrantly from inside a shard job. `fn` must not throw.
  void parallel_shards(std::size_t num_shards,
                       const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  void claim_shards(const std::function<void(std::size_t)>& fn,
                    std::size_t num_shards);

  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;  // bumped per job; workers wake on change
  std::size_t busy_workers_ = 0;
  bool stopping_ = false;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t job_shards_ = 0;
  std::atomic<std::size_t> next_shard_{0};
};

}  // namespace ftl::sim

#include "sim/engine.hpp"

#include "obs/metrics.hpp"

namespace ftl::sim {

namespace {

// Aggregated across engine instances; per-event cost is one relaxed
// atomic increment (nothing at all with FTL_OBS_ENABLED=OFF).
struct EngineMetrics {
  obs::Counter& scheduled = obs::registry().counter("sim.events.scheduled");
  obs::Counter& fired = obs::registry().counter("sim.events.fired");
  obs::Counter& cancelled = obs::registry().counter("sim.events.cancelled");
  obs::Gauge& high_water = obs::registry().gauge("sim.queue.high_water");
};

EngineMetrics& metrics() {
  static EngineMetrics m;
  return m;
}

}  // namespace

EventId Engine::schedule_at(Time at, std::function<void()> fn) {
  FTL_ASSERT_MSG(at >= now_, "cannot schedule events in the past");
  const EventId id = next_id_++;
  queue_.push(Item{at, id, std::move(fn)});
  pending_ids_.insert(id);
  EngineMetrics& m = metrics();
  m.scheduled.inc();
  m.high_water.update_max(static_cast<double>(queue_.size()));
  return id;
}

bool Engine::step() {
  while (!queue_.empty()) {
    Item item = queue_.top();
    queue_.pop();
    pending_ids_.erase(item.id);
    if (cancelled_.erase(item.id) > 0) {
      metrics().cancelled.inc();
      continue;
    }
    now_ = item.at;
    item.fn();
    metrics().fired.inc();
    return true;
  }
  return false;
}

void Engine::run_until(Time t_end) {
  while (!queue_.empty() && queue_.top().at <= t_end) step();
  if (now_ < t_end) now_ = t_end;
}

void Engine::run() {
  while (step()) {
  }
}

}  // namespace ftl::sim

#include "sim/engine.hpp"

namespace ftl::sim {

EventId Engine::schedule_at(Time at, std::function<void()> fn) {
  FTL_ASSERT_MSG(at >= now_, "cannot schedule events in the past");
  const EventId id = next_id_++;
  queue_.push(Item{at, id, std::move(fn)});
  return id;
}

bool Engine::step() {
  while (!queue_.empty()) {
    Item item = queue_.top();
    queue_.pop();
    if (cancelled_.erase(item.id) > 0) continue;
    now_ = item.at;
    item.fn();
    return true;
  }
  return false;
}

void Engine::run_until(Time t_end) {
  while (!queue_.empty() && queue_.top().at <= t_end) step();
  if (now_ < t_end) now_ = t_end;
}

void Engine::run() {
  while (step()) {
  }
}

}  // namespace ftl::sim

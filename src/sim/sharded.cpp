#include "sim/sharded.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ftl::sim {

ShardRange shard_range(std::size_t total, std::size_t num_shards,
                       std::size_t shard) {
  FTL_ASSERT(num_shards >= 1 && shard < num_shards);
  const std::size_t base = total / num_shards;
  const std::size_t extra = total % num_shards;
  const std::size_t begin = shard * base + std::min(shard, extra);
  return ShardRange{begin, begin + base + (shard < extra ? 1 : 0)};
}

ShardPool::ShardPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  threads_.reserve(num_threads - 1);
  for (std::size_t i = 0; i + 1 < num_threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ShardPool::~ShardPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ShardPool::claim_shards(const std::function<void(std::size_t)>& fn,
                             std::size_t num_shards) {
  for (;;) {
    const std::size_t shard =
        next_shard_.fetch_add(1, std::memory_order_relaxed);
    if (shard >= num_shards) return;
    fn(shard);
  }
}

void ShardPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    std::size_t shards = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] {
        return stopping_ || generation_ != seen_generation;
      });
      if (stopping_) return;
      seen_generation = generation_;
      job = job_;
      shards = job_shards_;
    }
    claim_shards(*job, shards);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (--busy_workers_ == 0) done_cv_.notify_all();
    }
  }
}

void ShardPool::parallel_shards(std::size_t num_shards,
                                const std::function<void(std::size_t)>& fn) {
  if (num_shards == 0) return;
  if (threads_.empty() || num_shards == 1) {
    for (std::size_t shard = 0; shard < num_shards; ++shard) fn(shard);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    FTL_ASSERT_MSG(busy_workers_ == 0,
                   "parallel_shards is not re-entrant");
    job_ = &fn;
    job_shards_ = num_shards;
    next_shard_.store(0, std::memory_order_relaxed);
    busy_workers_ = threads_.size();
    ++generation_;
  }
  start_cv_.notify_all();
  claim_shards(fn, num_shards);  // the caller is a worker too
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return busy_workers_ == 0; });
  job_ = nullptr;
}

}  // namespace ftl::sim

#include "lb/sharded_simulator.hpp"

#include <memory>
#include <utility>

#include "correlate/decision_source.hpp"
#include "lb/server.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace ftl::lb {

namespace {

/// Everything one shard produces; written only by the thread that ran the
/// shard, read only after the pool barrier. Queue lengths and delays are
/// integers in this model, so the shards accumulate exact integer sums (a
/// Welford update per server per step would put a division on the hot
/// path); the means come out of one division at merge time.
struct ShardOutput {
  ShardedCounters counters;
  unsigned long long queue_len_sum = 0;
  unsigned long long delay_sum = 0;
  std::vector<std::size_t> delay_counts;
  std::size_t delay_underflow = 0;
  std::size_t delay_overflow = 0;
};

/// One shard's full step loop. Mirrors run_lb_sim's structure *and* RNG
/// consumption order exactly — master split(1)/(2) for arrivals/strategy,
/// one arrival bernoulli per balancer per step, then per pair one
/// distinct_pair plus one source decision (or per balancer one uniform_int
/// for "random") — so a 1-shard run is bit-identical to the single-threaded
/// reference engine. sharded_sim_test relies on this.
void run_shard(const ShardedLbConfig& cfg, std::size_t shard,
               correlate::PairedDecisionSource* source, ShardOutput& out) {
  const sim::ShardRange balancers =
      sim::shard_range(cfg.num_balancers, cfg.num_shards, shard);
  const sim::ShardRange server_slice =
      sim::shard_range(cfg.num_servers, cfg.num_shards, shard);
  const std::size_t n_b = balancers.size();
  const std::size_t n_s = server_slice.size();

  util::Rng rng(sim::shard_seed(cfg.seed, shard));
  util::Rng arrivals_rng = rng.split(1);
  util::Rng strategy_rng = rng.split(2);

  ServerArray servers(n_s);
  std::vector<TaskType> types(n_b);
  std::vector<std::uint32_t> targets(n_b);
  util::Histogram delay_hist(0.0, cfg.delay_hist_max, cfg.delay_hist_bins);

  const bool paired = cfg.source != "random";
  const long total_steps = cfg.warmup_steps + cfg.measure_steps;
  for (long step = 0; step < total_steps; ++step) {
    const bool measuring = step >= cfg.warmup_steps;

    // 1. Arrivals: one type draw per balancer (the paper's deterministic
    // one-request-per-step model).
    for (auto& t : types) {
      t = arrivals_rng.bernoulli(cfg.p_colocate) ? TaskType::kC : TaskType::kE;
    }

    // 2. Routing: all decisions are made before any request lands, as in
    // the reference engine (simultaneous, communication-free balancers).
    if (paired) {
      for (std::size_t p = 0; p + 1 < n_b; p += 2) {
        const auto [s0, s1] = strategy_rng.distinct_pair(n_s);
        const int x = types[p] == TaskType::kC ? 1 : 0;
        const int y = types[p + 1] == TaskType::kC ? 1 : 0;
        const auto [a, b] = source->decide(x, y, strategy_rng);
        // Flipped-CHSH win condition: a XOR b == NOT(x AND y).
        const bool won = ((a ^ b) != 0) == !(x == 1 && y == 1);
        if (measuring) ++(won ? out.counters.rounds_won
                              : out.counters.rounds_lost);
        targets[p] = static_cast<std::uint32_t>(a == 0 ? s0 : s1);
        targets[p + 1] = static_cast<std::uint32_t>(b == 0 ? s0 : s1);
      }
    } else {
      for (std::size_t b = 0; b < n_b; ++b) {
        targets[b] = static_cast<std::uint32_t>(strategy_rng.uniform_int(n_s));
      }
    }

    for (std::size_t b = 0; b < n_b; ++b) {
      servers.enqueue(targets[b], types[b], static_cast<std::uint32_t>(b),
                      static_cast<std::int32_t>(step));
      if (measuring) ++out.counters.arrived;
    }

    // 3. Service.
    Request served[2];
    for (std::size_t s = 0; s < n_s; ++s) {
      const std::size_t n = servers.step(s, cfg.policy, served);
      if (measuring) {
        for (std::size_t i = 0; i < n; ++i) {
          if (served[i].arrival_step < cfg.warmup_steps) continue;
          ++out.counters.served;
          const long d = step - served[i].arrival_step;
          out.delay_sum += static_cast<unsigned long long>(d);
          delay_hist.add(static_cast<double>(d));
        }
        out.queue_len_sum += servers.queue_length(s);
      }
    }
  }

  for (std::size_t s = 0; s < n_s; ++s) {
    servers.for_each_queued(s, [&](TaskType, const ServerArray::Slot& slot) {
      if (slot.arrival_step >= cfg.warmup_steps) ++out.counters.still_queued;
    });
  }
  out.delay_counts = delay_hist.counts();
  out.delay_underflow = delay_hist.underflow();
  out.delay_overflow = delay_hist.overflow();
}

}  // namespace

ShardedLbResult run_sharded_lb_sim(const ShardedLbConfig& cfg,
                                   sim::ShardPool* pool) {
  FTL_ASSERT(cfg.num_shards >= 1);
  FTL_ASSERT(cfg.p_colocate >= 0.0 && cfg.p_colocate <= 1.0);
  FTL_ASSERT(cfg.warmup_steps >= 0 && cfg.measure_steps > 0);
  FTL_ASSERT(cfg.delay_hist_bins >= 1 && cfg.delay_hist_max > 0.0);
  const bool paired = cfg.source != "random";
  for (std::size_t shard = 0; shard < cfg.num_shards; ++shard) {
    const auto b = sim::shard_range(cfg.num_balancers, cfg.num_shards, shard);
    const auto s = sim::shard_range(cfg.num_servers, cfg.num_shards, shard);
    FTL_ASSERT_MSG(b.size() >= 1 && s.size() >= 2,
                   "every shard needs >= 1 balancer and >= 2 servers");
    FTL_ASSERT_MSG(!paired || b.size() % 2 == 0,
                   "paired sources need an even balancer count per shard");
  }

  const obs::ScopedSpan span("lb.run_sharded_lb_sim", "lb");

  // Per-shard decision sources, created up front in shard order (the
  // density-matrix work in ChshSource happens once per shard, not per
  // round — the rounds sample its precomputed outcome table).
  std::vector<std::unique_ptr<correlate::PairedDecisionSource>> sources(
      cfg.num_shards);
  if (paired) {
    for (auto& s : sources) s = correlate::make_source(cfg.source,
                                                       cfg.visibility);
  }

  std::vector<ShardOutput> outputs(cfg.num_shards);
  const auto job = [&](std::size_t shard) {
    run_shard(cfg, shard, sources[shard].get(), outputs[shard]);
  };
  if (pool != nullptr) {
    pool->parallel_shards(cfg.num_shards, job);
  } else {
    sim::ShardPool inline_pool(1);
    inline_pool.parallel_shards(cfg.num_shards, job);
  }

  // Shard-ordered merge: integer counters and sums exactly, histogram bins
  // pairwise. All-integer accumulation means the totals — and the means
  // derived from them — are bit-identical no matter how the pool scheduled
  // the shards.
  ShardedLbResult out;
  out.per_shard.reserve(cfg.num_shards);
  unsigned long long queue_len_sum = 0;
  unsigned long long delay_sum = 0;
  std::vector<std::size_t> delay_counts(cfg.delay_hist_bins, 0);
  std::size_t delay_underflow = 0;
  std::size_t delay_overflow = 0;
  for (const ShardOutput& o : outputs) {
    out.per_shard.push_back(o.counters);
    out.counters += o.counters;
    queue_len_sum += o.queue_len_sum;
    delay_sum += o.delay_sum;
    for (std::size_t i = 0; i < delay_counts.size(); ++i) {
      delay_counts[i] += o.delay_counts[i];
    }
    delay_underflow += o.delay_underflow;
    delay_overflow += o.delay_overflow;
  }
  const double queue_samples = static_cast<double>(cfg.measure_steps) *
                               static_cast<double>(cfg.num_servers);
  out.mean_queue_length = static_cast<double>(queue_len_sum) / queue_samples;
  out.mean_delay = out.counters.served == 0
                       ? 0.0
                       : static_cast<double>(delay_sum) /
                             static_cast<double>(out.counters.served);
  out.delay_hist =
      util::Histogram::from_counts(0.0, cfg.delay_hist_max,
                                   std::move(delay_counts), delay_underflow,
                                   delay_overflow);
  out.p95_delay =
      out.delay_hist.total() == 0 ? 0.0 : out.delay_hist.quantile(0.95);
  out.throughput = static_cast<double>(out.counters.served) /
                   (static_cast<double>(cfg.measure_steps) *
                    static_cast<double>(cfg.num_servers));

  // Merge into the lock-free registry (one labeled inc per total, off the
  // hot path).
  const obs::Labels label{{"source", cfg.source}};
  obs::Registry& reg = obs::registry();
  reg.counter("lb.sharded.requests.arrived", label)
      .inc(static_cast<std::uint64_t>(out.counters.arrived));
  reg.counter("lb.sharded.requests.served", label)
      .inc(static_cast<std::uint64_t>(out.counters.served));
  reg.counter("lb.sharded.rounds_won", label)
      .inc(static_cast<std::uint64_t>(out.counters.rounds_won));
  reg.counter("lb.sharded.rounds_lost", label)
      .inc(static_cast<std::uint64_t>(out.counters.rounds_lost));
  reg.gauge("lb.sharded.shards", label)
      .set(static_cast<double>(cfg.num_shards));
  return out;
}

}  // namespace ftl::lb

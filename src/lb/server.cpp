#include "lb/server.hpp"

#include "util/assert.hpp"

namespace ftl::lb {

const char* to_string(ServicePolicy p) {
  switch (p) {
    case ServicePolicy::kPaperCFirst:
      return "paper-c-first";
    case ServicePolicy::kFifoPair:
      return "fifo-pair";
    case ServicePolicy::kEFirst:
      return "e-first";
  }
  return "?";
}

std::size_t Server::queued_of(TaskType t) const {
  std::size_t n = 0;
  for (const Request& r : queue_) {
    if (r.type == t) ++n;
  }
  return n;
}

bool Server::take_first_of(TaskType t, Request& out) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->type == t) {
      out = *it;
      queue_.erase(it);
      return true;
    }
  }
  return false;
}

std::vector<Request> Server::step(ServicePolicy policy) {
  std::vector<Request> served;
  if (queue_.empty()) return served;
  Request r;
  switch (policy) {
    case ServicePolicy::kPaperCFirst: {
      // Up to two C requests run together; E runs alone and only when no C
      // is waiting.
      if (take_first_of(TaskType::kC, r)) {
        served.push_back(r);
        if (take_first_of(TaskType::kC, r)) served.push_back(r);
      } else if (take_first_of(TaskType::kE, r)) {
        served.push_back(r);
      }
      break;
    }
    case ServicePolicy::kFifoPair: {
      r = queue_.front();
      queue_.pop_front();
      served.push_back(r);
      if (r.type == TaskType::kC) {
        Request mate;
        if (take_first_of(TaskType::kC, mate)) served.push_back(mate);
      }
      break;
    }
    case ServicePolicy::kEFirst: {
      if (take_first_of(TaskType::kE, r)) {
        served.push_back(r);
      } else if (take_first_of(TaskType::kC, r)) {
        served.push_back(r);
        if (take_first_of(TaskType::kC, r)) served.push_back(r);
      }
      break;
    }
  }
  return served;
}

}  // namespace ftl::lb

#include "lb/server.hpp"

#include "util/assert.hpp"

namespace ftl::lb {

const char* to_string(ServicePolicy p) {
  switch (p) {
    case ServicePolicy::kPaperCFirst:
      return "paper-c-first";
    case ServicePolicy::kFifoPair:
      return "fifo-pair";
    case ServicePolicy::kEFirst:
      return "e-first";
  }
  return "?";
}

void ServerArray::Lane::pop() {
  ++head;
  if (head == slots.size()) {
    slots.clear();
    head = 0;
  } else if (head >= 32 && head * 2 >= slots.size()) {
    // Amortised compaction: we erase `head` elements only after at least as
    // many pops as live slots, so the move cost is O(1) per pop.
    slots.erase(slots.begin(), slots.begin() + static_cast<long>(head));
    head = 0;
  }
}

ServerArray::ServerArray(std::size_t num_servers)
    : c_lanes_(num_servers), e_lanes_(num_servers), next_seq_(num_servers, 0) {
  FTL_ASSERT(num_servers >= 1);
}

void ServerArray::enqueue(std::size_t server, TaskType type,
                          std::uint32_t balancer, std::int32_t arrival_step) {
  lane(server, type).slots.push_back(
      Slot{arrival_step, balancer, next_seq_[server]++});
}

std::size_t ServerArray::emit(Lane& l, TaskType t, Request out[2],
                              std::size_t n) {
  const Slot& s = l.front();
  out[n] = Request{t, s.balancer, s.arrival_step};
  l.pop();
  return n + 1;
}

std::size_t ServerArray::step(std::size_t server, ServicePolicy policy,
                              Request out[2]) {
  Lane& c = c_lanes_[server];
  Lane& e = e_lanes_[server];
  std::size_t n = 0;
  switch (policy) {
    case ServicePolicy::kPaperCFirst: {
      // Up to two C requests run together; E runs alone and only when no C
      // is waiting.
      if (c.pending() > 0) {
        n = emit(c, TaskType::kC, out, n);
        if (c.pending() > 0) n = emit(c, TaskType::kC, out, n);
      } else if (e.pending() > 0) {
        n = emit(e, TaskType::kE, out, n);
      }
      break;
    }
    case ServicePolicy::kFifoPair: {
      // The true FIFO head is whichever lane front arrived first.
      const bool head_is_c =
          c.pending() > 0 &&
          (e.pending() == 0 || c.front().seq < e.front().seq);
      if (head_is_c) {
        n = emit(c, TaskType::kC, out, n);
        if (c.pending() > 0) n = emit(c, TaskType::kC, out, n);
      } else if (e.pending() > 0) {
        n = emit(e, TaskType::kE, out, n);
      }
      break;
    }
    case ServicePolicy::kEFirst: {
      if (e.pending() > 0) {
        n = emit(e, TaskType::kE, out, n);
      } else if (c.pending() > 0) {
        n = emit(c, TaskType::kC, out, n);
        if (c.pending() > 0) n = emit(c, TaskType::kC, out, n);
      }
      break;
    }
  }
  return n;
}

std::vector<Request> Server::step(ServicePolicy policy) {
  Request out[2];
  const std::size_t n = array_.step(0, policy, out);
  return std::vector<Request>(out, out + n);
}

}  // namespace ftl::lb

#include "lb/typed_simulator.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/stats.hpp"

namespace ftl::lb {

namespace {

struct TypedTask {
  std::size_t type;
  long arrival_step;
};

/// One server with affinity-aware pairing: serves the head task, plus the
/// first queued task whose type co-locates with it.
class TypedServer {
 public:
  void enqueue(TypedTask t) { queue_.push_back(t); }

  std::vector<TypedTask> step(const games::AffinityGraph& graph,
                              TypedServicePolicy policy, double interference,
                              util::Rng& rng) {
    std::vector<TypedTask> served;
    if (queue_.empty()) return served;
    // Pairs-first (the Figure-4 service economics generalised): the first
    // Colocate-affine pair in FIFO order shares this step's slot; if no
    // pair exists the head runs alone.
    // Bounded scan window: real schedulers inspect a prefix of the queue,
    // and it keeps the step cost linear when queues are long. Indices (not
    // iterators) because deque::erase invalidates iterators.
    constexpr std::size_t kScanWindow = 32;
    const std::size_t window = std::min(kScanWindow, queue_.size());
    for (std::size_t i = 0; i < window && served.empty(); ++i) {
      for (std::size_t j = i + 1; j < window; ++j) {
        if (graph.at(queue_[i].type, queue_[j].type) ==
            games::Affinity::kColocate) {
          served.push_back(queue_[i]);
          served.push_back(queue_[j]);
          queue_.erase(queue_.begin() + static_cast<long>(j));
          queue_.erase(queue_.begin() + static_cast<long>(i));
          break;
        }
      }
    }
    if (served.empty() && policy == TypedServicePolicy::kPriorityPairs) {
      // Strict priority for self-pairable types: the first task whose type
      // co-locates with itself runs alone rather than yielding the slot to
      // a self-exclusive task (the Figure-4 "C before E" rule).
      const std::size_t w2 = std::min(kScanWindow, queue_.size());
      for (std::size_t k = 0; k < w2; ++k) {
        if (graph.at(queue_[k].type, queue_[k].type) ==
            games::Affinity::kColocate) {
          served.push_back(queue_[k]);
          queue_.erase(queue_.begin() + static_cast<long>(k));
          return served;
        }
      }
    }
    if (served.empty()) {
      // No pairable tasks. Noisy neighbour: an Exclusive-affine task
      // elsewhere in the queue slows the head down with probability
      // `interference`.
      const TypedTask head = queue_.front();
      bool conflicted = false;
      for (auto it = std::next(queue_.begin()); it != queue_.end(); ++it) {
        if (graph.at(head.type, it->type) == games::Affinity::kExclusive) {
          conflicted = true;
          break;
        }
      }
      if (conflicted && rng.bernoulli(interference)) return served;
      queue_.pop_front();
      served.push_back(head);
    }
    return served;
  }

  [[nodiscard]] std::size_t queue_length() const { return queue_.size(); }
  [[nodiscard]] const std::deque<TypedTask>& queue() const { return queue_; }

 private:
  std::deque<TypedTask> queue_;
};

}  // namespace

void TypedRandomStrategy::assign(const std::vector<std::size_t>& types,
                                 std::vector<std::size_t>& out,
                                 std::size_t num_servers, util::Rng& rng) {
  out.resize(types.size());
  for (auto& s : out) s = rng.uniform_int(num_servers);
}

TypedDedicatedStrategy::TypedDedicatedStrategy(
    std::vector<std::size_t> group_of, std::size_t num_groups)
    : group_of_(std::move(group_of)), num_groups_(num_groups) {
  FTL_ASSERT(num_groups_ >= 1);
  for (std::size_t g : group_of_) FTL_ASSERT(g < num_groups_);
}

void TypedDedicatedStrategy::assign(const std::vector<std::size_t>& types,
                                    std::vector<std::size_t>& out,
                                    std::size_t num_servers, util::Rng& rng) {
  out.resize(types.size());
  FTL_ASSERT(num_servers >= num_groups_);
  const std::size_t pool = num_servers / num_groups_;
  for (std::size_t b = 0; b < types.size(); ++b) {
    FTL_ASSERT(types[b] < group_of_.size());
    const std::size_t g = group_of_[types[b]];
    // Last pool absorbs the remainder servers.
    const std::size_t lo = g * pool;
    const std::size_t hi = (g + 1 == num_groups_) ? num_servers : lo + pool;
    out[b] = lo + rng.uniform_int(hi - lo);
  }
}

TypedPairedStrategy::TypedPairedStrategy(
    std::unique_ptr<correlate::TypedDecisionSource> source)
    : source_(std::move(source)) {
  FTL_ASSERT(source_ != nullptr);
}

std::string TypedPairedStrategy::name() const {
  return "typed-paired(" + source_->name() + ")";
}

void TypedPairedStrategy::assign(const std::vector<std::size_t>& types,
                                 std::vector<std::size_t>& out,
                                 std::size_t num_servers, util::Rng& rng) {
  FTL_ASSERT_MSG(types.size() % 2 == 0,
                 "typed paired strategy needs an even number of balancers");
  out.resize(types.size());
  for (std::size_t p = 0; p + 1 < types.size(); p += 2) {
    const auto [s0, s1] = rng.distinct_pair(num_servers);
    const auto [a, b] = source_->decide(types[p], types[p + 1], rng);
    out[p] = a == 0 ? s0 : s1;
    out[p + 1] = b == 0 ? s0 : s1;
  }
}

LbResult run_typed_lb_sim(const TypedLbConfig& cfg,
                          const games::AffinityGraph& graph,
                          TypedLbStrategy& strategy) {
  FTL_ASSERT(!cfg.type_probs.empty());
  FTL_ASSERT(cfg.type_probs.size() == graph.num_types());
  double total_p = 0.0;
  for (double p : cfg.type_probs) total_p += p;
  FTL_ASSERT_MSG(std::abs(total_p - 1.0) < 1e-9,
                 "type probabilities must sum to 1");

  const obs::ScopedSpan span("lb.run_typed_lb_sim", "lb");
  const obs::Labels strat_label{{"strategy", strategy.name()}};
  obs::Counter& m_arrived =
      obs::registry().counter("lb.typed.requests.arrived", strat_label);
  obs::Counter& m_served =
      obs::registry().counter("lb.typed.requests.served", strat_label);
  obs::Histogram& m_queue_depth = obs::registry().histogram(
      "lb.typed.queue_depth", 0.0, 256.0, 64, strat_label);
  obs::Gauge& m_queue_hw =
      obs::registry().gauge("lb.typed.queue_depth.high_water", strat_label);

  util::Rng rng(cfg.seed);
  util::Rng arrivals_rng = rng.split(1);
  util::Rng strategy_rng = rng.split(2);
  util::Rng service_rng = rng.split(3);
  util::Rng drift_rng = rng.split(4);
  std::vector<double> live_probs = cfg.type_probs;

  std::vector<TypedServer> servers(cfg.num_servers);
  std::vector<std::size_t> types(cfg.num_balancers);
  std::vector<std::size_t> targets;

  util::Accumulator queue_len_acc;
  util::Accumulator delay_acc;
  std::vector<double> delays;
  long long arrived = 0;
  long long served_count = 0;

  auto draw_type = [&]() {
    const double u = arrivals_rng.uniform();
    double cum = 0.0;
    for (std::size_t t = 0; t < live_probs.size(); ++t) {
      cum += live_probs[t];
      if (u < cum) return t;
    }
    return live_probs.size() - 1;
  };
  auto maybe_drift = [&](long step) {
    if (cfg.mix_drift_period <= 0 || step == 0 ||
        step % cfg.mix_drift_period != 0) {
      return;
    }
    double total = 0.0;
    for (double& p : live_probs) {
      p = drift_rng.exponential(1.0);
      total += p;
    }
    for (double& p : live_probs) p /= total;
  };

  const long total_steps = cfg.warmup_steps + cfg.measure_steps;
  for (long step = 0; step < total_steps; ++step) {
    const bool measuring = step >= cfg.warmup_steps;
    maybe_drift(step);
    for (auto& t : types) t = draw_type();
    strategy.assign(types, targets, cfg.num_servers, strategy_rng);
    for (std::size_t b = 0; b < cfg.num_balancers; ++b) {
      FTL_ASSERT(targets[b] < cfg.num_servers);
      servers[targets[b]].enqueue(TypedTask{types[b], step});
      if (measuring) {
        ++arrived;
        m_arrived.inc();
      }
    }
    for (auto& server : servers) {
      for (const TypedTask& t :
           server.step(graph, cfg.policy, cfg.interference, service_rng)) {
        if (measuring && t.arrival_step >= cfg.warmup_steps) {
          ++served_count;
          m_served.inc();
          const double d = static_cast<double>(step - t.arrival_step);
          delay_acc.add(d);
          delays.push_back(d);
        }
      }
      if (measuring) {
        const auto depth = static_cast<double>(server.queue_length());
        queue_len_acc.add(depth);
        m_queue_depth.observe(depth);
        m_queue_hw.update_max(depth);
      }
    }
  }

  LbResult out;
  out.mean_queue_length = queue_len_acc.mean();
  out.mean_delay = delay_acc.mean();
  out.p95_delay = delays.empty() ? 0.0 : util::percentile(delays, 0.95);
  out.throughput = static_cast<double>(served_count) /
                   (static_cast<double>(cfg.measure_steps) *
                    static_cast<double>(cfg.num_servers));
  out.arrived = arrived;
  out.served = served_count;
  long long queued = 0;
  for (const auto& s : servers) {
    for (const TypedTask& t : s.queue()) {
      if (t.arrival_step >= cfg.warmup_steps) ++queued;
    }
  }
  out.still_queued = queued;
  return out;
}

}  // namespace ftl::lb

#include "lb/analysis.hpp"

#include "util/assert.hpp"

namespace ftl::lb {

ArrivalMoments ArrivalMoments::from_binomial(std::size_t n, double p) {
  FTL_ASSERT(p >= 0.0 && p <= 1.0);
  ArrivalMoments a;
  const double nd = static_cast<double>(n);
  a.mean = nd * p;
  // E[A^2] = Var + mean^2 = n p (1-p) + (n p)^2.
  a.second_moment = nd * p * (1.0 - p) + a.mean * a.mean;
  return a;
}

ArrivalMoments ArrivalMoments::from_poisson(double lambda) {
  FTL_ASSERT(lambda >= 0.0);
  return ArrivalMoments{lambda, lambda + lambda * lambda};
}

double unit_service_mean_queue(const ArrivalMoments& a) {
  FTL_ASSERT_MSG(a.mean < 1.0, "queue is unstable at load >= 1");
  // Square the Lindley recursion in steady state; the boundary term is
  // fixed by flow balance E[served] = E[A].
  return (a.second_moment - a.mean) / (2.0 * (1.0 - a.mean));
}

double unit_service_mean_wait(const ArrivalMoments& a) {
  FTL_ASSERT(a.mean > 0.0);
  return unit_service_mean_queue(a) / a.mean;
}

StabilityBounds paper_policy_stability_bounds(double p_colocate) {
  FTL_ASSERT(p_colocate >= 0.0 && p_colocate <= 1.0);
  // Per unit load, a server sees p_colocate type-C and (1 - p_colocate)
  // type-E work. E needs dedicated slots; C consumes between 1 (never
  // paired) and 1/2 (always paired) slot per task. Solving
  // load * (1 - p) + load * p / capacity < 1:
  StabilityBounds b;
  b.lower = 1.0;  // capacity 1 for C: load * ((1-p) + p) < 1
  b.upper = 1.0 / (1.0 - p_colocate / 2.0);  // capacity 2 for C
  return b;
}

}  // namespace ftl::lb

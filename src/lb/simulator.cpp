#include "lb/simulator.hpp"

#include <vector>

#include "lb/server.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/stats.hpp"

namespace ftl::lb {

LbResult run_lb_sim(const LbConfig& cfg, LbStrategy& strategy) {
  FTL_ASSERT(cfg.num_balancers >= 1 && cfg.num_servers >= 2);
  FTL_ASSERT(cfg.p_colocate >= 0.0 && cfg.p_colocate <= 1.0);
  FTL_ASSERT(cfg.batch_size >= 1);
  FTL_ASSERT(cfg.warmup_steps >= 0 && cfg.measure_steps > 0);

  // Registered once per run (registry lookup is mutex-guarded), then
  // updated with relaxed atomics inside the step loop.
  const obs::ScopedSpan span("lb.run_lb_sim", "lb");
  const obs::Labels strat_label{{"strategy", strategy.name()}};
  obs::Counter& m_arrived =
      obs::registry().counter("lb.requests.arrived", strat_label);
  obs::Counter& m_served =
      obs::registry().counter("lb.requests.served", strat_label);
  obs::Counter& m_steps = obs::registry().counter("lb.steps", strat_label);
  obs::Histogram& m_queue_depth = obs::registry().histogram(
      "lb.queue_depth", 0.0, 256.0, 64, strat_label);
  obs::Histogram& m_delay =
      obs::registry().histogram("lb.delay_steps", 0.0, 512.0, 64, strat_label);
  obs::Gauge& m_queue_hw =
      obs::registry().gauge("lb.queue_depth.high_water", strat_label);

  util::Rng rng(cfg.seed);
  util::Rng arrivals_rng = rng.split(1);
  util::Rng strategy_rng = rng.split(2);
  util::Rng burst_rng = rng.split(3);

  ServerArray servers(cfg.num_servers);
  std::vector<std::vector<TaskType>> types(
      cfg.num_balancers, std::vector<TaskType>(cfg.batch_size));
  bool burst_high = true;
  std::vector<std::vector<std::size_t>> targets;
  std::vector<std::size_t> queue_snapshot(cfg.num_servers, 0);

  util::Accumulator queue_len_acc;
  util::Accumulator delay_acc;
  util::Accumulator delay_c_acc;
  util::Accumulator delay_e_acc;
  std::vector<double> delays;
  long long arrived = 0;
  long long served = 0;

  const long total_steps = cfg.warmup_steps + cfg.measure_steps;
  for (long step = 0; step < total_steps; ++step) {
    const bool measuring = step >= cfg.warmup_steps;

    // 1. Arrivals: each balancer draws its batch of request types. Under
    // the burst model a balancer may be inactive this step (empty batch).
    double activity = 1.0;
    if (cfg.burst) {
      if (burst_rng.bernoulli(1.0 / cfg.burst->mean_dwell_steps)) {
        burst_high = !burst_high;
      }
      activity = burst_high ? cfg.burst->high_activity
                            : cfg.burst->low_activity;
    }
    for (auto& batch : types) {
      const bool active = activity >= 1.0 || arrivals_rng.bernoulli(activity);
      batch.resize(active ? cfg.batch_size : 0);
      for (auto& t : batch) {
        t = arrivals_rng.bernoulli(cfg.p_colocate) ? TaskType::kC
                                                   : TaskType::kE;
      }
    }

    // 2. Routing decisions (made simultaneously and without communication;
    //    the strategy object enforces its own information discipline).
    for (std::size_t s = 0; s < servers.size(); ++s) {
      queue_snapshot[s] = servers.queue_length(s);
    }
    ClusterView view{cfg.num_servers, &queue_snapshot};
    strategy.assign(types, targets, view, strategy_rng);

    for (std::size_t b = 0; b < cfg.num_balancers; ++b) {
      for (std::size_t k = 0; k < types[b].size(); ++k) {
        FTL_ASSERT(targets[b][k] < cfg.num_servers);
        servers.enqueue(targets[b][k], types[b][k],
                        static_cast<std::uint32_t>(b),
                        static_cast<std::int32_t>(step));
        if (measuring) {
          ++arrived;
          m_arrived.inc();
        }
      }
    }

    // 3. Service.
    Request batch_out[2];
    for (std::size_t s = 0; s < servers.size(); ++s) {
      const std::size_t n = servers.step(s, cfg.policy, batch_out);
      for (std::size_t i = 0; i < n; ++i) {
        const Request& r = batch_out[i];
        if (r.arrival_step >= cfg.warmup_steps && measuring) {
          ++served;
          m_served.inc();
          const double d = static_cast<double>(step - r.arrival_step);
          delay_acc.add(d);
          delays.push_back(d);
          m_delay.observe(d);
          (r.type == TaskType::kC ? delay_c_acc : delay_e_acc).add(d);
        }
      }
      if (measuring) {
        const auto depth = static_cast<double>(servers.queue_length(s));
        queue_len_acc.add(depth);
        m_queue_depth.observe(depth);
        m_queue_hw.update_max(depth);
      }
    }
    if (measuring) m_steps.inc();
  }

  LbResult out;
  out.mean_queue_length = queue_len_acc.mean();
  out.mean_delay = delay_acc.mean();
  out.p95_delay = delays.empty() ? 0.0 : util::percentile(delays, 0.95);
  out.mean_delay_c = delay_c_acc.mean();
  out.mean_delay_e = delay_e_acc.mean();
  out.throughput = static_cast<double>(served) /
                   (static_cast<double>(cfg.measure_steps) *
                    static_cast<double>(cfg.num_servers));
  out.arrived = arrived;
  out.served = served;
  long long queued = 0;
  for (std::size_t s = 0; s < servers.size(); ++s) {
    servers.for_each_queued(s, [&](TaskType, const ServerArray::Slot& slot) {
      if (slot.arrival_step >= cfg.warmup_steps) ++queued;
    });
  }
  out.still_queued = queued;
  return out;
}

}  // namespace ftl::lb

// Typed cluster simulation: load balancing with k task types under an
// affinity graph (§4.1's XOR-game generalisation and the "multiple
// subtypes of type-C" caveat).
//
// Service model: a server can run two queued tasks in the same timestep iff
// their types are Colocate-affine (e.g. two tasks of the same cache-sharing
// subtype); everything else runs alone. Exclusive tasks suffer
// *interference*: while a task shares the queue with an Exclusive-affine
// neighbour, its service completes only with probability
// (1 - interference) per step (the noisy-neighbour cost that makes
// separation worth coordinating for). An affinity graph with two mutually
// exclusive C-subtypes also defeats the dedicated-servers classical
// baseline — mixing the subtypes in one pool wastes pairing capacity.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "correlate/typed_source.hpp"
#include "games/affinity.hpp"
#include "lb/simulator.hpp"

namespace ftl::lb {

/// How a typed server spends one timestep.
enum class TypedServicePolicy : std::uint8_t {
  /// FIFO with pairing: serve the first Colocate-affine pair in the scan
  /// window, else the head alone.
  kPairsFirstFifo = 0,
  /// Generalisation of the paper's Figure-4 policy: tasks of self-pairable
  /// (self-Colocate) types have strict priority — serve the first
  /// colocatable pair, else the first self-pairable task alone; tasks of
  /// self-Exclusive types run only when no self-pairable task waits. For a
  /// binary {C, E} graph this is exactly ServicePolicy::kPaperCFirst.
  kPriorityPairs = 1,
};

struct TypedLbConfig {
  std::size_t num_balancers = 100;
  std::size_t num_servers = 64;
  /// Arrival probability per type (must sum to 1; size = num task types).
  std::vector<double> type_probs;
  long warmup_steps = 800;
  long measure_steps = 3000;
  /// Probability that a conflicted head-of-line task fails to complete in a
  /// step (0 = conflicts are free, as in the plain pairing model).
  double interference = 0.5;
  TypedServicePolicy policy = TypedServicePolicy::kPriorityPairs;
  /// If > 0, the type mix drifts: every `mix_drift_period` steps the
  /// arrival probabilities are resampled (normalised exponentials, i.e.
  /// Dirichlet(1)). Static dedicated pools cannot follow the drift; typed
  /// paired strategies and random assignment are mix-oblivious.
  long mix_drift_period = 0;
  std::uint64_t seed = 1;
};

/// Routing strategies for typed workloads.
class TypedLbStrategy {
 public:
  virtual ~TypedLbStrategy() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// `types[b]` is balancer b's task type this step; fill `out[b]`.
  virtual void assign(const std::vector<std::size_t>& types,
                      std::vector<std::size_t>& out, std::size_t num_servers,
                      util::Rng& rng) = 0;
};

/// Uniform random server per task.
class TypedRandomStrategy final : public TypedLbStrategy {
 public:
  [[nodiscard]] std::string name() const override { return "typed-random"; }
  void assign(const std::vector<std::size_t>& types,
              std::vector<std::size_t>& out, std::size_t num_servers,
              util::Rng& rng) override;
};

/// The dedicated-pool classical baseline: each type group gets a server
/// pool; tasks go to a random server of their group's pool. With
/// `group_of[type]` collapsing several types into one pool this reproduces
/// the §4.1 caveat exactly (C-subtypes forced to share a pool).
class TypedDedicatedStrategy final : public TypedLbStrategy {
 public:
  /// `group_of[t]` in [0, num_groups); pools split servers evenly.
  TypedDedicatedStrategy(std::vector<std::size_t> group_of,
                         std::size_t num_groups);

  [[nodiscard]] std::string name() const override { return "typed-dedicated"; }
  void assign(const std::vector<std::size_t>& types,
              std::vector<std::size_t>& out, std::size_t num_servers,
              util::Rng& rng) override;

 private:
  std::vector<std::size_t> group_of_;
  std::size_t num_groups_;
};

/// Paired balancers playing the affinity XOR game through a typed source.
class TypedPairedStrategy final : public TypedLbStrategy {
 public:
  explicit TypedPairedStrategy(
      std::unique_ptr<correlate::TypedDecisionSource> source);

  [[nodiscard]] std::string name() const override;
  void assign(const std::vector<std::size_t>& types,
              std::vector<std::size_t>& out, std::size_t num_servers,
              util::Rng& rng) override;

 private:
  std::unique_ptr<correlate::TypedDecisionSource> source_;
};

/// Runs the typed simulation; pairing eligibility comes from the graph.
[[nodiscard]] LbResult run_typed_lb_sim(const TypedLbConfig& cfg,
                                        const games::AffinityGraph& graph,
                                        TypedLbStrategy& strategy);

}  // namespace ftl::lb

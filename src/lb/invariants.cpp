#include "lb/invariants.hpp"

#include <sstream>

namespace ftl::lb {

std::string conservation_violation(const LbResult& r) {
  std::ostringstream os;
  if (r.arrived < 0 || r.served < 0 || r.still_queued < 0) {
    os << "negative counter: arrived=" << r.arrived << " served=" << r.served
       << " still_queued=" << r.still_queued;
    return os.str();
  }
  if (r.arrived != r.served + r.still_queued) {
    os << "requests lost or invented: arrived=" << r.arrived
       << " != served=" << r.served << " + still_queued=" << r.still_queued;
    return os.str();
  }
  if (r.mean_queue_length < 0.0) {
    os << "negative mean queue length " << r.mean_queue_length;
    return os.str();
  }
  if (r.mean_delay < 0.0 || r.p95_delay < 0.0) {
    os << "negative delay: mean=" << r.mean_delay << " p95=" << r.p95_delay;
    return os.str();
  }
  if (r.mean_delay > r.p95_delay && r.p95_delay > 0.0 &&
      r.mean_delay / r.p95_delay > 20.0) {
    // Mean above p95 is possible for heavy tails, but a 20x gap means the
    // percentile and the mean disagree about which distribution they saw.
    os << "mean delay " << r.mean_delay << " implausibly above p95 "
       << r.p95_delay;
    return os.str();
  }
  if (r.throughput < 0.0) {
    os << "negative throughput " << r.throughput;
    return os.str();
  }
  return "";
}

bool conserves_requests(const LbResult& r) {
  return conservation_violation(r).empty();
}

}  // namespace ftl::lb

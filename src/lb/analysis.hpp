// Analytical queueing results used to validate the cluster simulator.
//
// Under random assignment each server is an independent discrete-time
// queue with i.i.d. batch arrivals. For unit service the Lindley recursion
// Q' = (Q + A - 1)^+ has the exact stationary mean
//
//     E[Q] = (E[A^2] - E[A]) / (2 (1 - E[A]))        (E[A] < 1)
//
// which pins down the simulator's pure-type-E behaviour with no free
// parameters. For the paper's C-priority policy we bound the stability
// threshold: C capacity lies between 1 and 2 per slot (single Cs waste
// half a slot), so the knee of Figure 4 must fall between the two bounds —
// a sanity check the tests enforce against the measured knee.
#pragma once

#include <cstddef>

namespace ftl::lb {

/// First two moments of the per-step arrival batch at one server.
struct ArrivalMoments {
  double mean = 0.0;
  double second_moment = 0.0;

  /// N balancers each sending to this server with probability p.
  [[nodiscard]] static ArrivalMoments from_binomial(std::size_t n, double p);
  [[nodiscard]] static ArrivalMoments from_poisson(double lambda);
};

/// Exact stationary mean queue length (measured after service) of the
/// unit-service discrete-time queue; requires mean < 1.
[[nodiscard]] double unit_service_mean_queue(const ArrivalMoments& a);

/// Stationary mean waiting time via Little's law (W = Q / lambda).
[[nodiscard]] double unit_service_mean_wait(const ArrivalMoments& a);

struct StabilityBounds {
  /// Load N/M below which the system is certainly stable (C capacity 1).
  double lower = 0.0;
  /// Load N/M above which the system is certainly unstable (C capacity 2).
  double upper = 0.0;
};

/// Stability bounds for the paper's C-priority policy under random
/// assignment with P(type C) = p_colocate.
[[nodiscard]] StabilityBounds paper_policy_stability_bounds(double p_colocate);

}  // namespace ftl::lb

#include "lb/strategy.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ftl::lb {

namespace {

void size_output(const std::vector<std::vector<TaskType>>& types,
                 std::vector<std::vector<std::size_t>>& out) {
  out.resize(types.size());
  for (std::size_t b = 0; b < types.size(); ++b) out[b].resize(types[b].size());
}

}  // namespace

void RandomStrategy::assign(const std::vector<std::vector<TaskType>>& types,
                            std::vector<std::vector<std::size_t>>& out,
                            const ClusterView& view, util::Rng& rng) {
  size_output(types, out);
  for (std::size_t b = 0; b < types.size(); ++b) {
    for (std::size_t k = 0; k < types[b].size(); ++k) {
      out[b][k] = rng.uniform_int(view.num_servers);
    }
  }
}

void RoundRobinStrategy::assign(
    const std::vector<std::vector<TaskType>>& types,
    std::vector<std::vector<std::size_t>>& out, const ClusterView& view,
    util::Rng& rng) {
  size_output(types, out);
  if (next_.size() != types.size()) {
    next_.resize(types.size());
    for (auto& n : next_) n = rng.uniform_int(view.num_servers);
  }
  for (std::size_t b = 0; b < types.size(); ++b) {
    for (std::size_t k = 0; k < types[b].size(); ++k) {
      out[b][k] = next_[b];
      next_[b] = (next_[b] + 1) % view.num_servers;
    }
  }
}

void PowerOfTwoStrategy::assign(
    const std::vector<std::vector<TaskType>>& types,
    std::vector<std::vector<std::size_t>>& out, const ClusterView& view,
    util::Rng& rng) {
  size_output(types, out);
  FTL_ASSERT_MSG(view.queue_lengths != nullptr,
                 "power-of-two needs queue visibility");
  const auto& q = *view.queue_lengths;
  for (std::size_t b = 0; b < types.size(); ++b) {
    for (std::size_t k = 0; k < types[b].size(); ++k) {
      const auto [s1, s2] = rng.distinct_pair(view.num_servers);
      out[b][k] = q[s1] <= q[s2] ? s1 : s2;
    }
  }
}

PairedStrategy::PairedStrategy(
    std::unique_ptr<correlate::PairedDecisionSource> src)
    : source_(std::move(src)) {
  FTL_ASSERT(source_ != nullptr);
  const obs::Labels label{{"source", source_->name()}};
  rounds_won_ = &obs::registry().counter("lb.chsh.rounds_won", label);
  rounds_lost_ = &obs::registry().counter("lb.chsh.rounds_lost", label);
}

std::string PairedStrategy::name() const {
  return "paired(" + source_->name() + ")";
}

void PairedStrategy::assign(const std::vector<std::vector<TaskType>>& types,
                            std::vector<std::vector<std::size_t>>& out,
                            const ClusterView& view, util::Rng& rng) {
  size_output(types, out);
  FTL_ASSERT_MSG(types.size() % 2 == 0,
                 "paired strategy needs an even number of balancers");
  FTL_ASSERT(view.num_servers >= 2);
  for (std::size_t p = 0; p + 1 < types.size(); p += 2) {
    FTL_ASSERT_MSG(types[p].size() <= 1 && types[p + 1].size() <= 1,
                   "paired strategy is defined for batch size 1");
    const bool left = !types[p].empty();
    const bool right = !types[p + 1].empty();
    if (!left && !right) continue;  // neither balancer active (burst lull)
    // Shared randomness: both balancers of the pair pre-agree (e.g. via a
    // shared PRG seed) on this round's two candidate servers.
    const auto [s0, s1] = rng.distinct_pair(view.num_servers);
    if (left && right) {
      const int x = types[p][0] == TaskType::kC ? 1 : 0;
      const int y = types[p + 1][0] == TaskType::kC ? 1 : 0;
      const auto [a, b] = source_->decide(x, y, rng);
      // Flipped-CHSH win condition: a XOR b == NOT(x AND y) — both-C pairs
      // co-locate, every other pair separates.
      const bool won = ((a ^ b) != 0) == !(x == 1 && y == 1);
      (won ? *rounds_won_ : *rounds_lost_).inc();
      out[p][0] = a == 0 ? s0 : s1;
      out[p + 1][0] = b == 0 ? s0 : s1;
    } else {
      // A lone active balancer sees only its own side of the correlation —
      // a uniform marginal — so it picks a candidate with a fair coin.
      const std::size_t idx = left ? p : p + 1;
      out[idx][0] = rng.bernoulli(0.5) ? s1 : s0;
    }
  }
}

DedicatedServersStrategy::DedicatedServersStrategy(double c_fraction)
    : c_fraction_(c_fraction) {
  FTL_ASSERT(c_fraction > 0.0 && c_fraction < 1.0);
}

std::string DedicatedServersStrategy::name() const {
  return "dedicated(f=" + std::to_string(c_fraction_) + ")";
}

void DedicatedServersStrategy::assign(
    const std::vector<std::vector<TaskType>>& types,
    std::vector<std::vector<std::size_t>>& out, const ClusterView& view,
    util::Rng& rng) {
  size_output(types, out);
  // Servers [0, n_c) take C tasks, [n_c, M) take E tasks.
  const auto n_c = std::max<std::size_t>(
      1, static_cast<std::size_t>(c_fraction_ *
                                  static_cast<double>(view.num_servers)));
  FTL_ASSERT(n_c < view.num_servers);
  for (std::size_t b = 0; b < types.size(); ++b) {
    for (std::size_t k = 0; k < types[b].size(); ++k) {
      if (types[b][k] == TaskType::kC) {
        out[b][k] = rng.uniform_int(n_c);
      } else {
        out[b][k] = n_c + rng.uniform_int(view.num_servers - n_c);
      }
    }
  }
}

void LocalBatchingStrategy::assign(
    const std::vector<std::vector<TaskType>>& types,
    std::vector<std::vector<std::size_t>>& out, const ClusterView& view,
    util::Rng& rng) {
  size_output(types, out);
  for (std::size_t b = 0; b < types.size(); ++b) {
    const std::size_t c_target = rng.uniform_int(view.num_servers);
    for (std::size_t k = 0; k < types[b].size(); ++k) {
      out[b][k] = types[b][k] == TaskType::kC
                      ? c_target
                      : rng.uniform_int(view.num_servers);
    }
  }
}

}  // namespace ftl::lb

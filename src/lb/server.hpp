// A backend server with a FIFO queue and the paper's batched-C service.
#pragma once

#include <deque>
#include <vector>

#include "lb/types.hpp"

namespace ftl::lb {

class Server {
 public:
  void enqueue(const Request& r) { queue_.push_back(r); }

  /// Runs one timestep of service under `policy`; served requests are
  /// returned (in service order) for delay accounting.
  std::vector<Request> step(ServicePolicy policy);

  [[nodiscard]] std::size_t queue_length() const { return queue_.size(); }
  [[nodiscard]] std::size_t queued_of(TaskType t) const;
  [[nodiscard]] const std::deque<Request>& queue() const { return queue_; }

 private:
  /// Removes and returns the first queued request of type `t`, if any.
  bool take_first_of(TaskType t, Request& out);

  std::deque<Request> queue_;
};

}  // namespace ftl::lb

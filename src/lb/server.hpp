// Backend servers with FIFO queues and the paper's batched-C service.
//
// Storage is struct-of-arrays: ServerArray keeps one C lane and one E lane
// per server (flat Slot vectors with head cursors) plus a per-server FIFO
// sequence column. Because every service policy only ever needs "the first
// queued request of type t", a lane pop replaces the old linear deque scan
// — service is O(1) per request instead of O(queue length), which is what
// lets the sharded Fig-4 engine run 10^5–10^6 servers. kFifoPair recovers
// strict arrival order by comparing the lane heads' sequence numbers.
#pragma once

#include <cstdint>
#include <vector>

#include "lb/types.hpp"

namespace ftl::lb {

/// The state of the whole cluster's queues, indexed by server.
class ServerArray {
 public:
  /// One queued request, packed for the lanes (12 bytes vs 24 for Request).
  struct Slot {
    std::int32_t arrival_step = 0;
    std::uint32_t balancer = 0;
    /// Per-server arrival sequence across both lanes; lower = arrived
    /// earlier. Lets kFifoPair find the true FIFO head across lanes.
    std::uint32_t seq = 0;
  };

  explicit ServerArray(std::size_t num_servers);

  [[nodiscard]] std::size_t size() const { return c_lanes_.size(); }

  void enqueue(std::size_t server, TaskType type, std::uint32_t balancer,
               std::int32_t arrival_step);

  /// Runs one timestep of service for `server` under `policy`; writes the
  /// served requests (in service order, at most 2) into `out` and returns
  /// the count. Identical service semantics to the original deque scan.
  std::size_t step(std::size_t server, ServicePolicy policy, Request out[2]);

  [[nodiscard]] std::size_t queue_length(std::size_t server) const {
    return c_lanes_[server].pending() + e_lanes_[server].pending();
  }
  [[nodiscard]] std::size_t queued_of(std::size_t server, TaskType t) const {
    return lane(server, t).pending();
  }

  /// Visits every queued request of `server` as (type, slot). Lane order,
  /// not arrival order — fine for counting/conservation checks.
  template <typename Fn>
  void for_each_queued(std::size_t server, Fn&& fn) const {
    const Lane& c = c_lanes_[server];
    for (std::size_t i = c.head; i < c.slots.size(); ++i) {
      fn(TaskType::kC, c.slots[i]);
    }
    const Lane& e = e_lanes_[server];
    for (std::size_t i = e.head; i < e.slots.size(); ++i) {
      fn(TaskType::kE, e.slots[i]);
    }
  }

 private:
  /// A per-server FIFO of one task type: a flat vector plus a head cursor,
  /// compacted amortised-O(1) so memory stays proportional to the queue.
  struct Lane {
    std::vector<Slot> slots;
    std::size_t head = 0;

    [[nodiscard]] std::size_t pending() const { return slots.size() - head; }
    [[nodiscard]] const Slot& front() const { return slots[head]; }
    void pop();
  };

  [[nodiscard]] Lane& lane(std::size_t server, TaskType t) {
    return t == TaskType::kC ? c_lanes_[server] : e_lanes_[server];
  }
  [[nodiscard]] const Lane& lane(std::size_t server, TaskType t) const {
    return t == TaskType::kC ? c_lanes_[server] : e_lanes_[server];
  }

  /// Pops the front of `l` into `out[n]` as a Request of type `t`.
  static std::size_t emit(Lane& l, TaskType t, Request out[2], std::size_t n);

  std::vector<Lane> c_lanes_;
  std::vector<Lane> e_lanes_;
  std::vector<std::uint32_t> next_seq_;
};

/// Single-server facade over ServerArray, keeping the original unit-test
/// surface (enqueue whole Requests, step returning a vector).
class Server {
 public:
  Server() : array_(1) {}

  void enqueue(const Request& r) {
    array_.enqueue(0, r.type, static_cast<std::uint32_t>(r.balancer),
                   static_cast<std::int32_t>(r.arrival_step));
  }

  /// Runs one timestep of service under `policy`; served requests are
  /// returned (in service order) for delay accounting.
  std::vector<Request> step(ServicePolicy policy);

  [[nodiscard]] std::size_t queue_length() const {
    return array_.queue_length(0);
  }
  [[nodiscard]] std::size_t queued_of(TaskType t) const {
    return array_.queued_of(0, t);
  }

 private:
  ServerArray array_;
};

}  // namespace ftl::lb

// Shared types of the cluster load-balancing simulation (§4.1).
#pragma once

#include <cstdint>
#include <cstddef>

namespace ftl::lb {

/// The paper's two task classes: type-C tasks benefit from co-location
/// (shared caches, GPU parallelism), type-E tasks want exclusive access.
enum class TaskType : std::uint8_t { kC = 0, kE = 1 };

struct Request {
  TaskType type = TaskType::kC;
  /// Which load balancer emitted it.
  std::size_t balancer = 0;
  /// Simulation step at which it arrived (for delay accounting).
  long arrival_step = 0;
};

/// How a server spends one timestep of capacity. The paper's text: servers
/// "can simultaneously process two type-C requests first, followed by
/// type-E requests, which are executed one at a time"; footnote 2 claims
/// robustness to other policies, which kFifoPair and kEFirst probe.
enum class ServicePolicy : std::uint8_t {
  /// C-priority: serve up to two C requests if any C is queued, else one E.
  kPaperCFirst = 0,
  /// FIFO head-of-line: if the head is C it may pair with the next queued C
  /// (served together); if the head is E it is served alone.
  kFifoPair = 1,
  /// E-priority: serve one E if any is queued, else up to two Cs.
  kEFirst = 2,
};

[[nodiscard]] const char* to_string(ServicePolicy p);

}  // namespace ftl::lb

// Load-balancer assignment strategies (§4.1).
//
// Each timestep every balancer gets a batch of requests (batch size 1 in
// the paper's simulation) and must pick a server for each. Honest
// distributed strategies use only the balancer's local inputs plus
// pre-shared randomness or entanglement — never another balancer's input.
// The ClusterView argument exposes global queue state for the informed
// baselines (power-of-two choices); honest strategies ignore it.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "correlate/decision_source.hpp"
#include "lb/types.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace ftl::lb {

struct ClusterView {
  std::size_t num_servers = 0;
  /// Queue length per server at the start of the step (stale by the time
  /// requests land — as in any real system).
  const std::vector<std::size_t>* queue_lengths = nullptr;
};

class LbStrategy {
 public:
  virtual ~LbStrategy() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// `types[b][k]` is balancer b's k-th request this step; fills
  /// `out[b][k]` with the chosen server index.
  virtual void assign(const std::vector<std::vector<TaskType>>& types,
                      std::vector<std::vector<std::size_t>>& out,
                      const ClusterView& view, util::Rng& rng) = 0;
};

/// Uniformly random server per request (the paper's classical baseline).
class RandomStrategy final : public LbStrategy {
 public:
  [[nodiscard]] std::string name() const override { return "random"; }
  void assign(const std::vector<std::vector<TaskType>>& types,
              std::vector<std::vector<std::size_t>>& out,
              const ClusterView& view, util::Rng& rng) override;
};

/// Independent per-balancer round robin from a random offset.
class RoundRobinStrategy final : public LbStrategy {
 public:
  [[nodiscard]] std::string name() const override { return "round-robin"; }
  void assign(const std::vector<std::vector<TaskType>>& types,
              std::vector<std::vector<std::size_t>>& out,
              const ClusterView& view, util::Rng& rng) override;

 private:
  std::vector<std::size_t> next_;
};

/// Power of two choices [44]: probe two random servers, pick the shorter
/// queue. Uses the (start-of-step) global queue info in ClusterView.
class PowerOfTwoStrategy final : public LbStrategy {
 public:
  [[nodiscard]] std::string name() const override { return "po2"; }
  void assign(const std::vector<std::vector<TaskType>>& types,
              std::vector<std::vector<std::size_t>>& out,
              const ClusterView& view, util::Rng& rng) override;
};

/// The paper's quantum scheme (and its classical/omniscient ablations):
/// balancers are paired; each pair draws two distinct candidate servers per
/// step from shared randomness and plays the flipped CHSH game through a
/// correlate::PairedDecisionSource — both type-C => same server, otherwise
/// different servers (with the source's win probability).
/// Requires an even number of balancers and batch size 1.
class PairedStrategy final : public LbStrategy {
 public:
  explicit PairedStrategy(std::unique_ptr<correlate::PairedDecisionSource> src);

  [[nodiscard]] std::string name() const override;
  void assign(const std::vector<std::vector<TaskType>>& types,
              std::vector<std::vector<std::size_t>>& out,
              const ClusterView& view, util::Rng& rng) override;

 private:
  std::unique_ptr<correlate::PairedDecisionSource> source_;
  // Cached at construction (labeled by source name) so the per-step hot
  // path is a relaxed atomic increment.
  obs::Counter* rounds_won_;
  obs::Counter* rounds_lost_;
};

/// §4.1 caveat baseline: a fixed fraction of servers is dedicated to C
/// tasks; C goes to a random dedicated server, E to a random other server.
class DedicatedServersStrategy final : public LbStrategy {
 public:
  explicit DedicatedServersStrategy(double c_fraction);

  [[nodiscard]] std::string name() const override;
  void assign(const std::vector<std::vector<TaskType>>& types,
              std::vector<std::vector<std::size_t>>& out,
              const ClusterView& view, util::Rng& rng) override;

 private:
  double c_fraction_;
};

/// §4.1 caveat baseline for multi-request batches: each balancer sends all
/// of this step's C tasks to one random server and scatters E tasks.
class LocalBatchingStrategy final : public LbStrategy {
 public:
  [[nodiscard]] std::string name() const override { return "local-batching"; }
  void assign(const std::vector<std::vector<TaskType>>& types,
              std::vector<std::vector<std::size_t>>& out,
              const ClusterView& view, util::Rng& rng) override;
};

}  // namespace ftl::lb

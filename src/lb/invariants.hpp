// Conservation and sanity invariants for the load-balancing simulators.
//
// Both run_lb_sim and run_typed_lb_sim count every measured arrival, every
// measured service completion, and every measured task still queued at the
// end. A correct simulator loses nothing: arrived == served + still_queued,
// exactly, for every config — the queue-conservation law the property
// suites check on random workloads.
#pragma once

#include <string>

#include "lb/simulator.hpp"

namespace ftl::lb {

/// Empty when all conservation and sanity laws hold; otherwise names the
/// first violated law with its numbers (usable directly as a property-test
/// failure note).
[[nodiscard]] std::string conservation_violation(const LbResult& r);

/// Convenience wrapper: conservation_violation(r).empty().
[[nodiscard]] bool conserves_requests(const LbResult& r);

}  // namespace ftl::lb

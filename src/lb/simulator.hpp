// The §4.1 cluster simulation: N load balancers, M servers, discrete time.
//
// Each timestep every balancer receives a batch of requests (type C with
// probability p_colocate, else type E), routes each via the strategy, and
// every server then runs one step of its service policy. Figure 4 reports
// the time-averaged queue length as a function of load N/M; we additionally
// record queueing delay (the caption's metric), per-type delays, throughput,
// and a conservation check.
#pragma once

#include <cstdint>
#include <optional>

#include "lb/strategy.hpp"
#include "lb/types.hpp"

namespace ftl::lb {

/// Optional two-state Markov-modulated arrival process. The chain sits in
/// a HIGH or LOW activity phase; each balancer independently receives its
/// batch with the phase's activity probability. With both activities at 1
/// this degenerates to the paper's deterministic one-request-per-step
/// model. Used by the caveats bench to test whether the Figure-4 advantage
/// survives bursty traffic.
struct BurstModel {
  double high_activity = 1.0;
  double low_activity = 0.3;
  /// Mean steps spent in each phase before switching.
  double mean_dwell_steps = 50.0;
};

struct LbConfig {
  std::size_t num_balancers = 100;
  std::size_t num_servers = 50;
  /// P(request is type C).
  double p_colocate = 0.5;
  /// Requests per balancer per step (the paper uses 1; the local-batching
  /// caveat uses more).
  std::size_t batch_size = 1;
  /// If set, arrivals are Markov-modulated instead of deterministic.
  std::optional<BurstModel> burst;
  ServicePolicy policy = ServicePolicy::kPaperCFirst;
  /// Steps discarded before measurement starts.
  long warmup_steps = 1000;
  long measure_steps = 4000;
  std::uint64_t seed = 1;

  [[nodiscard]] double load() const {
    return static_cast<double>(num_balancers * batch_size) /
           static_cast<double>(num_servers);
  }
};

struct LbResult {
  /// Mean queue length per server, time-averaged post-warmup (Fig 4 y-axis
  /// per the body text).
  double mean_queue_length = 0.0;
  /// Mean queueing delay (steps from arrival to service) of requests that
  /// were served during measurement (Fig 4 caption's metric).
  double mean_delay = 0.0;
  double p95_delay = 0.0;
  double mean_delay_c = 0.0;
  double mean_delay_e = 0.0;
  /// Served requests per server per step.
  double throughput = 0.0;
  /// Conservation check inputs: everything that arrived is either served
  /// or still queued at the end.
  long long arrived = 0;
  long long served = 0;
  long long still_queued = 0;
};

[[nodiscard]] LbResult run_lb_sim(const LbConfig& cfg, LbStrategy& strategy);

}  // namespace ftl::lb

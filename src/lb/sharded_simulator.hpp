// Sharded Figure-4 cluster simulation: the §4.1 model scaled to 10^5–10^6
// servers by running independent shards on a sim::ShardPool.
//
// Sharding model. The cluster is cut into `num_shards` sub-clusters, each
// owning a contiguous slice of balancers and servers (sim::shard_range) and
// running the full synchronous step loop on its own state: its own
// lb::ServerArray, its own decision source, and its own RNG streams seeded
// with sim::shard_seed(master, shard). Shards never read each other's
// state, so the run is deterministic in (seed, num_shards) no matter how
// the pool schedules them. Physically this matches the paper's setting:
// Fig-4 curves depend on the load N/M, not on N, and balancer pairs never
// coordinate across pairs — so a sharded cluster at the same per-shard load
// is statistically the same system (sharded_sim_test enforces this against
// run_lb_sim, plus an *exact* check: with num_shards == 1 the engine
// consumes the identical RNG stream as run_lb_sim and reproduces its
// deterministic counters bit for bit).
//
// Accounting. Deterministic outputs (requests arrived/served/still queued,
// CHSH rounds won/lost) are integers summed in shard order — bit-identical
// across runs and thread counts. Queue lengths and delays are integers in
// this model too, so the distributional outputs (mean queue length, mean
// delay, delay histogram) come from exact per-shard integer sums and
// fixed-bin counts merged after the barrier — also bit-identical, with one
// float division at the end. (run_lb_sim computes the same means through a
// Welford accumulator, so the reference comparison agrees to rounding, not
// bit for bit.) The merged totals also land in the lock-free obs registry
// under lb.sharded.*.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lb/types.hpp"
#include "sim/sharded.hpp"
#include "util/histogram.hpp"

namespace ftl::lb {

struct ShardedLbConfig {
  /// Totals across all shards; each shard gets a contiguous slice. For the
  /// paired sources every shard needs an even balancer count and >= 2
  /// servers (keep num_balancers and num_servers divisible by num_shards
  /// for equal per-shard load).
  std::size_t num_balancers = 100;
  std::size_t num_servers = 50;
  /// P(request is type C).
  double p_colocate = 0.5;
  ServicePolicy policy = ServicePolicy::kPaperCFirst;
  long warmup_steps = 1000;
  long measure_steps = 4000;
  std::uint64_t seed = 1;
  std::size_t num_shards = 1;
  /// "random" routes every request to a uniform server (the classical
  /// baseline); any other value is a correlate::make_source kind
  /// ("quantum-chsh", "classical-chsh", "omniscient", "independent")
  /// played by balancer pairs over shared candidate servers.
  std::string source = "random";
  double visibility = 1.0;
  /// Delay histogram range [0, delay_hist_max), used for the p95 estimate;
  /// larger delays clamp into the top bin.
  double delay_hist_max = 512.0;
  std::size_t delay_hist_bins = 256;

  [[nodiscard]] double load() const {
    return static_cast<double>(num_balancers) /
           static_cast<double>(num_servers);
  }
};

/// All-integer outputs: bit-identical across repeated runs with the same
/// (seed, num_shards), independent of thread count and scheduling.
struct ShardedCounters {
  long long arrived = 0;
  long long served = 0;
  long long still_queued = 0;
  long long rounds_won = 0;
  long long rounds_lost = 0;

  ShardedCounters& operator+=(const ShardedCounters& o) {
    arrived += o.arrived;
    served += o.served;
    still_queued += o.still_queued;
    rounds_won += o.rounds_won;
    rounds_lost += o.rounds_lost;
    return *this;
  }
  friend bool operator==(const ShardedCounters&,
                         const ShardedCounters&) = default;
};

struct ShardedLbResult {
  /// Shard-ordered sum of per_shard (the deterministic signature of a run).
  ShardedCounters counters;
  std::vector<ShardedCounters> per_shard;

  /// Distributional outputs, merged in shard order.
  double mean_queue_length = 0.0;
  double mean_delay = 0.0;
  /// Approximate (binned) 95th-percentile delay.
  double p95_delay = 0.0;
  /// Served requests per server per step.
  double throughput = 0.0;
  util::Histogram delay_hist{0.0, 1.0, 1};
};

/// Runs the sharded simulation on `pool` (pass nullptr to run on a private
/// single-thread inline pool — still shard-partitioned, still deterministic).
[[nodiscard]] ShardedLbResult run_sharded_lb_sim(const ShardedLbConfig& cfg,
                                                 sim::ShardPool* pool = nullptr);

}  // namespace ftl::lb

#include "correlate/batched.hpp"

namespace ftl::correlate {

OutcomeTable OutcomeTable::from_joint(const double joint[2][2][2][2]) {
  OutcomeTable t;
  for (int x = 0; x < 2; ++x) {
    for (int y = 0; y < 2; ++y) {
      // Same accumulation order as the historical scan so the partial sums
      // (and therefore every sampled outcome) are bit-identical.
      double cum = 0.0;
      int k = 0;
      for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 2; ++b) {
          cum += joint[x][y][a][b];
          if (k < 3) t.cum_[x][y][k++] = cum;
        }
      }
    }
  }
  return t;
}

OutcomeTable OutcomeTable::from_strategy(
    const games::QuantumStrategy& strategy) {
  double joint[2][2][2][2];
  for (int x = 0; x < 2; ++x) {
    for (int y = 0; y < 2; ++y) {
      for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 2; ++b) {
          joint[x][y][a][b] = strategy.joint_probability(
              static_cast<std::size_t>(x), static_cast<std::size_t>(y), a, b);
        }
      }
    }
  }
  return from_joint(joint);
}

void OutcomeTable::sample_rounds(const int* xs, const int* ys, int* as,
                                 int* bs, std::size_t n,
                                 util::Rng& rng) const {
  for (std::size_t i = 0; i < n; ++i) {
    const auto [a, b] = outcome(xs[i], ys[i], rng.uniform());
    as[i] = a;
    bs[i] = b;
  }
}

double OutcomeTable::probability(int x, int y, int a, int b) const {
  const double* c = cum_[x][y];
  const int idx = a * 2 + b;
  const double hi = idx < 3 ? c[idx] : 1.0;
  const double lo = idx > 0 ? c[idx - 1] : 0.0;
  return hi - lo;
}

}  // namespace ftl::correlate

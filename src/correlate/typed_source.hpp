// Typed decision sources: the k-type generalisation of the CHSH pair.
//
// §4.1 generalises load balancing from two task classes to an affinity
// graph over k task types via XOR games. A TypedDecisionSource receives a
// task *type* at each endpoint (not just a C/E bit) and emits a decision
// bit; the pair's joint target is a XOR b = f(x, y) where f encodes the
// affinity graph (0 = co-locate, 1 = separate).
//
// The quantum implementation samples the *optimal quantum correlation* of
// the XOR game, obtained from its Tsirelson vectors: E(x, y) = <u_x, v_y>
// with uniform marginals. Such a correlation is quantum-realisable by
// Tsirelson's theorem (with one qubit per ceil(dim/2) of vector rank); we
// sample its joint distribution directly, which is the §5 testbed
// methodology ("controlled studies can cheat by classically simulating
// quantum correlations"). The two-type case is cross-checked against the
// honest measurement-by-measurement CHSH implementation in the tests.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "games/realize.hpp"
#include "games/xor_game.hpp"
#include "util/rng.hpp"

namespace ftl::correlate {

class TypedDecisionSource {
 public:
  virtual ~TypedDecisionSource() = default;

  [[nodiscard]] virtual std::size_t num_types() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  /// One round: endpoint inputs are task types in [0, num_types).
  [[nodiscard]] virtual std::pair<int, int> decide(std::size_t x,
                                                   std::size_t y,
                                                   util::Rng& rng) = 0;

  /// Exact P(a XOR b = f(x, y)) for this source on the given inputs.
  [[nodiscard]] virtual double win_probability(std::size_t x,
                                               std::size_t y) const = 0;
};

/// Independent fair coins: baseline, wins 1/2 everywhere.
class TypedIndependentSource final : public TypedDecisionSource {
 public:
  explicit TypedIndependentSource(games::XorGame game);

  [[nodiscard]] std::size_t num_types() const override {
    return game_.num_x();
  }
  [[nodiscard]] std::string name() const override { return "typed-independent"; }
  [[nodiscard]] std::pair<int, int> decide(std::size_t x, std::size_t y,
                                           util::Rng& rng) override;
  [[nodiscard]] double win_probability(std::size_t x,
                                       std::size_t y) const override;

 private:
  games::XorGame game_;
};

/// The exhaustive-search-optimal deterministic strategy, uniformised with a
/// shared coin (marginals stay fair, correlation unchanged).
class TypedClassicalSource final : public TypedDecisionSource {
 public:
  explicit TypedClassicalSource(games::XorGame game);

  [[nodiscard]] std::size_t num_types() const override;
  [[nodiscard]] std::string name() const override { return "typed-classical"; }
  [[nodiscard]] std::pair<int, int> decide(std::size_t x, std::size_t y,
                                           util::Rng& rng) override;
  [[nodiscard]] double win_probability(std::size_t x,
                                       std::size_t y) const override;

 private:
  games::XorGame game_;
  games::XorGame::ClassicalStrategy strategy_;
};

/// Samples the optimal quantum correlation of the XOR game (Tsirelson
/// vectors -> correlators -> joint distribution with uniform marginals).
class TypedQuantumSource final : public TypedDecisionSource {
 public:
  explicit TypedQuantumSource(games::XorGame game,
                              const sdp::GramOptions& opts = {});

  [[nodiscard]] std::size_t num_types() const override;
  [[nodiscard]] std::string name() const override { return "typed-quantum"; }
  [[nodiscard]] std::pair<int, int> decide(std::size_t x, std::size_t y,
                                           util::Rng& rng) override;
  [[nodiscard]] double win_probability(std::size_t x,
                                       std::size_t y) const override;

  /// Correlator E(x, y) realised by the Tsirelson vectors.
  [[nodiscard]] double correlator(std::size_t x, std::size_t y) const;

 private:
  games::XorGame game_;
  std::vector<std::vector<double>> correlators_;  // [x][y], clamped to [-1,1]
};

/// The honest counterpart of TypedQuantumSource: plays the *actual*
/// Tsirelson measurements (Clifford-algebra Pauli observables on a
/// maximally entangled register, games/realize) for every round. Each
/// endpoint measures only its own half, so the implementation is
/// distributed-faithful; it is slower than the sampled source but needs no
/// §5 caveat. The tests verify the two produce identical statistics.
class TypedRealizedSource final : public TypedDecisionSource {
 public:
  explicit TypedRealizedSource(games::XorGame game,
                               const sdp::GramOptions& opts = {});

  [[nodiscard]] std::size_t num_types() const override;
  [[nodiscard]] std::string name() const override { return "typed-realized"; }
  [[nodiscard]] std::pair<int, int> decide(std::size_t x, std::size_t y,
                                           util::Rng& rng) override;
  [[nodiscard]] double win_probability(std::size_t x,
                                       std::size_t y) const override;

  [[nodiscard]] std::size_t qubits_per_party() const;

 private:
  games::XorGame game_;
  games::RealizedXorStrategy strategy_;
};

/// Sees both types and always satisfies f — the §5 cheat / upper bound.
class TypedOmniscientSource final : public TypedDecisionSource {
 public:
  explicit TypedOmniscientSource(games::XorGame game);

  [[nodiscard]] std::size_t num_types() const override;
  [[nodiscard]] std::string name() const override { return "typed-omniscient"; }
  [[nodiscard]] std::pair<int, int> decide(std::size_t x, std::size_t y,
                                           util::Rng& rng) override;
  [[nodiscard]] double win_probability(std::size_t x,
                                       std::size_t y) const override;

 private:
  games::XorGame game_;
};

}  // namespace ftl::correlate

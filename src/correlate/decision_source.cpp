#include "correlate/decision_source.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace ftl::correlate {

namespace {
/// Target of the flipped game: a XOR b must equal NOT(x AND y).
int flipped_target(int x, int y) { return (x == 1 && y == 1) ? 0 : 1; }
}  // namespace

std::pair<int, int> IndependentRandomSource::decide(int /*x*/, int /*y*/,
                                                    util::Rng& rng) {
  return {rng.bernoulli(0.5) ? 1 : 0, rng.bernoulli(0.5) ? 1 : 0};
}

double IndependentRandomSource::win_probability(int /*x*/, int /*y*/) const {
  return 0.5;
}

std::pair<int, int> ClassicalChshSource::decide(int x, int y,
                                                util::Rng& rng) {
  // Deterministic core: a = 0, b = 1 satisfies a^b = 1 = NOT(x AND y)
  // whenever x AND y = 0, i.e. on 3 of 4 input pairs. The shared coin r is
  // XORed into both outputs: correlation is unchanged, marginals uniform.
  const int r = rng.bernoulli(0.5) ? 1 : 0;
  (void)x;
  (void)y;
  return {r, 1 ^ r};
}

double ClassicalChshSource::win_probability(int x, int y) const {
  return flipped_target(x, y) == 1 ? 1.0 : 0.0;
}

ChshSource::ChshSource(double visibility)
    : visibility_(visibility),
      strategy_(games::chsh_quantum_strategy(games::chsh_optimal_angles(),
                                             /*flip_bob_output=*/true,
                                             visibility)) {
  FTL_ASSERT(visibility >= 0.0 && visibility <= 1.0);
  table_ = OutcomeTable::from_strategy(strategy_);
}

std::pair<int, int> ChshSource::decide(int x, int y, util::Rng& rng) {
  FTL_ASSERT((x == 0 || x == 1) && (y == 0 || y == 1));
  // Inverse-CDF sample from the cached Born distribution; the table's
  // branchless lookup maps the same uniform to the same outcome the old
  // explicit scan did.
  return table_.sample(x, y, rng);
}

std::string ChshSource::name() const {
  return visibility_ >= 1.0 ? "quantum-chsh"
                            : "quantum-chsh(v=" + std::to_string(visibility_) +
                                  ")";
}

double ChshSource::win_probability(int x, int y) const {
  // With the optimal angles every input pair wins with the same
  // probability: (1 + v cos(pi/4)) / 2 = (1 + v/sqrt(2)) / 2.
  (void)x;
  (void)y;
  return 0.5 * (1.0 + visibility_ / std::sqrt(2.0));
}

MixedClassicalSource::MixedClassicalSource(double p_same) : p_same_(p_same) {
  FTL_ASSERT(p_same >= 0.0 && p_same <= 1.0);
}

std::pair<int, int> MixedClassicalSource::decide(int /*x*/, int /*y*/,
                                                 util::Rng& rng) {
  const int r = rng.bernoulli(0.5) ? 1 : 0;
  const int diff = rng.bernoulli(p_same_) ? 0 : 1;
  return {r, r ^ diff};
}

std::string MixedClassicalSource::name() const {
  return "classical-mixed(p=" + std::to_string(p_same_) + ")";
}

double MixedClassicalSource::win_probability(int x, int y) const {
  // Wants same outputs iff both inputs are 1 (the flipped game).
  return (x == 1 && y == 1) ? p_same_ : 1.0 - p_same_;
}

std::pair<int, int> OmniscientOracleSource::decide(int x, int y,
                                                   util::Rng& rng) {
  const int r = rng.bernoulli(0.5) ? 1 : 0;
  return {r, r ^ flipped_target(x, y)};
}

double OmniscientOracleSource::win_probability(int /*x*/, int /*y*/) const {
  return 1.0;
}

std::unique_ptr<PairedDecisionSource> make_source(const std::string& kind,
                                                  double visibility) {
  if (kind == "independent") return std::make_unique<IndependentRandomSource>();
  if (kind == "classical-chsh") return std::make_unique<ClassicalChshSource>();
  if (kind == "quantum-chsh") return std::make_unique<ChshSource>(visibility);
  if (kind == "omniscient") return std::make_unique<OmniscientOracleSource>();
  FTL_ASSERT_MSG(false, "unknown decision source kind");
  return nullptr;
}

}  // namespace ftl::correlate

// Batched CHSH round sampling from precomputed measurement-outcome tables.
//
// Sampling a round of a two-party game only ever needs the Born-rule joint
// distribution P(a,b | x,y) — a 16-entry table. OutcomeTable precomputes the
// cumulative form once per strategy so every subsequent draw is one uniform
// plus three branchless comparisons, with no density-matrix algebra on the
// hot path. That amortisation is what makes 10^8-request Fig-4 runs cheap:
// the quantum mechanics is evaluated once, then thousands of balancer pairs
// per step sample from the same table.
//
// sample() is drop-in equivalent to the historical inverse-CDF scan
// (`for (a,b) lexicographic: if (u < cum) return`): the branchless index is
// exactly the number of cumulative thresholds at or below u, including the
// u >= total fallback to (1,1). Same u -> same outcome, bit for bit.
#pragma once

#include <cstddef>
#include <utility>

#include "games/strategy.hpp"
#include "util/rng.hpp"

namespace ftl::correlate {

/// Cumulative-probability table for one two-input/two-outcome strategy.
class OutcomeTable {
 public:
  OutcomeTable() = default;

  /// Builds the table from P(a,b | x,y) in lexicographic (a,b) order.
  static OutcomeTable from_joint(const double joint[2][2][2][2]);

  /// Builds from a quantum strategy's Born-rule joint distribution (the
  /// only place density-matrix work happens).
  static OutcomeTable from_strategy(const games::QuantumStrategy& strategy);

  /// Maps a uniform draw u in [0,1) to an outcome pair for inputs (x,y).
  [[nodiscard]] std::pair<int, int> outcome(int x, int y, double u) const {
    const double* c = cum_[x][y];
    const int idx = (u >= c[0]) + (u >= c[1]) + (u >= c[2]);
    return {idx >> 1, idx & 1};
  }

  /// One round: consumes exactly one uniform from `rng`.
  [[nodiscard]] std::pair<int, int> sample(int x, int y, util::Rng& rng) const {
    return outcome(x, y, rng.uniform());
  }

  /// Batch of n rounds: as[i], bs[i] are the outcomes for inputs
  /// (xs[i], ys[i]). Consumes n uniforms in order, so the stream state
  /// after the call equals n sequential sample() calls.
  void sample_rounds(const int* xs, const int* ys, int* as, int* bs,
                     std::size_t n, util::Rng& rng) const;

  /// P(a,b | x,y), recovered from the cumulative table.
  [[nodiscard]] double probability(int x, int y, int a, int b) const;

 private:
  /// cum_[x][y][k] = P(outcome index <= k), k in {0,1,2}; index 3 (the
  /// outcome (1,1)) absorbs the remaining mass including fp round-off.
  double cum_[2][2][3] = {};
};

}  // namespace ftl::correlate

#include "correlate/typed_source.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace ftl::correlate {

TypedIndependentSource::TypedIndependentSource(games::XorGame game)
    : game_(std::move(game)) {
  FTL_ASSERT(game_.num_x() == game_.num_y());
}

std::pair<int, int> TypedIndependentSource::decide(std::size_t /*x*/,
                                                   std::size_t /*y*/,
                                                   util::Rng& rng) {
  return {rng.bernoulli(0.5) ? 1 : 0, rng.bernoulli(0.5) ? 1 : 0};
}

double TypedIndependentSource::win_probability(std::size_t /*x*/,
                                               std::size_t /*y*/) const {
  return 0.5;
}

TypedClassicalSource::TypedClassicalSource(games::XorGame game)
    : game_(std::move(game)), strategy_(game_.classical_strategy()) {}

std::size_t TypedClassicalSource::num_types() const { return game_.num_x(); }

std::pair<int, int> TypedClassicalSource::decide(std::size_t x, std::size_t y,
                                                 util::Rng& rng) {
  FTL_ASSERT(x < game_.num_x() && y < game_.num_y());
  const int r = rng.bernoulli(0.5) ? 1 : 0;
  return {strategy_.alice[x] ^ r, strategy_.bob[y] ^ r};
}

double TypedClassicalSource::win_probability(std::size_t x,
                                             std::size_t y) const {
  return ((strategy_.alice[x] ^ strategy_.bob[y]) == game_.f(x, y)) ? 1.0
                                                                    : 0.0;
}

TypedQuantumSource::TypedQuantumSource(games::XorGame game,
                                       const sdp::GramOptions& opts)
    : game_(std::move(game)) {
  const sdp::XorBiasResult r = game_.quantum_bias(opts);
  const std::size_t nx = game_.num_x();
  const std::size_t ny = game_.num_y();
  correlators_.assign(nx, std::vector<double>(ny, 0.0));
  for (std::size_t x = 0; x < nx; ++x) {
    for (std::size_t y = 0; y < ny; ++y) {
      double dot = 0.0;
      for (std::size_t k = 0; k < r.alice[x].size(); ++k) {
        dot += r.alice[x][k] * r.bob[y][k];
      }
      correlators_[x][y] = std::clamp(dot, -1.0, 1.0);
    }
  }
}

std::size_t TypedQuantumSource::num_types() const { return game_.num_x(); }

double TypedQuantumSource::correlator(std::size_t x, std::size_t y) const {
  FTL_ASSERT(x < correlators_.size() && y < correlators_[x].size());
  return correlators_[x][y];
}

std::pair<int, int> TypedQuantumSource::decide(std::size_t x, std::size_t y,
                                               util::Rng& rng) {
  // Uniform marginals with P(a = b) = (1 + E) / 2: draw a fair coin for a,
  // flip b relative to it with the anti-correlation probability.
  const int a = rng.bernoulli(0.5) ? 1 : 0;
  const double p_diff = 0.5 * (1.0 - correlator(x, y));
  const int b = a ^ (rng.bernoulli(p_diff) ? 1 : 0);
  return {a, b};
}

double TypedQuantumSource::win_probability(std::size_t x,
                                           std::size_t y) const {
  const double e = correlator(x, y);
  return game_.f(x, y) == 0 ? 0.5 * (1.0 + e) : 0.5 * (1.0 - e);
}

TypedRealizedSource::TypedRealizedSource(games::XorGame game,
                                         const sdp::GramOptions& opts)
    : game_(game),
      strategy_(games::realize_optimal_strategy(game, opts)) {}

std::size_t TypedRealizedSource::num_types() const { return game_.num_x(); }

std::size_t TypedRealizedSource::qubits_per_party() const {
  return strategy_.qubits_per_party();
}

std::pair<int, int> TypedRealizedSource::decide(std::size_t x, std::size_t y,
                                                util::Rng& rng) {
  return strategy_.play(x, y, rng);
}

double TypedRealizedSource::win_probability(std::size_t x,
                                            std::size_t y) const {
  const double e = strategy_.correlator(x, y);
  return game_.f(x, y) == 0 ? 0.5 * (1.0 + e) : 0.5 * (1.0 - e);
}

TypedOmniscientSource::TypedOmniscientSource(games::XorGame game)
    : game_(std::move(game)) {}

std::size_t TypedOmniscientSource::num_types() const { return game_.num_x(); }

std::pair<int, int> TypedOmniscientSource::decide(std::size_t x,
                                                  std::size_t y,
                                                  util::Rng& rng) {
  const int r = rng.bernoulli(0.5) ? 1 : 0;
  return {r, r ^ game_.f(x, y)};
}

double TypedOmniscientSource::win_probability(std::size_t /*x*/,
                                              std::size_t /*y*/) const {
  return 1.0;
}

}  // namespace ftl::correlate

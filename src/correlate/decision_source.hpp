// Correlated decision sources: the paper's envisioned system-level
// abstraction (§1, §5) — "primitives which can be packaged in system-level
// abstractions that systems designers can adopt without needing to
// understand the underlying quantum mechanics".
//
// A PairedDecisionSource models two endpoints that each receive a local
// input bit (e.g. "my task is type-C") and must emit a decision bit (e.g.
// "use the first of our two candidate servers") *without communicating*.
// Implementations range from independent randomness, through classical
// shared randomness, to simulated entangled pairs, up to an omniscient
// oracle that the paper's §5 describes as the testbed "cheat" (it sees both
// inputs, so it upper-bounds what any correlation can achieve).
#pragma once

#include <memory>
#include <string>
#include <utility>

#include "correlate/batched.hpp"
#include "games/chsh.hpp"
#include "util/rng.hpp"

namespace ftl::correlate {

/// The local input each endpoint observes in the load-balancing game:
/// 1 = my task is type-C (wants co-location), 0 = type-E (wants isolation).
/// The decision bit selects one of two pre-agreed candidate servers.
class PairedDecisionSource {
 public:
  virtual ~PairedDecisionSource() = default;

  /// One round. `x` is endpoint 0's input, `y` endpoint 1's. Honest
  /// implementations must be no-signaling: the marginal distribution of
  /// each side's decision may depend only on that side's input. Only
  /// OmniscientOracle is exempt (and says so).
  [[nodiscard]] virtual std::pair<int, int> decide(int x, int y,
                                                   util::Rng& rng) = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Exact probability that the pair's decisions satisfy the flipped-CHSH
  /// load-balancing condition a XOR b = NOT(x AND y) on the given inputs.
  /// Default implementation estimates nothing — subclasses give the exact
  /// value where available (used in tests/benches).
  [[nodiscard]] virtual double win_probability(int x, int y) const = 0;
};

/// Endpoints decide by independent fair coins (classical random load
/// balancing within the candidate pair).
class IndependentRandomSource final : public PairedDecisionSource {
 public:
  [[nodiscard]] std::pair<int, int> decide(int x, int y,
                                           util::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "independent"; }
  [[nodiscard]] double win_probability(int x, int y) const override;
};

/// The optimal *classical* strategy for the flipped CHSH game, achievable
/// with pre-agreement alone (win probability 3/4). A shared random bit r is
/// XORed into both outputs to keep each endpoint's marginal uniform (so
/// servers are load-balanced) without changing the correlation.
class ClassicalChshSource final : public PairedDecisionSource {
 public:
  [[nodiscard]] std::pair<int, int> decide(int x, int y,
                                           util::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "classical-chsh"; }
  [[nodiscard]] double win_probability(int x, int y) const override;
};

/// Simulated entangled pair playing the flipped CHSH game with the
/// Tsirelson-optimal measurement angles; `visibility` < 1 models an
/// imperfect (Werner) pair after SPDC generation, fiber transport, and QNIC
/// storage. Win probability (1/2)(1 + v/sqrt(2)) per input pair.
class ChshSource final : public PairedDecisionSource {
 public:
  explicit ChshSource(double visibility = 1.0);

  [[nodiscard]] std::pair<int, int> decide(int x, int y,
                                           util::Rng& rng) override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double win_probability(int x, int y) const override;
  [[nodiscard]] double visibility() const { return visibility_; }

  /// The underlying strategy (exposed for verification in tests).
  [[nodiscard]] const games::QuantumStrategy& strategy() const {
    return strategy_;
  }

  /// The precomputed outcome table decide() samples from (exposed so the
  /// sharded engine and tests can batch-draw from the identical table).
  [[nodiscard]] const OutcomeTable& table() const { return table_; }

 private:
  double visibility_;
  games::QuantumStrategy strategy_;
  /// Born-rule joint distribution P(a,b | x,y) in cumulative form, cached
  /// at construction so the hot simulation path does not redo
  /// density-matrix algebra. Sampling from this table is
  /// distribution-identical to measuring the state.
  OutcomeTable table_;
};

/// A tunable classical mixture: with (shared-randomness) probability
/// `p_same` both endpoints emit the same random bit, otherwise opposite
/// bits. Unlike ClassicalChshSource — which maximises the *game* value but
/// never co-locates a C-C pair — this trades the cases off: it wins the
/// both-C input with probability p_same and every other input with
/// 1 - p_same. The load-balancing benches use it to show that no classical
/// trade-off matches the quantum strategy's uniform 0.854 win profile.
class MixedClassicalSource final : public PairedDecisionSource {
 public:
  explicit MixedClassicalSource(double p_same);

  [[nodiscard]] std::pair<int, int> decide(int x, int y,
                                           util::Rng& rng) override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double win_probability(int x, int y) const override;

 private:
  double p_same_;
};

/// Sees both inputs and always satisfies the co-location condition, with a
/// shared random bit keeping marginals uniform. NOT physically realisable
/// without communication (it would win CHSH with probability 1); exists as
/// the §5 testbed "cheat" and as an upper bound in the benches.
class OmniscientOracleSource final : public PairedDecisionSource {
 public:
  [[nodiscard]] std::pair<int, int> decide(int x, int y,
                                           util::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "omniscient"; }
  [[nodiscard]] double win_probability(int x, int y) const override;
};

/// Factory helpers.
[[nodiscard]] std::unique_ptr<PairedDecisionSource> make_source(
    const std::string& kind, double visibility = 1.0);

}  // namespace ftl::correlate

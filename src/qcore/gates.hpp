// Standard single- and two-qubit gates and measurement bases.
#pragma once

#include "qcore/matrix.hpp"

namespace ftl::qcore::gates {

[[nodiscard]] CMat I();
[[nodiscard]] CMat X();
[[nodiscard]] CMat Y();
[[nodiscard]] CMat Z();
[[nodiscard]] CMat H();
[[nodiscard]] CMat S();
[[nodiscard]] CMat T();

/// Rotation about Y: Ry(t) = [[cos(t/2), -sin(t/2)], [sin(t/2), cos(t/2)]].
[[nodiscard]] CMat Ry(double t);
/// Rotation about Z: diag(e^{-it/2}, e^{+it/2}).
[[nodiscard]] CMat Rz(double t);
/// Rotation about X.
[[nodiscard]] CMat Rx(double t);

/// CNOT with the first qubit of the pair as control (4x4, convention:
/// basis order |00>, |01>, |10>, |11> with the control as the left qubit).
[[nodiscard]] CMat CNOT();
/// Controlled-Z (4x4, symmetric in its qubits).
[[nodiscard]] CMat CZ();
/// SWAP (4x4).
[[nodiscard]] CMat SWAP();

/// The real measurement basis used throughout the paper's CHSH discussion:
/// columns are |phi0> = cos(theta)|0> + sin(theta)|1> and the orthogonal
/// |phi1> = -sin(theta)|0> + cos(theta)|1>. Measuring "in basis theta"
/// means projecting onto these two columns.
[[nodiscard]] CMat real_basis(double theta);

}  // namespace ftl::qcore::gates

// Seeded random generators over quantum objects, for the property-based
// suites (src/util/proptest.hpp). Everything draws from an explicit
// util::Rng& so a failing case's seed regenerates the exact input.
//
// Distributions are chosen to cover the physically valid set, not to be
// exactly Haar/Hilbert-Schmidt measure: Gaussian amplitudes normalised give
// Haar states, Gram-Schmidt on Gaussian columns gives Haar unitaries, and
// GG^dagger normalised / Kraus-renormalised constructions give full-support
// densities and CPTP channels.
#pragma once

#include <cstddef>

#include "qcore/channels.hpp"
#include "qcore/density.hpp"
#include "qcore/matrix.hpp"
#include "qcore/pauli.hpp"
#include "qcore/state.hpp"
#include "util/rng.hpp"

namespace ftl::qcore {

/// Standard complex Gaussian entry-wise.
[[nodiscard]] CMat random_gaussian_matrix(std::size_t rows, std::size_t cols,
                                          util::Rng& rng);

/// Haar-random pure state on `num_qubits` qubits.
[[nodiscard]] StateVec random_state(std::size_t num_qubits, util::Rng& rng);

/// Haar-random unitary (Gram-Schmidt on Gaussian columns).
[[nodiscard]] CMat random_unitary(std::size_t dim, util::Rng& rng);

/// Full-rank random density matrix rho = G G^dagger / Tr(G G^dagger).
[[nodiscard]] Density random_density(std::size_t num_qubits, util::Rng& rng);

/// Random single-qubit CPTP channel with `num_kraus` Kraus operators:
/// Gaussian A_k renormalised by S^{-1/2} where S = sum A_k^dagger A_k, so
/// trace preservation holds by construction.
[[nodiscard]] Channel random_channel(std::size_t num_kraus, util::Rng& rng);

/// Random Pauli string on n qubits (each factor uniform over {I,X,Y,Z}),
/// with coefficient drawn uniformly from [-1, 1].
[[nodiscard]] PauliTerm random_pauli_term(std::size_t num_qubits,
                                          util::Rng& rng);

/// Sum of `num_terms` random Pauli strings.
[[nodiscard]] PauliSum random_pauli_sum(std::size_t num_qubits,
                                        std::size_t num_terms,
                                        util::Rng& rng);

/// Dense matrix of a Pauli string sum (kron of 2x2 factors), for
/// cross-validating the string-wise fast path against plain linear algebra.
[[nodiscard]] CMat pauli_sum_matrix(const PauliSum& op);

}  // namespace ftl::qcore

// Pure-state (state-vector) simulator for small registers of qubits.
//
// Qubit ordering convention: qubit 0 is the *leftmost* factor in ket
// notation, so for |q0 q1 ... q_{n-1}> the basis-state index carries qubit k
// in bit position (n-1-k). This matches the paper's notation where in
// (|00> + |11>)/sqrt(2) "the first qubit is sent to the first server".
#pragma once

#include <cstdint>
#include <vector>

#include "qcore/matrix.hpp"
#include "util/rng.hpp"

namespace ftl::qcore {

class StateVec {
 public:
  /// |0...0> on n qubits.
  explicit StateVec(std::size_t num_qubits);

  /// Builds a state from explicit amplitudes (must be a power-of-two sized,
  /// normalised vector).
  [[nodiscard]] static StateVec from_amplitudes(std::vector<Cx> amps);

  /// The Bell pair (|00> + |11>)/sqrt(2) — the paper's workhorse state.
  [[nodiscard]] static StateVec bell_phi_plus();

  /// GHZ state (|0...0> + |1...1>)/sqrt(2) on n qubits.
  [[nodiscard]] static StateVec ghz(std::size_t num_qubits);

  [[nodiscard]] std::size_t num_qubits() const { return num_qubits_; }
  [[nodiscard]] std::size_t dim() const { return amps_.size(); }
  [[nodiscard]] Cx amplitude(std::size_t basis_index) const;
  [[nodiscard]] const std::vector<Cx>& amplitudes() const { return amps_; }
  [[nodiscard]] double norm() const;

  /// Probability of each computational basis outcome.
  [[nodiscard]] std::vector<double> probabilities() const;

  /// Applies a single-qubit unitary to `qubit`.
  void apply1(const CMat& u, std::size_t qubit);

  /// Applies a two-qubit unitary to the ordered pair (qa, qb); qa is the
  /// high-order qubit of the 4x4 gate's basis.
  void apply2(const CMat& u, std::size_t qa, std::size_t qb);

  /// Probability that measuring `qubit` in the orthonormal basis given by
  /// the columns of `basis` yields `outcome` (0 or 1). Does not collapse.
  [[nodiscard]] double outcome_probability(std::size_t qubit,
                                           const CMat& basis,
                                           int outcome) const;

  /// Projective measurement of `qubit` in the given basis; collapses the
  /// state (post-measurement state is renormalised) and returns 0 or 1.
  int measure(std::size_t qubit, const CMat& basis, util::Rng& rng);

  /// Measurement in the computational basis {|0>, |1>}.
  int measure_computational(std::size_t qubit, util::Rng& rng);

  /// Density matrix |psi><psi|.
  [[nodiscard]] CMat to_density() const;

  [[nodiscard]] bool approx_equal(const StateVec& o, double tol = 1e-9) const;

 private:
  StateVec() = default;

  [[nodiscard]] std::size_t bit_mask(std::size_t qubit) const;

  std::size_t num_qubits_ = 0;
  std::vector<Cx> amps_;
};

}  // namespace ftl::qcore

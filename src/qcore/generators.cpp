#include "qcore/generators.hpp"

#include <cmath>

#include "qcore/eigen.hpp"
#include "qcore/gates.hpp"
#include "util/assert.hpp"

namespace ftl::qcore {

CMat random_gaussian_matrix(std::size_t rows, std::size_t cols,
                            util::Rng& rng) {
  CMat g(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      g.at(r, c) = Cx{rng.normal(), rng.normal()};
    }
  }
  return g;
}

StateVec random_state(std::size_t num_qubits, util::Rng& rng) {
  const std::size_t dim = std::size_t{1} << num_qubits;
  std::vector<Cx> amps(dim);
  for (auto& a : amps) a = Cx{rng.normal(), rng.normal()};
  normalize(amps);
  return StateVec::from_amplitudes(std::move(amps));
}

CMat random_unitary(std::size_t dim, util::Rng& rng) {
  // Gram-Schmidt on Gaussian columns; the resulting distribution is Haar.
  CMat u = random_gaussian_matrix(dim, dim, rng);
  for (std::size_t c = 0; c < dim; ++c) {
    std::vector<Cx> col(dim);
    for (std::size_t r = 0; r < dim; ++r) col[r] = u.at(r, c);
    for (std::size_t prev = 0; prev < c; ++prev) {
      std::vector<Cx> pcol(dim);
      for (std::size_t r = 0; r < dim; ++r) pcol[r] = u.at(r, prev);
      const Cx overlap = inner(pcol, col);
      for (std::size_t r = 0; r < dim; ++r) col[r] -= overlap * pcol[r];
    }
    normalize(col);
    for (std::size_t r = 0; r < dim; ++r) u.at(r, c) = col[r];
  }
  return u;
}

Density random_density(std::size_t num_qubits, util::Rng& rng) {
  const std::size_t dim = std::size_t{1} << num_qubits;
  const CMat g = random_gaussian_matrix(dim, dim, rng);
  CMat rho = g * g.adjoint();
  const double tr = rho.trace().real();
  FTL_ASSERT(tr > 0.0);
  rho *= Cx{1.0 / tr, 0.0};
  // Exact re-symmetrisation so from_matrix's Hermiticity validation never
  // trips on accumulated rounding.
  rho = (rho + rho.adjoint()) * Cx{0.5, 0.0};
  return Density::from_matrix(rho);
}

Channel random_channel(std::size_t num_kraus, util::Rng& rng) {
  FTL_ASSERT(num_kraus >= 1);
  Channel ch;
  CMat s(2, 2);
  for (std::size_t k = 0; k < num_kraus; ++k) {
    ch.kraus.push_back(random_gaussian_matrix(2, 2, rng));
    s += ch.kraus.back().adjoint() * ch.kraus.back();
  }
  // S is PD almost surely; renormalise by S^{-1/2} so sum K'^dag K' = I.
  s = (s + s.adjoint()) * Cx{0.5, 0.0};
  const EigResult eig = eigh(s);
  CMat inv_sqrt(2, 2);
  for (std::size_t k = 0; k < 2; ++k) {
    FTL_ASSERT_MSG(eig.values[k] > 1e-12, "Kraus Gram matrix not PD");
    const double w = 1.0 / std::sqrt(eig.values[k]);
    for (std::size_t r = 0; r < 2; ++r) {
      for (std::size_t c = 0; c < 2; ++c) {
        inv_sqrt.at(r, c) += Cx{w, 0.0} * eig.vectors.at(r, k) *
                             std::conj(eig.vectors.at(c, k));
      }
    }
  }
  for (CMat& k : ch.kraus) k = k * inv_sqrt;
  return ch;
}

PauliTerm random_pauli_term(std::size_t num_qubits, util::Rng& rng) {
  static constexpr char kOps[] = {'I', 'X', 'Y', 'Z'};
  PauliTerm term;
  term.coefficient = rng.uniform(-1.0, 1.0);
  term.ops.resize(num_qubits);
  for (auto& op : term.ops) op = kOps[rng.uniform_int(std::uint64_t{4})];
  return term;
}

PauliSum random_pauli_sum(std::size_t num_qubits, std::size_t num_terms,
                          util::Rng& rng) {
  std::vector<PauliTerm> terms;
  terms.reserve(num_terms);
  for (std::size_t t = 0; t < num_terms; ++t) {
    terms.push_back(random_pauli_term(num_qubits, rng));
  }
  return PauliSum(std::move(terms));
}

CMat pauli_sum_matrix(const PauliSum& op) {
  FTL_ASSERT(!op.terms().empty());
  const std::size_t n = op.num_qubits();
  const std::size_t dim = std::size_t{1} << n;
  CMat total(dim, dim);
  for (const PauliTerm& term : op.terms()) {
    CMat m = CMat::identity(1);
    for (char p : term.ops) {
      switch (p) {
        case 'I': m = m.kron(gates::I()); break;
        case 'X': m = m.kron(gates::X()); break;
        case 'Y': m = m.kron(gates::Y()); break;
        case 'Z': m = m.kron(gates::Z()); break;
        default: FTL_ASSERT_MSG(false, "invalid Pauli op");
      }
    }
    total += m * Cx{term.coefficient, 0.0};
  }
  return total;
}

}  // namespace ftl::qcore

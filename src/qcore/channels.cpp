#include "qcore/channels.hpp"

#include <cmath>

#include "qcore/gates.hpp"

namespace ftl::qcore {

bool Channel::is_trace_preserving(double tol) const {
  if (kraus.empty()) return false;
  CMat sum(kraus.front().cols(), kraus.front().cols());
  for (const CMat& k : kraus) sum += k.adjoint() * k;
  return sum.approx_equal(CMat::identity(sum.rows()), tol);
}

Channel depolarizing(double p) {
  FTL_ASSERT(p >= 0.0 && p <= 1.0);
  Channel ch;
  ch.kraus.push_back(gates::I() * Cx{std::sqrt(1.0 - 3.0 * p / 4.0), 0.0});
  ch.kraus.push_back(gates::X() * Cx{std::sqrt(p / 4.0), 0.0});
  ch.kraus.push_back(gates::Y() * Cx{std::sqrt(p / 4.0), 0.0});
  ch.kraus.push_back(gates::Z() * Cx{std::sqrt(p / 4.0), 0.0});
  return ch;
}

Channel dephasing(double lambda) {
  FTL_ASSERT(lambda >= 0.0 && lambda <= 1.0);
  Channel ch;
  CMat k0{{Cx{1.0, 0.0}, Cx{0.0, 0.0}},
          {Cx{0.0, 0.0}, Cx{std::sqrt(1.0 - lambda), 0.0}}};
  CMat k1{{Cx{0.0, 0.0}, Cx{0.0, 0.0}},
          {Cx{0.0, 0.0}, Cx{std::sqrt(lambda), 0.0}}};
  ch.kraus = {k0, k1};
  return ch;
}

Channel amplitude_damping(double gamma) {
  FTL_ASSERT(gamma >= 0.0 && gamma <= 1.0);
  Channel ch;
  CMat k0{{Cx{1.0, 0.0}, Cx{0.0, 0.0}},
          {Cx{0.0, 0.0}, Cx{std::sqrt(1.0 - gamma), 0.0}}};
  CMat k1{{Cx{0.0, 0.0}, Cx{std::sqrt(gamma), 0.0}},
          {Cx{0.0, 0.0}, Cx{0.0, 0.0}}};
  ch.kraus = {k0, k1};
  return ch;
}

Channel bit_flip(double p) {
  FTL_ASSERT(p >= 0.0 && p <= 1.0);
  Channel ch;
  ch.kraus.push_back(gates::I() * Cx{std::sqrt(1.0 - p), 0.0});
  ch.kraus.push_back(gates::X() * Cx{std::sqrt(p), 0.0});
  return ch;
}

Channel identity_channel() {
  Channel ch;
  ch.kraus.push_back(gates::I());
  return ch;
}

std::vector<Channel> storage_decoherence(double t, double t1, double t2) {
  FTL_ASSERT(t >= 0.0 && t1 > 0.0 && t2 > 0.0);
  FTL_ASSERT_MSG(t2 <= 2.0 * t1 + 1e-12,
                 "physical memories satisfy T2 <= 2*T1");
  const double gamma = 1.0 - std::exp(-t / t1);
  // Amplitude damping alone decays coherences by e^{-t/(2 T1)}; add pure
  // dephasing so the total coherence decay is e^{-t/T2}.
  const double extra = std::exp(2.0 * (t / (2.0 * t1) - t / t2));
  const double lambda = 1.0 - std::min(1.0, extra);
  return {amplitude_damping(gamma), dephasing(lambda)};
}

}  // namespace ftl::qcore

#include "qcore/pauli.hpp"

#include <cmath>

namespace ftl::qcore {

PauliSum::PauliSum(std::vector<PauliTerm> terms) : terms_(std::move(terms)) {
  FTL_ASSERT(!terms_.empty());
  for (const PauliTerm& t : terms_) {
    FTL_ASSERT_MSG(t.ops.size() == terms_.front().ops.size(),
                   "all terms must cover the same register");
    for (char c : t.ops) {
      FTL_ASSERT_MSG(c == 'I' || c == 'X' || c == 'Y' || c == 'Z',
                     "ops must be I/X/Y/Z");
    }
  }
}

std::size_t PauliSum::num_qubits() const { return terms_.front().ops.size(); }

void accumulate_pauli_term(const PauliTerm& term, const std::vector<Cx>& in,
                           std::vector<Cx>& out) {
  const std::size_t n = term.ops.size();
  FTL_ASSERT(in.size() == (std::size_t{1} << n) && out.size() == in.size());
  // Bit for qubit q sits at position (n - 1 - q).
  std::size_t flip_mask = 0;
  std::size_t y_mask = 0;
  std::size_t z_mask = 0;
  for (std::size_t q = 0; q < n; ++q) {
    const std::size_t bit = std::size_t{1} << (n - 1 - q);
    switch (term.ops[q]) {
      case 'X': flip_mask |= bit; break;
      case 'Y': flip_mask |= bit; y_mask |= bit; break;
      case 'Z': z_mask |= bit; break;
      default: break;
    }
  }
  const int num_y = __builtin_popcountll(y_mask);
  // Global phase of the Y's: each contributes i or -i depending on the bit.
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (in[i] == Cx{0.0, 0.0}) continue;
    // (-1) for each set Z bit and each set Y bit (from -i vs +i), times a
    // global i^{#Y}.
    const int minus_count = __builtin_popcountll(i & z_mask) +
                            __builtin_popcountll(i & y_mask);
    Cx phase = (minus_count & 1) != 0 ? Cx{-1.0, 0.0} : Cx{1.0, 0.0};
    switch (num_y & 3) {  // i^{#Y}
      case 1: phase *= Cx{0.0, 1.0}; break;
      case 2: phase *= Cx{-1.0, 0.0}; break;
      case 3: phase *= Cx{0.0, -1.0}; break;
      default: break;
    }
    out[i ^ flip_mask] += Cx{term.coefficient, 0.0} * phase * in[i];
  }
}

std::vector<Cx> PauliSum::apply(const StateVec& psi) const {
  FTL_ASSERT(psi.num_qubits() == num_qubits());
  std::vector<Cx> out(psi.dim(), Cx{0.0, 0.0});
  for (const PauliTerm& t : terms_) {
    accumulate_pauli_term(t, psi.amplitudes(), out);
  }
  return out;
}

double PauliSum::expectation(const StateVec& psi) const {
  const std::vector<Cx> opsi = apply(psi);
  return inner(psi.amplitudes(), opsi).real();
}

bool PauliSum::squares_to_identity_on(const StateVec& psi, double tol) const {
  const std::vector<Cx> once = apply(psi);
  // O (O psi): reuse the raw accumulator on the intermediate vector.
  std::vector<Cx> twice(psi.dim(), Cx{0.0, 0.0});
  for (const PauliTerm& t : terms_) accumulate_pauli_term(t, once, twice);
  double diff2 = 0.0;
  for (std::size_t i = 0; i < twice.size(); ++i) {
    diff2 += std::norm(twice[i] - psi.amplitudes()[i]);
  }
  return std::sqrt(diff2) <= tol;
}

int PauliSum::measure(StateVec& psi, util::Rng& rng) const {
  FTL_ASSERT_MSG(squares_to_identity_on(psi),
                 "observable must square to the identity on this state");
  const std::vector<Cx> opsi = apply(psi);
  const double e = inner(psi.amplitudes(), opsi).real();
  const double p_plus = 0.5 * (1.0 + e);
  const int outcome = rng.uniform() < p_plus ? +1 : -1;
  const double sign = outcome > 0 ? 1.0 : -1.0;
  const double keep = outcome > 0 ? p_plus : 1.0 - p_plus;
  FTL_ASSERT_MSG(keep > 1e-300, "measured an outcome of probability ~0");
  std::vector<Cx> post(psi.dim());
  const double scale = 0.5 / std::sqrt(keep);
  for (std::size_t i = 0; i < post.size(); ++i) {
    post[i] = (psi.amplitudes()[i] + Cx{sign, 0.0} * opsi[i]) *
              Cx{scale, 0.0};
  }
  psi = StateVec::from_amplitudes(std::move(post));
  return outcome;
}

}  // namespace ftl::qcore

// Pauli-string sums: efficient observables on the state-vector simulator.
//
// An n-qubit observable written as a real combination of Pauli strings can
// be applied to a state vector in O(terms * 2^n) without ever materialising
// the 2^n x 2^n matrix. This is what makes Tsirelson's construction (which
// needs 2k-qubit Clifford-algebra observables) executable: measuring a
// +-1-valued Pauli-sum observable projects with (I +- O)/2, both of which
// are two string applications away.
#pragma once

#include <string>
#include <vector>

#include "qcore/state.hpp"
#include "util/rng.hpp"

namespace ftl::qcore {

/// One term: coefficient * (P_0 (x) P_1 (x) ... (x) P_{n-1}) with
/// ops[q] in {'I', 'X', 'Y', 'Z'} giving the Pauli acting on qubit q.
struct PauliTerm {
  double coefficient = 1.0;
  std::string ops;
};

class PauliSum {
 public:
  PauliSum() = default;
  explicit PauliSum(std::vector<PauliTerm> terms);

  [[nodiscard]] const std::vector<PauliTerm>& terms() const { return terms_; }
  [[nodiscard]] std::size_t num_qubits() const;

  /// O |psi>, returned as a fresh amplitude vector.
  [[nodiscard]] std::vector<Cx> apply(const StateVec& psi) const;

  /// <psi| O |psi> (real for Hermitian O, which real-coefficient Pauli
  /// sums always are).
  [[nodiscard]] double expectation(const StateVec& psi) const;

  /// True if O^2 |psi> == |psi> within tol — the involution property a
  /// +-1-valued measurement needs, checked on the actual state.
  [[nodiscard]] bool squares_to_identity_on(const StateVec& psi,
                                            double tol = 1e-8) const;

  /// Projective +-1 measurement: collapses |psi> onto (I +- O)/2 and
  /// returns +1 or -1. Asserts the involution property on |psi|.
  int measure(StateVec& psi, util::Rng& rng) const;

 private:
  std::vector<PauliTerm> terms_;
};

/// Applies a single Pauli string to raw amplitudes (helper, exposed for
/// tests): out[i] accumulates coefficient * phase_i * amp[j(i)].
void accumulate_pauli_term(const PauliTerm& term, const std::vector<Cx>& in,
                           std::vector<Cx>& out);

}  // namespace ftl::qcore

// Hermitian eigendecomposition by the complex Jacobi method.
//
// The matrices in this library are tiny (at most 2^5 x 2^5), so the Jacobi
// method — quadratically convergent, unconditionally stable, and ~60 lines —
// is the right tool; no LAPACK dependency needed.
#pragma once

#include <vector>

#include "qcore/matrix.hpp"

namespace ftl::qcore {

struct EigResult {
  /// Eigenvalues in ascending order (real: the input is Hermitian).
  std::vector<double> values;
  /// Unitary matrix whose k-th column is the eigenvector for values[k].
  CMat vectors;
};

/// Full eigendecomposition of a Hermitian matrix. Asserts Hermiticity.
[[nodiscard]] EigResult eigh(const CMat& a, double tol = 1e-12,
                             int max_sweeps = 100);

/// True iff Hermitian `a` has all eigenvalues >= -tol.
[[nodiscard]] bool is_psd(const CMat& a, double tol = 1e-8);

/// Principal square root of a PSD Hermitian matrix (negative eigenvalues
/// within tolerance are clamped to zero).
[[nodiscard]] CMat sqrt_psd(const CMat& a);

/// Uhlmann fidelity F(rho, sigma) = (Tr sqrt(sqrt(rho) sigma sqrt(rho)))^2.
/// Both arguments must be density matrices (PSD, unit trace).
[[nodiscard]] double fidelity(const CMat& rho, const CMat& sigma);

}  // namespace ftl::qcore

#include "qcore/gates.hpp"

#include <cmath>

namespace ftl::qcore::gates {

namespace {
constexpr Cx kOne{1.0, 0.0};
constexpr Cx kZero{0.0, 0.0};
constexpr Cx kImg{0.0, 1.0};
}  // namespace

CMat I() { return CMat::identity(2); }

CMat X() { return CMat{{kZero, kOne}, {kOne, kZero}}; }

CMat Y() { return CMat{{kZero, -kImg}, {kImg, kZero}}; }

CMat Z() { return CMat{{kOne, kZero}, {kZero, -kOne}}; }

CMat H() {
  const Cx h{1.0 / std::sqrt(2.0), 0.0};
  return CMat{{h, h}, {h, -h}};
}

CMat S() { return CMat{{kOne, kZero}, {kZero, kImg}}; }

CMat T() {
  return CMat{{kOne, kZero},
              {kZero, Cx{std::cos(M_PI / 4.0), std::sin(M_PI / 4.0)}}};
}

CMat Ry(double t) {
  const double c = std::cos(t / 2.0);
  const double s = std::sin(t / 2.0);
  return CMat{{Cx{c, 0.0}, Cx{-s, 0.0}}, {Cx{s, 0.0}, Cx{c, 0.0}}};
}

CMat Rz(double t) {
  return CMat{{Cx{std::cos(-t / 2.0), std::sin(-t / 2.0)}, kZero},
              {kZero, Cx{std::cos(t / 2.0), std::sin(t / 2.0)}}};
}

CMat Rx(double t) {
  const double c = std::cos(t / 2.0);
  const double s = std::sin(t / 2.0);
  return CMat{{Cx{c, 0.0}, Cx{0.0, -s}}, {Cx{0.0, -s}, Cx{c, 0.0}}};
}

CMat CNOT() {
  CMat m(4, 4);
  m.at(0, 0) = kOne;
  m.at(1, 1) = kOne;
  m.at(2, 3) = kOne;
  m.at(3, 2) = kOne;
  return m;
}

CMat CZ() {
  CMat m = CMat::identity(4);
  m.at(3, 3) = -kOne;
  return m;
}

CMat SWAP() {
  CMat m(4, 4);
  m.at(0, 0) = kOne;
  m.at(1, 2) = kOne;
  m.at(2, 1) = kOne;
  m.at(3, 3) = kOne;
  return m;
}

CMat real_basis(double theta) {
  const double c = std::cos(theta);
  const double s = std::sin(theta);
  return CMat{{Cx{c, 0.0}, Cx{-s, 0.0}}, {Cx{s, 0.0}, Cx{c, 0.0}}};
}

}  // namespace ftl::qcore::gates

#include "qcore/state.hpp"

#include <cmath>

namespace ftl::qcore {

namespace {
constexpr Cx kZero{0.0, 0.0};
}

StateVec::StateVec(std::size_t num_qubits)
    : num_qubits_(num_qubits), amps_(std::size_t{1} << num_qubits, kZero) {
  FTL_ASSERT_MSG(num_qubits >= 1 && num_qubits <= 24,
                 "state-vector simulator supports 1..24 qubits");
  amps_[0] = Cx{1.0, 0.0};
}

StateVec StateVec::from_amplitudes(std::vector<Cx> amps) {
  std::size_t n = 0;
  while ((std::size_t{1} << n) < amps.size()) ++n;
  FTL_ASSERT_MSG((std::size_t{1} << n) == amps.size(),
                 "amplitude count must be a power of two");
  StateVec s;
  s.num_qubits_ = n;
  s.amps_ = std::move(amps);
  FTL_ASSERT_MSG(std::abs(s.norm() - 1.0) < 1e-6,
                 "amplitudes must be normalised");
  return s;
}

StateVec StateVec::bell_phi_plus() {
  const double r = 1.0 / std::sqrt(2.0);
  return from_amplitudes({Cx{r, 0.0}, kZero, kZero, Cx{r, 0.0}});
}

StateVec StateVec::ghz(std::size_t num_qubits) {
  FTL_ASSERT(num_qubits >= 2);
  std::vector<Cx> amps(std::size_t{1} << num_qubits, kZero);
  const double r = 1.0 / std::sqrt(2.0);
  amps.front() = Cx{r, 0.0};
  amps.back() = Cx{r, 0.0};
  return from_amplitudes(std::move(amps));
}

Cx StateVec::amplitude(std::size_t basis_index) const {
  FTL_ASSERT(basis_index < amps_.size());
  return amps_[basis_index];
}

double StateVec::norm() const {
  double s = 0.0;
  for (Cx a : amps_) s += std::norm(a);
  return std::sqrt(s);
}

std::vector<double> StateVec::probabilities() const {
  std::vector<double> p(amps_.size());
  for (std::size_t i = 0; i < amps_.size(); ++i) p[i] = std::norm(amps_[i]);
  return p;
}

std::size_t StateVec::bit_mask(std::size_t qubit) const {
  FTL_ASSERT(qubit < num_qubits_);
  return std::size_t{1} << (num_qubits_ - 1 - qubit);
}

void StateVec::apply1(const CMat& u, std::size_t qubit) {
  FTL_ASSERT(u.rows() == 2 && u.cols() == 2);
  const std::size_t mask = bit_mask(qubit);
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    if ((i & mask) != 0) continue;  // visit each pair once via its 0-branch
    const std::size_t j = i | mask;
    const Cx a0 = amps_[i];
    const Cx a1 = amps_[j];
    amps_[i] = u.at(0, 0) * a0 + u.at(0, 1) * a1;
    amps_[j] = u.at(1, 0) * a0 + u.at(1, 1) * a1;
  }
}

void StateVec::apply2(const CMat& u, std::size_t qa, std::size_t qb) {
  FTL_ASSERT(u.rows() == 4 && u.cols() == 4);
  FTL_ASSERT(qa != qb);
  const std::size_t ma = bit_mask(qa);
  const std::size_t mb = bit_mask(qb);
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    if ((i & ma) != 0 || (i & mb) != 0) continue;
    // Local basis order: index bit from qa is the high bit, qb the low bit.
    const std::size_t i00 = i;
    const std::size_t i01 = i | mb;
    const std::size_t i10 = i | ma;
    const std::size_t i11 = i | ma | mb;
    const Cx a00 = amps_[i00];
    const Cx a01 = amps_[i01];
    const Cx a10 = amps_[i10];
    const Cx a11 = amps_[i11];
    amps_[i00] = u.at(0, 0) * a00 + u.at(0, 1) * a01 + u.at(0, 2) * a10 +
                 u.at(0, 3) * a11;
    amps_[i01] = u.at(1, 0) * a00 + u.at(1, 1) * a01 + u.at(1, 2) * a10 +
                 u.at(1, 3) * a11;
    amps_[i10] = u.at(2, 0) * a00 + u.at(2, 1) * a01 + u.at(2, 2) * a10 +
                 u.at(2, 3) * a11;
    amps_[i11] = u.at(3, 0) * a00 + u.at(3, 1) * a01 + u.at(3, 2) * a10 +
                 u.at(3, 3) * a11;
  }
}

double StateVec::outcome_probability(std::size_t qubit, const CMat& basis,
                                     int outcome) const {
  FTL_ASSERT(outcome == 0 || outcome == 1);
  FTL_ASSERT_MSG(basis.is_unitary(1e-8),
                 "measurement basis must be an orthonormal (unitary) frame");
  // Rotate the qubit into the measurement frame and read the Born weight
  // of the corresponding computational outcome.
  StateVec rotated = *this;
  rotated.apply1(basis.adjoint(), qubit);
  const std::size_t mask = rotated.bit_mask(qubit);
  double p = 0.0;
  for (std::size_t i = 0; i < rotated.amps_.size(); ++i) {
    const bool one = (i & mask) != 0;
    if (one == (outcome == 1)) p += std::norm(rotated.amps_[i]);
  }
  return p;
}

int StateVec::measure(std::size_t qubit, const CMat& basis, util::Rng& rng) {
  FTL_ASSERT_MSG(basis.is_unitary(1e-8),
                 "measurement basis must be an orthonormal (unitary) frame");
  // Rotate into the measurement frame, do a computational measurement,
  // rotate back so the collapsed qubit is |phi_outcome> in the original
  // frame — the textbook projective post-measurement state.
  apply1(basis.adjoint(), qubit);
  const int outcome = measure_computational(qubit, rng);
  apply1(basis, qubit);
  return outcome;
}

int StateVec::measure_computational(std::size_t qubit, util::Rng& rng) {
  const std::size_t mask = bit_mask(qubit);
  double p1 = 0.0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    if ((i & mask) != 0) p1 += std::norm(amps_[i]);
  }
  const int outcome = rng.uniform() < p1 ? 1 : 0;
  const double keep_prob = outcome == 1 ? p1 : 1.0 - p1;
  FTL_ASSERT_MSG(keep_prob > 1e-300, "measured an outcome of probability ~0");
  const double scale = 1.0 / std::sqrt(keep_prob);
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    const bool one = (i & mask) != 0;
    if (one == (outcome == 1)) {
      amps_[i] *= scale;
    } else {
      amps_[i] = kZero;
    }
  }
  return outcome;
}

CMat StateVec::to_density() const { return CMat::outer(amps_, amps_); }

bool StateVec::approx_equal(const StateVec& o, double tol) const {
  if (num_qubits_ != o.num_qubits_) return false;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    if (std::abs(amps_[i] - o.amps_[i]) > tol) return false;
  }
  return true;
}

}  // namespace ftl::qcore

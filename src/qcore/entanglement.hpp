// Entanglement measures for the states the library distributes.
//
// These quantify what the Figure-1 source actually ships: how much
// correlation budget a (possibly noisy, possibly stored) pair still holds.
// Concurrence gives the exact CHSH ceiling for two qubits; negativity and
// entropy of entanglement are the standard diagnostics quoted in the
// quantum-networking literature the paper builds on.
#pragma once

#include "qcore/density.hpp"

namespace ftl::qcore {

/// Von Neumann entropy S(rho) = -Tr[rho log2 rho], in bits.
[[nodiscard]] double von_neumann_entropy(const Density& rho);

/// Entropy of entanglement of a *pure* two-qubit state: S of either
/// reduced density matrix (1 bit for a Bell pair, 0 for a product state).
[[nodiscard]] double entanglement_entropy(const StateVec& psi,
                                          std::size_t qubit);

/// Wootters concurrence of a two-qubit state: 0 for separable, 1 for
/// maximally entangled. For a Werner state with visibility v it is
/// max(0, (3v - 1) / 2).
[[nodiscard]] double concurrence(const Density& rho);

/// Negativity: sum of |negative eigenvalues| of the partial transpose.
/// Positive iff a two-qubit state is entangled (PPT criterion is exact
/// for 2x2 systems). 0.5 for a Bell pair.
[[nodiscard]] double negativity(const Density& rho, std::size_t qubit);

/// The maximal CHSH value reachable with the given two-qubit state over
/// all measurement choices (Horodecki criterion): 2*sqrt(m1 + m2) where
/// m1, m2 are the two largest eigenvalues of T^T T for the correlation
/// matrix T_ij = Tr[rho (sigma_i (x) sigma_j)]. Quantum advantage in CHSH
/// exists iff this exceeds 2.
[[nodiscard]] double chsh_ceiling(const Density& rho);

}  // namespace ftl::qcore

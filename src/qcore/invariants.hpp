// Physics-law invariant checkers for the quantum core.
//
// These are the reusable predicates the property-based suites (and any
// future refactor) lean on. Each is an *independent* implementation of the
// law it checks — e.g. trace preservation is verified through the Choi
// matrix, not through Channel::is_trace_preserving — so a bug in the
// production path and a bug in the checker cannot cancel.
#pragma once

#include <string>

#include "qcore/channels.hpp"
#include "qcore/matrix.hpp"
#include "qcore/state.hpp"

namespace ftl::qcore {

/// Hermitian, unit trace, positive semidefinite (within tol).
[[nodiscard]] bool is_density_matrix(const CMat& rho, double tol = 1e-8);

/// True iff the amplitudes form a unit-norm vector.
[[nodiscard]] bool is_normalized(const StateVec& psi, double tol = 1e-8);

/// Choi matrix J(Phi) = sum_ij |i><j| (x) Phi(|i><j|) of a Kraus channel.
/// For a single-qubit channel this is 4x4. Phi is CP iff J is PSD, and
/// trace preserving iff the partial trace of J over the *output* factor is
/// the identity on the input space.
[[nodiscard]] CMat choi_matrix(const Channel& ch);

/// J(Phi) is Hermitian PSD (complete positivity).
[[nodiscard]] bool is_completely_positive(const Channel& ch,
                                          double tol = 1e-8);

/// Tr_out J(Phi) == I, i.e. sum_k K^dagger K = I — checked through the Choi
/// matrix, independently of Channel::is_trace_preserving.
[[nodiscard]] bool choi_trace_preserving(const Channel& ch,
                                         double tol = 1e-8);

/// The full physical-channel invariant: CP and TP.
[[nodiscard]] bool is_cptp(const Channel& ch, double tol = 1e-8);

/// Phi(I) == I: the channel fixes the maximally mixed state. Not required
/// of physical channels (amplitude damping is non-unital); exposed so tests
/// can document which generators produce unital noise.
[[nodiscard]] bool is_unital(const Channel& ch, double tol = 1e-8);

/// Explains the first violated clause ("not Hermitian", "trace != 1", ...);
/// empty when `rho` is a valid density matrix. Property-test failure notes
/// use this so a shrunk counterexample names the broken law.
[[nodiscard]] std::string density_violation(const CMat& rho,
                                            double tol = 1e-8);

}  // namespace ftl::qcore

#include "qcore/density.hpp"

#include <cmath>

#include "qcore/eigen.hpp"

namespace ftl::qcore {

Density::Density(std::size_t num_qubits, CMat rho)
    : num_qubits_(num_qubits), rho_(std::move(rho)) {}

Density Density::maximally_mixed(std::size_t num_qubits) {
  const std::size_t d = std::size_t{1} << num_qubits;
  CMat rho = CMat::identity(d);
  rho *= Cx{1.0 / static_cast<double>(d), 0.0};
  return Density(num_qubits, std::move(rho));
}

Density Density::from_state(const StateVec& psi) {
  return Density(psi.num_qubits(), psi.to_density());
}

Density Density::werner(double visibility) {
  FTL_ASSERT(visibility >= 0.0 && visibility <= 1.0);
  const CMat bell = StateVec::bell_phi_plus().to_density();
  CMat mixed = CMat::identity(4);
  mixed *= Cx{0.25, 0.0};
  CMat rho = bell * Cx{visibility, 0.0} + mixed * Cx{1.0 - visibility, 0.0};
  return Density(2, std::move(rho));
}

Density Density::from_matrix(CMat rho) {
  FTL_ASSERT(rho.is_square());
  std::size_t n = 0;
  while ((std::size_t{1} << n) < rho.rows()) ++n;
  FTL_ASSERT_MSG((std::size_t{1} << n) == rho.rows(),
                 "density matrix dimension must be a power of two");
  FTL_ASSERT_MSG(rho.is_hermitian(1e-7), "density matrix must be Hermitian");
  FTL_ASSERT_MSG(std::abs(rho.trace().real() - 1.0) < 1e-7,
                 "density matrix must have unit trace");
  return Density(n, std::move(rho));
}

double Density::purity() const { return (rho_ * rho_).trace().real(); }

double Density::fidelity_with(const StateVec& psi) const {
  FTL_ASSERT(psi.dim() == dim());
  const std::vector<Cx> v = rho_.apply(psi.amplitudes());
  return inner(psi.amplitudes(), v).real();
}

bool Density::is_valid(double tol) const {
  return rho_.is_hermitian(tol) &&
         std::abs(rho_.trace().real() - 1.0) < tol && is_psd(rho_, tol);
}

CMat Density::embed1(const CMat& u, std::size_t qubit) const {
  FTL_ASSERT(u.rows() == 2 && u.cols() == 2);
  FTL_ASSERT(qubit < num_qubits_);
  CMat full = CMat::identity(1);
  for (std::size_t q = 0; q < num_qubits_; ++q) {
    full = full.kron(q == qubit ? u : CMat::identity(2));
  }
  return full;
}

void Density::apply1(const CMat& u, std::size_t qubit) {
  const CMat full = embed1(u, qubit);
  rho_ = full * rho_ * full.adjoint();
}

void Density::apply2(const CMat& u, std::size_t qa, std::size_t qb) {
  FTL_ASSERT(u.rows() == 4 && u.cols() == 4);
  FTL_ASSERT(qa < num_qubits_ && qb < num_qubits_ && qa != qb);
  // Embed the 4x4 gate: U_full[r, c] = u[sub(r), sub(c)] when r and c agree
  // on every other qubit, where sub() extracts the (qa, qb) bit pair.
  const std::size_t d = dim();
  const std::size_t pa = num_qubits_ - 1 - qa;
  const std::size_t pb = num_qubits_ - 1 - qb;
  auto sub = [&](std::size_t i) {
    return (((i >> pa) & 1) << 1) | ((i >> pb) & 1);
  };
  const std::size_t rest_mask =
      (d - 1) & ~((std::size_t{1} << pa) | (std::size_t{1} << pb));
  CMat full(d, d);
  for (std::size_t r = 0; r < d; ++r) {
    for (std::size_t c = 0; c < d; ++c) {
      if ((r & rest_mask) == (c & rest_mask)) {
        full.at(r, c) = u.at(sub(r), sub(c));
      }
    }
  }
  rho_ = full * rho_ * full.adjoint();
}

Density Density::tensor(const Density& other) const {
  return Density(num_qubits_ + other.num_qubits_, rho_.kron(other.rho_));
}

void Density::apply_unitary(const CMat& u) {
  FTL_ASSERT(u.rows() == dim() && u.cols() == dim());
  rho_ = u * rho_ * u.adjoint();
}

void Density::apply_channel(const Channel& ch, std::size_t qubit) {
  FTL_ASSERT_MSG(ch.is_trace_preserving(1e-7),
                 "channel must be trace preserving");
  CMat out(dim(), dim());
  for (const CMat& k : ch.kraus) {
    const CMat full = embed1(k, qubit);
    out += full * rho_ * full.adjoint();
  }
  rho_ = std::move(out);
}

double Density::outcome_probability(std::size_t qubit, const CMat& basis,
                                    int outcome) const {
  FTL_ASSERT(outcome == 0 || outcome == 1);
  FTL_ASSERT_MSG(basis.is_unitary(1e-8), "basis must be unitary");
  // Projector |phi_o><phi_o| where |phi_o> is column `outcome` of `basis`.
  const std::vector<Cx> col = {basis.at(0, outcome), basis.at(1, outcome)};
  const CMat proj = CMat::outer(col, col);
  const CMat full = embed1(proj, qubit);
  return (full * rho_).trace().real();
}

int Density::measure(std::size_t qubit, const CMat& basis, util::Rng& rng) {
  const double p1 = outcome_probability(qubit, basis, 1);
  const int outcome = rng.uniform() < p1 ? 1 : 0;
  auto [collapsed, prob] = collapse(qubit, basis, outcome);
  (void)prob;
  rho_ = collapsed.rho_;
  return outcome;
}

double Density::observable_plus_probability(const CMat& observable) const {
  FTL_ASSERT(observable.rows() == dim() && observable.cols() == dim());
  FTL_ASSERT_MSG(observable.is_hermitian(1e-8), "observable must be Hermitian");
  FTL_ASSERT_MSG((observable * observable)
                     .approx_equal(CMat::identity(dim()), 1e-8),
                 "observable must square to the identity (+-1 outcomes)");
  // P(+1) = Tr[(I + O)/2 rho].
  const CMat proj_plus =
      (CMat::identity(dim()) + observable) * Cx{0.5, 0.0};
  return (proj_plus * rho_).trace().real();
}

int Density::measure_observable(const CMat& observable, util::Rng& rng) {
  const double p_plus = observable_plus_probability(observable);
  const int outcome = rng.uniform() < p_plus ? +1 : -1;
  const double sign = outcome > 0 ? 1.0 : -1.0;
  CMat proj = (CMat::identity(dim()) + observable * Cx{sign, 0.0}) *
              Cx{0.5, 0.0};
  CMat post = proj * rho_ * proj.adjoint();
  const double p = post.trace().real();
  FTL_ASSERT_MSG(p > 1e-300, "measured an outcome of probability ~0");
  post *= Cx{1.0 / p, 0.0};
  rho_ = std::move(post);
  return outcome;
}

std::pair<Density, double> Density::collapse(std::size_t qubit,
                                             const CMat& basis,
                                             int outcome) const {
  const std::vector<Cx> col = {basis.at(0, outcome), basis.at(1, outcome)};
  const CMat proj = CMat::outer(col, col);
  const CMat full = embed1(proj, qubit);
  CMat post = full * rho_ * full.adjoint();
  const double p = post.trace().real();
  FTL_ASSERT_MSG(p > 1e-300, "collapsing onto a zero-probability outcome");
  post *= Cx{1.0 / p, 0.0};
  return {Density(num_qubits_, std::move(post)), p};
}

Density Density::partial_trace(std::vector<std::size_t> traced_out) const {
  // Build masks: surviving qubits keep their relative order.
  std::vector<bool> traced(num_qubits_, false);
  for (std::size_t q : traced_out) {
    FTL_ASSERT(q < num_qubits_);
    FTL_ASSERT_MSG(!traced[q], "qubit listed twice in partial_trace");
    traced[q] = true;
  }
  std::vector<std::size_t> kept;
  for (std::size_t q = 0; q < num_qubits_; ++q) {
    if (!traced[q]) kept.push_back(q);
  }
  FTL_ASSERT_MSG(!kept.empty(), "cannot trace out every qubit");

  const std::size_t nk = kept.size();
  const std::size_t nt = num_qubits_ - nk;
  const std::size_t dk = std::size_t{1} << nk;
  const std::size_t dt = std::size_t{1} << nt;

  // Maps a (kept-index, traced-index) pair to a full basis index. Bit for
  // qubit q sits at position (num_qubits_ - 1 - q).
  auto full_index = [&](std::size_t k_bits, std::size_t t_bits) {
    std::size_t idx = 0;
    std::size_t ki = 0;
    std::size_t ti = 0;
    for (std::size_t q = 0; q < num_qubits_; ++q) {
      const std::size_t bitpos = num_qubits_ - 1 - q;
      if (!traced[q]) {
        const std::size_t bit = (k_bits >> (nk - 1 - ki)) & 1;
        idx |= bit << bitpos;
        ++ki;
      } else {
        const std::size_t bit = (t_bits >> (nt - 1 - ti)) & 1;
        idx |= bit << bitpos;
        ++ti;
      }
    }
    return idx;
  };

  CMat out(dk, dk);
  for (std::size_t r = 0; r < dk; ++r) {
    for (std::size_t c = 0; c < dk; ++c) {
      Cx acc{0.0, 0.0};
      for (std::size_t t = 0; t < dt; ++t) {
        acc += rho_.at(full_index(r, t), full_index(c, t));
      }
      out.at(r, c) = acc;
    }
  }
  return Density(nk, std::move(out));
}

}  // namespace ftl::qcore

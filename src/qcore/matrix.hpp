// Dense complex matrices sized for few-qubit quantum simulation.
//
// This is deliberately a small, dependency-free linear-algebra layer: the
// paper's protocols need at most a handful of qubits (2 for CHSH, 3-4 for the
// ECMP impossibility study), so matrices stay tiny (<= 32x32) and a simple
// row-major dense representation is both fastest and simplest to audit.
#pragma once

#include <initializer_list>
#include <vector>

#include "qcore/complex.hpp"
#include "util/assert.hpp"

namespace ftl::qcore {

class CMat {
 public:
  CMat() = default;

  /// Zero matrix of the given shape.
  CMat(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, Cx{0.0, 0.0}) {}

  /// Row-major construction from a nested initializer list.
  CMat(std::initializer_list<std::initializer_list<Cx>> rows);

  [[nodiscard]] static CMat identity(std::size_t n);
  /// Outer product |u><v| (rows = u.size, cols = v.size).
  [[nodiscard]] static CMat outer(const std::vector<Cx>& u,
                                  const std::vector<Cx>& v);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] Cx& at(std::size_t r, std::size_t c) {
    FTL_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] Cx at(std::size_t r, std::size_t c) const {
    FTL_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] Cx operator()(std::size_t r, std::size_t c) const {
    return at(r, c);
  }
  [[nodiscard]] Cx& operator()(std::size_t r, std::size_t c) {
    return at(r, c);
  }

  CMat& operator+=(const CMat& o);
  CMat& operator-=(const CMat& o);
  CMat& operator*=(Cx s);

  [[nodiscard]] CMat operator+(const CMat& o) const;
  [[nodiscard]] CMat operator-(const CMat& o) const;
  [[nodiscard]] CMat operator*(const CMat& o) const;  // matrix product
  [[nodiscard]] CMat operator*(Cx s) const;

  /// Matrix-vector product.
  [[nodiscard]] std::vector<Cx> apply(const std::vector<Cx>& v) const;

  /// Conjugate transpose.
  [[nodiscard]] CMat adjoint() const;
  [[nodiscard]] CMat transpose() const;
  [[nodiscard]] CMat conj() const;

  [[nodiscard]] Cx trace() const;
  [[nodiscard]] double frobenius_norm() const;

  /// Kronecker (tensor) product: this (x) o.
  [[nodiscard]] CMat kron(const CMat& o) const;

  [[nodiscard]] bool is_square() const { return rows_ == cols_; }
  [[nodiscard]] bool is_hermitian(double tol = 1e-8) const;
  [[nodiscard]] bool is_unitary(double tol = 1e-8) const;
  [[nodiscard]] bool approx_equal(const CMat& o, double tol = 1e-8) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Cx> data_;
};

[[nodiscard]] inline CMat operator*(Cx s, const CMat& m) { return m * s; }

// --- free functions on complex vectors (kets) -------------------------------

/// <u|v> with the physics convention: conjugate-linear in the first slot.
[[nodiscard]] Cx inner(const std::vector<Cx>& u, const std::vector<Cx>& v);

/// Euclidean norm.
[[nodiscard]] double norm(const std::vector<Cx>& v);

/// Scales v to unit norm; asserts it is not the zero vector.
void normalize(std::vector<Cx>& v);

/// Tensor product of two kets.
[[nodiscard]] std::vector<Cx> kron(const std::vector<Cx>& a,
                                   const std::vector<Cx>& b);

}  // namespace ftl::qcore

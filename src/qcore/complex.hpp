// Scalar type and numeric helpers shared by the quantum substrate.
#pragma once

#include <cmath>
#include <complex>

namespace ftl::qcore {

using Cx = std::complex<double>;

inline constexpr double kEps = 1e-9;

/// |a - b| <= tol, for complex scalars.
[[nodiscard]] inline bool approx_eq(Cx a, Cx b, double tol = kEps) {
  return std::abs(a - b) <= tol;
}

[[nodiscard]] inline bool approx_eq(double a, double b, double tol = kEps) {
  return std::abs(a - b) <= tol;
}

/// Squared magnitude, |z|^2, without the sqrt of std::abs.
[[nodiscard]] inline double norm2(Cx z) { return std::norm(z); }

}  // namespace ftl::qcore

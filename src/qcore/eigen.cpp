#include "qcore/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ftl::qcore {

namespace {

/// Sum of squared magnitudes of strictly-upper off-diagonal entries.
double off_diag_norm2(const CMat& a) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = i + 1; j < a.cols(); ++j) s += std::norm(a.at(i, j));
  }
  return s;
}

}  // namespace

EigResult eigh(const CMat& a_in, double tol, int max_sweeps) {
  FTL_ASSERT_MSG(a_in.is_hermitian(1e-8), "eigh requires a Hermitian matrix");
  const std::size_t n = a_in.rows();
  CMat a = a_in;
  CMat v = CMat::identity(n);

  // One complex Jacobi rotation zeroes a(p,q). The 2x2 Hermitian block
  // [[alpha, beta], [conj(beta), gamma]] is first de-phased so the coupling
  // is real, then rotated by the classic symmetric Jacobi angle.
  const double frob = a.frobenius_norm();
  const double stop = tol * std::max(frob, 1.0);
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (std::sqrt(off_diag_norm2(a)) <= stop) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const Cx beta = a.at(p, q);
        const double babs = std::abs(beta);
        if (babs <= stop / static_cast<double>(n)) continue;
        const double alpha = a.at(p, p).real();
        const double gamma = a.at(q, q).real();
        const Cx phase = beta / babs;  // e^{i phi}

        // Real Jacobi angle for [[alpha, babs], [babs, gamma]]. Annihilating
        // the coupling requires t = tan(angle) solving t^2 - 2*theta*t - 1
        // = 0 with theta = (gamma - alpha) / (2*babs); the smaller-magnitude
        // root is numerically stable.
        double t;
        const double theta = (gamma - alpha) / (2.0 * babs);
        if (std::abs(theta) > 1e150) {
          t = -1.0 / (2.0 * theta);
        } else {
          t = (theta >= 0.0 ? -1.0 : 1.0) /
              (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        }
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // Block unitary U = [[c, -s*phase], [s*conj(phase), c]] applied as
        // A <- U^dagger A U on rows/cols p,q; V <- V U.
        const Cx up = Cx{c, 0.0};
        const Cx uq = -s * phase;
        const Cx lp = s * std::conj(phase);
        const Cx lq = Cx{c, 0.0};

        for (std::size_t k = 0; k < n; ++k) {
          const Cx akp = a.at(k, p);
          const Cx akq = a.at(k, q);
          a.at(k, p) = akp * up + akq * lp;
          a.at(k, q) = akp * uq + akq * lq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const Cx apk = a.at(p, k);
          const Cx aqk = a.at(q, k);
          a.at(p, k) = std::conj(up) * apk + std::conj(lp) * aqk;
          a.at(q, k) = std::conj(uq) * apk + std::conj(lq) * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const Cx vkp = v.at(k, p);
          const Cx vkq = v.at(k, q);
          v.at(k, p) = vkp * up + vkq * lp;
          v.at(k, q) = vkp * uq + vkq * lq;
        }
      }
    }
  }

  // Extract and sort ascending, permuting eigenvector columns to match.
  std::vector<double> vals(n);
  for (std::size_t i = 0; i < n; ++i) vals[i] = a.at(i, i).real();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return vals[x] < vals[y]; });

  EigResult out;
  out.values.resize(n);
  out.vectors = CMat(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    out.values[k] = vals[order[k]];
    for (std::size_t r = 0; r < n; ++r) {
      out.vectors.at(r, k) = v.at(r, order[k]);
    }
  }
  return out;
}

bool is_psd(const CMat& a, double tol) {
  const EigResult e = eigh(a);
  return e.values.empty() || e.values.front() >= -tol;
}

CMat sqrt_psd(const CMat& a) {
  const EigResult e = eigh(a);
  const std::size_t n = a.rows();
  CMat d(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const double lam = std::max(e.values[i], 0.0);
    d.at(i, i) = Cx{std::sqrt(lam), 0.0};
  }
  return e.vectors * d * e.vectors.adjoint();
}

double fidelity(const CMat& rho, const CMat& sigma) {
  const CMat root = sqrt_psd(rho);
  const CMat inner_mat = root * sigma * root;
  const CMat s = sqrt_psd(inner_mat);
  const double tr = s.trace().real();
  return tr * tr;
}

}  // namespace ftl::qcore

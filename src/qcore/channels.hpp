// Single-qubit noise channels in Kraus form.
//
// These model the imperfections the paper's §3 insists system designs must
// account for: imperfect SPDC pair fidelity, fiber transmission noise, and
// decoherence while a qubit sits in QNIC memory waiting for its input.
#pragma once

#include <vector>

#include "qcore/matrix.hpp"

namespace ftl::qcore {

/// A CPTP map given by Kraus operators: rho -> sum_k K rho K^dagger.
struct Channel {
  std::vector<CMat> kraus;

  /// Checks the completeness relation sum_k K^dagger K = I.
  [[nodiscard]] bool is_trace_preserving(double tol = 1e-8) const;
};

/// Depolarizing channel: with probability p the qubit is replaced by the
/// maximally mixed state (uniform Pauli errors with weight p/4 each).
[[nodiscard]] Channel depolarizing(double p);

/// Phase damping: off-diagonal coherences scale by sqrt(1 - lambda).
[[nodiscard]] Channel dephasing(double lambda);

/// Amplitude damping with decay probability gamma (|1> relaxes to |0>).
[[nodiscard]] Channel amplitude_damping(double gamma);

/// Bit flip with probability p.
[[nodiscard]] Channel bit_flip(double p);

/// The identity channel.
[[nodiscard]] Channel identity_channel();

/// Decoherence accumulated while storing a qubit for `t` seconds in a memory
/// with relaxation time T1 and coherence time T2 (requires T2 <= 2*T1):
/// amplitude damping with gamma = 1 - e^{-t/T1} composed with enough extra
/// dephasing that coherences decay as e^{-t/T2}. Returned as the channels to
/// apply in order.
[[nodiscard]] std::vector<Channel> storage_decoherence(double t, double t1,
                                                       double t2);

}  // namespace ftl::qcore

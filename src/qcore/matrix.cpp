#include "qcore/matrix.hpp"

#include <cmath>

namespace ftl::qcore {

CMat::CMat(std::initializer_list<std::initializer_list<Cx>> rows) {
  rows_ = rows.size();
  cols_ = rows.begin() == rows.end() ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    FTL_ASSERT_MSG(row.size() == cols_, "ragged initializer list");
    for (Cx v : row) data_.push_back(v);
  }
}

CMat CMat::identity(std::size_t n) {
  CMat m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = Cx{1.0, 0.0};
  return m;
}

CMat CMat::outer(const std::vector<Cx>& u, const std::vector<Cx>& v) {
  CMat m(u.size(), v.size());
  for (std::size_t r = 0; r < u.size(); ++r) {
    for (std::size_t c = 0; c < v.size(); ++c) {
      m.at(r, c) = u[r] * std::conj(v[c]);
    }
  }
  return m;
}

CMat& CMat::operator+=(const CMat& o) {
  FTL_ASSERT(rows_ == o.rows_ && cols_ == o.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

CMat& CMat::operator-=(const CMat& o) {
  FTL_ASSERT(rows_ == o.rows_ && cols_ == o.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

CMat& CMat::operator*=(Cx s) {
  for (auto& v : data_) v *= s;
  return *this;
}

CMat CMat::operator+(const CMat& o) const {
  CMat r = *this;
  r += o;
  return r;
}

CMat CMat::operator-(const CMat& o) const {
  CMat r = *this;
  r -= o;
  return r;
}

CMat CMat::operator*(Cx s) const {
  CMat r = *this;
  r *= s;
  return r;
}

CMat CMat::operator*(const CMat& o) const {
  FTL_ASSERT_MSG(cols_ == o.rows_, "matrix product shape mismatch");
  CMat r(rows_, o.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const Cx aik = at(i, k);
      if (aik == Cx{0.0, 0.0}) continue;
      for (std::size_t j = 0; j < o.cols_; ++j) {
        r.at(i, j) += aik * o.at(k, j);
      }
    }
  }
  return r;
}

std::vector<Cx> CMat::apply(const std::vector<Cx>& v) const {
  FTL_ASSERT(cols_ == v.size());
  std::vector<Cx> out(rows_, Cx{0.0, 0.0});
  for (std::size_t i = 0; i < rows_; ++i) {
    Cx acc{0.0, 0.0};
    for (std::size_t j = 0; j < cols_; ++j) acc += at(i, j) * v[j];
    out[i] = acc;
  }
  return out;
}

CMat CMat::adjoint() const {
  CMat r(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      r.at(j, i) = std::conj(at(i, j));
    }
  }
  return r;
}

CMat CMat::transpose() const {
  CMat r(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) r.at(j, i) = at(i, j);
  }
  return r;
}

CMat CMat::conj() const {
  CMat r = *this;
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) r.at(i, j) = std::conj(at(i, j));
  }
  return r;
}

Cx CMat::trace() const {
  FTL_ASSERT(is_square());
  Cx t{0.0, 0.0};
  for (std::size_t i = 0; i < rows_; ++i) t += at(i, i);
  return t;
}

double CMat::frobenius_norm() const {
  double s = 0.0;
  for (const Cx& v : data_) s += std::norm(v);
  return std::sqrt(s);
}

CMat CMat::kron(const CMat& o) const {
  CMat r(rows_ * o.rows_, cols_ * o.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      const Cx a = at(i, j);
      if (a == Cx{0.0, 0.0}) continue;
      for (std::size_t k = 0; k < o.rows_; ++k) {
        for (std::size_t l = 0; l < o.cols_; ++l) {
          r.at(i * o.rows_ + k, j * o.cols_ + l) = a * o.at(k, l);
        }
      }
    }
  }
  return r;
}

bool CMat::is_hermitian(double tol) const {
  if (!is_square()) return false;
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = i; j < cols_; ++j) {
      if (!approx_eq(at(i, j), std::conj(at(j, i)), tol)) return false;
    }
  }
  return true;
}

bool CMat::is_unitary(double tol) const {
  if (!is_square()) return false;
  return (adjoint() * *this).approx_equal(identity(rows_), tol);
}

bool CMat::approx_equal(const CMat& o, double tol) const {
  if (rows_ != o.rows_ || cols_ != o.cols_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::abs(data_[i] - o.data_[i]) > tol) return false;
  }
  return true;
}

Cx inner(const std::vector<Cx>& u, const std::vector<Cx>& v) {
  FTL_ASSERT(u.size() == v.size());
  Cx acc{0.0, 0.0};
  for (std::size_t i = 0; i < u.size(); ++i) acc += std::conj(u[i]) * v[i];
  return acc;
}

double norm(const std::vector<Cx>& v) {
  double s = 0.0;
  for (Cx x : v) s += std::norm(x);
  return std::sqrt(s);
}

void normalize(std::vector<Cx>& v) {
  const double n = norm(v);
  FTL_ASSERT_MSG(n > 1e-300, "cannot normalize the zero vector");
  for (Cx& x : v) x /= n;
}

std::vector<Cx> kron(const std::vector<Cx>& a, const std::vector<Cx>& b) {
  std::vector<Cx> out;
  out.reserve(a.size() * b.size());
  for (Cx x : a) {
    for (Cx y : b) out.push_back(x * y);
  }
  return out;
}

}  // namespace ftl::qcore

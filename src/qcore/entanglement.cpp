#include "qcore/entanglement.hpp"

#include <algorithm>
#include <cmath>

#include "qcore/eigen.hpp"
#include "qcore/gates.hpp"

namespace ftl::qcore {

double von_neumann_entropy(const Density& rho) {
  const EigResult e = eigh(rho.matrix());
  double s = 0.0;
  for (double lam : e.values) {
    if (lam > 1e-12) s -= lam * std::log2(lam);
  }
  return s;
}

double entanglement_entropy(const StateVec& psi, std::size_t qubit) {
  const Density rho = Density::from_state(psi);
  std::vector<std::size_t> traced;
  for (std::size_t q = 0; q < psi.num_qubits(); ++q) {
    if (q != qubit) traced.push_back(q);
  }
  return von_neumann_entropy(rho.partial_trace(traced));
}

double concurrence(const Density& rho) {
  FTL_ASSERT_MSG(rho.num_qubits() == 2, "concurrence is a two-qubit measure");
  // rho_tilde = (sy (x) sy) rho* (sy (x) sy).
  const CMat yy = gates::Y().kron(gates::Y());
  const CMat rho_tilde = yy * rho.matrix().conj() * yy;
  // Eigenvalues of rho*rho_tilde via the Hermitian form
  // sqrt(rho) rho_tilde sqrt(rho).
  const CMat root = sqrt_psd(rho.matrix());
  const EigResult e = eigh(root * rho_tilde * root);
  std::vector<double> lams;
  lams.reserve(4);
  for (double v : e.values) lams.push_back(std::sqrt(std::max(v, 0.0)));
  std::sort(lams.begin(), lams.end(), std::greater<>());
  return std::max(0.0, lams[0] - lams[1] - lams[2] - lams[3]);
}

double negativity(const Density& rho, std::size_t qubit) {
  FTL_ASSERT_MSG(rho.num_qubits() == 2, "negativity here is two-qubit");
  FTL_ASSERT(qubit < 2);
  // Partial transpose over `qubit`. Basis index = (q0 << 1) | q1.
  CMat pt(4, 4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      std::size_t r2 = r;
      std::size_t c2 = c;
      if (qubit == 0) {
        // Swap the q0 bits of row and column.
        r2 = (c & 0b10) | (r & 0b01);
        c2 = (r & 0b10) | (c & 0b01);
      } else {
        r2 = (r & 0b10) | (c & 0b01);
        c2 = (c & 0b10) | (r & 0b01);
      }
      pt.at(r, c) = rho.matrix().at(r2, c2);
    }
  }
  const EigResult e = eigh(pt);
  double neg = 0.0;
  for (double v : e.values) {
    if (v < 0.0) neg -= v;
  }
  return neg;
}

double chsh_ceiling(const Density& rho) {
  FTL_ASSERT_MSG(rho.num_qubits() == 2, "CHSH ceiling is two-qubit");
  const CMat paulis[3] = {gates::X(), gates::Y(), gates::Z()};
  // Correlation matrix T_ij = Tr[rho (sigma_i (x) sigma_j)].
  CMat t(3, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      t.at(i, j) = (paulis[i].kron(paulis[j]) * rho.matrix()).trace();
    }
  }
  const EigResult e = eigh(t.adjoint() * t);
  // Two largest eigenvalues of T^T T (all real, >= 0).
  const double m1 = e.values[2];
  const double m2 = e.values[1];
  return 2.0 * std::sqrt(std::max(0.0, m1 + m2));
}

}  // namespace ftl::qcore

#include "qcore/invariants.hpp"

#include <cmath>

#include "qcore/eigen.hpp"
#include "util/assert.hpp"

namespace ftl::qcore {

bool is_density_matrix(const CMat& rho, double tol) {
  return density_violation(rho, tol).empty();
}

std::string density_violation(const CMat& rho, double tol) {
  if (!rho.is_square() || rho.empty()) return "not a non-empty square matrix";
  if (!rho.is_hermitian(tol)) return "not Hermitian";
  const Cx tr = rho.trace();
  if (std::abs(tr.real() - 1.0) > tol || std::abs(tr.imag()) > tol) {
    return "trace != 1 (got " + std::to_string(tr.real()) + ")";
  }
  if (!is_psd(rho, tol)) return "not positive semidefinite";
  return "";
}

bool is_normalized(const StateVec& psi, double tol) {
  return std::abs(psi.norm() - 1.0) <= tol;
}

CMat choi_matrix(const Channel& ch) {
  FTL_ASSERT(!ch.kraus.empty());
  const std::size_t d_in = ch.kraus.front().cols();
  const std::size_t d_out = ch.kraus.front().rows();
  for (const CMat& k : ch.kraus) {
    FTL_ASSERT(k.rows() == d_out && k.cols() == d_in);
  }
  CMat j(d_in * d_out, d_in * d_out);
  for (std::size_t i = 0; i < d_in; ++i) {
    for (std::size_t jj = 0; jj < d_in; ++jj) {
      // Phi(|i><j|) = sum_k K |i><j| K^dagger; |i><j| picks out column i of
      // K against the conjugate of column j, so the block is
      // sum_k K[:, i] * conj(K[:, j])^T.
      for (const CMat& k : ch.kraus) {
        for (std::size_t r = 0; r < d_out; ++r) {
          for (std::size_t c = 0; c < d_out; ++c) {
            j.at(i * d_out + r, jj * d_out + c) +=
                k.at(r, i) * std::conj(k.at(c, jj));
          }
        }
      }
    }
  }
  return j;
}

bool is_completely_positive(const Channel& ch, double tol) {
  const CMat j = choi_matrix(ch);
  return j.is_hermitian(tol) && is_psd(j, tol);
}

bool choi_trace_preserving(const Channel& ch, double tol) {
  const CMat j = choi_matrix(ch);
  const std::size_t d_in = ch.kraus.front().cols();
  const std::size_t d_out = ch.kraus.front().rows();
  // Tr_out J: contract each (i, j) block over its output indices.
  CMat reduced(d_in, d_in);
  for (std::size_t i = 0; i < d_in; ++i) {
    for (std::size_t jj = 0; jj < d_in; ++jj) {
      Cx sum{0.0, 0.0};
      for (std::size_t r = 0; r < d_out; ++r) {
        sum += j.at(i * d_out + r, jj * d_out + r);
      }
      reduced.at(i, jj) = sum;
    }
  }
  return reduced.approx_equal(CMat::identity(d_in), tol);
}

bool is_cptp(const Channel& ch, double tol) {
  if (ch.kraus.empty()) return false;
  return is_completely_positive(ch, tol) && choi_trace_preserving(ch, tol);
}

bool is_unital(const Channel& ch, double tol) {
  FTL_ASSERT(!ch.kraus.empty());
  const std::size_t d_out = ch.kraus.front().rows();
  CMat sum(d_out, d_out);
  for (const CMat& k : ch.kraus) sum += k * k.adjoint();
  return sum.approx_equal(CMat::identity(d_out), tol);
}

}  // namespace ftl::qcore

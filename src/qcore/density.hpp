// Density-matrix simulator: mixed states, noise channels, and the partial
// measurements the ECMP no-signaling argument (§4.2) relies on.
#pragma once

#include <vector>

#include "qcore/channels.hpp"
#include "qcore/matrix.hpp"
#include "qcore/state.hpp"
#include "util/rng.hpp"

namespace ftl::qcore {

class Density {
 public:
  /// Maximally mixed state I / 2^n.
  [[nodiscard]] static Density maximally_mixed(std::size_t num_qubits);

  /// |psi><psi| for a pure state.
  [[nodiscard]] static Density from_state(const StateVec& psi);

  /// Two-qubit Werner state: v |Phi+><Phi+| + (1 - v) I/4, with visibility
  /// v in [0, 1]. Models an SPDC pair transmitted through white noise; the
  /// Bell-pair fidelity is F = (1 + 3v) / 4.
  [[nodiscard]] static Density werner(double visibility);

  /// Wraps an explicit density matrix (validated: Hermitian, unit trace).
  [[nodiscard]] static Density from_matrix(CMat rho);

  [[nodiscard]] std::size_t num_qubits() const { return num_qubits_; }
  [[nodiscard]] std::size_t dim() const { return rho_.rows(); }
  [[nodiscard]] const CMat& matrix() const { return rho_; }

  /// Tr(rho^2); 1 iff pure.
  [[nodiscard]] double purity() const;

  /// <psi| rho |psi>: fidelity with a pure target state.
  [[nodiscard]] double fidelity_with(const StateVec& psi) const;

  /// Hermitian, unit trace, PSD (within tolerance).
  [[nodiscard]] bool is_valid(double tol = 1e-7) const;

  /// Applies a single-qubit unitary to `qubit`.
  void apply1(const CMat& u, std::size_t qubit);

  /// Applies a two-qubit unitary to the ordered pair (qa, qb); qa is the
  /// high-order qubit of the 4x4 gate's local basis.
  void apply2(const CMat& u, std::size_t qa, std::size_t qb);

  /// Applies a full-dimension unitary.
  void apply_unitary(const CMat& u);

  /// Tensor product: this (x) other (other's qubits appended after ours).
  [[nodiscard]] Density tensor(const Density& other) const;

  /// Applies a single-qubit channel to `qubit`.
  void apply_channel(const Channel& ch, std::size_t qubit);

  /// Probability that measuring `qubit` in `basis` yields `outcome`.
  [[nodiscard]] double outcome_probability(std::size_t qubit,
                                           const CMat& basis,
                                           int outcome) const;

  /// Projective measurement; collapses and returns the outcome.
  int measure(std::size_t qubit, const CMat& basis, util::Rng& rng);

  /// Measures a +-1-valued observable O (full-dimension Hermitian with
  /// O^2 = I, e.g. a Pauli product): collapses onto the corresponding
  /// eigenspace via the projectors (I +- O)/2 and returns +1 or -1.
  /// This is how a party measures several *commuting* observables in one
  /// round (magic-square-style strategies).
  int measure_observable(const CMat& observable, util::Rng& rng);

  /// Probability that measure_observable would yield +1 (no collapse).
  [[nodiscard]] double observable_plus_probability(
      const CMat& observable) const;

  /// Non-destructively computes the post-measurement state for a given
  /// outcome (used for the §4.2 reduction where a far-away party "measures
  /// first"). Returns the renormalised collapsed state and its probability.
  [[nodiscard]] std::pair<Density, double> collapse(std::size_t qubit,
                                                    const CMat& basis,
                                                    int outcome) const;

  /// Traces out the listed qubits, returning the state of the rest (qubit
  /// indices of the result are the surviving qubits in their original
  /// order).
  [[nodiscard]] Density partial_trace(std::vector<std::size_t> traced_out) const;

 private:
  Density(std::size_t num_qubits, CMat rho);

  /// Embeds a 2x2 (or 4x4) operator acting on the given qubits into the
  /// full 2^n-dimensional space.
  [[nodiscard]] CMat embed1(const CMat& u, std::size_t qubit) const;

  std::size_t num_qubits_;
  CMat rho_;
};

}  // namespace ftl::qcore

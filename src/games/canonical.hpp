// Canonical forms of XOR-game cost matrices, and a value cache keyed on
// them.
//
// Two XOR games have identical classical and quantum values whenever their
// cost matrices are related by question relabelings (independent row and
// column permutations) and sign symmetry (flipping the sign of a row or a
// column — relabeling the corresponding player's answer bit for that
// question). A Fig-3 sweep draws thousands of random affinity games that
// recur up to exactly these symmetries, so memoising values by an orbit
// representative turns repeated solves into lookups.
//
// `canonical_form` computes a true orbit representative: the lexicographic
// maximum (row-major) of the matrix over the full group, found by
// row-by-row placement with column-partition refinement — pick the row
// (and row sign) whose rendered string is lexicographically greatest,
// branch on ties, refine the columns into cells of still-interchangeable
// positions, and quotient the global sign flip by pinning the first
// resolved sign. All tied branches are explored (no best-first pruning), so
// the visited node count is a function of the isomorphism class alone; the
// search aborts at `node_cap` nodes, and because the cap decision is
// label-independent, *whether* a game canonicalises is itself invariant —
// a highly symmetric matrix bails out under every labeling, never under
// only some. Soundness is unconditional: a returned form is reachable from
// the input by group operations, so equal forms imply equivalent games.
//
// All comparisons are exact double comparisons (the only arithmetic is
// negation, which is exact in IEEE-754); negative zeros are normalised so
// orbit-equal matrices serialise to identical bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace ftl::games {

struct CanonicalOptions {
  /// Abort the tie-branching search beyond this many placements. Random
  /// games refine to singleton cells immediately (nodes = num_x + 1);
  /// only automorphism-rich matrices (complete graphs, constant matrices)
  /// approach the cap, and those bail out identically for every labeling.
  std::uint64_t node_cap = 50000;
};

struct CanonicalForm {
  /// False when the node cap was hit; `matrix` is empty in that case.
  bool complete = false;
  std::size_t nx = 0;
  std::size_t ny = 0;
  /// Row-major lex-max orbit representative (only when `complete`).
  std::vector<double> matrix;
  /// Placements visited; invariant under relabeling of the input.
  std::uint64_t nodes = 0;

  /// Byte-exact serialisation usable as a hash-map key; empty when
  /// incomplete.
  [[nodiscard]] std::string key() const;
};

/// Orbit representative of `m` under row/column permutations and sign
/// flips. Deterministic; exact (no arithmetic beyond negation).
[[nodiscard]] CanonicalForm canonical_form(
    const std::vector<std::vector<double>>& m,
    const CanonicalOptions& opts = {});

/// Applies a group element to a cost matrix: row/column permutations and
/// +-1 sign vectors. Exposed for the invariance property tests.
[[nodiscard]] std::vector<std::vector<double>> relabel_cost_matrix(
    const std::vector<std::vector<double>>& m,
    const std::vector<std::size_t>& row_perm,
    const std::vector<std::size_t>& col_perm,
    const std::vector<int>& row_sign, const std::vector<int>& col_sign);

struct CachedXorValue {
  double classical_bias = 0.0;
  double quantum_bias = 0.0;
  bool quantum_converged = false;
};

/// Two-level value cache: an exact-matrix map catches byte-identical
/// repeats (the degenerate sweep densities where every sampled graph is the
/// same game), the canonical map catches symmetry-equivalent recurrences.
/// Games whose canonicalisation bails out are cached under the exact key
/// only — soundness is never traded for hit rate.
///
/// Counter conservation (asserted in tests): lookups = hits + misses,
/// hits = hits_exact + hits_canonical, and with the engine's
/// insert-after-every-miss discipline, insertions = misses.
class XorValueCache {
 public:
  explicit XorValueCache(CanonicalOptions opts = {});

  /// Returns the cached value, or nullopt on miss. Single-threaded; the
  /// canonicalisation is memoised for an immediately following insert of
  /// the same matrix.
  [[nodiscard]] std::optional<CachedXorValue> lookup(
      const std::vector<std::vector<double>>& m);

  /// Stores `v` under the exact key and (when canonicalisation completed)
  /// the canonical key.
  void insert(const std::vector<std::vector<double>>& m,
              const CachedXorValue& v);

  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t hits_exact = 0;
    std::uint64_t hits_canonical = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t canonical_bailouts = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t size() const { return canon_.size() + raw_.size(); }

 private:
  CanonicalOptions opts_;
  std::unordered_map<std::string, CachedXorValue> raw_;
  std::unordered_map<std::string, CachedXorValue> canon_;
  Stats stats_;
  // Canonicalisation memo for the lookup-then-insert pattern.
  std::string pending_raw_key_;
  std::string pending_canon_key_;
  bool pending_valid_ = false;
};

}  // namespace ftl::games

#include "games/affinity.hpp"

#include "util/assert.hpp"

namespace ftl::games {

AffinityGraph::AffinityGraph(std::size_t num_types)
    : n_(num_types), label_(num_types * num_types, Affinity::kColocate) {
  FTL_ASSERT(num_types >= 1);
}

AffinityGraph AffinityGraph::random(std::size_t num_types, double p_exclusive,
                                    util::Rng& rng) {
  FTL_ASSERT(p_exclusive >= 0.0 && p_exclusive <= 1.0);
  AffinityGraph g(num_types);
  for (std::size_t u = 0; u < num_types; ++u) {
    for (std::size_t v = u + 1; v < num_types; ++v) {
      if (rng.bernoulli(p_exclusive)) g.set(u, v, Affinity::kExclusive);
    }
  }
  return g;
}

Affinity AffinityGraph::at(std::size_t u, std::size_t v) const {
  FTL_ASSERT(u < n_ && v < n_);
  return label_[u * n_ + v];
}

void AffinityGraph::set(std::size_t u, std::size_t v, Affinity a) {
  FTL_ASSERT(u < n_ && v < n_);
  label_[u * n_ + v] = a;
  label_[v * n_ + u] = a;
}

std::size_t AffinityGraph::num_exclusive_edges() const {
  std::size_t count = 0;
  for (std::size_t u = 0; u < n_; ++u) {
    for (std::size_t v = u + 1; v < n_; ++v) {
      if (at(u, v) == Affinity::kExclusive) ++count;
    }
  }
  return count;
}

}  // namespace ftl::games

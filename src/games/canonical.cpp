#include "games/canonical.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace ftl::games {

namespace {

/// -0.0 -> +0.0 so orbit-equal matrices serialise identically (cost
/// matrices genuinely contain -0.0: zero-probability inputs with f = 1).
double norm_zero(double v) { return v == 0.0 ? 0.0 : v; }

/// The canonicalisation search. Columns live in an ordered partition of
/// "cells" — groups still interchangeable given the rows placed so far.
/// Each column carries a sign that is unresolved until the first placed row
/// with a nonzero entry there fixes it (to whatever renders that entry
/// positive, i.e. lexicographically maximal).
struct Canonicalizer {
  std::vector<std::vector<double>> m;  // -0-normalised input
  std::size_t nx = 0;
  std::size_t ny = 0;
  std::uint64_t node_cap = 0;

  std::uint64_t nodes = 0;
  bool aborted = false;
  bool have_best = false;
  std::vector<double> best;  // lex-max emitted matrix so far

  struct State {
    std::vector<std::vector<std::size_t>> cells;  // ordered column partition
    std::vector<double> col_sign;                 // +-1 per column
    std::vector<char> resolved;                   // sign fixed yet?
    std::vector<std::pair<std::size_t, int>> placed;  // (row, sign)
    std::uint32_t used = 0;                       // bitmask of placed rows
    bool any_resolved = false;
  };

  /// Rendered string of candidate row `r` with sign `s`: per cell, the
  /// entries as they would appear after the within-cell descending sort
  /// the final matrix is free to apply.
  [[nodiscard]] std::vector<double> render(const State& st, std::size_t r,
                                           int s) const {
    std::vector<double> out;
    out.reserve(ny);
    std::vector<double> cell_vals;
    for (const auto& cell : st.cells) {
      cell_vals.clear();
      for (std::size_t c : cell) {
        const double v = m[r][c];
        const double adj = st.resolved[c]
                               ? norm_zero(static_cast<double>(s) *
                                           st.col_sign[c] * v)
                               : std::abs(v);
        cell_vals.push_back(adj);
      }
      std::sort(cell_vals.begin(), cell_vals.end(), std::greater<>());
      out.insert(out.end(), cell_vals.begin(), cell_vals.end());
    }
    return out;
  }

  /// Places (r, s): refines every cell by the row's rendered values
  /// (descending groups) and resolves pending column signs at nonzero
  /// entries.
  [[nodiscard]] State place(const State& st, std::size_t r, int s) const {
    State next;
    next.col_sign = st.col_sign;
    next.resolved = st.resolved;
    next.placed = st.placed;
    next.placed.emplace_back(r, s);
    next.used = st.used | (std::uint32_t{1} << r);
    next.any_resolved = st.any_resolved;
    const double sd = static_cast<double>(s);
    for (const auto& cell : st.cells) {
      // Resolve signs first so grouping uses the final adjusted values.
      std::vector<std::pair<double, std::size_t>> adj;
      adj.reserve(cell.size());
      for (std::size_t c : cell) {
        const double v = m[r][c];
        if (!next.resolved[c] && v != 0.0) {
          next.resolved[c] = 1;
          next.col_sign[c] = sd * v > 0.0 ? 1.0 : -1.0;
          next.any_resolved = true;
        }
        const double a = next.resolved[c]
                             ? norm_zero(sd * next.col_sign[c] * v)
                             : 0.0;  // unresolved => v == 0
        adj.emplace_back(a, c);
      }
      std::stable_sort(adj.begin(), adj.end(),
                       [](const auto& a, const auto& b) {
                         return a.first > b.first;
                       });
      std::size_t i = 0;
      while (i < adj.size()) {
        std::size_t j = i;
        next.cells.emplace_back();
        while (j < adj.size() && adj[j].first == adj[i].first) {
          next.cells.back().push_back(adj[j].second);
          ++j;
        }
        i = j;
      }
    }
    return next;
  }

  void emit(const State& st) {
    std::vector<double> out;
    out.reserve(nx * ny);
    for (const auto& [r, s] : st.placed) {
      const double sd = static_cast<double>(s);
      for (const auto& cell : st.cells) {
        for (std::size_t c : cell) {
          const double v = m[r][c];
          out.push_back(st.resolved[c] ? norm_zero(sd * st.col_sign[c] * v)
                                       : 0.0);
        }
      }
    }
    if (!have_best || out > best) {
      best = std::move(out);
      have_best = true;
    }
  }

  void visit(const State& st) {
    if (aborted) return;
    if (++nodes > node_cap) {
      aborted = true;
      return;
    }
    if (st.placed.size() == nx) {
      emit(st);
      return;
    }
    // Candidates: every unplaced row, both signs once any column sign is
    // resolved. Before that, +1 only: the global flip (all row and column
    // signs at once) maps each completion to one with identical rendering,
    // so exploring both halves of that symmetry is pure waste.
    std::vector<std::tuple<std::size_t, int, std::vector<double>>> cands;
    std::vector<double> best_str;
    for (std::size_t r = 0; r < nx; ++r) {
      if ((st.used >> r) & 1u) continue;
      const int lo = st.any_resolved ? -1 : 1;
      for (int s = 1; s >= lo; s -= 2) {
        std::vector<double> str = render(st, r, s);
        if (cands.empty() || str > best_str) {
          best_str = str;
          cands.clear();
          cands.emplace_back(r, s, std::move(str));
        } else if (str == best_str) {
          cands.emplace_back(r, s, std::move(str));
        }
      }
    }
    for (const auto& [r, s, str] : cands) {
      visit(place(st, r, s));
      if (aborted) return;
    }
  }
};

std::string serialize(std::size_t nx, std::size_t ny,
                      const std::vector<double>& vals) {
  std::string out;
  out.reserve(16 + vals.size() * 8);
  const auto push_u64 = [&out](std::uint64_t v) {
    char buf[8];
    std::memcpy(buf, &v, 8);
    out.append(buf, 8);
  };
  push_u64(nx);
  push_u64(ny);
  for (double v : vals) {
    std::uint64_t bits;
    const double nv = norm_zero(v);
    std::memcpy(&bits, &nv, 8);
    push_u64(bits);
  }
  return out;
}

std::string raw_key(const std::vector<std::vector<double>>& m) {
  std::vector<double> flat;
  flat.reserve(m.size() * m.front().size());
  for (const auto& row : m) flat.insert(flat.end(), row.begin(), row.end());
  return serialize(m.size(), m.front().size(), flat);
}

}  // namespace

std::string CanonicalForm::key() const {
  if (!complete) return {};
  return serialize(nx, ny, matrix);
}

CanonicalForm canonical_form(const std::vector<std::vector<double>>& m,
                             const CanonicalOptions& opts) {
  const std::size_t nx = m.size();
  FTL_ASSERT(nx >= 1 && !m.front().empty());
  const std::size_t ny = m.front().size();
  FTL_ASSERT_MSG(nx <= 32, "row bitmask is 32 bits");

  Canonicalizer cz;
  cz.m.assign(nx, std::vector<double>(ny, 0.0));
  for (std::size_t x = 0; x < nx; ++x) {
    FTL_ASSERT_MSG(m[x].size() == ny, "ragged matrix");
    for (std::size_t y = 0; y < ny; ++y) {
      FTL_ASSERT(std::isfinite(m[x][y]));
      cz.m[x][y] = norm_zero(m[x][y]);
    }
  }
  cz.nx = nx;
  cz.ny = ny;
  cz.node_cap = opts.node_cap;

  Canonicalizer::State root;
  root.cells.emplace_back(ny);
  for (std::size_t c = 0; c < ny; ++c) root.cells.back()[c] = c;
  root.col_sign.assign(ny, 1.0);
  root.resolved.assign(ny, 0);
  cz.visit(root);

  CanonicalForm out;
  out.nx = nx;
  out.ny = ny;
  out.nodes = cz.nodes;
  out.complete = !cz.aborted;
  if (out.complete) {
    FTL_ASSERT(cz.have_best);
    out.matrix = std::move(cz.best);
  }
  return out;
}

std::vector<std::vector<double>> relabel_cost_matrix(
    const std::vector<std::vector<double>>& m,
    const std::vector<std::size_t>& row_perm,
    const std::vector<std::size_t>& col_perm,
    const std::vector<int>& row_sign, const std::vector<int>& col_sign) {
  const std::size_t nx = m.size();
  const std::size_t ny = m.front().size();
  FTL_ASSERT(row_perm.size() == nx && row_sign.size() == nx);
  FTL_ASSERT(col_perm.size() == ny && col_sign.size() == ny);
  std::vector<std::vector<double>> out(nx, std::vector<double>(ny, 0.0));
  for (std::size_t x = 0; x < nx; ++x) {
    for (std::size_t y = 0; y < ny; ++y) {
      const double s =
          static_cast<double>(row_sign[x]) * static_cast<double>(col_sign[y]);
      out[x][y] = s * m[row_perm[x]][col_perm[y]];
    }
  }
  return out;
}

XorValueCache::XorValueCache(CanonicalOptions opts) : opts_(opts) {}

std::optional<CachedXorValue> XorValueCache::lookup(
    const std::vector<std::vector<double>>& m) {
  auto& reg = obs::registry();
  reg.counter("games.cache.lookups").inc();
  ++stats_.lookups;

  pending_raw_key_ = raw_key(m);
  pending_canon_key_.clear();
  pending_valid_ = true;

  if (const auto it = raw_.find(pending_raw_key_); it != raw_.end()) {
    reg.counter("games.cache.hits").inc();
    ++stats_.hits_exact;
    return it->second;
  }
  const CanonicalForm cf = canonical_form(m, opts_);
  if (!cf.complete) {
    reg.counter("games.cache.canonical_bailouts").inc();
    ++stats_.canonical_bailouts;
  } else {
    pending_canon_key_ = cf.key();
    if (const auto it = canon_.find(pending_canon_key_); it != canon_.end()) {
      reg.counter("games.cache.hits").inc();
      ++stats_.hits_canonical;
      // Promote to the exact map so byte-identical repeats skip
      // canonicalisation next time.
      raw_.emplace(pending_raw_key_, it->second);
      return it->second;
    }
  }
  reg.counter("games.cache.misses").inc();
  ++stats_.misses;
  return std::nullopt;
}

void XorValueCache::insert(const std::vector<std::vector<double>>& m,
                           const CachedXorValue& v) {
  std::string rk;
  std::string ck;
  if (pending_valid_ && pending_raw_key_ == raw_key(m)) {
    rk = pending_raw_key_;
    ck = pending_canon_key_;
  } else {
    rk = raw_key(m);
    const CanonicalForm cf = canonical_form(m, opts_);
    if (cf.complete) ck = cf.key();
  }
  pending_valid_ = false;
  raw_[rk] = v;
  if (!ck.empty()) canon_[ck] = v;
  obs::registry().counter("games.cache.insertions").inc();
  ++stats_.insertions;
}

}  // namespace ftl::games

// The CHSH game (§2) and the output-flipped variant the load balancers play
// (§4.1: a XOR b = NOT(x AND y), so that two type-C tasks co-locate).
#pragma once

#include "games/game.hpp"
#include "games/strategy.hpp"

namespace ftl::games {

/// Measurement angles; player with input i measures in the real basis
/// cos(theta)|0> + sin(theta)|1> (paper's parameterisation).
struct ChshAngles {
  double alice0;
  double alice1;
  double bob0;
  double bob1;
};

/// The Tsirelson-optimal angles from §2: Alice {0, pi/4}, Bob {pi/8, -pi/8}.
[[nodiscard]] ChshAngles chsh_optimal_angles();

/// CHSH as a TwoPartyGame with uniform inputs. If `flipped`, the win
/// condition is a XOR b = NOT(x AND y) — the load-balancing variant.
[[nodiscard]] TwoPartyGame chsh_game(bool flipped = false);

/// Quantum strategy: Werner state with the given visibility (1.0 = ideal
/// Bell pair) measured at the given angles. If `flip_bob_output`, Bob's
/// outcome labels are swapped, which converts the standard optimal strategy
/// into one for the flipped game.
[[nodiscard]] QuantumStrategy chsh_quantum_strategy(
    const ChshAngles& angles, bool flip_bob_output = false,
    double visibility = 1.0);

/// The measurement basis a single player uses: player 0 (Alice) or 1 (Bob),
/// given its input bit. `flip_output` swaps the outcome labels (used for
/// Bob in the flipped load-balancing game).
[[nodiscard]] qcore::CMat chsh_basis(const ChshAngles& angles, int player,
                                     int input, bool flip_output = false);

/// Same measurement bases, but on an arbitrary (e.g. storage-decohered)
/// two-qubit state.
[[nodiscard]] QuantumStrategy chsh_strategy_with_state(
    qcore::Density state, const ChshAngles& angles,
    bool flip_bob_output = false);

/// Closed-form win probability of the angle strategy on a visibility-v
/// Werner state: per input pair, P(a = b) = (1 + v cos 2(ta - tb)) / 2.
/// Used to validate the simulator.
[[nodiscard]] double chsh_win_probability(const ChshAngles& angles,
                                          bool flipped, double visibility);

/// Best classical win probability (3/4) with witnessing strategies.
[[nodiscard]] ClassicalOptimum chsh_classical_optimum(bool flipped = false);

}  // namespace ftl::games

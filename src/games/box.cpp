#include "games/box.hpp"

#include <cmath>

namespace ftl::games {

CorrelationBox CorrelationBox::from_strategy(const QuantumStrategy& s) {
  FTL_ASSERT(s.num_x() == 2 && s.num_y() == 2);
  CorrelationBox box;
  for (int x = 0; x < 2; ++x) {
    for (int y = 0; y < 2; ++y) {
      for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 2; ++b) {
          box.p_[x][y][a][b] =
              s.joint_probability(static_cast<std::size_t>(x),
                                  static_cast<std::size_t>(y), a, b);
        }
      }
    }
  }
  return box;
}

CorrelationBox CorrelationBox::local_deterministic(int a0, int a1, int b0,
                                                   int b1) {
  CorrelationBox box;
  const int fa[2] = {a0, a1};
  const int fb[2] = {b0, b1};
  for (int x = 0; x < 2; ++x) {
    for (int y = 0; y < 2; ++y) {
      box.p_[x][y][fa[x]][fb[y]] = 1.0;
    }
  }
  return box;
}

CorrelationBox CorrelationBox::uniform() {
  CorrelationBox box;
  for (int x = 0; x < 2; ++x) {
    for (int y = 0; y < 2; ++y) {
      for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 2; ++b) box.p_[x][y][a][b] = 0.25;
      }
    }
  }
  return box;
}

CorrelationBox CorrelationBox::pr_box() {
  CorrelationBox box;
  for (int x = 0; x < 2; ++x) {
    for (int y = 0; y < 2; ++y) {
      const int target = x & y;
      for (int a = 0; a < 2; ++a) {
        box.p_[x][y][a][a ^ target] = 0.5;
      }
    }
  }
  return box;
}

bool CorrelationBox::is_valid(double tol) const {
  for (int x = 0; x < 2; ++x) {
    for (int y = 0; y < 2; ++y) {
      double total = 0.0;
      for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 2; ++b) {
          if (p_[x][y][a][b] < -tol) return false;
          total += p_[x][y][a][b];
        }
      }
      if (std::abs(total - 1.0) > tol) return false;
    }
  }
  return true;
}

double CorrelationBox::no_signaling_violation() const {
  double worst = 0.0;
  for (int x = 0; x < 2; ++x) {
    for (int a = 0; a < 2; ++a) {
      const double m0 = p_[x][0][a][0] + p_[x][0][a][1];
      const double m1 = p_[x][1][a][0] + p_[x][1][a][1];
      worst = std::max(worst, std::abs(m0 - m1));
    }
  }
  for (int y = 0; y < 2; ++y) {
    for (int b = 0; b < 2; ++b) {
      const double m0 = p_[0][y][0][b] + p_[0][y][1][b];
      const double m1 = p_[1][y][0][b] + p_[1][y][1][b];
      worst = std::max(worst, std::abs(m0 - m1));
    }
  }
  return worst;
}

double CorrelationBox::alice_marginal(int x, int a) const {
  return p_[x][0][a][0] + p_[x][0][a][1];
}

double CorrelationBox::correlator(int x, int y) const {
  return p_[x][y][0][0] + p_[x][y][1][1] - p_[x][y][0][1] - p_[x][y][1][0];
}

double CorrelationBox::chsh_value() const {
  return correlator(0, 0) + correlator(0, 1) + correlator(1, 0) -
         correlator(1, 1);
}

bool CorrelationBox::is_local_admissible(double tol) const {
  // Every CHSH variant (minus sign on any of the four correlators, covered
  // by the sx/sy relabelings plus the overall |.|) must be within +-2.
  for (int sx = 0; sx < 2; ++sx) {
    for (int sy = 0; sy < 2; ++sy) {
      double s = 0.0;
      for (int x = 0; x < 2; ++x) {
        for (int y = 0; y < 2; ++y) {
          const double sign = ((x ^ sx) & (y ^ sy)) != 0 ? -1.0 : 1.0;
          s += sign * correlator(x, y);
        }
      }
      if (std::abs(s) > 2.0 + tol) return false;
    }
  }
  return true;
}

bool CorrelationBox::is_quantum_admissible(double tol) const {
  for (int sx = 0; sx < 2; ++sx) {
    for (int sy = 0; sy < 2; ++sy) {
      double s = 0.0;
      for (int x = 0; x < 2; ++x) {
        for (int y = 0; y < 2; ++y) {
          const double sign = ((x ^ sx) & (y ^ sy)) != 0 ? -1.0 : 1.0;
          s += sign * correlator(x, y);
        }
      }
      if (std::abs(s) > 2.0 * std::sqrt(2.0) + tol) return false;
    }
  }
  return true;
}

double CorrelationBox::game_value(const TwoPartyGame& game) const {
  FTL_ASSERT(game.num_x() == 2 && game.num_y() == 2);
  FTL_ASSERT(game.num_a() == 2 && game.num_b() == 2);
  double v = 0.0;
  for (int x = 0; x < 2; ++x) {
    for (int y = 0; y < 2; ++y) {
      for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 2; ++b) {
          if (game.wins(static_cast<std::size_t>(x),
                        static_cast<std::size_t>(y),
                        static_cast<std::size_t>(a),
                        static_cast<std::size_t>(b))) {
            v += game.input_prob(static_cast<std::size_t>(x),
                                 static_cast<std::size_t>(y)) *
                 p_[x][y][a][b];
          }
        }
      }
    }
  }
  return v;
}

CorrelationBox CorrelationBox::mix(const CorrelationBox& other,
                                   double lambda) const {
  FTL_ASSERT(lambda >= 0.0 && lambda <= 1.0);
  CorrelationBox box;
  for (int x = 0; x < 2; ++x) {
    for (int y = 0; y < 2; ++y) {
      for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 2; ++b) {
          box.p_[x][y][a][b] =
              lambda * p_[x][y][a][b] + (1.0 - lambda) * other.p_[x][y][a][b];
        }
      }
    }
  }
  return box;
}

}  // namespace ftl::games

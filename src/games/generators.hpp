// Seeded random generators over games, strategies, and correlation boxes
// for the property-based suites. Each family targets one level of the box
// hierarchy (§2): local boxes, quantum boxes, and — for negative tests —
// deliberately signaling boxes the checkers must reject.
#pragma once

#include <cstddef>

#include "games/box.hpp"
#include "games/strategy.hpp"
#include "games/xor_game.hpp"
#include "util/rng.hpp"

namespace ftl::games {

/// Random XOR game: i.i.d. fair-coin predicate f[x][y] and a Dirichlet(1)
/// (normalised-exponential) input distribution with full support.
[[nodiscard]] XorGame random_xor_game(std::size_t num_x, std::size_t num_y,
                                      util::Rng& rng);

/// Random one-qubit-per-player strategy: Haar state (pure, or a full-rank
/// mixed state when `mixed`), Haar measurement basis per input.
[[nodiscard]] QuantumStrategy random_quantum_strategy(std::size_t num_x,
                                                      std::size_t num_y,
                                                      bool mixed,
                                                      util::Rng& rng);

/// Random *local* box: Dirichlet(1) mixture of the 16 deterministic boxes.
/// Satisfies every classical law (valid, no-signaling, |CHSH| <= 2).
[[nodiscard]] CorrelationBox random_local_box(util::Rng& rng);

/// Random quantum box: Born probabilities of a random strategy. Valid,
/// no-signaling, |CHSH| <= 2*sqrt(2).
[[nodiscard]] CorrelationBox random_quantum_box(util::Rng& rng);

/// Deliberately signaling box: the "a = y" box (Alice's output copies
/// Bob's input — impossible without communication) mixed with uniform
/// noise at weight `strength` in (0, 1]. Its no-signaling violation is
/// exactly `strength`, so checkers can be tested quantitatively.
[[nodiscard]] CorrelationBox signaling_box(double strength);

}  // namespace ftl::games

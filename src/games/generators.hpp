// Seeded random generators over games, strategies, and correlation boxes
// for the property-based suites. Each family targets one level of the box
// hierarchy (§2): local boxes, quantum boxes, and — for negative tests —
// deliberately signaling boxes the checkers must reject.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "games/box.hpp"
#include "games/strategy.hpp"
#include "games/xor_game.hpp"
#include "util/rng.hpp"

namespace ftl::games {

/// Random XOR game: i.i.d. fair-coin predicate f[x][y] and a Dirichlet(1)
/// (normalised-exponential) input distribution with full support.
[[nodiscard]] XorGame random_xor_game(std::size_t num_x, std::size_t num_y,
                                      util::Rng& rng);

/// Ambainis–Iraids ensemble (arXiv:1302.2347): symmetric fair-coin
/// predicate f[x][y] = f[y][x] on n inputs per player, uniform input
/// distribution. Random symmetric XOR games separate the classical and
/// quantum values with probability -> 1, which makes the family the
/// canonical stress ensemble for the value engine; exact per-instance
/// closed forms exist only for structured members (see odd_cycle_game and
/// unfrustrated_bias below — the AI paper's results are asymptotic).
[[nodiscard]] XorGame symmetric_random_xor_game(std::size_t n,
                                                util::Rng& rng);

/// The odd-cycle XOR game (Cleve–Høyer–Toner–Watrous §5.3, the workhorse
/// example of the symmetric-game literature): n odd vertices, inputs
/// uniform over the 2n promise pairs y in {x, x+1 mod n}; equal inputs must
/// agree, adjacent inputs must differ — a 2-colouring game on an odd cycle.
/// Both values are provable closed forms at every size, which makes the
/// family an exact oracle for 3..11-vertex engine runs:
///   classical value = 1 - 1/(2n)   (one cycle edge must fail)
///   quantum value   = cos^2(pi/(4n))
[[nodiscard]] XorGame odd_cycle_game(std::size_t n);

/// Closed-form biases of odd_cycle_game(n): 1 - 1/n and cos(pi/(2n)).
[[nodiscard]] double odd_cycle_classical_bias(std::size_t n);
[[nodiscard]] double odd_cycle_quantum_bias(std::size_t n);

/// Exact closed form for *unfrustrated* cost matrices: if signs s_x, t_y
/// exist with s_x * t_y * m[x][y] >= 0 for every entry (checked exactly by
/// 2-colouring the nonzero-entry bipartite graph), the aligned strategy is
/// optimal and classical = quantum = sum |m[x][y]|. Covers every p = 0
/// affinity graph and, more generally, all frustration-free games. Returns
/// nullopt when the game is frustrated.
[[nodiscard]] std::optional<double> unfrustrated_bias(
    const std::vector<std::vector<double>>& m);

/// Random one-qubit-per-player strategy: Haar state (pure, or a full-rank
/// mixed state when `mixed`), Haar measurement basis per input.
[[nodiscard]] QuantumStrategy random_quantum_strategy(std::size_t num_x,
                                                      std::size_t num_y,
                                                      bool mixed,
                                                      util::Rng& rng);

/// Random *local* box: Dirichlet(1) mixture of the 16 deterministic boxes.
/// Satisfies every classical law (valid, no-signaling, |CHSH| <= 2).
[[nodiscard]] CorrelationBox random_local_box(util::Rng& rng);

/// Random quantum box: Born probabilities of a random strategy. Valid,
/// no-signaling, |CHSH| <= 2*sqrt(2).
[[nodiscard]] CorrelationBox random_quantum_box(util::Rng& rng);

/// Deliberately signaling box: the "a = y" box (Alice's output copies
/// Bob's input — impossible without communication) mixed with uniform
/// noise at weight `strength` in (0, 1]. Its no-signaling violation is
/// exactly `strength`, so checkers can be tested quantitatively.
[[nodiscard]] CorrelationBox signaling_box(double strength);

}  // namespace ftl::games

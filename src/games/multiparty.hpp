// Multiparty XOR games: the Mermin–GHZ parity game family.
//
// §2 and §4.1 note that XOR games extend to more than two players with a
// *larger* quantum advantage. The canonical example is the Mermin game: n
// players receive bits x_1..x_n promised to have even sum; they must output
// bits whose XOR equals (sum x_i / 2) mod 2. Classically the best win
// probability is 1/2 + 2^{-ceil(n/2)}; sharing a GHZ state and measuring
// X (input 0) or Y (input 1) wins with probability 1.
#pragma once

#include <cstddef>
#include <vector>

#include "qcore/state.hpp"
#include "util/rng.hpp"

namespace ftl::games {

class GhzParityGame {
 public:
  explicit GhzParityGame(std::size_t num_parties);

  [[nodiscard]] std::size_t num_parties() const { return n_; }

  /// All valid (even-parity) input bitstrings, uniformly distributed.
  [[nodiscard]] const std::vector<std::vector<int>>& inputs() const {
    return inputs_;
  }

  /// The target parity for an input: (sum x_i / 2) mod 2.
  [[nodiscard]] int target_parity(const std::vector<int>& input) const;

  [[nodiscard]] bool wins(const std::vector<int>& input,
                          const std::vector<int>& output) const;

  /// Exact classical value by exhaustive search over all deterministic
  /// single-party strategies (each party maps its bit to an output bit).
  [[nodiscard]] double classical_value() const;

  /// Exact win probability of the GHZ + X/Y strategy via the Born rule
  /// (should be 1 for every n).
  [[nodiscard]] double quantum_value_exact() const;

  /// Samples the GHZ strategy's outputs for one input.
  [[nodiscard]] std::vector<int> play_quantum(const std::vector<int>& input,
                                              util::Rng& rng) const;

 private:
  std::size_t n_;
  std::vector<std::vector<int>> inputs_;
};

}  // namespace ftl::games

#include "games/npa.hpp"

#include <array>
#include <cmath>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "qcore/eigen.hpp"
#include "qcore/matrix.hpp"
#include "sdp/dense.hpp"
#include "util/assert.hpp"

namespace ftl::games {

namespace {

constexpr std::size_t kDim = 9;      // moment matrix size
constexpr std::size_t kParams = 16;  // free entries after identities

/// Positions (upper triangle) tied to each parameter. Derivation in the
/// header: monomials {1, A0, A1, B0, B1, A0B0, A0B1, A1B0, A1B1}, using
/// A^2 = B^2 = 1, [A_x, B_y] = 0 and Re<X> = Re<X^dagger>.
///   0..3   <A0>, <A1>, <B0>, <B1>
///   4..7   <A0B0>, <A0B1>, <A1B0>, <A1B1>
///   8, 9   Re<A0A1>, Re<B0B1>
///   10,11  Re<A0A1B0>, Re<A0A1B1>
///   12,13  Re<A0B0B1>, Re<A1B0B1>
///   14,15  Re<A0B0A1B1>, Re<A0B1A1B0>
const std::vector<std::vector<std::pair<int, int>>>& parameter_positions() {
  static const std::vector<std::vector<std::pair<int, int>>> kPos = {
      {{0, 1}, {3, 5}, {4, 6}},          // <A0>
      {{0, 2}, {3, 7}, {4, 8}},          // <A1>
      {{0, 3}, {1, 5}, {2, 7}},          // <B0>
      {{0, 4}, {1, 6}, {2, 8}},          // <B1>
      {{0, 5}, {1, 3}},                  // <A0B0>
      {{0, 6}, {1, 4}},                  // <A0B1>
      {{0, 7}, {2, 3}},                  // <A1B0>
      {{0, 8}, {2, 4}},                  // <A1B1>
      {{1, 2}, {5, 7}, {6, 8}},          // Re<A0A1>
      {{3, 4}, {5, 6}, {7, 8}},          // Re<B0B1>
      {{1, 7}, {2, 5}},                  // Re<A0A1B0>
      {{1, 8}, {2, 6}},                  // Re<A0A1B1>
      {{3, 6}, {4, 5}},                  // Re<A0B0B1>
      {{3, 8}, {4, 7}},                  // Re<A1B0B1>
      {{5, 8}},                          // Re<A0B0A1B1>
      {{6, 7}},                          // Re<A0B1A1B0>
  };
  return kPos;
}

/// Gamma(theta) = I + sum_k theta_k P_k with P_k symmetric 0/1 indicators.
qcore::CMat build_gamma(const std::array<double, kParams>& theta) {
  qcore::CMat g = qcore::CMat::identity(kDim);
  const auto& pos = parameter_positions();
  for (std::size_t k = 0; k < kParams; ++k) {
    for (const auto& [i, j] : pos[k]) {
      g.at(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) =
          qcore::Cx{theta[k], 0.0};
      g.at(static_cast<std::size_t>(j), static_cast<std::size_t>(i)) =
          qcore::Cx{theta[k], 0.0};
    }
  }
  return g;
}

struct Objective {
  double constant = 0.0;
  std::array<double, kParams> coeff{};  // only 0..7 can be non-zero
};

/// Win probability = const + sum_k coeff_k * theta_k via
/// P(a,b|x,y) = (1 + (-1)^a E_Ax + (-1)^b E_By + (-1)^{a+b} E_AxBy) / 4.
Objective build_objective(const TwoPartyGame& game) {
  Objective obj;
  for (std::size_t x = 0; x < 2; ++x) {
    for (std::size_t y = 0; y < 2; ++y) {
      const double pxy = game.input_prob(x, y);
      if (pxy == 0.0) continue;
      for (std::size_t a = 0; a < 2; ++a) {
        for (std::size_t b = 0; b < 2; ++b) {
          if (!game.wins(x, y, a, b)) continue;
          const double sa = a == 0 ? 1.0 : -1.0;
          const double sb = b == 0 ? 1.0 : -1.0;
          const double w = pxy / 4.0;
          obj.constant += w;
          obj.coeff[x] += w * sa;            // <Ax>
          obj.coeff[2 + y] += w * sb;        // <By>
          obj.coeff[4 + 2 * x + y] += w * sa * sb;  // <AxBy>
        }
      }
    }
  }
  return obj;
}

/// Inverse of a Hermitian positive-definite matrix via eigendecomposition;
/// also reports the smallest eigenvalue.
qcore::CMat pd_inverse(const qcore::CMat& g, double& min_eig) {
  const qcore::EigResult e = qcore::eigh(g);
  min_eig = e.values.front();
  qcore::CMat d(kDim, kDim);
  for (std::size_t i = 0; i < kDim; ++i) {
    d.at(i, i) = qcore::Cx{1.0 / e.values[i], 0.0};
  }
  return e.vectors * d * e.vectors.adjoint();
}

/// tr(M P_k) for the 0/1 indicator of parameter k (symmetric positions).
double trace_against(const qcore::CMat& m, std::size_t k) {
  double s = 0.0;
  for (const auto& [i, j] : parameter_positions()[k]) {
    s += 2.0 * m.at(static_cast<std::size_t>(i), static_cast<std::size_t>(j))
                   .real();
  }
  return s;
}

}  // namespace

NpaResult npa1_upper_bound(const TwoPartyGame& game, const NpaOptions& opts) {
  FTL_ASSERT_MSG(game.num_x() == 2 && game.num_y() == 2 &&
                     game.num_a() == 2 && game.num_b() == 2,
                 "npa1_upper_bound supports 2-input binary games");
  const Objective obj = build_objective(game);

  const obs::ScopedSpan span("games.npa1_upper_bound", "games");
  obs::registry().counter("games.npa.calls").inc();
  obs::Counter& m_outer = obs::registry().counter("games.npa.outer_iterations");
  obs::Counter& m_newton = obs::registry().counter("games.npa.newton_steps");
  obs::Histogram& m_step_norm = obs::registry().histogram(
      "games.npa.newton_step_norm", 0.0, 10.0, 50);

  std::array<double, kParams> theta{};  // Gamma = I: strictly feasible
  NpaResult out;

  double mu = 1.0;
  while (mu > opts.mu_final) {
    mu *= opts.mu_shrink;
    m_outer.inc();
    // Newton on f(theta) = c . theta + mu * logdet Gamma(theta).
    for (int it = 0; it < opts.newton_steps_per_mu; ++it) {
      m_newton.inc();
      double min_eig = 0.0;
      const qcore::CMat inv = pd_inverse(build_gamma(theta), min_eig);
      FTL_ASSERT_MSG(min_eig > 0.0, "iterate left the PSD cone");

      // Gradient and (negative) Hessian.
      std::vector<double> grad(kParams);
      for (std::size_t k = 0; k < kParams; ++k) {
        grad[k] = obj.coeff[k] + mu * trace_against(inv, k);
      }
      sdp::RMat hess(kParams, kParams);
      double diag_max = 0.0;
      for (std::size_t k = 0; k < kParams; ++k) {
        // inv * P_k, built sparsely from P_k's positions.
        qcore::CMat ipk(kDim, kDim);
        for (const auto& [i, j] : parameter_positions()[k]) {
          for (std::size_t r = 0; r < kDim; ++r) {
            ipk.at(r, static_cast<std::size_t>(j)) +=
                inv.at(r, static_cast<std::size_t>(i));
            ipk.at(r, static_cast<std::size_t>(i)) +=
                inv.at(r, static_cast<std::size_t>(j));
          }
        }
        const qcore::CMat m = ipk * inv;  // inv P_k inv
        for (std::size_t l = 0; l < kParams; ++l) {
          hess.at(k, l) = mu * trace_against(m, l);
        }
        diag_max = std::max(diag_max, hess.at(k, k));
      }
      // Ridge: near the PSD boundary (an optimal Gamma is often singular)
      // the Hessian becomes numerically rank-deficient.
      for (std::size_t k = 0; k < kParams; ++k) {
        hess.at(k, k) += 1e-12 * std::max(diag_max, 1.0);
      }
      std::vector<double> step = sdp::solve_linear(hess, grad);

      // Backtracking line search: stay strictly PD and increase f.
      double norm2 = 0.0;
      for (double s : step) norm2 += s * s;
      m_step_norm.observe(std::sqrt(norm2));
      if (std::sqrt(norm2) < opts.newton_tol) break;
      double t = 1.0;
      bool moved = false;
      for (int bt = 0; bt < 60; ++bt, t *= 0.5) {
        std::array<double, kParams> cand = theta;
        for (std::size_t k = 0; k < kParams; ++k) cand[k] += t * step[k];
        double cand_min = 0.0;
        (void)pd_inverse(build_gamma(cand), cand_min);
        if (cand_min > 1e-14) {
          theta = cand;
          moved = true;
          break;
        }
      }
      if (!moved) break;
    }
  }

  double value = obj.constant;
  for (std::size_t k = 0; k < 8; ++k) value += obj.coeff[k] * theta[k];
  // The barrier keeps the iterate strictly inside; the analytic-centre
  // offset is bounded by mu * dim, which we add to stay a true upper bound.
  out.upper_bound = value + mu * static_cast<double>(kDim);
  out.converged = true;
  return out;
}

}  // namespace ftl::games

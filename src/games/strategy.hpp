// Quantum strategies for two-party binary-output games: one qubit per party,
// a (possibly noisy) shared two-qubit state, and one measurement basis per
// input. This is exactly the hardware model of §3: each server's QNIC holds
// one half of an entangled pair and measures it in an input-dependent basis.
#pragma once

#include <utility>
#include <vector>

#include "games/game.hpp"
#include "qcore/density.hpp"
#include "qcore/matrix.hpp"
#include "util/rng.hpp"

namespace ftl::games {

class QuantumStrategy {
 public:
  /// `alice_bases[x]` / `bob_bases[y]` are 2x2 unitaries whose columns are
  /// the measurement basis for that input. `state` must be two qubits;
  /// qubit 0 is Alice's, qubit 1 Bob's.
  QuantumStrategy(qcore::Density state, std::vector<qcore::CMat> alice_bases,
                  std::vector<qcore::CMat> bob_bases);

  [[nodiscard]] std::size_t num_x() const { return alice_bases_.size(); }
  [[nodiscard]] std::size_t num_y() const { return bob_bases_.size(); }
  [[nodiscard]] const qcore::Density& state() const { return state_; }
  [[nodiscard]] const qcore::CMat& alice_basis(std::size_t x) const {
    return alice_bases_[x];
  }
  [[nodiscard]] const qcore::CMat& bob_basis(std::size_t y) const {
    return bob_bases_[y];
  }

  /// Exact Born probability P(a, b | x, y).
  [[nodiscard]] double joint_probability(std::size_t x, std::size_t y, int a,
                                         int b) const;

  /// Alice's marginal P(a | x, y) — by no-signaling this must not depend on
  /// y; the test suite checks that.
  [[nodiscard]] double alice_marginal(std::size_t x, std::size_t y,
                                      int a) const;
  [[nodiscard]] double bob_marginal(std::size_t x, std::size_t y, int b) const;

  /// Expected win probability against a (binary-output) game.
  [[nodiscard]] double value(const TwoPartyGame& game) const;

  /// Samples one round: both parties measure their halves. Physically the
  /// measurements are spacelike separated; simulating them sequentially
  /// yields the same joint distribution (as the paper notes in §2).
  [[nodiscard]] std::pair<int, int> play(std::size_t x, std::size_t y,
                                         util::Rng& rng) const;

  /// Correlator E(x, y) = P(a = b | x, y) - P(a != b | x, y).
  [[nodiscard]] double correlator(std::size_t x, std::size_t y) const;

 private:
  qcore::Density state_;
  std::vector<qcore::CMat> alice_bases_;
  std::vector<qcore::CMat> bob_bases_;
};

}  // namespace ftl::games

#include "games/chsh.hpp"

#include <cmath>

#include "qcore/gates.hpp"

namespace ftl::games {

ChshAngles chsh_optimal_angles() {
  return ChshAngles{0.0, M_PI / 4.0, M_PI / 8.0, -M_PI / 8.0};
}

TwoPartyGame chsh_game(bool flipped) {
  std::vector<std::vector<std::vector<std::vector<bool>>>> wins(
      2, std::vector<std::vector<std::vector<bool>>>(
             2, std::vector<std::vector<bool>>(2, std::vector<bool>(2))));
  for (std::size_t x = 0; x < 2; ++x) {
    for (std::size_t y = 0; y < 2; ++y) {
      for (std::size_t a = 0; a < 2; ++a) {
        for (std::size_t b = 0; b < 2; ++b) {
          bool target = (x == 1 && y == 1);
          if (flipped) target = !target;
          wins[x][y][a][b] = ((a ^ b) == 1) == target;
        }
      }
    }
  }
  return TwoPartyGame(std::move(wins), TwoPartyGame::uniform_inputs(2, 2));
}

QuantumStrategy chsh_quantum_strategy(const ChshAngles& angles,
                                      bool flip_bob_output,
                                      double visibility) {
  return chsh_strategy_with_state(qcore::Density::werner(visibility), angles,
                                  flip_bob_output);
}

qcore::CMat chsh_basis(const ChshAngles& angles, int player, int input,
                       bool flip_output) {
  FTL_ASSERT((player == 0 || player == 1) && (input == 0 || input == 1));
  const double theta = player == 0 ? (input == 0 ? angles.alice0 : angles.alice1)
                                   : (input == 0 ? angles.bob0 : angles.bob1);
  qcore::CMat b = qcore::gates::real_basis(theta);
  if (!flip_output) return b;
  // Swapping outcome labels = swapping the basis columns.
  qcore::CMat swapped(2, 2);
  swapped.at(0, 0) = b.at(0, 1);
  swapped.at(1, 0) = b.at(1, 1);
  swapped.at(0, 1) = b.at(0, 0);
  swapped.at(1, 1) = b.at(1, 0);
  return swapped;
}

QuantumStrategy chsh_strategy_with_state(qcore::Density state,
                                         const ChshAngles& angles,
                                         bool flip_bob_output) {
  using qcore::CMat;
  std::vector<CMat> alice = {chsh_basis(angles, 0, 0, false),
                             chsh_basis(angles, 0, 1, false)};
  std::vector<CMat> bob = {chsh_basis(angles, 1, 0, flip_bob_output),
                           chsh_basis(angles, 1, 1, flip_bob_output)};
  return QuantumStrategy(std::move(state), std::move(alice), std::move(bob));
}

double chsh_win_probability(const ChshAngles& angles, bool flipped,
                            double visibility) {
  const double a[2] = {angles.alice0, angles.alice1};
  const double b[2] = {angles.bob0, angles.bob1};
  double win = 0.0;
  for (int x = 0; x < 2; ++x) {
    for (int y = 0; y < 2; ++y) {
      const double p_same =
          0.5 * (1.0 + visibility * std::cos(2.0 * (a[x] - b[y])));
      bool want_diff = (x == 1 && y == 1);
      if (flipped) want_diff = !want_diff;
      win += 0.25 * (want_diff ? 1.0 - p_same : p_same);
    }
  }
  return win;
}

ClassicalOptimum chsh_classical_optimum(bool flipped) {
  return classical_value(chsh_game(flipped));
}

}  // namespace ftl::games

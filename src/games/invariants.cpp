#include "games/invariants.hpp"

#include <cmath>
#include <sstream>

namespace ftl::games {

bool is_valid_box(const CorrelationBox& box, double tol) {
  return box.is_valid(tol);
}

bool is_no_signaling(const CorrelationBox& box, double tol) {
  return box.no_signaling_violation() <= tol;
}

std::string box_violation(const CorrelationBox& box, double tol) {
  for (int x = 0; x < 2; ++x) {
    for (int y = 0; y < 2; ++y) {
      double sum = 0.0;
      for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 2; ++b) {
          const double p = box.p(x, y, a, b);
          if (p < -tol) {
            std::ostringstream os;
            os << "negative entry p(" << a << "," << b << "|" << x << ","
               << y << ") = " << p;
            return os.str();
          }
          sum += p;
        }
      }
      if (std::abs(sum - 1.0) > tol) {
        std::ostringstream os;
        os << "distribution at (x=" << x << ",y=" << y << ") sums to "
           << sum;
        return os.str();
      }
    }
  }
  const double sig = box.no_signaling_violation();
  if (sig > tol) {
    std::ostringstream os;
    os << "signaling: marginal shifts by " << sig
       << " with the remote input";
    return os.str();
  }
  return "";
}

std::string box_strategy_mismatch(const CorrelationBox& box,
                                  const QuantumStrategy& s, double tol) {
  std::ostringstream os;
  for (int x = 0; x < 2; ++x) {
    for (int y = 0; y < 2; ++y) {
      for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 2; ++b) {
          const double from_box = box.p(x, y, a, b);
          const double from_strategy = s.joint_probability(
              static_cast<std::size_t>(x), static_cast<std::size_t>(y), a, b);
          if (std::abs(from_box - from_strategy) > tol) {
            os << "P(" << a << "," << b << "|" << x << "," << y
               << "): box " << from_box << " vs strategy " << from_strategy;
            return os.str();
          }
        }
      }
      const double corr_box = box.correlator(x, y);
      const double corr_strat = s.correlator(static_cast<std::size_t>(x),
                                             static_cast<std::size_t>(y));
      if (std::abs(corr_box - corr_strat) > tol) {
        os << "E(" << x << "," << y << "): box " << corr_box
           << " vs strategy " << corr_strat;
        return os.str();
      }
    }
  }
  return "";
}

bool ValueSandwich::consistent(double tol) const {
  if (classical > sdp_value + tol) return false;
  if (seesaw_lower > sdp_value + tol) return false;
  if (has_npa && sdp_value > npa_upper + tol) return false;
  // All values are win probabilities.
  const double values[] = {classical, seesaw_lower, sdp_value, npa_upper};
  for (double v : values) {
    if (v < -tol || v > 1.0 + tol) return false;
  }
  return true;
}

std::string ValueSandwich::describe() const {
  std::ostringstream os;
  os << "classical=" << classical << " seesaw=" << seesaw_lower
     << " sdp=" << sdp_value;
  if (has_npa) os << " npa=" << npa_upper;
  return os.str();
}

ValueSandwich value_sandwich(const XorGame& game,
                             const sdp::GramOptions& sdp_opts,
                             const SeesawOptions& seesaw_opts) {
  ValueSandwich s;
  s.classical = game.classical_value();
  s.sdp_value = (1.0 + game.quantum_bias(sdp_opts).bias) / 2.0;
  const TwoPartyGame g = game.to_two_party_game();
  s.seesaw_lower = seesaw_optimize(g, seesaw_opts).value;
  if (game.num_x() == 2 && game.num_y() == 2) {
    s.npa_upper = npa1_upper_bound(g).upper_bound;
    s.has_npa = true;
  }
  return s;
}

}  // namespace ftl::games

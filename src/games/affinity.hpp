// Affinity graphs: the paper's §4.1 encoding of task-type co-location
// preferences. Vertices are task types; each edge is labelled Colocate
// (tasks should land on the same server) or Exclusive (different servers).
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace ftl::games {

enum class Affinity : std::uint8_t { kColocate = 0, kExclusive = 1 };

class AffinityGraph {
 public:
  /// All edges (including self-loops) initialised to Colocate.
  explicit AffinityGraph(std::size_t num_types);

  /// Random graph: every unordered pair of *distinct* vertices is Exclusive
  /// independently with probability p_exclusive (Fig. 3's generator).
  /// Self-loops stay Colocate: two tasks of the same type share caches.
  [[nodiscard]] static AffinityGraph random(std::size_t num_types,
                                            double p_exclusive,
                                            util::Rng& rng);

  [[nodiscard]] std::size_t num_types() const { return n_; }

  [[nodiscard]] Affinity at(std::size_t u, std::size_t v) const;
  /// Sets the label of {u, v} (kept symmetric).
  void set(std::size_t u, std::size_t v, Affinity a);

  /// Number of Exclusive edges among distinct-vertex pairs.
  [[nodiscard]] std::size_t num_exclusive_edges() const;

 private:
  std::size_t n_;
  std::vector<Affinity> label_;  // row-major n x n, symmetric
};

}  // namespace ftl::games

#include "games/xor_game.hpp"

#include <cmath>

namespace ftl::games {

XorGame::XorGame(std::vector<std::vector<int>> f,
                 std::vector<std::vector<double>> input_dist)
    : f_(std::move(f)), pi_(std::move(input_dist)) {
  FTL_ASSERT(!f_.empty() && !f_.front().empty());
  FTL_ASSERT(pi_.size() == f_.size());
  double total = 0.0;
  for (std::size_t x = 0; x < f_.size(); ++x) {
    FTL_ASSERT(f_[x].size() == f_.front().size());
    FTL_ASSERT(pi_[x].size() == f_[x].size());
    for (std::size_t y = 0; y < f_[x].size(); ++y) {
      FTL_ASSERT(f_[x][y] == 0 || f_[x][y] == 1);
      FTL_ASSERT(pi_[x][y] >= 0.0);
      total += pi_[x][y];
    }
  }
  FTL_ASSERT_MSG(std::abs(total - 1.0) < 1e-9,
                 "input distribution must sum to 1");
  FTL_ASSERT_MSG(f_.size() <= 24, "classical search is 2^num_x");
}

XorGame XorGame::from_affinity(const AffinityGraph& g, bool include_diagonal) {
  const std::size_t n = g.num_types();
  std::vector<std::vector<int>> f(n, std::vector<int>(n, 0));
  std::vector<std::vector<double>> pi(n, std::vector<double>(n, 0.0));
  const double w =
      include_diagonal
          ? 1.0 / static_cast<double>(n * n)
          : 1.0 / static_cast<double>(n * (n - 1));
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = 0; v < n; ++v) {
      f[u][v] = g.at(u, v) == Affinity::kExclusive ? 1 : 0;
      if (u != v || include_diagonal) pi[u][v] = w;
    }
  }
  return XorGame(std::move(f), std::move(pi));
}

XorGame XorGame::chsh(bool flipped) {
  std::vector<std::vector<int>> f(2, std::vector<int>(2, flipped ? 1 : 0));
  f[1][1] = flipped ? 0 : 1;
  return XorGame(std::move(f), TwoPartyGame::uniform_inputs(2, 2));
}

std::vector<std::vector<double>> XorGame::cost_matrix() const {
  std::vector<std::vector<double>> m(num_x(), std::vector<double>(num_y()));
  for (std::size_t x = 0; x < num_x(); ++x) {
    for (std::size_t y = 0; y < num_y(); ++y) {
      m[x][y] = pi_[x][y] * (f_[x][y] == 0 ? 1.0 : -1.0);
    }
  }
  return m;
}

double XorGame::classical_bias() const { return classical_strategy().bias; }

XorGame::ClassicalStrategy XorGame::classical_strategy() const {
  const auto m = cost_matrix();
  const std::size_t nx = num_x();
  const std::size_t ny = num_y();
  ClassicalStrategy best;
  best.bias = -1e300;
  // For each +-1 assignment to Alice, Bob's optimal reply at y is
  // sign(sum_x M_xy a_x), contributing |sum_x M_xy a_x|.
  for (std::size_t bits = 0; bits < (std::size_t{1} << nx); ++bits) {
    double bias = 0.0;
    std::vector<int> bob(ny, 0);
    for (std::size_t y = 0; y < ny; ++y) {
      double col = 0.0;
      for (std::size_t x = 0; x < nx; ++x) {
        const double ax = ((bits >> x) & 1) != 0 ? -1.0 : 1.0;
        col += m[x][y] * ax;
      }
      bob[y] = col < 0.0 ? 1 : 0;  // sign -1 encodes output bit 1
      bias += std::abs(col);
    }
    if (bias > best.bias) {
      best.bias = bias;
      best.bob = std::move(bob);
      best.alice.assign(nx, 0);
      for (std::size_t x = 0; x < nx; ++x) {
        best.alice[x] = static_cast<int>((bits >> x) & 1);
      }
    }
  }
  return best;
}

sdp::XorBiasResult XorGame::quantum_bias(const sdp::GramOptions& opts) const {
  return sdp::xor_quantum_bias(cost_matrix(), opts);
}

bool XorGame::has_quantum_advantage(double tol,
                                    const sdp::GramOptions& opts) const {
  return quantum_bias(opts).bias > classical_bias() + tol;
}

TwoPartyGame XorGame::to_two_party_game() const {
  std::vector<std::vector<std::vector<std::vector<bool>>>> wins(
      num_x(),
      std::vector<std::vector<std::vector<bool>>>(
          num_y(),
          std::vector<std::vector<bool>>(2, std::vector<bool>(2, false))));
  for (std::size_t x = 0; x < num_x(); ++x) {
    for (std::size_t y = 0; y < num_y(); ++y) {
      for (std::size_t a = 0; a < 2; ++a) {
        for (std::size_t b = 0; b < 2; ++b) {
          wins[x][y][a][b] = static_cast<int>(a ^ b) == f_[x][y];
        }
      }
    }
  }
  return TwoPartyGame(std::move(wins), pi_);
}

}  // namespace ftl::games

// Branch-and-bound classical XOR-game values.
//
// The exhaustive classical search in XorGame::classical_strategy() costs
// 2^{num_x} * num_x * num_y — the reason the Fig-3 sweep stopped at ~5
// affinity-graph vertices (ROADMAP item 2). This module replaces it with a
// depth-first search over Alice's +-1 sign assignments that prunes with a
// *relaxation* upper bound: for a partial assignment, each of Bob's columns
// is bounded by |partial column sum| + sum of |M_xy| over the unassigned
// rows. That bound lets the unassigned Alice signs depend on Bob's input y
// — a signaling strategy, hence an upper bound on every no-signaling
// (classical) completion of the branch.
//
// Exactness contract (enforced bit-for-bit by tests/bnb_test.cpp): the value
// returned is IDENTICAL — not merely close — to XorGame::classical_bias().
// Three design rules make that possible:
//   1. every surviving leaf re-evaluates its bias with the same
//      floating-point operation order the exhaustive loop uses (columns
//      accumulated over x ascending, |columns| summed over y ascending);
//   2. pruning subtracts a safety margin (kBoundSafety) that dominates the
//      worst-case rounding error of the incrementally maintained bound, so
//      a subtree is only discarded when no completion can reach the optimum
//      even after FP noise;
//   3. the global sign symmetry a -> -a, b -> -b is quotiented out by
//      pinning the first branched sign: the mirrored leaf's bias is
//      bit-identical (IEEE negation is exact and addition commutes with
//      negation), so the max over half the tree equals the max over all of
//      it.
#pragma once

#include <cstdint>
#include <vector>

#include "games/xor_game.hpp"

namespace ftl::games {

struct BnbOptions {
  /// Extra slack subtracted from the relaxation bound before pruning.
  /// Cost matrices here have total mass sum |M_xy| = 1, so accumulated
  /// rounding error is ~1e-14; 1e-9 is overwhelmingly safe and costs only
  /// a handful of extra nodes.
  double bound_safety = 1e-9;
};

struct BnbResult {
  /// Optimal classical bias; bit-identical to XorGame::classical_bias().
  double bias = 0.0;
  /// A deterministic witness attaining `bias` (same encoding as
  /// XorGame::ClassicalStrategy: bit 0 is sign +1).
  std::vector<int> alice;
  std::vector<int> bob;
  /// Search statistics: `nodes` counts every visited search node (root,
  /// internal, leaf), `leaves` the fully assigned strategies evaluated,
  /// `pruned` the subtrees cut by the relaxation bound. Exhaustive search
  /// would evaluate 2^{num_x} leaves; the sign quotient alone halves that,
  /// pruning does the rest.
  std::uint64_t nodes = 0;
  std::uint64_t leaves = 0;
  std::uint64_t pruned = 0;
  /// 2^{num_x}: the leaf count of the search the exhaustive path runs.
  /// Exposed so callers (and obs counters) can report the measured
  /// node-visit speedup without recomputing it.
  std::uint64_t exhaustive_leaves = 0;
};

/// Exact classical bias of the XOR game with cost matrix
/// m[x][y] = pi(x,y) * (-1)^{f(x,y)}, by branch and bound. Bit-identical to
/// the exhaustive search. Also increments the games.bnb.* obs counters.
[[nodiscard]] BnbResult classical_value_bnb(
    const std::vector<std::vector<double>>& m, const BnbOptions& opts = {});

/// Convenience overload evaluating `game.cost_matrix()`.
[[nodiscard]] BnbResult classical_value_bnb(const XorGame& game,
                                            const BnbOptions& opts = {});

}  // namespace ftl::games

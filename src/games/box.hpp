// Correlation boxes ("behaviours"): joint conditional distributions
// P(a, b | x, y) for binary inputs and outputs, independent of any
// particular physical realisation.
//
// This is the vocabulary of §2's key claim: entanglement produces
// correlations "stronger than what any classical system can achieve without
// communication, while still respecting causality". The box hierarchy makes
// it precise: local (classical) boxes satisfy |CHSH| <= 2, quantum boxes
// reach 2*sqrt(2) (Tsirelson), and no-signaling alone allows the PR box's
// 4. The library uses boxes to verify its sources and to show each level.
#pragma once

#include "games/game.hpp"
#include "games/strategy.hpp"

namespace ftl::games {

class CorrelationBox {
 public:
  /// Zero-initialised; fill with set() then validate.
  CorrelationBox() = default;

  /// The box realised by a quantum strategy (exact Born probabilities).
  [[nodiscard]] static CorrelationBox from_strategy(const QuantumStrategy& s);

  /// Local deterministic box: a = fa(x), b = fb(y).
  [[nodiscard]] static CorrelationBox local_deterministic(int a0, int a1,
                                                          int b0, int b1);

  /// Uniformly random outputs.
  [[nodiscard]] static CorrelationBox uniform();

  /// The Popescu–Rohrlich box: a XOR b = x AND y with certainty, uniform
  /// marginals. Maximally no-signaling-nonlocal; NOT quantum-realisable.
  [[nodiscard]] static CorrelationBox pr_box();

  [[nodiscard]] double p(int x, int y, int a, int b) const {
    return p_[x][y][a][b];
  }
  void set(int x, int y, int a, int b, double v) { p_[x][y][a][b] = v; }

  /// Non-negative entries, each conditional distribution sums to 1.
  [[nodiscard]] bool is_valid(double tol = 1e-9) const;

  /// Largest dependence of one side's marginal on the other side's input;
  /// 0 (within tol) iff the box is no-signaling.
  [[nodiscard]] double no_signaling_violation() const;

  /// Marginal P(a | x) computed with y = 0 (callers should have checked
  /// no-signaling).
  [[nodiscard]] double alice_marginal(int x, int a) const;

  /// Correlator E(x, y) = P(a = b) - P(a != b).
  [[nodiscard]] double correlator(int x, int y) const;

  /// CHSH combination S = E(0,0) + E(0,1) + E(1,0) - E(1,1).
  [[nodiscard]] double chsh_value() const;

  /// |S| <= 2: realisable with shared randomness alone.
  [[nodiscard]] bool is_local_admissible(double tol = 1e-9) const;

  /// |S| <= 2*sqrt(2): necessary for quantum realisability (Tsirelson).
  [[nodiscard]] bool is_quantum_admissible(double tol = 1e-9) const;

  /// Expected win probability against a binary-output game.
  [[nodiscard]] double game_value(const TwoPartyGame& game) const;

  /// Convex mixture: lambda * this + (1 - lambda) * other.
  [[nodiscard]] CorrelationBox mix(const CorrelationBox& other,
                                   double lambda) const;

 private:
  double p_[2][2][2][2] = {};
};

}  // namespace ftl::games

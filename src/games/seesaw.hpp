// See-saw optimisation of quantum strategies for arbitrary two-party games.
//
// §4.1 ("General games") cites Liang & Doherty's algorithms [39] for
// bounding quantum values of arbitrary finite games. The standard lower-
// bound technique is the *see-saw*: fix the shared state and one player's
// measurements, then the other player's optimal measurement for each input
// is a projector onto the positive eigenspace of an effective operator —
// an eigenproblem we solve with qcore::eigh. Alternating sides yields a
// monotonically improving, physically realisable strategy. (Upper bounds
// need the NPA/SDP hierarchy; for XOR games our sdp module is already
// exact, which the tests use to validate this solver.)
//
// Scope: two players, one qubit each (the paper's hardware model), binary
// outcomes, arbitrary win predicate and input distribution.
#pragma once

#include <cstdint>

#include "games/game.hpp"
#include "games/strategy.hpp"

namespace ftl::games {

struct SeesawOptions {
  int max_rounds = 60;
  /// Stop when a full round improves the value by less than this.
  double tol = 1e-10;
  /// Independent random restarts (see-saw only guarantees local optima).
  int restarts = 6;
  std::uint64_t seed = 2024;
  /// If true, also optimise the shared two-qubit state (the dominant
  /// eigenvector of the averaged win operator); otherwise keep the Bell
  /// pair fixed.
  bool optimize_state = true;
  /// Optional warm start (non-owning; must outlive the call): restart 0
  /// begins from this strategy's state and measurement effects instead of
  /// random ones when its input counts match the game. Sweeps over nearly
  /// identical games (Fig-3) converge in far fewer rounds this way
  /// (counted by games.seesaw.warm_starts / games.seesaw.rounds).
  const QuantumStrategy* warm_start = nullptr;
};

struct SeesawResult {
  /// Best win probability found, evaluated on the optimised *projective
  /// effects* (which may be rank 0 or 2, i.e. deterministic outputs —
  /// perfectly physical POVMs). A true lower bound on the quantum value.
  double value = 0.0;
  /// The same measurements packaged as basis-measurement strategy. When an
  /// optimal effect is deterministic the basis frame cannot express it
  /// (both columns are measured, outputs follow the outcome), so
  /// strategy_value can fall below `value`; for non-degenerate optima
  /// (CHSH etc.) the two agree to machine precision.
  QuantumStrategy strategy;
  double strategy_value = 0.0;
  int rounds_used = 0;
  bool converged = false;
};

/// Best quantum strategy found for `game` (binary outcomes, one qubit per
/// player). `value` is a lower bound on the quantum value and is exact for
/// CHSH-like games (validated against Tsirelson and NPA in tests).
[[nodiscard]] SeesawResult seesaw_optimize(const TwoPartyGame& game,
                                           const SeesawOptions& opts = {});

}  // namespace ftl::games

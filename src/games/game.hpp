// General finite two-party non-local games.
//
// A game is: finite input sets X, Y; finite output sets A, B; a distribution
// pi over input pairs; and a win predicate V(x, y, a, b). A referee draws
// (x, y) ~ pi, hands x to Alice and y to Bob, who answer a and b without
// communicating. This mirrors §2 of the paper.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/assert.hpp"

namespace ftl::games {

class TwoPartyGame {
 public:
  /// `wins[x][y][a][b]` is the win predicate; `input_dist[x][y]` must sum
  /// to 1.
  TwoPartyGame(std::vector<std::vector<std::vector<std::vector<bool>>>> wins,
               std::vector<std::vector<double>> input_dist);

  /// Uniform input distribution over all (x, y) pairs.
  [[nodiscard]] static std::vector<std::vector<double>> uniform_inputs(
      std::size_t nx, std::size_t ny);

  [[nodiscard]] std::size_t num_x() const { return wins_.size(); }
  [[nodiscard]] std::size_t num_y() const { return wins_.front().size(); }
  [[nodiscard]] std::size_t num_a() const {
    return wins_.front().front().size();
  }
  [[nodiscard]] std::size_t num_b() const {
    return wins_.front().front().front().size();
  }

  [[nodiscard]] bool wins(std::size_t x, std::size_t y, std::size_t a,
                          std::size_t b) const {
    return wins_[x][y][a][b];
  }
  [[nodiscard]] double input_prob(std::size_t x, std::size_t y) const {
    return input_dist_[x][y];
  }

  /// Expected win probability of a pair of deterministic strategies
  /// a = fa(x), b = fb(y).
  [[nodiscard]] double deterministic_value(
      const std::vector<std::size_t>& fa,
      const std::vector<std::size_t>& fb) const;

  /// Expected win probability of an arbitrary conditional distribution
  /// p(a, b | x, y), given as p[x][y][a][b].
  [[nodiscard]] double strategy_value(
      const std::vector<std::vector<std::vector<std::vector<double>>>>& p)
      const;

 private:
  std::vector<std::vector<std::vector<std::vector<bool>>>> wins_;
  std::vector<std::vector<double>> input_dist_;
};

struct ClassicalOptimum {
  double value = 0.0;
  std::vector<std::size_t> alice;  ///< fa: x -> a
  std::vector<std::size_t> bob;    ///< fb: y -> b
};

/// Exact classical value by exhaustive search over deterministic strategies.
/// Shared randomness cannot beat this: the value is linear in the strategy
/// mixture, so some deterministic pair attains the maximum.
/// Cost is |A|^|X| * |B|^|Y| evaluations — fine for the few-input games here.
[[nodiscard]] ClassicalOptimum classical_value(const TwoPartyGame& game);

}  // namespace ftl::games

#include "games/seesaw.hpp"

#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "qcore/eigen.hpp"
#include "util/rng.hpp"

namespace ftl::games {

namespace {

using qcore::CMat;
using qcore::Cx;

/// Tr_B[(I (x) B) rho] — Alice's effective 2x2 operator for Bob effect B.
CMat traceout_bob(const CMat& rho, const CMat& b) {
  const CMat x = CMat::identity(2).kron(b) * rho;
  CMat r(2, 2);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      r.at(i, j) = x.at(i * 2 + 0, j * 2 + 0) + x.at(i * 2 + 1, j * 2 + 1);
    }
  }
  return r;
}

/// Tr_A[(A (x) I) rho] — Bob's effective 2x2 operator for Alice effect A.
CMat traceout_alice(const CMat& rho, const CMat& a) {
  const CMat x = a.kron(CMat::identity(2)) * rho;
  CMat r(2, 2);
  for (std::size_t k = 0; k < 2; ++k) {
    for (std::size_t l = 0; l < 2; ++l) {
      r.at(k, l) = x.at(0 * 2 + k, 0 * 2 + l) + x.at(1 * 2 + k, 1 * 2 + l);
    }
  }
  return r;
}

/// Projector onto the positive eigenspace of a Hermitian 2x2 operator.
CMat positive_eigenspace_projector(const CMat& d) {
  const qcore::EigResult e = qcore::eigh(d);
  CMat p(2, 2);
  for (std::size_t k = 0; k < 2; ++k) {
    if (e.values[k] <= 0.0) continue;
    const std::vector<Cx> col{e.vectors.at(0, k), e.vectors.at(1, k)};
    p += CMat::outer(col, col);
  }
  return p;
}

/// Measurement basis whose column 0 is the dominant eigenvector of d
/// (outcome 0 favoured where d is most positive). Always a valid unitary
/// frame even when the projector itself is rank 0 or 2.
CMat basis_from_operator(const CMat& d) {
  const qcore::EigResult e = qcore::eigh(d);  // ascending eigenvalues
  CMat b(2, 2);
  // Column 0 <- largest eigenvalue's vector, column 1 <- smallest's.
  b.at(0, 0) = e.vectors.at(0, 1);
  b.at(1, 0) = e.vectors.at(1, 1);
  b.at(0, 1) = e.vectors.at(0, 0);
  b.at(1, 1) = e.vectors.at(1, 0);
  return b;
}

struct Effects {
  CMat outcome0;  // effect for outcome 0; outcome 1 is I - outcome0
};

/// Projector-form value of the strategy (state, Alice effects, Bob effects).
double projector_value(const TwoPartyGame& game, const CMat& rho,
                       const std::vector<Effects>& alice,
                       const std::vector<Effects>& bob) {
  double v = 0.0;
  const CMat id = CMat::identity(2);
  for (std::size_t x = 0; x < game.num_x(); ++x) {
    const CMat a_eff[2] = {alice[x].outcome0, id - alice[x].outcome0};
    for (std::size_t y = 0; y < game.num_y(); ++y) {
      const double pxy = game.input_prob(x, y);
      if (pxy == 0.0) continue;
      const CMat b_eff[2] = {bob[y].outcome0, id - bob[y].outcome0};
      for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 2; ++b) {
          if (!game.wins(x, y, static_cast<std::size_t>(a),
                         static_cast<std::size_t>(b)))
            continue;
          v += pxy * (a_eff[a].kron(b_eff[b]) * rho).trace().real();
        }
      }
    }
  }
  return v;
}

std::vector<Cx> random_state(util::Rng& rng) {
  std::vector<Cx> psi(4);
  for (Cx& c : psi) c = Cx{rng.normal(), rng.normal()};
  qcore::normalize(psi);
  return psi;
}

}  // namespace

SeesawResult seesaw_optimize(const TwoPartyGame& game,
                             const SeesawOptions& opts) {
  FTL_ASSERT_MSG(game.num_a() == 2 && game.num_b() == 2,
                 "see-saw here supports binary outcomes");
  const std::size_t nx = game.num_x();
  const std::size_t ny = game.num_y();
  util::Rng rng(opts.seed);
  const CMat id = CMat::identity(2);

  const obs::ScopedSpan span("games.seesaw_optimize", "games");
  obs::registry().counter("games.seesaw.calls").inc();
  obs::Counter& m_restarts = obs::registry().counter("games.seesaw.restarts");
  obs::Counter& m_rounds = obs::registry().counter("games.seesaw.rounds");
  // Per-round improvement when the loop settles — how tight convergence is.
  obs::Histogram& m_residual = obs::registry().histogram(
      "games.seesaw.final_residual", 0.0, 1e-9, 50);
  obs::Histogram& m_restart_us = obs::registry().histogram(
      "games.seesaw.restart_us", 0.0, 100000.0, 50);

  double best_value = -1.0;
  CMat best_rho;
  std::vector<Effects> best_alice;
  std::vector<Effects> best_bob;
  int best_rounds = 0;
  bool best_converged = false;

  const bool have_warm = opts.warm_start != nullptr &&
                         opts.warm_start->num_x() == nx &&
                         opts.warm_start->num_y() == ny;
  if (have_warm) obs::registry().counter("games.seesaw.warm_starts").inc();

  for (int restart = 0; restart < opts.restarts; ++restart) {
    m_restarts.inc();
    const obs::ScopedHistogramTimer restart_timer(m_restart_us);
    CMat rho;
    std::vector<Effects> alice(nx);
    std::vector<Effects> bob(ny);
    if (restart == 0 && have_warm) {
      // Resume from the warm strategy: its state, and rank-1 effects from
      // each measurement basis's outcome-0 column.
      rho = opts.warm_start->state().matrix();
      for (std::size_t x = 0; x < nx; ++x) {
        const CMat& b = opts.warm_start->alice_basis(x);
        const std::vector<Cx> col{b.at(0, 0), b.at(1, 0)};
        alice[x].outcome0 = CMat::outer(col, col);
      }
      for (std::size_t y = 0; y < ny; ++y) {
        const CMat& b = opts.warm_start->bob_basis(y);
        const std::vector<Cx> col{b.at(0, 0), b.at(1, 0)};
        bob[y].outcome0 = CMat::outer(col, col);
      }
    } else {
      // Random initial pure state and random rank-1 effects.
      std::vector<Cx> psi = random_state(rng);
      rho = CMat::outer(psi, psi);
      for (auto& e : alice) {
        const std::vector<Cx> v = random_state(rng);
        const std::vector<Cx> q{v[0], v[1]};
        std::vector<Cx> qn = q;
        qcore::normalize(qn);
        e.outcome0 = CMat::outer(qn, qn);
      }
      for (auto& e : bob) {
        const std::vector<Cx> v = random_state(rng);
        const std::vector<Cx> q{v[2], v[3]};
        std::vector<Cx> qn = q;
        qcore::normalize(qn);
        e.outcome0 = CMat::outer(qn, qn);
      }
    }

    double prev = projector_value(game, rho, alice, bob);
    int round = 0;
    bool converged = false;
    for (; round < opts.max_rounds; ++round) {
      // --- Alice step: for each x, A_x <- proj onto positive part of
      // D_x = G_x^0 - G_x^1 where G_x^a aggregates Bob and the state.
      for (std::size_t x = 0; x < nx; ++x) {
        CMat g0(2, 2);
        CMat g1(2, 2);
        for (std::size_t y = 0; y < ny; ++y) {
          const double pxy = game.input_prob(x, y);
          if (pxy == 0.0) continue;
          const CMat b_eff[2] = {bob[y].outcome0, id - bob[y].outcome0};
          for (int b = 0; b < 2; ++b) {
            const CMat r = traceout_bob(rho, b_eff[b]);
            if (game.wins(x, y, 0, static_cast<std::size_t>(b))) {
              g0 += r * Cx{pxy, 0.0};
            }
            if (game.wins(x, y, 1, static_cast<std::size_t>(b))) {
              g1 += r * Cx{pxy, 0.0};
            }
          }
        }
        alice[x].outcome0 = positive_eigenspace_projector(g0 - g1);
      }

      // --- Bob step, symmetric.
      for (std::size_t y = 0; y < ny; ++y) {
        CMat g0(2, 2);
        CMat g1(2, 2);
        for (std::size_t x = 0; x < nx; ++x) {
          const double pxy = game.input_prob(x, y);
          if (pxy == 0.0) continue;
          const CMat a_eff[2] = {alice[x].outcome0, id - alice[x].outcome0};
          for (int a = 0; a < 2; ++a) {
            const CMat l = traceout_alice(rho, a_eff[a]);
            if (game.wins(x, y, static_cast<std::size_t>(a), 0)) {
              g0 += l * Cx{pxy, 0.0};
            }
            if (game.wins(x, y, static_cast<std::size_t>(a), 1)) {
              g1 += l * Cx{pxy, 0.0};
            }
          }
        }
        bob[y].outcome0 = positive_eigenspace_projector(g0 - g1);
      }

      // --- State step: top eigenvector of the averaged win operator.
      if (opts.optimize_state) {
        CMat m(4, 4);
        for (std::size_t x = 0; x < nx; ++x) {
          const CMat a_eff[2] = {alice[x].outcome0, id - alice[x].outcome0};
          for (std::size_t y = 0; y < ny; ++y) {
            const double pxy = game.input_prob(x, y);
            if (pxy == 0.0) continue;
            const CMat b_eff[2] = {bob[y].outcome0, id - bob[y].outcome0};
            for (int a = 0; a < 2; ++a) {
              for (int b = 0; b < 2; ++b) {
                if (game.wins(x, y, static_cast<std::size_t>(a),
                              static_cast<std::size_t>(b))) {
                  m += a_eff[a].kron(b_eff[b]) * Cx{pxy, 0.0};
                }
              }
            }
          }
        }
        const qcore::EigResult e = qcore::eigh(m);
        std::vector<Cx> top(4);
        for (std::size_t i = 0; i < 4; ++i) top[i] = e.vectors.at(i, 3);
        rho = CMat::outer(top, top);
      }

      m_rounds.inc();
      const double cur = projector_value(game, rho, alice, bob);
      if (cur - prev < opts.tol) {
        m_residual.observe(cur - prev);
        prev = cur;
        converged = true;
        break;
      }
      prev = cur;
    }

    if (prev > best_value) {
      best_value = prev;
      best_rho = rho;
      best_alice = alice;
      best_bob = bob;
      best_rounds = round + 1;
      best_converged = converged;
    }
  }

  // Package as a QuantumStrategy: measurement bases from the effects'
  // eigenframes. For degenerate (rank-0/2) projectors the basis frame
  // cannot express a deterministic POVM, so strategy_value may fall below
  // the projector optimum `value`; both are reported.
  std::vector<CMat> alice_bases;
  std::vector<CMat> bob_bases;
  alice_bases.reserve(nx);
  bob_bases.reserve(ny);
  const CMat half = CMat::identity(2) * Cx{0.5, 0.0};
  for (const auto& e : best_alice) {
    alice_bases.push_back(basis_from_operator(e.outcome0 - half));
  }
  for (const auto& e : best_bob) {
    bob_bases.push_back(basis_from_operator(e.outcome0 - half));
  }
  // best_rho came out of an eigensolver; round tiny asymmetries away.
  CMat sym = (best_rho + best_rho.adjoint()) * Cx{0.5, 0.0};
  sym *= Cx{1.0 / sym.trace().real(), 0.0};

  SeesawResult out{
      best_value,
      QuantumStrategy(qcore::Density::from_matrix(sym),
                      std::move(alice_bases), std::move(bob_bases)),
      0.0, best_rounds, best_converged};
  out.strategy_value = out.strategy.value(game);
  return out;
}

}  // namespace ftl::games

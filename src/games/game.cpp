#include "games/game.hpp"

#include <cmath>

namespace ftl::games {

TwoPartyGame::TwoPartyGame(
    std::vector<std::vector<std::vector<std::vector<bool>>>> wins,
    std::vector<std::vector<double>> input_dist)
    : wins_(std::move(wins)), input_dist_(std::move(input_dist)) {
  FTL_ASSERT(!wins_.empty() && !wins_.front().empty());
  FTL_ASSERT(!wins_.front().front().empty());
  FTL_ASSERT(!wins_.front().front().front().empty());
  FTL_ASSERT(input_dist_.size() == wins_.size());
  double total = 0.0;
  for (std::size_t x = 0; x < wins_.size(); ++x) {
    FTL_ASSERT(input_dist_[x].size() == wins_[x].size());
    for (std::size_t y = 0; y < wins_[x].size(); ++y) {
      FTL_ASSERT(input_dist_[x][y] >= 0.0);
      total += input_dist_[x][y];
    }
  }
  FTL_ASSERT_MSG(std::abs(total - 1.0) < 1e-9,
                 "input distribution must sum to 1");
}

std::vector<std::vector<double>> TwoPartyGame::uniform_inputs(std::size_t nx,
                                                              std::size_t ny) {
  const double p = 1.0 / static_cast<double>(nx * ny);
  return std::vector<std::vector<double>>(nx, std::vector<double>(ny, p));
}

double TwoPartyGame::deterministic_value(
    const std::vector<std::size_t>& fa,
    const std::vector<std::size_t>& fb) const {
  FTL_ASSERT(fa.size() == num_x() && fb.size() == num_y());
  double v = 0.0;
  for (std::size_t x = 0; x < num_x(); ++x) {
    for (std::size_t y = 0; y < num_y(); ++y) {
      if (wins_[x][y][fa[x]][fb[y]]) v += input_dist_[x][y];
    }
  }
  return v;
}

double TwoPartyGame::strategy_value(
    const std::vector<std::vector<std::vector<std::vector<double>>>>& p)
    const {
  double v = 0.0;
  for (std::size_t x = 0; x < num_x(); ++x) {
    for (std::size_t y = 0; y < num_y(); ++y) {
      if (input_dist_[x][y] == 0.0) continue;
      double win_given_xy = 0.0;
      for (std::size_t a = 0; a < num_a(); ++a) {
        for (std::size_t b = 0; b < num_b(); ++b) {
          if (wins_[x][y][a][b]) win_given_xy += p[x][y][a][b];
        }
      }
      v += input_dist_[x][y] * win_given_xy;
    }
  }
  return v;
}

ClassicalOptimum classical_value(const TwoPartyGame& game) {
  const std::size_t nx = game.num_x();
  const std::size_t ny = game.num_y();
  const std::size_t na = game.num_a();
  const std::size_t nb = game.num_b();

  // Enumerate deterministic strategies as mixed-radix counters.
  auto next = [](std::vector<std::size_t>& f, std::size_t radix) {
    for (std::size_t i = 0; i < f.size(); ++i) {
      if (++f[i] < radix) return true;
      f[i] = 0;
    }
    return false;
  };

  ClassicalOptimum best;
  best.value = -1.0;
  std::vector<std::size_t> fa(nx, 0);
  do {
    std::vector<std::size_t> fb(ny, 0);
    do {
      const double v = game.deterministic_value(fa, fb);
      if (v > best.value) {
        best.value = v;
        best.alice = fa;
        best.bob = fb;
      }
    } while (next(fb, nb));
  } while (next(fa, na));
  return best;
}

}  // namespace ftl::games

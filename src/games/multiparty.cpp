#include "games/multiparty.hpp"

#include <cmath>

#include "qcore/gates.hpp"
#include "util/assert.hpp"

namespace ftl::games {

namespace {

/// X basis for input 0 (columns |+>, |->), Y basis for input 1 (columns
/// (|0> + i|1>)/sqrt2, (|0> - i|1>)/sqrt2).
qcore::CMat measurement_basis(int input_bit) {
  using qcore::Cx;
  const double r = 1.0 / std::sqrt(2.0);
  if (input_bit == 0) {
    return qcore::CMat{{Cx{r, 0.0}, Cx{r, 0.0}}, {Cx{r, 0.0}, Cx{-r, 0.0}}};
  }
  return qcore::CMat{{Cx{r, 0.0}, Cx{r, 0.0}}, {Cx{0.0, r}, Cx{0.0, -r}}};
}

int popcount(const std::vector<int>& bits) {
  int s = 0;
  for (int b : bits) s += b;
  return s;
}

}  // namespace

GhzParityGame::GhzParityGame(std::size_t num_parties) : n_(num_parties) {
  FTL_ASSERT_MSG(num_parties >= 3 && num_parties <= 10,
                 "Mermin game sized for 3..10 parties");
  for (std::size_t bits = 0; bits < (std::size_t{1} << n_); ++bits) {
    std::vector<int> in(n_);
    int parity = 0;
    for (std::size_t k = 0; k < n_; ++k) {
      in[k] = static_cast<int>((bits >> k) & 1);
      parity ^= in[k];
    }
    if (parity == 0) inputs_.push_back(std::move(in));
  }
}

int GhzParityGame::target_parity(const std::vector<int>& input) const {
  const int sum = popcount(input);
  FTL_ASSERT_MSG(sum % 2 == 0, "input must have even parity");
  return (sum / 2) % 2;
}

bool GhzParityGame::wins(const std::vector<int>& input,
                         const std::vector<int>& output) const {
  FTL_ASSERT(input.size() == n_ && output.size() == n_);
  int xr = 0;
  for (int o : output) xr ^= o;
  return xr == target_parity(input);
}

double GhzParityGame::classical_value() const {
  // Each party's deterministic strategy is a map {0,1} -> {0,1}: 4 choices,
  // encoded in 2 bits (output for input 0, output for input 1).
  const std::size_t num_strategies = std::size_t{1} << (2 * n_);
  double best = 0.0;
  for (std::size_t s = 0; s < num_strategies; ++s) {
    std::size_t wins_count = 0;
    for (const auto& in : inputs_) {
      int xr = 0;
      for (std::size_t k = 0; k < n_; ++k) {
        const int out = static_cast<int>((s >> (2 * k + in[k])) & 1);
        xr ^= out;
      }
      if (xr == target_parity(in)) ++wins_count;
    }
    best = std::max(best, static_cast<double>(wins_count) /
                              static_cast<double>(inputs_.size()));
  }
  return best;
}

double GhzParityGame::quantum_value_exact() const {
  double total = 0.0;
  for (const auto& in : inputs_) {
    // Rotate each qubit into its measurement frame, then sum the Born
    // weights of computational outcomes with the target parity.
    qcore::StateVec psi = qcore::StateVec::ghz(n_);
    for (std::size_t k = 0; k < n_; ++k) {
      psi.apply1(measurement_basis(in[k]).adjoint(), k);
    }
    const int target = target_parity(in);
    double p = 0.0;
    const auto probs = psi.probabilities();
    for (std::size_t idx = 0; idx < probs.size(); ++idx) {
      const int parity = __builtin_popcountll(idx) & 1;
      if (parity == target) p += probs[idx];
    }
    total += p;
  }
  return total / static_cast<double>(inputs_.size());
}

std::vector<int> GhzParityGame::play_quantum(const std::vector<int>& input,
                                             util::Rng& rng) const {
  FTL_ASSERT(input.size() == n_);
  qcore::StateVec psi = qcore::StateVec::ghz(n_);
  std::vector<int> out(n_);
  for (std::size_t k = 0; k < n_; ++k) {
    out[k] = psi.measure(k, measurement_basis(input[k]), rng);
  }
  return out;
}

}  // namespace ftl::games

#include "games/strategy.hpp"

namespace ftl::games {

QuantumStrategy::QuantumStrategy(qcore::Density state,
                                 std::vector<qcore::CMat> alice_bases,
                                 std::vector<qcore::CMat> bob_bases)
    : state_(std::move(state)),
      alice_bases_(std::move(alice_bases)),
      bob_bases_(std::move(bob_bases)) {
  FTL_ASSERT_MSG(state_.num_qubits() == 2,
                 "QuantumStrategy uses one qubit per party");
  FTL_ASSERT(!alice_bases_.empty() && !bob_bases_.empty());
  for (const auto& b : alice_bases_) FTL_ASSERT(b.is_unitary(1e-8));
  for (const auto& b : bob_bases_) FTL_ASSERT(b.is_unitary(1e-8));
}

double QuantumStrategy::joint_probability(std::size_t x, std::size_t y, int a,
                                          int b) const {
  FTL_ASSERT(x < num_x() && y < num_y());
  // P(a, b) = Tr[(Pa (x) Pb) rho]: collapse on Alice's outcome, then read
  // Bob's conditional probability.
  const double pa_check =
      state_.outcome_probability(/*qubit=*/0, alice_bases_[x], a);
  if (pa_check <= 1e-15) return 0.0;
  auto [after_alice, pa] =
      state_.collapse(/*qubit=*/0, alice_bases_[x], a);
  const double pb_given_a =
      after_alice.outcome_probability(/*qubit=*/1, bob_bases_[y], b);
  return pa * pb_given_a;
}

double QuantumStrategy::alice_marginal(std::size_t x, std::size_t y,
                                       int a) const {
  return joint_probability(x, y, a, 0) + joint_probability(x, y, a, 1);
}

double QuantumStrategy::bob_marginal(std::size_t x, std::size_t y,
                                     int b) const {
  return joint_probability(x, y, 0, b) + joint_probability(x, y, 1, b);
}

double QuantumStrategy::value(const TwoPartyGame& game) const {
  FTL_ASSERT(game.num_x() == num_x() && game.num_y() == num_y());
  FTL_ASSERT_MSG(game.num_a() == 2 && game.num_b() == 2,
                 "quantum strategies here have binary outputs");
  double v = 0.0;
  for (std::size_t x = 0; x < num_x(); ++x) {
    for (std::size_t y = 0; y < num_y(); ++y) {
      const double pxy = game.input_prob(x, y);
      if (pxy == 0.0) continue;
      for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 2; ++b) {
          if (game.wins(x, y, static_cast<std::size_t>(a),
                        static_cast<std::size_t>(b))) {
            v += pxy * joint_probability(x, y, a, b);
          }
        }
      }
    }
  }
  return v;
}

std::pair<int, int> QuantumStrategy::play(std::size_t x, std::size_t y,
                                          util::Rng& rng) const {
  FTL_ASSERT(x < num_x() && y < num_y());
  qcore::Density rho = state_;
  const int a = rho.measure(/*qubit=*/0, alice_bases_[x], rng);
  const int b = rho.measure(/*qubit=*/1, bob_bases_[y], rng);
  return {a, b};
}

double QuantumStrategy::correlator(std::size_t x, std::size_t y) const {
  return joint_probability(x, y, 0, 0) + joint_probability(x, y, 1, 1) -
         joint_probability(x, y, 0, 1) - joint_probability(x, y, 1, 0);
}

}  // namespace ftl::games

#include "games/value_engine.hpp"

#include <cmath>

#include "games/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace ftl::games {

namespace {

/// Exact structural match against the odd_cycle_game(n) cost matrix, up to
/// a positive scale: diagonal +c, superdiagonal (cyclically) -c, zero
/// elsewhere. Matching is on the literal layout — relabelled cycles are
/// the canonical cache's job, not the fast path's.
struct OddCycleMatch {
  bool matched = false;
  std::size_t n = 0;
  double scale = 0.0;  // 2 * n * c, the total cost mass
};

OddCycleMatch match_odd_cycle(const std::vector<std::vector<double>>& m) {
  OddCycleMatch out;
  const std::size_t n = m.size();
  if (n < 3 || n % 2 == 0 || m.front().size() != n) return out;
  const double c = m[0][0];
  if (!(c > 0.0)) return out;
  for (std::size_t x = 0; x < n; ++x) {
    const std::size_t nxt = (x + 1) % n;
    for (std::size_t y = 0; y < n; ++y) {
      const double want = y == x ? c : (y == nxt ? -c : 0.0);
      if (m[x][y] != want) return out;
    }
  }
  out.matched = true;
  out.n = n;
  out.scale = 2.0 * static_cast<double>(n) * c;
  return out;
}

}  // namespace

XorValueEngine::XorValueEngine(XorValueOptions opts)
    : opts_(std::move(opts)), cache_(opts_.canonical) {}

XorValueResult XorValueEngine::evaluate(const XorGame& game) {
  return evaluate(game.cost_matrix());
}

XorValueResult XorValueEngine::evaluate(
    const std::vector<std::vector<double>>& cost_matrix) {
  const obs::ScopedSpan span("games.value_engine.evaluate", "games");
  auto& reg = obs::registry();
  reg.counter("games.engine.evaluations").inc();
  ++stats_.evaluations;

  XorValueResult out;
  const auto finish = [&](XorValueResult r) {
    r.advantage = r.quantum_bias > r.classical_bias + opts_.advantage_tol;
    return r;
  };

  if (opts_.use_closed_form) {
    if (const OddCycleMatch oc = match_odd_cycle(cost_matrix); oc.matched) {
      reg.counter("games.engine.closed_form_hits").inc();
      ++stats_.closed_form_hits;
      out.from_closed_form = true;
      out.classical_bias = odd_cycle_classical_bias(oc.n) * oc.scale;
      out.quantum_bias = odd_cycle_quantum_bias(oc.n) * oc.scale;
      return finish(out);
    }
    if (const auto b = unfrustrated_bias(cost_matrix); b.has_value()) {
      reg.counter("games.engine.closed_form_hits").inc();
      ++stats_.closed_form_hits;
      out.from_closed_form = true;
      out.classical_bias = *b;
      out.quantum_bias = *b;  // quantum <= sum |m| is attained classically
      return finish(out);
    }
  }

  if (opts_.use_cache) {
    if (const auto hit = cache_.lookup(cost_matrix); hit.has_value()) {
      ++stats_.cache_hits;
      out.from_cache = true;
      out.classical_bias = hit->classical_bias;
      out.quantum_bias = hit->quantum_bias;
      out.quantum_converged = hit->quantum_converged;
      return finish(out);
    }
  }

  // Full solve: bnb for the classical side, warm-started SDP for the
  // quantum side.
  reg.counter("games.engine.solved").inc();
  ++stats_.games_solved;
  const BnbResult cb = classical_value_bnb(cost_matrix, opts_.bnb);
  out.classical_bias = cb.bias;

  const std::size_t nx = cost_matrix.size();
  const std::size_t ny = cost_matrix.front().size();
  sdp::GramOptions sdp = opts_.sdp;
  // Deterministic per-solve stream: cache hits and closed-form shortcuts
  // must not shift later solves' seeds, so the index counts solves only.
  std::uint64_t mix = opts_.sdp.seed ^ (solve_index_ + 1);
  sdp.seed = util::splitmix64(mix);
  ++solve_index_;
  if (opts_.use_warm_start && last_nx_ == nx && last_ny_ == ny &&
      !last_rows_.empty()) {
    sdp.warm_rows = last_rows_;
    reg.counter("games.engine.warm_starts").inc();
    ++stats_.warm_starts;
  }
  const sdp::XorBiasResult qb = sdp::xor_quantum_bias(cost_matrix, sdp);
  out.quantum_bias = qb.bias;
  out.quantum_converged = qb.converged;

  last_rows_.clear();
  last_rows_.reserve(nx + ny);
  last_rows_.insert(last_rows_.end(), qb.alice.begin(), qb.alice.end());
  last_rows_.insert(last_rows_.end(), qb.bob.begin(), qb.bob.end());
  last_nx_ = nx;
  last_ny_ = ny;

  if (opts_.use_cache) {
    cache_.insert(cost_matrix,
                  CachedXorValue{out.classical_bias, out.quantum_bias,
                                 out.quantum_converged});
  }
  return finish(out);
}

}  // namespace ftl::games

// NPA upper bounds for two-input binary games (level 1 + AB).
//
// §4.1 ("General games") cites algorithms [39] that decide whether a
// quantum advantage is possible for an arbitrary finite game. The standard
// machinery is the Navascues-Pironio-Acin hierarchy: a semidefinite
// relaxation whose moment matrix ranges over monomials of the players'
// observables. We implement the "1 + AB" level for two inputs per side and
// binary outcomes — the level known to be *exact* for XOR games (Tsirelson)
// and for CHSH-like games, which lets the library certify quantum values:
//
//     seesaw_optimize(game)  <=  true quantum value  <=  npa1_upper_bound(game)
//
// When the two ends meet (they do for every game in our tests), the value
// is certified without trusting either solver alone.
//
// The moment matrix is over M = {1, A0, A1, B0, B1, A0B0, A0B1, A1B0,
// A1B1} with +-1-valued observables; operator identities (A^2 = 1,
// [A, B] = 0, Hermiticity of the real part) tie its 36 off-diagonal
// entries to 16 free parameters. We maximise the (linear) win probability
// over the PSD slice with a log-det barrier interior-point method.
#pragma once

#include "games/game.hpp"

namespace ftl::games {

struct NpaOptions {
  /// Final barrier weight; the duality gap is about 9 * mu_final.
  double mu_final = 1e-9;
  /// Barrier reduction factor per outer iteration.
  double mu_shrink = 0.2;
  int newton_steps_per_mu = 50;
  double newton_tol = 1e-12;
};

struct NpaResult {
  /// Upper bound on the quantum win probability.
  double upper_bound = 0.0;
  bool converged = false;
};

/// NPA (level 1+AB) upper bound for a game with 2 inputs per player and
/// binary outputs.
[[nodiscard]] NpaResult npa1_upper_bound(const TwoPartyGame& game,
                                         const NpaOptions& opts = {});

}  // namespace ftl::games

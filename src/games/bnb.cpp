#include "games/bnb.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace ftl::games {

namespace {

/// Depth-first search state. Branch order is a permutation of Alice's
/// questions (heaviest |row| mass first, so bounds tighten early). The
/// per-depth column sums are kept as a stack rather than add/subtract
/// updates because (s + v) - v is not s in floating point and the leaf
/// evaluation must stay deterministic.
struct Search {
  const std::vector<std::vector<double>>* m = nullptr;
  std::size_t nx = 0;
  std::size_t ny = 0;
  double bound_safety = 0.0;

  std::vector<std::size_t> order;  // branch order over x
  std::vector<double> rem_mass;    // [d] = total |mass| of rows order[d..nx)
  std::vector<double> col_stack;   // (depth+1) * ny partial column sums
  std::vector<int> signs;          // current +-1 per branch depth

  double best = 0.0;
  std::vector<int> best_by_x;

  std::uint64_t nodes = 0;
  std::uint64_t leaves = 0;
  std::uint64_t pruned = 0;

  /// Exhaustive-order re-evaluation of a complete assignment: columns
  /// accumulated over x ascending, then |col| summed over y ascending.
  /// This is the exact FP schedule of XorGame::classical_strategy(),
  /// which is what makes the returned value bit-identical.
  [[nodiscard]] double leaf_bias(const std::vector<int>& by_x) const {
    double bias = 0.0;
    for (std::size_t y = 0; y < ny; ++y) {
      double col = 0.0;
      for (std::size_t x = 0; x < nx; ++x) {
        const double ax = by_x[x] < 0 ? -1.0 : 1.0;
        col += (*m)[x][y] * ax;
      }
      bias += std::abs(col);
    }
    return bias;
  }

  /// Seeds `best` with a greedy + 1-opt local-search leaf before the DFS
  /// starts, so the bound prunes from the first descent instead of only
  /// after the leftmost path. The incumbent is a real leaf evaluated by
  /// leaf_bias(), so exactness is untouched: the DFS still returns the max
  /// over all leaves, it just discards losing subtrees sooner.
  void seed_incumbent() {
    std::vector<int> by_x(nx, 1);
    std::vector<double> col(ny, 0.0);
    for (std::size_t d = 0; d < nx; ++d) {
      const auto& row = (*m)[order[d]];
      double plus = 0.0;
      double minus = 0.0;
      for (std::size_t y = 0; y < ny; ++y) {
        plus += std::abs(col[y] + row[y]);
        minus += std::abs(col[y] - row[y]);
      }
      const int s = plus >= minus ? 1 : -1;
      by_x[order[d]] = s;
      for (std::size_t y = 0; y < ny; ++y) {
        col[y] += row[y] * static_cast<double>(s);
      }
    }
    double cur = leaf_bias(by_x);
    for (int pass = 0; pass < 16; ++pass) {
      bool improved = false;
      for (std::size_t x = 0; x < nx; ++x) {
        by_x[x] = -by_x[x];
        const double flipped = leaf_bias(by_x);
        if (flipped > cur) {
          cur = flipped;
          improved = true;
        } else {
          by_x[x] = -by_x[x];
        }
      }
      if (!improved) break;
    }
    best = cur;
    best_by_x = by_x;
  }

  void run() {
    col_stack.assign((nx + 1) * ny, 0.0);
    signs.assign(nx, 1);
    seed_incumbent();
    visit(0);
  }

  void visit(std::size_t depth) {
    ++nodes;
    if (depth == nx) {
      ++leaves;
      std::vector<int> by_x(nx, 1);
      for (std::size_t d = 0; d < nx; ++d) by_x[order[d]] = signs[d];
      const double bias = leaf_bias(by_x);
      if (bias > best) {
        best = bias;
        best_by_x = by_x;
      }
      return;
    }
    const double* col = &col_stack[depth * ny];
    double* next = &col_stack[(depth + 1) * ny];
    const auto& row = (*m)[order[depth]];
    // The global sign flip maps each leaf to a bit-identical twin (IEEE
    // negation is exact), so the first branched sign explores +1 only.
    const int lo_sign = depth == 0 ? 1 : -1;
    for (int s = 1; s >= lo_sign; s -= 2) {
      const double sd = static_cast<double>(s);
      // Relaxation bound: |col_y + u_y| <= |col_y| + rem_y per column,
      // summed this is sum_y |col_y| plus the unassigned rows' total mass.
      double ub = 0.0;
      for (std::size_t y = 0; y < ny; ++y) {
        next[y] = col[y] + row[y] * sd;
        ub += std::abs(next[y]);
      }
      ub += rem_mass[depth + 1];
      if (ub + bound_safety <= best) {
        // Even padded by the FP safety margin the bound cannot beat the
        // incumbent: every leaf below is <= best after rounding noise too.
        ++pruned;
        continue;
      }
      signs[depth] = s;
      visit(depth + 1);
    }
    signs[depth] = 1;
  }
};

}  // namespace

BnbResult classical_value_bnb(const std::vector<std::vector<double>>& m,
                              const BnbOptions& opts) {
  const std::size_t nx = m.size();
  FTL_ASSERT(nx >= 1);
  const std::size_t ny = m.front().size();
  for (const auto& row : m) FTL_ASSERT_MSG(row.size() == ny, "ragged matrix");
  FTL_ASSERT_MSG(nx <= 40, "bnb depth is num_x");

  const obs::ScopedSpan span("games.classical_value_bnb", "games");

  Search s;
  s.m = &m;
  s.nx = nx;
  s.ny = ny;
  s.bound_safety = opts.bound_safety;
  std::vector<double> mass(nx, 0.0);
  for (std::size_t x = 0; x < nx; ++x) {
    for (std::size_t y = 0; y < ny; ++y) mass[x] += std::abs(m[x][y]);
  }
  // Heaviest rows first: large committed mass shrinks the relaxation bound
  // fastest. Stable sort keeps the order deterministic across platforms.
  s.order.resize(nx);
  std::iota(s.order.begin(), s.order.end(), std::size_t{0});
  std::stable_sort(s.order.begin(), s.order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return mass[a] > mass[b];
                   });
  s.rem_mass.assign(nx + 1, 0.0);
  for (std::size_t d = nx; d-- > 0;) {
    s.rem_mass[d] = s.rem_mass[d + 1] + mass[s.order[d]];
  }
  s.run();

  BnbResult out;
  out.bias = s.best;
  out.nodes = s.nodes;
  out.leaves = s.leaves;
  out.pruned = s.pruned;
  out.exhaustive_leaves = std::uint64_t{1} << nx;
  // Witness: Alice bits from the best assignment, Bob bits from the sign
  // readout of the best assignment's columns — the exhaustive encoding.
  out.alice.assign(nx, 0);
  for (std::size_t x = 0; x < nx; ++x) {
    out.alice[x] = s.best_by_x[x] < 0 ? 1 : 0;
  }
  out.bob.assign(ny, 0);
  for (std::size_t y = 0; y < ny; ++y) {
    double col = 0.0;
    for (std::size_t x = 0; x < nx; ++x) {
      col += m[x][y] * (s.best_by_x[x] < 0 ? -1.0 : 1.0);
    }
    out.bob[y] = col < 0.0 ? 1 : 0;
  }

  auto& reg = obs::registry();
  reg.counter("games.bnb.calls").inc();
  reg.counter("games.bnb.nodes").inc(out.nodes);
  reg.counter("games.bnb.leaves").inc(out.leaves);
  reg.counter("games.bnb.pruned").inc(out.pruned);
  reg.counter("games.bnb.exhaustive_leaves").inc(out.exhaustive_leaves);
  return out;
}

BnbResult classical_value_bnb(const XorGame& game, const BnbOptions& opts) {
  return classical_value_bnb(game.cost_matrix(), opts);
}

}  // namespace ftl::games

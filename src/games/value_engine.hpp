// The fast exact XOR-game value engine the scaled Fig-3 sweep runs on.
//
// One evaluate() call returns the classical and quantum biases of an XOR
// game, routed through four speed layers — every one cross-checked against
// a slow exact oracle in the test suite:
//
//   1. closed forms  — games matching a provably-solved family (odd-cycle
//      games, frustration-free games) are answered by formula, no search;
//   2. value cache   — exact-matrix and canonical-form lookups return
//      previously solved values for byte-identical or symmetry-equivalent
//      games (games/canonical);
//   3. branch and bound — the classical bias comes from games/bnb,
//      bit-identical to the exhaustive 2^{num_x} search at a fraction of
//      the node visits;
//   4. warm-started SDP — the quantum bias reuses the previous solve's
//      Tsirelson rows as restart 0, cutting coordinate-ascent sweeps on
//      sweeps of near-identical games.
//
// The engine is deterministic: per-solve SDP seeds derive from the base
// seed and a solve index, so a sweep's counters (games solved, cache hits,
// bnb nodes, gram sweeps) are a pure function of (seed, game sequence) —
// which is what lets CI gate them.
#pragma once

#include <cstdint>
#include <vector>

#include "games/bnb.hpp"
#include "games/canonical.hpp"
#include "games/xor_game.hpp"
#include "sdp/tsirelson.hpp"

namespace ftl::games {

struct XorValueOptions {
  /// Base SDP options; the per-solve seed is derived from `sdp.seed` and
  /// the engine's solve index.
  sdp::GramOptions sdp;
  bool use_closed_form = true;
  bool use_cache = true;
  bool use_warm_start = true;
  /// Quantum bias must exceed classical by more than this to count as an
  /// advantage (matches the Fig-3 benches' tolerance).
  double advantage_tol = 1e-5;
  CanonicalOptions canonical;
  BnbOptions bnb;
};

struct XorValueResult {
  double classical_bias = 0.0;
  double quantum_bias = 0.0;
  bool advantage = false;
  bool from_closed_form = false;
  bool from_cache = false;
  /// Meaningful only when the SDP actually ran this call.
  bool quantum_converged = true;
};

class XorValueEngine {
 public:
  explicit XorValueEngine(XorValueOptions opts = {});

  [[nodiscard]] XorValueResult evaluate(const XorGame& game);
  [[nodiscard]] XorValueResult evaluate(
      const std::vector<std::vector<double>>& cost_matrix);

  struct Stats {
    std::uint64_t evaluations = 0;
    /// Calls that fell through to the solvers (bnb + SDP).
    std::uint64_t games_solved = 0;
    std::uint64_t closed_form_hits = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t warm_starts = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const XorValueCache::Stats& cache_stats() const {
    return cache_.stats();
  }

 private:
  XorValueOptions opts_;
  XorValueCache cache_;
  Stats stats_;
  // Warm-start memory: the previous solve's Gram rows (Alice then Bob) and
  // the game shape they belong to.
  std::vector<std::vector<double>> last_rows_;
  std::size_t last_nx_ = 0;
  std::size_t last_ny_ = 0;
  std::uint64_t solve_index_ = 0;
};

}  // namespace ftl::games

// Tsirelson's construction: from SDP vectors to an executable strategy.
//
// The sdp module computes the optimal *vectors* {u_x}, {v_y} of an XOR
// game. Tsirelson's theorem says the corresponding correlations are
// realisable by measuring anticommuting Clifford-algebra observables on a
// maximally entangled state:
//
//   gamma_1..gamma_r  : Jordan-Wigner Pauli strings on k = ceil(r/2) qubits
//   Alice, input x    : A_x = sum_k u_{x,k} gamma_k          (A_x^2 = 1)
//   Bob, input y      : B_y = sum_k v_{y,k} gamma_k^T
//   shared state      : |Phi_d> = sum_i |i>|i> / sqrt(d),  d = 2^k
//
// giving E(x, y) = <Phi| A_x (x) B_y |Phi> = Tr(A_x B_y) / d = <u_x, v_y>.
//
// This closes the loop the paper leaves implicit in §4.1: the library does
// not merely *score* arbitrary XOR games (Figure 3); it exhibits the
// measurements a QNIC would actually perform, and the tests play them on
// the simulator to confirm the SDP value is physically achieved.
#pragma once

#include "games/xor_game.hpp"
#include "qcore/pauli.hpp"
#include "sdp/tsirelson.hpp"

namespace ftl::games {

class RealizedXorStrategy {
 public:
  /// Builds the construction from a game and its Tsirelson vectors. The
  /// vector dimension r fixes the register: 2 * ceil(r/2) qubits total.
  RealizedXorStrategy(XorGame game, const sdp::XorBiasResult& vectors);

  [[nodiscard]] std::size_t qubits_per_party() const { return k_; }

  /// Fresh copy of the shared maximally entangled state.
  [[nodiscard]] qcore::StateVec shared_state() const;

  /// Exact correlator E(x, y) realised by the observables on the shared
  /// state (must equal <u_x, v_y>; the tests check it).
  [[nodiscard]] double correlator(std::size_t x, std::size_t y) const;

  /// Exact win probability (via the correlators).
  [[nodiscard]] double value() const;

  /// Plays one round: both parties measure their Clifford observables on a
  /// fresh shared state; returns the output bits.
  [[nodiscard]] std::pair<int, int> play(std::size_t x, std::size_t y,
                                         util::Rng& rng) const;

  /// The observables themselves (full-register Pauli sums).
  [[nodiscard]] const qcore::PauliSum& alice_observable(std::size_t x) const;
  [[nodiscard]] const qcore::PauliSum& bob_observable(std::size_t y) const;

 private:
  XorGame game_;
  std::size_t k_;  // qubits per party
  std::vector<qcore::PauliSum> alice_;
  std::vector<qcore::PauliSum> bob_;
};

/// Convenience: solve the game's SDP and realize the optimal strategy.
[[nodiscard]] RealizedXorStrategy realize_optimal_strategy(
    const XorGame& game, const sdp::GramOptions& opts = {});

}  // namespace ftl::games

#include "games/realize.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace ftl::games {

namespace {

/// Orthonormalises the span of all strategy vectors (Gram-Schmidt) and
/// re-expresses each vector in that basis — the correlators depend only on
/// inner products, and fewer effective dimensions mean fewer qubits.
struct ReducedVectors {
  std::vector<std::vector<double>> alice;
  std::vector<std::vector<double>> bob;
  std::size_t rank = 0;
};

ReducedVectors reduce(const sdp::XorBiasResult& vectors) {
  std::vector<std::vector<double>> basis;
  auto project_coords = [&](const std::vector<double>& v) {
    std::vector<double> coords(basis.size(), 0.0);
    for (std::size_t b = 0; b < basis.size(); ++b) {
      double dot = 0.0;
      for (std::size_t i = 0; i < v.size(); ++i) dot += basis[b][i] * v[i];
      coords[b] = dot;
    }
    return coords;
  };
  auto add_to_basis = [&](const std::vector<double>& v) {
    std::vector<double> res = v;
    for (const auto& b : basis) {
      double dot = 0.0;
      for (std::size_t i = 0; i < v.size(); ++i) dot += b[i] * v[i];
      for (std::size_t i = 0; i < v.size(); ++i) res[i] -= dot * b[i];
    }
    double norm2 = 0.0;
    for (double x : res) norm2 += x * x;
    if (norm2 > 1e-16) {
      const double inv = 1.0 / std::sqrt(norm2);
      for (double& x : res) x *= inv;
      basis.push_back(std::move(res));
    }
  };
  for (const auto& v : vectors.alice) add_to_basis(v);
  for (const auto& v : vectors.bob) add_to_basis(v);

  ReducedVectors out;
  out.rank = basis.size();
  for (const auto& v : vectors.alice) {
    auto c = project_coords(v);
    c.resize(out.rank, 0.0);
    out.alice.push_back(std::move(c));
  }
  for (const auto& v : vectors.bob) {
    auto c = project_coords(v);
    c.resize(out.rank, 0.0);
    out.bob.push_back(std::move(c));
  }
  return out;
}

/// Jordan-Wigner gamma string for index m in [0, 2k) on a k-qubit party
/// register: gamma_{2j} = Z^j X I..., gamma_{2j+1} = Z^j Y I... .
std::string gamma_ops(std::size_t m, std::size_t k) {
  const std::size_t j = m / 2;
  std::string ops(k, 'I');
  for (std::size_t q = 0; q < j; ++q) ops[q] = 'Z';
  ops[j] = (m % 2 == 0) ? 'X' : 'Y';
  return ops;
}

/// Builds a party observable sum_m coeff_m Gamma_m embedded into the full
/// 2k-qubit register. `transpose` flips the sign of Y-type terms (Bob uses
/// gamma^T; X^T = X, Z^T = Z, Y^T = -Y).
qcore::PauliSum build_observable(const std::vector<double>& coeffs,
                                 std::size_t k, bool bob_side,
                                 bool transpose) {
  std::vector<qcore::PauliTerm> terms;
  for (std::size_t m = 0; m < coeffs.size(); ++m) {
    if (std::abs(coeffs[m]) < 1e-14) continue;
    const std::string local = gamma_ops(m, k);
    qcore::PauliTerm t;
    t.coefficient = coeffs[m];
    if (transpose && local.find('Y') != std::string::npos) {
      t.coefficient = -t.coefficient;
    }
    t.ops = bob_side ? std::string(k, 'I') + local
                     : local + std::string(k, 'I');
    terms.push_back(std::move(t));
  }
  if (terms.empty()) {
    // Zero vector (possible for irrelevant inputs): measure gamma_0 — the
    // outcome is a fair coin uncorrelated with everything.
    qcore::PauliTerm t;
    t.coefficient = 1.0;
    const std::string local = gamma_ops(0, k);
    t.ops = bob_side ? std::string(k, 'I') + local
                     : local + std::string(k, 'I');
    terms.push_back(std::move(t));
  }
  return qcore::PauliSum(std::move(terms));
}

}  // namespace

RealizedXorStrategy::RealizedXorStrategy(XorGame game,
                                         const sdp::XorBiasResult& vectors)
    : game_(std::move(game)) {
  FTL_ASSERT(vectors.alice.size() == game_.num_x());
  FTL_ASSERT(vectors.bob.size() == game_.num_y());
  const ReducedVectors red = reduce(vectors);
  FTL_ASSERT(red.rank >= 1);
  k_ = (red.rank + 1) / 2;
  FTL_ASSERT_MSG(k_ <= 6, "register would exceed 12 qubits");
  for (const auto& u : red.alice) {
    alice_.push_back(build_observable(u, k_, /*bob_side=*/false,
                                      /*transpose=*/false));
  }
  for (const auto& v : red.bob) {
    bob_.push_back(build_observable(v, k_, /*bob_side=*/true,
                                    /*transpose=*/true));
  }
}

qcore::StateVec RealizedXorStrategy::shared_state() const {
  const std::size_t d = std::size_t{1} << k_;
  std::vector<qcore::Cx> amps(d * d, qcore::Cx{0, 0});
  const double r = 1.0 / std::sqrt(static_cast<double>(d));
  for (std::size_t i = 0; i < d; ++i) {
    amps[(i << k_) | i] = qcore::Cx{r, 0.0};
  }
  return qcore::StateVec::from_amplitudes(std::move(amps));
}

double RealizedXorStrategy::correlator(std::size_t x, std::size_t y) const {
  FTL_ASSERT(x < alice_.size() && y < bob_.size());
  // E = <Phi| B_y A_x |Phi> (the observables commute — disjoint qubits).
  const qcore::StateVec phi = shared_state();
  const std::vector<qcore::Cx> a_phi = alice_[x].apply(phi);
  std::vector<qcore::Cx> ba_phi(phi.dim(), qcore::Cx{0.0, 0.0});
  for (const qcore::PauliTerm& t : bob_[y].terms()) {
    qcore::accumulate_pauli_term(t, a_phi, ba_phi);
  }
  return qcore::inner(phi.amplitudes(), ba_phi).real();
}

double RealizedXorStrategy::value() const {
  double bias = 0.0;
  for (std::size_t x = 0; x < game_.num_x(); ++x) {
    for (std::size_t y = 0; y < game_.num_y(); ++y) {
      const double pxy = game_.input_prob(x, y);
      if (pxy == 0.0) continue;
      const double sign = game_.f(x, y) == 0 ? 1.0 : -1.0;
      bias += pxy * sign * correlator(x, y);
    }
  }
  return 0.5 * (1.0 + bias);
}

std::pair<int, int> RealizedXorStrategy::play(std::size_t x, std::size_t y,
                                              util::Rng& rng) const {
  FTL_ASSERT(x < alice_.size() && y < bob_.size());
  qcore::StateVec psi = shared_state();
  const int a_pm = alice_[x].measure(psi, rng);
  const int b_pm = bob_[y].measure(psi, rng);
  return {a_pm > 0 ? 0 : 1, b_pm > 0 ? 0 : 1};
}

const qcore::PauliSum& RealizedXorStrategy::alice_observable(
    std::size_t x) const {
  FTL_ASSERT(x < alice_.size());
  return alice_[x];
}

const qcore::PauliSum& RealizedXorStrategy::bob_observable(
    std::size_t y) const {
  FTL_ASSERT(y < bob_.size());
  return bob_[y];
}

RealizedXorStrategy realize_optimal_strategy(const XorGame& game,
                                             const sdp::GramOptions& opts) {
  return RealizedXorStrategy(game, game.quantum_bias(opts));
}

}  // namespace ftl::games

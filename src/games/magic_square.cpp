#include "games/magic_square.hpp"

#include <cmath>

#include "qcore/gates.hpp"

namespace ftl::games {

namespace {

using qcore::CMat;
using qcore::Cx;

/// The 2-qubit cell operators of the magic square (acting on one party's
/// local pair of qubits).
CMat local_cell(std::size_t r, std::size_t c) {
  using namespace qcore::gates;
  switch (r * 3 + c) {
    case 0: return I().kron(Z());
    case 1: return Z().kron(I());
    case 2: return Z().kron(Z());
    case 3: return X().kron(I());
    case 4: return I().kron(X());
    case 5: return X().kron(X());
    case 6: return X().kron(Z()) * Cx{-1.0, 0.0};
    case 7: return Z().kron(X()) * Cx{-1.0, 0.0};
    default: return Y().kron(Y());
  }
}

/// Decodes an output symbol (0..3) into a +-1 triple with the required
/// parity: entries 0 and 1 are the free bits, entry 2 closes the product.
std::array<int, 3> decode(std::size_t symbol, int required_product) {
  const int e0 = (symbol & 1) != 0 ? -1 : 1;
  const int e1 = (symbol & 2) != 0 ? -1 : 1;
  return {e0, e1, required_product * e0 * e1};
}

}  // namespace

MagicSquareGame::MagicSquareGame() {
  const CMat id4 = CMat::identity(4);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      const CMat cell = local_cell(r, c);
      obs_[r][c][0] = cell.kron(id4);  // Alice: qubits 0,1 (high bits)
      obs_[r][c][1] = id4.kron(cell);  // Bob: qubits 2,3 (low bits)
    }
  }
}

const qcore::CMat& MagicSquareGame::observable(std::size_t r, std::size_t c,
                                               int party) const {
  FTL_ASSERT(r < 3 && c < 3 && (party == 0 || party == 1));
  return obs_[r][c][static_cast<std::size_t>(party)];
}

qcore::StateVec MagicSquareGame::shared_state() {
  // |Phi+>_{02} (x) |Phi+>_{13}: qubits 0,1 Alice; 2,3 Bob; pair (0,2) and
  // pair (1,3). Amplitude 1/2 on |a b a b>.
  std::vector<Cx> amps(16, Cx{0, 0});
  for (std::size_t a = 0; a < 2; ++a) {
    for (std::size_t b = 0; b < 2; ++b) {
      amps[(a << 3) | (b << 2) | (a << 1) | b] = Cx{0.5, 0.0};
    }
  }
  return qcore::StateVec::from_amplitudes(std::move(amps));
}

TwoPartyGame MagicSquareGame::as_two_party_game() const {
  std::vector wins(3, std::vector(3, std::vector(4, std::vector<bool>(4))));
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      for (std::size_t a = 0; a < 4; ++a) {
        for (std::size_t b = 0; b < 4; ++b) {
          const auto row = decode(a, +1);
          const auto col = decode(b, -1);
          wins[r][c][a][b] = row[c] == col[r];
        }
      }
    }
  }
  return TwoPartyGame(std::move(wins), TwoPartyGame::uniform_inputs(3, 3));
}

double MagicSquareGame::classical_value() const {
  return games::classical_value(as_two_party_game()).value;
}

MagicSquareGame::RoundResult MagicSquareGame::play_quantum(
    std::size_t row, std::size_t col, util::Rng& rng) const {
  FTL_ASSERT(row < 3 && col < 3);
  qcore::Density rho = qcore::Density::from_state(shared_state());
  RoundResult out{};
  // Alice measures her row's three commuting observables, Bob his
  // column's; all six commute pairwise across parties (disjoint qubits),
  // so sequential measurement is exact.
  for (std::size_t c = 0; c < 3; ++c) {
    out.row_entries[c] = rho.measure_observable(obs_[row][c][0], rng);
  }
  for (std::size_t r = 0; r < 3; ++r) {
    out.col_entries[r] = rho.measure_observable(obs_[r][col][1], rng);
  }
  return out;
}

bool MagicSquareGame::wins(std::size_t row, std::size_t col,
                           const RoundResult& r) const {
  FTL_ASSERT(row < 3 && col < 3);
  const int row_prod =
      r.row_entries[0] * r.row_entries[1] * r.row_entries[2];
  const int col_prod =
      r.col_entries[0] * r.col_entries[1] * r.col_entries[2];
  if (row_prod != +1 || col_prod != -1) return false;
  return r.row_entries[col] == r.col_entries[row];
}

}  // namespace ftl::games

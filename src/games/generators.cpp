#include "games/generators.hpp"

#include <cmath>
#include <vector>

#include "qcore/generators.hpp"
#include "util/assert.hpp"

namespace ftl::games {

namespace {

/// Normalised-exponential weights: Dirichlet(1), full support a.s.
std::vector<double> dirichlet_weights(std::size_t n, util::Rng& rng) {
  std::vector<double> w(n);
  double total = 0.0;
  for (double& x : w) {
    x = rng.exponential(1.0);
    total += x;
  }
  for (double& x : w) x /= total;
  return w;
}

}  // namespace

XorGame random_xor_game(std::size_t num_x, std::size_t num_y,
                        util::Rng& rng) {
  FTL_ASSERT(num_x >= 1 && num_y >= 1);
  std::vector<std::vector<int>> f(num_x, std::vector<int>(num_y));
  for (auto& row : f) {
    for (int& bit : row) bit = rng.bernoulli(0.5) ? 1 : 0;
  }
  const std::vector<double> flat = dirichlet_weights(num_x * num_y, rng);
  std::vector<std::vector<double>> pi(num_x, std::vector<double>(num_y));
  for (std::size_t x = 0; x < num_x; ++x) {
    for (std::size_t y = 0; y < num_y; ++y) pi[x][y] = flat[x * num_y + y];
  }
  return XorGame(std::move(f), std::move(pi));
}

XorGame symmetric_random_xor_game(std::size_t n, util::Rng& rng) {
  FTL_ASSERT(n >= 1);
  std::vector<std::vector<int>> f(n, std::vector<int>(n, 0));
  for (std::size_t x = 0; x < n; ++x) {
    for (std::size_t y = x; y < n; ++y) {
      const int bit = rng.bernoulli(0.5) ? 1 : 0;
      f[x][y] = bit;
      f[y][x] = bit;
    }
  }
  return XorGame(std::move(f), TwoPartyGame::uniform_inputs(n, n));
}

XorGame odd_cycle_game(std::size_t n) {
  FTL_ASSERT_MSG(n >= 3 && n % 2 == 1, "odd cycle needs odd n >= 3");
  std::vector<std::vector<int>> f(n, std::vector<int>(n, 0));
  std::vector<std::vector<double>> pi(n, std::vector<double>(n, 0.0));
  const double w = 1.0 / static_cast<double>(2 * n);
  for (std::size_t x = 0; x < n; ++x) {
    pi[x][x] = w;  // same vertex: answers must agree (f = 0)
    const std::size_t nxt = (x + 1) % n;
    pi[x][nxt] = w;
    f[x][nxt] = 1;  // cycle edge: answers must differ
  }
  return XorGame(std::move(f), std::move(pi));
}

double odd_cycle_classical_bias(std::size_t n) {
  FTL_ASSERT(n >= 3 && n % 2 == 1);
  return 1.0 - 1.0 / static_cast<double>(n);
}

double odd_cycle_quantum_bias(std::size_t n) {
  FTL_ASSERT(n >= 3 && n % 2 == 1);
  return std::cos(M_PI / (2.0 * static_cast<double>(n)));
}

std::optional<double> unfrustrated_bias(
    const std::vector<std::vector<double>>& m) {
  const std::size_t nx = m.size();
  FTL_ASSERT(nx >= 1 && !m.front().empty());
  const std::size_t ny = m.front().size();
  // 2-colour the bipartite graph whose edges are the nonzero entries, with
  // parity "signs differ" on negative entries. Iterative DFS; colours are
  // +-1, 0 = unvisited. Rows are nodes [0, nx), columns [nx, nx + ny).
  std::vector<int> colour(nx + ny, 0);
  std::vector<std::size_t> stack;
  for (std::size_t start = 0; start < nx + ny; ++start) {
    if (colour[start] != 0) continue;
    colour[start] = 1;
    stack.push_back(start);
    while (!stack.empty()) {
      const std::size_t u = stack.back();
      stack.pop_back();
      if (u < nx) {
        for (std::size_t y = 0; y < ny; ++y) {
          const double v = m[u][y];
          if (v == 0.0) continue;
          const int want = v > 0.0 ? colour[u] : -colour[u];
          int& c = colour[nx + y];
          if (c == 0) {
            c = want;
            stack.push_back(nx + y);
          } else if (c != want) {
            return std::nullopt;  // frustrated: no consistent signs exist
          }
        }
      } else {
        const std::size_t y = u - nx;
        for (std::size_t x = 0; x < nx; ++x) {
          const double v = m[x][y];
          if (v == 0.0) continue;
          const int want = v > 0.0 ? colour[u] : -colour[u];
          int& c = colour[x];
          if (c == 0) {
            c = want;
            stack.push_back(x);
          } else if (c != want) {
            return std::nullopt;
          }
        }
      }
    }
  }
  // Aligned signs make every column sum to +-(sum |m|): bias = sum |m|,
  // accumulated in the exhaustive search's column-major schedule so the
  // two paths agree to rounding noise on sign-consistent games.
  double bias = 0.0;
  for (std::size_t y = 0; y < ny; ++y) {
    double col = 0.0;
    for (std::size_t x = 0; x < nx; ++x) col += std::abs(m[x][y]);
    bias += col;
  }
  return bias;
}

QuantumStrategy random_quantum_strategy(std::size_t num_x, std::size_t num_y,
                                        bool mixed, util::Rng& rng) {
  qcore::Density state =
      mixed ? qcore::random_density(2, rng)
            : qcore::Density::from_state(qcore::random_state(2, rng));
  std::vector<qcore::CMat> alice;
  std::vector<qcore::CMat> bob;
  for (std::size_t x = 0; x < num_x; ++x) {
    alice.push_back(qcore::random_unitary(2, rng));
  }
  for (std::size_t y = 0; y < num_y; ++y) {
    bob.push_back(qcore::random_unitary(2, rng));
  }
  return QuantumStrategy(std::move(state), std::move(alice), std::move(bob));
}

CorrelationBox random_local_box(util::Rng& rng) {
  const std::vector<double> w = dirichlet_weights(16, rng);
  CorrelationBox box;  // zero-initialised
  for (int k = 0; k < 16; ++k) {
    const int a0 = k & 1;
    const int a1 = (k >> 1) & 1;
    const int b0 = (k >> 2) & 1;
    const int b1 = (k >> 3) & 1;
    const int fa[2] = {a0, a1};
    const int fb[2] = {b0, b1};
    for (int x = 0; x < 2; ++x) {
      for (int y = 0; y < 2; ++y) {
        box.set(x, y, fa[x], fb[y],
                box.p(x, y, fa[x], fb[y]) + w[static_cast<std::size_t>(k)]);
      }
    }
  }
  return box;
}

CorrelationBox random_quantum_box(util::Rng& rng) {
  // Hoisted so the rng draw order is fixed regardless of the compiler's
  // argument evaluation order (seeds must replay identically everywhere).
  const bool mixed = rng.bernoulli(0.5);
  return CorrelationBox::from_strategy(
      random_quantum_strategy(2, 2, mixed, rng));
}

CorrelationBox signaling_box(double strength) {
  FTL_ASSERT(strength > 0.0 && strength <= 1.0);
  CorrelationBox box;
  for (int x = 0; x < 2; ++x) {
    for (int y = 0; y < 2; ++y) {
      for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 2; ++b) {
          // "a = y" box (b uniform) mixed with the uniform box.
          const double copy_y = (a == y) ? 0.5 : 0.0;
          box.set(x, y, a, b,
                  strength * copy_y + (1.0 - strength) * 0.25);
        }
      }
    }
  }
  return box;
}

}  // namespace ftl::games
